// Command rostracer runs a built-in ROS2 application set under the eBPF
// tracers inside the simulated host and writes the collected trace to a
// trace database (Fig. 2's deployment flow).
//
// Usage:
//
//	rostracer -app avp -duration 20s -runs 3 -out ./traces [-seed 1] [-cpus 12]
//	rostracer -app syn ...
//	rostracer -app both ...
//
// Each run becomes one session in the store, segmented every -segment of
// virtual time. Segments are written in the indexed, delta-compressed v2
// format by default; -format=v1 keeps the flat v1 record stream (both
// read back through the same store).
//
// Persistence is hardened (see docs/RELIABILITY.md): segment-write
// failures retry with bounded backoff and rotate to fresh files, events
// spill to a bounded in-memory buffer while the disk is down, auxiliary
// sinks (JSONL, snapshots) are fault-isolated from the trace store, and
// SIGINT/SIGTERM flush the open segment and a final snapshot before
// exit. A session that lost events or needed recovery exits nonzero.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/metrics"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/service"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rostracer: ")

	app := flag.String("app", "avp", "application to trace: avp, syn, or both")
	duration := flag.Duration("duration", 20*time.Second, "virtual time to trace per run")
	segment := flag.Duration("segment", 5*time.Second, "virtual time per trace segment")
	runs := flag.Int("runs", 1, "number of runs (sessions)")
	out := flag.String("out", "./traces", "trace database directory")
	seed := flag.Uint64("seed", 1, "base random seed")
	cpus := flag.Int("cpus", 12, "simulated CPU count")
	jsonl := flag.Bool("jsonl", false, "additionally dump each session as JSONL")
	unfilteredKernel := flag.Bool("unfiltered-kernel", false, "disable PID filtering in the kernel tracer")
	ringCapacity := flag.Int("ring-capacity", 0, "per-CPU perf ring record bound (0 = unbounded)")
	adaptive := flag.Bool("adaptive-drain", false, "plan the drain period from per-ring pending/lost gauges instead of the fixed -segment")
	snapshotEvery := flag.Duration("snapshot-every", 0, "synthesize and write a model snapshot (JSON + DOT) every this much virtual time (0 = off)")
	spillCap := flag.Int("spill-capacity", 0, "bounded in-memory event spill while the disk is down (0 = default)")
	format := flag.String("format", "v2", "segment format: v2 (indexed, delta-compressed) or v1 (flat records)")
	parallelism := flag.Int("parallelism", 0, "decode workers for the store's parallel read paths (0 = GOMAXPROCS, 1 = sequential)")
	asyncEncode := flag.Bool("async-encode", false, "encode v2 segment blocks on a background goroutine, off the drain loop")
	hotThreshold := flag.Uint64("hot-threshold", ebpf.DefaultHotThreshold(), "tier-0 run count at which a probe program is re-decoded into its profile-guided form (0 disables automatic promotion)")
	profilePath := flag.String("profile", "", "warmup profile file: loaded at start so programs dispatch at tier >= 1 from the first fire, saved on shutdown (empty = no persistence)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text-format self-metrics at this address (e.g. :9090); empty disables the endpoint")
	alertRules := metrics.DefaultAlertRules()
	alertsGiven := false
	flag.Func("alert", `alert rule "name: metric > value" (repeatable; metric{label} selects one cell, delta(metric) compares per-segment growth; added to the built-in rules)`, func(s string) error {
		r, err := metrics.ParseAlertRule(s)
		if err != nil {
			return err
		}
		alertRules = append(alertRules, r)
		alertsGiven = true
		return nil
	})
	flag.Parse()

	build, err := buildFunc(*app)
	if err != nil {
		log.Fatal(err)
	}
	store, err := trace.NewStore(*out)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "v2":
		store.Format = trace.FormatV2
	case "v1":
		store.Format = trace.FormatV1
	default:
		log.Fatalf("unknown -format %q (want v1 or v2)", *format)
	}
	store.Parallelism = *parallelism
	store.AsyncEncode = *asyncEncode

	// Self-observability: each run folds its stream into a fresh metrics
	// registry (counters reset per session, keeping every exposed counter
	// monotone within the scrape lifetime of its registry) and publishes
	// it to the HTTP endpoint atomically, so a scrape overlapping a run
	// boundary sees either the old registry or the new one, never a mix.
	metricsOn := *metricsAddr != "" || alertsGiven
	var liveReg atomic.Pointer[metrics.Registry]
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			if reg := liveReg.Load(); reg != nil {
				metrics.Handler(reg).ServeHTTP(w, req)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		})
		go http.Serve(ln, mux)
		log.Printf("serving /metrics on http://%s/metrics", ln.Addr())
	}

	// Graceful shutdown: the drain loop checks this between segments and,
	// when signalled, flushes the open segment and final snapshot before
	// exiting instead of leaving a partial session behind.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	exit := 0
	for run := 0; run < *runs; run++ {
		session := fmt.Sprintf("%s-run%03d", *app, run)
		cfg := runConfig{
			seed: *seed + uint64(run), cpus: *cpus,
			duration: sim.Duration(*duration), segment: sim.Duration(*segment),
			filtered: !*unfilteredKernel, jsonl: *jsonl, outDir: *out,
			ringCapacity: *ringCapacity, adaptive: *adaptive,
			snapshotEvery: sim.Duration(*snapshotEvery),
			spillCapacity: *spillCap,
			hotThreshold:  *hotThreshold,
			profilePath:   *profilePath,
			interrupt:     sigCh,
		}
		if metricsOn {
			cfg.alertRules = alertRules
			cfg.publishReg = liveReg.Store
		}
		degraded, interrupted, err := traceOneRun(store, session, build, cfg)
		if err != nil {
			log.Fatalf("run %d: %v", run, err)
		}
		if degraded {
			// The session completed but lost events or needed recovery:
			// say so and make the whole invocation fail loudly rather
			// than silently truncating.
			log.Printf("session %s written to %s (DEGRADED)", session, *out)
			exit = 1
		} else {
			log.Printf("session %s written to %s", session, *out)
		}
		if interrupted {
			log.Printf("interrupted: flushed session %s, skipping remaining runs", session)
			break
		}
	}
	os.Exit(exit)
}

// runConfig carries one session's tracing parameters.
type runConfig struct {
	seed          uint64
	cpus          int
	duration      sim.Duration
	segment       sim.Duration
	filtered      bool
	jsonl         bool
	outDir        string
	ringCapacity  int
	adaptive      bool
	snapshotEvery sim.Duration
	spillCapacity int
	hotThreshold  uint64
	profilePath   string
	interrupt     <-chan os.Signal

	// Self-observability (nil publishReg with nil alertRules = disabled):
	// rules evaluated once per segment, and a hook publishing the run's
	// registry to the /metrics endpoint.
	alertRules []metrics.AlertRule
	publishReg func(*metrics.Registry)
}

func buildFunc(app string) (func(*rclcpp.World), error) {
	switch app {
	case "avp":
		return func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, nil
	case "syn":
		return func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }, nil
	case "both":
		return harness.BuildBoth(1), nil
	}
	return nil, fmt.Errorf("unknown app %q (want avp, syn, or both)", app)
}

func traceOneRun(store *trace.Store, session string, build func(*rclcpp.World), cfg runConfig) (degraded, interrupted bool, retErr error) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.cpus, Seed: cfg.seed})
	// The threshold must be set before the bundle loads its programs:
	// each program captures it at decode time.
	w.Runtime().SetHotThreshold(cfg.hotThreshold)
	b, err := tracers.NewBundleCapacity(w.Runtime(), cfg.ringCapacity)
	if err != nil {
		return false, false, err
	}
	if cfg.profilePath != "" {
		applied, err := b.LoadProfiles(cfg.profilePath)
		if err != nil {
			return false, false, err
		}
		if applied > 0 {
			tc := b.TierCounts()
			log.Printf("  profile %s: seeded %d programs (tiers t0:%d t1:%d t2:%d)",
				cfg.profilePath, applied, tc[0], tc[1], tc[2])
		}
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		return false, false, err
	}
	if err := b.StartRT(); err != nil {
		return false, false, err
	}
	if err := b.StartKernel(cfg.filtered); err != nil {
		return false, false, err
	}
	build(w)
	b.StopInit()

	// The periodic-drain loop is fully streaming, disk included: each
	// period's ring segments decode and merge directly into the session
	// writer on the store (and, when asked, the JSONL sink and the online
	// synthesis service), so peak memory is one event per ring plus the
	// writer's bounded replay buffer.
	//
	// Persistence goes through service.SessionWriter: write failures
	// back off and rotate to fresh segment files, and a disk that stays
	// down spills to a bounded in-memory buffer with exact drop
	// accounting. Auxiliary sinks ride an IsolatingMultiSink: a failing
	// JSONL or snapshot sink detaches with its error recorded instead of
	// killing the drain.
	//
	// With -adaptive-drain the period is planned per segment by a
	// DrainScheduler from the per-ring pending/lost gauges (-segment
	// caps it); otherwise it is the fixed -segment.
	var jsonlSink *trace.JSONLSink
	var jsonlPath string
	if cfg.jsonl {
		jsonlPath = fmt.Sprintf("%s/%s.jsonl", cfg.outDir, session)
		f, err := os.Create(jsonlPath)
		if err != nil {
			return false, false, err
		}
		// A run that fails outright must not leave a truncated .jsonl
		// behind looking like a complete trace. (The fan-out's deferred
		// Close below runs first, so the file is closed before removal.)
		defer func() {
			if retErr != nil {
				os.Remove(jsonlPath)
			}
		}()
		// The sink owns the file: the fan-out's Close (shutdown or
		// detach) flushes and closes it.
		jsonlSink = trace.NewJSONLSinkCloser(f)
	}
	var sched *tracers.DrainScheduler
	if cfg.adaptive {
		if cfg.ringCapacity <= 0 {
			log.Printf("  warning: -adaptive-drain without -ring-capacity: unbounded rings cannot overrun, draining at the fixed -segment period")
		}
		sched = tracers.NewDrainScheduler(b, tracers.DrainPolicy{
			Capacity:   cfg.ringCapacity,
			TargetFill: 0.5,
			Min:        cfg.segment / 64,
			Max:        cfg.segment,
		})
	}
	// -snapshot-every puts a live synthesis service on the drain loop:
	// every segment streams into the service alongside the store, and
	// each time the interval elapses the service re-finishes the model
	// and writes JSON/DOT snapshots of the session so far.
	var snapSvc *core.SnapshotService
	var nextSnapAt sim.Duration
	if cfg.snapshotEvery > 0 {
		snapSvc = core.NewSnapshotService()
		nextSnapAt = cfg.snapshotEvery
	}
	writer := service.NewSessionWriter(store, session, service.Policy{
		SpillCapacity: cfg.spillCapacity,
	})
	// Self-observability: a per-run registry fed by a metrics sink on the
	// fan-out (event-kind counters, per-topic publish latency, per-node
	// exec time) plus per-segment snapshots of the pipeline's own
	// accounting, with threshold alert rules evaluated each segment.
	var reg *metrics.Registry
	var msink *metrics.Sink
	var pm *metrics.PipelineMetrics
	var alerts *metrics.Alerts
	if cfg.alertRules != nil || cfg.publishReg != nil {
		reg = metrics.NewRegistry()
		msink = metrics.NewSink(reg)
		pm = metrics.NewPipelineMetrics(reg)
		alerts = metrics.NewAlerts(reg, cfg.alertRules)
		if cfg.publishReg != nil {
			cfg.publishReg(reg)
		}
	}
	sink := trace.NewIsolatingMultiSink()
	sink.Add("store", writer)
	if jsonlSink != nil {
		sink.Add("jsonl", jsonlSink)
	}
	if snapSvc != nil {
		sink.Add("snapshot", snapSvc)
	}
	if msink != nil {
		sink.Add("metrics", msink)
	}
	// Idempotent: covers the abort paths; the shutdown path closes
	// explicitly before reporting detachments.
	defer sink.Close()
	totalEvents := 0
	segIdx := 0
	var prevLost uint64
	for elapsed := sim.Duration(0); elapsed < cfg.duration; {
		select {
		case <-cfg.interrupt:
			interrupted = true
		default:
		}
		if interrupted {
			break
		}
		step := cfg.segment
		if sched != nil {
			step = sched.Interval()
		}
		if rest := cfg.duration - elapsed; step > rest {
			step = rest
		}
		w.Run(step)
		elapsed += step

		// Per-ring gauges, read before the drain clears them: the worst
		// ring's backlog and any overruns attributed to this window.
		pendHWM, pendCPU := b.MaxRingPending()
		lostDelta := b.Lost() - prevLost
		nextStep := step
		if sched != nil {
			obs := sched.Observe(step)
			pendHWM, pendCPU = obs.MaxPending, obs.MaxPendingCPU
			nextStep = obs.Next
		}
		prevLost = b.Lost()

		writer.BeginSegment()
		if err := b.StreamTo(sink); err != nil {
			// Only a decode failure can surface here (the sinks are
			// isolated); the writer's open segment still flushes what it
			// got, then the run aborts.
			writer.Close()
			return false, false, err
		}
		res := writer.EndSegment()
		totalEvents += res.Persisted
		status := ""
		if res.Down {
			status = "  [disk down: spilling]"
		}
		tc := b.TierCounts()
		log.Printf("  seg %-3d t=%-12v %6d events, ring hwm cpu%d=%d, lost +%d (total %d), tiers t0:%d t1:%d t2:%d, next period %v%s",
			segIdx, sim.Duration(elapsed), res.Persisted, pendCPU, pendHWM,
			lostDelta, b.Lost(), tc[0], tc[1], tc[2], nextStep, status)
		segIdx++
		if pm != nil {
			pm.UpdateBundle(b)
			if sched != nil {
				pm.UpdateScheduler(sched)
			} else {
				pm.UpdateDrain(int64(nextStep), segIdx, 0)
			}
			pm.UpdateWriter(writer)
			pm.UpdateIntern()
			pm.UpdateSinks(sink)
			if snapSvc != nil {
				pm.UpdateSynthesis(snapSvc)
			}
			for _, st := range alerts.Evaluate() {
				if st.FiredAt == alerts.Rounds() {
					log.Printf("  ALERT %s fired: %s (value %g)", st.Rule.Name, st.Rule, st.Last)
				}
			}
		}
		if snapSvc != nil && elapsed >= nextSnapAt {
			snap := snapSvc.Snapshot()
			if err := writeSnapshot(cfg.outDir, session, snap); err != nil {
				return false, false, err
			}
			log.Printf("  snapshot %d at t=%v: %d vertices / %d edges from %d events (%d sched folded)",
				snap.Seq, sim.Duration(elapsed), len(snap.DAG.Vertices), len(snap.DAG.Edges()),
				snap.Events, snap.FoldedSched)
			for nextSnapAt <= elapsed {
				nextSnapAt += cfg.snapshotEvery
			}
		}
	}
	// Shutdown — signalled or normal — flushes everything that is still
	// open: the session writer's last segment and spill, a final
	// snapshot, and the JSONL stream.
	closeRes := writer.Close()
	totalEvents += closeRes.Persisted
	if snapSvc != nil && interrupted {
		snap := snapSvc.Snapshot()
		if err := writeSnapshot(cfg.outDir, session, snap); err != nil {
			return false, false, err
		}
		log.Printf("  final snapshot %d: %d vertices from %d events",
			snap.Seq, len(snap.DAG.Vertices), snap.Events)
	}
	// Closing the fan-out flush-closes every still-attached auxiliary
	// sink (the JSONL file included); a failure here means some sink's
	// output is short, so the session fails loudly rather than
	// pretending the dump is complete.
	if err := sink.Close(); err != nil {
		log.Printf("  sink close: %v", err)
		degraded = true
	}
	stats := writer.Stats()
	if stats.Degraded() {
		degraded = true
		log.Printf("  WARNING: persistence degraded: %d/%d events dropped, %d rotations, %d retries, %d down spells (last error: %v)",
			stats.Dropped, stats.Observed, stats.Rotations, stats.Retries, stats.Down, stats.LastErr)
	}
	for _, d := range sink.Detached() {
		degraded = true
		suffix := ""
		if d.CloseErr != nil {
			suffix = fmt.Sprintf(" (flush-close: %v)", d.CloseErr)
		}
		log.Printf("  WARNING: sink %q detached after %d events: %v%s", d.Name, d.Events, d.Err, suffix)
	}
	encMode := "inline"
	if store.AsyncEncode {
		encMode = "async"
	}
	log.Printf("  %d events, %.2f MB perf payload, probe cost %.4f cores, %d decode workers, %s encode",
		totalEvents, float64(b.TraceBytes())/1e6,
		w.Runtime().CostNs()/float64(cfg.duration),
		store.ResolveParallelism(), encMode)
	// Per-CPU ring accounting, as a real perf_event_array poller reports
	// it: payload per CPU, and any overruns attributed to the ring that
	// dropped them.
	bytesPerCPU := b.BytesPerCPU()
	lostPerCPU := b.LostPerCPU()
	for cpu := range bytesPerCPU {
		if bytesPerCPU[cpu] == 0 && lostPerCPU[cpu] == 0 {
			continue
		}
		log.Printf("  cpu%-2d %8.3f MB, %d lost", cpu, float64(bytesPerCPU[cpu])/1e6, lostPerCPU[cpu])
	}
	if lost := b.Lost(); lost > 0 {
		log.Printf("  WARNING: %d records lost to ring overruns", lost)
	}
	if pm != nil {
		// Final snapshot (the close-time ledgers included) and one last
		// evaluation round, then the session summary: any rule that fired
		// at any point degrades the session into a nonzero exit.
		pm.UpdateBundle(b)
		pm.UpdateWriter(writer)
		pm.UpdateIntern()
		pm.UpdateSinks(sink)
		if snapSvc != nil {
			pm.UpdateSynthesis(snapSvc)
		}
		alerts.Evaluate()
		for _, st := range alerts.Fired() {
			degraded = true
			log.Printf("  ALERT %s: %s — fired in %d of %d evaluations (first at segment %d), last value %g",
				st.Rule.Name, st.Rule, st.Count, alerts.Rounds(), st.FiredAt, st.Last)
		}
	}
	if cfg.profilePath != "" {
		// Save on shutdown — interrupted sessions too: the warmup profile
		// accumulated so far is exactly what the next session wants.
		if err := b.SaveProfiles(cfg.profilePath); err != nil {
			log.Printf("  WARNING: %v", err)
		} else {
			tc := b.TierCounts()
			log.Printf("  profile saved to %s (tiers t0:%d t1:%d t2:%d)",
				cfg.profilePath, tc[0], tc[1], tc[2])
		}
	}
	return degraded, interrupted, nil
}

// writeSnapshot persists one online-synthesis snapshot as
// <session>-snap<seq>.json and .dot next to the session's segments. A
// failed write removes both files: no partial snapshot artifact may be
// left looking complete (the segment and .jsonl cleanups' invariant).
func writeSnapshot(dir, session string, snap core.Snapshot) (retErr error) {
	base := fmt.Sprintf("%s/%s-snap%03d", dir, session, snap.Seq)
	defer func() {
		if retErr != nil {
			os.Remove(base + ".dot")
			os.Remove(base + ".json")
		}
	}()
	title := fmt.Sprintf("%s snapshot %d", session, snap.Seq)
	if err := os.WriteFile(base+".dot", []byte(core.ToDOT(snap.DAG, title)), 0o644); err != nil {
		return err
	}
	f, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	if err := core.WriteJSON(f, snap.DAG); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
