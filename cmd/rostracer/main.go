// Command rostracer runs a built-in ROS2 application set under the eBPF
// tracers inside the simulated host and writes the collected trace to a
// trace database (Fig. 2's deployment flow).
//
// Usage:
//
//	rostracer -app avp -duration 20s -runs 3 -out ./traces [-seed 1] [-cpus 12]
//	rostracer -app syn ...
//	rostracer -app both ...
//
// Each run becomes one session in the store, segmented every -segment of
// virtual time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rostracer: ")

	app := flag.String("app", "avp", "application to trace: avp, syn, or both")
	duration := flag.Duration("duration", 20*time.Second, "virtual time to trace per run")
	segment := flag.Duration("segment", 5*time.Second, "virtual time per trace segment")
	runs := flag.Int("runs", 1, "number of runs (sessions)")
	out := flag.String("out", "./traces", "trace database directory")
	seed := flag.Uint64("seed", 1, "base random seed")
	cpus := flag.Int("cpus", 12, "simulated CPU count")
	jsonl := flag.Bool("jsonl", false, "additionally dump each session as JSONL")
	unfilteredKernel := flag.Bool("unfiltered-kernel", false, "disable PID filtering in the kernel tracer")
	flag.Parse()

	build, err := buildFunc(*app)
	if err != nil {
		log.Fatal(err)
	}
	store, err := trace.NewStore(*out)
	if err != nil {
		log.Fatal(err)
	}

	for run := 0; run < *runs; run++ {
		session := fmt.Sprintf("%s-run%03d", *app, run)
		if err := traceOneRun(store, session, build, *seed+uint64(run), *cpus,
			sim.Duration(*duration), sim.Duration(*segment), !*unfilteredKernel, *jsonl, *out); err != nil {
			log.Fatalf("run %d: %v", run, err)
		}
		log.Printf("session %s written to %s", session, *out)
	}
}

func buildFunc(app string) (func(*rclcpp.World), error) {
	switch app {
	case "avp":
		return func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, nil
	case "syn":
		return func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }, nil
	case "both":
		return harness.BuildBoth(1), nil
	}
	return nil, fmt.Errorf("unknown app %q (want avp, syn, or both)", app)
}

func traceOneRun(store *trace.Store, session string, build func(*rclcpp.World),
	seed uint64, cpus int, duration, segment sim.Duration, filtered, jsonl bool, outDir string) error {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		return err
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		return err
	}
	if err := b.StartRT(); err != nil {
		return err
	}
	if err := b.StartKernel(filtered); err != nil {
		return err
	}
	build(w)
	b.StopInit()

	var all []*trace.Trace
	segIdx := 0
	for elapsed := sim.Duration(0); elapsed < duration; elapsed += segment {
		step := segment
		if duration-elapsed < step {
			step = duration - elapsed
		}
		w.Run(step)
		seg, err := b.Drain()
		if err != nil {
			return err
		}
		if err := store.SaveSegment(session, segIdx, seg); err != nil {
			return err
		}
		all = append(all, seg)
		segIdx++
	}
	if jsonl {
		f, err := os.Create(fmt.Sprintf("%s/%s.jsonl", outDir, session))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteJSONL(f, trace.Merge(all...)); err != nil {
			return err
		}
	}
	merged := trace.Merge(all...)
	log.Printf("  %d events, %.2f MB perf payload, probe cost %.4f cores",
		merged.Len(), float64(b.TraceBytes())/1e6,
		w.Runtime().CostNs()/float64(duration))
	// Per-CPU ring accounting, as a real perf_event_array poller reports
	// it: payload per CPU, and any overruns attributed to the ring that
	// dropped them.
	bytesPerCPU := b.BytesPerCPU()
	lostPerCPU := b.LostPerCPU()
	for cpu := range bytesPerCPU {
		if bytesPerCPU[cpu] == 0 && lostPerCPU[cpu] == 0 {
			continue
		}
		log.Printf("  cpu%-2d %8.3f MB, %d lost", cpu, float64(bytesPerCPU[cpu])/1e6, lostPerCPU[cpu])
	}
	if lost := b.Lost(); lost > 0 {
		log.Printf("  WARNING: %d records lost to ring overruns", lost)
	}
	return nil
}
