// Command rostracer runs a built-in ROS2 application set under the eBPF
// tracers inside the simulated host and writes the collected trace to a
// trace database (Fig. 2's deployment flow).
//
// Usage:
//
//	rostracer -app avp -duration 20s -runs 3 -out ./traces [-seed 1] [-cpus 12]
//	rostracer -app syn ...
//	rostracer -app both ...
//
// Each run becomes one session in the store, segmented every -segment of
// virtual time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rostracer: ")

	app := flag.String("app", "avp", "application to trace: avp, syn, or both")
	duration := flag.Duration("duration", 20*time.Second, "virtual time to trace per run")
	segment := flag.Duration("segment", 5*time.Second, "virtual time per trace segment")
	runs := flag.Int("runs", 1, "number of runs (sessions)")
	out := flag.String("out", "./traces", "trace database directory")
	seed := flag.Uint64("seed", 1, "base random seed")
	cpus := flag.Int("cpus", 12, "simulated CPU count")
	jsonl := flag.Bool("jsonl", false, "additionally dump each session as JSONL")
	unfilteredKernel := flag.Bool("unfiltered-kernel", false, "disable PID filtering in the kernel tracer")
	ringCapacity := flag.Int("ring-capacity", 0, "per-CPU perf ring record bound (0 = unbounded)")
	adaptive := flag.Bool("adaptive-drain", false, "plan the drain period from per-ring pending/lost gauges instead of the fixed -segment")
	snapshotEvery := flag.Duration("snapshot-every", 0, "synthesize and write a model snapshot (JSON + DOT) every this much virtual time (0 = off)")
	flag.Parse()

	build, err := buildFunc(*app)
	if err != nil {
		log.Fatal(err)
	}
	store, err := trace.NewStore(*out)
	if err != nil {
		log.Fatal(err)
	}

	for run := 0; run < *runs; run++ {
		session := fmt.Sprintf("%s-run%03d", *app, run)
		cfg := runConfig{
			seed: *seed + uint64(run), cpus: *cpus,
			duration: sim.Duration(*duration), segment: sim.Duration(*segment),
			filtered: !*unfilteredKernel, jsonl: *jsonl, outDir: *out,
			ringCapacity: *ringCapacity, adaptive: *adaptive,
			snapshotEvery: sim.Duration(*snapshotEvery),
		}
		if err := traceOneRun(store, session, build, cfg); err != nil {
			log.Fatalf("run %d: %v", run, err)
		}
		log.Printf("session %s written to %s", session, *out)
	}
}

// runConfig carries one session's tracing parameters.
type runConfig struct {
	seed          uint64
	cpus          int
	duration      sim.Duration
	segment       sim.Duration
	filtered      bool
	jsonl         bool
	outDir        string
	ringCapacity  int
	adaptive      bool
	snapshotEvery sim.Duration
}

func buildFunc(app string) (func(*rclcpp.World), error) {
	switch app {
	case "avp":
		return func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, nil
	case "syn":
		return func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }, nil
	case "both":
		return harness.BuildBoth(1), nil
	}
	return nil, fmt.Errorf("unknown app %q (want avp, syn, or both)", app)
}

func traceOneRun(store *trace.Store, session string, build func(*rclcpp.World), cfg runConfig) (retErr error) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.cpus, Seed: cfg.seed})
	b, err := tracers.NewBundleCapacity(w.Runtime(), cfg.ringCapacity)
	if err != nil {
		return err
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		return err
	}
	if err := b.StartRT(); err != nil {
		return err
	}
	if err := b.StartKernel(cfg.filtered); err != nil {
		return err
	}
	build(w)
	b.StopInit()

	// The periodic-drain loop is fully streaming, disk included: each
	// period's ring segments decode and merge directly into a
	// SegmentWriter on the store (and, when asked, the JSONL sink and the
	// online synthesis service), so peak memory is one event per ring —
	// never a segment, let alone the whole run. Successive drains stay
	// globally (Time, Seq) ordered, which keeps the concatenated JSONL
	// identical to what a whole-run merge would emit.
	//
	// With -adaptive-drain the period is planned per segment by a
	// DrainScheduler from the per-ring pending/lost gauges (-segment
	// caps it); otherwise it is the fixed -segment.
	var jsonlSink *trace.JSONLSink
	if cfg.jsonl {
		jsonlPath := fmt.Sprintf("%s/%s.jsonl", cfg.outDir, session)
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		// A run that fails mid-way must not leave a truncated .jsonl
		// behind looking like a complete trace.
		defer func() {
			if retErr != nil {
				os.Remove(jsonlPath)
			}
		}()
		jsonlSink = trace.NewJSONLSink(f)
	}
	var sched *tracers.DrainScheduler
	if cfg.adaptive {
		if cfg.ringCapacity <= 0 {
			log.Printf("  warning: -adaptive-drain without -ring-capacity: unbounded rings cannot overrun, draining at the fixed -segment period")
		}
		sched = tracers.NewDrainScheduler(b, tracers.DrainPolicy{
			Capacity:   cfg.ringCapacity,
			TargetFill: 0.5,
			Min:        cfg.segment / 64,
			Max:        cfg.segment,
		})
	}
	// -snapshot-every puts a live synthesis service on the drain loop:
	// every segment streams into the service alongside the store, and
	// each time the interval elapses the service re-finishes the model
	// and writes JSON/DOT snapshots of the session so far.
	var snapSvc *core.SnapshotService
	var nextSnapAt sim.Duration
	if cfg.snapshotEvery > 0 {
		snapSvc = core.NewSnapshotService()
		nextSnapAt = cfg.snapshotEvery
	}
	// Optional per-segment sinks as untyped-nil-safe interfaces: MultiSink
	// drops nil entries (and collapses to the segment writer alone when
	// neither option is on).
	var jsink, snapSink trace.Sink
	if jsonlSink != nil {
		jsink = jsonlSink
	}
	if snapSvc != nil {
		snapSink = snapSvc
	}
	totalEvents := 0
	segIdx := 0
	var prevLost uint64
	for elapsed := sim.Duration(0); elapsed < cfg.duration; {
		step := cfg.segment
		if sched != nil {
			step = sched.Interval()
		}
		if rest := cfg.duration - elapsed; step > rest {
			step = rest
		}
		w.Run(step)
		elapsed += step

		// Per-ring gauges, read before the drain clears them: the worst
		// ring's backlog and any overruns attributed to this window.
		pendHWM, pendCPU := b.MaxRingPending()
		lostDelta := b.Lost() - prevLost
		nextStep := step
		if sched != nil {
			obs := sched.Observe(step)
			pendHWM, pendCPU = obs.MaxPending, obs.MaxPendingCPU
			nextStep = obs.Next
		}
		prevLost = b.Lost()

		sw, err := store.WriteSegment(session, segIdx)
		if err != nil {
			return err
		}
		sink := trace.MultiSink(sw, jsink, snapSink)
		// A failed drain must not leave a partial segment behind: a later
		// StreamSession/modelsynth over the session would reject it (same
		// invariant as the truncated-.jsonl cleanup above).
		if err := b.StreamTo(sink); err != nil {
			sw.Close()
			os.Remove(sw.Path())
			return err
		}
		if err := sw.Close(); err != nil {
			os.Remove(sw.Path())
			return err
		}
		if jsonlSink != nil {
			// Encoding errors are sticky in the sink; surface them at the
			// segment that hit them instead of simulating the rest of the
			// run first.
			if err := jsonlSink.Err(); err != nil {
				return err
			}
		}
		totalEvents += sw.Count()
		log.Printf("  seg %-3d t=%-12v %6d events, ring hwm cpu%d=%d, lost +%d (total %d), next period %v",
			segIdx, sim.Duration(elapsed), sw.Count(), pendCPU, pendHWM,
			lostDelta, b.Lost(), nextStep)
		segIdx++
		if snapSvc != nil && elapsed >= nextSnapAt {
			snap := snapSvc.Snapshot()
			if err := writeSnapshot(cfg.outDir, session, snap); err != nil {
				return err
			}
			log.Printf("  snapshot %d at t=%v: %d vertices / %d edges from %d events (%d sched folded)",
				snap.Seq, sim.Duration(elapsed), len(snap.DAG.Vertices), len(snap.DAG.Edges()),
				snap.Events, snap.FoldedSched)
			for nextSnapAt <= elapsed {
				nextSnapAt += cfg.snapshotEvery
			}
		}
	}
	if jsonlSink != nil {
		if err := jsonlSink.Flush(); err != nil {
			return err
		}
	}
	log.Printf("  %d events, %.2f MB perf payload, probe cost %.4f cores",
		totalEvents, float64(b.TraceBytes())/1e6,
		w.Runtime().CostNs()/float64(cfg.duration))
	// Per-CPU ring accounting, as a real perf_event_array poller reports
	// it: payload per CPU, and any overruns attributed to the ring that
	// dropped them.
	bytesPerCPU := b.BytesPerCPU()
	lostPerCPU := b.LostPerCPU()
	for cpu := range bytesPerCPU {
		if bytesPerCPU[cpu] == 0 && lostPerCPU[cpu] == 0 {
			continue
		}
		log.Printf("  cpu%-2d %8.3f MB, %d lost", cpu, float64(bytesPerCPU[cpu])/1e6, lostPerCPU[cpu])
	}
	if lost := b.Lost(); lost > 0 {
		log.Printf("  WARNING: %d records lost to ring overruns", lost)
	}
	return nil
}

// writeSnapshot persists one online-synthesis snapshot as
// <session>-snap<seq>.json and .dot next to the session's segments. A
// failed write removes both files: no partial snapshot artifact may be
// left looking complete (the segment and .jsonl cleanups' invariant).
func writeSnapshot(dir, session string, snap core.Snapshot) (retErr error) {
	base := fmt.Sprintf("%s/%s-snap%03d", dir, session, snap.Seq)
	defer func() {
		if retErr != nil {
			os.Remove(base + ".dot")
			os.Remove(base + ".json")
		}
	}()
	title := fmt.Sprintf("%s snapshot %d", session, snap.Seq)
	if err := os.WriteFile(base+".dot", []byte(core.ToDOT(snap.DAG, title)), 0o644); err != nil {
		return err
	}
	f, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	if err := core.WriteJSON(f, snap.DAG); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
