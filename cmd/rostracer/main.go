// Command rostracer runs a built-in ROS2 application set under the eBPF
// tracers inside the simulated host and writes the collected trace to a
// trace database (Fig. 2's deployment flow).
//
// Usage:
//
//	rostracer -app avp -duration 20s -runs 3 -out ./traces [-seed 1] [-cpus 12]
//	rostracer -app syn ...
//	rostracer -app both ...
//
// Each run becomes one session in the store, segmented every -segment of
// virtual time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rostracer: ")

	app := flag.String("app", "avp", "application to trace: avp, syn, or both")
	duration := flag.Duration("duration", 20*time.Second, "virtual time to trace per run")
	segment := flag.Duration("segment", 5*time.Second, "virtual time per trace segment")
	runs := flag.Int("runs", 1, "number of runs (sessions)")
	out := flag.String("out", "./traces", "trace database directory")
	seed := flag.Uint64("seed", 1, "base random seed")
	cpus := flag.Int("cpus", 12, "simulated CPU count")
	jsonl := flag.Bool("jsonl", false, "additionally dump each session as JSONL")
	unfilteredKernel := flag.Bool("unfiltered-kernel", false, "disable PID filtering in the kernel tracer")
	flag.Parse()

	build, err := buildFunc(*app)
	if err != nil {
		log.Fatal(err)
	}
	store, err := trace.NewStore(*out)
	if err != nil {
		log.Fatal(err)
	}

	for run := 0; run < *runs; run++ {
		session := fmt.Sprintf("%s-run%03d", *app, run)
		if err := traceOneRun(store, session, build, *seed+uint64(run), *cpus,
			sim.Duration(*duration), sim.Duration(*segment), !*unfilteredKernel, *jsonl, *out); err != nil {
			log.Fatalf("run %d: %v", run, err)
		}
		log.Printf("session %s written to %s", session, *out)
	}
}

func buildFunc(app string) (func(*rclcpp.World), error) {
	switch app {
	case "avp":
		return func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, nil
	case "syn":
		return func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }, nil
	case "both":
		return harness.BuildBoth(1), nil
	}
	return nil, fmt.Errorf("unknown app %q (want avp, syn, or both)", app)
}

func traceOneRun(store *trace.Store, session string, build func(*rclcpp.World),
	seed uint64, cpus int, duration, segment sim.Duration, filtered, jsonl bool, outDir string) (retErr error) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		return err
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		return err
	}
	if err := b.StartRT(); err != nil {
		return err
	}
	if err := b.StartKernel(filtered); err != nil {
		return err
	}
	build(w)
	b.StopInit()

	// The periodic-drain loop is fully streaming: each period's ring
	// segments decode and merge directly into the per-segment store
	// collector (and, when asked, the JSONL sink), so peak memory is one
	// segment — never the whole run. Successive drains stay globally
	// (Time, Seq) ordered, which keeps the concatenated JSONL identical
	// to what a whole-run merge would emit.
	var jsonlSink *trace.JSONLSink
	if jsonl {
		jsonlPath := fmt.Sprintf("%s/%s.jsonl", outDir, session)
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		// A run that fails mid-way must not leave a truncated .jsonl
		// behind looking like a complete trace.
		defer func() {
			if retErr != nil {
				os.Remove(jsonlPath)
			}
		}()
		jsonlSink = trace.NewJSONLSink(f)
	}
	totalEvents := 0
	segIdx := 0
	for elapsed := sim.Duration(0); elapsed < duration; elapsed += segment {
		step := segment
		if duration-elapsed < step {
			step = duration - elapsed
		}
		w.Run(step)
		var col trace.Collector
		sink := trace.Sink(&col)
		if jsonlSink != nil {
			sink = trace.MultiSink(&col, jsonlSink)
		}
		if err := b.StreamTo(sink); err != nil {
			return err
		}
		if jsonlSink != nil {
			// Encoding errors are sticky in the sink; surface them at the
			// segment that hit them instead of simulating the rest of the
			// run first.
			if err := jsonlSink.Err(); err != nil {
				return err
			}
		}
		if err := store.SaveSegment(session, segIdx, &col.Trace); err != nil {
			return err
		}
		totalEvents += col.Trace.Len()
		segIdx++
	}
	if jsonlSink != nil {
		if err := jsonlSink.Flush(); err != nil {
			return err
		}
	}
	log.Printf("  %d events, %.2f MB perf payload, probe cost %.4f cores",
		totalEvents, float64(b.TraceBytes())/1e6,
		w.Runtime().CostNs()/float64(duration))
	// Per-CPU ring accounting, as a real perf_event_array poller reports
	// it: payload per CPU, and any overruns attributed to the ring that
	// dropped them.
	bytesPerCPU := b.BytesPerCPU()
	lostPerCPU := b.LostPerCPU()
	for cpu := range bytesPerCPU {
		if bytesPerCPU[cpu] == 0 && lostPerCPU[cpu] == 0 {
			continue
		}
		log.Printf("  cpu%-2d %8.3f MB, %d lost", cpu, float64(bytesPerCPU[cpu])/1e6, lostPerCPU[cpu])
	}
	if lost := b.Lost(); lost > 0 {
		log.Printf("  WARNING: %d records lost to ring overruns", lost)
	}
	return nil
}
