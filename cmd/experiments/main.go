// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. VI), plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments                  # run everything at paper scale (50 runs)
//	experiments -run tableII     # one experiment
//	experiments -runs 10 -duration 10s   # smaller scale
//
// Output is plain text: the regenerated table/series followed by an
// OK/MISMATCH verdict on the reproduced shape.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/sim"
)

var experiments = map[string]func(harness.Config) (harness.Result, error){
	"tableI":           harness.TableIExperiment,
	"fig3a":            harness.Fig3aExperiment,
	"fig3b":            harness.Fig3bExperiment,
	"tableII":          harness.TableIIExperiment,
	"fig4":             harness.Fig4Experiment,
	"overheads":        harness.OverheadsExperiment,
	"fig2":             harness.Fig2Experiment,
	"ablation-service": harness.AblationServiceExperiment,
	"ablation-sync":    harness.AblationSyncExperiment,
	"validation":       harness.ValidationExperiment,
	"capacity-plan":    harness.CapacityPlanExperiment,
	"adaptive-drain":   harness.AdaptiveDrainExperiment,
	"chaos":            harness.ChaosExperiment,
}

var order = []string{
	"tableI", "fig3a", "fig3b", "tableII", "fig4",
	"overheads", "fig2", "ablation-service", "ablation-sync", "validation",
	"capacity-plan", "adaptive-drain", "chaos",
}

func main() {
	log.SetFlags(0)
	run := flag.String("run", "", "experiment to run (default: all)")
	runs := flag.Int("runs", 50, "runs per experiment (paper: 50)")
	duration := flag.Duration("duration", 20*time.Second, "virtual duration per run")
	cpus := flag.Int("cpus", 12, "simulated CPU count (paper: Ryzen 3900X, 12 cores)")
	seed := flag.Uint64("seed", 1, "base seed")
	dot := flag.Bool("dot", false, "print DOT graphs attached to figure experiments")
	flag.Parse()

	cfg := harness.Config{
		Runs: *runs, Duration: sim.Duration(*duration), CPUs: *cpus, Seed: *seed,
	}

	names := order
	if *run != "" {
		if _, ok := experiments[*run]; !ok {
			log.Fatalf("unknown experiment %q; have %v", *run, order)
		}
		names = []string{*run}
	}

	failures := 0
	for _, name := range names {
		start := time.Now()
		r, err := experiments[name](cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if !*dot {
			r.Notes = filterDOT(r.Notes)
		}
		fmt.Println(r.String())
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
		if !r.OK {
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) did not reproduce the expected shape\n", failures)
		os.Exit(1)
	}
}

func filterDOT(notes []string) []string {
	var out []string
	for _, n := range notes {
		if len(n) >= 7 && n[:7] == "digraph" {
			continue
		}
		out = append(out, n)
	}
	return out
}
