// Command modelsynth reads traces from a trace database and synthesizes
// the timing model: Algorithm 1 per node, Algorithm 2 for execution times,
// and the DAG-construction rules of Sec. IV. Per-session DAGs are merged
// (the paper's experiment methodology).
//
// Usage:
//
//	modelsynth -in ./traces [-dot model.dot] [-json model.json] [-mode-prefix avp]
//	modelsynth -in ./traces -t0 2s -t1 8s -kinds sched_switch,P6
//
// With -salvage, damaged sessions degrade instead of aborting: each
// segment streams every complete record up to its damage point and the
// per-segment salvage report (events recovered, bytes dropped, damage
// cause) is printed. -fsck only scans and classifies damage, without
// synthesizing.
//
// -t0/-t1/-kinds/-node restrict synthesis to a slice of each session
// without reading the rest: on v2 segments the store's footer index
// seeks straight to the overlapping blocks (v1 segments fall back to a
// filtered scan). The per-session block-skip statistics are printed.
// Filters use the strict read path and cannot combine with -salvage.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/tracesynth/rostracer/internal/analysis"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelsynth: ")

	in := flag.String("in", "./traces", "trace database directory")
	dotOut := flag.String("dot", "", "write Graphviz DOT to this file")
	jsonOut := flag.String("json", "", "write JSON model to this file")
	prefix := flag.String("session-prefix", "", "only use sessions whose name has this prefix")
	chains := flag.Bool("chains", false, "print computation chains and WCET bounds")
	loads := flag.Bool("loads", false, "print processor loads and a 4-core greedy binding")
	span := flag.Duration("span", 0, "observation span per session for -loads (0 = infer)")
	salvage := flag.Bool("salvage", false, "recover damaged sessions: stream every complete record up to each segment's damage point")
	fsck := flag.Bool("fsck", false, "scan the store and classify segment damage, then exit (nonzero if any)")
	t0 := flag.Duration("t0", 0, "only synthesize from events at or after this virtual time (indexed seek on v2 segments)")
	t1 := flag.Duration("t1", 0, "only synthesize from events at or before this virtual time (0 = unbounded)")
	kindList := flag.String("kinds", "", "comma-separated event kinds to synthesize from, e.g. sched_switch,P6,execute_timer:entry (empty = all)")
	node := flag.String("node", "", "only synthesize from events of this node (blocks without it are skipped via the v2 string tables)")
	parallelism := flag.Int("parallelism", 0, "decode workers for the parallel read paths (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	filter := trace.Filter{
		T0:   sim.Time(t0.Nanoseconds()),
		T1:   sim.Time(t1.Nanoseconds()),
		Node: *node,
	}
	filtering := *t0 != 0 || *t1 != 0 || *kindList != "" || *node != ""
	for _, name := range strings.Split(*kindList, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		k, ok := trace.ParseKind(name)
		if !ok {
			log.Fatalf("unknown kind %q in -kinds (spellings: %q, %q, %q)",
				name, trace.KindTakeInt, "P6", "rmw_take_int")
		}
		filter.Kinds = append(filter.Kinds, k)
	}
	if filtering && (*salvage || *fsck) {
		log.Fatal("-t0/-t1/-kinds/-node use the strict indexed read path and cannot combine with -salvage or -fsck")
	}

	store, err := trace.NewStore(*in)
	if err != nil {
		log.Fatal(err)
	}
	store.Parallelism = *parallelism
	if *fsck {
		rep, err := store.Fsck()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.String())
		if rep.Damaged() > 0 {
			os.Exit(1)
		}
		return
	}
	sessions, err := store.Sessions()
	if err != nil {
		log.Fatal(err)
	}
	var dags []*core.DAG
	var inferredSpan sim.Duration
	degraded := false
	for _, s := range sessions {
		if *prefix != "" && !strings.HasPrefix(s, *prefix) {
			continue
		}
		// Each session streams off disk straight into the incremental
		// synthesis sink: segment records decode one at a time, the k-way
		// merge holds one event per segment, and sched events fold online —
		// a multi-GB session synthesizes without ever materializing.
		sink := core.NewSynthesizeSink()
		var spanSink trace.SpanTracker
		if *salvage {
			rep, err := store.SalvageSession(s, trace.MultiSink(sink, &spanSink))
			if err != nil {
				log.Fatalf("salvaging %s: %v", s, err)
			}
			if rep.Damaged() > 0 {
				degraded = true
			}
			log.Print(rep.String())
		} else if filtering {
			stats, err := store.QuerySession(s, filter, trace.MultiSink(sink, &spanSink))
			if err != nil {
				log.Fatalf("querying %s: %v", s, err)
			}
			log.Printf("session %s: %d/%d blocks read (%d skipped by index, %d footers rebuilt), %d records decoded, %d matched, %d decode workers",
				s, stats.BlocksRead, stats.BlocksTotal, stats.BlocksSkipped,
				stats.FootersRebuilt, stats.RecordsDecoded, stats.RecordsMatched,
				store.ResolveParallelism())
		} else if err := store.StreamSession(s, trace.MultiSink(sink, &spanSink)); err != nil {
			log.Fatalf("loading %s: %v (re-run with -salvage to recover the undamaged prefix)", s, err)
		}
		first, last := spanSink.Span()
		inferredSpan += last.Sub(first)
		dags = append(dags, sink.DAG())
		log.Printf("session %s: %d events, %d decode workers", s, spanSink.Total(), store.ResolveParallelism())
	}
	if len(dags) == 0 {
		log.Fatal("no sessions found")
	}
	d := core.MergeDAGs(dags...)

	fmt.Print(core.Summary(d))

	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(core.ToDOT(d, "synthesized timing model")), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("DOT written to %s", *dotOut)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.WriteJSON(f, d); err != nil {
			f.Close()
			log.Fatal(err)
		}
		// A failed close means the model file is short on disk even though
		// every write "succeeded" — that must not pass silently.
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s: %v", *jsonOut, err)
		}
		log.Printf("JSON written to %s", *jsonOut)
	}
	if *chains {
		fmt.Println("\ncomputation chains:")
		for _, c := range analysis.Chains(d, 0) {
			bound := analysis.ChainWCETBound(d, c)
			fmt.Printf("  [bound %.2f ms] %s\n", bound.Milliseconds(), renderChain(d, c))
		}
	}
	if *loads {
		obsSpan := sim.Duration(*span)
		if obsSpan == 0 {
			obsSpan = inferredSpan
		}
		fmt.Println("\nprocessor loads:")
		ls := analysis.Loads(d, obsSpan)
		for _, l := range ls {
			fmt.Printf("  %-60.60s %6.2f Hz  %8.2f ms  %6.2f%%\n",
				l.Key, l.RateHz, l.ACET.Milliseconds(), 100*l.Utilization)
		}
		b := analysis.GreedyBinding(analysis.NodeLoads(ls), 4)
		fmt.Println("greedy 4-core binding:")
		for node, cpu := range b.CPUOf {
			fmt.Printf("  cpu%d <- %s\n", cpu, node)
		}
		fmt.Printf("max core load: %.2f%%\n", 100*b.MaxLoad)
	}
	if degraded {
		// The model above was synthesized from a damaged store: every
		// complete record was used, but some events are gone. Exit nonzero
		// so scripted pipelines notice.
		log.Print("WARNING: one or more sessions were salvaged from damage; the model covers surviving events only")
		os.Exit(1)
	}
}

func renderChain(d *core.DAG, c analysis.Chain) string {
	var parts []string
	for _, k := range c.Keys {
		parts = append(parts, d.Vertices[k].Label())
	}
	return strings.Join(parts, " -> ")
}
