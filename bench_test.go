// Package rostracer_bench benchmarks the full reproduction pipeline: one
// benchmark per paper artifact (Table I, Table II, Fig. 2, Fig. 3a,
// Fig. 3b, Fig. 4, overheads, ablations, validation) plus microbenchmarks
// of the substrates the artifacts rest on (eBPF dispatch, Algorithms 1/2,
// DAG synthesis and merge).
//
// Run with: go test -bench=. -benchmem
package rostracer_bench

import (
	"fmt"
	"sort"
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/metrics"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// benchCfg scales experiments so one iteration stays in the tens of
// milliseconds; the experiment *structure* is identical to paper scale.
func benchCfg() harness.Config {
	return harness.Config{Runs: 2, Duration: 4 * sim.Second, CPUs: 8, Seed: 9}
}

func runExperiment(b *testing.B, f func(harness.Config) (harness.Result, error), cfg harness.Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(9 + i)
		r, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !r.OK {
			b.Fatalf("experiment shape mismatch:\n%s", r.Text)
		}
	}
}

// BenchmarkTableI_ProbeInventory regenerates Table I (E1).
func BenchmarkTableI_ProbeInventory(b *testing.B) {
	runExperiment(b, harness.TableIExperiment, benchCfg())
}

// BenchmarkFig3a_SYNSynthesis regenerates Fig. 3a (E2).
func BenchmarkFig3a_SYNSynthesis(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 8 * sim.Second
	runExperiment(b, harness.Fig3aExperiment, cfg)
}

// BenchmarkFig3b_AVPSynthesis regenerates Fig. 3b (E3).
func BenchmarkFig3b_AVPSynthesis(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 8 * sim.Second
	runExperiment(b, harness.Fig3bExperiment, cfg)
}

// BenchmarkTableII_AVPStats regenerates Table II (E4).
func BenchmarkTableII_AVPStats(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 4
	cfg.Duration = 15 * sim.Second
	cfg.CPUs = 12
	runExperiment(b, harness.TableIIExperiment, cfg)
}

// BenchmarkFig4_Convergence regenerates Fig. 4 (E5).
func BenchmarkFig4_Convergence(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 6
	cfg.Duration = 10 * sim.Second
	cfg.CPUs = 12
	runExperiment(b, harness.Fig4Experiment, cfg)
}

// BenchmarkOverheads_Tracing regenerates the Sec. VI overheads (E6).
func BenchmarkOverheads_Tracing(b *testing.B) {
	runExperiment(b, harness.OverheadsExperiment, benchCfg())
}

// BenchmarkFig2_MergeStrategies regenerates the Fig. 2 strategies (E7).
func BenchmarkFig2_MergeStrategies(b *testing.B) {
	runExperiment(b, harness.Fig2Experiment, benchCfg())
}

// BenchmarkAblationService regenerates the service-splitting ablation (E8).
func BenchmarkAblationService(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 8 * sim.Second
	runExperiment(b, harness.AblationServiceExperiment, cfg)
}

// BenchmarkAblationSync regenerates the synchronization ablation (E9).
func BenchmarkAblationSync(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 6
	cfg.Duration = 6 * sim.Second
	cfg.CPUs = 12
	runExperiment(b, harness.AblationSyncExperiment, cfg)
}

// BenchmarkValidation_MeasuredVsDesigned regenerates E10.
func BenchmarkValidation_MeasuredVsDesigned(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 2
	cfg.Duration = 4 * sim.Second
	runExperiment(b, harness.ValidationExperiment, cfg)
}

// --- substrate microbenchmarks ---

// avpTrace produces one AVP trace for the synthesis microbenches.
func avpTrace(b *testing.B, seconds sim.Duration) *trace.Trace {
	b.Helper()
	s, err := harness.RunSession(5, 8, seconds, true, func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{})
	})
	if err != nil {
		b.Fatal(err)
	}
	return s.Trace
}

// BenchmarkSimulation_AVPSecond measures simulating + tracing one virtual
// second of the AVP pipeline.
func BenchmarkSimulation_AVPSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := harness.RunSession(uint64(i), 8, sim.Second, true, func(w *rclcpp.World) {
			apps.BuildAVP(w, apps.AVPConfig{})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlg1_ExtractModel measures Algorithm 1 over a 20 s AVP trace.
func BenchmarkAlg1_ExtractModel(b *testing.B) {
	tr := avpTrace(b, 20*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.ExtractModel(tr)
		if len(m.Callbacks) == 0 {
			b.Fatal("no callbacks")
		}
	}
}

// BenchmarkAlg2_ExecTime measures the execution-time computation on a
// preemption-heavy switch sequence.
func BenchmarkAlg2_ExecTime(b *testing.B) {
	var sched []trace.Event
	for i := 0; i < 2000; i++ {
		t := sim.Time(i * 1000)
		prev, next := uint32(7), uint32(9)
		if i%2 == 1 {
			prev, next = 9, 7
		}
		sched = append(sched, trace.Event{Time: t, Seq: uint64(i), Kind: trace.KindSchedSwitch, PrevPID: prev, NextPID: next})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.ExecTime(500, 1999500, 0, 1<<62, 7, sched); got <= 0 {
			b.Fatal("bad ET")
		}
	}
}

// BenchmarkDAG_Synthesize measures full DAG synthesis from a trace.
func BenchmarkDAG_Synthesize(b *testing.B) {
	tr := avpTrace(b, 20*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.Synthesize(tr)
		if len(d.Vertices) != 7 {
			b.Fatalf("vertices %d", len(d.Vertices))
		}
	}
}

// BenchmarkDAG_Merge measures merging 50 per-run DAGs.
func BenchmarkDAG_Merge(b *testing.B) {
	tr := avpTrace(b, 5*sim.Second)
	base := core.Synthesize(tr)
	dags := make([]*core.DAG, 50)
	for i := range dags {
		dags[i] = base
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.MergeDAGs(dags...)
		if len(d.Vertices) != 7 {
			b.Fatal("merge broke")
		}
	}
}

// BenchmarkEBPF_ProbeDispatch measures one uprobe firing through the
// verifier-approved interpreter (the per-event tracing cost).
func BenchmarkEBPF_ProbeDispatch(b *testing.B) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	bundle, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		b.Fatal(err)
	}
	if err := bundle.StartRT(); err != nil {
		b.Fatal(err)
	}
	node := w.NewNode("bench", 5, 0)
	_ = node
	// Fire through a pre-resolved site, as the middleware does.
	site := w.Runtime().Site(ebpf.Symbol{Lib: "rclcpp", Func: "execute_subscription"})
	pid := node.PID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site.FireEntry(pid, 0)
		if i&4095 == 4095 {
			// Drain like the user-space poller does; an undrained
			// buffer measures slice growth, not dispatch.
			b.StopTimer()
			bundle.Drain()
			b.StartTimer()
		}
	}
}

// dispatchRuntime builds a runtime with a representative tracer-shaped
// program (ctx loads, ALU, branches, four map-helper calls, no perf
// output so the workload is pure dispatch) attached to one uprobe.
// hotThreshold configures the tier-1 promotion point (0 pins tier 0).
func dispatchRuntime(b *testing.B, predecode bool, hotThreshold uint64) (*ebpf.Runtime, ebpf.Symbol) {
	b.Helper()
	rt := ebpf.NewRuntime(func() int64 { return 42 }, nil)
	rt.SetPredecode(predecode)
	rt.SetHotThreshold(hotThreshold)
	hm := ebpf.NewHashMap("state", 1024)
	fd := rt.RegisterMap(hm)
	p := ebpf.NewAssembler("dispatch_bench").
		LdxCtx(ebpf.R6, ebpf.R1, 0).
		LdxCtx(ebpf.R7, ebpf.R1, 1).
		MovReg(ebpf.R8, ebpf.R6).
		MulImm(ebpf.R8, 31).
		AddReg(ebpf.R8, ebpf.R7).
		AndImm(ebpf.R8, 0xff).
		JgtImm(ebpf.R8, 128, "high").
		AddImm(ebpf.R8, 17).
		Ja("store").
		Label("high").
		SubImm(ebpf.R8, 9).
		Label("store").
		MovImm(ebpf.R1, fd).
		MovReg(ebpf.R2, ebpf.R8).
		MovReg(ebpf.R3, ebpf.R6).
		Call(ebpf.HelperMapUpdate).
		MovImm(ebpf.R1, fd).
		MovReg(ebpf.R2, ebpf.R8).
		Call(ebpf.HelperMapLookup).
		MovReg(ebpf.R9, ebpf.R0).
		MovImm(ebpf.R1, fd).
		MovImm(ebpf.R2, 999).
		Call(ebpf.HelperMapLookupExist).
		AddReg(ebpf.R9, ebpf.R0).
		Call(ebpf.HelperKtimeGetNs).
		AddReg(ebpf.R9, ebpf.R0).
		Call(ebpf.HelperGetCurrentPid).
		AddReg(ebpf.R9, ebpf.R0).
		MovReg(ebpf.R0, ebpf.R9).
		Exit().
		MustAssemble()
	if err := rt.Load(p, 2); err != nil {
		b.Fatal(err)
	}
	sym := ebpf.Symbol{Lib: "rclcpp", Func: "bench_target"}
	if _, err := rt.AttachUprobe(sym, p); err != nil {
		b.Fatal(err)
	}
	return rt, sym
}

// BenchmarkEBPF_DispatchDecoded measures one probe fire through the
// tiered decode pipeline in its steady state: the warmup fires cross the
// hotness threshold, so the measured loop dispatches over the
// profile-guided tier-1 form (fused helper patterns, compacted hot
// blocks) exactly as a long tracing session does.
func BenchmarkEBPF_DispatchDecoded(b *testing.B) {
	rt, sym := dispatchRuntime(b, true, ebpf.DefaultHotThreshold())
	for i := uint64(0); i <= ebpf.DefaultHotThreshold(); i++ {
		rt.FireUprobe(7, 0, sym, i, i>>3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.FireUprobe(7, 0, sym, uint64(i), uint64(i>>3))
	}
}

// BenchmarkEBPF_DispatchTier2 measures the steady-state fire of a
// program whose hot block ends in a decisively biased branch, so the
// tier-1 promotion also fuses a guarded cross-block trace: the hot
// block, the guard check and the taken-side continuation retire as one
// superinstruction. The measured loop runs ~99% guard hits (the input
// distribution matches the warmup bias), which is the workload tier 2
// exists for. dispatchRuntime's program is deliberately ~50/50 on its
// branch, so it never forms a trace — this benchmark needs its own
// skewed program.
func BenchmarkEBPF_DispatchTier2(b *testing.B) {
	rt := ebpf.NewRuntime(func() int64 { return 42 }, nil)
	rt.SetPredecode(true)
	rt.SetHotThreshold(ebpf.DefaultHotThreshold())
	hm := ebpf.NewHashMap("state", 1024)
	fd := rt.RegisterMap(hm)
	p := ebpf.NewAssembler("tier2_bench").
		LdxCtx(ebpf.R6, ebpf.R1, 0).
		LdxCtx(ebpf.R7, ebpf.R1, 1).
		MovReg(ebpf.R8, ebpf.R6).
		AndImm(ebpf.R8, 0xff).
		JgtImm(ebpf.R8, 2, "hot").
		// Cold side: taken for 3 of every 256 inputs — rare enough that
		// the promotion fuses the taken side behind a guard.
		AddImm(ebpf.R8, 1).
		MovReg(ebpf.R0, ebpf.R8).
		Exit().
		Label("hot").
		AddReg(ebpf.R8, ebpf.R7).
		AndImm(ebpf.R8, 0xff).
		MovImm(ebpf.R1, fd).
		MovReg(ebpf.R2, ebpf.R8).
		MovReg(ebpf.R3, ebpf.R6).
		Call(ebpf.HelperMapUpdate).
		MovImm(ebpf.R1, fd).
		MovReg(ebpf.R2, ebpf.R8).
		Call(ebpf.HelperMapLookup).
		MovReg(ebpf.R9, ebpf.R0).
		Call(ebpf.HelperKtimeGetNs).
		AddReg(ebpf.R9, ebpf.R0).
		MovReg(ebpf.R0, ebpf.R9).
		Exit().
		MustAssemble()
	if err := rt.Load(p, 2); err != nil {
		b.Fatal(err)
	}
	sym := ebpf.Symbol{Lib: "rclcpp", Func: "tier2_target"}
	if _, err := rt.AttachUprobe(sym, p); err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i <= ebpf.DefaultHotThreshold(); i++ {
		rt.FireUprobe(7, 0, sym, i, i>>3)
	}
	if p.DecodeTier() != 2 {
		b.Fatalf("warmup left program at tier %d, want 2 (no trace formed)", p.DecodeTier())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.FireUprobe(7, 0, sym, uint64(i), uint64(i>>3))
	}
}

// BenchmarkEBPF_DispatchTier0 measures the same fire pinned to the
// load-time tier-0 decode (no profile-guided re-decode) — the before
// side of the tier-1 optimization.
func BenchmarkEBPF_DispatchTier0(b *testing.B) {
	rt, sym := dispatchRuntime(b, true, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.FireUprobe(7, 0, sym, uint64(i), uint64(i>>3))
	}
}

// BenchmarkEBPF_DispatchRaw measures the same fire through the raw
// reference interpreter (per-retire operand resolution and map-fd
// hashing) — the before side of the decode optimization.
func BenchmarkEBPF_DispatchRaw(b *testing.B) {
	rt, sym := dispatchRuntime(b, false, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.FireUprobe(7, 0, sym, uint64(i), uint64(i>>3))
	}
}

// benchDAG builds a synthetic DAG large enough to expose query scaling:
// a layered graph with fan-in and fan-out.
func benchDAG(vertices, width int) *core.DAG {
	d := core.NewDAG()
	key := func(i int) string {
		return "node" + string(rune('A'+i%26)) + "|sub|" + string(rune('0'+i%10)) + string(rune('a'+(i/26)%26))
	}
	for i := 0; i < vertices; i++ {
		d.Vertices[key(i)] = &core.Vertex{Key: key(i)}
	}
	for i := 0; i < vertices; i++ {
		for j := 1; j <= width; j++ {
			d.AddEdge(core.Edge{From: key(i), To: key((i + j) % vertices), Topic: "/t"})
		}
	}
	return d
}

// BenchmarkDAG_EdgeQueries measures InEdges/OutEdges over every vertex of
// a 260-vertex, ~1300-edge DAG — the access pattern of the analysis
// passes (chains, junction classification).
func BenchmarkDAG_EdgeQueries(b *testing.B) {
	d := benchDAG(260, 5)
	keys := d.VertexKeys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, k := range keys {
			total += len(d.InEdges(k)) + len(d.OutEdges(k))
		}
		if total == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkDAG_VertexByLabelSubstring measures the label lookup the
// Table II row mapping performs per callback.
func BenchmarkDAG_VertexByLabelSubstring(b *testing.B) {
	d := benchDAG(260, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := d.VertexByLabelSubstring("nodeZ|sub"); v == nil {
			b.Fatal("missing vertex")
		}
	}
}

// BenchmarkTrace_MergeSorted measures merging 4 already-sorted segments
// (the Fig. 2 segmented-session path) through the k-way merge.
func BenchmarkTrace_MergeSorted(b *testing.B) {
	tr := avpTrace(b, 8*sim.Second)
	quarter := tr.Len() / 4
	var segs []*trace.Trace
	for i := 0; i < 4; i++ {
		seg := &trace.Trace{Events: tr.Events[i*quarter : (i+1)*quarter]}
		segs = append(segs, seg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := trace.Merge(segs...)
		if m.Len() != 4*quarter {
			b.Fatal("merge lost events")
		}
	}
}

// BenchmarkTrace_MergePerCPUStreams measures the many-stream merge the
// per-CPU tracer bundle drains through: 24 single-CPU streams (3 tracers
// × 8 CPUs), each already (Time, Seq) sorted, combined by the tournament
// heap.
func BenchmarkTrace_MergePerCPUStreams(b *testing.B) {
	tr := avpTrace(b, 8*sim.Second)
	const k = 24
	streams := make([]*trace.Trace, k)
	for i := range streams {
		streams[i] = &trace.Trace{}
	}
	// Round-robin split of a sorted trace: every stream stays sorted, as
	// a per-CPU ring's emission stream is.
	for i, ev := range tr.Events {
		s := streams[i%k]
		s.Events = append(s.Events, ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trace.Merge(streams...).Len() != tr.Len() {
			b.Fatal("merge lost events")
		}
	}
}

// BenchmarkEBPF_PerfEmitPerCPU measures perf-ring emission round-robin
// across 8 CPU rings — the buffer half of perf_event_output — with the
// periodic drain a user-space poller performs.
func BenchmarkEBPF_PerfEmitPerCPU(b *testing.B) {
	pb := ebpf.NewPerfBuffer("bench", 0)
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.Emit(i&7, int64(i), payload)
		if i&8191 == 8191 {
			b.StopTimer()
			pb.Drain()
			b.StartTimer()
		}
	}
}

// BenchmarkEBPF_PerfDrainMerged measures the merged lock-free drain: 8K
// records spread over 8 CPU rings, k-way merged back into (Time, Seq)
// order.
func BenchmarkEBPF_PerfDrainMerged(b *testing.B) {
	pb := ebpf.NewPerfBuffer("bench", 0)
	payload := make([]byte, 64)
	const records = 8192
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for r := 0; r < records; r++ {
			pb.Emit(r&7, int64(r), payload)
		}
		b.StartTimer()
		if len(pb.Drain()) != records {
			b.Fatal("drain lost records")
		}
	}
}

// BenchmarkTrace_FilterPID measures the per-PID sub-trace split Algorithm 1
// performs for every traced process.
func BenchmarkTrace_FilterPID(b *testing.B) {
	tr := avpTrace(b, 8*sim.Second)
	pids := tr.PIDs()
	if len(pids) == 0 {
		b.Fatal("no pids")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.FilterPID(pids[i%len(pids)]).Len() == 0 {
			b.Fatal("empty filter")
		}
	}
}

// BenchmarkTraceCodec_Binary measures the trace store codec.
func BenchmarkTraceCodec_Binary(b *testing.B) {
	tr := avpTrace(b, 10*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf))
	}
}

type writeCounter int

func (w *writeCounter) Write(p []byte) (int, error) {
	*w += writeCounter(len(p))
	return len(p), nil
}

// benchTracedWorld boots an AVP+SYN world under all three tracers for
// the streaming-drain benchmarks; each iteration refills the rings by
// advancing the simulation off the clock.
func benchTracedWorld(b *testing.B) (*rclcpp.World, *tracers.Bundle) {
	b.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 8, Seed: 5})
	bd, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		b.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{bd.StartInit(), bd.StartRT(), bd.StartKernel(true)} {
		if err != nil {
			b.Fatal(err)
		}
	}
	harness.BuildBoth(1)(w)
	bd.StopInit()
	return w, bd
}

// BenchmarkBundle_BatchDrain measures the batch drain of one 500 ms
// segment: decode + merge into a materialized trace. Its allocations
// carry the full merged event slice — the peak-memory cost the
// streaming path exists to avoid.
func BenchmarkBundle_BatchDrain(b *testing.B) {
	w, bd := benchTracedWorld(b)
	events := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.Run(500 * sim.Millisecond)
		b.StartTimer()
		tr, err := bd.Drain()
		if err != nil {
			b.Fatal(err)
		}
		events += tr.Len()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkBundle_StreamDrain measures the streaming drain of the same
// 500 ms segment into a counting sink: per-ring cursors, lazy decode,
// tournament merge — no event slice is ever built, so allocations stay
// per-drain-constant instead of per-event.
func BenchmarkBundle_StreamDrain(b *testing.B) {
	w, bd := benchTracedWorld(b)
	var kc trace.KindCounter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.Run(500 * sim.Millisecond)
		b.StartTimer()
		if err := bd.StreamTo(&kc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(kc.Total())/float64(b.N), "events/op")
}

// BenchmarkBundle_StreamSynthesize measures the full streaming pipeline
// stage: one 500 ms segment drained straight into the incremental
// Algorithm 1/2 builder (sched events folded online, ROS events
// buffered).
func BenchmarkBundle_StreamSynthesize(b *testing.B) {
	w, bd := benchTracedWorld(b)
	mb := core.NewModelBuilder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.Run(500 * sim.Millisecond)
		b.StartTimer()
		if err := bd.StreamTo(mb); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mb.SchedEventsFolded())/float64(b.N), "schedfolded/op")
}

// BenchmarkAlg1_StreamModel measures the incremental extraction over a
// 20 s AVP trace — the streaming counterpart of
// BenchmarkAlg1_ExtractModel (no clone, no sort, no per-PID sched
// filtering; exec times accumulate as events pass).
func BenchmarkAlg1_StreamModel(b *testing.B) {
	tr := avpTrace(b, 20*sim.Second)
	tr.SortByTime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb := core.NewModelBuilder()
		for _, e := range tr.Events {
			mb.Observe(e)
		}
		if len(mb.Finish().Callbacks) == 0 {
			b.Fatal("empty model")
		}
	}
}

// benchStoreSession writes one multi-segment AVP session into a fresh
// store — contiguous chunks of a (Time, Seq)-sorted whole-run trace,
// exactly the shape the rostracer periodic loop persists. Segments use
// the store default format (v2).
func benchStoreSession(b *testing.B, seconds sim.Duration, segments int) (*trace.Store, string, int) {
	return benchStoreSessionFormat(b, seconds, segments, 0)
}

// benchStoreSessionFormat is benchStoreSession with an explicit segment
// format (0 = the store default, v2).
func benchStoreSessionFormat(b *testing.B, seconds sim.Duration, segments int, format trace.Format) (*trace.Store, string, int) {
	b.Helper()
	tr := avpTrace(b, seconds)
	st, err := trace.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	st.Format = format
	per := (tr.Len() + segments - 1) / segments
	for seg := 0; seg < segments; seg++ {
		lo := min(seg*per, tr.Len())
		hi := min(lo+per, tr.Len())
		if err := st.SaveSegment("run", seg, &trace.Trace{Events: tr.Events[lo:hi]}); err != nil {
			b.Fatal(err)
		}
	}
	return st, "run", tr.Len()
}

// BenchmarkStoreLoadSession measures the batch read path of the trace
// database: materialize every event of a 10 s, 8-segment session into
// one merged trace. Its B/op carries the whole session — the peak-memory
// cost the streaming store path exists to avoid.
func BenchmarkStoreLoadSession(b *testing.B) {
	st, sess, want := benchStoreSession(b, 10*sim.Second, 8)
	b.ReportAllocs()
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		tr, err := st.LoadSession(sess)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() != want {
			b.Fatalf("loaded %d events, want %d", tr.Len(), want)
		}
		events += tr.Len()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkStoreStreamSession measures the streaming read path over the
// same session: segment cursors decode one record at a time and the
// k-way merge feeds the sink directly, so allocations are O(segments) —
// independent of how many events the session holds.
func BenchmarkStoreStreamSession(b *testing.B) {
	st, sess, want := benchStoreSession(b, 10*sim.Second, 8)
	b.ReportAllocs()
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		var kc trace.KindCounter
		if err := st.StreamSession(sess, &kc); err != nil {
			b.Fatal(err)
		}
		if kc.Total() != want {
			b.Fatalf("streamed %d events, want %d", kc.Total(), want)
		}
		events += kc.Total()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkStoreStreamSynthesize measures the paper's end goal on the
// persistent path: a stored session streaming straight into the
// incremental Algorithm 1/2 builder, disk to model, nothing
// materialized.
func BenchmarkStoreStreamSynthesize(b *testing.B) {
	st, sess, _ := benchStoreSession(b, 10*sim.Second, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb := core.NewModelBuilder()
		if err := st.StreamSession(sess, mb); err != nil {
			b.Fatal(err)
		}
		if len(mb.Finish().Callbacks) == 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkStoreStreamSessionV1 is BenchmarkStoreStreamSession over v1
// segments: the flat-record read path the v2 migration keeps alive, and
// the reference point for the v2 numbers above it.
func BenchmarkStoreStreamSessionV1(b *testing.B) {
	st, sess, want := benchStoreSessionFormat(b, 10*sim.Second, 8, trace.FormatV1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var kc trace.KindCounter
		if err := st.StreamSession(sess, &kc); err != nil {
			b.Fatal(err)
		}
		if kc.Total() != want {
			b.Fatalf("streamed %d events, want %d", kc.Total(), want)
		}
	}
}

// BenchmarkStoreQuerySession measures the indexed filtered read: a
// narrow time window (1% of a 10 s, 8-segment v2 session) answered
// through the footer indexes. The work is proportional to the blocks
// that overlap the window, not the session — compare against
// BenchmarkStoreStreamSession, which decodes every record to answer
// the same question.
func BenchmarkStoreQuerySession(b *testing.B) {
	st, sess, _ := benchStoreSession(b, 10*sim.Second, 8)
	f := trace.Filter{
		T0: sim.Time(5 * sim.Second),
		T1: sim.Time(5*sim.Second + 100*sim.Millisecond),
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last trace.QueryStats
	for i := 0; i < b.N; i++ {
		var kc trace.KindCounter
		stats, err := st.QuerySession(sess, f, &kc)
		if err != nil {
			b.Fatal(err)
		}
		if kc.Total() == 0 || kc.Total() != stats.RecordsMatched {
			b.Fatalf("window matched %d events (stats %+v)", kc.Total(), stats)
		}
		last = stats
	}
	b.ReportMetric(float64(last.RecordsMatched), "matched/op")
	b.ReportMetric(float64(last.BlocksRead), "blocks-read/op")
	b.ReportMetric(float64(last.BlocksSkipped), "blocks-skipped/op")
}

// countWriter counts bytes; the write benchmarks use it to report
// on-disk density without touching a filesystem.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// benchSegmentWrite encodes a 10 s AVP trace through one segment writer
// of the given format, reporting encode throughput and bytes/event.
func benchSegmentWrite(b *testing.B, format trace.Format) {
	tr := avpTrace(b, 10*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		var cw countWriter
		sw := trace.NewSegmentWriterFormat(&cw, format, 0)
		for _, e := range tr.Events {
			sw.Observe(e)
		}
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
		bytes = cw.n
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
	b.ReportMetric(float64(bytes)/float64(tr.Len()), "B/event")
}

// BenchmarkSegmentWriteV1 measures the flat v1 record encoder.
func BenchmarkSegmentWriteV1(b *testing.B) { benchSegmentWrite(b, trace.FormatV1) }

// BenchmarkSegmentWriteV2 measures the delta-compressed v2 block
// encoder; its B/event against V1's is the compression ratio
// docs/PERFORMANCE.md reports.
func BenchmarkSegmentWriteV2(b *testing.B) { benchSegmentWrite(b, trace.FormatV2) }

// --- parallel storage pipeline ---
//
// The three parallel read/write benchmarks pin Parallelism explicitly
// instead of inheriting GOMAXPROCS, so the concurrent structure
// (prefetch goroutines, decode pool, encode thread) is exercised — and
// its coordination overhead measured — even on a single-CPU runner. Run
// them with -cpu 1,4 to see the actual core scaling; on one core they
// report the overhead floor of the parallel paths, not a speedup.

// BenchmarkStoreStreamSessionParallel is BenchmarkStoreStreamSession
// with four prefetching segment decoders feeding the merge.
func BenchmarkStoreStreamSessionParallel(b *testing.B) {
	st, sess, want := benchStoreSession(b, 10*sim.Second, 8)
	st.Parallelism = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var kc trace.KindCounter
		if err := st.StreamSession(sess, &kc); err != nil {
			b.Fatal(err)
		}
		if kc.Total() != want {
			b.Fatalf("streamed %d events, want %d", kc.Total(), want)
		}
	}
}

// BenchmarkStoreQuerySessionParallel measures the concurrent block
// decode on a wide window (60% of the session, many blocks per
// segment), where the per-block fan-out has enough work to matter —
// the narrow-window query above reads too few blocks to parallelize.
func BenchmarkStoreQuerySessionParallel(b *testing.B) {
	st, sess, _ := benchStoreSession(b, 10*sim.Second, 8)
	st.Parallelism = 4
	f := trace.Filter{
		T0: sim.Time(2 * sim.Second),
		T1: sim.Time(8 * sim.Second),
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last trace.QueryStats
	for i := 0; i < b.N; i++ {
		var kc trace.KindCounter
		stats, err := st.QuerySession(sess, f, &kc)
		if err != nil {
			b.Fatal(err)
		}
		if kc.Total() == 0 || kc.Total() != stats.RecordsMatched {
			b.Fatalf("window matched %d events (stats %+v)", kc.Total(), stats)
		}
		last = stats
	}
	b.ReportMetric(float64(last.BlocksRead), "blocks-read/op")
	b.ReportMetric(float64(st.ResolveParallelism()), "workers")
}

// BenchmarkSegmentWriteV2Async measures the v2 encoder with block
// encoding on the background goroutine: the caller's cost per event is
// appending to the open block plus the double-buffer handoff at each
// block seal.
func BenchmarkSegmentWriteV2Async(b *testing.B) {
	tr := avpTrace(b, 10*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		var cw countWriter
		sw := trace.NewSegmentWriterFormat(&cw, trace.FormatV2, 0)
		sw.EnableAsync()
		for _, e := range tr.Events {
			sw.Observe(e)
		}
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
		bytes = cw.n
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
	b.ReportMetric(float64(bytes)/float64(tr.Len()), "B/event")
}

// BenchmarkMetricsSinkObserve measures the metrics sink's per-event fold
// — kind counter, publish-latency histogram, callback exec-time pairing —
// over a representative event mix. The sink rides every drain when
// -metrics-addr is set, so this path must stay allocation-free at steady
// state: topic/node histogram cells and PID bindings are cached on first
// sight, and the warmup observes the whole cycle before the timer starts
// so the measured loop only exercises the cached path.
func BenchmarkMetricsSinkObserve(b *testing.B) {
	reg := metrics.NewRegistry()
	s := metrics.NewSink(reg)
	topics := []string{"/image_raw", "/points_raw", "/tf", "/odom"}
	nodes := []string{"camera", "lidar", "fusion", "planner"}
	var events []trace.Event
	var tm sim.Time
	for i, n := range nodes {
		pid := uint32(100 + i)
		events = append(events, trace.Event{Time: tm, Kind: trace.KindCreateNode, PID: pid, Node: n})
		tm += 1000
		events = append(events,
			trace.Event{Time: tm, Kind: trace.KindSubCBStart, PID: pid},
			trace.Event{Time: tm + 100, Kind: trace.KindTakeInt, PID: pid, Topic: topics[i], SrcTS: int64(tm) - 50_000},
			trace.Event{Time: tm + 30_000, Kind: trace.KindSubCBEnd, PID: pid},
			trace.Event{Time: tm + 31_000, Kind: trace.KindDDSWrite, PID: pid, Topic: topics[i], SrcTS: int64(tm) + 31_000},
			trace.Event{Time: tm + 32_000, Kind: trace.KindSchedSwitch, PrevPID: pid, NextPID: 0},
		)
		tm += 40_000
	}
	for _, e := range events {
		s.Observe(e) // warm the topic/node/PID caches
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(events[i%len(events)])
	}
	if s.Events() == 0 {
		b.Fatal("sink observed nothing")
	}
}

// BenchmarkSnapshotIncremental measures one live Snapshot after the
// service has already folded sessions of increasing length. Each
// iteration folds a small fixed delta and snapshots; since the engine
// keeps persistent extraction and DAG state, ns/op must stay flat as
// the preload grows — the incremental property. (The batch pipeline's
// cost over the same preloads is BenchmarkAlg1_ExtractModel-shaped:
// linear in session length.)
func BenchmarkSnapshotIncremental(b *testing.B) {
	full := avpTrace(b, 16*sim.Second)
	full.SortByTime()
	for _, preload := range []sim.Duration{2 * sim.Second, 8 * sim.Second, 16 * sim.Second} {
		b.Run(fmt.Sprintf("preload=%ds", preload/sim.Second), func(b *testing.B) {
			cut := sort.Search(full.Len(), func(i int) bool {
				return full.Events[i].Time >= sim.Time(preload)
			})
			if cut == 0 {
				b.Fatal("empty preload")
			}
			svc := core.NewSnapshotService()
			svc.ObserveBatch(full.Events[:cut])
			if s := svc.Snapshot(); len(s.Model.Callbacks) == 0 {
				b.Fatal("empty model after preload")
			}
			// Monotone synthetic sched delta continuing past the preload:
			// folds through the full Observe path without disturbing the
			// extracted callbacks.
			tm := full.Events[cut-1].Time
			seq := full.Events[cut-1].Seq
			delta := make([]trace.Event, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range delta {
					tm += sim.Time(sim.Microsecond)
					seq++
					delta[j] = trace.Event{Time: tm, Seq: seq,
						Kind: trace.KindSchedSwitch, PrevPID: 1, NextPID: 2}
				}
				svc.ObserveBatch(delta)
				s := svc.Snapshot()
				if len(s.Model.Callbacks) == 0 || s.DAG == nil {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
}
