// Package rostracer_bench benchmarks the full reproduction pipeline: one
// benchmark per paper artifact (Table I, Table II, Fig. 2, Fig. 3a,
// Fig. 3b, Fig. 4, overheads, ablations, validation) plus microbenchmarks
// of the substrates the artifacts rest on (eBPF dispatch, Algorithms 1/2,
// DAG synthesis and merge).
//
// Run with: go test -bench=. -benchmem
package rostracer_bench

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/harness"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// benchCfg scales experiments so one iteration stays in the tens of
// milliseconds; the experiment *structure* is identical to paper scale.
func benchCfg() harness.Config {
	return harness.Config{Runs: 2, Duration: 4 * sim.Second, CPUs: 8, Seed: 9}
}

func runExperiment(b *testing.B, f func(harness.Config) (harness.Result, error), cfg harness.Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(9 + i)
		r, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !r.OK {
			b.Fatalf("experiment shape mismatch:\n%s", r.Text)
		}
	}
}

// BenchmarkTableI_ProbeInventory regenerates Table I (E1).
func BenchmarkTableI_ProbeInventory(b *testing.B) {
	runExperiment(b, harness.TableIExperiment, benchCfg())
}

// BenchmarkFig3a_SYNSynthesis regenerates Fig. 3a (E2).
func BenchmarkFig3a_SYNSynthesis(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 8 * sim.Second
	runExperiment(b, harness.Fig3aExperiment, cfg)
}

// BenchmarkFig3b_AVPSynthesis regenerates Fig. 3b (E3).
func BenchmarkFig3b_AVPSynthesis(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 8 * sim.Second
	runExperiment(b, harness.Fig3bExperiment, cfg)
}

// BenchmarkTableII_AVPStats regenerates Table II (E4).
func BenchmarkTableII_AVPStats(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 4
	cfg.Duration = 15 * sim.Second
	cfg.CPUs = 12
	runExperiment(b, harness.TableIIExperiment, cfg)
}

// BenchmarkFig4_Convergence regenerates Fig. 4 (E5).
func BenchmarkFig4_Convergence(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 6
	cfg.Duration = 10 * sim.Second
	cfg.CPUs = 12
	runExperiment(b, harness.Fig4Experiment, cfg)
}

// BenchmarkOverheads_Tracing regenerates the Sec. VI overheads (E6).
func BenchmarkOverheads_Tracing(b *testing.B) {
	runExperiment(b, harness.OverheadsExperiment, benchCfg())
}

// BenchmarkFig2_MergeStrategies regenerates the Fig. 2 strategies (E7).
func BenchmarkFig2_MergeStrategies(b *testing.B) {
	runExperiment(b, harness.Fig2Experiment, benchCfg())
}

// BenchmarkAblationService regenerates the service-splitting ablation (E8).
func BenchmarkAblationService(b *testing.B) {
	cfg := benchCfg()
	cfg.Duration = 8 * sim.Second
	runExperiment(b, harness.AblationServiceExperiment, cfg)
}

// BenchmarkAblationSync regenerates the synchronization ablation (E9).
func BenchmarkAblationSync(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 6
	cfg.Duration = 6 * sim.Second
	cfg.CPUs = 12
	runExperiment(b, harness.AblationSyncExperiment, cfg)
}

// BenchmarkValidation_MeasuredVsDesigned regenerates E10.
func BenchmarkValidation_MeasuredVsDesigned(b *testing.B) {
	cfg := benchCfg()
	cfg.Runs = 2
	cfg.Duration = 4 * sim.Second
	runExperiment(b, harness.ValidationExperiment, cfg)
}

// --- substrate microbenchmarks ---

// avpTrace produces one AVP trace for the synthesis microbenches.
func avpTrace(b *testing.B, seconds sim.Duration) *trace.Trace {
	b.Helper()
	s, err := harness.RunSession(5, 8, seconds, true, func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{})
	})
	if err != nil {
		b.Fatal(err)
	}
	return s.Trace
}

// BenchmarkSimulation_AVPSecond measures simulating + tracing one virtual
// second of the AVP pipeline.
func BenchmarkSimulation_AVPSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := harness.RunSession(uint64(i), 8, sim.Second, true, func(w *rclcpp.World) {
			apps.BuildAVP(w, apps.AVPConfig{})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlg1_ExtractModel measures Algorithm 1 over a 20 s AVP trace.
func BenchmarkAlg1_ExtractModel(b *testing.B) {
	tr := avpTrace(b, 20*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.ExtractModel(tr)
		if len(m.Callbacks) == 0 {
			b.Fatal("no callbacks")
		}
	}
}

// BenchmarkAlg2_ExecTime measures the execution-time computation on a
// preemption-heavy switch sequence.
func BenchmarkAlg2_ExecTime(b *testing.B) {
	var sched []trace.Event
	for i := 0; i < 2000; i++ {
		t := sim.Time(i * 1000)
		prev, next := uint32(7), uint32(9)
		if i%2 == 1 {
			prev, next = 9, 7
		}
		sched = append(sched, trace.Event{Time: t, Seq: uint64(i), Kind: trace.KindSchedSwitch, PrevPID: prev, NextPID: next})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.ExecTime(500, 1999500, 0, 1<<62, 7, sched); got <= 0 {
			b.Fatal("bad ET")
		}
	}
}

// BenchmarkDAG_Synthesize measures full DAG synthesis from a trace.
func BenchmarkDAG_Synthesize(b *testing.B) {
	tr := avpTrace(b, 20*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.Synthesize(tr)
		if len(d.Vertices) != 7 {
			b.Fatalf("vertices %d", len(d.Vertices))
		}
	}
}

// BenchmarkDAG_Merge measures merging 50 per-run DAGs.
func BenchmarkDAG_Merge(b *testing.B) {
	tr := avpTrace(b, 5*sim.Second)
	base := core.Synthesize(tr)
	dags := make([]*core.DAG, 50)
	for i := range dags {
		dags[i] = base
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.MergeDAGs(dags...)
		if len(d.Vertices) != 7 {
			b.Fatal("merge broke")
		}
	}
}

// BenchmarkEBPF_ProbeDispatch measures one uprobe firing through the
// verifier-approved interpreter (the per-event tracing cost).
func BenchmarkEBPF_ProbeDispatch(b *testing.B) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	bundle, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		b.Fatal(err)
	}
	if err := bundle.StartRT(); err != nil {
		b.Fatal(err)
	}
	node := w.NewNode("bench", 5, 0)
	_ = node
	sym := ebpf.Symbol{Lib: "rclcpp", Func: "execute_subscription"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Runtime().FireUprobe(node.PID(), 0, sym)
	}
}

// BenchmarkTraceCodec_Binary measures the trace store codec.
func BenchmarkTraceCodec_Binary(b *testing.B) {
	tr := avpTrace(b, 10*sim.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf))
	}
}

type writeCounter int

func (w *writeCounter) Write(p []byte) (int, error) {
	*w += writeCounter(len(p))
	return len(p), nil
}
