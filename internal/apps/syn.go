// Package apps contains the evaluation workloads of the paper: the
// six-node synthetic application SYN covering every callback scenario of
// Sec. VI, the Autoware AVP LIDAR-localization pipeline of Fig. 3b /
// Table II, plus sensor drivers, background load, and a random-application
// generator used by property tests.
package apps

import (
	"github.com/tracesynth/rostracer/internal/msgfilters"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

// SYNConfig parameterizes the synthetic application.
type SYNConfig struct {
	// LoadScale multiplies every designed execution time; the Fig. 4
	// experiment varies it across runs to create varying interference.
	LoadScale float64
	// Prio is the scheduling priority of the SYN nodes.
	Prio int
	// Affinity restricts SYN nodes to a CPU set (0 = all CPUs).
	Affinity uint64
}

// SYN is the synthetic application of Sec. VI (Fig. 3a). Its callback
// structure covers: (i) several same-type callbacks in one node, (ii) a
// node mixing timer/subscriber/service callbacks, (iii) one topic with two
// subscribers, (iv) one service invoked from two different callers, and
// (v) message synchronization.
//
// Topology (names match Fig. 3a):
//
//	node1: T1 (timer, /t1), SC5 (sub /clp3), SV3 (service sv3)
//	node2: SC1 (sub /t1, calls sv1), CL1 (client cb sv1, pub /f1),
//	       SC2.1+SC2.2 (sync subs /f1,/f2, pub /f3), SC4 (sub /clp3)
//	node3: T2 (timer, /t3), T3 (timer, calls sv2),
//	       CL2 (client cb sv2, calls sv3), CL4 (client cb sv3, pub /f2)
//	node4: SV1 (service sv1), SV2 (service sv2)
//	node5: SC3 (sub /t3, calls sv3), CL3 (client cb sv3, pub /clp3)
type SYN struct {
	Node1, Node2, Node3, Node4, Node5 *rclcpp.Node
	Sync                              *msgfilters.Synchronizer
}

// scaled wraps a constant design-time load with the configured scale.
func scaled(base sim.Duration, scale float64) sim.Distribution {
	if scale <= 0 {
		scale = 1
	}
	return sim.Constant{Value: sim.Duration(float64(base) * scale)}
}

// Designed per-callback loads (unscaled), exported for the measurement
// validation experiment.
var SYNDesignedET = map[string]sim.Duration{
	"T1": 2 * sim.Millisecond, "T2": 1 * sim.Millisecond, "T3": 1 * sim.Millisecond,
	"SC1": 1500 * sim.Microsecond, "SC3": 1 * sim.Millisecond,
	"SC4": 800 * sim.Microsecond, "SC5": 600 * sim.Microsecond,
	"SC2.1": 500 * sim.Microsecond, "SC2.2": 400 * sim.Microsecond,
	"FUSE": 3 * sim.Millisecond,
	"SV1":  1 * sim.Millisecond, "SV2": 1 * sim.Millisecond, "SV3": 2 * sim.Millisecond,
	"CL1": 1 * sim.Millisecond, "CL2": 1200 * sim.Microsecond,
	"CL3": 900 * sim.Microsecond, "CL4": 1 * sim.Millisecond,
}

// BuildSYN instantiates SYN in w.
func BuildSYN(w *rclcpp.World, cfg SYNConfig) *SYN {
	if cfg.Prio == 0 {
		cfg.Prio = 5
	}
	et := func(name string) sim.Distribution { return scaled(SYNDesignedET[name], cfg.LoadScale) }

	s := &SYN{}
	s.Node1 = w.NewNode("syn_node1", cfg.Prio, cfg.Affinity)
	s.Node2 = w.NewNode("syn_node2", cfg.Prio, cfg.Affinity)
	s.Node3 = w.NewNode("syn_node3", cfg.Prio, cfg.Affinity)
	s.Node4 = w.NewNode("syn_node4", cfg.Prio, cfg.Affinity)
	s.Node5 = w.NewNode("syn_node5", cfg.Prio, cfg.Affinity)

	// node4: the two servers SV1, SV2.
	s.Node4.CreateService("sv1", et("SV1"), nil)
	s.Node4.CreateService("sv2", et("SV2"), nil)

	// node1: T1 publishes /t1; SC5 subscribes /clp3; SV3 serves sv3.
	pubT1 := s.Node1.CreatePublisher("/t1")
	s.Node1.CreateTimer(100*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     et("T1"),
		Action: func(*rclcpp.CallbackContext) { pubT1.Publish(nil) },
	})
	s.Node1.CreateSubscription("/clp3", rclcpp.SimpleBody{ET: et("SC5")})
	s.Node1.CreateService("sv3", et("SV3"), nil)

	// node2: SC1 -> sv1 -> CL1 -> /f1; sync(/f1,/f2) -> /f3; SC4 sub /clp3.
	pubF1 := s.Node2.CreatePublisher("/f1")
	cl1 := s.Node2.CreateClient("sv1", rclcpp.SimpleBody{
		ET:     et("CL1"),
		Action: func(*rclcpp.CallbackContext) { pubF1.Publish(nil) },
	})
	s.Node2.CreateSubscription("/t1", rclcpp.SimpleBody{
		ET:     et("SC1"),
		Action: func(*rclcpp.CallbackContext) { cl1.Call(nil) },
	})
	pubF3 := s.Node2.CreatePublisher("/f3")
	s.Sync = msgfilters.New(s.Node2, msgfilters.Config{
		Topics:  []string{"/f1", "/f2"},
		Policy:  msgfilters.ApproximateTime{Slop: 80 * sim.Millisecond},
		ReadET:  []sim.Distribution{et("SC2.1"), et("SC2.2")},
		FusedET: et("FUSE"),
		Fused:   func(*msgfilters.FusedContext) { pubF3.Publish(nil) },
	})
	s.Node2.CreateSubscription("/clp3", rclcpp.SimpleBody{ET: et("SC4")})

	// node3: T2 -> /t3; T3 -> sv2; CL2 (sv2 response) -> sv3; CL4 (sv3
	// response) -> /f2.
	pubT3 := s.Node3.CreatePublisher("/t3")
	s.Node3.CreateTimer(150*sim.Millisecond, 10*sim.Millisecond, rclcpp.SimpleBody{
		ET:     et("T2"),
		Action: func(*rclcpp.CallbackContext) { pubT3.Publish(nil) },
	})
	pubF2 := s.Node3.CreatePublisher("/f2")
	cl4 := s.Node3.CreateClient("sv3", rclcpp.SimpleBody{
		ET:     et("CL4"),
		Action: func(*rclcpp.CallbackContext) { pubF2.Publish(nil) },
	})
	cl2 := s.Node3.CreateClient("sv2", rclcpp.SimpleBody{
		ET:     et("CL2"),
		Action: func(*rclcpp.CallbackContext) { cl4.Call(nil) },
	})
	s.Node3.CreateTimer(200*sim.Millisecond, 20*sim.Millisecond, rclcpp.SimpleBody{
		ET:     et("T3"),
		Action: func(*rclcpp.CallbackContext) { cl2.Call(nil) },
	})

	// node5: SC3 (sub /t3) -> sv3; CL3 (sv3 response) -> /clp3.
	pubCLP3 := s.Node5.CreatePublisher("/clp3")
	cl3 := s.Node5.CreateClient("sv3", rclcpp.SimpleBody{
		ET:     et("CL3"),
		Action: func(*rclcpp.CallbackContext) { pubCLP3.Publish(nil) },
	})
	s.Node5.CreateSubscription("/t3", rclcpp.SimpleBody{
		ET:     et("SC3"),
		Action: func(*rclcpp.CallbackContext) { cl3.Call(nil) },
	})
	return s
}

// SYNExpectedVertices is the designed vertex count of SYN's DAG: 17
// callbacks (SV3 split into two caller-specific vertices) plus one AND
// junction.
const SYNExpectedVertices = 18

// SYNExpectedEdges is the designed edge count of SYN's DAG.
const SYNExpectedEdges = 16
