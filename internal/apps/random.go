package apps

import (
	"fmt"

	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

// RandomPipeline generates a random multi-chain application and returns
// the designed precedence relations, enabling property tests of the form
// "whatever the topology, the synthesized DAG matches the designed one".
//
// Structure: nSources timer callbacks each publish a root topic; each root
// spawns a chain of 1..maxDepth subscriber hops, each hop in its own node,
// republishing to the next topic.
type RandomPipeline struct {
	// DesignedEdges holds (fromNode, toNode, topic) triples.
	DesignedEdges []DesignedEdge
	// Callbacks counts designed callbacks (timers + subscribers).
	Callbacks int
}

// DesignedEdge is one designed precedence relation.
type DesignedEdge struct {
	FromNode, ToNode, Topic string
}

// BuildRandomPipeline instantiates a random pipeline in w using rng.
func BuildRandomPipeline(w *rclcpp.World, rng *sim.RNG, nSources, maxDepth int) *RandomPipeline {
	if nSources < 1 {
		nSources = 1
	}
	if maxDepth < 1 {
		maxDepth = 1
	}
	rp := &RandomPipeline{}
	et := func() sim.Distribution {
		return sim.Uniform{
			Min: sim.Duration(100+rng.Intn(400)) * sim.Microsecond,
			Max: sim.Duration(500+rng.Intn(1500)) * sim.Microsecond,
		}
	}
	for s := 0; s < nSources; s++ {
		srcNode := w.NewNode(fmt.Sprintf("rand_src_%d", s), 5, 0)
		topic := fmt.Sprintf("/rand/%d/0", s)
		pub := srcNode.CreatePublisher(topic)
		period := sim.Duration(20+rng.Intn(60)) * sim.Millisecond
		srcNode.CreateTimer(period, sim.Duration(rng.Intn(10))*sim.Millisecond, rclcpp.SimpleBody{
			ET:     et(),
			Action: func(*rclcpp.CallbackContext) { pub.Publish(nil) },
		})
		rp.Callbacks++

		depth := 1 + rng.Intn(maxDepth)
		prevNode := srcNode.Name()
		prevTopic := topic
		for d := 1; d <= depth; d++ {
			hopNode := w.NewNode(fmt.Sprintf("rand_hop_%d_%d", s, d), 5, 0)
			rp.Callbacks++
			rp.DesignedEdges = append(rp.DesignedEdges, DesignedEdge{prevNode, hopNode.Name(), prevTopic})
			if d == depth {
				hopNode.CreateSubscription(prevTopic, rclcpp.SimpleBody{ET: et()})
				break
			}
			nextTopic := fmt.Sprintf("/rand/%d/%d", s, d)
			hopPub := hopNode.CreatePublisher(nextTopic)
			subTopic := prevTopic
			hopNode.CreateSubscription(subTopic, rclcpp.SimpleBody{
				ET:     et(),
				Action: func(*rclcpp.CallbackContext) { hopPub.Publish(nil) },
			})
			prevNode = hopNode.Name()
			prevTopic = nextTopic
		}
	}
	return rp
}

// BackgroundLoad spawns n low-priority busy nodes with short periodic
// callbacks, used to stress preemption-aware measurement.
func BackgroundLoad(w *rclcpp.World, n int, prio int, affinity uint64, period, et sim.Duration) {
	for i := 0; i < n; i++ {
		node := w.NewNode(fmt.Sprintf("bg_load_%d", i), prio, affinity)
		node.CreateTimer(period, sim.Duration(i)*period/sim.Duration(n+1), rclcpp.SimpleBody{
			ET: sim.Constant{Value: et},
		})
	}
}
