package apps_test

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func runTraced(t *testing.T, seed uint64, cpus int, build func(*rclcpp.World), dur sim.Duration) (*trace.Trace, *rclcpp.World) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	build(w)
	w.Run(dur)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return tr, w
}

func TestSYNDAGStructure(t *testing.T) {
	tr, _ := runTraced(t, 1, 8, func(w *rclcpp.World) {
		apps.BuildSYN(w, apps.SYNConfig{})
	}, 10*sim.Second)
	d := core.Synthesize(tr)

	if len(d.Vertices) != apps.SYNExpectedVertices {
		t.Errorf("vertices = %d, want %d:\n%s", len(d.Vertices), apps.SYNExpectedVertices, core.Summary(d))
	}
	if got := len(d.Edges()); got != apps.SYNExpectedEdges {
		t.Errorf("edges = %d, want %d:\n%s", got, apps.SYNExpectedEdges, core.Summary(d))
	}

	// Scenario (iv): sv3 appears as two service vertices.
	sv3 := 0
	for _, k := range d.VertexKeys() {
		v := d.Vertices[k]
		if v.Type == core.CBService && !v.IsAnd && contains(v.InTopics, "rq/sv3Request") {
			sv3++
		}
	}
	if sv3 != 2 {
		t.Errorf("sv3 vertices = %d, want 2", sv3)
	}

	// Scenario (iii): /clp3 subscribed twice.
	clp3Subs := 0
	for _, e := range d.Edges() {
		if e.Topic == "/clp3" {
			clp3Subs++
		}
	}
	if clp3Subs != 2 {
		t.Errorf("/clp3 edges = %d, want 2", clp3Subs)
	}

	// Scenario (v): one AND junction in syn_node2.
	var and *core.Vertex
	for _, k := range d.VertexKeys() {
		if v := d.Vertices[k]; v.IsAnd {
			if and != nil {
				t.Error("multiple AND junctions")
			}
			and = v
		}
	}
	if and == nil || and.Node != "syn_node2" {
		t.Fatalf("AND junction = %+v", and)
	}
	if !contains(and.OutTopics, "/f3") {
		t.Errorf("AND outputs = %v", and.OutTopics)
	}
}

func TestSYNMeasurementMatchesDesign(t *testing.T) {
	// All SYN loads are constants, so every measured sample must equal the
	// designed value exactly — the paper's validation of its framework.
	tr, _ := runTraced(t, 2, 8, func(w *rclcpp.World) {
		apps.BuildSYN(w, apps.SYNConfig{LoadScale: 1})
	}, 10*sim.Second)
	m := core.ExtractModel(tr)

	check := func(node string, typ core.CBType, inTopic string, want sim.Duration) {
		t.Helper()
		for _, cb := range m.Callbacks {
			if cb.Node == node && cb.Type == typ && baseOf(cb.InTopic) == inTopic {
				for _, s := range cb.Stats.Samples {
					if s != want {
						t.Errorf("%s %s(%s): sample %v != designed %v", node, typ, inTopic, s, want)
						return
					}
				}
				return
			}
		}
		t.Errorf("callback %s %s(%s) not found", node, typ, inTopic)
	}
	check("syn_node2", core.CBSubscriber, "/t1", apps.SYNDesignedET["SC1"])
	check("syn_node5", core.CBSubscriber, "/t3", apps.SYNDesignedET["SC3"])
	check("syn_node4", core.CBService, "rq/sv1Request", apps.SYNDesignedET["SV1"])
	check("syn_node3", core.CBClient, "rr/sv2Reply", apps.SYNDesignedET["CL2"])
}

func TestAVPDAGMatchesFig3b(t *testing.T) {
	tr, w := runTraced(t, 3, 8, func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{})
	}, 20*sim.Second)
	d := core.Synthesize(tr)

	// 6 callbacks + 1 AND junction.
	if len(d.Vertices) != 7 {
		t.Fatalf("vertices = %d:\n%s", len(d.Vertices), core.Summary(d))
	}
	// Chain: cb1 -> sync_rear; cb2 -> sync_front; syncs -> AND -> cb5 -> cb6.
	wantEdges := 6
	if got := len(d.Edges()); got != wantEdges {
		t.Fatalf("edges = %d, want %d:\n%s", got, wantEdges, core.Summary(d))
	}
	// Raw lidar topics must have no source vertex (external replayers).
	for _, e := range d.Edges() {
		if e.Topic == apps.TopicRearRaw || e.Topic == apps.TopicFrontRaw {
			t.Fatalf("raw topic has a modeled publisher: %+v", e)
		}
	}
	// The filter vertices exist and subscribe the raw topics.
	cb1 := d.VertexByLabelSubstring(apps.NodeFilterRear)
	cb2 := d.VertexByLabelSubstring(apps.NodeFilterFront)
	if cb1 == nil || cb2 == nil {
		t.Fatal("filter vertices missing")
	}
	if !contains(cb1.InTopics, apps.TopicRearRaw) || !contains(cb2.InTopics, apps.TopicFrontRaw) {
		t.Fatalf("filter in-topics: %v / %v", cb1.InTopics, cb2.InTopics)
	}
	// ~10 Hz arrival: about 200 instances in 20 s.
	if cb1.Stats.Count < 150 {
		t.Errorf("cb1 instances = %d", cb1.Stats.Count)
	}
	// The localizer is at the sink.
	cb6 := d.VertexByLabelSubstring(apps.NodeLocalizer)
	if cb6 == nil || len(d.OutEdges(cb6.Key)) != 0 {
		t.Fatalf("localizer vertex wrong: %+v", cb6)
	}
	if len(d.InEdges(cb6.Key)) != 1 || d.InEdges(cb6.Key)[0].Topic != apps.TopicDownsampled {
		t.Fatalf("localizer in-edges: %v", d.InEdges(cb6.Key))
	}
	_ = w
}

func TestAVPTableIIShape(t *testing.T) {
	// The designed distributions must reproduce Table II's orderings:
	// cb2 dominates cb1; cb3's average is well above cb4's; cb6 has the
	// largest worst case and a heavy tail (mWCET >> mACET).
	tr, _ := runTraced(t, 4, 8, func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{})
	}, 40*sim.Second)
	d := core.Synthesize(tr)

	v := func(sub string) *core.Vertex {
		x := d.VertexByLabelSubstring(sub)
		if x == nil {
			t.Fatalf("vertex %s missing", sub)
		}
		return x
	}
	cb1 := v(apps.NodeFilterRear)
	cb2 := v(apps.NodeFilterFront)
	cb5 := v(apps.NodeVoxelGrid)
	cb6 := v(apps.NodeLocalizer)
	var cb3, cb4 *core.Vertex
	for _, k := range d.VertexKeys() {
		vt := d.Vertices[k]
		if vt.Node == apps.NodeFusion && vt.IsSync {
			if contains(vt.InTopics, apps.TopicFrontFiltered) {
				cb3 = vt
			} else {
				cb4 = vt
			}
		}
	}
	if cb3 == nil || cb4 == nil {
		t.Fatal("fusion sync vertices missing")
	}

	if !(cb2.Stats.ACET() > cb1.Stats.ACET()) {
		t.Errorf("cb2 ACET %v !> cb1 ACET %v", cb2.Stats.ACET(), cb1.Stats.ACET())
	}
	if !(cb3.Stats.ACET() > 3*cb4.Stats.ACET()) {
		t.Errorf("cb3 ACET %v not >> cb4 ACET %v", cb3.Stats.ACET(), cb4.Stats.ACET())
	}
	if !(cb6.Stats.WCET() > cb2.Stats.WCET() && cb6.Stats.WCET() > 2*cb6.Stats.ACET()) {
		t.Errorf("cb6 tail wrong: ACET %v WCET %v", cb6.Stats.ACET(), cb6.Stats.WCET())
	}
	if !(cb5.Stats.BCET() > 5*sim.Millisecond && cb5.Stats.WCET() < 15*sim.Millisecond) {
		t.Errorf("cb5 range [%v, %v]", cb5.Stats.BCET(), cb5.Stats.WCET())
	}
}

func TestRandomPipelinePropertySynthesisMatchesDesign(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		rng := sim.NewRNG(seed * 977)
		var rp *apps.RandomPipeline
		tr, _ := runTraced(t, seed, 8, func(w *rclcpp.World) {
			rp = apps.BuildRandomPipeline(w, rng, 1+rng.Intn(3), 4)
		}, 3*sim.Second)
		d := core.Synthesize(tr)

		if len(d.Vertices) != rp.Callbacks {
			t.Fatalf("seed %d: vertices = %d, designed %d\n%s",
				seed, len(d.Vertices), rp.Callbacks, core.Summary(d))
		}
		if len(d.Edges()) != len(rp.DesignedEdges) {
			t.Fatalf("seed %d: edges = %d, designed %d", seed, len(d.Edges()), len(rp.DesignedEdges))
		}
		// Every designed edge must exist with matching endpoints.
		for _, de := range rp.DesignedEdges {
			found := false
			for _, e := range d.Edges() {
				if e.Topic == de.Topic &&
					d.Vertices[e.From].Node == de.FromNode &&
					d.Vertices[e.To].Node == de.ToNode {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: designed edge %+v missing", seed, de)
			}
		}
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func baseOf(t string) string {
	for i := len(t) - 1; i >= 0; i-- {
		if t[i] == '#' {
			return t[:i]
		}
	}
	return t
}
