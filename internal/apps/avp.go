package apps

import (
	"math"

	"github.com/tracesynth/rostracer/internal/msgfilters"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

// AVP topic names (Fig. 3b).
const (
	TopicRearRaw        = "lidar_rear/points_raw"
	TopicFrontRaw       = "lidar_front/points_raw"
	TopicRearFiltered   = "lidar_rear/points_filtered"
	TopicFrontFiltered  = "lidar_front/points_filtered"
	TopicFused          = "lidars/points_fused"
	TopicDownsampled    = "lidars/points_fused_downsampled"
	TopicNDTPose        = "localization/ndt_pose"
	LidarRateHz         = 10
	LidarPeriod         = 100 * sim.Millisecond
	FrontSensorPhaseOff = 4 * sim.Millisecond // front LIDAR fires slightly later
)

// AVPConfig parameterizes the localization pipeline.
type AVPConfig struct {
	Prio     int
	Affinity uint64
	// NoFrontSensor silences the front LIDAR, modeling a degraded
	// operating mode (sensor failure) for the multi-mode experiment.
	NoFrontSensor bool
}

// AVP is the Autoware Autonomous-Valet-Parking LIDAR-localization slice of
// Fig. 3b: two filter-transform nodes, a point-cloud-fusion node with two
// synchronized subscriber callbacks, a voxel-grid downsampler, and a P2D
// NDT localizer — six callbacks across five nodes, driven by two simulated
// 10 Hz LIDAR replayers (external DDS publishers, not ROS2 nodes, so the
// raw topics enter the DAG without source vertices, as in the paper).
type AVP struct {
	FilterRear  *rclcpp.Node
	FilterFront *rclcpp.Node
	Fusion      *rclcpp.Node
	VoxelGrid   *rclcpp.Node
	Localizer   *rclcpp.Node
	Sync        *msgfilters.Synchronizer
}

// AVP node names, matching Table II.
const (
	NodeFilterRear  = "filter_transform_vlp16_rear"
	NodeFilterFront = "filter_transform_vlp16_front"
	NodeFusion      = "point_cloud_fusion"
	NodeVoxelGrid   = "voxel_grid_cloud_node"
	NodeLocalizer   = "p2d_ndt_localizer_node"
)

// Designed execution-time distributions shaped to reproduce Table II.
// cb3/cb4 emerge mechanically: the fusion cost lands on whichever sync
// callback completes a set — usually the front one, because the front
// filter is slower (as in the paper, where cb3's average is 5x cb4's).
func avpDistributions() map[string]sim.Distribution {
	ms := func(f float64) sim.Duration { return sim.Duration(f * float64(sim.Millisecond)) }
	// The filters and the downsampler carry a *rare* upper tail (roughly
	// one instance in a thousand: pathological point-cloud frames). Early
	// runs typically miss it, so the cumulative mWCET keeps growing over
	// the first tens of runs and then plateaus — the Fig. 4 behaviour the
	// paper reports (cb2's mWCET +10% over 23 runs, then unchanged).
	return map[string]sim.Distribution{
		"cb1": sim.Mixture{
			P: 0.999,
			A: sim.TruncNormal{Mean: ms(17.1), Stddev: ms(1.2), Min: ms(13.5), Max: ms(19.2)},
			B: sim.Uniform{Min: ms(19.3), Max: ms(20.0)},
		},
		"cb2": sim.Mixture{
			P: 0.9993,
			A: sim.TruncNormal{Mean: ms(27.0), Stddev: ms(1.1), Min: ms(23.0), Max: ms(28.7)},
			B: sim.Uniform{Min: ms(29.2), Max: ms(30.6)},
		},
		// Sync callbacks: per-arrival read cost; fusion cost added to the
		// completing arrival.
		"read_front": sim.TruncNormal{Mean: ms(0.5), Stddev: ms(0.08), Min: ms(0.3), Max: ms(0.8)},
		"read_rear":  sim.TruncNormal{Mean: ms(0.6), Stddev: ms(0.12), Min: ms(0.35), Max: ms(1.0)},
		"fuse":       sim.TruncNormal{Mean: ms(2.6), Stddev: ms(0.35), Min: ms(1.6), Max: ms(3.3)},
		"cb5": sim.Mixture{
			P: 0.999,
			A: sim.TruncNormal{Mean: ms(8.4), Stddev: ms(1.2), Min: ms(6.5), Max: ms(11.6)},
			B: sim.Uniform{Min: ms(11.8), Max: ms(13.4)},
		},
		// NDT matching is an iterative solver with a heavy tail.
		"cb6": sim.HeavyTail{
			Mu:    math.Log(20.5e6),
			Sigma: 0.62,
			Min:   ms(2.7),
			Max:   ms(61.0),
		},
	}
}

// BuildAVP instantiates the pipeline and its sensor drivers in w.
//
// The DDS transport is given a bimodal latency: usually tens of
// microseconds, but a few percent of deliveries stall for ~10-18 ms
// (fragmented multi-megabyte point clouds). Those stalls occasionally make
// the rear filtered cloud the last arrival at the fusion node, so the
// fusion cost lands on cb4 — which is how the paper's Table II shows
// cb4 with a 3.36 ms worst case over a 0.62 ms average, and cb3 with a
// best case far below its average.
func BuildAVP(w *rclcpp.World, cfg AVPConfig) *AVP {
	if cfg.Prio == 0 {
		cfg.Prio = 5
	}
	dist := avpDistributions()
	w.Domain().Latency = sim.Mixture{
		P: 0.97,
		A: sim.Uniform{Min: 20 * sim.Microsecond, Max: 80 * sim.Microsecond},
		B: sim.Uniform{Min: 11 * sim.Millisecond, Max: 18 * sim.Millisecond},
	}

	a := &AVP{}
	a.FilterRear = w.NewNode(NodeFilterRear, cfg.Prio, cfg.Affinity)
	a.FilterFront = w.NewNode(NodeFilterFront, cfg.Prio, cfg.Affinity)
	a.Fusion = w.NewNode(NodeFusion, cfg.Prio, cfg.Affinity)
	a.VoxelGrid = w.NewNode(NodeVoxelGrid, cfg.Prio, cfg.Affinity)
	a.Localizer = w.NewNode(NodeLocalizer, cfg.Prio, cfg.Affinity)

	// cb1: rear filter.
	pubRearF := a.FilterRear.CreatePublisher(TopicRearFiltered)
	a.FilterRear.CreateSubscription(TopicRearRaw, rclcpp.SimpleBody{
		ET:     dist["cb1"],
		Action: func(*rclcpp.CallbackContext) { pubRearF.Publish("rear_filtered") },
	})
	// cb2: front filter.
	pubFrontF := a.FilterFront.CreatePublisher(TopicFrontFiltered)
	a.FilterFront.CreateSubscription(TopicFrontRaw, rclcpp.SimpleBody{
		ET:     dist["cb2"],
		Action: func(*rclcpp.CallbackContext) { pubFrontF.Publish("front_filtered") },
	})
	// cb3 + cb4: synchronized fusion.
	pubFused := a.Fusion.CreatePublisher(TopicFused)
	a.Sync = msgfilters.New(a.Fusion, msgfilters.Config{
		Topics:  []string{TopicFrontFiltered, TopicRearFiltered},
		Policy:  msgfilters.ApproximateTime{Slop: 60 * sim.Millisecond},
		ReadET:  []sim.Distribution{dist["read_front"], dist["read_rear"]},
		FusedET: dist["fuse"],
		Fused:   func(*msgfilters.FusedContext) { pubFused.Publish("fused") },
	})
	// cb5: voxel-grid downsampling.
	pubDown := a.VoxelGrid.CreatePublisher(TopicDownsampled)
	a.VoxelGrid.CreateSubscription(TopicFused, rclcpp.SimpleBody{
		ET:     dist["cb5"],
		Action: func(*rclcpp.CallbackContext) { pubDown.Publish("downsampled") },
	})
	// cb6: NDT localization.
	pubPose := a.Localizer.CreatePublisher(TopicNDTPose)
	a.Localizer.CreateSubscription(TopicDownsampled, rclcpp.SimpleBody{
		ET:     dist["cb6"],
		Action: func(*rclcpp.CallbackContext) { pubPose.Publish("pose") },
	})

	// LIDAR replayers: external DDS publishers at 10 Hz.
	SpawnSensor(w, TopicRearRaw, LidarPeriod, 0)
	if !cfg.NoFrontSensor {
		SpawnSensor(w, TopicFrontRaw, LidarPeriod, FrontSensorPhaseOff)
	}
	return a
}

// SpawnSensor creates an external (non-ROS2) process publishing on topic
// at the given period, starting after phase.
func SpawnSensor(w *rclcpp.World, topic string, period, phase sim.Duration) {
	pid, space := w.NewExternalProcess()
	writer := w.Domain().CreateWriter(pid, space, topic)
	var tick func()
	tick = func() {
		writer.Write("scan", 0, 0)
		w.Engine().After(period, tick)
	}
	w.Engine().After(phase+period, tick)
}
