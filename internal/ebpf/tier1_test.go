package ebpf

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// tier1Program verifies build's program against the fixture maps,
// decodes it, and promotes it to tier 1.
func tier1Fixture(t *testing.T, build func() *Program, ctxWords int) *equivFixture {
	t.Helper()
	f := newEquivFixture(t, build, ctxWords)
	maps := f.maps
	if err := decode(f.prog, func(fd int64) Map { return maps[fd] }, 0); err != nil {
		t.Fatal(err)
	}
	f.prog.dp.Store(reoptimize(f.prog.dp.Load(), false))
	return f
}

// allOps flattens every fused run of the current dispatch form.
func allOps(p *Program) []dop {
	dp := p.dp.Load()
	var out []dop
	for _, in := range dp.insns {
		out = append(out, in.run...)
	}
	return out
}

func countOp(ops []dop, op Op) int {
	n := 0
	for _, d := range ops {
		if d.op == op {
			n++
		}
	}
	return n
}

func findOp(t *testing.T, ops []dop, op Op) dop {
	t.Helper()
	for _, d := range ops {
		if d.op == op {
			return d
		}
	}
	t.Fatalf("pattern op %d not produced", op)
	return dop{}
}

// emitterProg is a plainProg-shaped tracer program: record header via
// helper calls, an immediate ladder, and a perf_event_output epilogue.
func emitterProg() *Program {
	return NewAssembler("emitter").
		StImmStack(R10, -64, 77, 8). // kind
		Call(HelperGetCurrentPid).
		StxStack(R10, -56, R0, 8).
		Call(HelperKtimeGetNs).
		StxStack(R10, -48, R0, 8).
		StImmStack(R10, -40, 1, 8). // ladder: 3 contiguous immediates
		StImmStack(R10, -32, 2, 8).
		StImmStack(R10, -24, 3, 8).
		MovImm(R1, 4). // perf fd
		MovReg(R2, R10).
		AddImm(R2, -64).
		MovImm(R3, 48).
		Call(HelperPerfOutput).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
}

// mapLadderProg exercises every fused map-call shape plus result
// forwarding and the double context load.
func mapLadderProg() *Program {
	return NewAssembler("map_ladder").
		LdxCtx(R6, R1, 0).
		LdxCtx(R7, R1, 1).
		// update: reg key, imm value
		MovImm(R1, 3).
		MovReg(R2, R6).
		MovImm(R3, 1).
		Call(HelperMapUpdate).
		// update: reg key, reg value
		MovImm(R1, 3).
		MovReg(R2, R6).
		MovReg(R3, R7).
		Call(HelperMapUpdate).
		// lookup: reg key, forwarded result
		MovImm(R1, 3).
		MovReg(R2, R6).
		Call(HelperMapLookup).
		MovReg(R8, R0).
		// exist: imm key, accumulated result
		MovImm(R1, 3).
		MovImm(R2, 99).
		Call(HelperMapLookupExist).
		AddReg(R8, R0).
		// delete: reg key
		MovImm(R1, 3).
		MovReg(R2, R6).
		Call(HelperMapDelete).
		// time accumulated into R8
		Call(HelperKtimeGetNs).
		AddReg(R8, R0).
		MovReg(R0, R8).
		Exit().
		MustAssemble()
}

// probeProg exercises the fused probe_read / probe_read_str patterns.
func probeProg() *Program {
	return NewAssembler("probe").
		LdxCtx(R6, R1, 0).
		MovReg(R1, R10).
		SubImm(R1, 16).
		MovImm(R2, 8).
		MovReg(R3, R6).
		Call(HelperProbeRead).
		MovReg(R7, R0). // forwarded fault flag
		MovReg(R1, R10).
		SubImm(R1, 48).
		MovImm(R2, 32).
		MovReg(R3, R6).
		Call(HelperProbeReadStr).
		AddReg(R7, R0).
		MovReg(R0, R7).
		Exit().
		MustAssemble()
}

// TestTier1PatternLowering is the decode-table test for every tier-1
// pattern op: each construct the tracers rely on lowers to its dedicated
// superinstruction, with the retire weights covering the whole program.
func TestTier1PatternLowering(t *testing.T) {
	cases := []struct {
		name     string
		build    func() *Program
		ctxWords int
		want     map[Op]int // op -> minimum count
	}{
		{"emitter", emitterProg, 1, map[Op]int{
			opPidToStack:  1,
			opTimeToStack: 1,
			opStoreRunImm: 1,
			opEmitRecord:  1,
		}},
		{"map_ladder", mapLadderProg, 2, map[Op]int{
			opLdxCtx2:       1,
			opMapUpdateFast: 2,
			opMapLookupFast: 1,
			opMapExistFast:  1,
			opMapDeleteFast: 1,
			opCallTime:      1,
		}},
		{"probe", probeProg, 1, map[Op]int{
			opProbeReadFast:    1,
			opProbeReadStrFast: 1,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tier1Fixture(t, tc.build, tc.ctxWords)
			ops := allOps(f.prog)
			for op, min := range tc.want {
				if got := countOp(ops, op); got < min {
					t.Errorf("want >=%d of pattern op %d, got %d (ops: %+v)", min, op, got, ops)
				}
			}
			// Retire weights must cover the whole program, slot for slot.
			dp := f.prog.dp.Load()
			total := 0
			for _, in := range dp.insns {
				if in.op == opRunFused || in.op == opRunExit {
					total += int(in.retire)
					w := 0
					for _, d := range in.run {
						w += int(d.w)
					}
					extra := int(in.retire) - w // threaded Ja + folded exit
					if extra < 0 {
						t.Errorf("run retire %d below op weights %d", in.retire, w)
					}
				} else {
					total++
				}
			}
			if total != len(f.prog.Insns) {
				t.Errorf("retire accounting covers %d insns, program has %d", total, len(f.prog.Insns))
			}
		})
	}
}

// TestTier1PatternDetails pins the operand encoding of the key patterns.
func TestTier1PatternDetails(t *testing.T) {
	f := tier1Fixture(t, emitterProg, 1)
	ops := allOps(f.prog)

	emit := findOp(t, ops, opEmitRecord)
	if base, size := emit.imm>>32, uint32(emit.imm); base != StackSize-64 || size != 48 {
		t.Fatalf("opEmitRecord range = (%d,%d), want (%d,48)", base, size, StackSize-64)
	}
	if emit.w != 5 { // 3 movs (one folded from mov+add) + call
		t.Fatalf("opEmitRecord weight = %d, want 5", emit.w)
	}

	ladder := findOp(t, ops, opStoreRunImm)
	dp := f.prog.dp.Load()
	tmpl := dp.templates[ladder.imm]
	want := make([]byte, 24)
	want[0], want[8], want[16] = 1, 2, 3
	if !bytes.Equal(tmpl, want) {
		t.Fatalf("ladder template = %v, want %v", tmpl, want)
	}
	if ladder.tgt != StackSize-40 {
		t.Fatalf("ladder base = %d, want %d", ladder.tgt, StackSize-40)
	}

	// The single-slot program folds its exit into the run.
	if len(dp.insns) != 1 || dp.insns[0].op != opRunExit {
		t.Fatalf("emitter should compact to one opRunExit slot, got %d slots (op %d)",
			len(dp.insns), dp.insns[0].op)
	}

	f2 := tier1Fixture(t, mapLadderProg, 2)
	ops2 := allOps(f2.prog)
	look := findOp(t, ops2, opMapLookupFast)
	if look.dst != uint8(R8) || look.size&resFwdAdd != 0 {
		t.Fatalf("lookup result not copy-forwarded to r8: %+v", look)
	}
	exist := findOp(t, ops2, opMapExistFast)
	if exist.size&mapKeyImm == 0 || exist.imm != 99 || exist.size&resFwdAdd == 0 || exist.dst != uint8(R8) {
		t.Fatalf("exist not fused as imm-key add-forward: %+v", exist)
	}
	ktime := findOp(t, ops2, opCallTime)
	if ktime.size&resFwdAdd == 0 || ktime.dst != uint8(R8) {
		t.Fatalf("ktime result not add-forwarded: %+v", ktime)
	}
}

// TestTier1Equivalence runs the pattern-heavy programs through all three
// dispatch forms (the shared runEquiv helper) over a spread of contexts.
func TestTier1Equivalence(t *testing.T) {
	sp, addr := equivSpace()
	runEquiv(t, "emitter", emitterProg, 1, []*ExecContext{
		{PID: 9, CPU: 1, NowNs: 100, Words: []uint64{5}},
		{PID: 10, CPU: 0, NowNs: 200, Words: []uint64{0}},
	})
	runEquiv(t, "map_ladder", mapLadderProg, 2, []*ExecContext{
		{PID: 1, NowNs: 10, Words: []uint64{7, 70}},
		{PID: 2, NowNs: 20, Words: []uint64{99, 1}},
		{PID: 3, NowNs: 30, Words: []uint64{7, 2}},
	})
	runEquiv(t, "probe", probeProg, 1, []*ExecContext{
		{PID: 1, NowNs: 1, Words: []uint64{addr}, Mem: sp},
		{PID: 2, NowNs: 2, Words: []uint64{0xdead_0000}, Mem: sp}, // faulting address
		{PID: 3, NowNs: 3, Words: []uint64{addr}},                // nil Mem
	})
}

// TestTier1GuardFallback corrupts tier-1 pattern guards in place and
// demands the run still produce tier-0-identical results through the
// per-pattern fallback to the original instruction range.
func TestTier1GuardFallback(t *testing.T) {
	ctx := func() *ExecContext {
		return &ExecContext{PID: 4, CPU: 1, NowNs: 44, Words: []uint64{3}}
	}
	ref := newEquivFixture(t, emitterProg, 1)
	refRes, err := NewVM(ref.maps).RunInterpreted(ref.prog, ctx())
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name    string
		op      Op
		corrupt func(d *dop)
	}{
		{"emit_base_oob", opEmitRecord, func(d *dop) { d.imm = uint64(StackSize) << 32 }},
		{"ladder_bad_template", opStoreRunImm, func(d *dop) { d.imm = 999 }},
		{"ladder_base_oob", opStoreRunImm, func(d *dop) { d.tgt = StackSize - 1 }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			f := tier1Fixture(t, emitterProg, 1)
			dp := f.prog.dp.Load()
			found := false
			for si := range dp.insns {
				for oi := range dp.insns[si].run {
					if dp.insns[si].run[oi].op == tc.op {
						tc.corrupt(&dp.insns[si].run[oi])
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("pattern op %d not present to corrupt", tc.op)
			}
			res, err := NewVM(f.maps).Run(f.prog, ctx())
			if err != nil {
				t.Fatalf("guard fallback errored: %v", err)
			}
			if res != refRes {
				t.Fatalf("fallback result %+v, want %+v", res, refRes)
			}
			rh, ra, rr := ref.mapState()
			fh, fa, fr := f.mapState()
			if !reflect.DeepEqual(rh, fh) || !reflect.DeepEqual(ra, fa) || !reflect.DeepEqual(rr, fr) {
				t.Fatal("map/perf state diverged through guard fallback")
			}
			// Re-prime the reference state consumed by mapState's Drain.
			ref = newEquivFixture(t, emitterProg, 1)
			if refRes, err = NewVM(ref.maps).RunInterpreted(ref.prog, ctx()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// branchyProg returns a program whose two branch bodies are selected by
// ctx word 0, for profile-ordering tests.
func branchyProg() *Program {
	return NewAssembler("branchy").
		LdxCtx(R6, R1, 0).
		JgtImm(R6, 10, "big").
		MovImm(R0, 1).
		Ja("end").
		Label("big").
		MovImm(R0, 2).
		Label("end").
		Exit().
		MustAssemble()
}

// TestTier1BlockReorderCompacts checks that the tier-1 layout is dense
// (no unreachable zero slots), orders the profiled-hot block ahead of
// the cold one, threads the unconditional jump, and still computes the
// same results.
func TestTier1BlockReorderCompacts(t *testing.T) {
	rt := NewRuntime(func() int64 { return 1 }, nil)
	rt.SetHotThreshold(0)
	p := branchyProg()
	if err := rt.Load(p, 1); err != nil {
		t.Fatal(err)
	}
	sym := Symbol{Lib: "l", Func: "f"}
	if _, err := rt.AttachUprobe(sym, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rt.FireUprobe(1, 0, sym, 100) // hot path: the "big" block
	}
	rt.FireUprobe(1, 0, sym, 0) // cold path once

	tier0Slots := len(p.dp.Load().insns)
	// Trace-free re-decode: this test pins the tier-1 layout itself
	// (tier-2 trace formation is covered by tier2_test.go).
	p.dp.Store(reoptimize(p.dp.Load(), false))
	dp := p.dp.Load()
	if dp.tier != 1 {
		t.Fatal("reoptimize did not produce tier 1")
	}
	if len(dp.insns) >= tier0Slots {
		t.Fatalf("tier-1 layout not compacted: %d slots, tier-0 had %d", len(dp.insns), tier0Slots)
	}
	for i, in := range dp.insns {
		if in.op == OpInvalid {
			t.Fatalf("tier-1 slot %d is a zero slot", i)
		}
	}
	// Hot block (MovImm R0, 2) must be ordered directly after the entry
	// chain, ahead of the cold block.
	hotAt, coldAt := -1, -1
	for i, in := range dp.insns {
		for _, d := range in.run {
			if d.op == OpMovImm && d.dst == uint8(R0) {
				if d.imm == 2 {
					hotAt = i
				}
				if d.imm == 1 {
					coldAt = i
				}
			}
		}
	}
	if hotAt < 0 || coldAt < 0 || hotAt > coldAt {
		t.Fatalf("hot block at %d, cold at %d; want hot first", hotAt, coldAt)
	}
	// Both paths still compute the same results as the raw interpreter.
	vm := NewVM(nil)
	for _, w := range []uint64{0, 5, 11, 100} {
		raw, err := vm.RunInterpreted(p, &ExecContext{Words: []uint64{w}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := vm.Run(p, &ExecContext{Words: []uint64{w}})
		if err != nil {
			t.Fatal(err)
		}
		if raw != got {
			t.Fatalf("word %d: tier-1 %+v, raw %+v", w, got, raw)
		}
	}
}

// TestAutoReoptimizeThreshold checks the profile-driven promotion: a
// program crosses the configured run count and swaps to tier 1; a zero
// threshold pins it to tier 0 until an explicit Reoptimize.
func TestAutoReoptimizeThreshold(t *testing.T) {
	build := func(threshold uint64) (*Runtime, *Program, Symbol) {
		rt := NewRuntime(func() int64 { return 1 }, nil)
		rt.SetHotThreshold(threshold)
		p := branchyProg()
		if err := rt.Load(p, 1); err != nil {
			t.Fatal(err)
		}
		sym := Symbol{Lib: "l", Func: "f"}
		if _, err := rt.AttachUprobe(sym, p); err != nil {
			t.Fatal(err)
		}
		return rt, p, sym
	}

	rt, p, sym := build(8)
	for i := 0; i < 7; i++ {
		rt.FireUprobe(1, 0, sym, uint64(i))
	}
	if got := p.DecodeTier(); got != 0 {
		t.Fatalf("tier %d before threshold, want 0", got)
	}
	rt.FireUprobe(1, 0, sym, 7)
	if got := p.DecodeTier(); got != 1 {
		t.Fatalf("tier %d after threshold, want 1", got)
	}

	rt0, p0, sym0 := build(0)
	for i := 0; i < 100; i++ {
		rt0.FireUprobe(1, 0, sym0, uint64(i))
	}
	if got := p0.DecodeTier(); got != 0 {
		t.Fatalf("tier %d with disabled threshold, want 0", got)
	}
	rt0.Reoptimize(p0)
	promoted := p0.DecodeTier()
	if promoted < 1 {
		t.Fatalf("tier %d after explicit Reoptimize, want >= 1", promoted)
	}
	rt0.Reoptimize(p0) // idempotent once promoted
	if got := p0.DecodeTier(); got != promoted {
		t.Fatalf("tier %d after double Reoptimize, want %d", got, promoted)
	}
}

// TestTier1ProfileCounters checks the tier-0 profile the re-decode
// consumes: run-slot hit counts accumulate per entered block.
func TestTier1ProfileCounters(t *testing.T) {
	rt := NewRuntime(func() int64 { return 1 }, nil)
	rt.SetHotThreshold(0)
	p := branchyProg()
	if err := rt.Load(p, 1); err != nil {
		t.Fatal(err)
	}
	sym := Symbol{Lib: "l", Func: "f"}
	if _, err := rt.AttachUprobe(sym, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rt.FireUprobe(1, 0, sym, 100)
	}
	for i := 0; i < 3; i++ {
		rt.FireUprobe(1, 0, sym, 0)
	}
	dp := p.dp.Load()
	if dp.runs != 13 {
		t.Fatalf("program runs = %d, want 13", dp.runs)
	}
	var hot, cold uint64
	for _, in := range dp.insns {
		for _, d := range in.run {
			if d.op == OpMovImm && d.dst == uint8(R0) && d.imm == 2 {
				hot = in.hits
			}
			if d.op == OpMovImm && d.dst == uint8(R0) && d.imm == 1 {
				cold = in.hits
			}
		}
	}
	if hot != 10 || cold != 3 {
		t.Fatalf("block hits hot=%d cold=%d, want 10/3", hot, cold)
	}
}

// FuzzTier1Equivalence drives the random-program generator from fuzz
// input and demands that any program the verifier accepts produces
// identical results, map contents, and perf records through the raw
// interpreter, the tier-0 decode, the tier-1 re-decode, and a tier-2
// re-decode whose branch profile was warmed by skewed fires (traces form
// whenever the random program happens to have a decisively biased
// branch; either way the guarded form must stay raw-identical).
func FuzzTier1Equivalence(f *testing.F) {
	f.Add(uint64(10), uint64(7), uint64(40))
	f.Add(uint64(12), uint64(0), uint64(1))
	f.Add(uint64(22), uint64(1<<40), uint64(3))
	f.Add(uint64(33), uint64(3), uint64(512))
	f.Add(uint64(94), uint64(1), uint64(2))
	f.Fuzz(func(t *testing.T, seed, w0, w1 uint64) {
		rng := sim.NewRNG(seed)
		p := randomProgram(rng)

		type world struct {
			hash *HashMap
			pb   *PerfBuffer
			maps map[int64]Map
			prog *Program
		}
		mkWorld := func() *world {
			w := &world{hash: NewHashMap("h", 64), pb: NewPerfBuffer("p", 0)}
			w.maps = map[int64]Map{1: w.hash, 2: w.pb}
			w.prog = &Program{Name: p.Name, Insns: p.Insns}
			w.hash.Update(3, 33)
			return w
		}
		worlds := []*world{mkWorld(), mkWorld(), mkWorld(), mkWorld()} // raw, tier0, tier1, tier2
		for _, w := range worlds {
			maps := w.maps
			if err := Verify(w.prog, VerifyOptions{CtxWords: 4, LookupMap: func(fd int64) Map { return maps[fd] }}); err != nil {
				t.Skip() // rejected programs have no behavior to compare
			}
		}
		for i, w := range worlds[1:] {
			maps := w.maps
			if err := decode(w.prog, func(fd int64) Map { return maps[fd] }, 0); err != nil {
				t.Fatalf("decode: %v", err)
			}
			switch i {
			case 1:
				w.prog.dp.Store(reoptimize(w.prog.dp.Load(), false))
			case 2:
				// Warm the branch profile: mostly the comparison context (so
				// any trace that forms points down the path the comparison
				// will take), plus a varied tail that keeps the cold edges
				// alive. Then roll the map/perf state back to the seed and
				// promote with traces enabled.
				vm := NewVM(w.maps)
				for n := 0; n < int(traceMinHits)*2; n++ {
					vm.Run(w.prog, &ExecContext{PID: 7, CPU: 1, NowNs: 1234,
						Words: []uint64{w0, w1, w0 % 97, w1 ^ w0}})
				}
				for n := uint64(0); n < 8; n++ {
					vm.Run(w.prog, &ExecContext{PID: 7, CPU: 1, NowNs: 1234,
						Words: []uint64{n * 31, w1 ^ n, n, w0 + n}})
				}
				for _, k := range w.hash.Keys() {
					w.hash.Delete(k)
				}
				w.hash.Update(3, 33)
				w.pb.Drain()
				*w.pb.seq = 0
				w.prog.dp.Store(reoptimize(w.prog.dp.Load(), true))
			}
		}

		ctx := func() *ExecContext {
			return &ExecContext{PID: 7, CPU: 1, NowNs: 1234,
				Words: []uint64{w0, w1, w0 % 97, w1 ^ w0}}
		}
		rres, rerr := NewVM(worlds[0].maps).RunInterpreted(worlds[0].prog, ctx())
		for i, w := range worlds[1:] {
			res, err := NewVM(w.maps).Run(w.prog, ctx())
			if (rerr == nil) != (err == nil) {
				t.Fatalf("tier%d error %v, raw error %v\nprogram: %v", i, err, rerr, p.Insns)
			}
			if res != rres {
				t.Fatalf("tier%d result %+v, raw %+v\nprogram: %v", i, res, rres, p.Insns)
			}
		}
		state := func(w *world) (map[uint64]uint64, []PerfRecord) {
			h := map[uint64]uint64{}
			for _, k := range w.hash.Keys() {
				v, _ := w.hash.Lookup(k)
				h[k] = v
			}
			return h, w.pb.Drain()
		}
		rh, rr := state(worlds[0])
		for i, w := range worlds[1:] {
			h, recs := state(w)
			if !reflect.DeepEqual(rh, h) {
				t.Fatalf("tier%d hash state %v, raw %v\nprogram: %v", i, h, rh, p.Insns)
			}
			if !reflect.DeepEqual(rr, recs) {
				t.Fatalf("tier%d perf records %v, raw %v\nprogram: %v", i, recs, rr, p.Insns)
			}
		}
	})
}
