package ebpf

import (
	"fmt"
	"sort"

	"github.com/tracesynth/rostracer/internal/umem"
)

// Symbol identifies a probeable user-space function: a shared object and a
// function name, e.g. {"rclcpp", "execute_subscription"}.
type Symbol struct {
	Lib  string
	Func string
}

func (s Symbol) String() string { return s.Lib + ":" + s.Func }

// AttachKind distinguishes entry probes, return probes and kernel
// tracepoints.
type AttachKind uint8

// Attachment kinds.
const (
	AttachUprobe AttachKind = iota
	AttachUretprobe
	AttachTracepoint
)

func (k AttachKind) String() string {
	switch k {
	case AttachUprobe:
		return "uprobe"
	case AttachUretprobe:
		return "uretprobe"
	default:
		return "tracepoint"
	}
}

type attachment struct {
	prog *Program
	id   int
}

// RuntimeStats aggregates the cost of all program executions, mirroring
// what `bpftool prog show` reports (run count and cumulative runtime).
type RuntimeStats struct {
	Runs        uint64
	Insns       uint64
	FaultedRuns uint64
}

// Runtime owns loaded programs, maps, and attachments, and dispatches probe
// firings from the simulated middleware and kernel. It corresponds to the
// in-kernel BPF machinery plus the BCC loader in Fig. 1 of the paper.
type Runtime struct {
	vm     *VM
	maps   map[int64]Map
	nextFD int64

	uprobes     map[Symbol][]attachment
	uretprobes  map[Symbol][]attachment
	tracepoints map[string][]attachment
	nextAttach  int

	// attachGen increments on every attach/detach; resolved probe sites
	// use it to know when their cached attachment lists went stale, so a
	// fire through a site costs one integer compare instead of a
	// string-hashed map lookup.
	attachGen uint64
	sites     map[Symbol]*ProbeSite
	tpSites   map[string]*TracepointSite

	// clock returns the current virtual time; injected by the simulation.
	clock func() int64
	// spaces resolves a PID to its simulated address space.
	spaces func(pid uint32) *umem.Space

	stats     RuntimeStats
	perInsnNs float64 // simulated cost of one interpreted instruction
	costNs    float64 // accumulated simulated tracing cost

	// predecode controls whether Load lowers programs into the
	// pre-resolved dispatch form (on by default; off forces the raw
	// reference interpreter, for equivalence tests and benchmarks).
	predecode bool
	// hotThreshold is the tier-0 run count at which a loaded program is
	// re-decoded into its profile-guided tier-1 form (0 disables the
	// automatic promotion; Reoptimize still forces it). It applies to
	// subsequent Load calls.
	hotThreshold uint64
	// fireCtx and fireWords are the per-runtime execution context and
	// argument scratch reused across probe fires, so the hot dispatch
	// path allocates nothing. The runtime is owned by one single-threaded
	// simulation, mirroring how real probes run on the firing CPU.
	fireCtx   ExecContext
	fireWords []uint64

	nativeHooks  map[Symbol][]nativeAttachment
	nativeCostNs float64

	// Inline caches for the symbol-keyed Fire* entry points (see
	// fireCache); invalidated by attachGen like the resolved sites.
	upCache     fireCache
	retCache    fireCache
	tpCacheGen  uint64
	tpCacheName string
	tpCacheList []attachment
}

// NewRuntime creates a runtime. clock supplies virtual time; spaces maps a
// PID to its address space (either may be nil for unit tests).
func NewRuntime(clock func() int64, spaces func(pid uint32) *umem.Space) *Runtime {
	rt := &Runtime{
		maps:        make(map[int64]Map),
		nextFD:      3, // fds 0-2 are taken, as in a real process
		uprobes:     make(map[Symbol][]attachment),
		uretprobes:  make(map[Symbol][]attachment),
		tracepoints: make(map[string][]attachment),
		clock:       clock,
		spaces:      spaces,
		// ~4 ns per interpreted instruction: the order of magnitude of a
		// JITed eBPF instruction plus map-helper amortization.
		perInsnNs:    4,
		predecode:    true,
		hotThreshold: DefaultHotThreshold(),
		fireWords:    make([]uint64, 0, MaxCtxWords),
	}
	rt.vm = NewVM(rt.maps)
	return rt
}

// SetPerInsnCost overrides the simulated per-instruction cost in
// nanoseconds (for the overhead sensitivity experiment).
func (rt *Runtime) SetPerInsnCost(ns float64) { rt.perInsnNs = ns }

// RegisterMap installs m and returns its fd.
func (rt *Runtime) RegisterMap(m Map) int64 {
	fd := rt.nextFD
	rt.nextFD++
	rt.maps[fd] = m
	return fd
}

// MapByFD returns the map registered under fd, or nil.
func (rt *Runtime) MapByFD(fd int64) Map { return rt.maps[fd] }

// SetPredecode toggles load-time lowering into the pre-resolved dispatch
// form. It affects subsequent Load calls only; disabling it makes programs
// run through the raw reference interpreter.
func (rt *Runtime) SetPredecode(on bool) { rt.predecode = on }

// SetHotThreshold sets the tier-0 run count at which subsequently loaded
// programs are automatically re-decoded into their profile-guided tier-1
// form. 0 disables automatic promotion (Reoptimize still forces it).
func (rt *Runtime) SetHotThreshold(n uint64) { rt.hotThreshold = n }

// Reoptimize forces the profile-guided tier-1 re-decode of a loaded
// program immediately, without waiting for the hotness threshold. The
// swap is atomic with respect to in-flight fires: a fire that already
// loaded the tier-0 form completes on it, the next one dispatches over
// the tier-1 form. Reoptimizing an undecoded or already tier-1 program
// is a no-op.
func (rt *Runtime) Reoptimize(p *Program) {
	if dp := p.dp.Load(); dp != nil && dp.tier == 0 {
		p.dp.Store(reoptimize(dp, true))
	}
}

// Load verifies p for an attach point exposing ctxWords context words and,
// unless predecoding is disabled, lowers it into the pre-resolved dispatch
// form bound to this runtime's maps. It must be called before Attach.
//
// Loading binds p to THIS runtime: the decoded form references this
// runtime's Map objects directly, so a Program must not be shared across
// runtimes (each session builds its own bundle, as NewBundle does). A
// later Load on another runtime rebinds the program there.
func (rt *Runtime) Load(p *Program, ctxWords int) error {
	if err := Verify(p, VerifyOptions{CtxWords: ctxWords, LookupMap: rt.MapByFD}); err != nil {
		return err
	}
	if rt.predecode {
		return decode(p, rt.MapByFD, rt.hotThreshold)
	}
	return nil
}

// AttachUprobe attaches p to the entry of sym. The program must be loaded.
func (rt *Runtime) AttachUprobe(sym Symbol, p *Program) (int, error) {
	return rt.attach(AttachUprobe, sym, "", p)
}

// AttachUretprobe attaches p to the return of sym.
func (rt *Runtime) AttachUretprobe(sym Symbol, p *Program) (int, error) {
	return rt.attach(AttachUretprobe, sym, "", p)
}

// AttachTracepoint attaches p to a kernel tracepoint such as
// "sched:sched_switch".
func (rt *Runtime) AttachTracepoint(name string, p *Program) (int, error) {
	return rt.attach(AttachTracepoint, Symbol{}, name, p)
}

func (rt *Runtime) attach(kind AttachKind, sym Symbol, tp string, p *Program) (int, error) {
	if p == nil {
		return 0, fmt.Errorf("ebpf: attach of nil program")
	}
	if !p.verified {
		return 0, fmt.Errorf("ebpf: program %q not verified", p.Name)
	}
	id := rt.nextAttach
	rt.nextAttach++
	rt.attachGen++
	at := attachment{prog: p, id: id}
	switch kind {
	case AttachUprobe:
		rt.uprobes[sym] = append(rt.uprobes[sym], at)
	case AttachUretprobe:
		rt.uretprobes[sym] = append(rt.uretprobes[sym], at)
	case AttachTracepoint:
		rt.tracepoints[tp] = append(rt.tracepoints[tp], at)
	}
	return id, nil
}

// Detach removes an attachment by id. It reports whether it was found.
func (rt *Runtime) Detach(id int) bool {
	rt.attachGen++
	remove := func(m map[Symbol][]attachment) bool {
		for k, list := range m {
			for i, at := range list {
				if at.id == id {
					m[k] = append(list[:i:i], list[i+1:]...)
					return true
				}
			}
		}
		return false
	}
	if remove(rt.uprobes) || remove(rt.uretprobes) {
		return true
	}
	for k, list := range rt.tracepoints {
		for i, at := range list {
			if at.id == id {
				rt.tracepoints[k] = append(list[:i:i], list[i+1:]...)
				return true
			}
		}
	}
	return false
}

// DetachAll removes every attachment (end of a tracing session).
func (rt *Runtime) DetachAll() {
	rt.attachGen++
	rt.uprobes = make(map[Symbol][]attachment)
	rt.uretprobes = make(map[Symbol][]attachment)
	rt.tracepoints = make(map[string][]attachment)
}

// Attachments lists currently attached program names, sorted, for
// diagnostics.
func (rt *Runtime) Attachments() []string {
	var out []string
	for sym, list := range rt.uprobes {
		for _, at := range list {
			out = append(out, fmt.Sprintf("uprobe:%s -> %s", sym, at.prog.Name))
		}
	}
	for sym, list := range rt.uretprobes {
		for _, at := range list {
			out = append(out, fmt.Sprintf("uretprobe:%s -> %s", sym, at.prog.Name))
		}
	}
	for tp, list := range rt.tracepoints {
		for _, at := range list {
			out = append(out, fmt.Sprintf("tracepoint:%s -> %s", tp, at.prog.Name))
		}
	}
	sort.Strings(out)
	return out
}

// execCtx fills the runtime's reusable fire context. hasRet prepends ret as
// word 0 (uretprobes); args are copied into the scratch buffer so callers'
// variadic slices never escape to the heap. The returned context is valid
// until the next fire.
//
// ctx.CPU is the firing CPU: perf_event_output appends to that CPU's ring
// of the target perf buffer, as the kernel helper does with
// BPF_F_CURRENT_CPU. Unpinned contexts (negative cpu) are normalized to
// CPU 0 so the context always names a real ring.
func (rt *Runtime) execCtx(pid uint32, cpu int, hasRet bool, ret uint64, args []uint64) *ExecContext {
	if cpu < 0 {
		cpu = 0
	}
	words := rt.fireWords[:0]
	if hasRet {
		words = append(words, ret)
	}
	words = append(words, args...)
	rt.fireWords = words[:0]

	c := &rt.fireCtx
	c.PID = pid
	c.CPU = cpu
	c.NowNs = 0
	if rt.clock != nil {
		c.NowNs = rt.clock()
	}
	c.Mem = nil
	if rt.spaces != nil {
		c.Mem = rt.spaces(pid)
	}
	c.Words = words
	return c
}

func (rt *Runtime) run(list []attachment, ctx *ExecContext) {
	for _, at := range list {
		res, err := rt.vm.Run(at.prog, ctx)
		rt.stats.Runs++
		rt.stats.Insns += uint64(res.Insns)
		rt.costNs += float64(res.Insns) * rt.perInsnNs
		if err != nil {
			// A faulting program is dropped from accounting but must not
			// crash the traced application, as in the kernel.
			rt.stats.FaultedRuns++
		}
	}
}

// ProbeSite is a pre-resolved probe location: the middleware resolves a
// Symbol once at startup and fires through the site afterwards, the way a
// real uprobe is armed at a fixed address rather than re-resolved per hit.
// The cached attachment lists refresh lazily when the runtime's attachment
// generation moves.
type ProbeSite struct {
	rt  *Runtime
	sym Symbol
	gen uint64

	uprobes    []attachment
	uretprobes []attachment
	native     []nativeAttachment
}

// Site returns the interned probe site for sym.
func (rt *Runtime) Site(sym Symbol) *ProbeSite {
	if rt.sites == nil {
		rt.sites = make(map[Symbol]*ProbeSite)
	}
	if s, ok := rt.sites[sym]; ok {
		return s
	}
	s := &ProbeSite{rt: rt, sym: sym}
	s.refresh()
	rt.sites[sym] = s
	return s
}

func (s *ProbeSite) refresh() {
	s.uprobes = s.rt.uprobes[s.sym]
	s.uretprobes = s.rt.uretprobes[s.sym]
	s.native = s.rt.nativeHooks[s.sym]
	s.gen = s.rt.attachGen
}

// FireEntry fires the site's entry probes; args become ctx words 0..n-1.
func (s *ProbeSite) FireEntry(pid uint32, cpu int, args ...uint64) {
	if s.gen != s.rt.attachGen {
		s.refresh()
	}
	if len(s.uprobes) > 0 {
		s.rt.run(s.uprobes, s.rt.execCtx(pid, cpu, false, 0, args))
	}
	if len(s.native) > 0 {
		s.rt.runNativeList(s.native, s.rt.execCtx(pid, cpu, false, 0, args))
	}
}

// FireReturn fires the site's return probes; ret becomes ctx word 0 and
// the entry args follow in words 1..n.
func (s *ProbeSite) FireReturn(pid uint32, cpu int, ret uint64, args ...uint64) {
	if s.gen != s.rt.attachGen {
		s.refresh()
	}
	if len(s.uretprobes) > 0 {
		s.rt.run(s.uretprobes, s.rt.execCtx(pid, cpu, true, ret, args))
	}
}

// TracepointSite is the pre-resolved analogue for kernel tracepoints.
type TracepointSite struct {
	rt   *Runtime
	name string
	gen  uint64
	list []attachment
}

// TracepointSiteFor returns the interned site for a tracepoint name.
func (rt *Runtime) TracepointSiteFor(name string) *TracepointSite {
	if rt.tpSites == nil {
		rt.tpSites = make(map[string]*TracepointSite)
	}
	if s, ok := rt.tpSites[name]; ok {
		return s
	}
	s := &TracepointSite{rt: rt, name: name}
	s.refresh()
	rt.tpSites[name] = s
	return s
}

func (s *TracepointSite) refresh() {
	s.list = s.rt.tracepoints[s.name]
	s.gen = s.rt.attachGen
}

// Fire fires the tracepoint; fields are the record in declaration order.
func (s *TracepointSite) Fire(cpu int, fields ...uint64) {
	if s.gen != s.rt.attachGen {
		s.refresh()
	}
	if len(s.list) > 0 {
		s.rt.run(s.list, s.rt.execCtx(0, cpu, false, 0, fields))
	}
}

// fireCache is a one-entry inline cache for the symbol-keyed Fire*
// entry points: repeated fires at the same probe location skip the
// string-hashed map lookup, validated by the same attachment generation
// the pre-resolved sites use. The middleware fires through ProbeSites;
// this covers callers of the legacy per-symbol API.
type fireCache struct {
	gen    uint64
	sym    Symbol
	list   []attachment
	native []nativeAttachment
}

func (c *fireCache) refresh(rt *Runtime, sym Symbol, m map[Symbol][]attachment, withNative bool) {
	c.gen, c.sym = rt.attachGen, sym
	c.list = m[sym]
	c.native = nil
	if withNative {
		c.native = rt.nativeHooks[sym]
	}
}

// FireUprobe is called by the simulated middleware at a function's entry.
// args become ctx words 0..n-1.
func (rt *Runtime) FireUprobe(pid uint32, cpu int, sym Symbol, args ...uint64) {
	c := &rt.upCache
	if c.gen != rt.attachGen || c.sym != sym {
		c.refresh(rt, sym, rt.uprobes, true)
	}
	if len(c.list) > 0 {
		rt.run(c.list, rt.execCtx(pid, cpu, false, 0, args))
	}
	if len(c.native) > 0 {
		rt.runNativeList(c.native, rt.execCtx(pid, cpu, false, 0, args))
	}
}

// FireUretprobe is called at a function's return; ret becomes ctx word 0
// and the entry args follow in words 1..n.
func (rt *Runtime) FireUretprobe(pid uint32, cpu int, sym Symbol, ret uint64, args ...uint64) {
	c := &rt.retCache
	if c.gen != rt.attachGen || c.sym != sym {
		c.refresh(rt, sym, rt.uretprobes, false)
	}
	if len(c.list) > 0 {
		rt.run(c.list, rt.execCtx(pid, cpu, true, ret, args))
	}
}

// FireTracepoint is called by the simulated kernel; fields are the
// tracepoint's record in declaration order.
func (rt *Runtime) FireTracepoint(name string, cpu int, fields ...uint64) {
	if rt.tpCacheGen != rt.attachGen || rt.tpCacheName != name {
		rt.tpCacheGen, rt.tpCacheName = rt.attachGen, name
		rt.tpCacheList = rt.tracepoints[name]
	}
	if list := rt.tpCacheList; len(list) > 0 {
		rt.run(list, rt.execCtx(0, cpu, false, 0, fields))
	}
}

// Stats returns cumulative execution statistics.
func (rt *Runtime) Stats() RuntimeStats { return rt.stats }

// CostNs returns the simulated CPU nanoseconds consumed by probe programs,
// the numerator of the paper's "0.008 CPU cores" overhead figure.
func (rt *Runtime) CostNs() float64 { return rt.costNs }

// ResetCost zeroes the stats and cost accumulators (per-experiment).
func (rt *Runtime) ResetCost() {
	rt.stats = RuntimeStats{}
	rt.costNs = 0
	rt.nativeCostNs = 0
}

// NativeHook is user-space instrumentation invoked synchronously at a
// probe site, modeling LD_PRELOAD-style function redirection (the CARET
// approach the paper compares against in Sec. II-B): the call is diverted
// to a tracing shim which must resolve and invoke the original symbol,
// which costs a fixed overhead per invocation on top of the event
// handling itself.
type NativeHook struct {
	Fn     func(ctx *ExecContext)
	CostNs float64 // per-invocation redirection + handling cost
}

// AttachNativeHook registers hook at sym's entry. It returns an id usable
// with DetachNativeHook.
func (rt *Runtime) AttachNativeHook(sym Symbol, hook NativeHook) int {
	if rt.nativeHooks == nil {
		rt.nativeHooks = make(map[Symbol][]nativeAttachment)
	}
	id := rt.nextAttach
	rt.nextAttach++
	rt.attachGen++
	rt.nativeHooks[sym] = append(rt.nativeHooks[sym], nativeAttachment{hook: hook, id: id})
	return id
}

// DetachNativeHook removes a native hook by id.
func (rt *Runtime) DetachNativeHook(id int) bool {
	rt.attachGen++
	for k, list := range rt.nativeHooks {
		for i, at := range list {
			if at.id == id {
				rt.nativeHooks[k] = append(list[:i:i], list[i+1:]...)
				return true
			}
		}
	}
	return false
}

// NativeCostNs returns the simulated cost accumulated by native hooks.
func (rt *Runtime) NativeCostNs() float64 { return rt.nativeCostNs }

type nativeAttachment struct {
	hook NativeHook
	id   int
}

func (rt *Runtime) runNativeList(list []nativeAttachment, ctx *ExecContext) {
	for _, at := range list {
		at.hook.Fn(ctx)
		rt.nativeCostNs += at.hook.CostNs
	}
}
