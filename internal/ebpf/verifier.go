package ebpf

import "fmt"

// The verifier performs an abstract interpretation over the program's
// control-flow graph. Because jumps are forward-only the CFG is a DAG and a
// single in-order pass with state merging at join points visits every
// reachable instruction exactly once.
//
// Tracked facts, per register:
//   - kind: uninitialized, scalar, pointer-to-context, pointer-to-stack
//   - for scalars: whether the value is a compile-time constant (needed to
//     bound probe_read/perf_event_output sizes)
//   - for stack pointers: the constant offset from the frame top
//
// Tracked facts, per stack byte: initialized or not. perf_event_output and
// loads require their source bytes initialized.

type regKind uint8

const (
	kindUninit regKind = iota
	kindScalar
	kindPtrCtx
	kindPtrStack
	kindBottom // conflicting kinds merged; unusable
)

func (k regKind) String() string {
	switch k {
	case kindUninit:
		return "uninit"
	case kindScalar:
		return "scalar"
	case kindPtrCtx:
		return "ctx_ptr"
	case kindPtrStack:
		return "stack_ptr"
	default:
		return "bottom"
	}
}

type regState struct {
	kind      regKind
	constKnow bool  // scalar: value known at verification time
	constVal  int64 // scalar constant or stack-pointer offset (<= 0)
}

type absState struct {
	regs  [NumRegs]regState
	stack [StackSize]bool // initialized bytes; index 0 = fp-512 ... 511 = fp-1
}

// merge folds other into s, weakening facts that disagree. It reports
// whether s changed.
func (s *absState) merge(other *absState) bool {
	changed := false
	for i := range s.regs {
		a, b := s.regs[i], other.regs[i]
		m := a
		switch {
		case a == b:
			// identical
		case a.kind == b.kind && a.kind == kindScalar:
			m = regState{kind: kindScalar}
		case a.kind == b.kind && a.kind == kindPtrStack && a.constVal == b.constVal:
			m = a
		case a.kind == kindUninit || b.kind == kindUninit:
			m = regState{kind: kindUninit}
		default:
			m = regState{kind: kindBottom}
		}
		if m != a {
			s.regs[i] = m
			changed = true
		}
	}
	for i := range s.stack {
		init := s.stack[i] && other.stack[i]
		if init != s.stack[i] {
			s.stack[i] = init
			changed = true
		}
	}
	return changed
}

// VerifyError describes a verifier rejection.
type VerifyError struct {
	Prog string
	Insn int
	Msg  string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("ebpf: verifier rejected %q at insn %d: %s", e.Prog, e.Insn, e.Msg)
}

type verifier struct {
	prog     *Program
	ctxWords int
	maps     func(fd int64) Map // resolves map fds; nil allows any
	states   []*absState        // per-instruction incoming state
}

// VerifyOptions parameterize verification.
type VerifyOptions struct {
	// CtxWords is the number of 64-bit context words the attach point
	// provides. Loads beyond it are rejected.
	CtxWords int
	// LookupMap resolves a map fd to check map-typed helper arguments; nil
	// skips fd validation (useful in unit tests).
	LookupMap func(fd int64) Map
}

// Verify checks p and marks it verified on success.
func Verify(p *Program, opts VerifyOptions) error {
	if len(p.Insns) == 0 {
		return &VerifyError{p.Name, 0, "empty program"}
	}
	if len(p.Insns) > MaxInsns {
		return &VerifyError{p.Name, 0, fmt.Sprintf("program too long: %d insns", len(p.Insns))}
	}
	if opts.CtxWords <= 0 || opts.CtxWords > MaxCtxWords {
		opts.CtxWords = MaxCtxWords
	}
	v := &verifier{prog: p, ctxWords: opts.CtxWords, maps: opts.LookupMap,
		states: make([]*absState, len(p.Insns))}

	p.dp.Store(nil)
	p.callMapFD = make([]int64, len(p.Insns))
	p.memLo = make([]int32, len(p.Insns))
	for i := range p.callMapFD {
		p.callMapFD[i] = -1
		p.memLo[i] = -1
	}

	entry := &absState{}
	entry.regs[R1] = regState{kind: kindPtrCtx}
	entry.regs[R10] = regState{kind: kindPtrStack, constVal: 0}
	v.states[0] = entry

	for i, in := range p.Insns {
		st := v.states[i]
		if st == nil {
			continue // unreachable; tolerated, as dead code after Ja
		}
		next, jumpTarget, terminated, err := v.step(i, in, st)
		if err != nil {
			return err
		}
		if terminated {
			continue
		}
		if next != nil {
			if i+1 >= len(p.Insns) {
				return &VerifyError{p.Name, i, "control falls off program end"}
			}
			v.propagate(i+1, next)
		}
		if jumpTarget >= 0 {
			if jumpTarget >= len(p.Insns) {
				return &VerifyError{p.Name, i, "jump beyond program end"}
			}
			v.propagate(jumpTarget, st.clone())
		}
	}
	p.verified = true
	return nil
}

func (s *absState) clone() *absState {
	c := *s
	return &c
}

func (v *verifier) propagate(idx int, st *absState) {
	if v.states[idx] == nil {
		v.states[idx] = st
		return
	}
	v.states[idx].merge(st)
}

func (v *verifier) errf(i int, format string, args ...interface{}) error {
	return &VerifyError{v.prog.Name, i, fmt.Sprintf(format, args...)}
}

// step abstractly executes instruction i over st (mutating it as the
// fall-through state). It returns the fall-through state (nil if control
// never falls through), the jump target index (or -1), and whether the
// program terminated here.
func (v *verifier) step(i int, in Instruction, st *absState) (*absState, int, bool, error) {
	requireInit := func(r Reg, what string) error {
		k := st.regs[r].kind
		if k == kindUninit || k == kindBottom {
			return v.errf(i, "%s %v is %v", what, r, k)
		}
		return nil
	}
	requireScalar := func(r Reg, what string) error {
		if err := requireInit(r, what); err != nil {
			return err
		}
		if st.regs[r].kind != kindScalar {
			return v.errf(i, "%s %v must be scalar, is %v", what, r, st.regs[r].kind)
		}
		return nil
	}
	if in.Dst >= NumRegs || in.Src >= NumRegs {
		return nil, -1, false, v.errf(i, "invalid register")
	}
	writesDst := func() error {
		if in.Dst == R10 {
			return v.errf(i, "write to frame pointer r10")
		}
		return nil
	}

	switch in.Op {
	case OpMovImm:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		st.regs[in.Dst] = regState{kind: kindScalar, constKnow: true, constVal: in.Imm}
		return st, -1, false, nil

	case OpMovReg:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		if err := requireInit(in.Src, "source"); err != nil {
			return nil, -1, false, err
		}
		st.regs[in.Dst] = st.regs[in.Src]
		return st, -1, false, nil

	case OpAddImm, OpSubImm:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		d := st.regs[in.Dst]
		switch d.kind {
		case kindScalar:
			if d.constKnow {
				if in.Op == OpAddImm {
					d.constVal += in.Imm
				} else {
					d.constVal -= in.Imm
				}
			}
		case kindPtrStack:
			off := d.constVal
			if in.Op == OpAddImm {
				off += in.Imm
			} else {
				off -= in.Imm
			}
			if off < -StackSize || off > 0 {
				return nil, -1, false, v.errf(i, "stack pointer offset %d out of [-%d,0]", off, StackSize)
			}
			d.constVal = off
		default:
			return nil, -1, false, v.errf(i, "arithmetic on %v register", d.kind)
		}
		st.regs[in.Dst] = d
		return st, -1, false, nil

	case OpAddReg, OpSubReg, OpMulReg, OpDivReg, OpModReg, OpAndReg, OpOrReg, OpXorReg:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		if err := requireScalar(in.Dst, "operand"); err != nil {
			return nil, -1, false, err
		}
		if err := requireScalar(in.Src, "operand"); err != nil {
			return nil, -1, false, err
		}
		d, s := st.regs[in.Dst], st.regs[in.Src]
		out := regState{kind: kindScalar}
		if d.constKnow && s.constKnow {
			out.constKnow = true
			out.constVal = constALU(in.Op, d.constVal, s.constVal)
		}
		st.regs[in.Dst] = out
		return st, -1, false, nil

	case OpMulImm, OpDivImm, OpModImm, OpAndImm, OpOrImm, OpXorImm, OpLshImm, OpRshImm:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		if err := requireScalar(in.Dst, "operand"); err != nil {
			return nil, -1, false, err
		}
		d := st.regs[in.Dst]
		if d.constKnow {
			d.constVal = constALU(in.Op, d.constVal, in.Imm)
		}
		st.regs[in.Dst] = d
		return st, -1, false, nil

	case OpNeg:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		if err := requireScalar(in.Dst, "operand"); err != nil {
			return nil, -1, false, err
		}
		d := st.regs[in.Dst]
		if d.constKnow {
			d.constVal = -d.constVal
		}
		st.regs[in.Dst] = d
		return st, -1, false, nil

	case OpLdxCtx:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		if st.regs[in.Src].kind != kindPtrCtx {
			return nil, -1, false, v.errf(i, "context load from non-context register %v", in.Src)
		}
		if in.Off%8 != 0 || in.Off < 0 || int(in.Off/8) >= v.ctxWords {
			return nil, -1, false, v.errf(i, "context offset %d invalid for %d words", in.Off, v.ctxWords)
		}
		st.regs[in.Dst] = regState{kind: kindScalar}
		return st, -1, false, nil

	case OpLdxStack:
		if err := writesDst(); err != nil {
			return nil, -1, false, err
		}
		lo, err := v.stackRange(i, st, in.Src, in.Off, in.Size)
		if err != nil {
			return nil, -1, false, err
		}
		for b := lo; b < lo+int(in.Size); b++ {
			if !st.stack[b] {
				return nil, -1, false, v.errf(i, "read of uninitialized stack byte fp%+d", b-StackSize)
			}
		}
		st.regs[in.Dst] = regState{kind: kindScalar}
		return st, -1, false, nil

	case OpStxStack:
		if err := requireInit(in.Src, "stored value"); err != nil {
			return nil, -1, false, err
		}
		if st.regs[in.Src].kind == kindPtrCtx {
			return nil, -1, false, v.errf(i, "spilling context pointer to stack is not supported")
		}
		lo, err := v.stackRange(i, st, in.Dst, in.Off, in.Size)
		if err != nil {
			return nil, -1, false, err
		}
		markInit(st, lo, int(in.Size))
		return st, -1, false, nil

	case OpStImmStack:
		lo, err := v.stackRange(i, st, in.Dst, in.Off, in.Size)
		if err != nil {
			return nil, -1, false, err
		}
		markInit(st, lo, int(in.Size))
		return st, -1, false, nil

	case OpJa:
		if in.Off < 0 {
			return nil, -1, false, v.errf(i, "backward jump")
		}
		return nil, i + 1 + int(in.Off), false, nil

	case OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm:
		if err := requireInit(in.Dst, "compared"); err != nil {
			return nil, -1, false, err
		}
		if in.Off < 0 {
			return nil, -1, false, v.errf(i, "backward jump")
		}
		return st, i + 1 + int(in.Off), false, nil

	case OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg:
		if err := requireInit(in.Dst, "compared"); err != nil {
			return nil, -1, false, err
		}
		if err := requireInit(in.Src, "compared"); err != nil {
			return nil, -1, false, err
		}
		if in.Off < 0 {
			return nil, -1, false, v.errf(i, "backward jump")
		}
		return st, i + 1 + int(in.Off), false, nil

	case OpCall:
		if err := v.checkHelper(i, HelperID(in.Imm), st); err != nil {
			return nil, -1, false, err
		}
		st.regs[R0] = regState{kind: kindScalar}
		for r := R1; r <= R5; r++ {
			st.regs[r] = regState{kind: kindUninit}
		}
		return st, -1, false, nil

	case OpExit:
		if k := st.regs[R0].kind; k != kindScalar {
			return nil, -1, false, v.errf(i, "exit with r0 %v", k)
		}
		return nil, -1, true, nil
	}
	return nil, -1, false, v.errf(i, "unknown opcode %v", in.Op)
}

func markInit(st *absState, lo, n int) {
	for b := lo; b < lo+n; b++ {
		st.stack[b] = true
	}
}

// stackRange validates a stack access through base+off with the given width
// and returns the low byte index into the stack array.
func (v *verifier) stackRange(i int, st *absState, base Reg, off int32, size uint8) (int, error) {
	switch size {
	case 1, 2, 4, 8:
	default:
		return 0, v.errf(i, "invalid access size %d", size)
	}
	bs := st.regs[base]
	if bs.kind != kindPtrStack {
		return 0, v.errf(i, "memory access through %v register %v", bs.kind, base)
	}
	eff := bs.constVal + int64(off)
	if eff < -StackSize || eff+int64(size) > 0 {
		return 0, v.errf(i, "stack access fp%+d size %d out of bounds", eff, size)
	}
	// The access resolves to one provably in-bounds frame index (merged
	// states with differing stack-pointer offsets collapse to bottom and
	// are rejected above); record it for the decoder.
	v.prog.memLo[i] = int32(eff + StackSize)
	return int(eff + StackSize), nil
}

func (v *verifier) checkHelper(i int, h HelperID, st *absState) error {
	scalar := func(r Reg) error {
		if st.regs[r].kind != kindScalar {
			return v.errf(i, "%v arg %v must be scalar, is %v", h, r, st.regs[r].kind)
		}
		return nil
	}
	constScalar := func(r Reg) (int64, error) {
		if err := scalar(r); err != nil {
			return 0, err
		}
		if !st.regs[r].constKnow {
			return 0, v.errf(i, "%v arg %v must be a known constant", h, r)
		}
		return st.regs[r].constVal, nil
	}
	stackPtr := func(r Reg) (int64, error) {
		if st.regs[r].kind != kindPtrStack {
			return 0, v.errf(i, "%v arg %v must be stack pointer, is %v", h, r, st.regs[r].kind)
		}
		return st.regs[r].constVal, nil
	}
	mapFD := func(r Reg) error {
		fd, err := constScalar(r)
		if err != nil {
			return err
		}
		if v.maps != nil && v.maps(fd) == nil {
			return v.errf(i, "%v: no map with fd %d", h, fd)
		}
		// The fd is a proven constant here (states merging conflicting
		// constants lose constKnow and are rejected above), so the call
		// site resolves to exactly one map; remember it for the decoder.
		v.prog.callMapFD[i] = fd
		return nil
	}

	switch h {
	case HelperMapLookup, HelperMapLookupExist, HelperMapDelete:
		if err := mapFD(R1); err != nil {
			return err
		}
		return scalar(R2)
	case HelperMapUpdate:
		if err := mapFD(R1); err != nil {
			return err
		}
		if err := scalar(R2); err != nil {
			return err
		}
		return scalar(R3)
	case HelperProbeRead, HelperProbeReadStr:
		off, err := stackPtr(R1)
		if err != nil {
			return err
		}
		size, err := constScalar(R2)
		if err != nil {
			return err
		}
		if size <= 0 || off+size > 0 || off < -StackSize {
			return v.errf(i, "%v destination fp%+d size %d out of stack", h, off, size)
		}
		if err := scalar(R3); err != nil {
			return err
		}
		// The helper initializes the destination bytes (on fault it zero
		// fills, as bpf_probe_read does).
		markInit(st, int(off+StackSize), int(size))
		return nil
	case HelperPerfOutput:
		if err := mapFD(R1); err != nil {
			return err
		}
		off, err := stackPtr(R2)
		if err != nil {
			return err
		}
		size, err := constScalar(R3)
		if err != nil {
			return err
		}
		if size <= 0 || off+size > 0 || off < -StackSize {
			return v.errf(i, "%v source fp%+d size %d out of stack", h, off, size)
		}
		for b := int(off + StackSize); b < int(off+StackSize+size); b++ {
			if !st.stack[b] {
				return v.errf(i, "%v reads uninitialized stack byte fp%+d", h, b-StackSize)
			}
		}
		return nil
	case HelperKtimeGetNs, HelperGetCurrentPid, HelperGetSmpProcID:
		return nil
	}
	return v.errf(i, "unknown helper %d", int64(h))
}

func constALU(op Op, a, b int64) int64 {
	ua, ub := uint64(a), uint64(b)
	switch op {
	case OpAddReg:
		return a + b
	case OpSubReg:
		return a - b
	case OpMulReg, OpMulImm:
		return a * b
	case OpDivReg, OpDivImm:
		if ub == 0 {
			return 0
		}
		return int64(ua / ub)
	case OpModReg, OpModImm:
		if ub == 0 {
			return 0
		}
		return int64(ua % ub)
	case OpAndReg, OpAndImm:
		return a & b
	case OpOrReg, OpOrImm:
		return a | b
	case OpXorReg, OpXorImm:
		return a ^ b
	case OpLshImm:
		return int64(ua << (ub & 63))
	case OpRshImm:
		return int64(ua >> (ub & 63))
	}
	return 0
}
