package ebpf

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/umem"
)

// TestVerifierSoundnessOnRandomPrograms is the substrate's core safety
// property, mirrored from the kernel's contract: any program the verifier
// accepts must execute without faulting — no out-of-bounds stack access,
// no bad helper calls, guaranteed termination — on arbitrary contexts.
func TestVerifierSoundnessOnRandomPrograms(t *testing.T) {
	rng := sim.NewRNG(2024)
	maps := map[int64]Map{
		1: NewHashMap("h", 64),
		2: NewPerfBuffer("p", 0),
	}
	lookup := func(fd int64) Map { return maps[fd] }

	accepted, rejected := 0, 0
	for trial := 0; trial < 5000; trial++ {
		p := randomProgram(rng)
		err := Verify(p, VerifyOptions{CtxWords: 4, LookupMap: lookup})
		if err != nil {
			rejected++
			continue
		}
		accepted++
		space := umem.NewSpace(uint32(trial))
		addr := space.AllocU64(0xfeed)
		ctx := &ExecContext{
			PID: uint32(trial), CPU: 0, NowNs: int64(trial),
			Words: []uint64{uint64(addr), rng.Uint64() % 1024, 0, uint64(addr)},
			Mem:   space,
		}
		if _, err := NewVM(maps).Run(p, ctx); err != nil {
			t.Fatalf("verified program faulted at runtime: %v\nprogram: %v", err, p.Insns)
		}
	}
	if accepted == 0 {
		t.Fatal("no random program was ever accepted; generator too wild to be useful")
	}
	if rejected == 0 {
		t.Fatal("no random program was ever rejected; generator too tame to be useful")
	}
	t.Logf("accepted %d / rejected %d", accepted, rejected)
}

// randomProgram emits a random but loosely plausible instruction sequence.
func randomProgram(rng *sim.RNG) *Program {
	n := 3 + rng.Intn(20)
	insns := make([]Instruction, 0, n+2)
	// Bias toward initializing some registers early so a useful fraction
	// of programs verifies.
	insns = append(insns, Instruction{Op: OpMovImm, Dst: R0, Imm: int64(rng.Intn(100))})
	for i := 0; i < n; i++ {
		var in Instruction
		switch rng.Intn(12) {
		case 0:
			in = Instruction{Op: OpMovImm, Dst: Reg(rng.Intn(11)), Imm: int64(rng.Intn(512)) - 256}
		case 1:
			in = Instruction{Op: OpMovReg, Dst: Reg(rng.Intn(11)), Src: Reg(rng.Intn(11))}
		case 2:
			in = Instruction{Op: OpAddImm, Dst: Reg(rng.Intn(11)), Imm: int64(rng.Intn(64)) - 32}
		case 3:
			in = Instruction{Op: OpLdxCtx, Dst: Reg(rng.Intn(11)), Src: R1, Off: int32(rng.Intn(6) * 8)}
		case 4:
			in = Instruction{Op: OpStxStack, Dst: R10, Src: Reg(rng.Intn(11)),
				Off: -int32(8 * (1 + rng.Intn(70))), Size: 8}
		case 5:
			in = Instruction{Op: OpLdxStack, Dst: Reg(rng.Intn(11)), Src: R10,
				Off: -int32(8 * (1 + rng.Intn(70))), Size: 8}
		case 6:
			in = Instruction{Op: OpJeqImm, Dst: Reg(rng.Intn(11)), Imm: int64(rng.Intn(8)),
				Off: int32(rng.Intn(4))}
		case 7:
			in = Instruction{Op: OpCall, Imm: int64([]HelperID{
				HelperMapLookup, HelperMapUpdate, HelperKtimeGetNs,
				HelperGetCurrentPid, HelperProbeRead, HelperPerfOutput,
			}[rng.Intn(6)])}
		case 8:
			in = Instruction{Op: OpMulImm, Dst: Reg(rng.Intn(11)), Imm: int64(rng.Intn(16))}
		case 9:
			in = Instruction{Op: OpDivReg, Dst: Reg(rng.Intn(11)), Src: Reg(rng.Intn(11))}
		case 10:
			in = Instruction{Op: OpStImmStack, Dst: R10, Imm: int64(rng.Intn(256)),
				Off: -int32(8 * (1 + rng.Intn(70))), Size: 8}
		default:
			in = Instruction{Op: OpExit}
		}
		insns = append(insns, in)
	}
	insns = append(insns, Instruction{Op: OpMovImm, Dst: R0}, Instruction{Op: OpExit})
	return &Program{Name: "fuzz", Insns: insns}
}
