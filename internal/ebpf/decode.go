package ebpf

import "fmt"

// The decoder lowers a verified program into a pre-resolved dispatch form,
// the moral equivalent of the kernel's JIT step: work that the raw
// interpreter repeats on every instruction retire — widening immediates,
// turning relative jump displacements into absolute targets, dividing
// context offsets into word indexes, resolving stack accesses to the
// frame indexes the verifier proved, hashing map fds, and type-asserting
// perf buffers — happens once at load time instead. The VM dispatches over
// this form on every probe fire; the raw Instruction slice is kept for
// diagnostics and as the reference interpreter.
//
// Decoding is tiered. Tier 0 (this file) is the load-time lowering plus
// near-free profiling: every fused-run slot carries an execution counter
// and the program counts its runs. When a program crosses its hotness
// threshold (or on an explicit Runtime.Reoptimize), tier 1 (tier1.go)
// re-decodes it using the observed counts: helper-argument setup patterns
// fuse into dedicated superinstructions, immediate chains constant-fold,
// and hot blocks are compacted into a dense, profile-ordered slot array.

// Internal opcodes produced only by the decoder, numbered above the raw
// opcode space.
const (
	// opRunFused is the superinstruction opcode: a straight-line run of
	// pre-resolved instructions executed back to back without per-retire
	// outer-loop overhead.
	opRunFused Op = 0x80 + iota
	// opRunExit is a tier-1 run that ends the program: the dispatch loop
	// returns straight after the run instead of bouncing through a
	// separate exit slot. Its retire count includes the folded OpExit
	// (and any jump-threaded Ja slots).
	opRunExit
	// Width-specialized stack ops with the verifier-proven absolute frame
	// index in tgt: no runtime address arithmetic or width switch.
	opLdxFP8
	opLdxFP4
	opLdxFP2
	opLdxFP1
	opStxFP8
	opStxFP4
	opStxFP2
	opStxFP1
	opStImmFP8
	opStImmFP4
	opStImmFP2
	opStImmFP1

	// Tier-1 pattern superinstructions (produced only by reoptimize; see
	// tier1.go for the matcher and vm.go for the semantics). Each covers a
	// contiguous range of original instructions [pc, pc+w) and falls back
	// to the tier-0 ops of that range if its runtime guard fails.
	opStoreRunImm       // copy templates[imm] into stack[tgt:]
	opLdxCtx2           // regs[dst] = ctx[tgt]; regs[src] = ctx[imm]
	opCtxToStack        // regs[dst] = ctx[imm]; stack[tgt:+8] = regs[dst]
	opTimeToStack       // regs[R0] = now; stack[tgt:+8] = regs[R0]
	opPidToStack        // regs[R0] = pid; stack[tgt:+8] = regs[R0]
	opCPUToStack        // regs[R0] = cpu; stack[tgt:+8] = regs[R0]
	opCallTime          // regs[R0] = now
	opCallPid           // regs[R0] = pid
	opCallCPU           // regs[R0] = cpu
	opEmitRecord        // calls[tgt].pb.Emit(stack[base:base+size]); imm = base<<32|size
	opMapLookupFast     // regs[R0] = calls[tgt].map.Lookup(key)
	opMapExistFast      // regs[R0] = key present in calls[tgt].map
	opMapDeleteFast     // calls[tgt].map.Delete(key)
	opMapUpdateFast     // calls[tgt].map.Update(key, value)
	opProbeReadFast     // probe_read(stack[tgt:tgt+imm], addr=regs[src])
	opProbeReadStrFast  // probe_read_str(stack[tgt:tgt+imm], addr=regs[src])

	// opTrace is the tier-2 cross-block superinstruction (produced only by
	// reoptimize when a block's terminating conditional jump has a single
	// profile-dominant successor): the slot's run executes, then the
	// recorded guard — the original conditional jump — is evaluated once.
	// When it resolves in the dominant direction the fused successor block
	// executes in the same dispatch step and control continues past it;
	// when it does not, control falls back to the recorded cold successor
	// with tier-0 retire accounting, exactly like a pattern-op guard
	// failure degrades to the tier-0 range. See dtrace.
	opTrace
)

// Argument-source and result-forwarding flags for the fused helper ops,
// stored in dop.size.
const (
	mapKeyImm uint8 = 1 << 0 // key is dop.imm, not regs[src]
	mapValImm uint8 = 1 << 1 // update value is dop.imm, not regs[dst]
	// resFwdAdd marks an absorbed "add result" successor: the op performs
	// regs[dst] += R0 after setting R0, instead of the plain copy a
	// forwarded dst receives (dst = R0 is the no-forward encoding — the
	// copy is then the identity store the op does anyway).
	resFwdAdd uint8 = 1 << 2
)

// decodedRegs is the decoded-dispatch register file size: a power of two,
// so register indexes masked with regIdxMask are provably in bounds and
// the compiler elides the bounds checks the hot loop would otherwise pay
// on every operand.
const (
	decodedRegs = 16
	regIdxMask  = decodedRegs - 1
)

// fpSpecial maps a generic stack op and access width to its specialized
// form.
func fpSpecial(op Op, size uint8) Op {
	var base Op
	switch op {
	case OpLdxStack:
		base = opLdxFP8
	case OpStxStack:
		base = opStxFP8
	case OpStImmStack:
		base = opStImmFP8
	default:
		return OpInvalid
	}
	switch size {
	case 8:
		return base
	case 4:
		return base + 1
	case 2:
		return base + 2
	default:
		return base + 3
	}
}

// stImmWidth reports the store width of a specialized immediate stack
// store, or 0 for any other op.
func stImmWidth(op Op) int32 {
	switch op {
	case opStImmFP8:
		return 8
	case opStImmFP4:
		return 4
	case opStImmFP2:
		return 2
	case opStImmFP1:
		return 1
	}
	return 0
}

// dop is one pre-resolved straight-line instruction, kept to 24 bytes so
// fused runs iterate cache-line-dense. tgt is overloaded per op: absolute
// frame index (specialized stack ops and pattern ops), ctx word index
// (OpLdxCtx), memory offset (generic stack ops), or call-binding index
// (OpCall and fused helper ops).
type dop struct {
	op   Op
	dst  uint8
	src  uint8
	size uint8
	tgt  int32
	imm  uint64
	pc   int32 // original pc of the first covered instruction
	w    uint8 // original instructions covered (retire weight); ops[pc:pc+w]
	_    [3]byte
}

// dcall is the decode-time binding of one helper call site.
type dcall struct {
	helper HelperID
	m      Map         // bound map for map-taking helpers
	pb     *PerfBuffer // bound perf buffer for perf_event_output
	hm     *HashMap    // devirtualized map, when m is a HashMap
}

// dinsn is one top-level dispatch slot: a fused run, a jump, or exit.
// In the tier-0 layout slots are indexed by original pc and slots in the
// middle of a fused run are unreachable and left zeroed; the tier-1
// layout is compacted (every slot reachable, profile-ordered).
type dinsn struct {
	op     Op
	dst    uint8
	src    uint8
	tgt    int32 // absolute jump target, or next slot after a fused run/trace
	retire int32 // original instructions retired by a fused run
	imm    uint64
	hits   uint64 // tier-0 profile: times this slot was entered
	run    []dop  // opRunFused/opRunExit/opTrace: the fused instructions
	// tr is the guarded cross-block extension of an opTrace slot. Branch
	// taken counts live in decodedProgram.takenCtr, not here, keeping the
	// slot at one cache line.
	tr *dtrace
}

// dtrace is the tier-2 extension of an opTrace slot: the guard condition
// copied from the original conditional jump, the optimized ops of the
// profile-dominant successor block, and the hit-path retire weight. The
// hit weight covers the guard, any jump-threaded Ja slots on the way
// into and out of the dominant block, the block itself, and — when the
// dominant path ends the program — the folded OpExit. It does not
// include the continuation slot's own retire: the dispatch loop accounts
// for that when it lands there. A guard miss retires nothing here — it
// re-enters at the branch slot, which retires normally — so the total
// stays bit-identical to the reference interpreter either way.
type dtrace struct {
	op        Op    // guard: one of the conditional jump opcodes
	dst, src  uint8 // guard operand registers
	expect    bool  // guard outcome fused into the trace (true = taken)
	exit      bool  // dominant path folds the program exit
	failTgt   int32 // the branch slot itself, re-executed on guard miss
	retireHit int32
	imm       uint64 // guard immediate operand
	runB      []dop  // optimized ops of the dominant successor block
}

// decodedProgram is one immutable dispatch form of a program. A Program
// points at its current form through an atomic pointer, so tier swaps are
// atomic with respect to in-flight fires: a run loads the pointer once
// and executes that form to completion even if a reoptimization lands
// mid-run.
type decodedProgram struct {
	// tier is 0 for the load-time lowering, 1 for the profile-guided
	// re-decode, and 2 when the re-decode additionally formed at least one
	// guarded cross-block trace (opTrace).
	tier  int
	insns []dinsn // dispatch slots (pc-indexed in tier 0, compact in tier 1+)
	calls []dcall // per-call-site helper bindings (shared across tiers)
	// ops is the tier-0 per-instruction lowering, indexed by original pc.
	// Tier 1 re-fuses from it and pattern ops fall back to their
	// ops[pc:pc+w] range when a runtime guard fails.
	ops []dop
	// templates backs opStoreRunImm: pre-rendered little-endian bytes of a
	// fused immediate-store ladder.
	templates [][]byte
	// runs counts program entries while in tier 0; when it crosses
	// hotThreshold (>0) the VM swaps in the tier-1 form. Plain fields:
	// like the rest of the fire path they are owned by one
	// single-threaded simulation.
	runs         uint64
	hotThreshold uint64
	// takenCtr is the tier-0 branch-edge profile, indexed by slot: how
	// often each conditional jump resolved taken (hits - taken is the
	// fallthrough count). A side array rather than a dinsn field so the
	// dispatch slots stay cache-line-sized; nil on tier-1/2 forms, which
	// no longer profile.
	takenCtr []uint64
	// t0 points back at the tier-0 form a promoted program was re-decoded
	// from, so the warmup profile (slot hits, taken counts, run count)
	// stays reachable for persistence after the swap.
	t0 *decodedProgram
}

// isJump reports whether op transfers control.
func isJump(op Op) bool {
	switch op {
	case OpJa, OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm,
		OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg:
		return true
	}
	return false
}

// decode builds the tier-0 dispatch form of p against the given fd table.
// The program must be verified: decoding leans on verifier guarantees
// (constant map fds at call sites, constant stack-access offsets,
// in-range jumps).
//
// Decoding happens in two passes. The first lowers each instruction into a
// compact dop — immediates widened, shift counts masked, context offsets
// divided into word indexes, stack accesses specialized by width at their
// verifier-proven frame index, map fds bound to Map references and perf
// fds pre-asserted to *PerfBuffer in the call table. The second fuses
// straight-line runs between basic-block leaders (entry, jump targets,
// jump successors) into opRunFused superinstructions, so the dispatch loop
// pays its control-flow overhead once per block instead of once per
// instruction. Constituents keep their original pc for error attribution
// and each one still counts toward the retired-instruction total.
func decode(p *Program, lookup func(fd int64) Map, hotThreshold uint64) error {
	if !p.verified {
		return fmt.Errorf("ebpf: decoding unverified program %q", p.Name)
	}
	ops := make([]dop, len(p.Insns))
	var calls []dcall
	leader := make([]bool, len(p.Insns)+1)
	leader[0] = true
	for i, in := range p.Insns {
		d := dop{
			op:   in.Op,
			dst:  uint8(in.Dst) & regIdxMask,
			src:  uint8(in.Src) & regIdxMask,
			size: in.Size,
			pc:   int32(i),
			w:    1,
			imm:  uint64(in.Imm),
		}
		switch in.Op {
		case OpJa, OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm,
			OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg:
			d.tgt = int32(i) + 1 + in.Off
			if t := int(d.tgt); t >= 0 && t < len(leader) {
				leader[t] = true
			}
			if i+1 < len(leader) {
				leader[i+1] = true
			}
		case OpLdxCtx:
			d.tgt = in.Off / 8
		case OpLshImm, OpRshImm:
			d.imm &= 63
		case OpLdxStack, OpStxStack, OpStImmStack:
			if lo := p.memLo[i]; lo >= 0 && lo+int32(in.Size) <= StackSize {
				d.op = fpSpecial(in.Op, in.Size)
				d.tgt = lo
			} else {
				d.tgt = in.Off // generic fallback keeps the raw offset
			}
		case OpCall:
			c := dcall{helper: HelperID(in.Imm)}
			if fd := p.callMapFD[i]; fd >= 0 {
				m := lookup(fd)
				if m == nil {
					return fmt.Errorf("ebpf: %q call at %d references unknown map fd %d", p.Name, i, fd)
				}
				c.m = m
				c.hm, _ = m.(*HashMap)
				if c.helper == HelperPerfOutput {
					pb, ok := m.(*PerfBuffer)
					if !ok {
						return fmt.Errorf("ebpf: %q call at %d: fd %d is not a perf buffer", p.Name, i, fd)
					}
					c.pb = pb
				}
			}
			d.tgt = int32(len(calls))
			calls = append(calls, c)
		}
		ops[i] = d
	}

	// Fuse straight-line runs. A run starts at a leader and extends over
	// consecutive non-control instructions up to (excluding) the next
	// jump, exit, or leader. Mid-run slots are unreachable (any jump into
	// them would have made them leaders) and stay zeroed — tier 1 compacts
	// them away. Single instructions are wrapped too, so every reachable
	// slot is a run, a jump, or exit, and the dispatch loop steers control
	// flow only.
	out := make([]dinsn, len(ops))
	for start := 0; start < len(ops); start++ {
		o := ops[start]
		if isJump(o.op) || o.op == OpExit {
			out[start] = dinsn{op: o.op, dst: o.dst, src: o.src, tgt: o.tgt, imm: o.imm}
			continue
		}
		if !leader[start] {
			continue // mid-run slot; unreachable
		}
		end := start
		for end < len(ops) && ops[end].op != OpExit && !isJump(ops[end].op) &&
			(end == start || !leader[end]) {
			end++
		}
		out[start] = dinsn{op: opRunFused, tgt: int32(end), retire: int32(end - start),
			run: ops[start:end:end]}
	}
	p.dp.Store(&decodedProgram{
		tier:         0,
		insns:        out,
		calls:        calls,
		ops:          ops,
		hotThreshold: hotThreshold,
		takenCtr:     make([]uint64, len(out)),
	})
	return nil
}
