package ebpf

import "fmt"

// The decoder lowers a verified program into a pre-resolved dispatch form,
// the moral equivalent of the kernel's JIT step: work that the raw
// interpreter repeats on every instruction retire — widening immediates,
// turning relative jump displacements into absolute targets, dividing
// context offsets into word indexes, resolving stack accesses to the
// frame indexes the verifier proved, hashing map fds, and type-asserting
// perf buffers — happens once at load time instead. The VM dispatches over
// this form on every probe fire; the raw Instruction slice is kept for
// diagnostics and as the reference interpreter.

// Internal opcodes produced only by the decoder, numbered above the raw
// opcode space.
const (
	// opRunFused is the superinstruction opcode: a straight-line run of
	// pre-resolved instructions executed back to back without per-retire
	// outer-loop overhead.
	opRunFused Op = 0x80 + iota
	// Width-specialized stack ops with the verifier-proven absolute frame
	// index in tgt: no runtime address arithmetic or width switch.
	opLdxFP8
	opLdxFP4
	opLdxFP2
	opLdxFP1
	opStxFP8
	opStxFP4
	opStxFP2
	opStxFP1
	opStImmFP8
	opStImmFP4
	opStImmFP2
	opStImmFP1
)

// decodedRegs is the decoded-dispatch register file size: a power of two,
// so register indexes masked with regIdxMask are provably in bounds and
// the compiler elides the bounds checks the hot loop would otherwise pay
// on every operand.
const (
	decodedRegs = 16
	regIdxMask  = decodedRegs - 1
)

// fpSpecial maps a generic stack op and access width to its specialized
// form.
func fpSpecial(op Op, size uint8) Op {
	var base Op
	switch op {
	case OpLdxStack:
		base = opLdxFP8
	case OpStxStack:
		base = opStxFP8
	case OpStImmStack:
		base = opStImmFP8
	default:
		return OpInvalid
	}
	switch size {
	case 8:
		return base
	case 4:
		return base + 1
	case 2:
		return base + 2
	default:
		return base + 3
	}
}

// dop is one pre-resolved straight-line instruction, kept to 24 bytes so
// fused runs iterate cache-line-dense. tgt is overloaded per op: absolute
// frame index (specialized stack ops), ctx word index (OpLdxCtx), memory
// offset (generic stack ops), or call-binding index (OpCall).
type dop struct {
	op   Op
	dst  uint8
	src  uint8
	size uint8
	tgt  int32
	imm  uint64
	pc   int32 // original instruction index, for error attribution
	_    int32 // padding; keeps the struct at 24 bytes explicitly
}

// dcall is the decode-time binding of one helper call site.
type dcall struct {
	helper HelperID
	m      Map         // bound map for map-taking helpers
	pb     *PerfBuffer // bound perf buffer for perf_event_output
}

// dinsn is one top-level dispatch slot: a fused run, a jump, or exit.
// Slots in the middle of a fused run are unreachable and left zeroed.
type dinsn struct {
	op  Op
	dst uint8
	src uint8
	tgt int32 // absolute jump target, or next pc after a fused run
	imm uint64
	run []dop // opRunFused: the fused constituent instructions
}

// isJump reports whether op transfers control.
func isJump(op Op) bool {
	switch op {
	case OpJa, OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm,
		OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg:
		return true
	}
	return false
}

// decode builds p.decoded against the given fd table. The program must be
// verified: decoding leans on verifier guarantees (constant map fds at
// call sites, constant stack-access offsets, in-range jumps).
//
// Decoding happens in two passes. The first lowers each instruction into a
// compact dop — immediates widened, shift counts masked, context offsets
// divided into word indexes, stack accesses specialized by width at their
// verifier-proven frame index, map fds bound to Map references and perf
// fds pre-asserted to *PerfBuffer in the call table. The second fuses
// straight-line runs between basic-block leaders (entry, jump targets,
// jump successors) into opRunFused superinstructions, so the dispatch loop
// pays its control-flow overhead once per block instead of once per
// instruction. Constituents keep their original pc for error attribution
// and each one still counts toward the retired-instruction total.
func decode(p *Program, lookup func(fd int64) Map) error {
	if !p.verified {
		return fmt.Errorf("ebpf: decoding unverified program %q", p.Name)
	}
	ops := make([]dop, len(p.Insns))
	var calls []dcall
	leader := make([]bool, len(p.Insns)+1)
	leader[0] = true
	for i, in := range p.Insns {
		d := dop{
			op:   in.Op,
			dst:  uint8(in.Dst) & regIdxMask,
			src:  uint8(in.Src) & regIdxMask,
			size: in.Size,
			pc:   int32(i),
			imm:  uint64(in.Imm),
		}
		switch in.Op {
		case OpJa, OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm,
			OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg:
			d.tgt = int32(i) + 1 + in.Off
			if t := int(d.tgt); t >= 0 && t < len(leader) {
				leader[t] = true
			}
			if i+1 < len(leader) {
				leader[i+1] = true
			}
		case OpLdxCtx:
			d.tgt = in.Off / 8
		case OpLshImm, OpRshImm:
			d.imm &= 63
		case OpLdxStack, OpStxStack, OpStImmStack:
			if lo := p.memLo[i]; lo >= 0 && lo+int32(in.Size) <= StackSize {
				d.op = fpSpecial(in.Op, in.Size)
				d.tgt = lo
			} else {
				d.tgt = in.Off // generic fallback keeps the raw offset
			}
		case OpCall:
			c := dcall{helper: HelperID(in.Imm)}
			if fd := p.callMapFD[i]; fd >= 0 {
				m := lookup(fd)
				if m == nil {
					return fmt.Errorf("ebpf: %q call at %d references unknown map fd %d", p.Name, i, fd)
				}
				c.m = m
				if c.helper == HelperPerfOutput {
					pb, ok := m.(*PerfBuffer)
					if !ok {
						return fmt.Errorf("ebpf: %q call at %d: fd %d is not a perf buffer", p.Name, i, fd)
					}
					c.pb = pb
				}
			}
			d.tgt = int32(len(calls))
			calls = append(calls, c)
		}
		ops[i] = d
	}

	// Fuse straight-line runs. A run starts at a leader and extends over
	// consecutive non-control instructions up to (excluding) the next
	// jump, exit, or leader. Mid-run slots are unreachable (any jump into
	// them would have made them leaders) and stay zeroed. Single
	// instructions are wrapped too, so every reachable slot is a run, a
	// jump, or exit, and the dispatch loop steers control flow only.
	out := make([]dinsn, len(ops))
	for start := 0; start < len(ops); start++ {
		if !leader[start] {
			continue
		}
		end := start
		for end < len(ops) && ops[end].op != OpExit && !isJump(ops[end].op) &&
			(end == start || !leader[end]) {
			end++
		}
		if end > start {
			out[start] = dinsn{op: opRunFused, tgt: int32(end), run: ops[start:end:end]}
		} else {
			o := ops[start]
			out[start] = dinsn{op: o.op, dst: o.dst, src: o.src, tgt: o.tgt, imm: o.imm}
		}
		// Jump and exit slots that terminate this block are leaders of
		// nothing; fill them directly when reached as block starts.
	}
	for i, o := range ops {
		if isJump(o.op) || o.op == OpExit {
			out[i] = dinsn{op: o.op, dst: o.dst, src: o.src, tgt: o.tgt, imm: o.imm}
		}
	}
	p.decoded = out
	p.dcalls = calls
	return nil
}
