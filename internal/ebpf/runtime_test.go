package ebpf

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/umem"
)

func newTestRuntime() (*Runtime, map[uint32]*umem.Space) {
	spaces := make(map[uint32]*umem.Space)
	clockNow := int64(0)
	rt := NewRuntime(func() int64 { return clockNow }, func(pid uint32) *umem.Space {
		return spaces[pid]
	})
	return rt, spaces
}

// counterProg emits an 8-byte record with ctx[0] into the perf buffer.
func counterProg(t *testing.T, rt *Runtime, pbFD int64) *Program {
	t.Helper()
	p := NewAssembler("counter").
		LdxCtx(R2, R1, 0).
		StxStack(R10, -8, R2, 8).
		MovImm(R1, pbFD).
		MovReg(R2, R10).
		AddImm(R2, -8).
		MovImm(R3, 8).
		Call(HelperPerfOutput).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	if err := rt.Load(p, 2); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUprobeDispatch(t *testing.T) {
	rt, _ := newTestRuntime()
	pb := NewPerfBuffer("out", 0)
	fd := rt.RegisterMap(pb)
	p := counterProg(t, rt, fd)
	sym := Symbol{Lib: "rclcpp", Func: "execute_timer"}
	if _, err := rt.AttachUprobe(sym, p); err != nil {
		t.Fatal(err)
	}

	rt.FireUprobe(100, 0, sym, 0xAA)
	rt.FireUprobe(100, 0, Symbol{Lib: "rclcpp", Func: "other"}, 0xBB) // not attached

	recs := pb.Drain()
	if len(recs) != 1 {
		t.Fatalf("fired %d records, want 1", len(recs))
	}
	if got := loadSized(recs[0].Data, 8); got != 0xAA {
		t.Fatalf("payload = %#x", got)
	}
}

func TestUretprobeSeesReturnValue(t *testing.T) {
	rt, _ := newTestRuntime()
	pb := NewPerfBuffer("out", 0)
	fd := rt.RegisterMap(pb)
	p := counterProg(t, rt, fd) // emits ctx[0], which is the return value
	sym := Symbol{Lib: "rclcpp", Func: "take_type_erased_response"}
	if _, err := rt.AttachUretprobe(sym, p); err != nil {
		t.Fatal(err)
	}
	rt.FireUretprobe(7, 1, sym, 1 /* ret */, 0x99 /* arg */)
	recs := pb.Drain()
	if len(recs) != 1 || loadSized(recs[0].Data, 8) != 1 {
		t.Fatalf("uretprobe records = %v", recs)
	}
}

func TestTracepointDispatchAndDetach(t *testing.T) {
	rt, _ := newTestRuntime()
	pb := NewPerfBuffer("out", 0)
	fd := rt.RegisterMap(pb)
	p := counterProg(t, rt, fd)
	id, err := rt.AttachTracepoint("sched:sched_switch", p)
	if err != nil {
		t.Fatal(err)
	}
	rt.FireTracepoint("sched:sched_switch", 0, 11, 22)
	if got := len(pb.Drain()); got != 1 {
		t.Fatalf("records = %d", got)
	}
	if !rt.Detach(id) {
		t.Fatal("detach failed")
	}
	rt.FireTracepoint("sched:sched_switch", 0, 11, 22)
	if got := len(pb.Drain()); got != 0 {
		t.Fatalf("records after detach = %d", got)
	}
}

func TestAttachRequiresVerified(t *testing.T) {
	rt, _ := newTestRuntime()
	p := NewAssembler("raw").MovImm(R0, 0).Exit().MustAssemble()
	if _, err := rt.AttachUprobe(Symbol{"l", "f"}, p); err == nil {
		t.Fatal("attach of unverified program succeeded")
	}
}

func TestRuntimeStatsAccumulate(t *testing.T) {
	rt, _ := newTestRuntime()
	pb := NewPerfBuffer("out", 0)
	fd := rt.RegisterMap(pb)
	p := counterProg(t, rt, fd)
	sym := Symbol{Lib: "x", Func: "y"}
	if _, err := rt.AttachUprobe(sym, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rt.FireUprobe(1, 0, sym, uint64(i))
	}
	st := rt.Stats()
	if st.Runs != 5 {
		t.Fatalf("runs = %d", st.Runs)
	}
	if st.Insns == 0 || rt.CostNs() == 0 {
		t.Fatal("no instruction accounting")
	}
	rt.ResetCost()
	if rt.Stats().Runs != 0 || rt.CostNs() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSrcTSEntryExitTechnique(t *testing.T) {
	// Reproduces the paper's source-timestamp technique end to end: the
	// entry probe stores the address of the srcTS out-parameter in a hash
	// map keyed by PID; the middleware then writes the value; the exit
	// probe looks the address up, probe_reads it, and emits it.
	rt, spaces := newTestRuntime()
	pidToAddr := NewHashMap("srcts_addr", 64)
	addrFD := rt.RegisterMap(pidToAddr)
	pb := NewPerfBuffer("events", 0)
	pbFD := rt.RegisterMap(pb)

	entry := NewAssembler("take_entry").
		LdxCtx(R6, R1, 2). // arg2 = &srcTS
		Call(HelperGetCurrentPid).
		MovReg(R2, R0). // key = pid
		MovImm(R1, addrFD).
		MovReg(R3, R6).
		Call(HelperMapUpdate).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	if err := rt.Load(entry, 3); err != nil {
		t.Fatal(err)
	}

	exit := NewAssembler("take_exit").
		Call(HelperGetCurrentPid).
		MovReg(R2, R0).
		MovImm(R1, addrFD).
		Call(HelperMapLookup).
		JneImm(R0, 0, "have").
		MovImm(R0, 0).
		Exit().
		Label("have").
		MovReg(R7, R0). // addr
		MovReg(R1, R10).
		AddImm(R1, -8).
		MovImm(R2, 8).
		MovReg(R3, R7).
		Call(HelperProbeRead).
		MovImm(R1, pbFD).
		MovReg(R2, R10).
		AddImm(R2, -8).
		MovImm(R3, 8).
		Call(HelperPerfOutput).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	if err := rt.Load(exit, 1); err != nil {
		t.Fatal(err)
	}

	sym := Symbol{Lib: "rmw_cyclonedds_cpp", Func: "rmw_take_int"}
	if _, err := rt.AttachUprobe(sym, entry); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AttachUretprobe(sym, exit); err != nil {
		t.Fatal(err)
	}

	const pid = 321
	space := umem.NewSpace(pid)
	spaces[pid] = space
	srcTSAddr := space.AllocU64(0) // out-param, not yet filled

	// Middleware calls rmw_take_int(sub, msg, &srcTS):
	rt.FireUprobe(pid, 0, sym, 0, 0, uint64(srcTSAddr))
	// ... DDS determines the source timestamp during the call:
	space.WriteU64(srcTSAddr, 123456789)
	// ... and the function returns:
	rt.FireUretprobe(pid, 0, sym, 1)

	recs := pb.Drain()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if got := loadSized(recs[0].Data, 8); got != 123456789 {
		t.Fatalf("srcTS = %d, want 123456789", got)
	}
}
