package ebpf

import (
	"encoding/binary"
	"sort"
	"sync/atomic"
)

// Tier-1 re-decode: profile-guided superinstruction selection.
//
// Tier 0 (decode.go) lowers a program once at load time and counts, per
// fused-run slot, how often the block executes. When the program crosses
// its hotness threshold — or on an explicit Runtime.Reoptimize — the
// program is re-decoded from the tier-0 per-instruction ops using those
// counts:
//
//  1. constant folding: register moves from constant-valued registers
//     (R10 is always the frame top) rewrite to immediate loads, and
//     mov/add/sub immediate chains on one register collapse into a
//     single load — which is what turns the "r2 = r10; r2 += off"
//     helper-address arithmetic into decodable constants;
//  2. helper-call fusion: the mov ladders that set up helper arguments
//     are absorbed into one dedicated pattern op per call — direct map
//     lookups/updates on the devirtualized *HashMap, perf_event_output
//     with a pre-computed frame range (opEmitRecord), probe_read with a
//     pre-computed destination, and inline no-argument helpers. Argument
//     registers R1–R5 are dead after a call (the verifier marks them
//     uninitialized), so eliding their writes is unobservable;
//  3. pair/ladder peepholes: ctx-load + stack-store pairs, helper-call +
//     stack-store pairs, and immediate-store ladders (the record headers
//     every tracer program builds, opStoreRunImm) each become one op
//     with pre-rendered bytes where possible;
//  4. block compaction: reachable slots are re-emitted densely, hottest
//     chains first (a conditional jump stays adjacent to its fallthrough
//     successor), and the unreachable zero slots of the tier-0 layout
//     disappear.
//
// Every pattern op records the original instruction range it covers
// (dop.pc, dop.w); its runtime guard failing falls back to executing the
// tier-0 ops of exactly that range, and the retired-instruction count is
// preserved either way, so the overhead accounting stays bit-identical
// to the reference interpreter.

// defaultHotThreshold seeds Runtime.hotThreshold for new runtimes: the
// tier-0 run count at which a program is promoted to tier 1.
var defaultHotThreshold atomic.Uint64

func init() { defaultHotThreshold.Store(512) }

// DefaultHotThreshold returns the tier-0 run count at which programs
// loaded by new runtimes are automatically re-decoded into tier 1.
func DefaultHotThreshold() uint64 { return defaultHotThreshold.Load() }

// SetDefaultHotThreshold sets the automatic tier-1 promotion threshold
// for runtimes created afterwards and returns the previous value. 0
// disables automatic promotion. Equivalence tests use it to force a
// whole session onto one tier.
func SetDefaultHotThreshold(n uint64) uint64 { return defaultHotThreshold.Swap(n) }

// maxPatternWeight bounds how many original instructions one fused
// pattern op may cover: the weight travels in a uint8.
const maxPatternWeight = 255

// Tier-2 trace formation thresholds: a conditional jump qualifies as a
// trace guard only once its edge profile is both warm (traceMinHits
// executions observed) and decisive (the dominant direction holds at
// least traceBiasNum/traceBiasDen of them). Below either bar the branch
// stays a plain tier-1 jump.
const (
	traceMinHits = 64
	traceBiasNum = 7
	traceBiasDen = 8
)

// traceDirection reports the profile-dominant outcome of a conditional
// jump slot — hits entries, taken of which resolved to the jump target —
// and whether the profile is decisive enough to guard a trace.
func traceDirection(hits, taken uint64) (expectTaken, ok bool) {
	if hits < traceMinHits {
		return false, false
	}
	if taken*traceBiasDen >= hits*traceBiasNum {
		return true, true
	}
	if (hits-taken)*traceBiasDen >= hits*traceBiasNum {
		return false, true
	}
	return false, false
}

// reoptimize builds the tier-1 (and, with traces enabled and a decisive
// branch profile, tier-2) form of a tier-0 decoded program. It is total:
// blocks where no pattern applies re-fuse exactly as tier 0 laid them
// out, so the result is always a valid dispatch form. withTraces gates
// cross-block trace formation so equivalence tests can pin the pure
// tier-1 form.
func reoptimize(dp *decodedProgram, withTraces bool) *decodedProgram {
	ndp := &decodedProgram{tier: 1, calls: dp.calls, ops: dp.ops, t0: dp}
	old := dp.insns

	// thread follows a chain of unconditional jumps from a run's target.
	// A run reaching a Ja always retires it, so folding the jump into the
	// run's target keeps the retired-instruction count exact by adding
	// one retire per skipped slot.
	thread := func(tgt int32) (int32, int32) {
		extra := int32(0)
		for int(tgt) >= 0 && int(tgt) < len(old) && old[tgt].op == OpJa && extra < int32(len(old)) {
			tgt = old[tgt].tgt
			extra++
		}
		return tgt, extra
	}

	// Reachable slots, discovered over explicit control edges (threaded
	// run targets, jump targets, conditional fallthroughs). Mid-run zero
	// slots, dead blocks, and jump-threaded Ja slots are never visited
	// and vanish from the compacted layout.
	reach := make([]bool, len(old))
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if i < 0 || i >= len(old) || reach[i] {
			continue
		}
		reach[i] = true
		in := &old[i]
		switch {
		case in.op == opRunFused:
			// A run whose threaded successor is the program exit folds it
			// (opRunExit) and stops needing the slot at all.
			if tgt, _ := thread(in.tgt); int(tgt) < 0 || int(tgt) >= len(old) ||
				old[tgt].op != OpExit {
				work = append(work, int(tgt))
			}
		case in.op == OpJa:
			work = append(work, int(in.tgt))
		case isJump(in.op): // conditional: target and fallthrough
			work = append(work, int(in.tgt), i+1)
		}
	}

	// Group slots into fallthrough chains: a conditional jump must stay
	// immediately ahead of its fallthrough successor, so the unit of
	// reordering is the chain, not the slot.
	var chains [][]int
	chainEnd := make(map[int]int) // last slot of a chain -> chain index
	for i := 0; i < len(old); i++ {
		if !reach[i] {
			continue
		}
		if ci, ok := chainEnd[i-1]; ok && isJump(old[i-1].op) && old[i-1].op != OpJa {
			chains[ci] = append(chains[ci], i)
			delete(chainEnd, i-1)
			chainEnd[i] = ci
			continue
		}
		chains = append(chains, []int{i})
		chainEnd[i] = len(chains) - 1
	}

	// Order chains by profile: the entry chain stays first (dispatch
	// starts at slot 0), the rest sort hottest-run first so the hot
	// blocks of a program sit contiguous at the front of the slot array.
	hotness := func(c []int) uint64 {
		var h uint64
		for _, s := range c {
			if old[s].op == opRunFused && old[s].hits > h {
				h = old[s].hits
			}
		}
		return h
	}
	if len(chains) > 1 {
		rest := chains[1:]
		sort.SliceStable(rest, func(a, b int) bool {
			return hotness(rest[a]) > hotness(rest[b])
		})
	}

	// Assign compacted indexes and emit, remapping every control edge.
	newIdx := make([]int32, len(old))
	for i := range newIdx {
		newIdx[i] = -1
	}
	var order []int
	for _, c := range chains {
		order = append(order, c...)
	}
	for n, oldI := range order {
		newIdx[oldI] = int32(n)
	}
	ndp.insns = make([]dinsn, 0, len(order))
	for _, oldI := range order {
		in := old[oldI]
		switch {
		case in.op == opRunFused:
			run := optimizeRun(in.run, dp.calls, ndp)
			tgt, extra := thread(in.tgt)
			if int(tgt) >= 0 && int(tgt) < len(old) && old[tgt].op == OpExit {
				ndp.insns = append(ndp.insns, dinsn{
					op: opRunExit, retire: in.retire + extra + 1, run: run,
				})
				continue
			}
			// Tier 2: a run whose successor is a decisively-biased
			// conditional jump fuses across it into a guarded trace.
			if withTraces {
				if tr, cont, ok := formTrace(dp, thread, newIdx, tgt, ndp); ok {
					ndp.insns = append(ndp.insns, dinsn{
						op: opTrace, tgt: cont, retire: in.retire + extra, run: run, tr: tr,
					})
					ndp.tier = 2
					continue
				}
			}
			ndp.insns = append(ndp.insns, dinsn{
				op: opRunFused, tgt: remap(newIdx, tgt), retire: in.retire + extra, run: run,
			})
		case isJump(in.op):
			in.tgt = remap(newIdx, in.tgt)
			in.hits = 0
			ndp.insns = append(ndp.insns, in)
		default: // OpExit, or a corrupt slot that will error identically
			in.hits = 0
			ndp.insns = append(ndp.insns, in)
		}
	}
	return ndp
}

// formTrace attempts tier-2 cross-block fusion at jSlot, the threaded
// successor of a run being emitted. It succeeds when jSlot is a
// conditional jump with a decisive edge profile whose dominant successor
// (after jump threading) is a plain fused run: the guard condition, the
// optimized dominant block, and both outcomes' retire weights are
// packaged into a dtrace. The returned cont is the compacted slot the
// trace continues at after the dominant block (0 and unused when the
// dominant path folds the program exit). The jump and dominant-block
// slots stay in the layout for their other predecessors and for the
// cold path.
func formTrace(dp *decodedProgram, thread func(int32) (int32, int32),
	newIdx []int32, jSlot int32, ndp *decodedProgram) (*dtrace, int32, bool) {
	old, calls := dp.insns, dp.calls
	if int(jSlot) < 0 || int(jSlot) >= len(old) {
		return nil, 0, false
	}
	j := &old[jSlot]
	if !isJump(j.op) || j.op == OpJa {
		return nil, 0, false
	}
	var taken uint64
	if int(jSlot) < len(dp.takenCtr) {
		taken = dp.takenCtr[jSlot]
	}
	expect, decisive := traceDirection(j.hits, taken)
	if !decisive {
		return nil, 0, false
	}
	b0 := jSlot + 1 // dominant successor
	if expect {
		b0 = j.tgt
	}
	bSlot, extraToB := thread(b0)
	if int(bSlot) < 0 || int(bSlot) >= len(old) || old[bSlot].op != opRunFused {
		return nil, 0, false
	}
	bb := &old[bSlot]
	afterB, extraAfterB := thread(bb.tgt)
	exit := int(afterB) >= 0 && int(afterB) < len(old) && old[afterB].op == OpExit
	tr := &dtrace{
		op: j.op, dst: j.dst, src: j.src, imm: j.imm,
		expect: expect,
		exit:   exit,
		// Guard failure re-enters at the branch slot itself, which stays
		// in the layout for the cold path; it retires normally there, so
		// the fallback needs no retire adjustment and stays exact even
		// under a corrupted guard.
		failTgt:   remap(newIdx, jSlot),
		retireHit: 1 + extraToB + bb.retire + extraAfterB,
		runB:      optimizeRun(bb.run, calls, ndp),
	}
	var cont int32
	if exit {
		tr.retireHit++ // the folded OpExit retires too
	} else {
		cont = remap(newIdx, afterB)
	}
	return tr, cont, true
}

// remap translates a tier-0 slot index into the compacted layout. An
// edge into an unmapped slot (impossible for verified programs) keeps an
// out-of-range target so the dispatch loop reports it rather than
// executing the wrong block.
func remap(newIdx []int32, tgt int32) int32 {
	if int(tgt) >= 0 && int(tgt) < len(newIdx) && newIdx[tgt] >= 0 {
		return newIdx[tgt]
	}
	return int32(len(newIdx)) + 1
}

// optimizeRun rewrites one fused straight-line run through the tier-1
// passes: constant folding, helper-call fusion, and pair/ladder
// peepholes. The result covers exactly the same original instruction
// range, with each op's (pc, w) naming the tier-0 ops it replaces.
func optimizeRun(run []dop, calls []dcall, ndp *decodedProgram) []dop {
	folded := foldConstants(run)
	fused := fuseCalls(folded, calls)
	return fusePairs(fused, ndp)
}

// regIsArg reports whether r is one of the caller-clobbered helper
// argument registers R1–R5, whose values are unobservable after a call.
func regIsArg(r uint8) bool { return r >= 1 && r <= 5 }

// foldConstants propagates compile-time register constants through a
// straight-line run: moves from constant registers become immediate
// loads (R10 is always StackSize, so stack-address arithmetic folds),
// and mov/add/sub-immediate chains on one register collapse into a
// single immediate load carrying the combined retire weight.
func foldConstants(run []dop) []dop {
	out := make([]dop, 0, len(run))
	var known [decodedRegs]bool
	var val [decodedRegs]uint64
	known[R10] = true
	val[R10] = StackSize

	invalidate := func(r uint8) { known[r&regIdxMask] = false }
	for _, d := range run {
		if d.op == OpMovReg && known[d.src&regIdxMask] {
			d.op = OpMovImm
			d.imm = val[d.src&regIdxMask]
		}
		switch d.op {
		case OpMovImm:
			// A mov over the immediately preceding immediate load of the
			// same register makes the earlier value unobservable.
			if n := len(out); n > 0 && out[n-1].op == OpMovImm && out[n-1].dst == d.dst &&
				int(out[n-1].w)+int(d.w) <= maxPatternWeight {
				out[n-1].imm = d.imm
				out[n-1].w += d.w
			} else {
				out = append(out, d)
			}
			known[d.dst&regIdxMask] = true
			val[d.dst&regIdxMask] = d.imm
			continue
		case OpAddImm, OpSubImm:
			delta := d.imm
			if d.op == OpSubImm {
				delta = -d.imm
			}
			if n := len(out); n > 0 && out[n-1].op == OpMovImm && out[n-1].dst == d.dst &&
				int(out[n-1].w)+int(d.w) <= maxPatternWeight {
				out[n-1].imm += delta
				out[n-1].w += d.w
				known[d.dst&regIdxMask] = true
				val[d.dst&regIdxMask] = out[n-1].imm
				continue
			}
			if known[d.dst&regIdxMask] {
				val[d.dst&regIdxMask] += delta
			}
			out = append(out, d)
			continue
		}
		// Any other register write loses constant tracking.
		switch d.op {
		case OpMovReg, OpAddReg, OpSubReg, OpMulImm, OpMulReg, OpDivImm, OpDivReg,
			OpModImm, OpModReg, OpAndImm, OpAndReg, OpOrImm, OpOrReg,
			OpXorImm, OpXorReg, OpLshImm, OpRshImm, OpNeg,
			OpLdxCtx, opLdxFP8, opLdxFP4, opLdxFP2, opLdxFP1, OpLdxStack:
			invalidate(d.dst)
		case OpCall:
			for r := R0; r <= R5; r++ {
				invalidate(uint8(r))
			}
		}
		out = append(out, d)
	}
	return out
}

// argDef describes where a helper argument register gets its value in
// the mov window immediately preceding a call.
type argDef struct {
	imm    bool
	immVal uint64
	reg    uint8
}

// fuseCalls absorbs the mov ladders that set up helper arguments into
// one pattern op per call site. Only moves into R1–R5 directly preceding
// the call are absorbed — their targets are dead after the call, so
// skipping the register writes is unobservable — and an argument with no
// absorbed definition is simply read from its register at execution
// time.
func fuseCalls(run []dop, calls []dcall) []dop {
	out := make([]dop, 0, len(run))
	for _, d := range run {
		if d.op != OpCall {
			out = append(out, d)
			continue
		}
		c := &calls[d.tgt]

		// No-argument helpers inline without any mov absorption. dst and
		// size are cleared for the result-forwarding encoding.
		switch c.helper {
		case HelperKtimeGetNs, HelperGetCurrentPid, HelperGetSmpProcID:
			switch c.helper {
			case HelperKtimeGetNs:
				d.op = opCallTime
			case HelperGetCurrentPid:
				d.op = opCallPid
			default:
				d.op = opCallCPU
			}
			d.dst, d.src, d.size = 0, 0, 0
			out = append(out, d)
			continue
		}

		// Walk the absorbable mov window backwards from the call.
		defs := map[uint8]argDef{}
		k := len(out)
		weight := int(d.w)
		for k > 0 {
			m := out[k-1]
			if !(m.op == OpMovImm || m.op == OpMovReg) || !regIsArg(m.dst) {
				break
			}
			if m.op == OpMovReg && regIsArg(m.src) {
				break // source may itself be an elided definition
			}
			if weight+int(m.w) > maxPatternWeight {
				break
			}
			if _, dup := defs[m.dst]; !dup { // keep the latest definition
				if m.op == OpMovImm {
					defs[m.dst] = argDef{imm: true, immVal: m.imm}
				} else {
					defs[m.dst] = argDef{reg: m.src}
				}
			}
			weight += int(m.w)
			k--
		}

		argSrc := func(r uint8) argDef {
			if def, ok := defs[r]; ok {
				return def
			}
			return argDef{reg: r}
		}
		constArg := func(r uint8) (uint64, bool) {
			def, ok := defs[r]
			if !ok || !def.imm {
				return 0, false
			}
			return def.immVal, true
		}

		f := dop{tgt: d.tgt, pc: d.pc, w: d.w}
		if k < len(out) {
			f.pc = out[k].pc
			f.w = uint8(weight)
		}
		fused := false
		switch c.helper {
		case HelperMapLookup, HelperMapLookupExist, HelperMapDelete:
			if c.m != nil {
				switch c.helper {
				case HelperMapLookup:
					f.op = opMapLookupFast
				case HelperMapLookupExist:
					f.op = opMapExistFast
				default:
					f.op = opMapDeleteFast
				}
				key := argSrc(uint8(R2))
				if key.imm {
					f.size, f.imm = mapKeyImm, key.immVal
				} else {
					f.src = key.reg
				}
				fused = true
			}
		case HelperMapUpdate:
			key, val := argSrc(uint8(R2)), argSrc(uint8(R3))
			if c.m != nil && !(key.imm && val.imm) { // only one immediate slot
				f.op = opMapUpdateFast
				if key.imm {
					f.size, f.imm = mapKeyImm, key.immVal
					f.dst = val.reg
				} else if val.imm {
					f.size, f.imm = mapValImm, val.immVal
					f.src = key.reg
				} else {
					f.src, f.dst = key.reg, val.reg
				}
				fused = true
			}
		case HelperPerfOutput:
			base, okB := constArg(uint8(R2))
			size, okS := constArg(uint8(R3))
			if c.pb != nil && okB && okS &&
				base < StackSize && size > 0 && size <= StackSize && base+size <= StackSize {
				f.op = opEmitRecord
				f.imm = base<<32 | size
				fused = true
			}
		case HelperProbeRead, HelperProbeReadStr:
			base, okB := constArg(uint8(R1))
			size, okS := constArg(uint8(R2))
			addr := argSrc(uint8(R3))
			if okB && okS && !addr.imm &&
				base < StackSize && size > 0 && size <= StackSize && base+size <= StackSize {
				if c.helper == HelperProbeRead {
					f.op = opProbeReadFast
				} else {
					f.op = opProbeReadStrFast
				}
				f.tgt = int32(base)
				f.imm = size
				f.src = addr.reg
				fused = true
			}
		}
		if !fused {
			out = append(out, d)
			continue
		}
		out = out[:k] // drop the absorbed movs
		out = append(out, f)
	}
	return out
}

// fusePairs combines adjacent op pairs and immediate-store ladders:
// ctx-load + frame-store, inline-helper + frame-store of R0, and runs of
// immediate frame stores over contiguous bytes, which pre-render into a
// byte template copied in one shot (opStoreRunImm).
func fusePairs(run []dop, ndp *decodedProgram) []dop {
	out := make([]dop, 0, len(run))
	for i := 0; i < len(run); i++ {
		d := run[i]

		// Immediate-store ladder: >=2 contiguous stores of constants.
		if wd := stImmWidth(d.op); wd > 0 {
			end := i + 1
			hi := d.tgt + wd
			weight := int(d.w)
			for end < len(run) {
				nw := stImmWidth(run[end].op)
				if nw == 0 || run[end].tgt != hi || weight+int(run[end].w) > maxPatternWeight {
					break
				}
				hi += nw
				weight += int(run[end].w)
				end++
			}
			if end-i >= 2 && d.tgt >= 0 && int(hi) <= StackSize {
				t := make([]byte, hi-d.tgt)
				for _, s := range run[i:end] {
					off := s.tgt - d.tgt
					switch stImmWidth(s.op) {
					case 8:
						binary.LittleEndian.PutUint64(t[off:], s.imm)
					case 4:
						binary.LittleEndian.PutUint32(t[off:], uint32(s.imm))
					case 2:
						binary.LittleEndian.PutUint16(t[off:], uint16(s.imm))
					case 1:
						t[off] = byte(s.imm)
					}
				}
				out = append(out, dop{
					op: opStoreRunImm, tgt: d.tgt, imm: uint64(len(ndp.templates)),
					pc: d.pc, w: uint8(weight),
				})
				ndp.templates = append(ndp.templates, t)
				i = end - 1
				continue
			}
		}

		if i+1 < len(run) {
			n := run[i+1]
			combined := uint8(0)
			if int(d.w)+int(n.w) <= maxPatternWeight {
				combined = d.w + n.w
			}
			if combined > 0 && n.op == opStxFP8 {
				switch {
				case d.op == OpLdxCtx && n.src == d.dst:
					out = append(out, dop{op: opCtxToStack, dst: d.dst, tgt: n.tgt,
						imm: uint64(uint32(d.tgt)), pc: d.pc, w: combined})
					i++
					continue
				case d.op == opCallTime && n.src == uint8(R0):
					out = append(out, dop{op: opTimeToStack, tgt: n.tgt, pc: d.pc, w: combined})
					i++
					continue
				case d.op == opCallPid && n.src == uint8(R0):
					out = append(out, dop{op: opPidToStack, tgt: n.tgt, pc: d.pc, w: combined})
					i++
					continue
				case d.op == opCallCPU && n.src == uint8(R0):
					out = append(out, dop{op: opCPUToStack, tgt: n.tgt, pc: d.pc, w: combined})
					i++
					continue
				}
			}
			// Adjacent context loads collapse into one double load.
			if combined > 0 && d.op == OpLdxCtx && n.op == OpLdxCtx &&
				d.tgt >= 0 && n.tgt >= 0 {
				out = append(out, dop{op: opLdxCtx2, dst: d.dst, src: n.dst,
					tgt: d.tgt, imm: uint64(uint32(n.tgt)), pc: d.pc, w: combined})
				i++
				continue
			}
			// Result forwarding: a helper op followed by "rd = R0" or
			// "rd += R0" absorbs the copy into its result store.
			if combined > 0 && resultForwardable(d.op) &&
				(n.op == OpMovReg || n.op == OpAddReg) && n.src == uint8(R0) {
				d.dst = n.dst
				if n.op == OpAddReg {
					d.size |= resFwdAdd
				}
				d.w = combined
				out = append(out, d)
				i++
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// resultForwardable reports whether a pattern op leaves dst free to
// absorb a following copy/accumulate of its R0 result.
func resultForwardable(op Op) bool {
	switch op {
	case opMapLookupFast, opMapExistFast, opMapDeleteFast,
		opCallTime, opCallPid, opCallCPU,
		opProbeReadFast, opProbeReadStrFast:
		return true
	}
	return false
}
