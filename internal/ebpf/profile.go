package ebpf

import "fmt"

// Profile persistence: the tier-0 warmup profile — per-slot hit and
// branch-taken counters plus the program run count — serialized keyed by
// program identity, so a re-created world (a harness re-run, a rostracer
// session restart) seeds its counters from the previous session and
// promotes straight to tier 1/2 instead of re-warming past the hot
// threshold. Identity is the program name plus a hash over the exact
// instruction encoding: a program whose code changed between sessions
// silently invalidates its saved profile instead of seeding garbage
// counters into the wrong slots.

// SlotProfile is the persisted profile of one tier-0 dispatch slot.
type SlotProfile struct {
	Hits  uint64 `json:"hits,omitempty"`
	Taken uint64 `json:"taken,omitempty"`
}

// ProgramProfile is the persisted warmup profile of one program.
type ProgramProfile struct {
	Name  string        `json:"name"`
	Hash  uint64        `json:"hash"`
	Runs  uint64        `json:"runs"`
	Slots []SlotProfile `json:"slots"`
}

// ProfileHash fingerprints the program's instruction encoding (FNV-1a
// over every instruction field). A saved profile only applies to a
// program with an identical hash: slot indexes are meaningless across
// code changes.
func (p *Program) ProfileHash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, in := range p.Insns {
		mix(uint64(in.Op))
		mix(uint64(in.Dst))
		mix(uint64(in.Src))
		mix(uint64(in.Off))
		mix(uint64(in.Imm))
		mix(uint64(in.Size))
	}
	return h
}

// Profile snapshots the program's tier-0 warmup profile. For a promoted
// program the snapshot comes from the tier-0 form it was re-decoded
// from — the counters are frozen at promotion time, which is exactly the
// profile a restarted session needs to reach the same tier. ok is false
// when the program was never decoded.
func (p *Program) Profile() (ProgramProfile, bool) {
	dp := p.dp.Load()
	if dp == nil {
		return ProgramProfile{}, false
	}
	if dp.tier != 0 {
		if dp.t0 == nil {
			return ProgramProfile{}, false
		}
		dp = dp.t0
	}
	prof := ProgramProfile{
		Name:  p.Name,
		Hash:  p.ProfileHash(),
		Runs:  dp.runs,
		Slots: make([]SlotProfile, len(dp.insns)),
	}
	for i := range dp.insns {
		prof.Slots[i].Hits = dp.insns[i].hits
		if i < len(dp.takenCtr) {
			prof.Slots[i].Taken = dp.takenCtr[i]
		}
	}
	return prof, true
}

// ApplyProfile seeds a freshly loaded program's tier-0 counters from a
// profile saved by a previous session, after validating that it belongs
// to this exact program (name, instruction hash, slot count). When the
// seeded run count has already crossed the program's hot threshold the
// program is re-decoded immediately, so the world dispatches at tier >= 1
// from its first fire. A program already promoted this session is left
// alone.
func (p *Program) ApplyProfile(prof ProgramProfile) error {
	dp := p.dp.Load()
	if dp == nil {
		return fmt.Errorf("ebpf: ApplyProfile on undecoded program %q", p.Name)
	}
	if dp.tier != 0 {
		return nil
	}
	if prof.Name != p.Name {
		return fmt.Errorf("ebpf: profile name %q does not match program %q", prof.Name, p.Name)
	}
	if h := p.ProfileHash(); prof.Hash != h {
		return fmt.Errorf("ebpf: profile hash %#x does not match program %q (%#x)", prof.Hash, p.Name, h)
	}
	if len(prof.Slots) != len(dp.insns) {
		return fmt.Errorf("ebpf: profile for %q has %d slots, program has %d",
			p.Name, len(prof.Slots), len(dp.insns))
	}
	dp.runs += prof.Runs
	for i := range dp.insns {
		dp.insns[i].hits += prof.Slots[i].Hits
		if i < len(dp.takenCtr) {
			dp.takenCtr[i] += prof.Slots[i].Taken
		}
	}
	if dp.hotThreshold != 0 && dp.runs >= dp.hotThreshold {
		p.dp.Store(reoptimize(dp, true))
	}
	return nil
}
