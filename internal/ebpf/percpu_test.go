package ebpf

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestPerfBufferPerCPUAccounting checks that capacity, lost and byte
// counters are tracked per CPU ring, and that the buffer-level accessors
// report their sums.
func TestPerfBufferPerCPUAccounting(t *testing.T) {
	pb := NewPerfBuffer("rings", 2)
	// CPU 0: exactly at capacity. CPU 1: one over. CPU 3: three over,
	// leaving CPU 2 as a never-emitting hole in the ring set.
	pb.Emit(0, 1, []byte{1, 1})
	pb.Emit(0, 2, []byte{2, 2})
	for i := 0; i < 3; i++ {
		pb.Emit(1, 3, []byte{3, 3, 3})
	}
	for i := 0; i < 5; i++ {
		pb.Emit(3, 4, []byte{4})
	}

	if got := pb.NumRings(); got != 4 {
		t.Fatalf("NumRings = %d, want 4", got)
	}
	wantLost := []uint64{0, 1, 0, 3}
	wantBytes := []uint64{4, 6, 0, 2}
	wantPending := []int{2, 2, 0, 2}
	for cpu := 0; cpu < 4; cpu++ {
		if got := pb.LostOnCPU(cpu); got != wantLost[cpu] {
			t.Errorf("LostOnCPU(%d) = %d, want %d", cpu, got, wantLost[cpu])
		}
		if got := pb.BytesOnCPU(cpu); got != wantBytes[cpu] {
			t.Errorf("BytesOnCPU(%d) = %d, want %d", cpu, got, wantBytes[cpu])
		}
		if got := pb.PendingOnCPU(cpu); got != wantPending[cpu] {
			t.Errorf("PendingOnCPU(%d) = %d, want %d", cpu, got, wantPending[cpu])
		}
	}
	if got := pb.Lost(); got != 4 {
		t.Errorf("Lost = %d, want 4", got)
	}
	if got := pb.Bytes(); got != 12 {
		t.Errorf("Bytes = %d, want 12", got)
	}
	if got := pb.Pending(); got != 6 {
		t.Errorf("Pending = %d, want 6", got)
	}
	// Out-of-range CPUs are empty, not a panic.
	if pb.LostOnCPU(-1) != 0 || pb.BytesOnCPU(99) != 0 || pb.PendingOnCPU(99) != 0 {
		t.Error("out-of-range CPU accessors not zero")
	}

	// A drain empties pending but keeps cumulative lost/byte counters.
	if got := len(pb.Drain()); got != 6 {
		t.Fatalf("drained %d records, want 6", got)
	}
	if pb.Pending() != 0 || pb.Lost() != 4 || pb.Bytes() != 12 {
		t.Errorf("post-drain counters: pending %d lost %d bytes %d", pb.Pending(), pb.Lost(), pb.Bytes())
	}
	// Capacity frees up after the drain.
	pb.Emit(1, 9, []byte{9})
	if pb.LostOnCPU(1) != 1 || pb.PendingOnCPU(1) != 1 {
		t.Errorf("ring 1 after drain: lost %d pending %d", pb.LostOnCPU(1), pb.PendingOnCPU(1))
	}
}

// TestPerfBufferMergedDrainOrder interleaves emissions across CPUs and
// checks the merged drain reproduces global (Time, Seq) order — which,
// with the buffer's own emission counter, is exactly emission order.
func TestPerfBufferMergedDrainOrder(t *testing.T) {
	pb := NewPerfBuffer("merge", 0)
	// (cpu, time) in emission order; times repeat across and within CPUs.
	emissions := []struct {
		cpu  int
		time int64
	}{
		{2, 10}, {0, 10}, {1, 11}, {0, 11}, {2, 11}, {1, 12}, {0, 12}, {0, 12},
	}
	for i, e := range emissions {
		pb.Emit(e.cpu, e.time, []byte{byte(i)})
	}
	recs := pb.Drain()
	if len(recs) != len(emissions) {
		t.Fatalf("drained %d records, want %d", len(recs), len(emissions))
	}
	for i, rec := range recs {
		if int(rec.Data[0]) != i {
			t.Fatalf("record %d is emission %d; merged drain broke emission order", i, rec.Data[0])
		}
		if rec.CPU != emissions[i].cpu || rec.Time != emissions[i].time {
			t.Fatalf("record %d = cpu%d t=%d, want cpu%d t=%d",
				i, rec.CPU, rec.Time, emissions[i].cpu, emissions[i].time)
		}
	}
	if pb.Pending() != 0 {
		t.Fatalf("pending after drain = %d", pb.Pending())
	}
}

// TestPerfBufferDrainCPU checks single-ring drains are independent.
func TestPerfBufferDrainCPU(t *testing.T) {
	pb := NewPerfBuffer("single", 0)
	pb.Emit(0, 1, []byte{0xA})
	pb.Emit(1, 2, []byte{0xB})
	pb.Emit(0, 3, []byte{0xC})

	got := pb.DrainCPU(0)
	want := [][]byte{{0xA}, {0xC}}
	if len(got) != 2 {
		t.Fatalf("DrainCPU(0) = %d records, want 2", len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Data, want[i]) {
			t.Fatalf("DrainCPU(0)[%d].Data = %v, want %v", i, got[i].Data, want[i])
		}
	}
	if pb.PendingOnCPU(1) != 1 {
		t.Fatal("DrainCPU(0) touched CPU 1's ring")
	}
	if recs := pb.DrainCPU(7); recs != nil {
		t.Fatalf("DrainCPU of unmaterialized ring = %v", recs)
	}
	if recs := pb.Drain(); len(recs) != 1 || recs[0].Data[0] != 0xB {
		t.Fatalf("final merged drain = %v", recs)
	}
}

// TestPerfBufferSharedSeqMergesAcrossBuffers checks buffers sharing one
// emission counter still produce a total order across per-CPU rings.
func TestPerfBufferSharedSeqMergesAcrossBuffers(t *testing.T) {
	var seq uint64
	a := NewPerfBufferSeq("a", 0, &seq)
	b := NewPerfBufferSeq("b", 0, &seq)
	a.Emit(1, 5, []byte{0})
	b.Emit(0, 5, []byte{1})
	a.Emit(0, 5, []byte{2})
	b.Emit(2, 6, []byte{3})

	var all []PerfRecord
	all = append(all, a.Drain()...)
	all = append(all, b.Drain()...)
	// Per-buffer drains are (Time, Seq) sorted; a two-way merge on Seq
	// must reproduce emission order 0,1,2,3.
	seen := make([]bool, 4)
	for _, rec := range all {
		seen[rec.Data[0]] = true
		if rec.Seq != uint64(rec.Data[0]) {
			t.Fatalf("record %d has Seq %d", rec.Data[0], rec.Seq)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("emission %d lost", i)
		}
	}
}

// TestPerfBufferDrainCursor checks cursor-based segment iteration: a
// cursor captures exactly the ring's current segment, iterates it in
// emission order, and leaves cumulative lost/byte accounting intact.
func TestPerfBufferDrainCursor(t *testing.T) {
	pb := NewPerfBuffer("cursor", 3)
	pb.Emit(1, 10, []byte{1})
	pb.Emit(1, 20, []byte{2})
	for i := 0; i < 4; i++ {
		pb.Emit(1, 30, []byte{9}) // one lands, three lost (capacity 3)
	}

	cur := pb.DrainCursor(1)
	if cur.Len() != 3 {
		t.Fatalf("segment has %d records, want 3", cur.Len())
	}
	var times []int64
	for {
		rec, ok := cur.Next()
		if !ok {
			break
		}
		times = append(times, rec.Time)
	}
	if !reflect.DeepEqual(times, []int64{10, 20, 30}) {
		t.Fatalf("cursor order %v", times)
	}
	if cur.Len() != 0 {
		t.Fatalf("exhausted cursor reports Len %d", cur.Len())
	}
	// The drain defines a new segment; accounting is cumulative.
	if pb.PendingOnCPU(1) != 0 || pb.LostOnCPU(1) != 3 || pb.BytesOnCPU(1) != 3 {
		t.Fatalf("post-cursor counters: pending %d lost %d bytes %d",
			pb.PendingOnCPU(1), pb.LostOnCPU(1), pb.BytesOnCPU(1))
	}
	pb.Emit(1, 40, []byte{7})
	next := pb.DrainCursor(1)
	if next.Len() != 1 {
		t.Fatalf("next segment has %d records, want 1", next.Len())
	}
	// Never-seen CPUs yield empty cursors.
	if pb.DrainCursor(17).Len() != 0 {
		t.Fatal("cursor over unseen CPU not empty")
	}
}

// TestPerfBufferDrainInto checks the push-style segment drain, including
// mid-segment abort semantics.
func TestPerfBufferDrainInto(t *testing.T) {
	pb := NewPerfBuffer("into", 0)
	for i := 0; i < 5; i++ {
		pb.Emit(2, int64(i), []byte{byte(i)})
	}
	var seen []int64
	if err := pb.DrainInto(2, func(rec PerfRecord) error {
		seen = append(seen, rec.Time)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, []int64{0, 1, 2, 3, 4}) {
		t.Fatalf("DrainInto order %v", seen)
	}

	for i := 0; i < 5; i++ {
		pb.Emit(2, int64(10+i), []byte{byte(i)})
	}
	errStop := fmt.Errorf("stop")
	n := 0
	if err := pb.DrainInto(2, func(PerfRecord) error {
		n++
		if n == 2 {
			return errStop
		}
		return nil
	}); err != errStop {
		t.Fatalf("DrainInto error = %v, want errStop", err)
	}
	// The segment was swapped out before iteration: an aborted consumer
	// drops the remainder (as a failed real poller would), it does not
	// requeue it.
	if pb.PendingOnCPU(2) != 0 {
		t.Fatalf("aborted DrainInto left %d records pending", pb.PendingOnCPU(2))
	}
}

// TestPerfRingChunkReuseAfterRelease pins down the arena contract the
// zero-copy drain relies on: releasing a cursor hands its chunks back to
// the ring, the next emission burst reuses that exact memory, and any
// record Data retained across the Release therefore aliases the new
// burst's bytes. This is why a streaming sink must be done with every
// Data slice before the drain returns — and why retaining decoded
// values (interned names, scalar fields) is safe while retaining Data
// is not.
func TestPerfRingChunkReuseAfterRelease(t *testing.T) {
	pb := NewPerfBuffer("arena", 0)
	payload := func(burst, i int) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(burst)<<32|uint64(i))
		return b
	}
	const n = 64
	for i := 0; i < n; i++ {
		pb.Emit(0, int64(i), payload(1, i))
	}

	c := pb.DrainCursor(0)
	if len(c.chunks) == 0 {
		t.Fatal("drained cursor has no chunks")
	}
	arena := &c.chunks[0][0]
	var retained []byte
	for i := 0; i < n; i++ {
		rec, ok := c.Next()
		if !ok {
			t.Fatalf("cursor ended after %d of %d records", i, n)
		}
		if want := payload(1, i); !reflect.DeepEqual(rec.Data, want) {
			t.Fatalf("record %d data = %x, want %x", i, rec.Data, want)
		}
		if i == 0 {
			retained = rec.Data
		}
	}
	c.Release()

	for i := 0; i < n; i++ {
		pb.Emit(0, int64(1000+i), payload(2, i))
	}
	c2 := pb.DrainCursor(0)
	defer c2.Release()
	if len(c2.chunks) == 0 {
		t.Fatal("second drain has no chunks")
	}
	if &c2.chunks[0][0] != arena {
		t.Fatal("second burst did not reuse the released arena chunk")
	}
	// The Data slice retained across Release now reads the second
	// burst's first record — reuse is observable, not hypothetical.
	if !reflect.DeepEqual(retained, payload(2, 0)) {
		t.Fatalf("retained Data after reuse = %x, want second burst's bytes %x", retained, payload(2, 0))
	}
	for i := 0; i < n; i++ {
		rec, ok := c2.Next()
		if !ok {
			t.Fatalf("second cursor ended after %d of %d records", i, n)
		}
		if want := payload(2, i); !reflect.DeepEqual(rec.Data, want) {
			t.Fatalf("second burst record %d data = %x, want %x", i, rec.Data, want)
		}
	}
}

// TestPerfRingDrainWhileNextBurstEmits drives the segment-swap isolation
// property under the race detector: DrainCursor swaps the segment out of
// the ring, so consuming the cursor's records may overlap with the next
// emission burst filling fresh chunks. The emitter touches only ring
// state (new chunks, counters); the consumer touches only cursor-local
// state; Release — which does touch the ring's free list — is ordered
// after the emitter finishes, matching the StreamTo cadence where
// release happens before the simulation resumes.
func TestPerfRingDrainWhileNextBurstEmits(t *testing.T) {
	pb := NewPerfBuffer("swap", 0)
	payload := func(burst, i int) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(burst)<<32|uint64(i))
		return b
	}
	const n = 512
	for i := 0; i < n; i++ {
		pb.Emit(0, int64(i), payload(1, i))
	}
	c := pb.DrainCursor(0)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			pb.Emit(0, int64(1000+i), payload(2, i))
		}
	}()
	for i := 0; i < n; i++ {
		rec, ok := c.Next()
		if !ok {
			t.Errorf("cursor ended after %d of %d records", i, n)
			break
		}
		if want := payload(1, i); !reflect.DeepEqual(rec.Data, want) {
			t.Errorf("record %d data = %x, want %x", i, rec.Data, want)
			break
		}
	}
	wg.Wait()
	c.Release()

	c2 := pb.DrainCursor(0)
	defer c2.Release()
	if c2.Len() != n {
		t.Fatalf("concurrent burst drained %d records, want %d", c2.Len(), n)
	}
	for i := 0; i < n; i++ {
		rec, _ := c2.Next()
		if want := payload(2, i); !reflect.DeepEqual(rec.Data, want) {
			t.Fatalf("concurrent burst record %d data = %x, want %x", i, rec.Data, want)
		}
	}
}
