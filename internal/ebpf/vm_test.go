package ebpf

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/umem"
)

// mustVerify verifies p with the given ctx words and fails the test on
// rejection.
func mustVerify(t *testing.T, p *Program, ctxWords int, maps map[int64]Map) {
	t.Helper()
	lookup := func(fd int64) Map { return maps[fd] }
	if maps == nil {
		lookup = nil
	}
	if err := Verify(p, VerifyOptions{CtxWords: ctxWords, LookupMap: lookup}); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func run(t *testing.T, p *Program, ctx *ExecContext, maps map[int64]Map) uint64 {
	t.Helper()
	if ctx == nil {
		ctx = &ExecContext{}
	}
	res, err := NewVM(maps).Run(p, ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.R0
}

func TestALUArithmetic(t *testing.T) {
	p := NewAssembler("alu").
		MovImm(R0, 10).
		AddImm(R0, 5).
		MovImm(R2, 3).
		MulImm(R2, 7).  // 21
		AddReg(R0, R2). // 36
		SubImm(R0, 6).  // 30
		DivImm(R0, 3).  // 10
		ModImm(R0, 4).  // 2
		LshImm(R0, 4).  // 32
		RshImm(R0, 1).  // 16
		OrImm(R0, 1).   // 17
		AndImm(R0, 0xFF).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
	if got := run(t, p, nil, nil); got != 17 {
		t.Fatalf("R0 = %d, want 17", got)
	}
}

func TestDivisionByZeroYieldsZero(t *testing.T) {
	p := NewAssembler("div0").
		MovImm(R0, 100).
		MovImm(R2, 0).
		DivReg(R0, R2).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
	if got := run(t, p, nil, nil); got != 0 {
		t.Fatalf("100/0 = %d, want 0", got)
	}
}

func TestForwardJumps(t *testing.T) {
	// if ctx[0] == 7 then r0 = 1 else r0 = 2
	p := NewAssembler("branch").
		LdxCtx(R2, R1, 0).
		JeqImm(R2, 7, "seven").
		MovImm(R0, 2).
		Ja("out").
		Label("seven").
		MovImm(R0, 1).
		Label("out").
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
	if got := run(t, p, &ExecContext{Words: []uint64{7}}, nil); got != 1 {
		t.Fatalf("branch taken path: r0 = %d", got)
	}
	if got := run(t, p, &ExecContext{Words: []uint64{9}}, nil); got != 2 {
		t.Fatalf("fallthrough path: r0 = %d", got)
	}
}

func TestBackwardJumpRejectedByAssembler(t *testing.T) {
	a := NewAssembler("loop")
	a.Label("top").MovImm(R0, 0).Ja("top").Exit()
	if _, err := a.Assemble(); err == nil {
		t.Fatal("assembler accepted a backward jump")
	}
}

func TestUndefinedLabel(t *testing.T) {
	a := NewAssembler("bad").Ja("nowhere").Exit()
	if _, err := a.Assemble(); err == nil {
		t.Fatal("assembler accepted undefined label")
	}
}

func TestStackLoadStore(t *testing.T) {
	p := NewAssembler("stack").
		MovImm(R2, 0xABCD).
		StxStack(R10, -8, R2, 8).
		StImmStack(R10, -16, 42, 4).
		LdxStack(R0, R10, -8, 8).
		LdxStack(R3, R10, -16, 4).
		AddReg(R0, R3).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
	if got := run(t, p, nil, nil); got != 0xABCD+42 {
		t.Fatalf("r0 = %#x", got)
	}
}

func TestVerifierRejectsUninitRead(t *testing.T) {
	p := NewAssembler("uninit").
		LdxStack(R0, R10, -8, 8). // never written
		Exit().
		MustAssemble()
	if err := Verify(p, VerifyOptions{CtxWords: 1}); err == nil {
		t.Fatal("verifier accepted read of uninitialized stack")
	}
}

func TestVerifierRejectsUninitR0AtExit(t *testing.T) {
	p := NewAssembler("noR0").Exit().MustAssemble()
	if err := Verify(p, VerifyOptions{CtxWords: 1}); err == nil {
		t.Fatal("verifier accepted exit with uninitialized r0")
	}
}

func TestVerifierRejectsStackOOB(t *testing.T) {
	for _, off := range []int32{-520, 8, -4 /* partially above fp */} {
		p := NewAssembler("oob").
			MovImm(R2, 1).
			StxStack(R10, off, R2, 8).
			MovImm(R0, 0).
			Exit().
			MustAssemble()
		if err := Verify(p, VerifyOptions{CtxWords: 1}); err == nil {
			t.Fatalf("verifier accepted stack store at offset %d", off)
		}
	}
}

func TestVerifierRejectsWriteToR10(t *testing.T) {
	p := NewAssembler("fp").MovImm(R10, 0).MovImm(R0, 0).Exit().MustAssemble()
	if err := Verify(p, VerifyOptions{CtxWords: 1}); err == nil {
		t.Fatal("verifier accepted write to frame pointer")
	}
}

func TestVerifierRejectsCtxLoadOutOfRange(t *testing.T) {
	p := NewAssembler("ctx").
		LdxCtx(R0, R1, 5).
		Exit().
		MustAssemble()
	if err := Verify(p, VerifyOptions{CtxWords: 3}); err == nil {
		t.Fatal("verifier accepted ctx load beyond declared words")
	}
}

func TestVerifierRejectsCtxLoadFromScalar(t *testing.T) {
	p := NewAssembler("ctx2").
		MovImm(R2, 0).
		LdxCtx(R0, R2, 0).
		Exit().
		MustAssemble()
	if err := Verify(p, VerifyOptions{CtxWords: 3}); err == nil {
		t.Fatal("verifier accepted ctx load through scalar register")
	}
}

func TestVerifierRejectsFallOffEnd(t *testing.T) {
	p := &Program{Name: "falloff", Insns: []Instruction{{Op: OpMovImm, Dst: R0}}}
	if err := Verify(p, VerifyOptions{CtxWords: 1}); err == nil {
		t.Fatal("verifier accepted program without exit")
	}
}

func TestVerifierRejectsPointerArithmeticOnCtx(t *testing.T) {
	p := NewAssembler("ptrmath").
		AddImm(R1, 8). // ctx pointer arithmetic unsupported
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	if err := Verify(p, VerifyOptions{CtxWords: 1}); err == nil {
		t.Fatal("verifier accepted arithmetic on ctx pointer")
	}
}

func TestVerifierStateMergeAtJoin(t *testing.T) {
	// r6 is a stack pointer on one path and scalar on the other; using it
	// as a memory base after the join must be rejected.
	p := NewAssembler("join").
		LdxCtx(R2, R1, 0).
		JeqImm(R2, 0, "a").
		MovReg(R6, R10).
		Ja("use").
		Label("a").
		MovImm(R6, 123).
		Label("use").
		MovImm(R3, 1).
		StxStack(R6, -8, R3, 8).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	if err := Verify(p, VerifyOptions{CtxWords: 1}); err == nil {
		t.Fatal("verifier accepted merged pointer/scalar base")
	}
}

func TestVerifierMergeKeepsCommonStackInit(t *testing.T) {
	// Both paths initialize fp-8; reading it after the join is legal.
	p := NewAssembler("join2").
		LdxCtx(R2, R1, 0).
		JeqImm(R2, 0, "a").
		StImmStack(R10, -8, 1, 8).
		Ja("use").
		Label("a").
		StImmStack(R10, -8, 2, 8).
		Label("use").
		LdxStack(R0, R10, -8, 8).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
}

func TestHelperMapRoundTrip(t *testing.T) {
	maps := map[int64]Map{5: NewHashMap("m", 16)}
	p := NewAssembler("map").
		MovImm(R1, 5).
		MovImm(R2, 100). // key
		MovImm(R3, 777). // value
		Call(HelperMapUpdate).
		MovImm(R1, 5).
		MovImm(R2, 100).
		Call(HelperMapLookup).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, maps)
	if got := run(t, p, nil, maps); got != 777 {
		t.Fatalf("lookup = %d, want 777", got)
	}
}

func TestHelperMapLookupMiss(t *testing.T) {
	maps := map[int64]Map{5: NewHashMap("m", 16)}
	p := NewAssembler("miss").
		MovImm(R1, 5).
		MovImm(R2, 9).
		Call(HelperMapLookupExist).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, maps)
	if got := run(t, p, nil, maps); got != 0 {
		t.Fatalf("exist on empty map = %d", got)
	}
}

func TestVerifierRejectsUnknownMapFD(t *testing.T) {
	maps := map[int64]Map{5: NewHashMap("m", 16)}
	p := NewAssembler("badfd").
		MovImm(R1, 99).
		MovImm(R2, 0).
		Call(HelperMapLookup).
		Exit().
		MustAssemble()
	lookup := func(fd int64) Map { return maps[fd] }
	if err := Verify(p, VerifyOptions{CtxWords: 1, LookupMap: lookup}); err == nil {
		t.Fatal("verifier accepted unknown map fd")
	}
}

func TestProbeReadFromUmem(t *testing.T) {
	space := umem.NewSpace(42)
	addr := space.AllocU64(0x1122334455667788)
	p := NewAssembler("pread").
		MovReg(R6, R10).
		AddImm(R6, -8).
		MovReg(R1, R6).
		MovImm(R2, 8).
		LdxCtx(R3, R1, 0). // bug: R1 was clobbered; see below
		Exit().
		MustAssemble()
	_ = p // The program above is intentionally wrong; build the correct one:
	p2 := NewAssembler("pread2").
		LdxCtx(R7, R1, 0). // src address from ctx first
		MovReg(R6, R10).
		AddImm(R6, -8).
		MovReg(R1, R6).
		MovImm(R2, 8).
		MovReg(R3, R7).
		Call(HelperProbeRead).
		LdxStack(R0, R10, -8, 8).
		Exit().
		MustAssemble()
	mustVerify(t, p2, 1, nil)
	ctx := &ExecContext{Words: []uint64{uint64(addr)}, Mem: space}
	if got := run(t, p2, ctx, nil); got != 0x1122334455667788 {
		t.Fatalf("probe_read got %#x", got)
	}
}

func TestProbeReadFaultZeroFills(t *testing.T) {
	space := umem.NewSpace(43)
	p := NewAssembler("fault").
		MovReg(R6, R10).
		AddImm(R6, -8).
		MovReg(R1, R6).
		MovImm(R2, 8).
		MovImm(R3, 0). // NULL
		Call(HelperProbeRead).
		MovReg(R7, R0). // fault flag
		LdxStack(R6, R10, -8, 8).
		MovReg(R0, R7).
		AddReg(R0, R6). // flag + zero-filled value = 1
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
	if got := run(t, p, &ExecContext{Mem: space}, nil); got != 1 {
		t.Fatalf("fault path r0 = %d, want 1", got)
	}
}

func TestProbeReadStr(t *testing.T) {
	space := umem.NewSpace(44)
	addr := space.AllocString("/topic")
	p := NewAssembler("preadstr").
		LdxCtx(R7, R1, 0).
		MovReg(R6, R10).
		AddImm(R6, -16).
		MovReg(R1, R6).
		MovImm(R2, 16).
		MovReg(R3, R7).
		Call(HelperProbeReadStr).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
	ctx := &ExecContext{Words: []uint64{uint64(addr)}, Mem: space}
	if got := run(t, p, ctx, nil); got != 6 {
		t.Fatalf("probe_read_str len = %d, want 6", got)
	}
}

func TestPerfOutput(t *testing.T) {
	pb := NewPerfBuffer("events", 0)
	maps := map[int64]Map{7: pb}
	p := NewAssembler("perf").
		MovImm(R2, 0xCAFE).
		StxStack(R10, -8, R2, 8).
		MovImm(R1, 7).
		MovReg(R2, R10).
		AddImm(R2, -8).
		MovImm(R3, 8).
		Call(HelperPerfOutput).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, maps)
	run(t, p, &ExecContext{CPU: 2, NowNs: 555}, maps)
	recs := pb.Drain()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].CPU != 2 || recs[0].Time != 555 {
		t.Errorf("record meta = %+v", recs[0])
	}
	if got := loadSized(recs[0].Data, 8); got != 0xCAFE {
		t.Errorf("payload = %#x", got)
	}
}

func TestPerfOutputUninitializedRejected(t *testing.T) {
	pb := NewPerfBuffer("events", 0)
	maps := map[int64]Map{7: pb}
	p := NewAssembler("perfbad").
		MovImm(R1, 7).
		MovReg(R2, R10).
		AddImm(R2, -8).
		MovImm(R3, 8). // 8 bytes, never initialized
		Call(HelperPerfOutput).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	lookup := func(fd int64) Map { return maps[fd] }
	if err := Verify(p, VerifyOptions{CtxWords: 1, LookupMap: lookup}); err == nil {
		t.Fatal("verifier accepted perf output of uninitialized bytes")
	}
}

func TestTimeAndPidHelpers(t *testing.T) {
	p := NewAssembler("meta").
		Call(HelperKtimeGetNs).
		MovReg(R6, R0).
		Call(HelperGetCurrentPid).
		AddReg(R6, R0).
		Call(HelperGetSmpProcID).
		AddReg(R6, R0).
		MovReg(R0, R6).
		Exit().
		MustAssemble()
	mustVerify(t, p, 1, nil)
	got := run(t, p, &ExecContext{PID: 10, CPU: 3, NowNs: 1000}, nil)
	if got != 1013 {
		t.Fatalf("sum = %d, want 1013", got)
	}
}

func TestRunningUnverifiedProgramPanics(t *testing.T) {
	p := NewAssembler("raw").MovImm(R0, 0).Exit().MustAssemble()
	defer func() {
		if recover() == nil {
			t.Fatal("unverified run did not panic")
		}
	}()
	_, _ = NewVM(nil).Run(p, &ExecContext{})
}

func TestHashMapCapacity(t *testing.T) {
	m := NewHashMap("small", 2)
	if err := m.Update(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(3, 3); err == nil {
		t.Fatal("update beyond capacity succeeded")
	}
	// Overwrite of an existing key is always allowed.
	if err := m.Update(1, 10); err != nil {
		t.Fatal(err)
	}
	m.Delete(2)
	if err := m.Update(3, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPerfBufferOverrun(t *testing.T) {
	pb := NewPerfBuffer("cap", 2)
	pb.Emit(0, 0, []byte{1})
	pb.Emit(0, 0, []byte{2})
	pb.Emit(0, 0, []byte{3})
	if pb.Lost() != 1 {
		t.Fatalf("lost = %d, want 1", pb.Lost())
	}
	if pb.Pending() != 2 {
		t.Fatalf("pending = %d", pb.Pending())
	}
}

func TestArrayMap(t *testing.T) {
	a := NewArrayMap("arr", 4)
	if err := a.Update(3, 9); err != nil {
		t.Fatal(err)
	}
	if v, ok := a.Lookup(3); !ok || v != 9 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if _, ok := a.Lookup(4); ok {
		t.Fatal("out-of-range lookup hit")
	}
	if err := a.Update(9, 1); err == nil {
		t.Fatal("out-of-range update succeeded")
	}
	a.Delete(3)
	if v, _ := a.Lookup(3); v != 0 {
		t.Fatal("delete did not zero")
	}
}
