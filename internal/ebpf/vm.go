package ebpf

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/tracesynth/rostracer/internal/umem"
)

// ExecContext carries the environment a program executes in: the identity
// of the interrupted thread, the current virtual time, the CPU, the
// pt_regs-style argument words of the probe site, and the address space
// reachable through probe_read.
type ExecContext struct {
	PID   uint32
	CPU   int
	NowNs int64
	Words []uint64    // probe-site arguments / tracepoint fields
	Mem   *umem.Space // address space of the traced process (may be nil)
}

// VM executes verified programs. It is owned by a Runtime; maps are
// resolved through the runtime's fd table.
type VM struct {
	maps map[int64]Map
	// stack is the decoded-dispatch scratch frame, reused across runs
	// without re-zeroing: the verifier proves programs never read stack
	// bytes they did not first write, exactly the argument the kernel
	// uses to hand programs an uninitialized frame.
	stack [StackSize]byte
	// regs is the decoded-dispatch register file, reused without
	// re-zeroing by the same argument: the verifier rejects reads of
	// uninitialized registers, so stale values are unobservable. Only R10
	// is re-seeded per run.
	regs [decodedRegs]uint64
}

// NewVM returns an interpreter using the given fd table.
func NewVM(maps map[int64]Map) *VM { return &VM{maps: maps} }

// ExecResult reports a completed program run.
type ExecResult struct {
	R0    uint64
	Insns int // instructions retired, used for overhead accounting
}

// Run executes p against ctx. The program must have been verified; running
// an unverified program is a programming error and panics, mirroring the
// kernel's refusal to load unverified bytecode. Programs decoded at load
// time dispatch over the pre-resolved form; others fall back to the raw
// reference interpreter.
func (vm *VM) Run(p *Program, ctx *ExecContext) (ExecResult, error) {
	if dp := p.dp.Load(); dp != nil {
		return vm.runDecoded(p, dp, ctx)
	}
	return vm.RunInterpreted(p, ctx)
}

// runDecoded is the hot dispatch loop over the pre-resolved form. Every
// reachable slot is a fused straight-line run, a guarded trace, a jump,
// or exit, so the outer loop only steers control flow; execRun retires
// the straight-line work. While the program is in tier 0 the loop also
// maintains the profile — a program-entry count, a per-slot hit count,
// and a taken count on conditional jumps — and swaps in the tier-1/2
// re-decode once the program crosses its hotness threshold. The swap is
// a single atomic store; this run keeps executing the form it loaded,
// the next fire picks up the new one.
func (vm *VM) runDecoded(p *Program, dp *decodedProgram, ctx *ExecContext) (ExecResult, error) {
	profiling := dp.tier == 0
	if profiling {
		dp.runs++
		if dp.hotThreshold != 0 && dp.runs >= dp.hotThreshold {
			ndp := reoptimize(dp, true)
			p.dp.Store(ndp)
			dp = ndp
			profiling = false
		}
	}
	regs := &vm.regs
	stack := vm.stack[:]
	regs[R10] = StackSize

	code := dp.insns
	insns := 0
	pc := 0
	for {
		if uint(pc) >= uint(len(code)) {
			return ExecResult{}, fmt.Errorf("ebpf: %q pc %d out of range", p.Name, pc)
		}
		in := &code[pc]
		insns++
		if insns > MaxInsns*2 {
			return ExecResult{}, fmt.Errorf("ebpf: %q exceeded instruction budget", p.Name)
		}
		switch in.op {
		case opRunFused:
			// The block-hit profile only feeds the tier-1 re-decode;
			// promoted forms skip the write so their slots stay read-only
			// on the steady-state path.
			if profiling {
				in.hits++
			}
			insns += int(in.retire) - 1 // each constituent retires; the run itself is not an insn
			if err := vm.execRun(in.run, dp, regs, stack, ctx); err != nil {
				return ExecResult{}, fmt.Errorf("ebpf: %q: %w", p.Name, err)
			}
			pc = int(in.tgt)
			continue

		case opRunExit:
			insns += int(in.retire) - 1 // includes the folded exit
			if err := vm.execRun(in.run, dp, regs, stack, ctx); err != nil {
				return ExecResult{}, fmt.Errorf("ebpf: %q: %w", p.Name, err)
			}
			return ExecResult{R0: regs[R0], Insns: insns}, nil

		case opTrace:
			// Tier-2 guarded trace: the block runs, then the guard — the
			// block's original conditional jump — either commits the fused
			// dominant successor or falls back to the branch slot itself,
			// which stays in the layout and re-executes at tier 1. The
			// fallback retires nothing here (the branch retires normally on
			// re-execution), so a corrupted guard degrades to the plain
			// branch instead of misdirecting execution — the same contract
			// as every tier-1 pattern-op guard.
			insns += int(in.retire) - 1
			if err := vm.execRun(in.run, dp, regs, stack, ctx); err != nil {
				return ExecResult{}, fmt.Errorf("ebpf: %q: %w", p.Name, err)
			}
			tr := in.tr
			if jumpTaken(tr.op, regs[tr.dst&regIdxMask], regs[tr.src&regIdxMask], tr.imm) == tr.expect {
				insns += int(tr.retireHit)
				if err := vm.execRun(tr.runB, dp, regs, stack, ctx); err != nil {
					return ExecResult{}, fmt.Errorf("ebpf: %q: %w", p.Name, err)
				}
				if tr.exit {
					return ExecResult{R0: regs[R0], Insns: insns}, nil
				}
				pc = int(in.tgt)
				continue
			}
			pc = int(tr.failTgt)
			continue

		case OpJa:
			pc = int(in.tgt)
			continue
		case OpJeqImm:
			if regs[in.dst&regIdxMask] == in.imm {
				goto taken
			}
		case OpJneImm:
			if regs[in.dst&regIdxMask] != in.imm {
				goto taken
			}
		case OpJgtImm:
			if regs[in.dst&regIdxMask] > in.imm {
				goto taken
			}
		case OpJgeImm:
			if regs[in.dst&regIdxMask] >= in.imm {
				goto taken
			}
		case OpJltImm:
			if regs[in.dst&regIdxMask] < in.imm {
				goto taken
			}
		case OpJleImm:
			if regs[in.dst&regIdxMask] <= in.imm {
				goto taken
			}
		case OpJeqReg:
			if regs[in.dst&regIdxMask] == regs[in.src&regIdxMask] {
				goto taken
			}
		case OpJneReg:
			if regs[in.dst&regIdxMask] != regs[in.src&regIdxMask] {
				goto taken
			}
		case OpJgtReg:
			if regs[in.dst&regIdxMask] > regs[in.src&regIdxMask] {
				goto taken
			}
		case OpJgeReg:
			if regs[in.dst&regIdxMask] >= regs[in.src&regIdxMask] {
				goto taken
			}
		case OpJltReg:
			if regs[in.dst&regIdxMask] < regs[in.src&regIdxMask] {
				goto taken
			}
		case OpJleReg:
			if regs[in.dst&regIdxMask] <= regs[in.src&regIdxMask] {
				goto taken
			}

		case OpExit:
			return ExecResult{R0: regs[R0], Insns: insns}, nil

		default:
			return ExecResult{}, fmt.Errorf("ebpf: %q invalid opcode at pc %d", p.Name, pc)
		}
		// Only a not-taken conditional jump falls out of the switch: the
		// edge profile (hits here, hits+taken below) is what tier-2 trace
		// formation reads to find single-dominant-successor branches.
		if profiling {
			in.hits++
		}
		pc++
		continue

	taken:
		if profiling {
			in.hits++
			if uint(pc) < uint(len(dp.takenCtr)) {
				dp.takenCtr[pc]++
			}
		}
		pc = int(in.tgt)
	}
}

// jumpTaken evaluates a conditional-jump guard against operand values a
// (dst register), b (src register), and the immediate. Unknown opcodes
// report not-taken; an opTrace guard is only ever built from the
// conditional opcodes below.
func jumpTaken(op Op, a, b, imm uint64) bool {
	switch op {
	case OpJeqImm:
		return a == imm
	case OpJneImm:
		return a != imm
	case OpJgtImm:
		return a > imm
	case OpJgeImm:
		return a >= imm
	case OpJltImm:
		return a < imm
	case OpJleImm:
		return a <= imm
	case OpJeqReg:
		return a == b
	case OpJneReg:
		return a != b
	case OpJgtReg:
		return a > b
	case OpJgeReg:
		return a >= b
	case OpJltReg:
		return a < b
	case OpJleReg:
		return a <= b
	}
	return false
}

// execRun executes a fused straight-line run back to back: no pc
// management, jump tests, or instruction-budget checks between
// constituents. Only non-control instructions are fused, so execution
// always falls through the whole run (helpers report faults through R0,
// not errors; stack bounds were proven by the verifier — the checks here
// are defensive).
//
// Tier-1 pattern superinstructions each cover a contiguous range of
// original instructions ops[pc:pc+w]; when a pattern's runtime guard
// fails the constituent tier-0 ops execute instead (execFallback), so a
// guard failure degrades to tier-0 semantics rather than an error.
func (vm *VM) execRun(run []dop, dp *decodedProgram, regs *[decodedRegs]uint64, stack []byte, ctx *ExecContext) error {
	for i := range run {
		in := &run[i]
		switch in.op {
		case OpMovImm:
			regs[in.dst&regIdxMask] = in.imm
		case OpMovReg:
			regs[in.dst&regIdxMask] = regs[in.src&regIdxMask]
		case OpAddImm:
			regs[in.dst&regIdxMask] += in.imm
		case OpAddReg:
			regs[in.dst&regIdxMask] += regs[in.src&regIdxMask]
		case OpSubImm:
			regs[in.dst&regIdxMask] -= in.imm
		case OpSubReg:
			regs[in.dst&regIdxMask] -= regs[in.src&regIdxMask]
		case OpMulImm:
			regs[in.dst&regIdxMask] *= in.imm
		case OpMulReg:
			regs[in.dst&regIdxMask] *= regs[in.src&regIdxMask]
		case OpDivImm:
			regs[in.dst&regIdxMask] = safeDiv(regs[in.dst&regIdxMask], in.imm)
		case OpDivReg:
			regs[in.dst&regIdxMask] = safeDiv(regs[in.dst&regIdxMask], regs[in.src&regIdxMask])
		case OpModImm:
			regs[in.dst&regIdxMask] = safeMod(regs[in.dst&regIdxMask], in.imm)
		case OpModReg:
			regs[in.dst&regIdxMask] = safeMod(regs[in.dst&regIdxMask], regs[in.src&regIdxMask])
		case OpAndImm:
			regs[in.dst&regIdxMask] &= in.imm
		case OpAndReg:
			regs[in.dst&regIdxMask] &= regs[in.src&regIdxMask]
		case OpOrImm:
			regs[in.dst&regIdxMask] |= in.imm
		case OpOrReg:
			regs[in.dst&regIdxMask] |= regs[in.src&regIdxMask]
		case OpXorImm:
			regs[in.dst&regIdxMask] ^= in.imm
		case OpXorReg:
			regs[in.dst&regIdxMask] ^= regs[in.src&regIdxMask]
		case OpLshImm:
			regs[in.dst&regIdxMask] <<= in.imm
		case OpRshImm:
			regs[in.dst&regIdxMask] >>= in.imm
		case OpNeg:
			regs[in.dst&regIdxMask] = -regs[in.dst&regIdxMask]

		case OpLdxCtx:
			w := int(in.tgt)
			if w < 0 || w >= len(ctx.Words) {
				regs[in.dst&regIdxMask] = 0
			} else {
				regs[in.dst&regIdxMask] = ctx.Words[w]
			}

		// Width-specialized stack ops: the frame index in tgt was proven
		// in bounds by the verifier and re-checked at decode time.
		case opLdxFP8:
			regs[in.dst&regIdxMask] = binary.LittleEndian.Uint64(stack[in.tgt:])
		case opLdxFP4:
			regs[in.dst&regIdxMask] = uint64(binary.LittleEndian.Uint32(stack[in.tgt:]))
		case opLdxFP2:
			regs[in.dst&regIdxMask] = uint64(binary.LittleEndian.Uint16(stack[in.tgt:]))
		case opLdxFP1:
			regs[in.dst&regIdxMask] = uint64(stack[in.tgt])
		case opStxFP8:
			binary.LittleEndian.PutUint64(stack[in.tgt:], regs[in.src&regIdxMask])
		case opStxFP4:
			binary.LittleEndian.PutUint32(stack[in.tgt:], uint32(regs[in.src&regIdxMask]))
		case opStxFP2:
			binary.LittleEndian.PutUint16(stack[in.tgt:], uint16(regs[in.src&regIdxMask]))
		case opStxFP1:
			stack[in.tgt] = byte(regs[in.src&regIdxMask])
		case opStImmFP8:
			binary.LittleEndian.PutUint64(stack[in.tgt:], in.imm)
		case opStImmFP4:
			binary.LittleEndian.PutUint32(stack[in.tgt:], uint32(in.imm))
		case opStImmFP2:
			binary.LittleEndian.PutUint16(stack[in.tgt:], uint16(in.imm))
		case opStImmFP1:
			stack[in.tgt] = byte(in.imm)

		// Generic stack ops remain only as the decoder's fallback; the
		// bounds checks are defensive (the verifier proved them).
		case OpLdxStack:
			idx := int64(regs[in.src&regIdxMask]) + int64(in.tgt)
			if idx < 0 || idx+int64(in.size) > StackSize {
				return fmt.Errorf("stack read oob at pc %d", in.pc)
			}
			regs[in.dst&regIdxMask] = loadSized(stack[idx:], in.size)

		case OpStxStack:
			idx := int64(regs[in.dst&regIdxMask]) + int64(in.tgt)
			if idx < 0 || idx+int64(in.size) > StackSize {
				return fmt.Errorf("stack write oob at pc %d", in.pc)
			}
			storeSized(stack[idx:], in.size, regs[in.src&regIdxMask])

		case OpStImmStack:
			idx := int64(regs[in.dst&regIdxMask]) + int64(in.tgt)
			if idx < 0 || idx+int64(in.size) > StackSize {
				return fmt.Errorf("stack write oob at pc %d", in.pc)
			}
			storeSized(stack[idx:], in.size, in.imm)

		case OpCall:
			if err := vm.callDecoded(&dp.calls[in.tgt], regs, stack, ctx); err != nil {
				return fmt.Errorf("pc %d: %w", in.pc, err)
			}

		// --- tier-1 pattern superinstructions ---
		//
		// Ops that produce a helper result in R0 support result
		// forwarding: an absorbed "rd = R0" / "rd += R0" successor lands
		// in dst (dst = R0 encodes no forwarding — the copy is then the
		// identity store the op performs anyway, so the fast path stays
		// branch-light).

		case opCallTime:
			v := uint64(ctx.NowNs)
			regs[R0] = v
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = v
			} else {
				regs[in.dst&regIdxMask] += v
			}
		case opCallPid:
			v := uint64(ctx.PID)
			regs[R0] = v
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = v
			} else {
				regs[in.dst&regIdxMask] += v
			}
		case opCallCPU:
			v := uint64(ctx.CPU)
			regs[R0] = v
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = v
			} else {
				regs[in.dst&regIdxMask] += v
			}

		case opLdxCtx2:
			words := ctx.Words
			var v1, v2 uint64
			if w := int(in.tgt); w >= 0 && w < len(words) {
				v1 = words[w]
			}
			if w := int(in.imm); w >= 0 && w < len(words) {
				v2 = words[w]
			}
			regs[in.dst&regIdxMask] = v1
			regs[in.src&regIdxMask] = v2

		case opTimeToStack:
			if int(in.tgt)+8 > StackSize {
				goto fallback
			}
			regs[R0] = uint64(ctx.NowNs)
			binary.LittleEndian.PutUint64(stack[in.tgt:], regs[R0])
		case opPidToStack:
			if int(in.tgt)+8 > StackSize {
				goto fallback
			}
			regs[R0] = uint64(ctx.PID)
			binary.LittleEndian.PutUint64(stack[in.tgt:], regs[R0])
		case opCPUToStack:
			if int(in.tgt)+8 > StackSize {
				goto fallback
			}
			regs[R0] = uint64(ctx.CPU)
			binary.LittleEndian.PutUint64(stack[in.tgt:], regs[R0])

		case opCtxToStack:
			if int(in.tgt)+8 > StackSize {
				goto fallback
			}
			var v uint64
			if w := int(in.imm); w >= 0 && w < len(ctx.Words) {
				v = ctx.Words[w]
			}
			regs[in.dst&regIdxMask] = v
			binary.LittleEndian.PutUint64(stack[in.tgt:], v)

		case opStoreRunImm:
			ti := int(in.imm)
			if ti >= len(dp.templates) {
				goto fallback
			}
			t := dp.templates[ti]
			if int(in.tgt)+len(t) > StackSize {
				goto fallback
			}
			copy(stack[in.tgt:], t)

		case opEmitRecord:
			c := &dp.calls[in.tgt]
			base, size := int(in.imm>>32), int(uint32(in.imm))
			if c.pb == nil || base < 0 || size <= 0 || base+size > StackSize {
				goto fallback
			}
			c.pb.Emit(ctx.CPU, ctx.NowNs, stack[base:base+size])
			regs[R0] = 0

		case opMapLookupFast:
			c := &dp.calls[in.tgt]
			key := regs[in.src&regIdxMask]
			if in.size&mapKeyImm != 0 {
				key = in.imm
			}
			var v uint64
			if c.hm != nil {
				v, _ = c.hm.Lookup(key)
			} else if c.m != nil {
				v, _ = c.m.Lookup(key)
			} else {
				goto fallback
			}
			regs[R0] = v
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = v
			} else {
				regs[in.dst&regIdxMask] += v
			}

		case opMapExistFast:
			c := &dp.calls[in.tgt]
			key := regs[in.src&regIdxMask]
			if in.size&mapKeyImm != 0 {
				key = in.imm
			}
			var ok bool
			if c.hm != nil {
				_, ok = c.hm.Lookup(key)
			} else if c.m != nil {
				_, ok = c.m.Lookup(key)
			} else {
				goto fallback
			}
			var v uint64
			if ok {
				v = 1
			}
			regs[R0] = v
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = v
			} else {
				regs[in.dst&regIdxMask] += v
			}

		case opMapDeleteFast:
			c := &dp.calls[in.tgt]
			key := regs[in.src&regIdxMask]
			if in.size&mapKeyImm != 0 {
				key = in.imm
			}
			if c.hm != nil {
				c.hm.Delete(key)
			} else if c.m != nil {
				c.m.Delete(key)
			} else {
				goto fallback
			}
			regs[R0] = 0
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = 0
			}

		case opMapUpdateFast:
			c := &dp.calls[in.tgt]
			key, val := regs[in.src&regIdxMask], regs[in.dst&regIdxMask]
			if in.size&mapKeyImm != 0 {
				key = in.imm
			} else if in.size&mapValImm != 0 {
				val = in.imm
			}
			var err error
			if c.hm != nil {
				err = c.hm.Update(key, val)
			} else if c.m != nil {
				err = c.m.Update(key, val)
			} else {
				goto fallback
			}
			if err != nil {
				regs[R0] = ^uint64(0)
			} else {
				regs[R0] = 0
			}

		case opProbeReadFast:
			base, size := int(in.tgt), int(in.imm)
			if base < 0 || size <= 0 || base+size > StackSize {
				goto fallback
			}
			dst := stack[base : base+size]
			var v uint64
			if ctx.Mem == nil {
				zero(dst)
				v = 1
			} else if rerr := ctx.Mem.ReadInto(umem.Addr(regs[in.src&regIdxMask]), dst); rerr != nil {
				zero(dst)
				v = 1
			}
			regs[R0] = v
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = v
			} else {
				regs[in.dst&regIdxMask] += v
			}

		case opProbeReadStrFast:
			base, size := int(in.tgt), int(in.imm)
			if base < 0 || size <= 0 || base+size > StackSize {
				goto fallback
			}
			dst := stack[base : base+size]
			zero(dst)
			var v uint64
			if ctx.Mem == nil {
				v = math.MaxUint64
			} else if n, rerr := ctx.Mem.ReadCStringInto(umem.Addr(regs[in.src&regIdxMask]), dst[:len(dst)-1]); rerr != nil {
				v = math.MaxUint64
			} else {
				v = uint64(n)
			}
			regs[R0] = v
			if in.size&resFwdAdd == 0 {
				regs[in.dst&regIdxMask] = v
			} else {
				regs[in.dst&regIdxMask] += v
			}

		default:
			return fmt.Errorf("invalid opcode in fused run at pc %d", in.pc)
		}
		continue

	fallback:
		// A tier-1 pattern guard failed before any side effect: execute
		// the original tier-0 ops the pattern covers. Tier-0 ops contain
		// no pattern opcodes, so the recursion is at most one level deep.
		if err := vm.execFallback(in, dp, regs, stack, ctx); err != nil {
			return err
		}
	}
	return nil
}

// execFallback runs the tier-0 constituent range of a pattern op whose
// guard failed.
func (vm *VM) execFallback(in *dop, dp *decodedProgram, regs *[decodedRegs]uint64, stack []byte, ctx *ExecContext) error {
	lo, hi := int(in.pc), int(in.pc)+int(in.w)
	if lo < 0 || hi > len(dp.ops) || lo >= hi {
		return fmt.Errorf("invalid pattern fallback range [%d,%d) at pc %d", lo, hi, in.pc)
	}
	return vm.execRun(dp.ops[lo:hi], dp, regs, stack, ctx)
}

// callDecoded dispatches a helper call whose map argument (if any) was
// bound at decode time.
func (vm *VM) callDecoded(in *dcall, regs *[decodedRegs]uint64, stack []byte, ctx *ExecContext) error {
	h := in.helper
	stackSlice := func(ptr, size uint64) ([]byte, error) {
		idx := int64(ptr)
		if idx < 0 || idx+int64(size) > StackSize {
			return nil, fmt.Errorf("%v: stack range [%d,+%d) invalid", h, idx, size)
		}
		return stack[idx : idx+int64(size)], nil
	}

	switch h {
	case HelperMapLookup:
		v, _ := in.m.Lookup(regs[R2])
		regs[R0] = v
	case HelperMapLookupExist:
		if _, ok := in.m.Lookup(regs[R2]); ok {
			regs[R0] = 1
		} else {
			regs[R0] = 0
		}
	case HelperMapUpdate:
		if err := in.m.Update(regs[R2], regs[R3]); err != nil {
			regs[R0] = ^uint64(0)
		} else {
			regs[R0] = 0
		}
	case HelperMapDelete:
		in.m.Delete(regs[R2])
		regs[R0] = 0
	case HelperProbeRead:
		dst, err := stackSlice(regs[R1], regs[R2])
		if err != nil {
			return err
		}
		if ctx.Mem == nil {
			zero(dst)
			regs[R0] = 1
			return nil
		}
		if rerr := ctx.Mem.ReadInto(umem.Addr(regs[R3]), dst); rerr != nil {
			zero(dst)
			regs[R0] = 1
			return nil
		}
		regs[R0] = 0
	case HelperProbeReadStr:
		dst, err := stackSlice(regs[R1], regs[R2])
		if err != nil {
			return err
		}
		zero(dst)
		if ctx.Mem == nil {
			regs[R0] = math.MaxUint64
			return nil
		}
		n, rerr := ctx.Mem.ReadCStringInto(umem.Addr(regs[R3]), dst[:len(dst)-1])
		if rerr != nil {
			regs[R0] = math.MaxUint64
			return nil
		}
		regs[R0] = uint64(n)
	case HelperPerfOutput:
		src, err := stackSlice(regs[R2], regs[R3])
		if err != nil {
			return err
		}
		in.pb.Emit(ctx.CPU, ctx.NowNs, src)
		regs[R0] = 0
	case HelperKtimeGetNs:
		regs[R0] = uint64(ctx.NowNs)
	case HelperGetCurrentPid:
		regs[R0] = uint64(ctx.PID)
	case HelperGetSmpProcID:
		regs[R0] = uint64(ctx.CPU)
	default:
		return fmt.Errorf("unknown helper %d", int64(h))
	}
	return nil
}

// RunInterpreted executes p through the raw reference interpreter,
// re-resolving operands on every retire. It is the semantic baseline the
// decoded dispatch is tested and benchmarked against.
func (vm *VM) RunInterpreted(p *Program, ctx *ExecContext) (ExecResult, error) {
	if !p.verified {
		panic(fmt.Sprintf("ebpf: running unverified program %q", p.Name))
	}
	var regs [NumRegs]uint64
	var stack [StackSize]byte
	// r10 is modeled as the index just past the stack top; stack addresses
	// are (r10 value + negative offset). We keep r10 = StackSize so that
	// effective indexes are val+off directly.
	regs[R10] = StackSize
	regs[R1] = 0 // context pointer is symbolic; loads go through OpLdxCtx

	insns := 0
	pc := 0
	for {
		if pc < 0 || pc >= len(p.Insns) {
			return ExecResult{}, fmt.Errorf("ebpf: %q pc %d out of range", p.Name, pc)
		}
		in := p.Insns[pc]
		insns++
		if insns > MaxInsns*2 {
			return ExecResult{}, fmt.Errorf("ebpf: %q exceeded instruction budget", p.Name)
		}
		switch in.Op {
		case OpMovImm:
			regs[in.Dst] = uint64(in.Imm)
		case OpMovReg:
			regs[in.Dst] = regs[in.Src]
		case OpAddImm:
			regs[in.Dst] += uint64(in.Imm)
		case OpAddReg:
			regs[in.Dst] += regs[in.Src]
		case OpSubImm:
			regs[in.Dst] -= uint64(in.Imm)
		case OpSubReg:
			regs[in.Dst] -= regs[in.Src]
		case OpMulImm:
			regs[in.Dst] *= uint64(in.Imm)
		case OpMulReg:
			regs[in.Dst] *= regs[in.Src]
		case OpDivImm:
			regs[in.Dst] = safeDiv(regs[in.Dst], uint64(in.Imm))
		case OpDivReg:
			regs[in.Dst] = safeDiv(regs[in.Dst], regs[in.Src])
		case OpModImm:
			regs[in.Dst] = safeMod(regs[in.Dst], uint64(in.Imm))
		case OpModReg:
			regs[in.Dst] = safeMod(regs[in.Dst], regs[in.Src])
		case OpAndImm:
			regs[in.Dst] &= uint64(in.Imm)
		case OpAndReg:
			regs[in.Dst] &= regs[in.Src]
		case OpOrImm:
			regs[in.Dst] |= uint64(in.Imm)
		case OpOrReg:
			regs[in.Dst] |= regs[in.Src]
		case OpXorImm:
			regs[in.Dst] ^= uint64(in.Imm)
		case OpXorReg:
			regs[in.Dst] ^= regs[in.Src]
		case OpLshImm:
			regs[in.Dst] <<= uint64(in.Imm) & 63
		case OpRshImm:
			regs[in.Dst] >>= uint64(in.Imm) & 63
		case OpNeg:
			regs[in.Dst] = -regs[in.Dst]

		case OpLdxCtx:
			w := int(in.Off / 8)
			if w < 0 || w >= len(ctx.Words) {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] = ctx.Words[w]
			}

		case OpLdxStack:
			idx := int64(regs[in.Src]) + int64(in.Off)
			if idx < 0 || idx+int64(in.Size) > StackSize {
				return ExecResult{}, fmt.Errorf("ebpf: %q stack read oob at pc %d", p.Name, pc)
			}
			regs[in.Dst] = loadSized(stack[idx:], in.Size)

		case OpStxStack:
			idx := int64(regs[in.Dst]) + int64(in.Off)
			if idx < 0 || idx+int64(in.Size) > StackSize {
				return ExecResult{}, fmt.Errorf("ebpf: %q stack write oob at pc %d", p.Name, pc)
			}
			storeSized(stack[idx:], in.Size, regs[in.Src])

		case OpStImmStack:
			idx := int64(regs[in.Dst]) + int64(in.Off)
			if idx < 0 || idx+int64(in.Size) > StackSize {
				return ExecResult{}, fmt.Errorf("ebpf: %q stack write oob at pc %d", p.Name, pc)
			}
			storeSized(stack[idx:], in.Size, uint64(in.Imm))

		case OpJa:
			pc += int(in.Off)
		case OpJeqImm:
			if regs[in.Dst] == uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJneImm:
			if regs[in.Dst] != uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJgtImm:
			if regs[in.Dst] > uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJgeImm:
			if regs[in.Dst] >= uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJltImm:
			if regs[in.Dst] < uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJleImm:
			if regs[in.Dst] <= uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJeqReg:
			if regs[in.Dst] == regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJneReg:
			if regs[in.Dst] != regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJgtReg:
			if regs[in.Dst] > regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJgeReg:
			if regs[in.Dst] >= regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJltReg:
			if regs[in.Dst] < regs[in.Src] {
				pc += int(in.Off)
			}
		case OpJleReg:
			if regs[in.Dst] <= regs[in.Src] {
				pc += int(in.Off)
			}

		case OpCall:
			if err := vm.call(HelperID(in.Imm), &regs, stack[:], ctx); err != nil {
				return ExecResult{}, fmt.Errorf("ebpf: %q pc %d: %w", p.Name, pc, err)
			}

		case OpExit:
			return ExecResult{R0: regs[R0], Insns: insns}, nil

		default:
			return ExecResult{}, fmt.Errorf("ebpf: %q invalid opcode at pc %d", p.Name, pc)
		}
		// Taken jumps above adjusted pc by the displacement relative to
		// the *next* instruction, so always advance by one here.
		pc++
	}
}

func (vm *VM) call(h HelperID, regs *[NumRegs]uint64, stack []byte, ctx *ExecContext) error {
	stackSlice := func(ptr, size uint64) ([]byte, error) {
		idx := int64(ptr)
		if idx < 0 || idx+int64(size) > StackSize {
			return nil, fmt.Errorf("%v: stack range [%d,+%d) invalid", h, idx, size)
		}
		return stack[idx : idx+int64(size)], nil
	}
	getMap := func(fd uint64) (Map, error) {
		m, ok := vm.maps[int64(fd)]
		if !ok {
			return nil, fmt.Errorf("%v: bad map fd %d", h, fd)
		}
		return m, nil
	}

	switch h {
	case HelperMapLookup:
		m, err := getMap(regs[R1])
		if err != nil {
			return err
		}
		v, _ := m.Lookup(regs[R2])
		regs[R0] = v
	case HelperMapLookupExist:
		m, err := getMap(regs[R1])
		if err != nil {
			return err
		}
		if _, ok := m.Lookup(regs[R2]); ok {
			regs[R0] = 1
		} else {
			regs[R0] = 0
		}
	case HelperMapUpdate:
		m, err := getMap(regs[R1])
		if err != nil {
			return err
		}
		if err := m.Update(regs[R2], regs[R3]); err != nil {
			regs[R0] = ^uint64(0)
		} else {
			regs[R0] = 0
		}
	case HelperMapDelete:
		m, err := getMap(regs[R1])
		if err != nil {
			return err
		}
		m.Delete(regs[R2])
		regs[R0] = 0
	case HelperProbeRead:
		dst, err := stackSlice(regs[R1], regs[R2])
		if err != nil {
			return err
		}
		if ctx.Mem == nil {
			zero(dst)
			regs[R0] = 1
			return nil
		}
		if rerr := ctx.Mem.ReadInto(umem.Addr(regs[R3]), dst); rerr != nil {
			zero(dst)
			regs[R0] = 1
			return nil
		}
		regs[R0] = 0
	case HelperProbeReadStr:
		dst, err := stackSlice(regs[R1], regs[R2])
		if err != nil {
			return err
		}
		zero(dst)
		if ctx.Mem == nil {
			regs[R0] = math.MaxUint64
			return nil
		}
		n, rerr := ctx.Mem.ReadCStringInto(umem.Addr(regs[R3]), dst[:len(dst)-1])
		if rerr != nil {
			regs[R0] = math.MaxUint64
			return nil
		}
		regs[R0] = uint64(n)
	case HelperPerfOutput:
		m, err := getMap(regs[R1])
		if err != nil {
			return err
		}
		pb, ok := m.(*PerfBuffer)
		if !ok {
			return fmt.Errorf("%v: fd %d is not a perf buffer", h, regs[R1])
		}
		src, err := stackSlice(regs[R2], regs[R3])
		if err != nil {
			return err
		}
		pb.Emit(ctx.CPU, ctx.NowNs, src)
		regs[R0] = 0
	case HelperKtimeGetNs:
		regs[R0] = uint64(ctx.NowNs)
	case HelperGetCurrentPid:
		regs[R0] = uint64(ctx.PID)
	case HelperGetSmpProcID:
		regs[R0] = uint64(ctx.CPU)
	default:
		return fmt.Errorf("unknown helper %d", int64(h))
	}
	return nil
}

func safeDiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func safeMod(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return a % b
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func loadSized(b []byte, size uint8) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeSized(b []byte, size uint8, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}
