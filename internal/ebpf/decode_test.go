package ebpf

import (
	"reflect"
	"testing"

	"github.com/tracesynth/rostracer/internal/umem"
)

// Decoded-dispatch equivalence: the same program run through the raw
// reference interpreter and through the pre-resolved form must produce the
// same ExecResult (including the retired-instruction count the overhead
// accounting depends on) and leave identical map state behind.

// equivFixture is one independently constructed program + map world.
type equivFixture struct {
	prog *Program
	hash *HashMap
	arr  *ArrayMap
	pb   *PerfBuffer
	maps map[int64]Map
}

func newEquivFixture(t *testing.T, build func() *Program, ctxWords int) *equivFixture {
	t.Helper()
	f := &equivFixture{
		hash: NewHashMap("h", 64),
		arr:  NewArrayMap("a", 8),
		pb:   NewPerfBuffer("pb", 0),
		prog: build(),
	}
	f.maps = map[int64]Map{3: f.hash, 4: f.pb, 5: f.arr}
	f.hash.Update(10, 111)
	f.hash.Update(11, 222)
	f.arr.Update(2, 333)
	mustVerify(t, f.prog, ctxWords, f.maps)
	return f
}

func (f *equivFixture) mapState() (hash map[uint64]uint64, arr []uint64, recs []PerfRecord) {
	hash = make(map[uint64]uint64)
	for _, k := range f.hash.Keys() {
		v, _ := f.hash.Lookup(k)
		hash[k] = v
	}
	for k := uint64(0); k < 8; k++ {
		v, _ := f.arr.Lookup(k)
		arr = append(arr, v)
	}
	recs = f.pb.Drain()
	return hash, arr, recs
}

// runEquiv runs build three times — raw, tier-0 decoded, and tier-1
// reoptimized — against every ctx and compares results and final map
// state across all three dispatch forms.
func runEquiv(t *testing.T, name string, build func() *Program, ctxWords int, ctxs []*ExecContext) {
	t.Helper()
	raw := newEquivFixture(t, build, ctxWords)
	fixtures := map[string]*equivFixture{
		"tier0": newEquivFixture(t, build, ctxWords),
		"tier1": newEquivFixture(t, build, ctxWords),
	}
	for tier, f := range fixtures {
		maps := f.maps
		if err := decode(f.prog, func(fd int64) Map { return maps[fd] }, 0); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		dp := f.prog.dp.Load()
		if dp == nil {
			t.Fatalf("%s: program not decoded", name)
		}
		if tier == "tier1" {
			f.prog.dp.Store(reoptimize(dp, false))
			if f.prog.DecodeTier() != 1 {
				t.Fatalf("%s: program not reoptimized", name)
			}
		}
	}

	rawVM := NewVM(raw.maps)
	vms := map[string]*VM{"tier0": NewVM(fixtures["tier0"].maps), "tier1": NewVM(fixtures["tier1"].maps)}
	for i, ctx := range ctxs {
		rres, rerr := rawVM.RunInterpreted(raw.prog, ctx)
		for tier, f := range fixtures {
			ctx2 := *ctx // each decoded run gets its own copy
			dres, derr := vms[tier].Run(f.prog, &ctx2)
			if (rerr == nil) != (derr == nil) {
				t.Fatalf("%s ctx %d: raw err %v, %s err %v", name, i, rerr, tier, derr)
			}
			if rres != dres {
				t.Fatalf("%s ctx %d: raw %+v, %s %+v", name, i, rres, tier, dres)
			}
		}
	}
	rh, ra, rr := raw.mapState()
	for tier, f := range fixtures {
		dh, da, dr := f.mapState()
		if !reflect.DeepEqual(rh, dh) {
			t.Fatalf("%s: hash state diverged: raw %v, %s %v", name, rh, tier, dh)
		}
		if !reflect.DeepEqual(ra, da) {
			t.Fatalf("%s: array state diverged: raw %v, %s %v", name, ra, tier, da)
		}
		if !reflect.DeepEqual(rr, dr) {
			t.Fatalf("%s: perf records diverged: raw %v, %s %v", name, rr, tier, dr)
		}
	}
}

// aluJumpProg exercises every ALU form, both jump polarities, shift
// masking, signed immediates, and division by zero.
func aluJumpProg() *Program {
	return NewAssembler("alu_jump").
		LdxCtx(R6, R1, 0).
		MovImm(R0, 10).
		AddImm(R0, -3). // signed immediate widening
		MovImm(R2, 7).
		MulImm(R2, 6).
		AddReg(R0, R2).
		SubImm(R0, 1).
		SubReg(R0, R2).
		DivImm(R0, 0). // div by zero -> 0
		AddReg(R0, R6).
		ModImm(R0, 97).
		AndImm(R0, 0xffff).
		OrImm(R0, 0x100).
		XorReg(R0, R2).
		LshImm(R0, 65). // masked to 1
		RshImm(R0, 2).
		JgtImm(R6, 100, "big").
		AddImm(R0, 1000). // small path
		Ja("join").
		Label("big").
		AddImm(R0, 2000).
		Label("join").
		JneReg(R0, R6, "done").
		MovImm(R0, 0).
		Label("done").
		Exit().
		MustAssemble()
}

// helperProg exercises every helper with decode-bound maps: update,
// lookup, exist, delete, probe_read, probe_read_str, perf_event_output,
// ktime, pid, cpu.
func helperProg() *Program {
	return NewAssembler("helpers").
		LdxCtx(R6, R1, 0). // value to store
		LdxCtx(R7, R1, 1). // address to probe_read
		// h[10] = ctx[0]
		MovImm(R1, 3).
		MovImm(R2, 10).
		MovReg(R3, R6).
		Call(HelperMapUpdate).
		// r8 = h[10]
		MovImm(R1, 3).
		MovImm(R2, 10).
		Call(HelperMapLookup).
		MovReg(R8, R0).
		// r8 += exists(h[99])
		MovImm(R1, 3).
		MovImm(R2, 99).
		Call(HelperMapLookupExist).
		AddReg(R8, R0).
		// delete h[11]
		MovImm(R1, 3).
		MovImm(R2, 11).
		Call(HelperMapDelete).
		// a[2] += nothing; read array a[2] into r8
		MovImm(R1, 5).
		MovImm(R2, 2).
		Call(HelperMapLookup).
		AddReg(R8, R0).
		// probe_read 8 bytes from ctx[1] into fp-16
		MovReg(R1, R10).
		SubImm(R1, 16).
		MovImm(R2, 8).
		MovReg(R3, R7).
		Call(HelperProbeRead).
		AddReg(R8, R0). // fault flag folds into result
		LdxStack(R4, R10, -16, 8).
		AddReg(R8, R4).
		// probe_read_str up to 15+NUL bytes from ctx[1] into fp-32
		MovReg(R1, R10).
		SubImm(R1, 32).
		MovImm(R2, 16).
		MovReg(R3, R7).
		Call(HelperProbeReadStr).
		AddReg(R8, R0). // returned length
		// perf_event_output the probe_read bytes
		StImmStack(R10, -40, 0x1122334455667788, 8).
		MovImm(R1, 4).
		MovReg(R2, R10).
		SubImm(R2, 40).
		MovImm(R3, 8).
		Call(HelperPerfOutput).
		// time / pid / cpu
		Call(HelperKtimeGetNs).
		AddReg(R8, R0).
		Call(HelperGetCurrentPid).
		AddReg(R8, R0).
		Call(HelperGetSmpProcID).
		AddReg(R8, R0).
		MovReg(R0, R8).
		Exit().
		MustAssemble()
}

func equivSpace() (*umem.Space, uint64) {
	sp := umem.NewSpace(1)
	addr := sp.AllocBytes([]byte("decoded-vs-raw!\x00extra"))
	return sp, uint64(addr)
}

func TestDecodedEquivalenceALU(t *testing.T) {
	ctxs := []*ExecContext{
		{Words: []uint64{0}},
		{Words: []uint64{55}},
		{Words: []uint64{101}},     // takes the "big" branch
		{Words: []uint64{1 << 40}}, // large word
		{},                         // missing ctx words read as zero
	}
	runEquiv(t, "alu_jump", aluJumpProg, 1, ctxs)
}

func TestDecodedEquivalenceHelpers(t *testing.T) {
	sp, addr := equivSpace()
	ctxs := []*ExecContext{
		{PID: 42, CPU: 1, NowNs: 1111, Words: []uint64{7, addr}, Mem: sp},
		{PID: 43, CPU: 0, NowNs: 2222, Words: []uint64{9, addr + 4}, Mem: sp},
		{PID: 44, CPU: 3, NowNs: 3333, Words: []uint64{1, 0xdead_0000}, Mem: sp}, // faulting address
		{PID: 45, CPU: 2, NowNs: 4444, Words: []uint64{2, addr}},                 // nil Mem
	}
	runEquiv(t, "helpers", helperProg, 2, ctxs)
}

// TestDecodeBindsMaps checks the decoder resolved every map call site.
func TestDecodeBindsMaps(t *testing.T) {
	f := newEquivFixture(t, helperProg, 2)
	if err := decode(f.prog, func(fd int64) Map { return f.maps[fd] }, 0); err != nil {
		t.Fatal(err)
	}
	calls := f.prog.dp.Load().calls
	bound := 0
	for _, c := range calls {
		if c.m != nil {
			bound++
		}
	}
	if bound != 6 { // update, lookup, exist, delete, array lookup, perf output
		t.Fatalf("bound %d map call sites, want 6", bound)
	}
	for i, c := range calls {
		if c.helper == HelperPerfOutput && c.pb == nil {
			t.Fatalf("perf output call %d not bound to a perf buffer", i)
		}
	}
}

// TestRuntimeLoadDecodes checks Load produces the decoded form by default
// and honors SetPredecode(false).
func TestRuntimeLoadDecodes(t *testing.T) {
	build := func() (*Runtime, *Program) {
		rt := NewRuntime(nil, nil)
		pb := NewPerfBuffer("pb", 0)
		fd := rt.RegisterMap(pb)
		p := NewAssembler("emit").
			StImmStack(R10, -8, 1, 8).
			MovImm(R1, fd).
			MovReg(R2, R10).
			SubImm(R2, 8).
			MovImm(R3, 8).
			Call(HelperPerfOutput).
			MovImm(R0, 0).
			Exit().
			MustAssemble()
		return rt, p
	}

	rt, p := build()
	if err := rt.Load(p, 1); err != nil {
		t.Fatal(err)
	}
	if p.DecodeTier() != 0 {
		t.Fatal("Load did not decode the program")
	}

	rt2, p2 := build()
	rt2.SetPredecode(false)
	if err := rt2.Load(p2, 1); err != nil {
		t.Fatal(err)
	}
	if p2.DecodeTier() != -1 {
		t.Fatal("SetPredecode(false) still decoded the program")
	}
}

// TestFireNoAlloc checks the hot fire path performs no per-fire heap
// allocations beyond what the program itself emits.
func TestFireNoAlloc(t *testing.T) {
	rt := NewRuntime(func() int64 { return 5 }, nil)
	hm := NewHashMap("h", 16)
	fd := rt.RegisterMap(hm)
	p := NewAssembler("count").
		LdxCtx(R6, R1, 0).
		MovImm(R1, fd).
		MovReg(R2, R6).
		MovImm(R3, 1).
		Call(HelperMapUpdate).
		MovImm(R0, 0).
		Exit().
		MustAssemble()
	if err := rt.Load(p, 1); err != nil {
		t.Fatal(err)
	}
	sym := Symbol{Lib: "lib", Func: "fn"}
	if _, err := rt.AttachUprobe(sym, p); err != nil {
		t.Fatal(err)
	}
	rt.FireUprobe(1, 0, sym, 1) // warm up scratch buffers and the map
	allocs := testing.AllocsPerRun(100, func() {
		rt.FireUprobe(1, 0, sym, 1)
	})
	if allocs > 0 {
		t.Fatalf("FireUprobe allocates %.1f times per fire, want 0", allocs)
	}
	ret := testing.AllocsPerRun(100, func() {
		rt.FireUretprobe(1, 0, sym, 7, 1, 2)
	})
	if ret > 0 {
		t.Fatalf("FireUretprobe allocates %.1f times per fire, want 0", ret)
	}
}
