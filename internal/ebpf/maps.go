package ebpf

import "fmt"

// Map is a BPF map reachable from programs by fd. All maps in this substrate
// carry 64-bit keys and values, which is sufficient for the tracers: they
// store PIDs, callback handles and user-space addresses.
type Map interface {
	Name() string
	Lookup(key uint64) (uint64, bool)
	Update(key, value uint64) error
	Delete(key uint64)
}

// HashMap is a BPF_MAP_TYPE_HASH equivalent with a capacity bound.
type HashMap struct {
	name       string
	maxEntries int
	m          map[uint64]uint64
}

// NewHashMap creates a hash map holding at most maxEntries entries.
func NewHashMap(name string, maxEntries int) *HashMap {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &HashMap{name: name, maxEntries: maxEntries, m: make(map[uint64]uint64)}
}

// Name implements Map.
func (h *HashMap) Name() string { return h.name }

// Lookup implements Map.
func (h *HashMap) Lookup(key uint64) (uint64, bool) {
	v, ok := h.m[key]
	return v, ok
}

// Update implements Map. Inserting beyond capacity fails like the kernel's
// E2BIG.
func (h *HashMap) Update(key, value uint64) error {
	if _, exists := h.m[key]; !exists && len(h.m) >= h.maxEntries {
		return fmt.Errorf("ebpf: map %q full (%d entries)", h.name, h.maxEntries)
	}
	h.m[key] = value
	return nil
}

// Delete implements Map.
func (h *HashMap) Delete(key uint64) { delete(h.m, key) }

// Len reports the number of live entries.
func (h *HashMap) Len() int { return len(h.m) }

// Keys returns the current keys in unspecified order (user-space side
// iteration, as bpf map dump does).
func (h *HashMap) Keys() []uint64 {
	out := make([]uint64, 0, len(h.m))
	for k := range h.m {
		out = append(out, k)
	}
	return out
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY equivalent: fixed-size, zero-initialized.
type ArrayMap struct {
	name string
	vals []uint64
}

// NewArrayMap creates an array map with n slots.
func NewArrayMap(name string, n int) *ArrayMap {
	return &ArrayMap{name: name, vals: make([]uint64, n)}
}

// Name implements Map.
func (a *ArrayMap) Name() string { return a.name }

// Lookup implements Map; out-of-range keys miss.
func (a *ArrayMap) Lookup(key uint64) (uint64, bool) {
	if key >= uint64(len(a.vals)) {
		return 0, false
	}
	return a.vals[key], true
}

// Update implements Map.
func (a *ArrayMap) Update(key, value uint64) error {
	if key >= uint64(len(a.vals)) {
		return fmt.Errorf("ebpf: array map %q index %d out of range", a.name, key)
	}
	a.vals[key] = value
	return nil
}

// Delete implements Map: array entries are zeroed, not removed.
func (a *ArrayMap) Delete(key uint64) {
	if key < uint64(len(a.vals)) {
		a.vals[key] = 0
	}
}

// PerfRecord is one record emitted through perf_event_output.
type PerfRecord struct {
	CPU  int
	Time int64  // virtual ns at emission
	Seq  uint64 // global emission order (see SharedSeq)
	Data []byte
}

// PerfBuffer is a BPF_MAP_TYPE_PERF_EVENT_ARRAY equivalent. Programs write
// records; the user-space tracer drains them. A capacity bound models real
// ring-buffer overruns: records beyond it are counted as lost.
type PerfBuffer struct {
	name     string
	capacity int
	seq      *uint64 // shared emission counter; may be nil
	records  []PerfRecord
	lost     uint64
	bytes    uint64
}

// NewPerfBuffer creates a perf buffer holding at most capacity undrained
// records (0 means unbounded).
func NewPerfBuffer(name string, capacity int) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity}
}

// NewPerfBufferSeq creates a perf buffer whose records are stamped from a
// shared emission counter. Buffers sharing one counter produce records
// whose Seq values define a global order even for identical timestamps,
// which the trace merger relies on.
func NewPerfBufferSeq(name string, capacity int, seq *uint64) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity, seq: seq}
}

// Name implements Map.
func (p *PerfBuffer) Name() string { return p.name }

// Lookup implements Map; perf buffers are not lookupable from programs.
func (p *PerfBuffer) Lookup(uint64) (uint64, bool) { return 0, false }

// Update implements Map; direct updates are invalid.
func (p *PerfBuffer) Update(uint64, uint64) error {
	return fmt.Errorf("ebpf: perf buffer %q does not support update", p.name)
}

// Delete implements Map; no-op.
func (p *PerfBuffer) Delete(uint64) {}

// Emit appends a record (called by the perf_event_output helper).
func (p *PerfBuffer) Emit(cpu int, now int64, data []byte) {
	if p.capacity > 0 && len(p.records) >= p.capacity {
		p.lost++
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	rec := PerfRecord{CPU: cpu, Time: now, Data: cp}
	if p.seq != nil {
		rec.Seq = *p.seq
		*p.seq++
	}
	p.records = append(p.records, rec)
	p.bytes += uint64(len(data))
}

// Drain returns and clears the pending records.
func (p *PerfBuffer) Drain() []PerfRecord {
	out := p.records
	p.records = nil
	return out
}

// Lost reports how many records were dropped due to capacity.
func (p *PerfBuffer) Lost() uint64 { return p.lost }

// Bytes reports the cumulative payload bytes emitted (drained or not);
// the overhead experiment uses it as the trace-volume measure.
func (p *PerfBuffer) Bytes() uint64 { return p.bytes }

// Pending reports the number of undrained records.
func (p *PerfBuffer) Pending() int { return len(p.records) }
