package ebpf

import "fmt"

// Map is a BPF map reachable from programs by fd. All maps in this substrate
// carry 64-bit keys and values, which is sufficient for the tracers: they
// store PIDs, callback handles and user-space addresses.
type Map interface {
	Name() string
	Lookup(key uint64) (uint64, bool)
	Update(key, value uint64) error
	Delete(key uint64)
}

// HashMap is a BPF_MAP_TYPE_HASH equivalent with a capacity bound. It is
// an open-addressing table with linear probing and fibonacci hashing,
// purpose-built for the probe hot path: uint64 keys and values only, no
// interface boxing, and roughly a third of the per-op cost of a general
// Go map for the small integer keys the tracers use (PIDs, callback
// handles, user-space addresses).
type HashMap struct {
	name       string
	maxEntries int

	n     int // live entries
	tombs int // tombstones
	mask  uint64
	meta  []uint8 // slotEmpty, slotLive or slotTomb
	keys  []uint64
	vals  []uint64
}

const (
	slotEmpty uint8 = iota
	slotLive
	slotTomb
)

const hashMapMinSlots = 16

// NewHashMap creates a hash map holding at most maxEntries entries.
func NewHashMap(name string, maxEntries int) *HashMap {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	h := &HashMap{name: name, maxEntries: maxEntries}
	h.rehash(hashMapMinSlots)
	return h
}

// hashKey is fibonacci (multiplicative) hashing; the high bits are well
// mixed, and the mask keeps slot counts a power of two.
func hashKey(k uint64) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> 17
}

func (h *HashMap) rehash(slots int) {
	oldMeta, oldKeys, oldVals := h.meta, h.keys, h.vals
	h.meta = make([]uint8, slots)
	h.keys = make([]uint64, slots)
	h.vals = make([]uint64, slots)
	h.mask = uint64(slots - 1)
	h.tombs = 0
	for i, m := range oldMeta {
		if m != slotLive {
			continue
		}
		idx := hashKey(oldKeys[i]) & h.mask
		for h.meta[idx] == slotLive {
			idx = (idx + 1) & h.mask
		}
		h.meta[idx] = slotLive
		h.keys[idx] = oldKeys[i]
		h.vals[idx] = oldVals[i]
	}
}

// Name implements Map.
func (h *HashMap) Name() string { return h.name }

// Lookup implements Map.
func (h *HashMap) Lookup(key uint64) (uint64, bool) {
	idx := hashKey(key) & h.mask
	for {
		switch h.meta[idx] {
		case slotEmpty:
			return 0, false
		case slotLive:
			if h.keys[idx] == key {
				return h.vals[idx], true
			}
		}
		idx = (idx + 1) & h.mask
	}
}

// Update implements Map. Inserting beyond capacity fails like the kernel's
// E2BIG.
func (h *HashMap) Update(key, value uint64) error {
	idx := hashKey(key) & h.mask
	insert := -1
	for {
		switch h.meta[idx] {
		case slotEmpty:
			if h.n >= h.maxEntries {
				return fmt.Errorf("ebpf: map %q full (%d entries)", h.name, h.maxEntries)
			}
			if insert < 0 {
				insert = int(idx)
			} else {
				h.tombs--
			}
			h.meta[insert] = slotLive
			h.keys[insert] = key
			h.vals[insert] = value
			h.n++
			// Keep the live+tombstone load factor below 3/4.
			if slots := len(h.meta); (h.n+h.tombs)*4 > slots*3 {
				next := slots
				if h.n*4 > slots*3 {
					next = slots * 2
				}
				h.rehash(next)
			}
			return nil
		case slotLive:
			if h.keys[idx] == key {
				h.vals[idx] = value
				return nil
			}
		case slotTomb:
			if insert < 0 {
				insert = int(idx)
			}
		}
		idx = (idx + 1) & h.mask
	}
}

// Delete implements Map.
func (h *HashMap) Delete(key uint64) {
	idx := hashKey(key) & h.mask
	for {
		switch h.meta[idx] {
		case slotEmpty:
			return
		case slotLive:
			if h.keys[idx] == key {
				h.meta[idx] = slotTomb
				h.n--
				h.tombs++
				return
			}
		}
		idx = (idx + 1) & h.mask
	}
}

// Len reports the number of live entries.
func (h *HashMap) Len() int { return h.n }

// Keys returns the current keys in slot order (user-space side iteration,
// as bpf map dump does).
func (h *HashMap) Keys() []uint64 {
	out := make([]uint64, 0, h.n)
	for i, m := range h.meta {
		if m == slotLive {
			out = append(out, h.keys[i])
		}
	}
	return out
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY equivalent: fixed-size, zero-initialized.
type ArrayMap struct {
	name string
	vals []uint64
}

// NewArrayMap creates an array map with n slots.
func NewArrayMap(name string, n int) *ArrayMap {
	return &ArrayMap{name: name, vals: make([]uint64, n)}
}

// Name implements Map.
func (a *ArrayMap) Name() string { return a.name }

// Lookup implements Map; out-of-range keys miss.
func (a *ArrayMap) Lookup(key uint64) (uint64, bool) {
	if key >= uint64(len(a.vals)) {
		return 0, false
	}
	return a.vals[key], true
}

// Update implements Map.
func (a *ArrayMap) Update(key, value uint64) error {
	if key >= uint64(len(a.vals)) {
		return fmt.Errorf("ebpf: array map %q index %d out of range", a.name, key)
	}
	a.vals[key] = value
	return nil
}

// Delete implements Map: array entries are zeroed, not removed.
func (a *ArrayMap) Delete(key uint64) {
	if key < uint64(len(a.vals)) {
		a.vals[key] = 0
	}
}

// PerfRecord is one record emitted through perf_event_output.
type PerfRecord struct {
	CPU  int
	Time int64  // virtual ns at emission
	Seq  uint64 // global emission order (see SharedSeq)
	Data []byte
}

// PerfBuffer is a BPF_MAP_TYPE_PERF_EVENT_ARRAY equivalent. Programs write
// records; the user-space tracer drains them. A capacity bound models real
// ring-buffer overruns: records beyond it are counted as lost.
type PerfBuffer struct {
	name     string
	capacity int
	seq      *uint64 // shared emission counter; may be nil
	records  []PerfRecord
	lost     uint64
	bytes    uint64
	// arena backs record payloads in large chunks (the per-CPU scratch
	// page of a real perf ring), so Emit does not allocate per record.
	// Drained records keep pointing at their chunk; chunks are never
	// rewound, only replaced when full.
	arena []byte
	// lastDrain sizes the records slice after a drain.
	lastDrain int
}

// perfArenaChunk is the allocation granule for record payloads.
const perfArenaChunk = 64 << 10

// NewPerfBuffer creates a perf buffer holding at most capacity undrained
// records (0 means unbounded).
func NewPerfBuffer(name string, capacity int) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity}
}

// NewPerfBufferSeq creates a perf buffer whose records are stamped from a
// shared emission counter. Buffers sharing one counter produce records
// whose Seq values define a global order even for identical timestamps,
// which the trace merger relies on.
func NewPerfBufferSeq(name string, capacity int, seq *uint64) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity, seq: seq}
}

// Name implements Map.
func (p *PerfBuffer) Name() string { return p.name }

// Lookup implements Map; perf buffers are not lookupable from programs.
func (p *PerfBuffer) Lookup(uint64) (uint64, bool) { return 0, false }

// Update implements Map; direct updates are invalid.
func (p *PerfBuffer) Update(uint64, uint64) error {
	return fmt.Errorf("ebpf: perf buffer %q does not support update", p.name)
}

// Delete implements Map; no-op.
func (p *PerfBuffer) Delete(uint64) {}

// Emit appends a record (called by the perf_event_output helper).
func (p *PerfBuffer) Emit(cpu int, now int64, data []byte) {
	if p.capacity > 0 && len(p.records) >= p.capacity {
		p.lost++
		return
	}
	if p.records == nil && p.lastDrain > 0 {
		p.records = make([]PerfRecord, 0, p.lastDrain)
	}
	if cap(p.arena)-len(p.arena) < len(data) {
		size := perfArenaChunk
		if len(data) > size {
			size = len(data)
		}
		p.arena = make([]byte, 0, size)
	}
	off := len(p.arena)
	p.arena = append(p.arena, data...)
	cp := p.arena[off:len(p.arena):len(p.arena)]
	rec := PerfRecord{CPU: cpu, Time: now, Data: cp}
	if p.seq != nil {
		rec.Seq = *p.seq
		*p.seq++
	}
	p.records = append(p.records, rec)
	p.bytes += uint64(len(data))
}

// Drain returns and clears the pending records. The next Emit sizes the
// fresh record slice to the drained batch, so steady-state polling pays no
// append-growth copies.
func (p *PerfBuffer) Drain() []PerfRecord {
	out := p.records
	p.records = nil
	p.lastDrain = len(out)
	return out
}

// Lost reports how many records were dropped due to capacity.
func (p *PerfBuffer) Lost() uint64 { return p.lost }

// Bytes reports the cumulative payload bytes emitted (drained or not);
// the overhead experiment uses it as the trace-volume measure.
func (p *PerfBuffer) Bytes() uint64 { return p.bytes }

// Pending reports the number of undrained records.
func (p *PerfBuffer) Pending() int { return len(p.records) }
