package ebpf

import "fmt"

// Map is a BPF map reachable from programs by fd. All maps in this substrate
// carry 64-bit keys and values, which is sufficient for the tracers: they
// store PIDs, callback handles and user-space addresses.
type Map interface {
	Name() string
	Lookup(key uint64) (uint64, bool)
	Update(key, value uint64) error
	Delete(key uint64)
}

// HashMap is a BPF_MAP_TYPE_HASH equivalent with a capacity bound. It is
// an open-addressing table with linear probing and fibonacci hashing,
// purpose-built for the probe hot path: uint64 keys and values only, no
// interface boxing, and roughly a third of the per-op cost of a general
// Go map for the small integer keys the tracers use (PIDs, callback
// handles, user-space addresses).
type HashMap struct {
	name       string
	maxEntries int

	n     int // live entries
	tombs int // tombstones
	mask  uint64
	meta  []uint8 // slotEmpty, slotLive or slotTomb
	keys  []uint64
	vals  []uint64
}

const (
	slotEmpty uint8 = iota
	slotLive
	slotTomb
)

const hashMapMinSlots = 16

// NewHashMap creates a hash map holding at most maxEntries entries.
func NewHashMap(name string, maxEntries int) *HashMap {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	h := &HashMap{name: name, maxEntries: maxEntries}
	h.rehash(hashMapMinSlots)
	return h
}

// hashKey is fibonacci (multiplicative) hashing; the high bits are well
// mixed, and the mask keeps slot counts a power of two.
func hashKey(k uint64) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> 17
}

func (h *HashMap) rehash(slots int) {
	oldMeta, oldKeys, oldVals := h.meta, h.keys, h.vals
	h.meta = make([]uint8, slots)
	h.keys = make([]uint64, slots)
	h.vals = make([]uint64, slots)
	h.mask = uint64(slots - 1)
	h.tombs = 0
	for i, m := range oldMeta {
		if m != slotLive {
			continue
		}
		idx := hashKey(oldKeys[i]) & h.mask
		for h.meta[idx] == slotLive {
			idx = (idx + 1) & h.mask
		}
		h.meta[idx] = slotLive
		h.keys[idx] = oldKeys[i]
		h.vals[idx] = oldVals[i]
	}
}

// Name implements Map.
func (h *HashMap) Name() string { return h.name }

// Lookup implements Map.
func (h *HashMap) Lookup(key uint64) (uint64, bool) {
	idx := hashKey(key) & h.mask
	for {
		switch h.meta[idx] {
		case slotEmpty:
			return 0, false
		case slotLive:
			if h.keys[idx] == key {
				return h.vals[idx], true
			}
		}
		idx = (idx + 1) & h.mask
	}
}

// Update implements Map. Inserting beyond capacity fails like the kernel's
// E2BIG.
func (h *HashMap) Update(key, value uint64) error {
	idx := hashKey(key) & h.mask
	insert := -1
	for {
		switch h.meta[idx] {
		case slotEmpty:
			if h.n >= h.maxEntries {
				return fmt.Errorf("ebpf: map %q full (%d entries)", h.name, h.maxEntries)
			}
			if insert < 0 {
				insert = int(idx)
			} else {
				h.tombs--
			}
			h.meta[insert] = slotLive
			h.keys[insert] = key
			h.vals[insert] = value
			h.n++
			// Keep the live+tombstone load factor below 3/4.
			if slots := len(h.meta); (h.n+h.tombs)*4 > slots*3 {
				next := slots
				if h.n*4 > slots*3 {
					next = slots * 2
				}
				h.rehash(next)
			}
			return nil
		case slotLive:
			if h.keys[idx] == key {
				h.vals[idx] = value
				return nil
			}
		case slotTomb:
			if insert < 0 {
				insert = int(idx)
			}
		}
		idx = (idx + 1) & h.mask
	}
}

// Delete implements Map.
func (h *HashMap) Delete(key uint64) {
	idx := hashKey(key) & h.mask
	for {
		switch h.meta[idx] {
		case slotEmpty:
			return
		case slotLive:
			if h.keys[idx] == key {
				h.meta[idx] = slotTomb
				h.n--
				h.tombs++
				return
			}
		}
		idx = (idx + 1) & h.mask
	}
}

// Len reports the number of live entries.
func (h *HashMap) Len() int { return h.n }

// Keys returns the current keys in slot order (user-space side iteration,
// as bpf map dump does).
func (h *HashMap) Keys() []uint64 {
	out := make([]uint64, 0, h.n)
	for i, m := range h.meta {
		if m == slotLive {
			out = append(out, h.keys[i])
		}
	}
	return out
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY equivalent: fixed-size, zero-initialized.
type ArrayMap struct {
	name string
	vals []uint64
}

// NewArrayMap creates an array map with n slots.
func NewArrayMap(name string, n int) *ArrayMap {
	return &ArrayMap{name: name, vals: make([]uint64, n)}
}

// Name implements Map.
func (a *ArrayMap) Name() string { return a.name }

// Lookup implements Map; out-of-range keys miss.
func (a *ArrayMap) Lookup(key uint64) (uint64, bool) {
	if key >= uint64(len(a.vals)) {
		return 0, false
	}
	return a.vals[key], true
}

// Update implements Map.
func (a *ArrayMap) Update(key, value uint64) error {
	if key >= uint64(len(a.vals)) {
		return fmt.Errorf("ebpf: array map %q index %d out of range", a.name, key)
	}
	a.vals[key] = value
	return nil
}

// Delete implements Map: array entries are zeroed, not removed.
func (a *ArrayMap) Delete(key uint64) {
	if key < uint64(len(a.vals)) {
		a.vals[key] = 0
	}
}

// PerfRecord is one record emitted through perf_event_output.
type PerfRecord struct {
	CPU  int
	Time int64  // virtual ns at emission
	Seq  uint64 // global emission order (see SharedSeq)
	Data []byte
}

// perfRing is one per-CPU ring of a PerfBuffer, matching the per-CPU
// mmap'd pages of a real BPF_MAP_TYPE_PERF_EVENT_ARRAY: its own record
// queue, payload arena, and lost/byte counters. Exactly one simulated
// CPU produces into a ring, and the drain consumes it by swapping the
// record slice out, so neither path ever takes a lock. Like the Runtime
// that owns it, a PerfBuffer belongs to one single-threaded simulation:
// the no-lock design relies on that ownership (the ring set grows on
// first emission from a new CPU and the emission counter is plain), not
// on any cross-goroutine synchronization.
type perfRing struct {
	records []PerfRecord
	lost    uint64
	bytes   uint64
	// arena backs record payloads in large chunks (the per-CPU scratch
	// page of a real perf ring), so emit does not allocate per record.
	// Drained records keep pointing at their chunk; chunks are never
	// rewound, only replaced when full.
	arena []byte
	// lastDrain sizes the records slice after a drain.
	lastDrain int
}

// PerfBuffer is a BPF_MAP_TYPE_PERF_EVENT_ARRAY equivalent: one ring per
// CPU, allocated on first emission from that CPU. Programs write records
// to the ring of the CPU they fire on; the user-space tracer drains the
// rings merged by (Time, Seq) or one CPU at a time. A per-ring capacity
// bound models real ring-buffer overruns: records beyond it are counted
// as lost against the overrunning CPU.
type PerfBuffer struct {
	name     string
	capacity int     // per-ring record bound; 0 means unbounded
	seq      *uint64 // emission counter; shared across buffers or owned
	rings    []perfRing

	// emitFault, when set, is consulted on every emission: returning true
	// drops the record, counted lost against the emitting CPU's ring
	// exactly like a capacity overrun. It exists for deterministic fault
	// injection (forced lost records, overflow bursts) and is nil in
	// production, where Emit pays one nil check for it.
	emitFault func(cpu int) bool
}

// perfArenaChunk is the allocation granule for record payloads.
const perfArenaChunk = 64 << 10

// NewPerfBuffer creates a perf buffer whose rings each hold at most
// capacity undrained records (0 means unbounded). The buffer stamps
// records from its own emission counter, so the merged Drain reproduces
// emission order even when virtual time stands still.
func NewPerfBuffer(name string, capacity int) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity, seq: new(uint64)}
}

// NewPerfBufferSeq creates a perf buffer whose records are stamped from a
// shared emission counter. Buffers sharing one counter produce records
// whose Seq values define a global order even for identical timestamps,
// which the trace merger relies on.
func NewPerfBufferSeq(name string, capacity int, seq *uint64) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity, seq: seq}
}

// Name implements Map.
func (p *PerfBuffer) Name() string { return p.name }

// Lookup implements Map; perf buffers are not lookupable from programs.
func (p *PerfBuffer) Lookup(uint64) (uint64, bool) { return 0, false }

// Update implements Map; direct updates are invalid.
func (p *PerfBuffer) Update(uint64, uint64) error {
	return fmt.Errorf("ebpf: perf buffer %q does not support update", p.name)
}

// Delete implements Map; no-op.
func (p *PerfBuffer) Delete(uint64) {}

// ring returns the ring for cpu, growing the ring set on first emission
// from a new CPU. Negative CPUs (unpinned contexts) land on CPU 0.
func (p *PerfBuffer) ring(cpu int) (*perfRing, int) {
	if cpu < 0 {
		cpu = 0
	}
	if cpu >= len(p.rings) {
		rings := make([]perfRing, cpu+1)
		copy(rings, p.rings)
		p.rings = rings
	}
	return &p.rings[cpu], cpu
}

// SetEmitFault installs (or, with nil, removes) the per-emission fault
// hook. Drops it forces are indistinguishable from capacity overruns:
// counted in Lost/LostOnCPU, attributed to the emitting ring.
func (p *PerfBuffer) SetEmitFault(hook func(cpu int) bool) { p.emitFault = hook }

// Emit appends a record to the ring of the firing CPU (called by the
// perf_event_output helper with ctx.CPU).
func (p *PerfBuffer) Emit(cpu int, now int64, data []byte) {
	r, cpu := p.ring(cpu)
	if p.emitFault != nil && p.emitFault(cpu) {
		r.lost++
		return
	}
	if p.capacity > 0 && len(r.records) >= p.capacity {
		r.lost++
		return
	}
	if r.records == nil && r.lastDrain > 0 {
		r.records = make([]PerfRecord, 0, r.lastDrain)
	}
	if cap(r.arena)-len(r.arena) < len(data) {
		size := perfArenaChunk
		if len(data) > size {
			size = len(data)
		}
		r.arena = make([]byte, 0, size)
	}
	off := len(r.arena)
	r.arena = append(r.arena, data...)
	cp := r.arena[off:len(r.arena):len(r.arena)]
	rec := PerfRecord{CPU: cpu, Time: now, Data: cp}
	if p.seq != nil {
		rec.Seq = *p.seq
		*p.seq++
	}
	r.records = append(r.records, rec)
	r.bytes += uint64(len(data))
}

// drain swaps a ring's pending records out. The ring's next emit sizes
// the fresh record slice to the drained batch, so steady-state polling
// pays no append-growth copies.
func (r *perfRing) drain() []PerfRecord {
	out := r.records
	r.records = nil
	r.lastDrain = len(out)
	return out
}

// Drain returns and clears the pending records of every ring, merged
// into (Time, Seq) order. Each ring drains by a plain slice swap and is
// already monotonic in (Time, Seq) — virtual time never runs backwards
// and the emission counter only grows — so the rings k-way merge without
// a global sort; ties (possible only across buffers, never within one)
// resolve to the lower CPU.
func (p *PerfBuffer) Drain() []PerfRecord {
	switch len(p.rings) {
	case 0:
		return nil
	case 1:
		return p.rings[0].drain()
	}
	streams := make([][]PerfRecord, 0, len(p.rings))
	total := 0
	for i := range p.rings {
		if s := p.rings[i].drain(); len(s) > 0 {
			streams = append(streams, s)
			total += len(s)
		}
	}
	switch len(streams) {
	case 0:
		return nil
	case 1:
		return streams[0]
	}
	out := make([]PerfRecord, 0, total)
	for len(out) < total {
		best := -1
		for s := range streams {
			if len(streams[s]) == 0 {
				continue
			}
			if best < 0 || perfRecordLess(&streams[s][0], &streams[best][0]) {
				best = s
			}
		}
		out = append(out, streams[best][0])
		streams[best] = streams[best][1:]
	}
	return out
}

// DrainCPU returns and clears the pending records of one CPU's ring, in
// emission order. CPUs the buffer never saw drain empty.
func (p *PerfBuffer) DrainCPU(cpu int) []PerfRecord {
	if cpu < 0 || cpu >= len(p.rings) {
		return nil
	}
	return p.rings[cpu].drain()
}

// RecordCursor iterates one drained ring segment incrementally. The
// segment was swapped out of the ring when the cursor was created, so
// iteration never races with new emissions and its length bounds what a
// streaming consumer can ever have in flight from this ring.
type RecordCursor struct {
	recs []PerfRecord
	i    int
}

// Next returns the next record of the segment; ok is false at the end.
func (c *RecordCursor) Next() (rec PerfRecord, ok bool) {
	if c.i >= len(c.recs) {
		return PerfRecord{}, false
	}
	rec = c.recs[c.i]
	c.i++
	return rec, true
}

// Len reports how many records remain.
func (c *RecordCursor) Len() int { return len(c.recs) - c.i }

// DrainCursor drains one CPU's ring — the records emitted since the
// previous drain, its current segment — and returns a cursor over them.
// The ring's lost/byte counters are untouched: they accumulate for the
// lifetime of the buffer regardless of how records are consumed.
func (p *PerfBuffer) DrainCursor(cpu int) *RecordCursor {
	return &RecordCursor{recs: p.DrainCPU(cpu)}
}

// DrainInto drains one CPU's ring, invoking fn on every record of the
// segment in emission order. A non-nil error from fn stops the iteration
// and is returned; records not yet visited are dropped, exactly as a
// real perf poller loses its batch when the consumer fails mid-page.
func (p *PerfBuffer) DrainInto(cpu int, fn func(PerfRecord) error) error {
	for _, rec := range p.DrainCPU(cpu) {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// perfRecordLess orders records by (Time, Seq), the same key the trace
// merger uses.
func perfRecordLess(a, b *PerfRecord) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

// NumRings reports how many per-CPU rings the buffer has materialized
// (the highest emitting CPU index + 1).
func (p *PerfBuffer) NumRings() int { return len(p.rings) }

// Lost reports how many records were dropped due to per-ring capacity,
// summed over all CPUs.
func (p *PerfBuffer) Lost() uint64 {
	var n uint64
	for i := range p.rings {
		n += p.rings[i].lost
	}
	return n
}

// LostOnCPU reports records dropped on one CPU's ring.
func (p *PerfBuffer) LostOnCPU(cpu int) uint64 {
	if cpu < 0 || cpu >= len(p.rings) {
		return 0
	}
	return p.rings[cpu].lost
}

// Bytes reports the cumulative payload bytes emitted (drained or not)
// across all CPUs; the overhead experiment uses it as the trace-volume
// measure.
func (p *PerfBuffer) Bytes() uint64 {
	var n uint64
	for i := range p.rings {
		n += p.rings[i].bytes
	}
	return n
}

// BytesOnCPU reports the cumulative payload bytes emitted on one CPU.
func (p *PerfBuffer) BytesOnCPU(cpu int) uint64 {
	if cpu < 0 || cpu >= len(p.rings) {
		return 0
	}
	return p.rings[cpu].bytes
}

// Pending reports the number of undrained records across all CPUs.
func (p *PerfBuffer) Pending() int {
	n := 0
	for i := range p.rings {
		n += len(p.rings[i].records)
	}
	return n
}

// PendingOnCPU reports the number of undrained records on one CPU.
func (p *PerfBuffer) PendingOnCPU(cpu int) int {
	if cpu < 0 || cpu >= len(p.rings) {
		return 0
	}
	return len(p.rings[cpu].records)
}
