package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Map is a BPF map reachable from programs by fd. All maps in this substrate
// carry 64-bit keys and values, which is sufficient for the tracers: they
// store PIDs, callback handles and user-space addresses.
type Map interface {
	Name() string
	Lookup(key uint64) (uint64, bool)
	Update(key, value uint64) error
	Delete(key uint64)
}

// HashMap is a BPF_MAP_TYPE_HASH equivalent with a capacity bound. It is
// an open-addressing table with linear probing and fibonacci hashing,
// purpose-built for the probe hot path: uint64 keys and values only, no
// interface boxing, and roughly a third of the per-op cost of a general
// Go map for the small integer keys the tracers use (PIDs, callback
// handles, user-space addresses).
type HashMap struct {
	name       string
	maxEntries int

	n     int // live entries
	tombs int // tombstones
	mask  uint64
	meta  []uint8 // slotEmpty, slotLive or slotTomb
	keys  []uint64
	vals  []uint64
}

const (
	slotEmpty uint8 = iota
	slotLive
	slotTomb
)

const hashMapMinSlots = 16

// NewHashMap creates a hash map holding at most maxEntries entries.
func NewHashMap(name string, maxEntries int) *HashMap {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	h := &HashMap{name: name, maxEntries: maxEntries}
	h.rehash(hashMapMinSlots)
	return h
}

// hashKey is fibonacci (multiplicative) hashing; the high bits are well
// mixed, and the mask keeps slot counts a power of two.
func hashKey(k uint64) uint64 {
	return (k * 0x9e3779b97f4a7c15) >> 17
}

func (h *HashMap) rehash(slots int) {
	oldMeta, oldKeys, oldVals := h.meta, h.keys, h.vals
	h.meta = make([]uint8, slots)
	h.keys = make([]uint64, slots)
	h.vals = make([]uint64, slots)
	h.mask = uint64(slots - 1)
	h.tombs = 0
	for i, m := range oldMeta {
		if m != slotLive {
			continue
		}
		idx := hashKey(oldKeys[i]) & h.mask
		for h.meta[idx] == slotLive {
			idx = (idx + 1) & h.mask
		}
		h.meta[idx] = slotLive
		h.keys[idx] = oldKeys[i]
		h.vals[idx] = oldVals[i]
	}
}

// Name implements Map.
func (h *HashMap) Name() string { return h.name }

// Lookup implements Map. The probe loop masks indexes against the local
// slice length instead of loading h.mask, so the compiler proves every
// access in bounds and the per-probe bounds checks disappear — this is
// the hottest map path on a probe fire, consulted up to three times per
// dispatched program.
func (h *HashMap) Lookup(key uint64) (uint64, bool) {
	meta := h.meta
	if len(meta) == 0 {
		return 0, false
	}
	mask := uint64(len(meta) - 1)
	keys := h.keys[:len(meta)]
	vals := h.vals[:len(meta)]
	idx := hashKey(key)
	for {
		i := idx & mask
		switch meta[i] {
		case slotEmpty:
			return 0, false
		case slotLive:
			if keys[i] == key {
				return vals[i], true
			}
		}
		idx = i + 1
	}
}

// Update implements Map. Inserting beyond capacity fails like the kernel's
// E2BIG.
func (h *HashMap) Update(key, value uint64) error {
	meta := h.meta
	if len(meta) == 0 {
		return fmt.Errorf("ebpf: map %q has no slots", h.name)
	}
	mask := uint64(len(meta) - 1)
	keys := h.keys[:len(meta)]
	vals := h.vals[:len(meta)]
	idx := hashKey(key)
	insert := -1
	for {
		i := idx & mask
		switch meta[i] {
		case slotEmpty:
			if h.n >= h.maxEntries {
				return fmt.Errorf("ebpf: map %q full (%d entries)", h.name, h.maxEntries)
			}
			if insert < 0 {
				insert = int(i)
			} else {
				h.tombs--
			}
			ii := uint64(insert) & mask
			meta[ii] = slotLive
			keys[ii] = key
			vals[ii] = value
			h.n++
			// Keep the live+tombstone load factor below 3/4.
			if slots := len(meta); (h.n+h.tombs)*4 > slots*3 {
				next := slots
				if h.n*4 > slots*3 {
					next = slots * 2
				}
				h.rehash(next)
			}
			return nil
		case slotLive:
			if keys[i] == key {
				vals[i] = value
				return nil
			}
		case slotTomb:
			if insert < 0 {
				insert = int(i)
			}
		}
		idx = i + 1
	}
}

// Delete implements Map.
func (h *HashMap) Delete(key uint64) {
	meta := h.meta
	if len(meta) == 0 {
		return
	}
	mask := uint64(len(meta) - 1)
	keys := h.keys[:len(meta)]
	idx := hashKey(key)
	for {
		i := idx & mask
		switch meta[i] {
		case slotEmpty:
			return
		case slotLive:
			if keys[i] == key {
				meta[i] = slotTomb
				h.n--
				h.tombs++
				return
			}
		}
		idx = i + 1
	}
}

// Len reports the number of live entries.
func (h *HashMap) Len() int { return h.n }

// Keys returns the current keys in slot order (user-space side iteration,
// as bpf map dump does).
func (h *HashMap) Keys() []uint64 {
	out := make([]uint64, 0, h.n)
	for i, m := range h.meta {
		if m == slotLive {
			out = append(out, h.keys[i])
		}
	}
	return out
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY equivalent: fixed-size, zero-initialized.
type ArrayMap struct {
	name string
	vals []uint64
}

// NewArrayMap creates an array map with n slots.
func NewArrayMap(name string, n int) *ArrayMap {
	return &ArrayMap{name: name, vals: make([]uint64, n)}
}

// Name implements Map.
func (a *ArrayMap) Name() string { return a.name }

// Lookup implements Map; out-of-range keys miss.
func (a *ArrayMap) Lookup(key uint64) (uint64, bool) {
	if key >= uint64(len(a.vals)) {
		return 0, false
	}
	return a.vals[key], true
}

// Update implements Map.
func (a *ArrayMap) Update(key, value uint64) error {
	if key >= uint64(len(a.vals)) {
		return fmt.Errorf("ebpf: array map %q index %d out of range", a.name, key)
	}
	a.vals[key] = value
	return nil
}

// Delete implements Map: array entries are zeroed, not removed.
func (a *ArrayMap) Delete(key uint64) {
	if key < uint64(len(a.vals)) {
		a.vals[key] = 0
	}
}

// PerfRecord is one record emitted through perf_event_output. Data
// points into the ring's arena: records obtained from the batch drains
// (Drain, DrainCPU, DrainInto) own their chunks and may be retained
// freely, while records decoded through a streaming RecordCursor alias
// chunks that return to the ring when the cursor is released — a
// streaming consumer must finish with Data before Release.
type PerfRecord struct {
	CPU  int
	Time int64  // virtual ns at emission
	Seq  uint64 // global emission order (see SharedSeq)
	Data []byte
}

// perfRing is one per-CPU ring of a PerfBuffer, matching the per-CPU
// mmap'd pages of a real BPF_MAP_TYPE_PERF_EVENT_ARRAY. Records are
// framed directly into large arena chunks — [time u64][seq u64][len
// u32][payload], never split across a chunk boundary — the way a real
// ring writes perf_event_header + raw sample into its mmap'd pages, so
// emit allocates nothing on the steady state and a drain hands the
// chunks themselves to the consumer instead of materializing a record
// slice. A streaming consumer decodes records in place out of the
// chunks and releases them back to the ring's free list when its sink
// is done; batch consumers keep the chunks (their records' Data aliases
// them) and the ring grows fresh ones.
//
// Exactly one simulated CPU produces into a ring, and a drain consumes
// it by swapping the chunk list out, so neither path ever takes a lock.
// Like the Runtime that owns it, a PerfBuffer belongs to one
// single-threaded simulation: the no-lock design relies on that
// ownership (the ring set grows on first emission from a new CPU and
// the emission counter is plain), not on any cross-goroutine
// synchronization.
type perfRing struct {
	count int // undrained records in the current segment
	lost  uint64
	bytes uint64
	// chunks hold the current segment's framed records; the last chunk is
	// the one being filled.
	chunks [][]byte
	// free recycles chunks handed back by released streaming cursors, so
	// a steady-state drain loop reuses the same arena memory forever.
	free [][]byte
}

// perfRecHdr is the per-record frame header: time, seq, payload length.
const perfRecHdr = 8 + 8 + 4

// perfFreeChunks bounds a ring's free list; chunks beyond it fall to
// the garbage collector (only reachable after a burst far above the
// steady-state segment size).
const perfFreeChunks = 8

// newChunk returns an empty chunk with room for at least need bytes,
// recycling a released one when possible.
func (r *perfRing) newChunk(need int) []byte {
	if n := len(r.free); n > 0 {
		c := r.free[n-1]
		r.free = r.free[:n-1]
		if cap(c) >= need {
			return c[:0]
		}
	}
	size := perfArenaChunk
	if need > size {
		size = need
	}
	return make([]byte, 0, size)
}

// drainSegment swaps the ring's current segment out: the chunk list and
// its record count. The caller owns the chunks until it releases them
// (streaming) or forever (batch materialization).
func (r *perfRing) drainSegment() ([][]byte, int) {
	chunks, n := r.chunks, r.count
	r.chunks, r.count = nil, 0
	return chunks, n
}

// PerfBuffer is a BPF_MAP_TYPE_PERF_EVENT_ARRAY equivalent: one ring per
// CPU, allocated on first emission from that CPU. Programs write records
// to the ring of the CPU they fire on; the user-space tracer drains the
// rings merged by (Time, Seq) or one CPU at a time. A per-ring capacity
// bound models real ring-buffer overruns: records beyond it are counted
// as lost against the overrunning CPU.
type PerfBuffer struct {
	name     string
	capacity int     // per-ring record bound; 0 means unbounded
	seq      *uint64 // emission counter; shared across buffers or owned
	rings    []perfRing

	// emitFault, when set, is consulted on every emission: returning true
	// drops the record, counted lost against the emitting CPU's ring
	// exactly like a capacity overrun. It exists for deterministic fault
	// injection (forced lost records, overflow bursts) and is nil in
	// production, where Emit pays one nil check for it.
	emitFault func(cpu int) bool
}

// perfArenaChunk is the allocation granule for record payloads.
const perfArenaChunk = 64 << 10

// NewPerfBuffer creates a perf buffer whose rings each hold at most
// capacity undrained records (0 means unbounded). The buffer stamps
// records from its own emission counter, so the merged Drain reproduces
// emission order even when virtual time stands still.
func NewPerfBuffer(name string, capacity int) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity, seq: new(uint64)}
}

// NewPerfBufferSeq creates a perf buffer whose records are stamped from a
// shared emission counter. Buffers sharing one counter produce records
// whose Seq values define a global order even for identical timestamps,
// which the trace merger relies on.
func NewPerfBufferSeq(name string, capacity int, seq *uint64) *PerfBuffer {
	return &PerfBuffer{name: name, capacity: capacity, seq: seq}
}

// Name implements Map.
func (p *PerfBuffer) Name() string { return p.name }

// Lookup implements Map; perf buffers are not lookupable from programs.
func (p *PerfBuffer) Lookup(uint64) (uint64, bool) { return 0, false }

// Update implements Map; direct updates are invalid.
func (p *PerfBuffer) Update(uint64, uint64) error {
	return fmt.Errorf("ebpf: perf buffer %q does not support update", p.name)
}

// Delete implements Map; no-op.
func (p *PerfBuffer) Delete(uint64) {}

// ring returns the ring for cpu, growing the ring set on first emission
// from a new CPU. Negative CPUs (unpinned contexts) land on CPU 0.
func (p *PerfBuffer) ring(cpu int) (*perfRing, int) {
	if cpu < 0 {
		cpu = 0
	}
	if cpu >= len(p.rings) {
		rings := make([]perfRing, cpu+1)
		copy(rings, p.rings)
		p.rings = rings
	}
	return &p.rings[cpu], cpu
}

// SetEmitFault installs (or, with nil, removes) the per-emission fault
// hook. Drops it forces are indistinguishable from capacity overruns:
// counted in Lost/LostOnCPU, attributed to the emitting ring.
func (p *PerfBuffer) SetEmitFault(hook func(cpu int) bool) { p.emitFault = hook }

// Emit frames a record into the ring of the firing CPU (called by the
// perf_event_output helper with ctx.CPU).
func (p *PerfBuffer) Emit(cpu int, now int64, data []byte) {
	r, cpu := p.ring(cpu)
	if p.emitFault != nil && p.emitFault(cpu) {
		r.lost++
		return
	}
	if p.capacity > 0 && r.count >= p.capacity {
		r.lost++
		return
	}
	need := perfRecHdr + len(data)
	var cur []byte
	if n := len(r.chunks); n > 0 {
		cur = r.chunks[n-1]
	}
	if cap(cur)-len(cur) < need {
		cur = r.newChunk(need)
		r.chunks = append(r.chunks, cur)
	}
	off := len(cur)
	cur = cur[:off+need]
	binary.LittleEndian.PutUint64(cur[off:], uint64(now))
	var seq uint64
	if p.seq != nil {
		seq = *p.seq
		*p.seq++
	}
	binary.LittleEndian.PutUint64(cur[off+8:], seq)
	binary.LittleEndian.PutUint32(cur[off+16:], uint32(len(data)))
	copy(cur[off+perfRecHdr:], data)
	r.chunks[len(r.chunks)-1] = cur
	r.count++
	r.bytes += uint64(len(data))
}

// Drain returns and clears the pending records of every ring, merged
// into (Time, Seq) order. Each ring drains by a plain slice swap and is
// already monotonic in (Time, Seq) — virtual time never runs backwards
// and the emission counter only grows — so the rings k-way merge without
// a global sort; ties (possible only across buffers, never within one)
// resolve to the lower CPU.
func (p *PerfBuffer) Drain() []PerfRecord {
	switch len(p.rings) {
	case 0:
		return nil
	case 1:
		return p.DrainCPU(0)
	}
	streams := make([][]PerfRecord, 0, len(p.rings))
	total := 0
	for i := range p.rings {
		if s := p.DrainCPU(i); len(s) > 0 {
			streams = append(streams, s)
			total += len(s)
		}
	}
	switch len(streams) {
	case 0:
		return nil
	case 1:
		return streams[0]
	}
	out := make([]PerfRecord, 0, total)
	for len(out) < total {
		best := -1
		for s := range streams {
			if len(streams[s]) == 0 {
				continue
			}
			if best < 0 || perfRecordLess(&streams[s][0], &streams[best][0]) {
				best = s
			}
		}
		out = append(out, streams[best][0])
		streams[best] = streams[best][1:]
	}
	return out
}

// DrainCPU returns and clears the pending records of one CPU's ring, in
// emission order. CPUs the buffer never saw drain empty. The returned
// records own their arena chunks (the ring grows fresh ones), so batch
// consumers may retain Data indefinitely.
func (p *PerfBuffer) DrainCPU(cpu int) []PerfRecord {
	if cpu < 0 || cpu >= len(p.rings) {
		return nil
	}
	chunks, n := p.rings[cpu].drainSegment()
	if n == 0 {
		return nil
	}
	out := make([]PerfRecord, 0, n)
	c := RecordCursor{cpu: cpu, chunks: chunks, n: n}
	for {
		rec, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// RecordCursor iterates one drained ring segment, decoding each record's
// frame in place: the yielded PerfRecord's Data aliases the segment's
// arena chunk, so the streaming drain path performs no per-record copy
// or allocation. The segment was swapped out of the ring when the cursor
// was created, so iteration never races with new emissions and its
// length bounds what a streaming consumer can ever have in flight from
// this ring. Release hands the chunks back to the ring once the consumer
// is done with every Data it yielded.
type RecordCursor struct {
	ring   *perfRing // for Release; nil for detached (batch) decoding
	cpu    int
	chunks [][]byte
	n      int // records remaining
	ci     int // current chunk index
	off    int // decode offset into the current chunk
}

// Next decodes the next record of the segment; ok is false at the end.
func (c *RecordCursor) Next() (rec PerfRecord, ok bool) {
	if c.n == 0 {
		return PerfRecord{}, false
	}
	for c.off >= len(c.chunks[c.ci]) {
		c.ci++
		c.off = 0
	}
	b := c.chunks[c.ci]
	ln := int(binary.LittleEndian.Uint32(b[c.off+16:]))
	end := c.off + perfRecHdr + ln
	rec = PerfRecord{
		CPU:  c.cpu,
		Time: int64(binary.LittleEndian.Uint64(b[c.off:])),
		Seq:  binary.LittleEndian.Uint64(b[c.off+8:]),
		Data: b[c.off+perfRecHdr : end : end],
	}
	c.off = end
	c.n--
	return rec, true
}

// Len reports how many records remain.
func (c *RecordCursor) Len() int { return c.n }

// Release returns the segment's arena chunks to the ring's free list for
// the next emission burst to reuse. After Release, Data slices of
// records this cursor yielded may be overwritten; a streaming sink must
// be done with them (events decode into value fields and interned
// strings, never retaining Data — see tracers.DecodeRecord). Safe to
// call more than once and on detached cursors.
func (c *RecordCursor) Release() {
	r := c.ring
	if r == nil {
		return
	}
	c.ring = nil
	for _, ch := range c.chunks {
		if len(r.free) < perfFreeChunks {
			r.free = append(r.free, ch[:0])
		}
	}
	// Hand the chunk-list array itself back too, if the ring has not
	// started a new segment yet (the common drain-then-emit cadence).
	if r.chunks == nil && cap(c.chunks) > 0 {
		r.chunks = c.chunks[:0]
	}
	c.chunks = nil
}

// DrainCursor drains one CPU's ring — the records emitted since the
// previous drain, its current segment — and returns a cursor over them.
// The ring's lost/byte counters are untouched: they accumulate for the
// lifetime of the buffer regardless of how records are consumed.
func (p *PerfBuffer) DrainCursor(cpu int) *RecordCursor {
	c := new(RecordCursor)
	p.DrainCursorInto(c, cpu)
	return c
}

// DrainCursorInto is DrainCursor into caller-owned storage, so a drain
// loop can reuse its cursors across segments without allocating.
func (p *PerfBuffer) DrainCursorInto(c *RecordCursor, cpu int) {
	if cpu < 0 || cpu >= len(p.rings) {
		*c = RecordCursor{}
		return
	}
	r := &p.rings[cpu]
	chunks, n := r.drainSegment()
	*c = RecordCursor{ring: r, cpu: cpu, chunks: chunks, n: n}
}

// DrainInto drains one CPU's ring, invoking fn on every record of the
// segment in emission order. A non-nil error from fn stops the iteration
// and is returned; records not yet visited are dropped, exactly as a
// real perf poller loses its batch when the consumer fails mid-page.
func (p *PerfBuffer) DrainInto(cpu int, fn func(PerfRecord) error) error {
	for _, rec := range p.DrainCPU(cpu) {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// perfRecordLess orders records by (Time, Seq), the same key the trace
// merger uses.
func perfRecordLess(a, b *PerfRecord) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

// NumRings reports how many per-CPU rings the buffer has materialized
// (the highest emitting CPU index + 1).
func (p *PerfBuffer) NumRings() int { return len(p.rings) }

// Lost reports how many records were dropped due to per-ring capacity,
// summed over all CPUs.
func (p *PerfBuffer) Lost() uint64 {
	var n uint64
	for i := range p.rings {
		n += p.rings[i].lost
	}
	return n
}

// LostOnCPU reports records dropped on one CPU's ring.
func (p *PerfBuffer) LostOnCPU(cpu int) uint64 {
	if cpu < 0 || cpu >= len(p.rings) {
		return 0
	}
	return p.rings[cpu].lost
}

// Bytes reports the cumulative payload bytes emitted (drained or not)
// across all CPUs; the overhead experiment uses it as the trace-volume
// measure.
func (p *PerfBuffer) Bytes() uint64 {
	var n uint64
	for i := range p.rings {
		n += p.rings[i].bytes
	}
	return n
}

// BytesOnCPU reports the cumulative payload bytes emitted on one CPU.
func (p *PerfBuffer) BytesOnCPU(cpu int) uint64 {
	if cpu < 0 || cpu >= len(p.rings) {
		return 0
	}
	return p.rings[cpu].bytes
}

// Pending reports the number of undrained records across all CPUs.
func (p *PerfBuffer) Pending() int {
	n := 0
	for i := range p.rings {
		n += p.rings[i].count
	}
	return n
}

// PendingOnCPU reports the number of undrained records on one CPU.
func (p *PerfBuffer) PendingOnCPU(cpu int) int {
	if cpu < 0 || cpu >= len(p.rings) {
		return 0
	}
	return p.rings[cpu].count
}
