package ebpf

import "testing"

func TestEmitFaultDropsCountAsLost(t *testing.T) {
	pb := NewPerfBuffer("tr_test", 0)
	drop := false
	var hookCPUs []int
	pb.SetEmitFault(func(cpu int) bool {
		hookCPUs = append(hookCPUs, cpu)
		return drop
	})

	pb.Emit(0, 10, []byte{1})
	drop = true
	pb.Emit(0, 20, []byte{2})
	pb.Emit(1, 30, []byte{3})
	drop = false
	pb.Emit(1, 40, []byte{4})

	if got := pb.Lost(); got != 2 {
		t.Fatalf("lost = %d, want 2 forced drops", got)
	}
	if pb.LostOnCPU(0) != 1 || pb.LostOnCPU(1) != 1 {
		t.Fatalf("per-CPU lost = %d/%d, want 1/1", pb.LostOnCPU(0), pb.LostOnCPU(1))
	}
	if len(pb.DrainCPU(0)) != 1 || len(pb.DrainCPU(1)) != 1 {
		t.Fatal("surviving emissions not in the rings")
	}
	// The hook sees the resolved CPU of every emission, including ones it
	// lets through.
	if len(hookCPUs) != 4 {
		t.Fatalf("hook consulted %d times, want 4", len(hookCPUs))
	}

	// Removing the hook restores pass-through.
	pb.SetEmitFault(nil)
	pb.Emit(0, 50, []byte{5})
	if pb.Lost() != 2 || len(pb.DrainCPU(0)) != 1 {
		t.Fatal("nil hook still dropping")
	}
}

func TestEmitFaultDropsDoNotConsumeCapacity(t *testing.T) {
	pb := NewPerfBuffer("tr_cap", 2)
	n := 0
	// Drop every other emission.
	pb.SetEmitFault(func(int) bool { n++; return n%2 == 0 })
	for i := 0; i < 6; i++ {
		pb.Emit(0, int64(i), []byte{byte(i)})
	}
	// Emissions 2, 4, 6 forced lost; 1, 3 fill capacity; 5 overruns.
	if got := pb.Lost(); got != 4 {
		t.Fatalf("lost = %d, want 3 forced + 1 overrun", got)
	}
	if got := len(pb.DrainCPU(0)); got != 2 {
		t.Fatalf("ring held %d records, want capacity 2", got)
	}
}
