package ebpf

import (
	"reflect"
	"testing"
)

// Tier-2 cross-block trace tests: formation from a decisive branch
// profile, four-way dispatch equivalence (raw / tier 0 / tier 1 /
// tier 2) with bit-identical retire accounting, and the guard-corruption
// fallback to the plain branch.

// joinTraceProg branches to one of two map-updating blocks that rejoin
// before exit — the trace continuation is a real slot, not a folded
// exit. ctx word 0 selects the path (>10 takes the jump).
func joinTraceProg() *Program {
	return NewAssembler("join_trace").
		LdxCtx(R6, R1, 0).
		MovImm(R7, 5).
		JgtImm(R6, 10, "hot").
		// cold: h[20] = ctx word
		MovImm(R1, 3).
		MovImm(R2, 20).
		MovReg(R3, R6).
		Call(HelperMapUpdate).
		MovImm(R0, 1).
		Ja("end").
		Label("hot").
		// dominant: h[21] = ctx word + 5
		AddReg(R7, R6).
		MovImm(R1, 3).
		MovImm(R2, 21).
		MovReg(R3, R7).
		Call(HelperMapUpdate).
		MovImm(R0, 2).
		Label("end").
		AddImm(R0, 7).
		Exit().
		MustAssemble()
}

// exitTraceProg's branch bodies both end the program directly, so a
// dominant path folds the trace's continuation into the trace (exit
// fold).
func exitTraceProg() *Program {
	return NewAssembler("exit_trace").
		LdxCtx(R6, R1, 0).
		MovImm(R7, 1).
		JgtImm(R6, 10, "hot").
		MovImm(R0, 1).
		Exit().
		Label("hot").
		AddReg(R7, R6).
		MovReg(R0, R7).
		Exit().
		MustAssemble()
}

// warmTier2 decodes f's program at tier 0, drives it through enough
// fires to make the branch profile decisive toward hotWord's direction,
// then rolls the fixture state back to its seeded post-construction
// values so equivalence comparisons start from the same world as an
// unwarmed fixture. Only the profile survives the rollback — which is
// the point.
func warmTier2(t *testing.T, f *equivFixture, hotWord, coldWord uint64) {
	t.Helper()
	maps := f.maps
	if err := decode(f.prog, func(fd int64) Map { return maps[fd] }, 0); err != nil {
		t.Fatal(err)
	}
	vm := NewVM(f.maps)
	for i := 0; i < int(traceMinHits)*2; i++ {
		if _, err := vm.Run(f.prog, &ExecContext{Words: []uint64{hotWord}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // 4/132 cold keeps the profile decisive
		if _, err := vm.Run(f.prog, &ExecContext{Words: []uint64{coldWord}}); err != nil {
			t.Fatal(err)
		}
	}
	// Roll back map/perf state to the newEquivFixture seed.
	for _, k := range f.hash.Keys() {
		f.hash.Delete(k)
	}
	f.hash.Update(10, 111)
	f.hash.Update(11, 222)
	for k := uint64(0); k < 8; k++ {
		f.arr.Update(k, 0)
	}
	f.arr.Update(2, 333)
	f.pb.Drain()
	*f.pb.seq = 0
}

// findTrace returns the opTrace slots of the current dispatch form.
func findTrace(p *Program) []*dinsn {
	dp := p.dp.Load()
	var out []*dinsn
	for i := range dp.insns {
		if dp.insns[i].op == opTrace {
			out = append(out, &dp.insns[i])
		}
	}
	return out
}

// TestTier2TraceFormation pins the trace decode itself: a decisively
// biased branch re-fuses into an opTrace slot whose guard copies the
// jump, whose direction matches the profile, and whose fail target
// re-enters the branch slot kept in the layout.
func TestTier2TraceFormation(t *testing.T) {
	cases := []struct {
		name       string
		build      func() *Program
		hot, cold  uint64
		wantExpect bool
		wantExit   bool
	}{
		{"taken_dominant", joinTraceProg, 100, 3, true, false},
		{"fallthrough_dominant", joinTraceProg, 3, 100, false, false},
		{"taken_exit_fold", exitTraceProg, 100, 3, true, true},
		{"fallthrough_exit_fold", exitTraceProg, 3, 100, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newEquivFixture(t, tc.build, 1)
			warmTier2(t, f, tc.hot, tc.cold)
			f.prog.dp.Store(reoptimize(f.prog.dp.Load(), true))
			if got := f.prog.DecodeTier(); got != 2 {
				t.Fatalf("DecodeTier = %d, want 2", got)
			}
			traces := findTrace(f.prog)
			if len(traces) != 1 {
				t.Fatalf("formed %d traces, want 1", len(traces))
			}
			in := traces[0]
			tr := in.tr
			if tr.op != OpJgtImm || tr.dst != uint8(R6) || tr.imm != 10 {
				t.Fatalf("guard %+v does not copy the JgtImm(R6, 10) branch", tr)
			}
			if tr.expect != tc.wantExpect {
				t.Fatalf("trace expect = %v, want %v", tr.expect, tc.wantExpect)
			}
			if tr.exit != tc.wantExit {
				t.Fatalf("trace exit = %v, want %v", tr.exit, tc.wantExit)
			}
			if len(tr.runB) == 0 {
				t.Fatal("trace fused an empty dominant block")
			}
			// The fail target must be the branch slot itself, still present
			// in the compacted layout.
			dp := f.prog.dp.Load()
			if int(tr.failTgt) < 0 || int(tr.failTgt) >= len(dp.insns) {
				t.Fatalf("failTgt %d out of layout range %d", tr.failTgt, len(dp.insns))
			}
			if fb := &dp.insns[tr.failTgt]; fb.op != tr.op || fb.imm != tr.imm {
				t.Fatalf("failTgt slot is %+v, want the original branch", fb)
			}
			if !tr.exit {
				if int(in.tgt) < 0 || int(in.tgt) >= len(dp.insns) {
					t.Fatalf("trace continuation %d out of layout range %d", in.tgt, len(dp.insns))
				}
			}
		})
	}
}

// tier2Worlds builds the four-way fixture set: raw interpreter, tier 0,
// trace-free tier 1, and a profile-warmed tier 2. The tier-2 fixture is
// promoted through the real profile (warm fires, then reoptimize with
// traces) and must actually reach tier 2.
func tier2Worlds(t *testing.T, build func() *Program, hot, cold uint64) (*equivFixture, map[string]*equivFixture) {
	t.Helper()
	raw := newEquivFixture(t, build, 1)
	worlds := map[string]*equivFixture{
		"tier0": newEquivFixture(t, build, 1),
		"tier1": newEquivFixture(t, build, 1),
		"tier2": newEquivFixture(t, build, 1),
	}
	for tier, f := range worlds {
		if tier == "tier2" {
			warmTier2(t, f, hot, cold)
			f.prog.dp.Store(reoptimize(f.prog.dp.Load(), true))
			if f.prog.DecodeTier() != 2 {
				t.Fatalf("tier2 world stuck at tier %d", f.prog.DecodeTier())
			}
			continue
		}
		maps := f.maps
		if err := decode(f.prog, func(fd int64) Map { return maps[fd] }, 0); err != nil {
			t.Fatal(err)
		}
		if tier == "tier1" {
			f.prog.dp.Store(reoptimize(f.prog.dp.Load(), false))
		}
	}
	return raw, worlds
}

// runTier2Equiv drives every world over ctxs and demands identical
// results — including the retired-instruction count — and identical
// final map/perf state.
func runTier2Equiv(t *testing.T, raw *equivFixture, worlds map[string]*equivFixture, ctxs []*ExecContext) {
	t.Helper()
	rawVM := NewVM(raw.maps)
	for i, ctx := range ctxs {
		rres, rerr := rawVM.RunInterpreted(raw.prog, ctx)
		for tier, f := range worlds {
			ctx2 := *ctx
			res, err := NewVM(f.maps).Run(f.prog, &ctx2)
			if (rerr == nil) != (err == nil) {
				t.Fatalf("%s ctx %d: err %v, raw err %v", tier, i, err, rerr)
			}
			if res != rres {
				t.Fatalf("%s ctx %d: result %+v, raw %+v", tier, i, res, rres)
			}
		}
	}
	rh, ra, rr := raw.mapState()
	for tier, f := range worlds {
		h, a, recs := f.mapState()
		if !reflect.DeepEqual(rh, h) || !reflect.DeepEqual(ra, a) || !reflect.DeepEqual(rr, recs) {
			t.Fatalf("%s: map/perf state diverged from raw", tier)
		}
	}
}

// TestTier2Equivalence checks that a trace-carrying program produces
// raw-identical results, retire counts, and map/perf state on both the
// dominant (guard hit) and cold (guard miss) paths, across every
// dispatch tier at once.
func TestTier2Equivalence(t *testing.T) {
	words := []uint64{100, 11, 10, 3, 0, 200, 1 << 40}
	for _, tc := range []struct {
		name      string
		build     func() *Program
		hot, cold uint64
	}{
		{"join_taken", joinTraceProg, 100, 3},
		{"join_fallthrough", joinTraceProg, 3, 100},
		{"exit_taken", exitTraceProg, 100, 3},
		{"exit_fallthrough", exitTraceProg, 3, 100},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw, worlds := tier2Worlds(t, tc.build, tc.hot, tc.cold)
			var ctxs []*ExecContext
			for i, w := range words {
				ctxs = append(ctxs, &ExecContext{PID: uint32(i), NowNs: int64(i) * 10, Words: []uint64{w}})
			}
			runTier2Equiv(t, raw, worlds, ctxs)
		})
	}
}

// TestTier2GuardCorruption force-fails every trace guard — the guard
// opcode is clobbered so jumpTaken can never match expect — and demands
// the fallback through the retained branch slot still produce results,
// retire counts, and state bit-identical to the raw interpreter. This is
// the tier-2 analogue of TestTier1GuardFallback: a broken guard may cost
// speed, never correctness.
func TestTier2GuardCorruption(t *testing.T) {
	for _, tc := range []struct {
		name      string
		build     func() *Program
		hot, cold uint64
	}{
		{"join_taken", joinTraceProg, 100, 3},
		{"join_fallthrough", joinTraceProg, 3, 100},
		{"exit_taken", exitTraceProg, 100, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw, worlds := tier2Worlds(t, tc.build, tc.hot, tc.cold)
			traces := findTrace(worlds["tier2"].prog)
			if len(traces) == 0 {
				t.Fatal("no traces to corrupt")
			}
			for _, in := range traces {
				in.tr.op = OpInvalid // jumpTaken reports not-taken for unknown ops
				in.tr.expect = true  // ... so the guard can never match
			}
			var ctxs []*ExecContext
			for i, w := range []uint64{100, 3, 11, 10, 0} {
				ctxs = append(ctxs, &ExecContext{PID: uint32(i), NowNs: int64(i), Words: []uint64{w}})
			}
			runTier2Equiv(t, raw, worlds, ctxs)
		})
	}
}
