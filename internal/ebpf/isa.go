// Package ebpf implements the extended-Berkeley-Packet-Filter substrate the
// paper's tracers run on: a 64-bit register machine with a verifier, an
// interpreter, hash/array/perf-event maps, and an attachment registry for
// uprobes, uretprobes and kernel tracepoints.
//
// The instruction set is the subset of eBPF the tracing programs need:
// 64-bit ALU, forward conditional jumps (the classic eBPF termination
// guarantee), stack loads/stores, context loads, helper calls and EXIT.
// Programs are written with the Assembler, must pass Verify before they can
// be attached, and execute in the VM against a pt_regs-like context of
// argument words. Memory traversal happens exclusively through the
// probe_read helpers against a simulated user address space (package umem),
// which reproduces the paper's technique of walking rclcpp/rmw argument
// structures without instrumenting the libraries.
package ebpf

import (
	"fmt"
	"sync/atomic"
)

// Reg is a VM register. R0 holds return values, R1–R5 are helper arguments
// and are clobbered by calls, R6–R9 are callee-saved working registers, R10
// is the read-only frame pointer (top of the 512-byte stack).
type Reg uint8

// VM registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	NumRegs = 11
)

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	OpInvalid Op = iota

	// ALU64: dst = dst <op> (imm | src).
	OpMovImm
	OpMovReg
	OpAddImm
	OpAddReg
	OpSubImm
	OpSubReg
	OpMulImm
	OpMulReg
	OpDivImm // division by zero yields 0, as in the kernel
	OpDivReg
	OpModImm
	OpModReg
	OpAndImm
	OpAndReg
	OpOrImm
	OpOrReg
	OpXorImm
	OpXorReg
	OpLshImm
	OpRshImm
	OpNeg

	// Memory: the stack is the only directly addressable memory.
	// Addressing is reg(PtrStack) + Off; Size is 1, 2, 4 or 8 bytes.
	OpLdxStack   // dst = *(size*)(src + off)
	OpStxStack   // *(size*)(dst + off) = src
	OpStImmStack // *(size*)(dst + off) = imm

	// Context: dst = ctx[Off/8]; src must hold the context pointer (R1 at
	// entry). Off must be 8-byte aligned and within the context.
	OpLdxCtx

	// Jumps: Off is relative to the next instruction and must be positive
	// (forward-only), which guarantees termination.
	OpJa
	OpJeqImm
	OpJneImm
	OpJgtImm
	OpJgeImm
	OpJltImm
	OpJleImm
	OpJeqReg
	OpJneReg
	OpJgtReg
	OpJgeReg
	OpJltReg
	OpJleReg

	OpCall // Imm = helper ID
	OpExit
)

var opNames = map[Op]string{
	OpMovImm: "mov", OpMovReg: "mov", OpAddImm: "add", OpAddReg: "add",
	OpSubImm: "sub", OpSubReg: "sub", OpMulImm: "mul", OpMulReg: "mul",
	OpDivImm: "div", OpDivReg: "div", OpModImm: "mod", OpModReg: "mod",
	OpAndImm: "and", OpAndReg: "and", OpOrImm: "or", OpOrReg: "or",
	OpXorImm: "xor", OpXorReg: "xor", OpLshImm: "lsh", OpRshImm: "rsh",
	OpNeg: "neg", OpLdxStack: "ldx", OpStxStack: "stx", OpStImmStack: "st",
	OpLdxCtx: "ldxctx", OpJa: "ja", OpJeqImm: "jeq", OpJneImm: "jne",
	OpJgtImm: "jgt", OpJgeImm: "jge", OpJltImm: "jlt", OpJleImm: "jle",
	OpJeqReg: "jeq", OpJneReg: "jne", OpJgtReg: "jgt", OpJgeReg: "jge",
	OpJltReg: "jlt", OpJleReg: "jle", OpCall: "call", OpExit: "exit",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instruction is one decoded VM instruction.
type Instruction struct {
	Op   Op
	Dst  Reg
	Src  Reg
	Off  int32 // jump displacement or memory offset
	Imm  int64
	Size uint8 // memory access width: 1, 2, 4 or 8
}

func (in Instruction) String() string {
	switch in.Op {
	case OpCall:
		return fmt.Sprintf("call %s", HelperID(in.Imm))
	case OpExit:
		return "exit"
	case OpJa:
		return fmt.Sprintf("ja +%d", in.Off)
	case OpLdxStack:
		return fmt.Sprintf("%v = *(u%d*)(%v%+d)", in.Dst, in.Size*8, in.Src, in.Off)
	case OpStxStack:
		return fmt.Sprintf("*(u%d*)(%v%+d) = %v", in.Size*8, in.Dst, in.Off, in.Src)
	case OpStImmStack:
		return fmt.Sprintf("*(u%d*)(%v%+d) = %d", in.Size*8, in.Dst, in.Off, in.Imm)
	case OpLdxCtx:
		return fmt.Sprintf("%v = ctx[%d]", in.Dst, in.Off/8)
	}
	return fmt.Sprintf("%s %v, %v, off=%d imm=%d", in.Op, in.Dst, in.Src, in.Off, in.Imm)
}

// Program is a verified-or-not sequence of instructions plus metadata.
type Program struct {
	Name     string
	Insns    []Instruction
	verified bool

	// callMapFD records, per instruction index, the constant map fd the
	// verifier proved for a map-taking helper call site (-1 elsewhere).
	// The decoder uses it to bind call sites to Map references directly.
	callMapFD []int64
	// memLo records, per instruction index, the verifier-proven absolute
	// stack index of a stack load/store (-1 elsewhere). The decoder uses
	// it to lower stack ops into width-specialized forms with no runtime
	// address arithmetic, the way the kernel verifier rewrites memory
	// instructions.
	memLo []int32
	// dp points at the current pre-resolved dispatch form built by
	// Runtime.Load (tier 0) or a later profile-guided reoptimization
	// (tier 1): operands widened, jump targets absolute, map fds bound.
	// Nil until a runtime decodes the program; the VM falls back to the
	// raw interpreter in that case. The pointer is atomic so a tier swap
	// never disturbs an in-flight fire: a run loads the form once and
	// executes it to completion.
	dp atomic.Pointer[decodedProgram]
}

// Verified reports whether the program has passed the verifier.
func (p *Program) Verified() bool { return p.verified }

// DecodeTier reports the program's current dispatch form: -1 when the
// program has not been decoded (the VM interprets the raw instructions),
// 0 for the load-time lowering, 1 for the profile-guided re-decode, and
// 2 when the re-decode also formed guarded cross-block traces.
func (p *Program) DecodeTier() int {
	dp := p.dp.Load()
	if dp == nil {
		return -1
	}
	return dp.tier
}

// HelperID identifies a kernel helper callable from programs.
type HelperID int64

// Helper IDs, loosely mirroring their kernel namesakes.
const (
	HelperMapLookup      HelperID = 1  // r1=map fd, r2=key -> r0=value (0 if absent)
	HelperMapUpdate      HelperID = 2  // r1=map fd, r2=key, r3=value
	HelperMapDelete      HelperID = 3  // r1=map fd, r2=key
	HelperProbeRead      HelperID = 4  // r1=dst(stack ptr), r2=size, r3=src addr -> r0=0 ok / 1 fault
	HelperProbeReadStr   HelperID = 5  // r1=dst(stack ptr), r2=size, r3=src addr -> r0=len, or MaxUint64 on fault
	HelperPerfOutput     HelperID = 6  // r1=perf map fd, r2=data(stack ptr), r3=size
	HelperKtimeGetNs     HelperID = 7  // -> r0=virtual ns
	HelperGetCurrentPid  HelperID = 8  // -> r0=pid of the traced thread
	HelperGetSmpProcID   HelperID = 9  // -> r0=cpu the probe fired on
	HelperMapLookupExist HelperID = 10 // r1=map fd, r2=key -> r0=1 if present else 0
)

var helperNames = map[HelperID]string{
	HelperMapLookup:      "map_lookup_elem",
	HelperMapUpdate:      "map_update_elem",
	HelperMapDelete:      "map_delete_elem",
	HelperProbeRead:      "probe_read",
	HelperProbeReadStr:   "probe_read_str",
	HelperPerfOutput:     "perf_event_output",
	HelperKtimeGetNs:     "ktime_get_ns",
	HelperGetCurrentPid:  "get_current_pid_tgid",
	HelperGetSmpProcID:   "get_smp_processor_id",
	HelperMapLookupExist: "map_lookup_exist",
}

func (h HelperID) String() string {
	if s, ok := helperNames[h]; ok {
		return s
	}
	return fmt.Sprintf("helper(%d)", int64(h))
}

// StackSize is the per-invocation stack size in bytes, as in real eBPF.
const StackSize = 512

// MaxInsns is the maximum verified program length.
const MaxInsns = 4096

// MaxCtxWords is the maximum number of 64-bit context words a probe site
// may expose.
const MaxCtxWords = 16
