package ebpf

import "fmt"

// Assembler builds Programs with symbolic labels. Jump targets are named;
// Assemble resolves them to forward displacements and fails if a jump would
// go backwards, so any program it emits can pass the verifier's
// termination rule.
type Assembler struct {
	name   string
	insns  []Instruction
	labels map[string]int // label -> instruction index it precedes
	fixups map[int]string // instruction index -> unresolved label
	errs   []error
}

// NewAssembler starts a program named name.
func NewAssembler(name string) *Assembler {
	return &Assembler{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

func (a *Assembler) emit(in Instruction) *Assembler {
	a.insns = append(a.insns, in)
	return a
}

// Label marks the position of the next instruction.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("asm: duplicate label %q", name))
	}
	a.labels[name] = len(a.insns)
	return a
}

// MovImm: dst = imm.
func (a *Assembler) MovImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpMovImm, Dst: dst, Imm: imm})
}

// MovReg: dst = src.
func (a *Assembler) MovReg(dst, src Reg) *Assembler {
	return a.emit(Instruction{Op: OpMovReg, Dst: dst, Src: src})
}

// AddImm: dst += imm.
func (a *Assembler) AddImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpAddImm, Dst: dst, Imm: imm})
}

// AddReg: dst += src.
func (a *Assembler) AddReg(dst, src Reg) *Assembler {
	return a.emit(Instruction{Op: OpAddReg, Dst: dst, Src: src})
}

// SubImm: dst -= imm.
func (a *Assembler) SubImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpSubImm, Dst: dst, Imm: imm})
}

// SubReg: dst -= src.
func (a *Assembler) SubReg(dst, src Reg) *Assembler {
	return a.emit(Instruction{Op: OpSubReg, Dst: dst, Src: src})
}

// MulImm: dst *= imm.
func (a *Assembler) MulImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpMulImm, Dst: dst, Imm: imm})
}

// DivImm: dst /= imm (0 if imm is 0).
func (a *Assembler) DivImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpDivImm, Dst: dst, Imm: imm})
}

// DivReg: dst /= src (0 if src is 0).
func (a *Assembler) DivReg(dst, src Reg) *Assembler {
	return a.emit(Instruction{Op: OpDivReg, Dst: dst, Src: src})
}

// ModImm: dst %= imm (0 if imm is 0).
func (a *Assembler) ModImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpModImm, Dst: dst, Imm: imm})
}

// AndImm: dst &= imm.
func (a *Assembler) AndImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpAndImm, Dst: dst, Imm: imm})
}

// OrImm: dst |= imm.
func (a *Assembler) OrImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpOrImm, Dst: dst, Imm: imm})
}

// XorReg: dst ^= src.
func (a *Assembler) XorReg(dst, src Reg) *Assembler {
	return a.emit(Instruction{Op: OpXorReg, Dst: dst, Src: src})
}

// LshImm: dst <<= imm.
func (a *Assembler) LshImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpLshImm, Dst: dst, Imm: imm})
}

// RshImm: dst >>= imm (logical).
func (a *Assembler) RshImm(dst Reg, imm int64) *Assembler {
	return a.emit(Instruction{Op: OpRshImm, Dst: dst, Imm: imm})
}

// LdxCtx: dst = ctx[word]; src must hold the context pointer.
func (a *Assembler) LdxCtx(dst, src Reg, word int) *Assembler {
	return a.emit(Instruction{Op: OpLdxCtx, Dst: dst, Src: src, Off: int32(word * 8)})
}

// LdxStack: dst = *(size*)(src+off).
func (a *Assembler) LdxStack(dst, src Reg, off int32, size uint8) *Assembler {
	return a.emit(Instruction{Op: OpLdxStack, Dst: dst, Src: src, Off: off, Size: size})
}

// StxStack: *(size*)(dst+off) = src.
func (a *Assembler) StxStack(dst Reg, off int32, src Reg, size uint8) *Assembler {
	return a.emit(Instruction{Op: OpStxStack, Dst: dst, Src: src, Off: off, Size: size})
}

// StImmStack: *(size*)(dst+off) = imm.
func (a *Assembler) StImmStack(dst Reg, off int32, imm int64, size uint8) *Assembler {
	return a.emit(Instruction{Op: OpStImmStack, Dst: dst, Off: off, Imm: imm, Size: size})
}

func (a *Assembler) jump(op Op, dst, src Reg, imm int64, label string) *Assembler {
	a.fixups[len(a.insns)] = label
	return a.emit(Instruction{Op: op, Dst: dst, Src: src, Imm: imm})
}

// Ja: unconditional forward jump to label.
func (a *Assembler) Ja(label string) *Assembler { return a.jump(OpJa, 0, 0, 0, label) }

// JeqImm jumps to label if dst == imm.
func (a *Assembler) JeqImm(dst Reg, imm int64, label string) *Assembler {
	return a.jump(OpJeqImm, dst, 0, imm, label)
}

// JneImm jumps to label if dst != imm.
func (a *Assembler) JneImm(dst Reg, imm int64, label string) *Assembler {
	return a.jump(OpJneImm, dst, 0, imm, label)
}

// JgtImm jumps to label if dst > imm (unsigned).
func (a *Assembler) JgtImm(dst Reg, imm int64, label string) *Assembler {
	return a.jump(OpJgtImm, dst, 0, imm, label)
}

// JgeImm jumps to label if dst >= imm (unsigned).
func (a *Assembler) JgeImm(dst Reg, imm int64, label string) *Assembler {
	return a.jump(OpJgeImm, dst, 0, imm, label)
}

// JltImm jumps to label if dst < imm (unsigned).
func (a *Assembler) JltImm(dst Reg, imm int64, label string) *Assembler {
	return a.jump(OpJltImm, dst, 0, imm, label)
}

// JleImm jumps to label if dst <= imm (unsigned).
func (a *Assembler) JleImm(dst Reg, imm int64, label string) *Assembler {
	return a.jump(OpJleImm, dst, 0, imm, label)
}

// JeqReg jumps to label if dst == src.
func (a *Assembler) JeqReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJeqReg, dst, src, 0, label)
}

// JneReg jumps to label if dst != src.
func (a *Assembler) JneReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJneReg, dst, src, 0, label)
}

// Call invokes a helper.
func (a *Assembler) Call(h HelperID) *Assembler {
	return a.emit(Instruction{Op: OpCall, Imm: int64(h)})
}

// Exit terminates the program; r0 is the return value.
func (a *Assembler) Exit() *Assembler { return a.emit(Instruction{Op: OpExit}) }

// Assemble resolves labels and returns the program. It fails on undefined
// labels, duplicate labels, or backward jumps.
func (a *Assembler) Assemble() (*Program, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	insns := make([]Instruction, len(a.insns))
	copy(insns, a.insns)
	for idx, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", label)
		}
		disp := target - (idx + 1)
		if disp < 0 {
			return nil, fmt.Errorf("asm: backward jump to %q at insn %d", label, idx)
		}
		insns[idx].Off = int32(disp)
	}
	return &Program{Name: a.name, Insns: insns}, nil
}

// MustAssemble is Assemble that panics on error; for use in program
// constructors whose inputs are compile-time constants.
func (a *Assembler) MustAssemble() *Program {
	p, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}
