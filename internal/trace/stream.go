package trace

import "github.com/tracesynth/rostracer/internal/sim"

// Streaming counterpart of the batch Trace pipeline: a Sink consumes
// events one at a time in (Time, Seq) order, a Cursor produces them, and
// MergeStream k-way merges many sorted cursors into a sink with a
// tournament heap — the same algorithm (and the same tie-breaking) as the
// >4-way path of Merge, but without ever materializing the merged event
// sequence. Peak buffering is one event per input stream: the heap holds
// only the current head of each cursor.

// Sink consumes a stream of events. Producers deliver events in
// (Time, Seq) order, the chronological order Algorithm 1 requires, so a
// sink never has to sort.
type Sink interface {
	Observe(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Observe implements Sink.
func (f SinkFunc) Observe(e Event) { f(e) }

// Collector is a Sink that materializes the observed stream into a
// Trace — the bridge from the streaming path back to the batch API.
type Collector struct {
	Trace Trace
}

// Observe implements Sink.
func (c *Collector) Observe(e Event) { c.Trace.Events = append(c.Trace.Events, e) }

// Grow pre-allocates room for n more events.
func (c *Collector) Grow(n int) {
	if n <= 0 {
		return
	}
	evs := c.Trace.Events
	if cap(evs)-len(evs) >= n {
		return
	}
	grown := make([]Event, len(evs), len(evs)+n)
	copy(grown, evs)
	c.Trace.Events = grown
}

// KindCounter is a Sink that tallies events per kind without retaining
// them — enough for inventory-style experiments (Table I) and event
// totals.
type KindCounter struct {
	counts [numKinds]uint64
	total  uint64
}

// Observe implements Sink.
func (k *KindCounter) Observe(e Event) {
	if e.Kind < numKinds {
		k.counts[e.Kind]++
	}
	k.total++
}

// Count reports how many events of kind have been observed.
func (k *KindCounter) Count(kind Kind) int {
	if kind >= numKinds {
		return 0
	}
	return int(k.counts[kind])
}

// Total reports the number of events observed.
func (k *KindCounter) Total() int { return int(k.total) }

// SpanTracker is a Sink recording the observed stream's first/last event
// times and its event count without retaining events — the streaming
// replacement for materializing a trace just to call TimeSpan and Len.
type SpanTracker struct {
	first, last sim.Time
	n           int
}

// Observe implements Sink.
func (t *SpanTracker) Observe(e Event) {
	if t.n == 0 {
		t.first, t.last = e.Time, e.Time
	} else {
		if e.Time < t.first {
			t.first = e.Time
		}
		if e.Time > t.last {
			t.last = e.Time
		}
	}
	t.n++
}

// Span reports the first and last observed event times (zero values when
// nothing was observed), mirroring Trace.TimeSpan.
func (t *SpanTracker) Span() (first, last sim.Time) { return t.first, t.last }

// Total reports the number of events observed.
func (t *SpanTracker) Total() int { return t.n }

// MultiSink fans one stream out to several sinks, in order.
func MultiSink(sinks ...Sink) Sink {
	// Drop nil entries so callers can pass optional sinks directly.
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	return SinkFunc(func(e Event) {
		for _, s := range live {
			s.Observe(e)
		}
	})
}

// Cursor yields the events of one (Time, Seq)-sorted stream, one at a
// time. Next reports ok=false when the stream is exhausted; a non-nil
// error (e.g. a record that fails to decode) also ends the stream.
type Cursor interface {
	Next() (ev Event, ok bool, err error)
}

// SliceCursor adapts a sorted event slice to the Cursor interface.
type SliceCursor struct {
	Events []Event
	i      int
}

// Next implements Cursor.
func (c *SliceCursor) Next() (Event, bool, error) {
	if c.i >= len(c.Events) {
		return Event{}, false, nil
	}
	e := c.Events[c.i]
	c.i++
	return e, true, nil
}

// MergeStream merges many (Time, Seq)-sorted cursors into one stream
// with a tournament heap, generalizing the many-stream path of Merge to
// producers that yield events incrementally (per-CPU perf rings decoded
// on the fly, loaded trace segments, ...). Ties on (Time, Seq) resolve
// to the earlier cursor, exactly as Merge resolves them to the earlier
// input trace, so a MergeStream over SliceCursors reproduces Merge byte
// for byte.
type MergeStream struct {
	curs  []Cursor
	heads []Event // current head event per cursor
	heap  []int   // cursor indexes, min-heap by (head Time, Seq, index)
}

// NewMergeStream creates a merge over cursors. Nil cursors are skipped.
func NewMergeStream(curs ...Cursor) *MergeStream {
	return new(MergeStream).Reset(curs...)
}

// Reset re-targets the merge at a new cursor set, reusing the cursor,
// head, and heap storage of earlier runs: a drain loop that keeps one
// MergeStream and Resets it per segment allocates nothing at steady
// state. Nil cursors are skipped. Returns m for chaining into Run.
func (m *MergeStream) Reset(curs ...Cursor) *MergeStream {
	m.curs = m.curs[:0]
	for _, c := range curs {
		if c != nil {
			m.curs = append(m.curs, c)
		}
	}
	return m
}

// Buffered reports how many events the merge currently holds — at most
// one per input stream, the bound that keeps the streaming path's memory
// independent of trace length.
func (m *MergeStream) Buffered() int { return len(m.heap) }

func (m *MergeStream) less(a, b int) bool {
	ea, eb := &m.heads[a], &m.heads[b]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	if ea.Seq != eb.Seq {
		return ea.Seq < eb.Seq
	}
	return a < b
}

func (m *MergeStream) siftDown(i int) {
	h := m.heap
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && m.less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && m.less(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// prime pulls the first event of every cursor and builds the heap.
func (m *MergeStream) prime() error {
	if cap(m.heads) < len(m.curs) {
		m.heads = make([]Event, len(m.curs))
		m.heap = make([]int, 0, len(m.curs))
	} else {
		m.heads = m.heads[:len(m.curs)]
		m.heap = m.heap[:0]
	}
	for i, c := range m.curs {
		ev, ok, err := c.Next()
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		m.heads[i] = ev
		m.heap = append(m.heap, i)
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return nil
}

// Run drains every cursor into sink in merged (Time, Seq) order. It
// returns the first cursor error, leaving the merge unusable.
func (m *MergeStream) Run(sink Sink) error {
	if err := m.prime(); err != nil {
		return err
	}
	for len(m.heap) > 0 {
		t := m.heap[0]
		sink.Observe(m.heads[t])
		ev, ok, err := m.curs[t].Next()
		if err != nil {
			return err
		}
		if ok {
			m.heads[t] = ev
		} else {
			m.heap[0] = m.heap[len(m.heap)-1]
			m.heap = m.heap[:len(m.heap)-1]
		}
		m.siftDown(0)
	}
	return nil
}
