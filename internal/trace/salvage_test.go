package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// seqEvents returns n (Time, Seq)-ordered events starting at (t0, s0).
func seqEvents(n int, t0 sim.Time, s0 uint64) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			Time: t0 + sim.Time(i)*10, Seq: s0 + uint64(i),
			PID: 100, Kind: KindSubCBStart, Topic: "t",
		}
	}
	return out
}

// writeSessionSegment stores one sorted segment and returns its path.
func writeSessionSegment(t *testing.T, s *Store, session string, idx int, events []Event) string {
	t.Helper()
	sw, err := s.WriteSegment(session, idx)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		sw.Observe(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return sw.Path()
}

// collectSink gathers events for assertions.
type collectSink struct{ events []Event }

func (c *collectSink) Observe(e Event) { c.events = append(c.events, e) }

func TestSalvageCleanSessionMatchesStreamSession(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writeSessionSegment(t, s, "ok", 0, seqEvents(5, 0, 1))
	writeSessionSegment(t, s, "ok", 1, seqEvents(5, 1000, 100))

	var strict, salvaged collectSink
	if err := s.StreamSession("ok", &strict); err != nil {
		t.Fatal(err)
	}
	rep, err := s.SalvageSession("ok", &salvaged)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged() != 0 || rep.BytesDropped() != 0 {
		t.Fatalf("clean session reported damaged: %s", rep)
	}
	if !reflect.DeepEqual(strict.events, salvaged.events) {
		t.Fatalf("salvage of a clean session diverges from strict read")
	}
	if rep.Events() != len(strict.events) {
		t.Fatalf("report events %d, want %d", rep.Events(), len(strict.events))
	}
}

// truncateMidRecord cuts a segment file a few bytes into its (keep+1)-th
// record and returns the boundary offset after record keep.
func truncateMidRecord(t *testing.T, path string, keep int) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFileCursor(bytes.NewReader(data))
	for i := 0; i < keep; i++ {
		if _, ok, err := fc.Next(); err != nil || !ok {
			t.Fatalf("segment too short to keep %d records (err=%v)", keep, err)
		}
	}
	boundary := fc.BytesConsumed()
	if err := os.Truncate(path, boundary+2); err != nil {
		t.Fatal(err)
	}
	return boundary
}

func TestSalvageTruncatedSegment(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// v1 pinned: truncateMidRecord's boundary+2 arithmetic and the exact
	// BytesDropped assertion are v1 record-granular. TestSalvageV2Damage
	// covers the v2 equivalents.
	s.Format = FormatV1
	first := seqEvents(4, 0, 1)
	second := seqEvents(6, 1000, 100)
	writeSessionSegment(t, s, "tear", 0, first)
	p1 := writeSessionSegment(t, s, "tear", 1, second)
	truncateMidRecord(t, p1, 2)

	// The strict path must refuse the session...
	if err := s.StreamSession("tear", &collectSink{}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("strict read of torn session: err=%v, want ErrTruncated", err)
	}
	// ...and salvage must recover everything before the damage point.
	var got collectSink
	rep, err := s.SalvageSession("tear", &got)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Event(nil), first...), second[:2]...)
	if !reflect.DeepEqual(got.events, want) {
		t.Fatalf("salvaged %d events, want %d (all of seg0 + 2 of seg1)", len(got.events), len(want))
	}
	if rep.Damaged() != 1 {
		t.Fatalf("damaged = %d, want 1", rep.Damaged())
	}
	seg := rep.Segments[1]
	if seg.Cause != "truncated" || !errors.Is(seg.Err, ErrTruncated) {
		t.Fatalf("cause = %q (err %v), want truncated", seg.Cause, seg.Err)
	}
	if seg.Events != 2 || seg.BytesDropped != 2 {
		t.Fatalf("segment report: %+v; want 2 events, 2 bytes dropped", seg)
	}
	if !strings.Contains(rep.String(), "[truncated]") {
		t.Fatalf("report text missing cause: %s", rep)
	}
}

func TestSalvageCorruptAndBadMagic(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// v1 pinned: the length-prefix stomp below lands on v1 record layout.
	s.Format = FormatV1
	p0 := writeSessionSegment(t, s, "rot", 0, seqEvents(4, 0, 1))
	p1 := writeSessionSegment(t, s, "rot", 1, seqEvents(4, 1000, 100))

	// Segment 0: implausible length prefix on record 3.
	data, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFileCursor(bytes.NewReader(data))
	fc.Next()
	fc.Next()
	binary.LittleEndian.PutUint32(data[fc.BytesConsumed():], 1<<30)
	if err := os.WriteFile(p0, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Segment 1: stomp the magic.
	data1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	copy(data1, "XXXXXX")
	if err := os.WriteFile(p1, data1, 0o644); err != nil {
		t.Fatal(err)
	}

	var got collectSink
	rep, err := s.SalvageSession("rot", &got)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.events) != 2 {
		t.Fatalf("salvaged %d events, want 2 (prefix of seg0 only)", len(got.events))
	}
	if rep.Segments[0].Cause != "corrupt" || !errors.Is(rep.Segments[0].Err, ErrCorrupt) {
		t.Fatalf("seg0 cause = %q (%v), want corrupt", rep.Segments[0].Cause, rep.Segments[0].Err)
	}
	if rep.Segments[1].Cause != "bad-magic" || rep.Segments[1].Events != 0 {
		t.Fatalf("seg1 report: %+v, want bad-magic with 0 events", rep.Segments[1])
	}
	if rep.Segments[1].BytesDropped != int64(len(data1)) {
		t.Fatalf("seg1 dropped %d bytes, want the whole file (%d)", rep.Segments[1].BytesDropped, len(data1))
	}
}

func TestSalvageUnorderedSegment(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := s.WriteSegment("ooo", 0)
	if err != nil {
		t.Fatal(err)
	}
	sw.Observe(Event{Time: 100, Seq: 5, Kind: KindSubCBStart})
	sw.Observe(Event{Time: 50, Seq: 1, Kind: KindSubCBStart}) // regression
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.SalvageSession("ooo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments[0].Cause != "unordered" || rep.Segments[0].Events != 1 {
		t.Fatalf("report: %+v, want unordered with 1 event", rep.Segments[0])
	}
}

func TestFsckClassifiesAcrossSessions(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// v1 pinned: truncateMidRecord arithmetic. TestFsckClassifiesV2Damage
	// covers v2 classification.
	s.Format = FormatV1
	writeSessionSegment(t, s, "a", 0, seqEvents(3, 0, 1))
	p := writeSessionSegment(t, s, "b", 0, seqEvents(5, 0, 1))
	writeSessionSegment(t, s, "b", 1, seqEvents(5, 1000, 100))
	truncateMidRecord(t, p, 1)

	rep, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Damaged() != 1 {
		t.Fatalf("fsck damaged = %d, want 1", rep.Damaged())
	}
	if len(rep.Sessions) != 2 {
		t.Fatalf("fsck covered %d sessions, want 2", len(rep.Sessions))
	}
	for _, sess := range rep.Sessions {
		for _, seg := range sess.Segments {
			if seg.Damaged && seg.Cause != "truncated" {
				t.Fatalf("unexpected cause %q for %s", seg.Cause, seg.Name)
			}
		}
	}
	if !strings.Contains(rep.String(), "session a:") || !strings.Contains(rep.String(), "session b:") {
		t.Fatalf("fsck text missing sessions:\n%s", rep)
	}
}

// TestSegmentOrderPastZeroPadding pins the numeric ordering of segment
// files: %04d zero-padding runs out at segment 10000, where a
// lexicographic sort would put "10000" before "9999" — breaking the
// merge's same-(Time, Seq) tie-resolution to the earlier segment.
func TestSegmentOrderPastZeroPadding(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Identical (Time, Seq) in both segments: the merge breaks the tie to
	// the earlier cursor, so output order is observable segment order.
	mk := func(node string) []Event {
		return []Event{{Time: 7, Seq: 3, Kind: KindCreateNode, Node: node}}
	}
	writeSessionSegment(t, s, "roll", 10000, mk("later"))
	writeSessionSegment(t, s, "roll", 9999, mk("earlier"))

	names, err := s.segmentNames("roll")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"roll-9999.rtrc", "roll-10000.rtrc"}) {
		t.Fatalf("segment order = %v, want numeric [9999 10000]", names)
	}
	var got collectSink
	if err := s.StreamSession("roll", &got); err != nil {
		t.Fatal(err)
	}
	if len(got.events) != 2 || got.events[0].Node != "earlier" || got.events[1].Node != "later" {
		t.Fatalf("merge order wrong: %v", got.events)
	}
	// The session listing must survive the suffix widening too.
	sessions, err := s.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sessions, []string{"roll"}) {
		t.Fatalf("sessions = %v, want [roll]", sessions)
	}
	// Salvage and fsck see the same ordering.
	rep, err := s.SalvageSession("roll", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments[0].Name != "roll-9999.rtrc" {
		t.Fatalf("salvage order = %v", []string{rep.Segments[0].Name, rep.Segments[1].Name})
	}
}

func TestSalvageReaderPlain(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSegmentWriter(&buf)
	for _, e := range seqEvents(3, 0, 1) {
		sw.Observe(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Len()
	data := append(buf.Bytes(), 0xde, 0xad) // torn tail
	var got collectSink
	rep := SalvageReader(bytes.NewReader(data), &got)
	if len(got.events) != 3 || rep.Events != 3 {
		t.Fatalf("recovered %d events, want 3", rep.Events)
	}
	if !rep.Damaged || rep.Cause != "truncated" {
		t.Fatalf("report: %+v, want truncated", rep)
	}
	if rep.BytesRecovered != int64(full) {
		t.Fatalf("bytes recovered %d, want %d", rep.BytesRecovered, full)
	}
}
