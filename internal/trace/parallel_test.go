package trace

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/tracesynth/rostracer/internal/faultinject"
	"github.com/tracesynth/rostracer/internal/sim"
)

// streamWith reads a whole session with the given parallelism.
func streamWith(t *testing.T, st *Store, session string, parallelism int) ([]Event, error) {
	t.Helper()
	st.Parallelism = parallelism
	var col Collector
	err := st.StreamSession(session, &col)
	return col.Trace.Events, err
}

// TestStreamSessionParallelByteIdentical pins the tentpole invariant:
// the prefetched multi-goroutine read path delivers exactly the event
// sequence the sequential path delivers, for both formats.
func TestStreamSessionParallelByteIdentical(t *testing.T) {
	for _, format := range []Format{FormatV1, FormatV2} {
		t.Run(format.String(), func(t *testing.T) {
			segs := sessionEvents(11, 6, 700)
			st := writeSessionSegmentsFormat(t, "run", segs, format)

			want, err := streamWith(t, st, "run", 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := streamWith(t, st, "run", 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel StreamSession differs from sequential: %d vs %d events", len(got), len(want))
			}
		})
	}
}

// TestStreamSessionParallelDamagedSegment checks the parallel path's
// error semantics match the sequential path's: same delivered prefix,
// same error, when one segment is truncated mid-record.
func TestStreamSessionParallelDamagedSegment(t *testing.T) {
	segs := sessionEvents(13, 4, 400)
	st := writeSessionSegments(t, "run", segs)

	// Tear the tail off one segment so its cursor errors mid-stream.
	name := filepath.Join(st.Dir(), "run-0002.rtrc")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	wantEvs, wantErr := streamWith(t, st, "run", 1)
	gotEvs, gotErr := streamWith(t, st, "run", 8)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("expected errors, got %v / %v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("parallel error differs:\n got %v\nwant %v", gotErr, wantErr)
	}
	if !reflect.DeepEqual(gotEvs, wantEvs) {
		t.Fatalf("parallel prefix differs from sequential: %d vs %d events", len(gotEvs), len(wantEvs))
	}
}

// TestQuerySessionParallelMatchesSequential pins the worker-pool block
// decode to the sequential indexed path: same events, same stats, for a
// spread of filters.
func TestQuerySessionParallelMatchesSequential(t *testing.T) {
	segs := sessionEvents(17, 5, 1200)
	st := writeSessionSegmentsFormat(t, "run", segs, FormatV2)
	st.BlockRecords = 32 // many blocks per segment so the pool has real work

	// Rewrite with small blocks for a finer index.
	for i, evs := range segs {
		sw, err := st.WriteSegment("run", i)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			sw.Observe(e)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var mid sim.Time
	for _, seg := range segs {
		for _, e := range seg {
			if e.Time > mid {
				mid = e.Time
			}
		}
	}
	filters := []Filter{
		{},
		{T0: mid / 3, T1: 2 * mid / 3},
		{Kinds: []Kind{KindSchedSwitch}},
		{T0: mid / 2, Kinds: []Kind{KindTakeInt, KindSubCBEnd}},
		{Node: "no-such-node"},
	}
	for i, f := range filters {
		t.Run(fmt.Sprintf("filter%d", i), func(t *testing.T) {
			st.Parallelism = 1
			var seq Collector
			seqStats, err := st.QuerySession("run", f, &seq)
			if err != nil {
				t.Fatal(err)
			}
			st.Parallelism = 8
			var par Collector
			parStats, err := st.QuerySession("run", f, &par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par.Trace.Events, seq.Trace.Events) {
				t.Fatalf("parallel QuerySession differs: %d vs %d events",
					par.Trace.Len(), seq.Trace.Len())
			}
			if parStats != seqStats {
				t.Fatalf("parallel stats differ:\n got %+v\nwant %+v", parStats, seqStats)
			}
		})
	}
}

// TestSegmentWriterAsyncByteIdentical pins the off-thread encoder to the
// synchronous one byte for byte, across block boundaries and the footer.
func TestSegmentWriterAsyncByteIdentical(t *testing.T) {
	segs := sessionEvents(19, 1, 900)
	evs := segs[0]

	var syncBuf bytes.Buffer
	sw := NewSegmentWriterFormat(&syncBuf, FormatV2, 64)
	for _, e := range evs {
		sw.Observe(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	var asyncBuf bytes.Buffer
	aw := NewSegmentWriterFormat(&asyncBuf, FormatV2, 64)
	aw.EnableAsync()
	for _, e := range evs {
		aw.Observe(e)
	}
	if err := aw.Flush(); err != nil { // mid-stream flush must not perturb layout
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if aw.Count() != sw.Count() {
		t.Fatalf("async Count = %d, sync %d", aw.Count(), sw.Count())
	}
	if !bytes.Equal(asyncBuf.Bytes(), syncBuf.Bytes()) {
		t.Fatalf("async segment differs from sync: %d vs %d bytes", asyncBuf.Len(), syncBuf.Len())
	}
}

// TestStoreAsyncEncodeByteIdentical checks the store-level knob: a
// session written with AsyncEncode produces byte-identical segment
// files, so every downstream reader (including the footer index) is
// oblivious to how the bytes were produced.
func TestStoreAsyncEncodeByteIdentical(t *testing.T) {
	segs := sessionEvents(23, 3, 600)

	write := func(async bool) *Store {
		st, err := NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st.AsyncEncode = async
		st.BlockRecords = 48
		for i, evs := range segs {
			sw, err := st.WriteSegment("run", i)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range evs {
				sw.Observe(e)
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	syncSt, asyncSt := write(false), write(true)
	for i := range segs {
		name := fmt.Sprintf("run-%04d.rtrc", i)
		a, err := os.ReadFile(filepath.Join(syncSt.Dir(), name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(asyncSt.Dir(), name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("segment %s differs between sync and async encode: %d vs %d bytes",
				name, len(a), len(b))
		}
	}
}

// TestSegmentWriterAsyncDiskFault checks that a disk failing mid-segment
// surfaces through the async writer's sticky error — by Close at the
// latest — and that the failure classifies the same as the synchronous
// path's.
func TestSegmentWriterAsyncDiskFault(t *testing.T) {
	segs := sessionEvents(29, 1, 600)
	evs := segs[0]

	run := func(async bool) error {
		var buf bytes.Buffer
		fw := faultinject.NewWriter(&buf, faultinject.WriteFault{Kind: faultinject.WriteFailAfter, N: 2000})
		sw := NewSegmentWriterFormat(fw, FormatV2, 32)
		if async {
			sw.EnableAsync()
		}
		for _, e := range evs {
			sw.Observe(e)
		}
		return sw.Close()
	}
	syncErr, asyncErr := run(false), run(true)
	if syncErr == nil || asyncErr == nil {
		t.Fatalf("expected disk-full errors, got sync=%v async=%v", syncErr, asyncErr)
	}
	if !errors.Is(asyncErr, faultinject.ErrDiskFull) {
		t.Fatalf("async error lost its classification: %v", asyncErr)
	}
}

// TestSegmentWriterAsyncConcurrentWriters exercises many async writers
// at once — the multi-session service shape — under the race detector,
// with one of them on a faulty disk.
func TestSegmentWriterAsyncConcurrentWriters(t *testing.T) {
	segs := sessionEvents(31, 8, 1600)
	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	for i, evs := range segs {
		wg.Add(1)
		go func(i int, evs []Event) {
			defer wg.Done()
			var buf bytes.Buffer
			var w = NewSegmentWriterFormat(&buf, FormatV2, 16)
			if i == 3 {
				fw := faultinject.NewWriter(&buf, faultinject.WriteFault{Kind: faultinject.WriteFailAfter, N: 500})
				w = NewSegmentWriterFormat(fw, FormatV2, 16)
			}
			w.EnableAsync()
			for _, e := range evs {
				w.Observe(e)
				if w.Err() != nil {
					break
				}
			}
			errs[i] = w.Close()
		}(i, evs)
	}
	wg.Wait()
	for i, err := range errs {
		if i == 3 {
			if err == nil {
				t.Fatalf("writer %d on faulty disk reported no error", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
}

// TestPrefetchCursorEarlyClose exercises the cancellation path: a
// consumer that abandons the stream mid-flight must be able to Close
// without deadlocking, and Close must win the race against a producer
// blocked on a full channel.
func TestPrefetchCursorEarlyClose(t *testing.T) {
	evs := make([]Event, 4096)
	for i := range evs {
		evs[i] = Event{Time: sim.Time(i), Seq: uint64(i), Kind: KindSchedSwitch}
	}
	for _, consume := range []int{0, 1, 100, len(evs)} {
		pc := NewPrefetchCursor(&SliceCursor{Events: evs})
		for i := 0; i < consume; i++ {
			ev, ok, err := pc.Next()
			if err != nil || !ok {
				t.Fatalf("consume %d: Next[%d] = %v %v %v", consume, i, ev, ok, err)
			}
			if ev.Seq != uint64(i) {
				t.Fatalf("consume %d: out of order at %d: %d", consume, i, ev.Seq)
			}
		}
		pc.Close()
		pc.Close() // idempotent
	}
}

// TestPrefetchCursorDrainsFully checks an exhausted cursor keeps
// reporting a clean end, and that the full stream round-trips in order.
func TestPrefetchCursorDrainsFully(t *testing.T) {
	evs := make([]Event, 1000)
	for i := range evs {
		evs[i] = Event{Time: sim.Time(i / 3), Seq: uint64(i), Kind: KindSchedSwitch}
	}
	pc := NewPrefetchCursor(&SliceCursor{Events: evs})
	defer pc.Close()
	var got []Event
	for {
		ev, ok, err := pc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("prefetch round-trip differs: %d vs %d events", len(got), len(evs))
	}
	if _, ok, err := pc.Next(); ok || err != nil {
		t.Fatalf("Next after end = %v %v", ok, err)
	}
}
