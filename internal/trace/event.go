// Package trace defines the event model produced by the tracers and
// consumed by the timing-model synthesis algorithms, together with codecs,
// merging, filtering, and session management.
//
// An Event is the decoded form of one perf-buffer record (probes P1–P16 of
// Table I) or one sched_switch tracepoint record. Events order by
// (Time, Seq): Seq is a global emission sequence number that keeps
// simultaneous events (e.g. a callback-start probe and the take probe
// inside it, which fire within the same virtual nanosecond) in their true
// causal order, the role nanosecond clock resolution plays on real
// hardware.
package trace

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"github.com/tracesynth/rostracer/internal/sim"
)

// Kind identifies the probe or tracepoint an event came from.
type Kind uint8

// Event kinds. P1–P16 match Table I of the paper.
const (
	KindInvalid        Kind = iota
	KindCreateNode          // P1  rmw_create_node: node name + executor PID
	KindTimerCBStart        // P2  execute_timer entry
	KindTimerCall           // P3  rcl_timer_call: timer callback ID
	KindTimerCBEnd          // P4  execute_timer exit
	KindSubCBStart          // P5  execute_subscription entry
	KindTakeInt             // P6  rmw_take_int: sub CB ID, topic, srcTS
	KindSyncSubscribe       // P7  message_filters operator()
	KindSubCBEnd            // P8  execute_subscription exit
	KindServiceCBStart      // P9  execute_service entry
	KindTakeRequest         // P10 rmw_take_request: svc CB ID, service, srcTS
	KindServiceCBEnd        // P11 execute_service exit
	KindClientCBStart       // P12 execute_client entry
	KindTakeResponse        // P13 rmw_take_response: client CB ID, service, srcTS
	KindTakeTypeErased      // P14 take_type_erased_response exit: dispatch flag
	KindClientCBEnd         // P15 execute_client exit
	KindDDSWrite            // P16 dds_write_impl: topic + srcTS
	KindSchedSwitch         // sched:sched_switch
	KindSchedWakeup         // sched:sched_wakeup (Sec. VII extension)
	numKinds
)

var kindNames = [...]string{
	KindInvalid:        "invalid",
	KindCreateNode:     "P1:rmw_create_node",
	KindTimerCBStart:   "P2:execute_timer:entry",
	KindTimerCall:      "P3:rcl_timer_call",
	KindTimerCBEnd:     "P4:execute_timer:exit",
	KindSubCBStart:     "P5:execute_subscription:entry",
	KindTakeInt:        "P6:rmw_take_int",
	KindSyncSubscribe:  "P7:message_filters_operator",
	KindSubCBEnd:       "P8:execute_subscription:exit",
	KindServiceCBStart: "P9:execute_service:entry",
	KindTakeRequest:    "P10:rmw_take_request",
	KindServiceCBEnd:   "P11:execute_service:exit",
	KindClientCBStart:  "P12:execute_client:entry",
	KindTakeResponse:   "P13:rmw_take_response",
	KindTakeTypeErased: "P14:take_type_erased_response",
	KindClientCBEnd:    "P15:execute_client:exit",
	KindDDSWrite:       "P16:dds_write_impl",
	KindSchedSwitch:    "sched_switch",
	KindSchedWakeup:    "sched_wakeup",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a kind from its String() form, its probe label
// ("P6"), or its bare probe name ("rmw_take_int", "execute_timer:entry",
// "sched_switch") — the forms a CLI -kinds flag accepts.
func ParseKind(s string) (Kind, bool) {
	for k := KindInvalid + 1; k < numKinds; k++ {
		name := kindNames[k]
		if s == name {
			return k, true
		}
		if i := strings.IndexByte(name, ':'); i >= 0 && (s == name[:i] || s == name[i+1:]) {
			return k, true
		}
	}
	return KindInvalid, false
}

// IsCBStart reports whether k is one of the callback-start probes
// (P2/P5/P9/P12).
func (k Kind) IsCBStart() bool {
	switch k {
	case KindTimerCBStart, KindSubCBStart, KindServiceCBStart, KindClientCBStart:
		return true
	}
	return false
}

// IsCBEnd reports whether k is one of the callback-end probes
// (P4/P8/P11/P15).
func (k Kind) IsCBEnd() bool {
	switch k {
	case KindTimerCBEnd, KindSubCBEnd, KindServiceCBEnd, KindClientCBEnd:
		return true
	}
	return false
}

// IsTake reports whether k is one of the take probes (P6/P10/P13).
func (k Kind) IsTake() bool {
	switch k {
	case KindTakeInt, KindTakeRequest, KindTakeResponse:
		return true
	}
	return false
}

// Event is one trace record. Fields beyond the header are populated
// according to Kind; unused fields are zero.
type Event struct {
	Time sim.Time
	Seq  uint64
	PID  uint32
	Kind Kind

	// ROS2 payload.
	Node  string // P1: node name
	CBID  uint64 // P3/P6/P10/P13: callback handle
	Topic string // P6/P10/P13/P16: topic or service name
	SrcTS int64  // P6/P10/P13/P16: source timestamp
	Ret   uint64 // P14: 1 if the client callback will be dispatched

	// sched_switch payload.
	CPU       int32
	PrevPID   uint32
	NextPID   uint32
	PrevPrio  int32
	NextPrio  int32
	PrevState int32
}

func (e Event) String() string {
	switch {
	case e.Kind == KindSchedSwitch:
		return fmt.Sprintf("%d %s cpu%d %d->%d (state %d)",
			e.Time, e.Kind, e.CPU, e.PrevPID, e.NextPID, e.PrevState)
	case e.Kind == KindCreateNode:
		return fmt.Sprintf("%d %s pid=%d node=%s", e.Time, e.Kind, e.PID, e.Node)
	case e.Kind.IsTake() || e.Kind == KindDDSWrite:
		return fmt.Sprintf("%d %s pid=%d cb=%#x topic=%s srcTS=%d",
			e.Time, e.Kind, e.PID, e.CBID, e.Topic, e.SrcTS)
	default:
		return fmt.Sprintf("%d %s pid=%d cb=%#x ret=%d", e.Time, e.Kind, e.PID, e.CBID, e.Ret)
	}
}

// Trace is an ordered collection of events.
type Trace struct {
	Events []Event
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Append adds events to the trace.
func (t *Trace) Append(evs ...Event) { t.Events = append(t.Events, evs...) }

// eventLess is the (Time, Seq) chronological order Algorithm 1 requires.
func eventLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

// SortByTime orders events by (Time, Seq), the chronological order
// Algorithm 1 requires.
func (t *Trace) SortByTime() {
	slices.SortStableFunc(t.Events, func(a, b Event) int {
		if a.Time != b.Time {
			return cmp.Compare(a.Time, b.Time)
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
}

// sortedByTime reports whether the trace is already in (Time, Seq) order.
func (t *Trace) sortedByTime() bool {
	for i := 1; i < len(t.Events); i++ {
		if eventLess(&t.Events[i], &t.Events[i-1]) {
			return false
		}
	}
	return true
}

// filter returns the sub-trace of events matching keep, sized exactly with
// a count pass so the result is a single allocation.
func (t *Trace) filter(keep func(*Event) bool) *Trace {
	n := 0
	for i := range t.Events {
		if keep(&t.Events[i]) {
			n++
		}
	}
	out := &Trace{}
	if n == 0 {
		return out
	}
	out.Events = make([]Event, 0, n)
	for i := range t.Events {
		if keep(&t.Events[i]) {
			out.Events = append(out.Events, t.Events[i])
		}
	}
	return out
}

// FilterPID returns the sub-trace whose events belong to pid (for
// sched_switch events: mention pid as prev or next).
func (t *Trace) FilterPID(pid uint32) *Trace {
	return t.filter(func(e *Event) bool {
		if e.Kind == KindSchedSwitch || e.Kind == KindSchedWakeup {
			return e.PrevPID == pid || e.NextPID == pid
		}
		return e.PID == pid
	})
}

// FilterKind returns the sub-trace with only the given kinds.
func (t *Trace) FilterKind(kinds ...Kind) *Trace {
	var want [numKinds]bool
	for _, k := range kinds {
		if k < numKinds {
			want[k] = true
		}
	}
	return t.filter(func(e *Event) bool {
		return e.Kind < numKinds && want[e.Kind]
	})
}

// ROSEvents returns the sub-trace of ROS2 middleware events (everything
// except scheduler events).
func (t *Trace) ROSEvents() *Trace {
	return t.filter(func(e *Event) bool {
		return e.Kind != KindSchedSwitch && e.Kind != KindSchedWakeup
	})
}

// SchedEvents returns the sub-trace of scheduler events (switches and
// wakeups).
func (t *Trace) SchedEvents() *Trace { return t.FilterKind(KindSchedSwitch, KindSchedWakeup) }

// PIDs returns the distinct PIDs of ROS2 events, sorted.
func (t *Trace) PIDs() []uint32 {
	seen := make(map[uint32]bool)
	for _, e := range t.Events {
		if e.Kind != KindSchedSwitch && e.Kind != KindSchedWakeup {
			seen[e.PID] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for pid := range seen {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns the node-name→PID mapping established by P1 events.
func (t *Trace) Nodes() map[string]uint32 {
	out := make(map[string]uint32)
	for _, e := range t.Events {
		if e.Kind == KindCreateNode {
			out[e.Node] = e.PID
		}
	}
	return out
}

// Merge combines traces into one chronologically sorted trace, the
// "merge traces" path of Fig. 2. Inputs that are already (Time, Seq)
// sorted — the common case, since every tracer drains in order — are
// k-way merged in a single output allocation; otherwise it falls back to
// concatenate-and-stable-sort. Ties on (Time, Seq) resolve to the
// earlier input trace, exactly as the stable sort over the concatenation
// would.
func Merge(traces ...*Trace) *Trace {
	ins := make([]*Trace, 0, len(traces))
	total := 0
	allSorted := true
	for _, t := range traces {
		if t == nil || len(t.Events) == 0 {
			continue
		}
		ins = append(ins, t)
		total += len(t.Events)
		allSorted = allSorted && t.sortedByTime()
	}
	out := &Trace{}
	if total == 0 {
		return out
	}
	out.Events = make([]Event, 0, total)
	if !allSorted {
		for _, t := range ins {
			out.Events = append(out.Events, t.Events...)
		}
		out.SortByTime()
		return out
	}
	idx := make([]int, len(ins))
	if len(ins) > mergeLinearStreams {
		return mergeHeap(out, ins, idx, total)
	}
	for len(out.Events) < total {
		best := -1
		for t := range ins {
			if idx[t] >= len(ins[t].Events) {
				continue
			}
			if best < 0 || eventLess(&ins[t].Events[idx[t]], &ins[best].Events[idx[best]]) {
				best = t
			}
		}
		out.Events = append(out.Events, ins[best].Events[idx[best]])
		idx[best]++
	}
	return out
}

// mergeLinearStreams is the stream count up to which Merge scans every
// head per output event; beyond it (e.g. the tracer bundle's 3×NCPU
// per-CPU rings) a tournament heap keeps the per-event cost logarithmic.
const mergeLinearStreams = 4

// mergeHeap is the many-stream merge path: a binary min-heap of stream
// indexes ordered by head event, tie-broken by input index so the output
// is byte-identical to the linear scan (and to the stable sort of the
// concatenation). It is the batch specialization of MergeStream — same
// algorithm, same tie-breaking, pinned against it by
// TestMergeStreamMatchesMerge — kept free of interface dispatch and
// per-stream cursor allocations because every >4-stream Bundle drain
// funnels through here.
func mergeHeap(out *Trace, ins []*Trace, idx []int, total int) *Trace {
	less := func(a, b int) bool {
		ea, eb := &ins[a].Events[idx[a]], &ins[b].Events[idx[b]]
		if ea.Time != eb.Time {
			return ea.Time < eb.Time
		}
		if ea.Seq != eb.Seq {
			return ea.Seq < eb.Seq
		}
		return a < b
	}
	heap := make([]int, len(ins))
	for i := range ins {
		heap[i] = i
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(out.Events) < total {
		t := heap[0]
		out.Events = append(out.Events, ins[t].Events[idx[t]])
		idx[t]++
		if idx[t] >= len(ins[t].Events) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return out
}

// Clone returns a deep copy.
func (t *Trace) Clone() *Trace {
	out := &Trace{Events: make([]Event, len(t.Events))}
	copy(out.Events, t.Events)
	return out
}

// TimeSpan returns the first and last event times (zero values for an
// empty trace).
func (t *Trace) TimeSpan() (first, last sim.Time) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	first, last = t.Events[0].Time, t.Events[0].Time
	for _, e := range t.Events {
		if e.Time < first {
			first = e.Time
		}
		if e.Time > last {
			last = e.Time
		}
	}
	return first, last
}
