package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"github.com/tracesynth/rostracer/internal/sim"
)

// Binary codec: a compact length-delimited record format used by the trace
// database. Layout per record (little endian):
//
//	u32 recordLen (bytes after this field)
//	u8  kind
//	i64 time, u64 seq, u32 pid
//	u64 cbid, i64 srcts, u64 ret
//	i32 cpu, u32 prevPid, u32 nextPid, i32 prevPrio, i32 nextPrio, i32 prevState
//	u16 nodeLen, node bytes
//	u16 topicLen, topic bytes

const binMagic = "RTRC1\n"

// appendRecordBody appends the body of one record — everything after the
// u32 length prefix — to dst. Shared by WriteBinary and SegmentWriter so
// the batch and streaming encoders cannot drift. ok is false when a
// string field exceeds the u16 length prefix; the caller formats the
// error (formatting it here would make every event escape to the heap).
func appendRecordBody(dst []byte, e *Event) (body []byte, ok bool) {
	if len(e.Node) > 0xFFFF || len(e.Topic) > 0xFFFF {
		return nil, false
	}
	b := append(dst, byte(e.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Time))
	b = binary.LittleEndian.AppendUint64(b, e.Seq)
	b = binary.LittleEndian.AppendUint32(b, e.PID)
	b = binary.LittleEndian.AppendUint64(b, e.CBID)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.SrcTS))
	b = binary.LittleEndian.AppendUint64(b, e.Ret)
	b = binary.LittleEndian.AppendUint32(b, uint32(e.CPU))
	b = binary.LittleEndian.AppendUint32(b, e.PrevPID)
	b = binary.LittleEndian.AppendUint32(b, e.NextPID)
	b = binary.LittleEndian.AppendUint32(b, uint32(e.PrevPrio))
	b = binary.LittleEndian.AppendUint32(b, uint32(e.NextPrio))
	b = binary.LittleEndian.AppendUint32(b, uint32(e.PrevState))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Node)))
	b = append(b, e.Node...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Topic)))
	b = append(b, e.Topic...)
	return b, true
}

// WriteBinary encodes t to w: the batch wrapper over SegmentWriter.
func WriteBinary(w io.Writer, t *Trace) error {
	sw := NewSegmentWriter(w)
	for _, e := range t.Events {
		sw.Observe(e)
	}
	return sw.Close()
}

// ReadBinary decodes a trace written by WriteBinary: the batch wrapper
// over FileCursor. It is all-or-nothing — any decode error discards the
// events read so far; use FileCursor directly to consume the valid
// prefix of a damaged segment.
func ReadBinary(r io.Reader) (*Trace, error) {
	c := NewFileCursor(r)
	out := &Trace{}
	for {
		e, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Events = append(out.Events, e)
	}
}

// recFixedSize is the byte count of a record's fixed fields: the kind
// byte, the numeric header, and the two (possibly zero-length) string
// length prefixes. Shorter records cannot have been produced by
// WriteBinary.
const recFixedSize = 1 + // kind
	8 + 8 + 4 + // time, seq, pid
	8 + 8 + 8 + // cbid, srcts, ret
	4*6 + // cpu, prevPid, nextPid, prevPrio, nextPrio, prevState
	2 + 2 // nodeLen, topicLen

// decodeRecord decodes one length-delimited record body. Every read is
// bounds-checked: a truncated or corrupt record returns an error instead
// of panicking, so callers can feed the codec untrusted trace files.
func decodeRecord(b []byte) (Event, error) {
	var e Event
	if len(b) < recFixedSize {
		return e, fmt.Errorf("trace: record too short: %d bytes, need at least %d", len(b), recFixedSize)
	}
	e.Kind = Kind(b[0])
	if e.Kind == KindInvalid || e.Kind >= numKinds {
		return e, fmt.Errorf("trace: invalid kind %d", b[0])
	}
	o := 1
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(b[o:]); o += 8; return v }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(b[o:]); o += 4; return v }
	e.Time = sim.Time(u64())
	e.Seq = u64()
	e.PID = u32()
	e.CBID = u64()
	e.SrcTS = int64(u64())
	e.Ret = u64()
	e.CPU = int32(u32())
	e.PrevPID = u32()
	e.NextPID = u32()
	e.PrevPrio = int32(u32())
	e.NextPrio = int32(u32())
	e.PrevState = int32(u32())
	nodeLen := int(binary.LittleEndian.Uint16(b[o:]))
	o += 2
	// The second length prefix still has to fit after the node bytes.
	if o+nodeLen+2 > len(b) {
		return e, fmt.Errorf("trace: node string overruns record")
	}
	node := b[o : o+nodeLen]
	o += nodeLen
	topicLen := int(binary.LittleEndian.Uint16(b[o:]))
	o += 2
	if o+topicLen > len(b) {
		return e, fmt.Errorf("trace: topic string overruns record")
	}
	if o+topicLen != len(b) {
		return e, fmt.Errorf("trace: %d trailing bytes after record", len(b)-o-topicLen)
	}
	// Intern only once the whole record has validated, so malformed
	// input cannot populate the process-wide name table.
	e.Node = InternBytes(node)
	e.Topic = InternBytes(b[o : o+topicLen])
	return e, nil
}

// jsonEvent is the JSONL wire form, with omission of empty fields.
type jsonEvent struct {
	T     int64  `json:"t"`
	Seq   uint64 `json:"seq"`
	PID   uint32 `json:"pid,omitempty"`
	Kind  string `json:"kind"`
	K     uint8  `json:"k"`
	Node  string `json:"node,omitempty"`
	CBID  uint64 `json:"cbid,omitempty"`
	Topic string `json:"topic,omitempty"`
	SrcTS int64  `json:"srcts,omitempty"`
	Ret   uint64 `json:"ret,omitempty"`
	CPU   int32  `json:"cpu,omitempty"`
	PPID  uint32 `json:"prev_pid,omitempty"`
	NPID  uint32 `json:"next_pid,omitempty"`
	PPrio int32  `json:"prev_prio,omitempty"`
	NPrio int32  `json:"next_prio,omitempty"`
	PSt   int32  `json:"prev_state,omitempty"`
}

// JSONLSink is a Sink streaming events to w as one JSON object per line.
// Encoding errors are sticky: the first one stops further output and is
// reported by Flush (and Err).
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer // non-nil when the sink owns the underlying writer
	err error
}

// NewJSONLSink creates a JSONL sink over w. Call Flush when the stream
// ends.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// NewJSONLSinkCloser is NewJSONLSink over a writer the sink owns: Close
// closes wc after flushing, so a fan-out holding the sink can release
// the file without knowing about it.
func NewJSONLSinkCloser(wc io.WriteCloser) *JSONLSink {
	s := NewJSONLSink(wc)
	s.c = wc
	return s
}

// Observe implements Sink.
func (s *JSONLSink) Observe(e Event) {
	if s.err != nil {
		return
	}
	je := jsonEvent{
		T: int64(e.Time), Seq: e.Seq, PID: e.PID, Kind: e.Kind.String(),
		K: uint8(e.Kind), Node: e.Node, CBID: e.CBID, Topic: e.Topic,
		SrcTS: e.SrcTS, Ret: e.Ret, CPU: e.CPU, PPID: e.PrevPID,
		NPID: e.NextPID, PPrio: e.PrevPrio, NPrio: e.NextPrio, PSt: e.PrevState,
	}
	s.err = s.enc.Encode(&je)
}

// Err reports the first encoding error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Flush writes buffered output and reports the first error of the whole
// stream.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Close flushes buffered output — even after a sticky encoding error,
// salvaging the events encoded before it — and closes the underlying
// writer when the sink owns it (NewJSONLSinkCloser). Close is
// idempotent; it reports the first error of the whole stream, then any
// flush or close failure.
func (s *JSONLSink) Close() error {
	ferr := s.bw.Flush()
	var cerr error
	if s.c != nil {
		cerr = s.c.Close()
		s.c = nil
	}
	if s.err != nil {
		return s.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// WriteJSONL encodes t as one JSON object per line, a convenient form for
// external tooling.
func WriteJSONL(w io.Writer, t *Trace) error {
	s := NewJSONLSink(w)
	for _, e := range t.Events {
		s.Observe(e)
	}
	return s.Flush()
}

// ReadJSONL decodes a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	out := &Trace{}
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out.Events = append(out.Events, Event{
			Time: sim.Time(je.T), Seq: je.Seq, PID: je.PID, Kind: Kind(je.K),
			Node: je.Node, CBID: je.CBID, Topic: je.Topic, SrcTS: je.SrcTS,
			Ret: je.Ret, CPU: je.CPU, PrevPID: je.PPID, NextPID: je.NPID,
			PrevPrio: je.PPrio, NextPrio: je.NPrio, PrevState: je.PSt,
		})
	}
}
