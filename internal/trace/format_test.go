package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// tracedEvents is a (Time, Seq)-sorted fixture shaped like a real drain:
// recurring node/topic names, near-monotone times, a sched interleave —
// the stream v2's delta + table encoding is built for.
func tracedEvents(n int) []Event {
	nodes := []string{"filter_front", "filter_rear", "fusion"}
	topics := []string{"lidar_front/points_raw", "lidar_rear/points_raw", "fused/objects"}
	out := make([]Event, 0, n)
	now := sim.Time(1000)
	for i := 0; i < n; i++ {
		now += sim.Time(3 + i%7)
		var ev Event
		switch i % 5 {
		case 0:
			ev = Event{Kind: KindSubCBStart, PID: uint32(100 + i%3), Node: nodes[i%3]}
		case 1:
			ev = Event{Kind: KindTakeInt, PID: uint32(100 + i%3), CBID: uint64(0xA0 + i%3),
				Topic: topics[i%3], SrcTS: int64(now) - 5}
		case 2:
			ev = Event{Kind: KindDDSWrite, PID: uint32(100 + i%3), Topic: topics[(i+1)%3], SrcTS: int64(now)}
		case 3:
			ev = Event{Kind: KindSchedSwitch, CPU: int32(i % 4), PrevPID: uint32(100 + i%3),
				NextPID: uint32(100 + (i+1)%3), PrevPrio: 5, NextPrio: 9, PrevState: 1}
		case 4:
			ev = Event{Kind: KindSubCBEnd, PID: uint32(100 + i%3), Node: nodes[i%3]}
		}
		ev.Time = now
		ev.Seq = uint64(i + 1)
		out = append(out, ev)
	}
	return out
}

// TestFormatCompatRoundTrip is the cross-version equivalence pin: the
// same events written as v1 and as v2 (several block sizes, including
// blocks larger than the stream) must decode to identical streams, and
// the decoded stream must equal the input.
func TestFormatCompatRoundTrip(t *testing.T) {
	for _, events := range [][]Event{sampleEvents(), tracedEvents(1000), nil, tracedEvents(1)} {
		var v1 bytes.Buffer
		if err := WriteBinary(&v1, &Trace{Events: events}); err != nil {
			t.Fatal(err)
		}
		fromV1, err := ReadBinary(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, blockRecords := range []int{1, 4, 0, len(events) + 1} {
			fromV2, err := ReadBinary(bytes.NewReader(encodeV2(t, events, blockRecords)))
			if err != nil {
				t.Fatalf("v2(block=%d): %v", blockRecords, err)
			}
			if !reflect.DeepEqual(fromV2.Events, fromV1.Events) {
				t.Fatalf("v2(block=%d) decode diverges from v1: %d vs %d events",
					blockRecords, fromV2.Len(), fromV1.Len())
			}
			if len(events) > 0 && !reflect.DeepEqual(fromV2.Events, events) {
				t.Fatalf("v2(block=%d) decode diverges from input", blockRecords)
			}
		}
	}
}

// TestFormatCompatStore pins store-level equivalence: the same session
// written through a v1 store and a v2 store must stream, load, and
// salvage identically, while the v2 store holds it in at least 3x fewer
// bytes (the compression floor docs/PERFORMANCE.md reports on).
func TestFormatCompatStore(t *testing.T) {
	events := tracedEvents(2000)
	perSeg := len(events) / 4
	stores := map[Format]*Store{}
	sizes := map[Format]int64{}
	streams := map[Format][]Event{}
	for _, format := range []Format{FormatV1, FormatV2} {
		s, err := NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s.Format = format
		s.BlockRecords = 64
		for i := 0; i < 4; i++ {
			writeSessionSegment(t, s, "run", i, events[i*perSeg:(i+1)*perSeg])
		}
		var col Collector
		if err := s.StreamSession("run", &col); err != nil {
			t.Fatal(err)
		}
		var size int64
		names, err := s.segmentNames("run")
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			fi, err := os.Stat(filepath.Join(s.dir, name))
			if err != nil {
				t.Fatal(err)
			}
			size += fi.Size()
		}
		stores[format], sizes[format], streams[format] = s, size, col.Trace.Events
	}
	if !reflect.DeepEqual(streams[FormatV1], streams[FormatV2]) {
		t.Fatalf("cross-format StreamSession diverges: %d vs %d events",
			len(streams[FormatV1]), len(streams[FormatV2]))
	}
	if !reflect.DeepEqual(streams[FormatV1], events) {
		t.Fatal("streamed session diverges from input")
	}
	// LoadSegment reads both formats through the same path.
	for format, s := range stores {
		tr, err := s.LoadSegment("run", 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.Events, events[2*perSeg:3*perSeg]) {
			t.Fatalf("%s LoadSegment diverges", format)
		}
	}
	ratio := float64(sizes[FormatV1]) / float64(sizes[FormatV2])
	t.Logf("session size: v1 %d bytes, v2 %d bytes (%.1fx)", sizes[FormatV1], sizes[FormatV2], ratio)
	if ratio < 3 {
		t.Fatalf("v2 compression %.2fx below the 3x floor (v1 %d bytes, v2 %d)",
			ratio, sizes[FormatV1], sizes[FormatV2])
	}
}

// TestSegmentWriterFormatKnob pins the constructor contract: the zero
// knob means v2, NewSegmentWriter stays v1 (its WriteBinary
// byte-equivalence pin depends on it), and both magics differ.
func TestSegmentWriterFormatKnob(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSegmentWriterFormat(&buf, 0, 0)
	if sw.Format() != FormatV2 {
		t.Fatalf("default format = %v, want v2", sw.Format())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(binMagic2)) {
		t.Fatalf("v2 writer emitted %q", buf.Bytes())
	}
	buf.Reset()
	sw = NewSegmentWriter(&buf)
	if sw.Format() != FormatV1 {
		t.Fatalf("NewSegmentWriter format = %v, want v1", sw.Format())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(binMagic)) {
		t.Fatalf("v1 writer emitted %q", buf.Bytes())
	}
}

// v2Layout decodes a v2 segment's frame layout for byte-surgery tests:
// the end offset of every block frame, and the footer frame's start.
func v2Layout(t *testing.T, data []byte) (blockEnds []int64, footerStart int64) {
	t.Helper()
	fc := NewFileCursor(bytes.NewReader(data))
	if evs, err := drainCursor(fc); err != nil {
		t.Fatalf("layout walk failed after %d events: %v", len(evs), err)
	}
	for _, bi := range fc.BlockIndex() {
		blockEnds = append(blockEnds, bi.Offset+5+int64(bi.Len))
	}
	footerStart = int64(len(binMagic2))
	if len(blockEnds) > 0 {
		footerStart = blockEnds[len(blockEnds)-1]
	}
	return blockEnds, footerStart
}

// TestSegmentCrashRecoveryV2 is the v2 twin of TestSegmentCrashRecovery:
// truncate a finished v2 segment at every byte boundary — through every
// block and through the footer — and demand, at each cut: no panic, only
// a strict prefix of the true stream (never a partial record), a clean
// EOF exactly at frame boundaries, ErrBadFooter for cuts inside the
// footer, and salvage agreeing with the plain cursor byte for byte.
func TestSegmentCrashRecoveryV2(t *testing.T) {
	evs := tracedEvents(19)
	full := encodeV2(t, evs, 4) // 5 blocks + footer
	blockEnds, footerStart := v2Layout(t, full)
	if len(blockEnds) != 5 {
		t.Fatalf("fixture has %d blocks, want 5", len(blockEnds))
	}
	clean := map[int64]bool{int64(len(binMagic2)): true, int64(len(full)): true}
	for _, end := range blockEnds {
		clean[end] = true
	}
	// Records fully covered by complete blocks below each cut.
	completeBelow := func(cut int64) int {
		n := 0
		for i, end := range blockEnds {
			if end <= cut {
				n = (i + 1) * 4
			}
		}
		if n > len(evs) {
			n = len(evs)
		}
		return n
	}

	prevK := 0
	for cut := int64(len(binMagic2)); cut <= int64(len(full)); cut++ {
		data := full[:cut]
		got, err := drainCursor(NewFileCursor(bytes.NewReader(data)))
		if len(got) > len(evs) {
			t.Fatalf("cut %d: yielded %d events, stream has %d", cut, len(got), len(evs))
		}
		for i := range got {
			if got[i] != evs[i] {
				t.Fatalf("cut %d: event %d diverges from the stream", cut, i)
			}
		}
		k := len(got)
		if k < prevK {
			t.Fatalf("cut %d: recovered %d events, cut %d recovered %d — not monotone", cut, k, cut-1, prevK)
		}
		prevK = k
		if k < completeBelow(cut) {
			t.Fatalf("cut %d: recovered %d events, %d are in complete blocks", cut, k, completeBelow(cut))
		}
		switch {
		case clean[cut]:
			if err != nil {
				t.Fatalf("cut %d: frame-boundary truncation rejected: %v", cut, err)
			}
		case cut > footerStart:
			if !errors.Is(err, ErrBadFooter) {
				t.Fatalf("cut %d (inside footer): err=%v, want ErrBadFooter", cut, err)
			}
			if k != len(evs) {
				t.Fatalf("cut %d (inside footer): recovered %d of %d events", cut, k, len(evs))
			}
		default:
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d (inside block): err=%v, want ErrTruncated", cut, err)
			}
		}
		// Salvage == plain cursor, byte for byte.
		var salvaged []Event
		rep := SalvageReader(bytes.NewReader(data), SinkFunc(func(e Event) { salvaged = append(salvaged, e) }))
		if !reflect.DeepEqual(salvaged, got) || rep.Damaged != (err != nil) {
			t.Fatalf("cut %d: salvage (%d events, damaged=%v) diverges from cursor (%d events, err=%v)",
				cut, len(salvaged), rep.Damaged, k, err)
		}
		if rep.BytesRecovered > cut || !clean[rep.BytesRecovered] && rep.BytesRecovered != int64(len(binMagic2)) {
			t.Fatalf("cut %d: BytesRecovered %d is not a frame boundary", cut, rep.BytesRecovered)
		}
	}
}

// TestSalvageV2Damage covers the v2 damage classes end to end through
// the store: torn block (truncated), stomped frame tag (corrupt),
// corrupted block body (bad-block, with the block's record prefix
// recovered), corrupted footer (bad-footer, all records recovered), and
// a missing footer (clean crash shape — not damage at all).
func TestSalvageV2Damage(t *testing.T) {
	evs := tracedEvents(32)
	mkStore := func(t *testing.T) (*Store, string) {
		s, err := NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s.BlockRecords = 8 // 4 blocks
		return s, writeSessionSegment(t, s, "d", 0, evs)
	}
	layout := func(t *testing.T, path string) ([]int64, int64, []byte) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		ends, footerStart := v2Layout(t, data)
		return ends, footerStart, data
	}

	t.Run("torn-block", func(t *testing.T) {
		s, path := mkStore(t)
		ends, _, _ := layout(t, path)
		if err := os.Truncate(path, ends[1]+7); err != nil { // into block 2's body
			t.Fatal(err)
		}
		var got collectSink
		rep, err := s.SalvageSession("d", &got)
		if err != nil {
			t.Fatal(err)
		}
		seg := rep.Segments[0]
		if seg.Cause != "truncated" || !errors.Is(seg.Err, ErrTruncated) {
			t.Fatalf("cause = %q (%v), want truncated", seg.Cause, seg.Err)
		}
		if seg.Events != 16 || len(got.events) != 16 {
			t.Fatalf("recovered %d events, want the 16 in complete blocks", seg.Events)
		}
		if seg.BytesRecovered != ends[1] || seg.BytesDropped != 7 {
			t.Fatalf("bytes: %+v, want %d recovered / 7 dropped", seg, ends[1])
		}
	})

	t.Run("stomped-tag", func(t *testing.T) {
		s, path := mkStore(t)
		ends, _, _ := layout(t, path)
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, ends[2]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		rep, err := s.SalvageSession("d", nil)
		if err != nil {
			t.Fatal(err)
		}
		seg := rep.Segments[0]
		if seg.Cause != "corrupt" || seg.Events != 24 || seg.BytesRecovered != ends[2] {
			t.Fatalf("report %+v, want corrupt with 24 events", seg)
		}
	})

	t.Run("bad-block-body", func(t *testing.T) {
		s, path := mkStore(t)
		ends, _, data := layout(t, path)
		// Stomp the kind byte of block 2's first record with an invalid
		// kind: the frame is complete, the content is not. Block 1's
		// records survive; block 2 contributes nothing.
		body := data[ends[0]+5 : ends[1]]
		_, _, recStart, err := decodeBlockHeader(body, nil)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff}, ends[0]+5+int64(recStart)); err != nil {
			t.Fatal(err)
		}
		f.Close()
		var got collectSink
		rep, err := s.SalvageSession("d", &got)
		if err != nil {
			t.Fatal(err)
		}
		seg := rep.Segments[0]
		if seg.Cause != "bad-block" || !errors.Is(seg.Err, ErrBadBlock) {
			t.Fatalf("cause = %q (%v), want bad-block", seg.Cause, seg.Err)
		}
		if seg.Events != 8 {
			t.Fatalf("recovered %d events, want the 8 in block 1", seg.Events)
		}
		if !reflect.DeepEqual(got.events, evs[:8]) {
			t.Fatal("salvaged events are not the stream's 8-event prefix")
		}
		if seg.BytesRecovered != ends[0] {
			t.Fatalf("BytesRecovered %d, want %d (block 1 only: the damaged frame is not valid bytes)",
				seg.BytesRecovered, ends[0])
		}
	})

	t.Run("bad-footer", func(t *testing.T) {
		s, path := mkStore(t)
		_, footerStart, data := layout(t, path)
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt one byte of the footer body (not the trailer).
		if _, err := f.WriteAt([]byte{data[footerStart+7] ^ 0xff}, footerStart+7); err != nil {
			t.Fatal(err)
		}
		f.Close()
		var got collectSink
		rep, err := s.SalvageSession("d", &got)
		if err != nil {
			t.Fatal(err)
		}
		seg := rep.Segments[0]
		if seg.Cause != "bad-footer" || !errors.Is(seg.Err, ErrBadFooter) {
			t.Fatalf("cause = %q (%v), want bad-footer", seg.Cause, seg.Err)
		}
		if seg.Events != len(evs) || !reflect.DeepEqual(got.events, evs) {
			t.Fatalf("recovered %d events, want all %d (only the index is damaged)", seg.Events, len(evs))
		}
	})

	t.Run("missing-footer", func(t *testing.T) {
		s, path := mkStore(t)
		_, footerStart, _ := layout(t, path)
		if err := os.Truncate(path, footerStart); err != nil {
			t.Fatal(err)
		}
		// A crashed writer's shape: strict streaming accepts it.
		var got collectSink
		if err := s.StreamSession("d", &got); err != nil {
			t.Fatalf("footer-less segment rejected: %v", err)
		}
		if !reflect.DeepEqual(got.events, evs) {
			t.Fatalf("streamed %d events, want all %d", len(got.events), len(evs))
		}
		fsck, err := s.Fsck()
		if err != nil {
			t.Fatal(err)
		}
		if !fsck.Clean() {
			t.Fatalf("fsck flags a clean crash shape: %s", fsck)
		}
	})
}

// TestFsckClassifiesV2Damage checks fsck surfaces the v2-specific
// classes alongside the v1 ones.
func TestFsckClassifiesV2Damage(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.BlockRecords = 8
	evs := tracedEvents(32)
	writeSessionSegment(t, s, "v", 0, evs) // clean
	p1 := writeSessionSegment(t, s, "v", 1, evs)
	p2 := writeSessionSegment(t, s, "v", 2, evs)
	ends, _, _ := func() ([]int64, int64, []byte) {
		data, err := os.ReadFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		e, fs := v2Layout(t, data)
		return e, fs, data
	}()
	if err := os.Truncate(p1, ends[2]+3); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-footerTrailerLen-2] ^= 0xff // corrupt footer body tail
	if err := os.WriteFile(p2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged() != 2 {
		t.Fatalf("fsck damaged = %d, want 2\n%s", rep.Damaged(), rep)
	}
	causes := map[string]string{}
	for _, sess := range rep.Sessions {
		for _, seg := range sess.Segments {
			if seg.Damaged {
				causes[seg.Name] = seg.Cause
			}
		}
	}
	if causes[filepath.Base(p1)] != "truncated" || causes[filepath.Base(p2)] != "bad-footer" {
		t.Fatalf("causes = %v, want truncated + bad-footer", causes)
	}
	if !strings.Contains(rep.String(), "[bad-footer]") {
		t.Fatalf("fsck text missing class:\n%s", rep)
	}
}

// queryStore builds a 4-segment v2 session over tracedEvents(2000).
func queryStore(t *testing.T, format Format) (*Store, []Event) {
	t.Helper()
	events := tracedEvents(2000)
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Format = format
	s.BlockRecords = 32
	perSeg := len(events) / 4
	for i := 0; i < 4; i++ {
		writeSessionSegment(t, s, "q", i, events[i*perSeg:(i+1)*perSeg])
	}
	return s, events
}

// applyFilter is the reference filter semantics QuerySession must match.
func applyFilter(events []Event, f Filter) []Event {
	cf := compileFilter(f)
	var out []Event
	for i := range events {
		if cf.match(&events[i]) {
			out = append(out, events[i])
		}
	}
	return out
}

// TestQuerySessionMatchesFilteredStream pins QuerySession to the
// reference semantics on both formats across filter shapes: time
// windows, kind sets, node restriction, combinations, and the empty
// filter (which must equal StreamSession exactly).
func TestQuerySessionMatchesFilteredStream(t *testing.T) {
	filters := []Filter{
		{},
		{T0: 2000, T1: 3000},
		{T1: 1500},
		{T0: 4000},
		{Kinds: []Kind{KindSchedSwitch}},
		{Kinds: []Kind{KindTakeInt, KindDDSWrite}, T0: 2500, T1: 5000},
		{Node: "fusion"},
		{Node: "fusion", T0: 3000, T1: 3500, Kinds: []Kind{KindSubCBStart, KindSubCBEnd}},
		{Node: "no_such_node"},
		{T0: 1 << 40},
	}
	for _, format := range []Format{FormatV1, FormatV2} {
		s, events := queryStore(t, format)
		for i, f := range filters {
			var got collectSink
			stats, err := s.QuerySession("q", f, &got)
			if err != nil {
				t.Fatalf("%s filter %d: %v", format, i, err)
			}
			want := applyFilter(events, f)
			if !reflect.DeepEqual(got.events, want) {
				t.Fatalf("%s filter %d (%+v): got %d events, want %d",
					format, i, f, len(got.events), len(want))
			}
			if stats.RecordsMatched != len(want) {
				t.Fatalf("%s filter %d: stats matched %d, want %d", format, i, stats.RecordsMatched, len(want))
			}
			if format == FormatV1 && stats.Scans != 4 {
				t.Fatalf("v1 filter %d: %d scans, want 4", i, stats.Scans)
			}
		}
	}
}

// TestQuerySessionSkipsBlocks proves the indexed read does sublinear
// work: a narrow time window must decode only the overlapping blocks,
// a non-occurring kind and a non-occurring node must decode nothing,
// and stats must account for every block.
func TestQuerySessionSkipsBlocks(t *testing.T) {
	s, events := queryStore(t, FormatV2)
	var full collectSink
	fullStats, err := s.QuerySession("q", Filter{}, &full)
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.BlocksRead != fullStats.BlocksTotal || fullStats.BlocksSkipped != 0 {
		t.Fatalf("empty filter skipped blocks: %+v", fullStats)
	}
	if fullStats.RecordsDecoded != len(events) {
		t.Fatalf("full query decoded %d records, want %d", fullStats.RecordsDecoded, len(events))
	}

	mid := events[len(events)/2].Time
	narrow := Filter{T0: mid, T1: mid + 50}
	var got collectSink
	stats, err := s.QuerySession("q", narrow, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.events, applyFilter(events, narrow)) {
		t.Fatal("narrow window result wrong")
	}
	if stats.BlocksRead+stats.BlocksSkipped != stats.BlocksTotal {
		t.Fatalf("block accounting broken: %+v", stats)
	}
	if stats.BlocksRead*4 > stats.BlocksTotal {
		t.Fatalf("narrow window read %d of %d blocks — index not skipping", stats.BlocksRead, stats.BlocksTotal)
	}
	if stats.RecordsDecoded >= len(events)/4 {
		t.Fatalf("narrow window decoded %d records — not sublinear", stats.RecordsDecoded)
	}

	// A kind that never occurs: the kind bitmap excludes every block.
	stats, err = s.QuerySession("q", Filter{Kinds: []Kind{KindCreateNode}}, &collectSink{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksRead != 0 || stats.RecordsDecoded != 0 {
		t.Fatalf("absent kind still decoded: %+v", stats)
	}

	// A node that never occurs: the per-block string tables exclude every
	// block without decoding records.
	stats, err = s.QuerySession("q", Filter{Node: "no_such_node"}, &collectSink{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsDecoded != 0 {
		t.Fatalf("absent node still decoded records: %+v", stats)
	}
}

// TestQuerySessionRebuildsMissingFooter: a crashed-writer segment (no
// footer) must still be queryable — its index is rebuilt by one scan —
// and mixed v1/v2 sessions must work, since each segment picks its own
// path.
func TestQuerySessionMixedAndRebuilt(t *testing.T) {
	events := tracedEvents(600)
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.BlockRecords = 32
	s.Format = FormatV1
	writeSessionSegment(t, s, "m", 0, events[:200])
	s.Format = FormatV2
	writeSessionSegment(t, s, "m", 1, events[200:400])
	p2 := writeSessionSegment(t, s, "m", 2, events[400:])
	// Decapitate segment 2's footer: crash shape.
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	_, footerStart := v2Layout(t, data)
	if err := os.Truncate(p2, footerStart); err != nil {
		t.Fatal(err)
	}

	f := Filter{T0: events[100].Time, T1: events[500].Time}
	var got collectSink
	stats, err := s.QuerySession("m", f, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.events, applyFilter(events, f)) {
		t.Fatalf("mixed-session query wrong: %d events", len(got.events))
	}
	if stats.Scans != 1 || stats.FootersRebuilt != 1 || stats.Segments != 3 {
		t.Fatalf("stats = %+v, want 1 v1 scan + 1 rebuilt footer over 3 segments", stats)
	}
}

// TestQuerySessionWrapReaderFallback: fault-injected stores read through
// WrapReader, which cannot seek — the query must fall back to filtered
// sequential scans and still match the reference semantics.
func TestQuerySessionWrapReaderFallback(t *testing.T) {
	s, events := queryStore(t, FormatV2)
	reads := 0
	s.WrapReader = func(name string, f io.Reader) io.Reader { reads++; return f }
	fl := Filter{Kinds: []Kind{KindSchedSwitch}, T0: 2000}
	var got collectSink
	stats, err := s.QuerySession("q", fl, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.events, applyFilter(events, fl)) {
		t.Fatal("wrapped query diverges from reference")
	}
	if stats.Scans != 4 || stats.BlocksRead != 0 || reads != 4 {
		t.Fatalf("stats = %+v (wrapped %d), want 4 sequential scans", stats, reads)
	}
}

// TestQuerySessionDamageFails pins the strictness contract: QuerySession
// fails on damage exactly like StreamSession (salvage is the lenient
// path), and names the segment either way.
func TestQuerySessionDamageFails(t *testing.T) {
	s, _ := queryStore(t, FormatV2)
	names, err := s.segmentNames("q")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.dir, names[1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, footerStart := v2Layout(t, data)
	if err := os.Truncate(path, footerStart-5); err != nil { // torn last block
		t.Fatal(err)
	}
	_, qerr := s.QuerySession("q", Filter{}, &collectSink{})
	serr := s.StreamSession("q", &collectSink{})
	if qerr == nil || serr == nil {
		t.Fatalf("damage accepted: query=%v stream=%v", qerr, serr)
	}
	if !errors.Is(qerr, ErrTruncated) || !strings.Contains(qerr.Error(), names[1]) {
		t.Fatalf("query error = %v, want named ErrTruncated like stream's %v", qerr, serr)
	}
}

// TestParseKind pins the accepted spellings of the CLI kind syntax.
func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"P6:rmw_take_int", KindTakeInt, true},
		{"P6", KindTakeInt, true},
		{"rmw_take_int", KindTakeInt, true},
		{"sched_switch", KindSchedSwitch, true},
		{"execute_timer:entry", KindTimerCBStart, true},
		{"P16", KindDDSWrite, true},
		{"invalid", KindInvalid, false},
		{"", KindInvalid, false},
		{"P99", KindInvalid, false},
	}
	for _, c := range cases {
		got, ok := ParseKind(c.in)
		if got != c.want || ok != c.ok {
			t.Fatalf("ParseKind(%q) = %v/%v, want %v/%v", c.in, got, ok, c.want, c.ok)
		}
	}
	// Every kind's canonical String() must parse back to itself.
	for k := KindInvalid + 1; k < numKinds; k++ {
		if got, ok := ParseKind(k.String()); !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v/%v, want %v", k.String(), got, ok, k)
		}
	}
}
