package trace

import (
	"math/rand"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// randomSortedStreams builds n independently (Time, Seq)-sorted streams
// whose Seq values are globally unique, like perf rings sharing one
// emission counter.
func randomSortedStreams(rng *rand.Rand, n, maxLen int) []*Trace {
	seq := uint64(0)
	streams := make([]*Trace, n)
	for i := range streams {
		streams[i] = &Trace{}
	}
	// Round-robin with random skips, time advancing globally: every
	// stream ends up individually sorted.
	now := sim.Time(0)
	for placed := 0; placed < n*maxLen; placed++ {
		s := rng.Intn(n)
		for len(streams[s].Events) >= maxLen {
			s = (s + 1) % n
		}
		if rng.Intn(3) == 0 {
			now += sim.Time(rng.Intn(50))
		}
		streams[s].Append(Event{
			Time: now,
			Seq:  seq,
			PID:  uint32(100 + s),
			Kind: KindSchedSwitch,
			CPU:  int32(s),
		})
		seq++
	}
	return streams
}

// TestMergeStreamMatchesMerge pins the streaming merge to the batch
// Merge byte for byte, across random stream counts on both sides of the
// linear/heap threshold.
func TestMergeStreamMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		streams := randomSortedStreams(rng, n, 1+rng.Intn(60))
		want := Merge(streams...)

		curs := make([]Cursor, n)
		for i, s := range streams {
			curs[i] = &SliceCursor{Events: s.Events}
		}
		var col Collector
		if err := NewMergeStream(curs...).Run(&col); err != nil {
			t.Fatal(err)
		}
		got := &col.Trace
		if got.Len() != want.Len() {
			t.Fatalf("trial %d: stream merged %d events, batch %d", trial, got.Len(), want.Len())
		}
		for i := range want.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("trial %d: event %d differs:\n stream: %v\n batch:  %v",
					trial, i, got.Events[i], want.Events[i])
			}
		}
	}
}

// TestMergeStreamTieBreak pins tie resolution: equal (Time, Seq) pairs
// resolve to the earlier cursor, matching Merge's stable behaviour.
func TestMergeStreamTieBreak(t *testing.T) {
	a := &Trace{Events: []Event{{Time: 5, Seq: 1, PID: 1}, {Time: 9, Seq: 3, PID: 1}}}
	b := &Trace{Events: []Event{{Time: 5, Seq: 1, PID: 2}, {Time: 9, Seq: 3, PID: 2}}}
	var col Collector
	err := NewMergeStream(&SliceCursor{Events: a.Events}, &SliceCursor{Events: b.Events}).Run(&col)
	if err != nil {
		t.Fatal(err)
	}
	wantPIDs := []uint32{1, 2, 1, 2}
	for i, e := range col.Trace.Events {
		if e.PID != wantPIDs[i] {
			t.Fatalf("tie-break broken at %d: got PID %d, want %d", i, e.PID, wantPIDs[i])
		}
	}
}

// TestMergeStreamBufferBound checks the merge never holds more than one
// event per input stream, regardless of total stream length.
func TestMergeStreamBufferBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	streams := randomSortedStreams(rng, 9, 500)
	curs := make([]Cursor, len(streams))
	for i, s := range streams {
		curs[i] = &SliceCursor{Events: s.Events}
	}
	m := NewMergeStream(curs...)
	total, maxBuf := 0, 0
	if err := m.Run(SinkFunc(func(Event) {
		total++
		if b := m.Buffered(); b > maxBuf {
			maxBuf = b
		}
	})); err != nil {
		t.Fatal(err)
	}
	if total != 9*500 {
		t.Fatalf("merged %d events, want %d", total, 9*500)
	}
	if maxBuf > len(streams) {
		t.Fatalf("merge buffered %d events; bound is one per stream (%d)", maxBuf, len(streams))
	}
}

// TestKindCounterAndMultiSink exercises the tee and the counting sink
// against a collector on the same stream.
func TestKindCounterAndMultiSink(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	streams := randomSortedStreams(rng, 3, 40)
	streams[0].Events[0].Kind = KindCreateNode

	var kc KindCounter
	var col Collector
	curs := make([]Cursor, len(streams))
	for i, s := range streams {
		curs[i] = &SliceCursor{Events: s.Events}
	}
	if err := NewMergeStream(curs...).Run(MultiSink(&kc, nil, &col)); err != nil {
		t.Fatal(err)
	}
	if kc.Total() != col.Trace.Len() {
		t.Fatalf("counter saw %d events, collector %d", kc.Total(), col.Trace.Len())
	}
	if kc.Count(KindCreateNode) != 1 {
		t.Fatalf("KindCreateNode count = %d, want 1", kc.Count(KindCreateNode))
	}
	if kc.Count(KindSchedSwitch) != col.Trace.Len()-1 {
		t.Fatalf("KindSchedSwitch count = %d, want %d", kc.Count(KindSchedSwitch), col.Trace.Len()-1)
	}
}

// TestCollectorGrow checks Grow pre-allocates without changing content.
func TestCollectorGrow(t *testing.T) {
	var c Collector
	c.Observe(Event{Time: 1, Seq: 1})
	c.Grow(100)
	if cap(c.Trace.Events)-len(c.Trace.Events) < 100 {
		t.Fatalf("Grow(100) left capacity %d", cap(c.Trace.Events)-len(c.Trace.Events))
	}
	if c.Trace.Len() != 1 || c.Trace.Events[0].Seq != 1 {
		t.Fatal("Grow corrupted collected events")
	}
}
