package trace

import (
	"reflect"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// synthTrace builds a deterministic pseudo-random trace. sorted controls
// whether it comes out in (Time, Seq) order.
func synthTrace(seed uint64, n int, sorted bool) *Trace {
	state := seed | 1
	next := func(m int) int {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return int((state * 0x2545f4914f6cdd1d) >> 33 % uint64(m))
	}
	tr := &Trace{}
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		now += sim.Time(next(3)) // duplicate times are common and must tie-break on Seq
		e := Event{
			Time: now,
			Seq:  seed*1e6 + uint64(i),
			PID:  uint32(next(4) + 1),
			Kind: Kind(next(int(numKinds)-1) + 1),
		}
		tr.Events = append(tr.Events, e)
	}
	if !sorted {
		// Deterministic shuffle.
		for i := len(tr.Events) - 1; i > 0; i-- {
			j := next(i + 1)
			tr.Events[i], tr.Events[j] = tr.Events[j], tr.Events[i]
		}
	}
	return tr
}

// referenceMerge is the original concatenate-then-stable-sort semantics.
func referenceMerge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		if t != nil {
			out.Events = append(out.Events, t.Events...)
		}
	}
	out.SortByTime()
	return out
}

func TestMergeMatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		traces []*Trace
	}{
		{"nil and empty", []*Trace{nil, {}, nil}},
		{"single sorted", []*Trace{synthTrace(1, 50, true)}},
		{"two sorted", []*Trace{synthTrace(1, 50, true), synthTrace(2, 70, true)}},
		{"four sorted segments", []*Trace{
			synthTrace(3, 40, true), synthTrace(4, 1, true),
			synthTrace(5, 0, true), synthTrace(6, 90, true),
		}},
		{"unsorted fallback", []*Trace{synthTrace(7, 60, false), synthTrace(8, 30, true)}},
		{"all unsorted", []*Trace{synthTrace(9, 25, false), synthTrace(10, 25, false)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Merge(tc.traces...)
			want := referenceMerge(tc.traces...)
			if got.Len() != want.Len() {
				t.Fatalf("len %d, want %d", got.Len(), want.Len())
			}
			for i := range want.Events {
				if got.Events[i] != want.Events[i] {
					t.Fatalf("event %d: got %v, want %v", i, got.Events[i], want.Events[i])
				}
			}
		})
	}
}

// TestMergeTieBreaksByInputOrder pins the stable-merge guarantee: events
// with identical (Time, Seq) keep the order of their input traces.
func TestMergeTieBreaksByInputOrder(t *testing.T) {
	a := &Trace{Events: []Event{{Time: 5, Seq: 1, PID: 100}}}
	b := &Trace{Events: []Event{{Time: 5, Seq: 1, PID: 200}}}
	m := Merge(a, b)
	if m.Len() != 2 || m.Events[0].PID != 100 || m.Events[1].PID != 200 {
		t.Fatalf("tie order broken: %v", m.Events)
	}
}

// TestMergeDoesNotAliasInputs checks the merged trace owns its storage.
func TestMergeDoesNotAliasInputs(t *testing.T) {
	a := synthTrace(11, 10, true)
	m := Merge(a)
	m.Events[0].PID = 999
	if a.Events[0].PID == 999 {
		t.Fatal("Merge aliases its input's event storage")
	}
}

func TestFiltersMatchReference(t *testing.T) {
	tr := synthTrace(12, 300, false)
	// Salt in scheduler events, which FilterPID treats specially.
	for i := 0; i < 40; i++ {
		tr.Events[i*7].Kind = KindSchedSwitch
		tr.Events[i*7].PrevPID = uint32(i % 3)
		tr.Events[i*7].NextPID = uint32((i + 1) % 3)
	}

	refFilter := func(keep func(Event) bool) []Event {
		var out []Event
		for _, e := range tr.Events {
			if keep(e) {
				out = append(out, e)
			}
		}
		return out
	}

	gotPID := tr.FilterPID(2).Events
	wantPID := refFilter(func(e Event) bool {
		if e.Kind == KindSchedSwitch || e.Kind == KindSchedWakeup {
			return e.PrevPID == 2 || e.NextPID == 2
		}
		return e.PID == 2
	})
	if !reflect.DeepEqual(gotPID, wantPID) {
		t.Fatalf("FilterPID: %d events, want %d", len(gotPID), len(wantPID))
	}

	gotKind := tr.FilterKind(KindDDSWrite, KindSchedSwitch).Events
	wantKind := refFilter(func(e Event) bool {
		return e.Kind == KindDDSWrite || e.Kind == KindSchedSwitch
	})
	if !reflect.DeepEqual(gotKind, wantKind) {
		t.Fatalf("FilterKind: %d events, want %d", len(gotKind), len(wantKind))
	}

	gotROS := tr.ROSEvents().Events
	wantROS := refFilter(func(e Event) bool {
		return e.Kind != KindSchedSwitch && e.Kind != KindSchedWakeup
	})
	if !reflect.DeepEqual(gotROS, wantROS) {
		t.Fatalf("ROSEvents: %d events, want %d", len(gotROS), len(wantROS))
	}

	// Filters must return exactly-sized single allocations.
	if c := cap(tr.FilterPID(2).Events); c != len(wantPID) {
		t.Fatalf("FilterPID over-allocated: cap %d, want %d", c, len(wantPID))
	}
}
