package trace

import (
	"bytes"
	"errors"
	"testing"
)

// flakySink fails stickily after accepting failAfter events.
type flakySink struct {
	n         int
	failAfter int
	err       error
}

func (f *flakySink) Observe(Event) {
	f.n++
	if f.n >= f.failAfter && f.err == nil {
		f.err = errors.New("sink broke")
	}
}
func (f *flakySink) Err() error { return f.err }

func TestIsolatingMultiSinkDetachesFailingSink(t *testing.T) {
	var healthy collectSink
	flaky := &flakySink{failAfter: 3}
	m := NewIsolatingMultiSink()
	m.Add("healthy", &healthy)
	m.Add("flaky", flaky)
	m.Add("nil", nil) // ignored

	if m.Live() != 2 {
		t.Fatalf("live = %d, want 2 (nil sink must be ignored)", m.Live())
	}
	for _, e := range seqEvents(10, 0, 1) {
		m.Observe(e)
	}
	if m.Live() != 1 {
		t.Fatalf("live = %d after failure, want 1", m.Live())
	}
	if len(healthy.events) != 10 {
		t.Fatalf("healthy sink got %d events, want all 10", len(healthy.events))
	}
	if flaky.n != 3 {
		t.Fatalf("flaky sink got %d events after detaching, want 3", flaky.n)
	}
	det := m.Detached()
	// The third delivery tripped the sticky error, so only the two
	// before it were successfully delivered.
	if len(det) != 1 || det[0].Name != "flaky" || det[0].Events != 2 || det[0].Err == nil {
		t.Fatalf("detachments = %+v", det)
	}
}

// TestDetachmentEventsSemantics locks the Detachment.Events contract:
// events successfully delivered, excluding the delivery that tripped
// the sticky error.
func TestDetachmentEventsSemantics(t *testing.T) {
	cases := []struct {
		name       string
		failAfter  int // delivery index (1-based) the sink fails on
		observe    int
		wantEvents int
	}{
		{"fails on first delivery", 1, 5, 0},
		{"fails on second delivery", 2, 5, 1},
		{"fails on fifth delivery", 5, 5, 4},
		{"fails on last delivery", 3, 3, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			flaky := &flakySink{failAfter: c.failAfter}
			m := NewIsolatingMultiSink()
			m.Add("flaky", flaky)
			for _, e := range seqEvents(c.observe, 0, 1) {
				m.Observe(e)
			}
			det := m.Detached()
			if len(det) != 1 {
				t.Fatalf("detachments = %+v, want 1", det)
			}
			if det[0].Events != c.wantEvents {
				t.Fatalf("Events = %d, want %d", det[0].Events, c.wantEvents)
			}
		})
	}
	// A sink already broken when attached delivered nothing.
	pre := &flakySink{failAfter: 1}
	pre.Observe(Event{})
	m := NewIsolatingMultiSink()
	m.Add("pre-broken", pre)
	m.Observe(Event{Seq: 1})
	if det := m.Detached(); len(det) != 1 || det[0].Events != 0 {
		t.Fatalf("pre-broken detachment = %+v, want Events 0", m.Detached())
	}
}

func TestIsolatingMultiSinkInfallibleSinksNeverDetach(t *testing.T) {
	var a, b collectSink
	m := NewIsolatingMultiSink()
	m.Add("a", &a)
	m.Add("b", &b)
	for _, e := range seqEvents(5, 0, 1) {
		m.Observe(e)
	}
	if m.Live() != 2 || len(m.Detached()) != 0 {
		t.Fatalf("infallible sinks detached: live=%d detached=%v", m.Live(), m.Detached())
	}
	if len(a.events) != 5 || len(b.events) != 5 {
		t.Fatalf("deliveries lost: a=%d b=%d", len(a.events), len(b.events))
	}
}

func TestIsolatingMultiSinkBothFailSameEvent(t *testing.T) {
	f1 := &flakySink{failAfter: 2}
	f2 := &flakySink{failAfter: 2}
	m := NewIsolatingMultiSink()
	m.Add("f1", f1)
	m.Add("f2", f2)
	for _, e := range seqEvents(4, 0, 1) {
		m.Observe(e)
	}
	if m.Live() != 0 {
		t.Fatalf("live = %d, want 0", m.Live())
	}
	det := m.Detached()
	if len(det) != 2 || det[0].Name != "f1" || det[1].Name != "f2" {
		t.Fatalf("detachments = %+v", det)
	}
	// Neither sink saw anything past its failing event.
	if f1.n != 2 || f2.n != 2 {
		t.Fatalf("events after detach: f1=%d f2=%d, want 2/2", f1.n, f2.n)
	}
}

// closeRecorder is a buffer that remembers whether it was closed.
type closeRecorder struct {
	bytes.Buffer
	closed bool
}

func (c *closeRecorder) Close() error {
	c.closed = true
	return nil
}

// faultedJSONL wraps a healthy JSONL sink with a delivery-counted
// sticky fault: deliveries before failOn reach the encoder, the
// failOn-th and later are refused. It models a sink whose error trips
// mid-stream while its buffer still holds every successful event.
type faultedJSONL struct {
	*JSONLSink
	n      int
	failOn int
	fail   error
}

func (s *faultedJSONL) Observe(e Event) {
	s.n++
	if s.n >= s.failOn && s.fail == nil {
		s.fail = errors.New("disk full")
	}
	if s.fail != nil {
		return
	}
	s.JSONLSink.Observe(e)
}

func (s *faultedJSONL) Err() error { return s.fail }

// TestIsolatingMultiSinkFlushClosesDetachedJSONL pins the detach-time
// flush-close: a JSONL sink that fails mid-stream must still land every
// successfully delivered event on its writer, byte-for-byte what a
// direct sink fed the same prefix would have written. Before the fix
// the fan-out just dropped the sink, leaving its bufio buffer — all of
// its output, for a short stream — unflushed and the file empty.
func TestIsolatingMultiSinkFlushClosesDetachedJSONL(t *testing.T) {
	events := seqEvents(10, 0, 1)
	const failOn = 4 // deliveries 1..3 land, the 4th trips the fault

	var want bytes.Buffer
	ref := NewJSONLSink(&want)
	for _, e := range events[:failOn-1] {
		ref.Observe(e)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("reference stream is empty; test proves nothing")
	}

	var rec closeRecorder
	sink := &faultedJSONL{JSONLSink: NewJSONLSinkCloser(&rec), failOn: failOn}
	var healthy collectSink
	m := NewIsolatingMultiSink()
	m.Add("jsonl", sink)
	m.Add("healthy", &healthy)
	for _, e := range events {
		m.Observe(e)
	}

	det := m.Detached()
	if len(det) != 1 || det[0].Name != "jsonl" || det[0].Events != failOn-1 {
		t.Fatalf("detachments = %+v, want jsonl with Events %d", det, failOn-1)
	}
	if det[0].CloseErr != nil {
		t.Fatalf("flush-close of the detached sink failed: %v", det[0].CloseErr)
	}
	if !rec.closed {
		t.Fatal("detached sink's writer was not closed")
	}
	if !bytes.Equal(rec.Bytes(), want.Bytes()) {
		t.Fatalf("detached sink output diverges:\ngot  %q\nwant %q", rec.Bytes(), want.Bytes())
	}
	if len(healthy.events) != len(events) {
		t.Fatalf("healthy sink got %d events, want %d", len(healthy.events), len(events))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestIsolatingMultiSinkCloseFlushesAttached(t *testing.T) {
	events := seqEvents(6, 0, 1)
	var want bytes.Buffer
	ref := NewJSONLSink(&want)
	for _, e := range events {
		ref.Observe(e)
	}
	ref.Flush()

	var rec closeRecorder
	m := NewIsolatingMultiSink()
	m.Add("jsonl", NewJSONLSinkCloser(&rec))
	for _, e := range events {
		m.Observe(e)
	}
	if rec.Len() != 0 {
		t.Fatalf("short stream flushed early (%d bytes): Close has nothing left to prove", rec.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !rec.closed {
		t.Fatal("attached sink's writer was not closed")
	}
	if !bytes.Equal(rec.Bytes(), want.Bytes()) {
		t.Fatalf("closed sink output diverges:\ngot  %q\nwant %q", rec.Bytes(), want.Bytes())
	}
	if m.Live() != 0 {
		t.Fatalf("live = %d after Close, want 0", m.Live())
	}
	if len(m.Detached()) != 0 {
		t.Fatalf("clean Close recorded detachments: %+v", m.Detached())
	}
	// Idempotent, and Observe after Close is a no-op.
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	before := rec.Len()
	m.Observe(events[0])
	if rec.Len() != before {
		t.Fatal("Observe after Close delivered an event")
	}
}

// closeFailSink closes with an error, modeling a sink whose final flush
// hits the same bad disk its stream did.
type closeFailSink struct {
	n   int
	err error
}

func (s *closeFailSink) Observe(Event) { s.n++ }
func (s *closeFailSink) Close() error  { return s.err }

func TestIsolatingMultiSinkCloseFailureRecordedAsDetachment(t *testing.T) {
	bad := &closeFailSink{err: errors.New("close failed")}
	var healthy collectSink
	m := NewIsolatingMultiSink()
	m.Add("bad", bad)
	m.Add("healthy", &healthy)
	for _, e := range seqEvents(3, 0, 1) {
		m.Observe(e)
	}
	err := m.Close()
	if err == nil {
		t.Fatal("Close swallowed the sink's close failure")
	}
	det := m.Detached()
	// All 3 deliveries succeeded — the failure is in releasing the sink.
	if len(det) != 1 || det[0].Name != "bad" || det[0].Events != 3 || det[0].Err == nil {
		t.Fatalf("detachments = %+v", det)
	}
	if again := m.Close(); again != err {
		t.Fatalf("second Close = %v, want the original %v", again, err)
	}
}
