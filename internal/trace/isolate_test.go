package trace

import (
	"errors"
	"testing"
)

// flakySink fails stickily after accepting failAfter events.
type flakySink struct {
	n         int
	failAfter int
	err       error
}

func (f *flakySink) Observe(Event) {
	f.n++
	if f.n >= f.failAfter && f.err == nil {
		f.err = errors.New("sink broke")
	}
}
func (f *flakySink) Err() error { return f.err }

func TestIsolatingMultiSinkDetachesFailingSink(t *testing.T) {
	var healthy collectSink
	flaky := &flakySink{failAfter: 3}
	m := NewIsolatingMultiSink()
	m.Add("healthy", &healthy)
	m.Add("flaky", flaky)
	m.Add("nil", nil) // ignored

	if m.Live() != 2 {
		t.Fatalf("live = %d, want 2 (nil sink must be ignored)", m.Live())
	}
	for _, e := range seqEvents(10, 0, 1) {
		m.Observe(e)
	}
	if m.Live() != 1 {
		t.Fatalf("live = %d after failure, want 1", m.Live())
	}
	if len(healthy.events) != 10 {
		t.Fatalf("healthy sink got %d events, want all 10", len(healthy.events))
	}
	if flaky.n != 3 {
		t.Fatalf("flaky sink got %d events after detaching, want 3", flaky.n)
	}
	det := m.Detached()
	if len(det) != 1 || det[0].Name != "flaky" || det[0].Events != 3 || det[0].Err == nil {
		t.Fatalf("detachments = %+v", det)
	}
}

func TestIsolatingMultiSinkInfallibleSinksNeverDetach(t *testing.T) {
	var a, b collectSink
	m := NewIsolatingMultiSink()
	m.Add("a", &a)
	m.Add("b", &b)
	for _, e := range seqEvents(5, 0, 1) {
		m.Observe(e)
	}
	if m.Live() != 2 || len(m.Detached()) != 0 {
		t.Fatalf("infallible sinks detached: live=%d detached=%v", m.Live(), m.Detached())
	}
	if len(a.events) != 5 || len(b.events) != 5 {
		t.Fatalf("deliveries lost: a=%d b=%d", len(a.events), len(b.events))
	}
}

func TestIsolatingMultiSinkBothFailSameEvent(t *testing.T) {
	f1 := &flakySink{failAfter: 2}
	f2 := &flakySink{failAfter: 2}
	m := NewIsolatingMultiSink()
	m.Add("f1", f1)
	m.Add("f2", f2)
	for _, e := range seqEvents(4, 0, 1) {
		m.Observe(e)
	}
	if m.Live() != 0 {
		t.Fatalf("live = %d, want 0", m.Live())
	}
	det := m.Detached()
	if len(det) != 2 || det[0].Name != "f1" || det[1].Name != "f2" {
		t.Fatalf("detachments = %+v", det)
	}
	// Neither sink saw anything past its failing event.
	if f1.n != 2 || f2.n != 2 {
		t.Fatalf("events after detach: f1=%d f2=%d, want 2/2", f1.n, f2.n)
	}
}
