package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Degraded reads: a field deployment can hand the store segments damaged
// by full disks, torn writes, or media corruption. The strict read path
// (StreamSession) rejects a damaged session outright; the salvage path
// recovers every complete record up to each segment's damage point and
// reports exactly what was skipped, so one bad segment tail no longer
// costs the whole session. Fsck is the read-only scan of the same
// machinery, classifying the damage across all sessions.

// SegmentSalvage is the per-segment outcome of a salvage or fsck pass.
type SegmentSalvage struct {
	Name           string // segment file name (or "" for plain readers)
	Events         int    // complete records recovered
	BytesRecovered int64  // magic + complete records, the valid prefix
	BytesDropped   int64  // bytes past the damage point (0 when clean)
	Damaged        bool
	Cause          string // damage class: truncated, corrupt, bad-block, bad-footer, bad-magic, unordered
	Err            error  // the underlying decode error (nil when clean)
}

// SalvageReport aggregates a salvage pass over a session.
type SalvageReport struct {
	Session  string
	Segments []SegmentSalvage
}

// Events reports the total records recovered across segments.
func (r *SalvageReport) Events() int {
	n := 0
	for i := range r.Segments {
		n += r.Segments[i].Events
	}
	return n
}

// BytesDropped reports the total bytes skipped past damage points.
func (r *SalvageReport) BytesDropped() int64 {
	var n int64
	for i := range r.Segments {
		n += r.Segments[i].BytesDropped
	}
	return n
}

// Damaged reports how many segments were damaged.
func (r *SalvageReport) Damaged() int {
	n := 0
	for i := range r.Segments {
		if r.Segments[i].Damaged {
			n++
		}
	}
	return n
}

// String renders the report one line per segment plus a summary.
func (r *SalvageReport) String() string {
	var b strings.Builder
	for i := range r.Segments {
		s := &r.Segments[i]
		if s.Damaged {
			fmt.Fprintf(&b, "  %-28s %8d events  %10d bytes ok  %8d dropped  [%s]\n",
				s.Name, s.Events, s.BytesRecovered, s.BytesDropped, s.Cause)
		} else {
			fmt.Fprintf(&b, "  %-28s %8d events  %10d bytes ok\n",
				s.Name, s.Events, s.BytesRecovered)
		}
	}
	fmt.Fprintf(&b, "  total: %d events recovered, %d/%d segments damaged, %d bytes dropped\n",
		r.Events(), r.Damaged(), len(r.Segments), r.BytesDropped())
	return b.String()
}

// classifyDamage maps a FileCursor decode error onto its damage class.
func classifyDamage(err error) string {
	switch {
	case errors.Is(err, ErrBadMagic):
		return "bad-magic"
	case errors.Is(err, ErrUnordered):
		return "unordered"
	case errors.Is(err, ErrBadFooter):
		return "bad-footer"
	case errors.Is(err, ErrBadBlock):
		return "bad-block"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	case errors.Is(err, ErrTruncated):
		return "truncated"
	default:
		return "error"
	}
}

// SalvageCursor adapts a FileCursor into a cursor that never fails: the
// first decode error ends the stream cleanly instead, and is retained as
// the damage cause. Everything the underlying cursor yields before the
// damage point — complete records only, by construction — passes through
// unchanged, so a k-way merge over salvage cursors degrades per segment
// instead of failing the whole session.
type SalvageCursor struct {
	fc      *FileCursor
	events  int
	damaged bool
	cause   error
}

// NewSalvageCursor wraps fc. The caller keeps ownership of fc (Close it
// as usual).
func NewSalvageCursor(fc *FileCursor) *SalvageCursor {
	return &SalvageCursor{fc: fc}
}

// Next implements Cursor; it never returns an error.
func (c *SalvageCursor) Next() (Event, bool, error) {
	if c.damaged {
		return Event{}, false, nil
	}
	ev, ok, err := c.fc.Next()
	if err != nil {
		c.damaged = true
		c.cause = err
		return Event{}, false, nil
	}
	if ok {
		c.events++
	}
	return ev, ok, nil
}

// Events reports how many records passed through.
func (c *SalvageCursor) Events() int { return c.events }

// Damage reports the retained decode error, nil when the stream was
// clean (so far).
func (c *SalvageCursor) Damage() error { return c.cause }

// report summarizes the cursor after its stream ended. size is the total
// byte length of the underlying stream when known, else negative (bytes
// dropped then stay 0).
func (c *SalvageCursor) report(name string, size int64) SegmentSalvage {
	s := SegmentSalvage{
		Name:           name,
		Events:         c.events,
		BytesRecovered: c.fc.BytesConsumed(),
		Damaged:        c.cause != nil,
		Err:            c.cause,
	}
	if c.cause != nil {
		s.Cause = classifyDamage(c.cause)
		if size >= 0 {
			s.BytesDropped = size - c.fc.BytesConsumed()
		}
	}
	return s
}

// SalvageReader streams every complete record of a possibly damaged
// segment stream into sink and reports what was recovered. It never
// fails on damage: a truncated or corrupt tail ends the stream at the
// last complete record. sink may be nil to scan without consuming.
func SalvageReader(r io.Reader, sink Sink) SegmentSalvage {
	fc := NewFileCursor(r)
	sc := NewSalvageCursor(fc)
	for {
		ev, ok, _ := sc.Next()
		if !ok {
			break
		}
		if sink != nil {
			sink.Observe(ev)
		}
	}
	return sc.report("", -1)
}

// salvageCursors opens every segment of a session wrapped for salvage,
// along with file sizes for drop accounting.
func (s *Store) salvageCursors(session string) (curs []*SalvageCursor, files []*FileCursor, names []string, sizes []int64, err error) {
	segs, err := s.segmentNames(session)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if len(segs) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("trace: session %q has no segments", session)
	}
	for _, name := range segs {
		path := filepath.Join(s.dir, name)
		f, err := os.Open(path)
		if err != nil {
			for _, c := range files {
				c.Close()
			}
			return nil, nil, nil, nil, err
		}
		size := int64(-1)
		if fi, err := f.Stat(); err == nil {
			size = fi.Size()
		}
		var r io.Reader = f
		if s.WrapReader != nil {
			r = s.WrapReader(name, f)
		}
		fc := NewFileCursor(r)
		fc.c = f
		fc.name = name
		fc.strict = true
		files = append(files, fc)
		curs = append(curs, NewSalvageCursor(fc))
		names = append(names, name)
		sizes = append(sizes, size)
	}
	return curs, files, names, sizes, nil
}

// SalvageSession streams everything recoverable from a session into sink
// — the degraded-mode counterpart of StreamSession. Each segment
// contributes every complete record up to its damage point (if any) and
// is then treated as exhausted, so the k-way merge completes even when
// segments are truncated or corrupt. The report says, per segment, how
// many events were recovered, how many bytes were dropped, and why.
//
// The merged stream stays (Time, Seq)-ordered: salvage drops only
// suffixes of individually sorted segments, and a sorted prefix merges
// like any other sorted stream. sink may be nil to scan without
// consuming.
func (s *Store) SalvageSession(session string, sink Sink) (*SalvageReport, error) {
	curs, files, names, sizes, err := s.salvageCursors(session)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range files {
			c.Close()
		}
	}()
	cursors := make([]Cursor, len(curs))
	for i, c := range curs {
		cursors[i] = c
	}
	if sink == nil {
		sink = SinkFunc(func(Event) {})
	}
	// Salvage cursors never error, so Run cannot fail.
	if err := NewMergeStream(cursors...).Run(sink); err != nil {
		return nil, err
	}
	rep := &SalvageReport{Session: session}
	for i, c := range curs {
		rep.Segments = append(rep.Segments, c.report(names[i], sizes[i]))
	}
	return rep, nil
}

// FsckReport classifies damage across every session of a store.
type FsckReport struct {
	Sessions []SalvageReport
}

// Damaged reports the total damaged segments across sessions.
func (r *FsckReport) Damaged() int {
	n := 0
	for i := range r.Sessions {
		n += r.Sessions[i].Damaged()
	}
	return n
}

// Clean reports whether every segment of every session decoded fully.
func (r *FsckReport) Clean() bool { return r.Damaged() == 0 }

// String renders one block per session.
func (r *FsckReport) String() string {
	var b strings.Builder
	for i := range r.Sessions {
		fmt.Fprintf(&b, "session %s:\n%s", r.Sessions[i].Session, r.Sessions[i].String())
	}
	return b.String()
}

// Fsck scans every segment of every session, classifying damage without
// consuming events: the health check a long-running tracer (or an
// operator) runs over a store that survived a crash or a bad disk.
func (s *Store) Fsck() (*FsckReport, error) {
	sessions, err := s.Sessions()
	if err != nil {
		return nil, err
	}
	rep := &FsckReport{}
	for _, session := range sessions {
		// Scanning per segment (not merged) keeps fsck independent of
		// cross-segment ordering; each segment is judged on its own bytes.
		curs, files, names, sizes, err := s.salvageCursors(session)
		if err != nil {
			return nil, err
		}
		sr := SalvageReport{Session: session}
		for i, c := range curs {
			for {
				if _, ok, _ := c.Next(); !ok {
					break
				}
			}
			sr.Segments = append(sr.Segments, c.report(names[i], sizes[i]))
			files[i].Close()
		}
		rep.Sessions = append(rep.Sessions, sr)
	}
	return rep, nil
}
