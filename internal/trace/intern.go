package trace

import (
	"sync"
	"sync/atomic"
)

// Node and topic names recur on almost every record of a trace — a few
// dozen distinct strings across millions of events — so decoding paid one
// string allocation per record for names it had already seen. InternBytes
// returns one canonical string per distinct byte content instead.
//
// The table is shared process-wide because the harness decodes sessions
// from many worker goroutines concurrently; lookups take a read lock on
// the hit path (the overwhelmingly common case) and the map key lookup by
// string(b) does not allocate. Retention is bounded on two axes, because
// the binary codec feeds this table from untrusted trace files: names
// longer than internMaxLen bypass the table entirely (real node/topic
// names are tens of bytes), and once internMaxEntries distinct names
// have been seen — far beyond any real topic space, so reaching it means
// the input is adversarial — further misses fall back to plain
// allocation rather than growing without bound. Worst-case pinned memory
// is internMaxEntries × internMaxLen = 16 MiB.
//
// That fallback is silent by design — correctness never depends on the
// table — so the counters below exist to make it visible: a drain whose
// allocation profile regresses can be attributed to a capped table
// (every capped lookup is one string allocation per record again)
// instead of being hunted through the decode path.
type internTable struct {
	mu sync.RWMutex
	m  map[string]string
}

const (
	internMaxEntries = 1 << 16
	internMaxLen     = 256
)

var interned = internTable{m: make(map[string]string)}

// Intern traffic counters, process-global like the table itself: hits
// returned a canonical string, misses inserted a new one, capped fell
// back to plain allocation (table full, or the name exceeded
// internMaxLen). capped is the number the drain-allocation gate cares
// about: every capped lookup re-pays the per-record string allocation
// interning exists to remove.
var internHits, internMisses, internCapped atomic.Uint64

// InternStats reports cumulative intern-table traffic: canonical-string
// hits, first-sight insertions, and lookups that fell back to plain
// allocation because the table was full or the name oversized.
func InternStats() (hits, misses, capped uint64) {
	return internHits.Load(), internMisses.Load(), internCapped.Load()
}

// InternBytes returns the canonical string for the byte content of b.
func InternBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		internCapped.Add(1)
		return string(b)
	}
	t := &interned
	t.mu.RLock()
	s, ok := t.m[string(b)]
	t.mu.RUnlock()
	if ok {
		internHits.Add(1)
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok = t.m[string(b)]; ok {
		internHits.Add(1)
		return s
	}
	s = string(b)
	if len(t.m) < internMaxEntries {
		t.m[s] = s
		internMisses.Add(1)
	} else {
		internCapped.Add(1)
	}
	return s
}

// InternString returns the canonical string equal to s, interning it on
// first sight.
func InternString(s string) string {
	if s == "" {
		return ""
	}
	if len(s) > internMaxLen {
		internCapped.Add(1)
		return s
	}
	t := &interned
	t.mu.RLock()
	c, ok := t.m[s]
	t.mu.RUnlock()
	if ok {
		internHits.Add(1)
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok = t.m[s]; ok {
		internHits.Add(1)
		return c
	}
	if len(t.m) < internMaxEntries {
		t.m[s] = s
		internMisses.Add(1)
	} else {
		internCapped.Add(1)
	}
	return s
}
