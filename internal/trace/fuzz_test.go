package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary trace reader. The
// codec must never panic on malformed input — truncated records, corrupt
// length prefixes, oversized string fields — and anything it accepts must
// re-encode cleanly.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding, a truncation of it, and a few
	// deliberately corrupt variants so the fuzzer starts at the
	// interesting boundaries.
	var valid bytes.Buffer
	if err := WriteBinary(&valid, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte(binMagic))
	f.Add([]byte("not a trace file"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[len(binMagic):], 1<<19)
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip: what decoded must re-encode.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("re-decode lost events: %d != %d", back.Len(), tr.Len())
		}
	})
}

// FuzzFileCursor feeds arbitrary segment bytes to the streaming reader.
// The cursor must never panic — random, truncated, or corrupted input
// included — and must fail with an error on exactly the inputs
// ReadBinary rejects, yielding on the way only events ReadBinary would
// have decoded (its valid prefix, never a partial record).
func FuzzFileCursor(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteBinary(&valid, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, cut := range []int{len(binMagic), len(binMagic) + 2, len(valid.Bytes()) / 2, len(valid.Bytes()) - 1} {
		f.Add(valid.Bytes()[:cut])
	}
	f.Add([]byte(binMagic))
	f.Add([]byte("not a trace file"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[len(binMagic):], 1<<19)
	f.Add(corrupt)
	f.Add(encodeV2(f, sampleEvents(), 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Event
		cur := NewFileCursor(bytes.NewReader(data))
		var curErr error
		for {
			ev, ok, err := cur.Next()
			if err != nil {
				curErr = err
				break
			}
			if !ok {
				break
			}
			got = append(got, ev)
		}
		// The error must be sticky.
		if curErr != nil {
			if _, _, err := cur.Next(); err == nil {
				t.Fatal("cursor error not sticky")
			}
		}

		want, batchErr := ReadBinary(bytes.NewReader(data))
		if (curErr == nil) != (batchErr == nil) {
			t.Fatalf("cursor err=%v, ReadBinary err=%v", curErr, batchErr)
		}
		if batchErr == nil {
			if len(got) != want.Len() {
				t.Fatalf("cursor decoded %d events, ReadBinary %d", len(got), want.Len())
			}
			for i := range got {
				if got[i] != want.Events[i] {
					t.Fatalf("event %d: cursor %v, ReadBinary %v", i, got[i], want.Events[i])
				}
			}
		}
	})
}

// FuzzSalvage feeds arbitrary segment bytes to the salvage reader. It
// must never panic and never yield a partial record: what it recovers is
// exactly the plain cursor's valid prefix, and the BytesRecovered prefix
// of the input must itself decode cleanly (with ReadBinary) to exactly
// the recovered events.
func FuzzSalvage(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteBinary(&valid, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, cut := range []int{len(binMagic) + 2, len(valid.Bytes()) / 2, len(valid.Bytes()) - 1} {
		f.Add(valid.Bytes()[:cut])
	}
	f.Add([]byte("not a trace file"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[len(binMagic):], 1<<19)
	f.Add(corrupt)
	v2 := encodeV2(f, sampleEvents(), 3)
	f.Add(v2)
	f.Add(v2[:len(v2)/2])
	f.Add(v2[:len(v2)-footerTrailerLen-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Event
		rep := SalvageReader(bytes.NewReader(data), SinkFunc(func(e Event) { got = append(got, e) }))
		if rep.Events != len(got) {
			t.Fatalf("report says %d events, sink got %d", rep.Events, len(got))
		}

		// Salvage recovers exactly the plain cursor's valid prefix.
		var want []Event
		cur := NewFileCursor(bytes.NewReader(data))
		for {
			ev, ok, err := cur.Next()
			if err != nil || !ok {
				break
			}
			want = append(want, ev)
		}
		if rep.Damaged != (cur.Err() != nil) {
			t.Fatalf("salvage damaged=%v, plain cursor err=%v", rep.Damaged, cur.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("salvage recovered %d events, cursor prefix has %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("event %d: salvage %v, cursor %v", i, got[i], want[i])
			}
		}

		// The recovered byte range is itself a valid segment — no partial
		// record counted in. For v1 it decodes to exactly the recovered
		// events; for v2, BytesRecovered is block-granular, so a torn
		// block's salvaged record prefix is yielded beyond what the byte
		// prefix re-decodes to — the prefix then holds the leading subset.
		if rep.BytesRecovered > 0 {
			tr, err := ReadBinary(bytes.NewReader(data[:rep.BytesRecovered]))
			if err != nil {
				t.Fatalf("BytesRecovered prefix does not decode: %v", err)
			}
			isV2 := len(data) >= len(binMagic2) && string(data[:len(binMagic2)]) == binMagic2
			if isV2 {
				if tr.Len() > len(got) {
					t.Fatalf("prefix decodes to %d events, salvage recovered only %d", tr.Len(), len(got))
				}
			} else if tr.Len() != len(got) {
				t.Fatalf("prefix decodes to %d events, salvage recovered %d", tr.Len(), len(got))
			}
			for i := range tr.Events {
				if got[i] != tr.Events[i] {
					t.Fatalf("event %d: salvage %v, prefix %v", i, got[i], tr.Events[i])
				}
			}
		}
	})
}

// encodeV2 renders events as one v2 segment with the given block bound.
func encodeV2(t testing.TB, events []Event, blockRecords int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewSegmentWriterFormat(&buf, FormatV2, blockRecords)
	for _, e := range events {
		sw.Observe(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzV2Cursor feeds arbitrary v2-leaning segment bytes to the streaming
// reader: it must never panic, its errors must be sticky, salvage must
// recover exactly the strict prefix the plain cursor yields (failing
// exactly when it does), and any cleanly decoded input must survive a v2
// re-encode round trip.
func FuzzV2Cursor(f *testing.F) {
	valid := encodeV2(f, sampleEvents(), 3)
	f.Add(valid)
	for _, cut := range []int{len(binMagic2), len(binMagic2) + 3, len(valid) / 2, len(valid) - 1, len(valid) - footerTrailerLen - 1} {
		f.Add(valid[:cut])
	}
	stompTag := append([]byte(nil), valid...)
	stompTag[len(binMagic2)] = 0x7f
	f.Add(stompTag)
	stompFooter := append([]byte(nil), valid...)
	stompFooter[len(stompFooter)-footerTrailerLen-2] ^= 0xff
	f.Add(stompFooter)
	f.Add([]byte(binMagic2))
	f.Add([]byte("not a trace file"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Event
		cur := NewFileCursor(bytes.NewReader(data))
		var curErr error
		for {
			ev, ok, err := cur.Next()
			if err != nil {
				curErr = err
				break
			}
			if !ok {
				break
			}
			got = append(got, ev)
		}
		if curErr != nil {
			if _, _, err := cur.Next(); err == nil {
				t.Fatal("cursor error not sticky")
			}
		}

		// Salvage fails (marks damage) exactly when the plain cursor errors,
		// and recovers exactly its yielded prefix.
		var salvaged []Event
		rep := SalvageReader(bytes.NewReader(data), SinkFunc(func(e Event) { salvaged = append(salvaged, e) }))
		if rep.Damaged != (curErr != nil) {
			t.Fatalf("salvage damaged=%v, cursor err=%v", rep.Damaged, curErr)
		}
		if len(salvaged) != len(got) {
			t.Fatalf("salvage recovered %d events, cursor yielded %d", len(salvaged), len(got))
		}
		for i := range got {
			if got[i] != salvaged[i] {
				t.Fatalf("event %d: salvage %v, cursor %v", i, salvaged[i], got[i])
			}
		}

		// Cleanly decoded input round-trips through the v2 encoder.
		if curErr == nil && len(got) > 0 {
			back, err := ReadBinary(bytes.NewReader(encodeV2(t, got, 3)))
			if err != nil {
				t.Fatalf("re-encode of accepted events failed to decode: %v", err)
			}
			if back.Len() != len(got) {
				t.Fatalf("re-encode lost events: %d != %d", back.Len(), len(got))
			}
			for i := range got {
				if got[i] != back.Events[i] {
					t.Fatalf("event %d: round trip %v != %v", i, back.Events[i], got[i])
				}
			}
		}
	})
}

// FuzzV1V2Equivalence decodes arbitrary bytes with the version-aware
// reader and, when they form a valid segment (either version),
// re-encodes the events as v2 and demands an identical decoded stream —
// the cross-version equivalence pin of the format migration.
func FuzzV1V2Equivalence(f *testing.F) {
	var v1 bytes.Buffer
	if err := WriteBinary(&v1, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(encodeV2(f, sampleEvents(), 2))
	f.Add(v1.Bytes()[:len(v1.Bytes())/2])
	f.Add([]byte("not a trace file"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, blockRecords := range []int{1, 3, 0} {
			back, err := ReadBinary(bytes.NewReader(encodeV2(t, tr.Events, blockRecords)))
			if err != nil {
				t.Fatalf("v2(block=%d) re-encode failed to decode: %v", blockRecords, err)
			}
			if back.Len() != tr.Len() {
				t.Fatalf("v2(block=%d) lost events: %d != %d", blockRecords, back.Len(), tr.Len())
			}
			for i := range tr.Events {
				if tr.Events[i] != back.Events[i] {
					t.Fatalf("v2(block=%d) event %d: %v != %v", blockRecords, i, back.Events[i], tr.Events[i])
				}
			}
		}
	})
}
