package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary trace reader. The
// codec must never panic on malformed input — truncated records, corrupt
// length prefixes, oversized string fields — and anything it accepts must
// re-encode cleanly.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding, a truncation of it, and a few
	// deliberately corrupt variants so the fuzzer starts at the
	// interesting boundaries.
	var valid bytes.Buffer
	if err := WriteBinary(&valid, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte(binMagic))
	f.Add([]byte("not a trace file"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[len(binMagic):], 1<<19)
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip: what decoded must re-encode.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("re-decode lost events: %d != %d", back.Len(), tr.Len())
		}
	})
}

// FuzzFileCursor feeds arbitrary segment bytes to the streaming reader.
// The cursor must never panic — random, truncated, or corrupted input
// included — and must fail with an error on exactly the inputs
// ReadBinary rejects, yielding on the way only events ReadBinary would
// have decoded (its valid prefix, never a partial record).
func FuzzFileCursor(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteBinary(&valid, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, cut := range []int{len(binMagic), len(binMagic) + 2, len(valid.Bytes()) / 2, len(valid.Bytes()) - 1} {
		f.Add(valid.Bytes()[:cut])
	}
	f.Add([]byte(binMagic))
	f.Add([]byte("not a trace file"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[len(binMagic):], 1<<19)
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Event
		cur := NewFileCursor(bytes.NewReader(data))
		var curErr error
		for {
			ev, ok, err := cur.Next()
			if err != nil {
				curErr = err
				break
			}
			if !ok {
				break
			}
			got = append(got, ev)
		}
		// The error must be sticky.
		if curErr != nil {
			if _, _, err := cur.Next(); err == nil {
				t.Fatal("cursor error not sticky")
			}
		}

		want, batchErr := ReadBinary(bytes.NewReader(data))
		if (curErr == nil) != (batchErr == nil) {
			t.Fatalf("cursor err=%v, ReadBinary err=%v", curErr, batchErr)
		}
		if batchErr == nil {
			if len(got) != want.Len() {
				t.Fatalf("cursor decoded %d events, ReadBinary %d", len(got), want.Len())
			}
			for i := range got {
				if got[i] != want.Events[i] {
					t.Fatalf("event %d: cursor %v, ReadBinary %v", i, got[i], want.Events[i])
				}
			}
		}
	})
}

// FuzzSalvage feeds arbitrary segment bytes to the salvage reader. It
// must never panic and never yield a partial record: what it recovers is
// exactly the plain cursor's valid prefix, and the BytesRecovered prefix
// of the input must itself decode cleanly (with ReadBinary) to exactly
// the recovered events.
func FuzzSalvage(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteBinary(&valid, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, cut := range []int{len(binMagic) + 2, len(valid.Bytes()) / 2, len(valid.Bytes()) - 1} {
		f.Add(valid.Bytes()[:cut])
	}
	f.Add([]byte("not a trace file"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[len(binMagic):], 1<<19)
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Event
		rep := SalvageReader(bytes.NewReader(data), SinkFunc(func(e Event) { got = append(got, e) }))
		if rep.Events != len(got) {
			t.Fatalf("report says %d events, sink got %d", rep.Events, len(got))
		}

		// Salvage recovers exactly the plain cursor's valid prefix.
		var want []Event
		cur := NewFileCursor(bytes.NewReader(data))
		for {
			ev, ok, err := cur.Next()
			if err != nil || !ok {
				break
			}
			want = append(want, ev)
		}
		if rep.Damaged != (cur.Err() != nil) {
			t.Fatalf("salvage damaged=%v, plain cursor err=%v", rep.Damaged, cur.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("salvage recovered %d events, cursor prefix has %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("event %d: salvage %v, cursor %v", i, got[i], want[i])
			}
		}

		// The recovered byte range is itself a valid segment holding
		// exactly the recovered events — no partial record counted in.
		if rep.BytesRecovered > 0 {
			tr, err := ReadBinary(bytes.NewReader(data[:rep.BytesRecovered]))
			if err != nil {
				t.Fatalf("BytesRecovered prefix does not decode: %v", err)
			}
			if tr.Len() != len(got) {
				t.Fatalf("prefix decodes to %d events, salvage recovered %d", tr.Len(), len(got))
			}
			for i := range got {
				if got[i] != tr.Events[i] {
					t.Fatalf("event %d: salvage %v, prefix %v", i, got[i], tr.Events[i])
				}
			}
		}
	})
}
