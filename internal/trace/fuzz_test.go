package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadBinary feeds arbitrary bytes to the binary trace reader. The
// codec must never panic on malformed input — truncated records, corrupt
// length prefixes, oversized string fields — and anything it accepts must
// re-encode cleanly.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding, a truncation of it, and a few
	// deliberately corrupt variants so the fuzzer starts at the
	// interesting boundaries.
	var valid bytes.Buffer
	if err := WriteBinary(&valid, &Trace{Events: sampleEvents()}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte(binMagic))
	f.Add([]byte("not a trace file"))
	corrupt := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[len(binMagic):], 1<<19)
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip: what decoded must re-encode.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("re-decode lost events: %d != %d", back.Len(), tr.Len())
		}
	})
}
