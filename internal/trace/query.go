package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/tracesynth/rostracer/internal/sim"
)

// Filtered session reads. StreamSession decodes every record of every
// segment; QuerySession uses the v2 footer indexes to decode only the
// blocks that can match a filter — a narrow time window over a long
// session touches a handful of blocks per segment instead of the whole
// store. v1 segments (and stores opened with a WrapReader, which cannot
// seek) degrade to a sequential scan with the same filter applied
// record-by-record, so results are format-independent.

// Filter selects a subset of a session's events. The zero value matches
// everything.
type Filter struct {
	// T0 and T1 bound Event.Time inclusively. T1 == 0 means unbounded
	// above (trace times are positive; a store has no events at time 0).
	T0, T1 sim.Time
	// Kinds restricts to the listed event kinds; empty means all.
	Kinds []Kind
	// Node restricts to events attributed to one node; "" means all.
	Node string
}

// compiledFilter is Filter lowered for the per-record hot path: kinds as
// a bitmap, bounds normalized.
type compiledFilter struct {
	t0, t1 sim.Time // t1 == maxTime when unbounded
	kinds  uint32   // 0 means all kinds
	node   string
}

const maxSimTime = sim.Time(1<<63 - 1)

func compileFilter(f Filter) compiledFilter {
	cf := compiledFilter{t0: f.T0, t1: f.T1, node: f.Node}
	if cf.t1 == 0 {
		cf.t1 = maxSimTime
	}
	for _, k := range f.Kinds {
		cf.kinds |= kindBit(k)
	}
	return cf
}

func (cf *compiledFilter) match(e *Event) bool {
	if e.Time < cf.t0 || e.Time > cf.t1 {
		return false
	}
	if cf.kinds != 0 && cf.kinds&kindBit(e.Kind) == 0 {
		return false
	}
	if cf.node != "" && e.Node != cf.node {
		return false
	}
	return true
}

// blockOverlaps decides from the index alone whether a block can hold a
// matching record.
func (cf *compiledFilter) blockOverlaps(bi *BlockInfo) bool {
	if bi.MaxTime < cf.t0 || bi.MinTime > cf.t1 {
		return false
	}
	if cf.kinds != 0 && cf.kinds&bi.Kinds == 0 {
		return false
	}
	return true
}

// QueryStats reports how much work a QuerySession did — the observable
// proof that an indexed read skipped what the filter excluded.
type QueryStats struct {
	Segments       int // segment files opened
	Scans          int // segments read sequentially (v1, or WrapReader set)
	BlocksTotal    int // v2 blocks listed by the indexes
	BlocksRead     int // v2 blocks whose records were decoded
	BlocksSkipped  int // v2 blocks excluded without decoding records
	FootersRebuilt int // v2 segments whose missing footer was rebuilt by scan
	RecordsDecoded int // records decoded (indexed path only)
	RecordsMatched int // records that passed the filter into the sink
}

// QuerySession streams the events of a session matching f into sink in
// (Time, Seq) order — StreamSession with a filter pushed down into the
// storage layer. For v2 segments the footer index selects only blocks
// overlapping the time window whose kind bitmap intersects the filter
// (and, for node filters, whose string table mentions the node), reading
// them with positioned reads; a segment whose footer is missing — a
// crashed writer — gets its index rebuilt by one sequential scan. v1
// segments and fault-injected stores (WrapReader set: the wrapped reader
// cannot seek) fall back to a full sequential scan with the same filter.
// Damage fails the query exactly as it fails StreamSession; use
// SalvageSession for degraded reads.
//
// With Parallelism resolved above 1 the selected v2 blocks decode on a
// worker pool: each segment cursor keeps a small window of outstanding
// block reads, workers serve them with positioned reads (v2 blocks are
// self-contained, so any block decodes without its predecessors), and
// the cursor re-serves decoded blocks strictly in index order. Output,
// errors, and QueryStats are identical to the sequential path.
func (s *Store) QuerySession(session string, f Filter, sink Sink) (QueryStats, error) {
	var qs QueryStats
	cf := compileFilter(f)
	names, err := s.segmentNames(session)
	if err != nil {
		return qs, err
	}
	if len(names) == 0 {
		return qs, fmt.Errorf("trace: session %q has no segments", session)
	}
	var cursors []Cursor
	var closers []io.Closer
	var pool *blockPool
	defer func() {
		if pool != nil {
			pool.stop()
		}
		for _, c := range closers {
			c.Close()
		}
	}()
	parallelism := s.ResolveParallelism()
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		qs.Segments++
		if s.WrapReader != nil {
			file, err := os.Open(path)
			if err != nil {
				return qs, err
			}
			fc := NewFileCursor(s.WrapReader(name, file))
			fc.c = file
			fc.name = name
			fc.strict = true
			closers = append(closers, fc)
			cursors = append(cursors, &filterCursor{c: fc, f: &cf, qs: &qs})
			qs.Scans++
			continue
		}
		file, err := os.Open(path)
		if err != nil {
			return qs, err
		}
		var magic [len(binMagic)]byte
		if _, err := file.ReadAt(magic[:], 0); err != nil {
			file.Close()
			return qs, fmt.Errorf("trace: segment %s: %w: reading magic: %w", name, ErrTruncated, err)
		}
		switch string(magic[:]) {
		case binMagic:
			// v1 has no index; filter over the sequential strict cursor.
			if _, err := file.Seek(0, io.SeekStart); err != nil {
				file.Close()
				return qs, err
			}
			fc := NewFileCursor(file)
			fc.c = file
			fc.name = name
			fc.strict = true
			closers = append(closers, fc)
			cursors = append(cursors, &filterCursor{c: fc, f: &cf, qs: &qs})
			qs.Scans++
		case binMagic2:
			blocks, err := s.segmentBlockIndex(file, name, &qs)
			if err != nil {
				file.Close()
				return qs, err
			}
			qs.BlocksTotal += len(blocks)
			sel := blocks[:0:0]
			for i := range blocks {
				if cf.blockOverlaps(&blocks[i]) {
					sel = append(sel, blocks[i])
				}
			}
			qs.BlocksSkipped += len(blocks) - len(sel)
			closers = append(closers, file)
			if parallelism > 1 && len(sel) > 1 {
				if pool == nil {
					pool = newBlockPool(parallelism)
				}
				cursors = append(cursors, &parallelIndexedCursor{
					f: file, name: name, blocks: sel, filter: &cf, qs: &qs,
					pool: pool, window: parallelism,
				})
			} else {
				cursors = append(cursors, &indexedCursor{f: file, name: name, blocks: sel, filter: &cf, qs: &qs})
			}
		default:
			file.Close()
			return qs, fmt.Errorf("trace: segment %s: %w: %q", name, ErrBadMagic, magic)
		}
	}
	if err := NewMergeStream(cursors...).Run(sink); err != nil {
		return qs, err
	}
	return qs, nil
}

// segmentBlockIndex loads a v2 segment's footer index via the EOF
// trailer, or rebuilds it with one sequential scan when the footer is
// missing (crashed writer: the segment ends cleanly at a block boundary
// with no footer frame). Any other damage fails the query.
func (s *Store) segmentBlockIndex(file *os.File, name string, qs *QueryStats) ([]BlockInfo, error) {
	fi, err := file.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	blocks, ok, err := readFooterAt(file, size)
	if err != nil {
		return nil, fmt.Errorf("trace: segment %s (%s): %w", name, FormatV2, err)
	}
	if ok {
		return blocks, nil
	}
	// No trailer at EOF. Scan: a clean footer-less segment yields its
	// observed index; anything else (torn block, damage) errors here,
	// exactly as StreamSession would.
	fc := NewFileCursor(io.NewSectionReader(file, 0, size))
	fc.name = name
	fc.strict = true
	for {
		if _, ok, err := fc.Next(); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	qs.FootersRebuilt++
	return fc.BlockIndex(), nil
}

// readFooterAt reads and validates the footer index through the
// fixed-size EOF trailer. ok is false when there is no trailer at all
// (no footer was ever written); an error means a footer-shaped tail that
// fails validation.
func readFooterAt(file *os.File, size int64) (blocks []BlockInfo, ok bool, err error) {
	if size < int64(len(binMagic2)+5+footerTrailerLen) {
		return nil, false, nil
	}
	var tr [footerTrailerLen]byte
	if _, err := file.ReadAt(tr[:], size-int64(footerTrailerLen)); err != nil {
		return nil, false, err
	}
	if string(tr[4:]) != footerTrailerMagic {
		return nil, false, nil
	}
	n := binary.LittleEndian.Uint32(tr[:4])
	if n > maxFooterBody {
		return nil, false, fmt.Errorf("%w: implausible footer length %d", ErrBadFooter, n)
	}
	frameOff := size - int64(footerTrailerLen) - int64(n) - 5
	if frameOff < int64(len(binMagic2)) {
		return nil, false, fmt.Errorf("%w: footer overruns segment", ErrBadFooter)
	}
	buf := make([]byte, 5+int(n))
	if _, err := file.ReadAt(buf, frameOff); err != nil {
		return nil, false, err
	}
	if buf[0] != frameFooter || binary.LittleEndian.Uint32(buf[1:5]) != n {
		return nil, false, fmt.Errorf("%w: trailer mismatch", ErrBadFooter)
	}
	blocks, _, err = parseFooterBody(buf[5:])
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrBadFooter, err)
	}
	// Offsets must stay inside the data region for positioned reads.
	for i := range blocks {
		if blocks[i].Offset+5+int64(blocks[i].Len) > frameOff {
			return nil, false, fmt.Errorf("%w: block %d overruns data region", ErrBadFooter, i)
		}
	}
	return blocks, true, nil
}

// filterCursor applies a compiled filter over a sequential cursor.
type filterCursor struct {
	c  *FileCursor
	f  *compiledFilter
	qs *QueryStats
}

func (c *filterCursor) Next() (Event, bool, error) {
	for {
		ev, ok, err := c.c.Next()
		if err != nil || !ok {
			return ev, ok, err
		}
		if c.f.match(&ev) {
			c.qs.RecordsMatched++
			return ev, true, nil
		}
	}
}

// indexedCursor decodes only the selected blocks of a v2 segment with
// positioned reads, applying the record filter as it serves them. Blocks
// are self-contained, so decoding can start at any selected block; the
// selection preserves file order, so the stream stays (Time, Seq)-sorted
// exactly as the sequential cursor would serve it.
type indexedCursor struct {
	f      *os.File
	name   string
	blocks []BlockInfo
	filter *compiledFilter
	qs     *QueryStats

	bi     int
	buf    []byte
	events []Event
	strs   []string
	ei     int
	err    error
}

func (c *indexedCursor) fail(err error) (Event, bool, error) {
	c.err = fmt.Errorf("trace: segment %s (%s): %w", c.name, FormatV2, err)
	return Event{}, false, c.err
}

func (c *indexedCursor) Next() (Event, bool, error) {
	if c.err != nil {
		return Event{}, false, c.err
	}
	for {
		for c.ei < len(c.events) {
			ev := c.events[c.ei]
			c.ei++
			if c.filter.match(&ev) {
				c.qs.RecordsMatched++
				return ev, true, nil
			}
		}
		if c.bi >= len(c.blocks) {
			return Event{}, false, nil
		}
		bi := c.blocks[c.bi]
		c.bi++
		need := 5 + int(bi.Len)
		if cap(c.buf) < need {
			c.buf = make([]byte, need)
		}
		frame := c.buf[:need]
		if _, err := c.f.ReadAt(frame, bi.Offset); err != nil {
			return c.fail(fmt.Errorf("%w: block at %d: %v", ErrBadBlock, bi.Offset, err))
		}
		if frame[0] != frameBlock || binary.LittleEndian.Uint32(frame[1:5]) != bi.Len {
			return c.fail(fmt.Errorf("%w: frame at %d disagrees with index", ErrBadBlock, bi.Offset))
		}
		body := frame[5:]
		// Node filters can skip the record decode entirely when the block's
		// string table does not mention the node.
		if c.filter.node != "" {
			_, strs, _, err := decodeBlockHeader(body, c.strs[:0])
			c.strs = strs
			if err != nil {
				return c.fail(fmt.Errorf("%w: %v", ErrBadBlock, err))
			}
			found := false
			for _, s := range strs {
				if s == c.filter.node {
					found = true
					break
				}
			}
			if !found {
				c.qs.BlocksSkipped++
				continue
			}
		}
		events, strs, _, err := decodeBlockBody(c.events[:0], c.strs[:0], body)
		c.events, c.strs, c.ei = events, strs, 0
		if err != nil {
			return c.fail(fmt.Errorf("%w: %v", ErrBadBlock, err))
		}
		c.qs.BlocksRead++
		c.qs.RecordsDecoded += len(events)
	}
}

// blockPool is a shared worker pool decoding v2 blocks for the parallel
// query path. Jobs carry everything a worker needs (file, index entry,
// filter) and deliver into a per-job buffered channel, so workers never
// block on a consumer and the pool drains cleanly even when the merge
// aborts early.
type blockPool struct {
	jobs chan *blockJob
	wg   sync.WaitGroup
}

type blockJob struct {
	f      *os.File
	info   BlockInfo
	filter *compiledFilter
	res    chan blockResult // buffered (1): the worker's send never blocks
}

type blockResult struct {
	events  []Event
	skipped bool // node prefilter excluded the block without decoding records
	err     error
}

func newBlockPool(workers int) *blockPool {
	p := &blockPool{jobs: make(chan *blockJob)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job.res <- runBlockJob(job)
			}
		}()
	}
	return p
}

// stop ends the workers and waits for them to exit. Callers must stop
// the pool before closing the segment files the jobs read.
func (p *blockPool) stop() {
	close(p.jobs)
	p.wg.Wait()
}

// runBlockJob reads, validates, and decodes one block — the worker-side
// half of indexedCursor.Next, byte for byte: positioned read, frame
// check against the index, node prefilter via the block string table,
// then the record decode. Per-job buffers are freshly allocated; the
// events slice is handed off to the consuming cursor.
func runBlockJob(job *blockJob) blockResult {
	bi := job.info
	frame := make([]byte, 5+int(bi.Len))
	if _, err := job.f.ReadAt(frame, bi.Offset); err != nil {
		return blockResult{err: fmt.Errorf("%w: block at %d: %v", ErrBadBlock, bi.Offset, err)}
	}
	if frame[0] != frameBlock || binary.LittleEndian.Uint32(frame[1:5]) != bi.Len {
		return blockResult{err: fmt.Errorf("%w: frame at %d disagrees with index", ErrBadBlock, bi.Offset)}
	}
	body := frame[5:]
	if job.filter.node != "" {
		_, strs, _, err := decodeBlockHeader(body, nil)
		if err != nil {
			return blockResult{err: fmt.Errorf("%w: %v", ErrBadBlock, err)}
		}
		found := false
		for _, s := range strs {
			if s == job.filter.node {
				found = true
				break
			}
		}
		if !found {
			return blockResult{skipped: true}
		}
	}
	events, _, _, err := decodeBlockBody(nil, nil, body)
	if err != nil {
		return blockResult{err: fmt.Errorf("%w: %v", ErrBadBlock, err)}
	}
	return blockResult{events: events}
}

// parallelIndexedCursor serves the selected blocks of one v2 segment
// from the shared worker pool, keeping up to window block reads
// outstanding and re-serving results strictly in index order — so the
// merged stream, the per-record filtering, and the stats all match the
// sequential indexedCursor exactly. Stats are aggregated here, on the
// single merge thread, as results arrive.
type parallelIndexedCursor struct {
	f      *os.File
	name   string
	blocks []BlockInfo
	filter *compiledFilter
	qs     *QueryStats
	pool   *blockPool
	window int

	next    int                // next block index to submit
	pending []chan blockResult // outstanding results, oldest first
	events  []Event
	ei      int
	err     error
}

func (c *parallelIndexedCursor) fail(err error) (Event, bool, error) {
	c.err = fmt.Errorf("trace: segment %s (%s): %w", c.name, FormatV2, err)
	return Event{}, false, c.err
}

func (c *parallelIndexedCursor) Next() (Event, bool, error) {
	if c.err != nil {
		return Event{}, false, c.err
	}
	for {
		for c.ei < len(c.events) {
			ev := c.events[c.ei]
			c.ei++
			if c.filter.match(&ev) {
				c.qs.RecordsMatched++
				return ev, true, nil
			}
		}
		for c.next < len(c.blocks) && len(c.pending) < c.window {
			res := make(chan blockResult, 1)
			c.pool.jobs <- &blockJob{f: c.f, info: c.blocks[c.next], filter: c.filter, res: res}
			c.pending = append(c.pending, res)
			c.next++
		}
		if len(c.pending) == 0 {
			return Event{}, false, nil
		}
		r := <-c.pending[0]
		c.pending = c.pending[1:]
		if r.err != nil {
			return c.fail(r.err)
		}
		if r.skipped {
			c.qs.BlocksSkipped++
			continue
		}
		c.qs.BlocksRead++
		c.qs.RecordsDecoded += len(r.events)
		c.events, c.ei = r.events, 0
	}
}
