package trace

import "sync"

// PrefetchCursor wraps a Cursor with a background decode goroutine: the
// inner cursor is drained into bounded batches on a channel, so record
// decode overlaps with whatever consumes the stream (typically the k-way
// merge). Delivery is order- and error-preserving — events arrive exactly
// as the inner cursor would have served them, and an inner error
// surfaces after every event decoded before it, matching the sequential
// cursor's salvage semantics — so wrapping the segment cursors of a
// session merge is invisible to the sink except in wall-clock time.
//
// The wrapper owns the inner cursor until Close returns: Close cancels
// the goroutine and waits for it to exit, after which the caller may
// release the inner cursor's resources (e.g. close the segment file).
// Next and Close must not be called concurrently; like every Cursor,
// PrefetchCursor has a single consumer.
type PrefetchCursor struct {
	batches chan prefetchBatch
	recycle chan []Event
	cancel  chan struct{}
	done    chan struct{}

	cur  prefetchBatch
	i    int
	err  error
	fin  bool
	once sync.Once
}

type prefetchBatch struct {
	evs  []Event
	err  error // surfaced after evs are served
	last bool  // stream ends after this batch
}

const (
	prefetchBatchLen = 64 // events per batch: amortizes channel ops without hurting latency
	prefetchDepth    = 4  // batches in flight: bounds lookahead memory per segment
)

// NewPrefetchCursor starts a decode goroutine over inner and returns the
// wrapping cursor.
func NewPrefetchCursor(inner Cursor) *PrefetchCursor {
	p := &PrefetchCursor{
		batches: make(chan prefetchBatch, prefetchDepth),
		recycle: make(chan []Event, prefetchDepth+2),
		cancel:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	go p.run(inner)
	return p
}

func (p *PrefetchCursor) run(inner Cursor) {
	defer close(p.done)
	deliver := func(b prefetchBatch) bool {
		select {
		case p.batches <- b:
			return true
		case <-p.cancel:
			return false
		}
	}
	buf := p.takeBuf()
	for {
		ev, ok, err := inner.Next()
		if err != nil {
			deliver(prefetchBatch{evs: buf, err: err, last: true})
			return
		}
		if !ok {
			deliver(prefetchBatch{evs: buf, last: true})
			return
		}
		buf = append(buf, ev)
		if len(buf) >= prefetchBatchLen {
			if !deliver(prefetchBatch{evs: buf}) {
				return
			}
			buf = p.takeBuf()
		}
	}
}

// takeBuf reuses a consumed batch buffer when one is available, so a
// steady-state stream allocates nothing per batch.
func (p *PrefetchCursor) takeBuf() []Event {
	select {
	case b := <-p.recycle:
		return b[:0]
	default:
		return make([]Event, 0, prefetchBatchLen)
	}
}

// Next implements Cursor.
func (p *PrefetchCursor) Next() (Event, bool, error) {
	if p.err != nil {
		return Event{}, false, p.err
	}
	if p.fin {
		return Event{}, false, nil
	}
	for {
		if p.i < len(p.cur.evs) {
			ev := p.cur.evs[p.i]
			p.i++
			return ev, true, nil
		}
		if p.cur.last {
			p.fin = true
			p.err = p.cur.err
			return Event{}, false, p.err
		}
		if p.cur.evs != nil {
			select {
			case p.recycle <- p.cur.evs:
			default:
			}
		}
		select {
		case p.cur = <-p.batches:
		case <-p.done:
			// The goroutine exited; drain any batch it delivered before the
			// close raced this select. After done no sends can occur, so an
			// empty channel here means the stream was cancelled by Close.
			select {
			case p.cur = <-p.batches:
			default:
				p.fin = true
				return Event{}, false, nil
			}
		}
		p.i = 0
	}
}

// Close cancels the decode goroutine and waits for it to exit. After
// Close returns the inner cursor is no longer referenced, so the caller
// may close its underlying resources. Idempotent.
func (p *PrefetchCursor) Close() {
	p.once.Do(func() { close(p.cancel) })
	<-p.done
}
