package trace

import (
	"encoding/binary"
	"fmt"

	"github.com/tracesynth/rostracer/internal/sim"
)

// .rtrc v2: a block-based, delta-compressed, indexed segment format.
//
// Where v1 writes one fixed-width length-delimited record per event, v2
// groups records into blocks and exploits the stream's shape: Time, Seq,
// PID, and SrcTS are near-monotone (delta + zigzag varint), most payload
// fields are zero for most kinds (a per-record presence mask skips
// them), and node/topic names recur constantly (a per-block interned
// string table turns them into one-byte references). A footer index
// written on Close records every block's byte offset, time range, kind
// bitmap, and record count, so a reader can seek straight to the blocks
// overlapping a query instead of decoding the whole segment.
//
// On-disk layout (little endian; see docs/FORMAT.md for the full spec):
//
//	magic "RTRC2\n"
//	block*:  u8 tag=0x01, u32 bodyLen, body
//	footer:  u8 tag=0x02, u32 bodyLen, body,
//	         u32 bodyLen (again), 8-byte trailer magic "RTRC2IX\n"
//
// Blocks are self-contained (delta state and string table reset per
// block), so a crash-truncated segment — footer missing, or the last
// block torn — degrades exactly like a torn v1 segment: every complete
// block is readable, plus the complete-record prefix of a torn block.
type Format uint8

// Segment format versions. The zero value means "default" (v2) wherever
// a format knob is optional.
const (
	FormatV1 Format = 1 // fixed-width length-delimited records (RTRC1\n)
	FormatV2 Format = 2 // delta-compressed blocks + footer index (RTRC2\n)
)

func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	}
	return "unknown"
}

const binMagic2 = "RTRC2\n"

// Magic sniffing reads one fixed-size prefix, so both magics must be the
// same length (this const overflows at compile time if they diverge).
const _ = uint(len(binMagic)-len(binMagic2)) * uint(len(binMagic2)-len(binMagic))

const (
	frameBlock  = 0x01
	frameFooter = 0x02

	// footerTrailerMagic ends every v2 segment; with the u32 footer length
	// before it, a reader finds the footer in one seek from EOF.
	footerTrailerMagic = "RTRC2IX\n"
	footerTrailerLen   = 4 + len(footerTrailerMagic)

	// defaultBlockRecords is the records-per-block bound: large enough to
	// amortize the table and index entry, small enough that a filtered
	// read over a narrow window decodes little beyond its matches.
	defaultBlockRecords = 256

	// Decode-side sanity bounds: hostile inputs must not size allocations.
	maxBlockBody  = 1 << 26
	maxFooterBody = 1 << 26
	maxBlockCount = 1 << 20
	maxTableCount = 1 << 20
)

// Per-record presence-mask bits: a set bit means the field follows in
// the record; clear means its implied value (zero, or the previous
// record's value for the delta-chained PID).
const (
	maskPID       = 1 << 0 // zigzag delta from previous record's PID
	maskCBID      = 1 << 1
	maskSrcTS     = 1 << 2 // zigzag delta from previous record's SrcTS
	maskRet       = 1 << 3
	maskCPU       = 1 << 4
	maskPrevPID   = 1 << 5
	maskNextPID   = 1 << 6
	maskPrevPrio  = 1 << 7
	maskNextPrio  = 1 << 8
	maskPrevState = 1 << 9
	maskNode      = 1 << 10 // string-table reference (1-based)
	maskTopic     = 1 << 11
	maskAll       = 1<<12 - 1
)

// zz / unzz are the zigzag mapping varints need for signed values. All
// deltas use wraparound arithmetic on both sides, so even adversarial
// 64-bit jumps round-trip exactly.
func zz(v int64) uint64   { return uint64(v)<<1 ^ uint64(v>>63) }
func unzz(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// BlockInfo is one footer-index entry: where a block lives and what it
// holds, enough to decide from the index alone whether a time-range or
// kind-filtered read must decode it.
type BlockInfo struct {
	Offset  int64  // file offset of the block's frame tag
	Len     uint32 // body length (frame is 5 + Len bytes)
	Count   int    // records in the block
	MinTime sim.Time
	MaxTime sim.Time
	Kinds   uint32 // bitmap over Kind (bit k set when kind k occurs)
}

// kindBit returns k's bitmap bit (0 for kinds beyond the bitmap, which
// decodeRecord2 rejects anyway).
func kindBit(k Kind) uint32 {
	if k < 32 {
		return 1 << k
	}
	return 0
}

// blockEnc accumulates one block on the write side. Buffers, the string
// table, and its map are reused across blocks, so the per-event hot path
// allocates nothing once warm.
type blockEnc struct {
	records []byte
	strs    []string
	strIdx  map[string]uint64
	count   int
	minT    sim.Time
	maxT    sim.Time
	kinds   uint32

	prevTime int64
	prevSeq  uint64
	prevPID  uint32
	prevSrc  int64
}

func newBlockEnc() *blockEnc {
	return &blockEnc{
		records: make([]byte, 0, 4096),
		strIdx:  make(map[string]uint64),
	}
}

// reset clears the encoder for the next block. Delta state resets too:
// blocks are self-contained so a seek read can start at any of them.
func (be *blockEnc) reset() {
	be.records = be.records[:0]
	be.strs = be.strs[:0]
	clear(be.strIdx)
	be.count = 0
	be.kinds = 0
	be.prevTime, be.prevSeq, be.prevPID, be.prevSrc = 0, 0, 0, 0
}

// ref interns s into the block's string table, returning its 1-based
// reference (0 encodes the empty string).
func (be *blockEnc) ref(s string) uint64 {
	if s == "" {
		return 0
	}
	if i, ok := be.strIdx[s]; ok {
		return i + 1
	}
	i := uint64(len(be.strs))
	be.strs = append(be.strs, s)
	be.strIdx[s] = i
	return i + 1
}

// add encodes one record into the block.
func (be *blockEnc) add(e *Event) {
	nodeRef := be.ref(e.Node)
	topicRef := be.ref(e.Topic)
	pidD := int64(e.PID) - int64(be.prevPID)
	srcD := e.SrcTS - be.prevSrc

	var mask uint64
	if pidD != 0 {
		mask |= maskPID
	}
	if e.CBID != 0 {
		mask |= maskCBID
	}
	if srcD != 0 {
		mask |= maskSrcTS
	}
	if e.Ret != 0 {
		mask |= maskRet
	}
	if e.CPU != 0 {
		mask |= maskCPU
	}
	if e.PrevPID != 0 {
		mask |= maskPrevPID
	}
	if e.NextPID != 0 {
		mask |= maskNextPID
	}
	if e.PrevPrio != 0 {
		mask |= maskPrevPrio
	}
	if e.NextPrio != 0 {
		mask |= maskNextPrio
	}
	if e.PrevState != 0 {
		mask |= maskPrevState
	}
	if nodeRef != 0 {
		mask |= maskNode
	}
	if topicRef != 0 {
		mask |= maskTopic
	}

	b := append(be.records, byte(e.Kind))
	b = binary.AppendUvarint(b, mask)
	b = binary.AppendUvarint(b, zz(int64(e.Time)-be.prevTime))
	b = binary.AppendUvarint(b, zz(int64(e.Seq-be.prevSeq)))
	if mask&maskPID != 0 {
		b = binary.AppendUvarint(b, zz(pidD))
	}
	if mask&maskCBID != 0 {
		b = binary.AppendUvarint(b, e.CBID)
	}
	if mask&maskSrcTS != 0 {
		b = binary.AppendUvarint(b, zz(srcD))
	}
	if mask&maskRet != 0 {
		b = binary.AppendUvarint(b, e.Ret)
	}
	if mask&maskCPU != 0 {
		b = binary.AppendUvarint(b, zz(int64(e.CPU)))
	}
	if mask&maskPrevPID != 0 {
		b = binary.AppendUvarint(b, uint64(e.PrevPID))
	}
	if mask&maskNextPID != 0 {
		b = binary.AppendUvarint(b, uint64(e.NextPID))
	}
	if mask&maskPrevPrio != 0 {
		b = binary.AppendUvarint(b, zz(int64(e.PrevPrio)))
	}
	if mask&maskNextPrio != 0 {
		b = binary.AppendUvarint(b, zz(int64(e.NextPrio)))
	}
	if mask&maskPrevState != 0 {
		b = binary.AppendUvarint(b, zz(int64(e.PrevState)))
	}
	if mask&maskNode != 0 {
		b = binary.AppendUvarint(b, nodeRef)
	}
	if mask&maskTopic != 0 {
		b = binary.AppendUvarint(b, topicRef)
	}
	be.records = b

	be.prevTime, be.prevSeq, be.prevPID, be.prevSrc = int64(e.Time), e.Seq, e.PID, e.SrcTS
	if be.count == 0 || e.Time < be.minT {
		be.minT = e.Time
	}
	if be.count == 0 || e.Time > be.maxT {
		be.maxT = e.Time
	}
	be.kinds |= kindBit(e.Kind)
	be.count++
}

// ruv reads one uvarint at offset o, bounds-checked.
func ruv(b []byte, o int) (uint64, int, error) {
	v, n := binary.Uvarint(b[o:])
	if n <= 0 {
		return 0, o, fmt.Errorf("trace: truncated or overlong varint at offset %d", o)
	}
	return v, o + n, nil
}

// decState is the per-block delta chain on the decode side.
type decState struct {
	prevTime int64
	prevSeq  uint64
	prevPID  uint32
	prevSrc  int64
}

// decodeRecord2 decodes one v2 record at offset o, advancing the delta
// state. Every read is bounds-checked; errors never panic.
func decodeRecord2(b []byte, o int, st *decState, strs []string) (Event, int, error) {
	var e Event
	if o >= len(b) {
		return e, o, fmt.Errorf("trace: record overruns block")
	}
	e.Kind = Kind(b[o])
	if e.Kind == KindInvalid || e.Kind >= numKinds {
		return e, o, fmt.Errorf("trace: invalid kind %d", b[o])
	}
	o++
	mask, o, err := ruv(b, o)
	if err != nil {
		return e, o, err
	}
	if mask&^uint64(maskAll) != 0 {
		return e, o, fmt.Errorf("trace: unknown record mask bits %#x", mask)
	}
	u, o, err := ruv(b, o)
	if err != nil {
		return e, o, err
	}
	st.prevTime += unzz(u)
	e.Time = sim.Time(st.prevTime)
	if u, o, err = ruv(b, o); err != nil {
		return e, o, err
	}
	st.prevSeq += uint64(unzz(u))
	e.Seq = st.prevSeq
	if mask&maskPID != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		st.prevPID = uint32(int64(st.prevPID) + unzz(u))
	}
	e.PID = st.prevPID
	if mask&maskCBID != 0 {
		if e.CBID, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
	}
	if mask&maskSrcTS != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		st.prevSrc += unzz(u)
	}
	e.SrcTS = st.prevSrc
	if mask&maskRet != 0 {
		if e.Ret, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
	}
	if mask&maskCPU != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		e.CPU = int32(unzz(u))
	}
	if mask&maskPrevPID != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		e.PrevPID = uint32(u)
	}
	if mask&maskNextPID != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		e.NextPID = uint32(u)
	}
	if mask&maskPrevPrio != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		e.PrevPrio = int32(unzz(u))
	}
	if mask&maskNextPrio != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		e.NextPrio = int32(unzz(u))
	}
	if mask&maskPrevState != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		e.PrevState = int32(unzz(u))
	}
	if mask&maskNode != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		if u == 0 || u > uint64(len(strs)) {
			return e, o, fmt.Errorf("trace: node reference %d outside table of %d", u, len(strs))
		}
		e.Node = strs[u-1]
	}
	if mask&maskTopic != 0 {
		if u, o, err = ruv(b, o); err != nil {
			return e, o, err
		}
		if u == 0 || u > uint64(len(strs)) {
			return e, o, fmt.Errorf("trace: topic reference %d outside table of %d", u, len(strs))
		}
		e.Topic = strs[u-1]
	}
	return e, o, nil
}

// decodeBlockHeader parses a block body's record count and string table,
// returning the offset where records start. Table strings are interned
// once per block, so records share one canonical string per name.
func decodeBlockHeader(body []byte, strs []string) (count int, strsOut []string, o int, err error) {
	c, o, err := ruv(body, 0)
	if err != nil {
		return 0, strs, o, err
	}
	if c > maxBlockCount {
		return 0, strs, o, fmt.Errorf("trace: implausible block record count %d", c)
	}
	nStr, o, err := ruv(body, o)
	if err != nil {
		return 0, strs, o, err
	}
	if nStr > maxTableCount {
		return 0, strs, o, fmt.Errorf("trace: implausible string table size %d", nStr)
	}
	strs = strs[:0]
	for i := uint64(0); i < nStr; i++ {
		l, o2, err := ruv(body, o)
		if err != nil {
			return 0, strs, o, err
		}
		if l > 0xFFFF || o2+int(l) > len(body) {
			return 0, strs, o, fmt.Errorf("trace: string table entry overruns block")
		}
		strs = append(strs, InternBytes(body[o2:o2+int(l)]))
		o = o2 + int(l)
	}
	return int(c), strs, o, nil
}

// decodeBlockBody decodes one complete block body into dst. On error it
// returns the records decoded before the damage point (the
// complete-record prefix a torn block salvages to) along with the error;
// info is only meaningful when err is nil.
func decodeBlockBody(dst []Event, strs []string, body []byte) (events []Event, strsOut []string, info BlockInfo, err error) {
	events = dst[:0]
	count, strs, o, err := decodeBlockHeader(body, strs)
	if err != nil {
		return events, strs, info, err
	}
	var st decState
	for i := 0; i < count; i++ {
		e, o2, derr := decodeRecord2(body, o, &st, strs)
		if derr != nil {
			return events, strs, info, derr
		}
		events = append(events, e)
		o = o2
		if i == 0 || e.Time < info.MinTime {
			info.MinTime = e.Time
		}
		if i == 0 || e.Time > info.MaxTime {
			info.MaxTime = e.Time
		}
		info.Kinds |= kindBit(e.Kind)
	}
	if o != len(body) {
		return events, strs, info, fmt.Errorf("trace: %d trailing bytes in block", len(body)-o)
	}
	info.Count = count
	return events, strs, info, nil
}

// appendFooterBody encodes the footer index: per-block entries with
// delta-encoded offsets, then the segment's total record count as a
// cross-check.
func appendFooterBody(dst []byte, blocks []BlockInfo, records int) []byte {
	b := binary.AppendUvarint(dst, uint64(len(blocks)))
	prevOff := int64(0)
	for i := range blocks {
		bi := &blocks[i]
		b = binary.AppendUvarint(b, uint64(bi.Offset-prevOff))
		prevOff = bi.Offset
		b = binary.AppendUvarint(b, uint64(bi.Len))
		b = binary.AppendUvarint(b, uint64(bi.Count))
		b = binary.AppendUvarint(b, zz(int64(bi.MinTime)))
		b = binary.AppendUvarint(b, uint64(int64(bi.MaxTime)-int64(bi.MinTime)))
		b = binary.AppendUvarint(b, uint64(bi.Kinds))
	}
	return binary.AppendUvarint(b, uint64(records))
}

// parseFooterBody decodes and structurally validates a footer index.
func parseFooterBody(body []byte) (blocks []BlockInfo, records int, err error) {
	n, o, err := ruv(body, 0)
	if err != nil {
		return nil, 0, err
	}
	if n > maxBlockCount {
		return nil, 0, fmt.Errorf("trace: implausible footer block count %d", n)
	}
	blocks = make([]BlockInfo, 0, n)
	prevOff := int64(0)
	for i := uint64(0); i < n; i++ {
		var bi BlockInfo
		var u uint64
		if u, o, err = ruv(body, o); err != nil {
			return nil, 0, err
		}
		bi.Offset = prevOff + int64(u)
		if bi.Offset < int64(len(binMagic2)) || (i > 0 && u == 0) {
			return nil, 0, fmt.Errorf("trace: footer block offsets not increasing")
		}
		prevOff = bi.Offset
		if u, o, err = ruv(body, o); err != nil {
			return nil, 0, err
		}
		if u == 0 || u > maxBlockBody {
			return nil, 0, fmt.Errorf("trace: implausible footer block length %d", u)
		}
		bi.Len = uint32(u)
		if u, o, err = ruv(body, o); err != nil {
			return nil, 0, err
		}
		if u > maxBlockCount {
			return nil, 0, fmt.Errorf("trace: implausible footer record count %d", u)
		}
		bi.Count = int(u)
		if u, o, err = ruv(body, o); err != nil {
			return nil, 0, err
		}
		bi.MinTime = sim.Time(unzz(u))
		if u, o, err = ruv(body, o); err != nil {
			return nil, 0, err
		}
		bi.MaxTime = bi.MinTime + sim.Time(u)
		if u, o, err = ruv(body, o); err != nil {
			return nil, 0, err
		}
		bi.Kinds = uint32(u)
		blocks = append(blocks, bi)
	}
	rec, o, err := ruv(body, o)
	if err != nil {
		return nil, 0, err
	}
	if o != len(body) {
		return nil, 0, fmt.Errorf("trace: %d trailing bytes in footer", len(body)-o)
	}
	return blocks, int(rec), nil
}
