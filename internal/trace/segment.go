package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/tracesynth/rostracer/internal/sim"
)

// Damage classification sentinels: every FileCursor decode failure wraps
// exactly one of these, so salvage and fsck can classify what went wrong
// with errors.Is instead of matching message strings. The distinction
// matters operationally — a truncated segment is a crashed writer (its
// prefix is trustworthy), a corrupt one is media damage (the prefix is
// trustworthy only up to the damage point), a bad magic is not a segment
// at all, and an unordered segment was written by a broken producer.
var (
	ErrBadMagic  = errors.New("trace: bad segment magic")
	ErrTruncated = errors.New("trace: segment truncated mid-record")
	ErrCorrupt   = errors.New("trace: corrupt segment record")
	ErrUnordered = errors.New("trace: segment records out of (Time, Seq) order")
)

// Streaming persistence: SegmentWriter is the Sink side of the trace
// database (events append to a .rtrc segment as they are observed) and
// FileCursor is the Cursor side (records decode one at a time off a
// buffered reader). Together they make disk a pass-through stage of the
// streaming pipeline: a drain can flow rings -> merge -> segment file,
// and a stored session can flow segment files -> merge -> model builder,
// with peak buffering of one event per stream on either side.

// SegmentWriter writes the binary .rtrc codec incrementally: the magic
// header goes out on creation and every Observe appends one
// length-delimited record, so a segment of any size is written with one
// event of state. The format is self-delimiting (records carry their own
// length prefixes and the stream ends at EOF), so Close has no count
// field to patch — it only flushes, and a segment interrupted mid-write
// is recognizable by its truncated final record (see FileCursor).
//
// Errors are sticky: the first write or encode error stops further
// output and is reported by Err and Close. A SegmentWriter produces
// byte-identical output to WriteBinary over the same event sequence
// (WriteBinary is implemented as one).
type SegmentWriter struct {
	bw     *bufio.Writer
	c      io.Closer // owned destination, closed by Close (nil for plain writers)
	path   string    // destination file, when opened through a Store
	n      int
	err    error
	closed bool
	// Reused encode buffers: Observe is the per-event hot path of every
	// periodic drain, so it must not allocate (stack-local buffers would
	// escape through the io interfaces).
	lenBuf  [4]byte
	scratch []byte
}

// NewSegmentWriter starts a segment on w by writing the magic header.
// The caller must Close to flush. When w needs closing too (a file), use
// Store.WriteSegment, which hands ownership to the writer.
func NewSegmentWriter(w io.Writer) *SegmentWriter {
	sw := &SegmentWriter{bw: bufio.NewWriter(w), scratch: make([]byte, 0, 128)}
	_, sw.err = sw.bw.WriteString(binMagic)
	return sw
}

// Observe implements Sink, appending one record to the segment.
func (sw *SegmentWriter) Observe(e Event) {
	if sw.closed {
		// Buffering into a flushed writer would vanish silently; make the
		// misuse loud instead.
		if sw.err == nil {
			sw.err = fmt.Errorf("trace: Observe on closed segment writer")
		}
		return
	}
	if sw.err != nil {
		return
	}
	body, ok := appendRecordBody(sw.scratch[:0], &e)
	if !ok {
		sw.err = fmt.Errorf("trace: string field too long in event %v", e)
		return
	}
	sw.scratch = body[:0] // keep any growth for the next record
	binary.LittleEndian.PutUint32(sw.lenBuf[:], uint32(len(body)))
	if _, err := sw.bw.Write(sw.lenBuf[:]); err != nil {
		sw.err = err
		return
	}
	if _, err := sw.bw.Write(body); err != nil {
		sw.err = err
		return
	}
	sw.n++
}

// Count reports how many records have been written.
func (sw *SegmentWriter) Count() int { return sw.n }

// Path reports the destination file of a store-opened writer (empty for
// plain io.Writer destinations) — what a caller removes when a failed
// drain must not leave a partial segment looking like a complete one.
func (sw *SegmentWriter) Path() string { return sw.path }

// Err reports the first write or encode error, if any.
func (sw *SegmentWriter) Err() error { return sw.err }

// Flush forces buffered output down to the destination, reporting the
// stream's first error. Observe buffers (bufio), so a destination
// failure normally surfaces records later, at a buffer boundary or at
// Close; a recovery path that must know now whether a fresh segment's
// disk is writable flushes right after opening instead of discovering
// the answer mid-drain.
func (sw *SegmentWriter) Flush() error {
	if sw.closed || sw.err != nil {
		return sw.err
	}
	sw.err = sw.bw.Flush()
	return sw.err
}

// Close flushes buffered output (and closes the destination when the
// writer owns it), reporting the first error of the whole stream. Close
// is idempotent.
func (sw *SegmentWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	if sw.err == nil {
		sw.err = sw.bw.Flush()
	}
	if sw.c != nil {
		if cerr := sw.c.Close(); sw.err == nil {
			sw.err = cerr
		}
	}
	return sw.err
}

// FileCursor decodes a .rtrc segment into a Cursor: one record per Next,
// off a buffered reader, with a single reused record buffer — reading a
// multi-GB segment holds one record in memory, never the segment. It
// accepts exactly the inputs ReadBinary accepts and fails exactly where
// ReadBinary fails (ReadBinary is implemented over it, and
// FuzzFileCursor pins the equivalence): a segment truncated mid-record —
// e.g. by a writer killed before Close — yields every complete record
// and then an error, so no partial-record event ever reaches a sink.
type FileCursor struct {
	br   *bufio.Reader
	c    io.Closer // owned source, closed by Close (nil for plain readers)
	name string    // when set (store-opened cursors), errors name the segment
	buf  []byte
	// strict makes Next reject records out of (Time, Seq) order. Store
	// segments are required sorted (MergeStream cannot re-sort, and an
	// out-of-order stream would silently corrupt Algorithm 2's windows),
	// so store-opened cursors validate; the plain codec keeps accepting
	// arbitrary traces, as WriteBinary round-trips them.
	strict   bool
	prevTime sim.Time
	prevSeq  uint64
	prevSet  bool
	lenBuf   [4]byte // reused: a stack-local would escape through io.ReadFull
	err      error
	started  bool
	done     bool
	// consumed counts the bytes of the stream covered by the magic header
	// and every fully decoded record — the length of the longest prefix
	// that is itself a valid segment. Salvage uses it to report how many
	// bytes of a damaged segment were recovered vs dropped.
	consumed int64
}

// NewFileCursor opens a cursor over a .rtrc stream. The magic header is
// validated on the first Next. When r needs closing (a file), use
// Store.SessionCursors, which hands ownership to the cursor.
func NewFileCursor(r io.Reader) *FileCursor {
	return &FileCursor{br: bufio.NewReader(r)}
}

func (c *FileCursor) fail(err error) (Event, bool, error) {
	if c.name != "" {
		err = fmt.Errorf("trace: segment %s: %w", c.name, err)
	}
	c.err = err
	return Event{}, false, c.err
}

// Next implements Cursor. Errors are sticky: after the first decode
// error the cursor keeps returning it.
func (c *FileCursor) Next() (Event, bool, error) {
	if c.err != nil {
		return Event{}, false, c.err
	}
	if c.done {
		return Event{}, false, nil
	}
	if !c.started {
		c.started = true
		var magic [len(binMagic)]byte
		if _, err := io.ReadFull(c.br, magic[:]); err != nil {
			return c.fail(fmt.Errorf("%w: reading magic: %w", ErrTruncated, err))
		}
		if string(magic[:]) != binMagic {
			return c.fail(fmt.Errorf("%w: %q", ErrBadMagic, magic))
		}
		c.consumed = int64(len(binMagic))
	}
	if _, err := io.ReadFull(c.br, c.lenBuf[:]); err != nil {
		if err == io.EOF {
			c.done = true
			return Event{}, false, nil
		}
		return c.fail(fmt.Errorf("%w: record length: %w", ErrTruncated, err))
	}
	n := binary.LittleEndian.Uint32(c.lenBuf[:])
	if n < recFixedSize || n > 1<<20 {
		return c.fail(fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n))
	}
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	buf := c.buf[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return c.fail(fmt.Errorf("%w: record body: %w", ErrTruncated, err))
	}
	// decodeRecord interns the string fields, so the record buffer can be
	// reused for the next Next.
	ev, err := decodeRecord(buf)
	if err != nil {
		return c.fail(fmt.Errorf("%w: %w", ErrCorrupt, err))
	}
	if c.strict {
		if c.prevSet && (ev.Time < c.prevTime || (ev.Time == c.prevTime && ev.Seq < c.prevSeq)) {
			return c.fail(fmt.Errorf("%w: (%d, %d) after (%d, %d)",
				ErrUnordered, ev.Time, ev.Seq, c.prevTime, c.prevSeq))
		}
		c.prevTime, c.prevSeq, c.prevSet = ev.Time, ev.Seq, true
	}
	c.consumed += int64(4 + n)
	return ev, true, nil
}

// BytesConsumed reports the length of the longest stream prefix covered
// by the magic header and fully decoded records. For an undamaged
// segment read to the end this is the whole file; for a damaged one it
// marks the damage point — everything past it is what salvage drops.
func (c *FileCursor) BytesConsumed() int64 { return c.consumed }

// Err reports the first decode error, if any.
func (c *FileCursor) Err() error { return c.err }

// Close releases the underlying source when the cursor owns it.
func (c *FileCursor) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}
