package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/tracesynth/rostracer/internal/sim"
)

// Damage classification sentinels: every FileCursor decode failure wraps
// exactly one of these, so salvage and fsck can classify what went wrong
// with errors.Is instead of matching message strings. The distinction
// matters operationally — a truncated segment is a crashed writer (its
// prefix is trustworthy), a corrupt one is media damage (the prefix is
// trustworthy only up to the damage point), a bad magic is not a segment
// at all, and an unordered segment was written by a broken producer.
var (
	ErrBadMagic  = errors.New("trace: bad segment magic")
	ErrTruncated = errors.New("trace: segment truncated mid-record")
	ErrCorrupt   = errors.New("trace: corrupt segment record")
	ErrUnordered = errors.New("trace: segment records out of (Time, Seq) order")
	// v2-specific damage classes: a complete block frame whose body does
	// not decode (media damage inside the frame), and a footer index that
	// is torn, malformed, or disagrees with the blocks actually on disk.
	// Both leave every earlier complete block trustworthy, which is why
	// they are distinct from ErrCorrupt (whose v1 meaning — record-level
	// damage — stops the trustworthy prefix at the damage point too).
	ErrBadBlock  = errors.New("trace: corrupt segment block")
	ErrBadFooter = errors.New("trace: bad segment footer index")
)

// Streaming persistence: SegmentWriter is the Sink side of the trace
// database (events append to a .rtrc segment as they are observed) and
// FileCursor is the Cursor side (records decode one at a time off a
// buffered reader). Together they make disk a pass-through stage of the
// streaming pipeline: a drain can flow rings -> merge -> segment file,
// and a stored session can flow segment files -> merge -> model builder,
// with peak buffering of one event per stream on either side.

// SegmentWriter writes the binary .rtrc codec incrementally: the magic
// header goes out on creation and every Observe appends one
// length-delimited record, so a segment of any size is written with one
// event of state. The format is self-delimiting (records carry their own
// length prefixes and the stream ends at EOF), so Close has no count
// field to patch — it only flushes, and a segment interrupted mid-write
// is recognizable by its truncated final record (see FileCursor).
//
// Errors are sticky: the first write or encode error stops further
// output and is reported by Err and Close. A SegmentWriter produces
// byte-identical output to WriteBinary over the same event sequence
// (WriteBinary is implemented as one).
type SegmentWriter struct {
	bw     *bufio.Writer
	c      io.Closer // owned destination, closed by Close (nil for plain writers)
	path   string    // destination file, when opened through a Store
	n      int
	err    error
	closed bool
	// Reused encode buffers: Observe is the per-event hot path of every
	// periodic drain, so it must not allocate (stack-local buffers would
	// escape through the io interfaces).
	lenBuf  [4]byte
	scratch []byte
	// v2 state: Observe accumulates records into enc and flushBlock frames
	// a block whenever blockRecords accumulate (or at Close), tracking the
	// footer index as it goes. All nil/zero for v1 writers.
	format       Format
	blockRecords int
	enc          *blockEnc
	off          int64 // file offset where the next block frame lands
	index        []BlockInfo

	// Async v2 encode (EnableAsync): sealed blocks travel to a background
	// goroutine that frames, writes, and indexes them, double-buffered so
	// one block fills on the caller thread while the previous one encodes
	// and writes off-thread. The caller-facing contract is unchanged —
	// single caller, sticky errors, Close drains — and the bytes produced
	// are identical to the synchronous path (same blocks, same order).
	// While the worker runs it exclusively owns bw, scratch, lenBuf, off,
	// and index (the v2 Observe path touches none of them); the caller
	// reclaims ownership after the worker exits, which is how Close can
	// write the footer in place.
	async     bool
	jobs      chan asyncEncCmd
	free      chan *blockEnc
	asyncDone chan struct{}
	aerrSet   atomic.Bool
	amu       sync.Mutex
	aerr      error
}

// asyncEncCmd is one unit of background-encoder work: a sealed block to
// write, a flush request to acknowledge, or both (never in practice).
type asyncEncCmd struct {
	enc   *blockEnc
	flush chan error
}

// NewSegmentWriter starts a v1 segment on w by writing the magic header.
// The caller must Close to flush. When w needs closing too (a file), use
// Store.WriteSegment, which hands ownership to the writer. New write
// paths should prefer NewSegmentWriterFormat (v2); this constructor
// stays v1 so its byte-equivalence pin with WriteBinary holds.
func NewSegmentWriter(w io.Writer) *SegmentWriter {
	sw := &SegmentWriter{bw: bufio.NewWriter(w), scratch: make([]byte, 0, 128), format: FormatV1}
	_, sw.err = sw.bw.WriteString(binMagic)
	return sw
}

// NewSegmentWriterFormat starts a segment on w in the given format
// (zero Format and zero blockRecords select the defaults: v2,
// defaultBlockRecords records per block).
func NewSegmentWriterFormat(w io.Writer, format Format, blockRecords int) *SegmentWriter {
	if format == 0 {
		format = FormatV2
	}
	if format == FormatV1 {
		return NewSegmentWriter(w)
	}
	if blockRecords <= 0 {
		blockRecords = defaultBlockRecords
	}
	sw := &SegmentWriter{
		bw:           bufio.NewWriter(w),
		scratch:      make([]byte, 0, 128),
		format:       FormatV2,
		blockRecords: blockRecords,
		enc:          newBlockEnc(),
	}
	_, sw.err = sw.bw.WriteString(binMagic2)
	sw.off = int64(len(binMagic2))
	return sw
}

// Format reports the on-disk format this writer produces.
func (sw *SegmentWriter) Format() Format { return sw.format }

// EnableAsync moves block encoding and writing onto a background
// goroutine. Only meaningful for v2 writers and only before the first
// Observe; v1 writers and already-started or failed writers ignore it.
// The segment bytes are identical to the synchronous path: blocks are
// framed in seal order by a single worker, and Close drains the worker
// before writing the footer.
func (sw *SegmentWriter) EnableAsync() {
	if sw.format != FormatV2 || sw.async || sw.closed || sw.err != nil || sw.n > 0 {
		return
	}
	sw.async = true
	sw.jobs = make(chan asyncEncCmd, 1)
	sw.free = make(chan *blockEnc, 2)
	sw.free <- newBlockEnc() // the spare of the double buffer
	sw.asyncDone = make(chan struct{})
	go sw.asyncLoop()
}

// asyncLoop is the background encoder: it frames and writes sealed
// blocks, recycles their encoders, and acknowledges flush requests.
// After an error it keeps draining (recycling without writing) so the
// caller never blocks on a dead worker; the error is sticky and
// surfaces through Observe, Flush, and Close.
func (sw *SegmentWriter) asyncLoop() {
	defer close(sw.asyncDone)
	for cmd := range sw.jobs {
		if cmd.enc != nil {
			if sw.asyncErr() == nil {
				if err := sw.writeBlockFrom(cmd.enc); err != nil {
					sw.setAsyncErr(err)
				}
			}
			cmd.enc.reset()
			sw.free <- cmd.enc
		}
		if cmd.flush != nil {
			err := sw.asyncErr()
			if err == nil {
				if err = sw.bw.Flush(); err != nil {
					sw.setAsyncErr(err)
				}
			}
			cmd.flush <- err
		}
	}
}

func (sw *SegmentWriter) asyncErr() error {
	if !sw.aerrSet.Load() {
		return nil
	}
	sw.amu.Lock()
	defer sw.amu.Unlock()
	return sw.aerr
}

func (sw *SegmentWriter) setAsyncErr(err error) {
	sw.amu.Lock()
	if sw.aerr == nil {
		sw.aerr = err
	}
	sw.amu.Unlock()
	sw.aerrSet.Store(true)
}

// sealAsync hands the filled encoder to the worker and takes the spare.
// Both channel operations apply backpressure: at most one sealed block
// queues while another writes, so memory stays at two blocks.
func (sw *SegmentWriter) sealAsync() {
	sw.jobs <- asyncEncCmd{enc: sw.enc}
	sw.enc = <-sw.free
}

// drainAsync seals any partial block, stops the worker, and waits for it
// to exit, reclaiming ownership of the buffered writer and the index.
// The worker's sticky error (if any) folds into the writer's.
func (sw *SegmentWriter) drainAsync() {
	if !sw.async {
		return
	}
	if sw.enc.count > 0 {
		sw.jobs <- asyncEncCmd{enc: sw.enc}
	}
	close(sw.jobs)
	<-sw.asyncDone
	sw.async = false
	if err := sw.asyncErr(); err != nil && sw.err == nil {
		sw.err = err
	}
}

// Observe implements Sink, appending one record to the segment.
func (sw *SegmentWriter) Observe(e Event) {
	if sw.closed {
		// Buffering into a flushed writer would vanish silently; make the
		// misuse loud instead.
		if sw.err == nil {
			sw.err = fmt.Errorf("trace: Observe on closed segment writer")
		}
		return
	}
	if sw.err != nil {
		return
	}
	if sw.format == FormatV2 {
		if sw.async && sw.aerrSet.Load() {
			// Surface the worker's failure here so callers that poll Err()
			// between Observes (the degradation-aware writer does) see it as
			// early as the synchronous path would have.
			sw.err = sw.asyncErr()
			return
		}
		if len(e.Node) > 0xFFFF || len(e.Topic) > 0xFFFF {
			sw.err = fmt.Errorf("trace: string field too long in event %v", e)
			return
		}
		sw.enc.add(&e)
		sw.n++
		if sw.enc.count >= sw.blockRecords {
			if sw.async {
				sw.sealAsync()
			} else {
				sw.flushBlock()
			}
		}
		return
	}
	body, ok := appendRecordBody(sw.scratch[:0], &e)
	if !ok {
		sw.err = fmt.Errorf("trace: string field too long in event %v", e)
		return
	}
	sw.scratch = body[:0] // keep any growth for the next record
	binary.LittleEndian.PutUint32(sw.lenBuf[:], uint32(len(body)))
	if _, err := sw.bw.Write(sw.lenBuf[:]); err != nil {
		sw.err = err
		return
	}
	if _, err := sw.bw.Write(body); err != nil {
		sw.err = err
		return
	}
	sw.n++
}

// flushBlock frames the accumulated v2 block and records its index
// entry. The encoder's buffers are reused for the next block.
func (sw *SegmentWriter) flushBlock() {
	if sw.err != nil || sw.enc.count == 0 {
		return
	}
	if err := sw.writeBlockFrom(sw.enc); err != nil {
		sw.err = err
		return
	}
	sw.enc.reset()
}

// writeBlockFrom frames enc's block onto the buffered writer and records
// its index entry. It is the single block-serialization path, shared by
// the synchronous flushBlock and the async worker; the caller resets the
// encoder afterwards.
func (sw *SegmentWriter) writeBlockFrom(enc *blockEnc) error {
	if enc.count == 0 {
		return nil
	}
	hdr := binary.AppendUvarint(sw.scratch[:0], uint64(enc.count))
	hdr = binary.AppendUvarint(hdr, uint64(len(enc.strs)))
	for _, s := range enc.strs {
		hdr = binary.AppendUvarint(hdr, uint64(len(s)))
		hdr = append(hdr, s...)
	}
	bodyLen := len(hdr) + len(enc.records)
	sw.lenBuf[0] = frameBlock
	if _, err := sw.bw.Write(sw.lenBuf[:1]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(sw.lenBuf[:], uint32(bodyLen))
	if _, err := sw.bw.Write(sw.lenBuf[:]); err != nil {
		return err
	}
	if _, err := sw.bw.Write(hdr); err != nil {
		return err
	}
	if _, err := sw.bw.Write(enc.records); err != nil {
		return err
	}
	sw.index = append(sw.index, BlockInfo{
		Offset:  sw.off,
		Len:     uint32(bodyLen),
		Count:   enc.count,
		MinTime: enc.minT,
		MaxTime: enc.maxT,
		Kinds:   enc.kinds,
	})
	sw.off += int64(5 + bodyLen)
	sw.scratch = hdr[:0]
	return nil
}

// writeFooter frames the footer index and its fixed-size trailer; only
// Close calls it, which is what gives v2 its crash semantics: a segment
// without a footer is a crashed writer, readable as complete blocks.
func (sw *SegmentWriter) writeFooter() {
	if sw.err != nil {
		return
	}
	body := appendFooterBody(sw.scratch[:0], sw.index, sw.n)
	sw.lenBuf[0] = frameFooter
	if _, err := sw.bw.Write(sw.lenBuf[:1]); err != nil {
		sw.err = err
		return
	}
	binary.LittleEndian.PutUint32(sw.lenBuf[:], uint32(len(body)))
	if _, err := sw.bw.Write(sw.lenBuf[:]); err != nil {
		sw.err = err
		return
	}
	if _, err := sw.bw.Write(body); err != nil {
		sw.err = err
		return
	}
	if _, err := sw.bw.Write(sw.lenBuf[:]); err != nil { // body length again, for EOF seek
		sw.err = err
		return
	}
	if _, err := sw.bw.WriteString(footerTrailerMagic); err != nil {
		sw.err = err
		return
	}
	sw.scratch = body[:0]
}

// Count reports how many records have been written.
func (sw *SegmentWriter) Count() int { return sw.n }

// Path reports the destination file of a store-opened writer (empty for
// plain io.Writer destinations) — what a caller removes when a failed
// drain must not leave a partial segment looking like a complete one.
func (sw *SegmentWriter) Path() string { return sw.path }

// Err reports the first write or encode error, if any.
func (sw *SegmentWriter) Err() error { return sw.err }

// Flush forces buffered output down to the destination, reporting the
// stream's first error. Observe buffers (bufio, plus the open block in
// v2), so a destination failure normally surfaces records later, at a
// buffer or block boundary or at Close; a recovery path that must know
// now whether a fresh segment's disk is writable flushes right after
// opening instead of discovering the answer mid-drain. Flush does not
// frame the open v2 block — only Close and the blockRecords bound do —
// so flushing mid-block keeps the block layout deterministic.
func (sw *SegmentWriter) Flush() error {
	if sw.closed || sw.err != nil {
		return sw.err
	}
	if sw.async {
		// The worker owns the buffered writer; route the flush through it.
		// Channel order guarantees every block sealed before this call is
		// written first, exactly as the synchronous path would have.
		ch := make(chan error, 1)
		sw.jobs <- asyncEncCmd{flush: ch}
		sw.err = <-ch
		return sw.err
	}
	sw.err = sw.bw.Flush()
	return sw.err
}

// Close flushes buffered output (and closes the destination when the
// writer owns it), reporting the first error of the whole stream. For v2
// this is also where the final block and the footer index are framed:
// a segment that never reached Close has no footer, which is exactly how
// readers recognize a crashed writer. Close is idempotent.
func (sw *SegmentWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	if sw.format == FormatV2 {
		if sw.async {
			sw.drainAsync()
		} else {
			sw.flushBlock()
		}
		sw.writeFooter()
	}
	if sw.err == nil {
		sw.err = sw.bw.Flush()
	}
	if sw.c != nil {
		if cerr := sw.c.Close(); sw.err == nil {
			sw.err = cerr
		}
	}
	return sw.err
}

// FileCursor decodes a .rtrc segment into a Cursor: one record per Next,
// off a buffered reader, with a single reused record buffer — reading a
// multi-GB segment holds one record in memory, never the segment. It
// accepts exactly the inputs ReadBinary accepts and fails exactly where
// ReadBinary fails (ReadBinary is implemented over it, and
// FuzzFileCursor pins the equivalence): a segment truncated mid-record —
// e.g. by a writer killed before Close — yields every complete record
// and then an error, so no partial-record event ever reaches a sink.
type FileCursor struct {
	br   *bufio.Reader
	c    io.Closer // owned source, closed by Close (nil for plain readers)
	name string    // when set (store-opened cursors), errors name the segment
	buf  []byte
	// strict makes Next reject records out of (Time, Seq) order. Store
	// segments are required sorted (MergeStream cannot re-sort, and an
	// out-of-order stream would silently corrupt Algorithm 2's windows),
	// so store-opened cursors validate; the plain codec keeps accepting
	// arbitrary traces, as WriteBinary round-trips them.
	strict   bool
	prevTime sim.Time
	prevSeq  uint64
	prevSet  bool
	lenBuf   [4]byte // reused: a stack-local would escape through io.ReadFull
	err      error
	started  bool
	done     bool
	// consumed counts the bytes of the stream covered by the magic header
	// and every fully decoded frame — the length of the longest prefix
	// that is itself a valid segment. Salvage uses it to report how many
	// bytes of a damaged segment were recovered vs dropped. For v1 the
	// granularity is one record; for v2 it is one block frame (the
	// complete-record prefix of a torn block is yielded but not counted,
	// since those bytes are not themselves a valid segment).
	consumed int64
	// v2 state: decoded-but-unserved records of the current block, the
	// reused string table, an error held back until the torn block's
	// complete-record prefix has been served, and the observed block index
	// (validated against the footer, and usable to rebuild a missing one).
	version     Format
	blockEvents []Event
	blockIdx    int
	blockStrs   []string
	pendingErr  error
	obsIndex    []BlockInfo
	recCount    int
}

// NewFileCursor opens a cursor over a .rtrc stream. The magic header is
// validated on the first Next. When r needs closing (a file), use
// Store.SessionCursors, which hands ownership to the cursor.
func NewFileCursor(r io.Reader) *FileCursor {
	return &FileCursor{br: bufio.NewReader(r)}
}

func (c *FileCursor) fail(err error) (Event, bool, error) {
	if c.name != "" {
		err = fmt.Errorf("trace: segment %s (%s): %w", c.name, c.version, err)
	}
	c.err = err
	return Event{}, false, c.err
}

// checkOrder enforces (Time, Seq) order on strict cursors.
func (c *FileCursor) checkOrder(ev *Event) error {
	if !c.strict {
		return nil
	}
	if c.prevSet && (ev.Time < c.prevTime || (ev.Time == c.prevTime && ev.Seq < c.prevSeq)) {
		return fmt.Errorf("%w: (%d, %d) after (%d, %d)",
			ErrUnordered, ev.Time, ev.Seq, c.prevTime, c.prevSeq)
	}
	c.prevTime, c.prevSeq, c.prevSet = ev.Time, ev.Seq, true
	return nil
}

// Next implements Cursor. Errors are sticky: after the first decode
// error the cursor keeps returning it.
func (c *FileCursor) Next() (Event, bool, error) {
	if c.err != nil {
		return Event{}, false, c.err
	}
	if c.done {
		return Event{}, false, nil
	}
	if !c.started {
		c.started = true
		var magic [len(binMagic)]byte
		if _, err := io.ReadFull(c.br, magic[:]); err != nil {
			return c.fail(fmt.Errorf("%w: reading magic: %w", ErrTruncated, err))
		}
		switch string(magic[:]) {
		case binMagic:
			c.version = FormatV1
		case binMagic2:
			c.version = FormatV2
		default:
			return c.fail(fmt.Errorf("%w: %q", ErrBadMagic, magic))
		}
		c.consumed = int64(len(binMagic))
	}
	if c.version == FormatV2 {
		return c.nextV2()
	}
	if _, err := io.ReadFull(c.br, c.lenBuf[:]); err != nil {
		if err == io.EOF {
			c.done = true
			return Event{}, false, nil
		}
		return c.fail(fmt.Errorf("%w: record length: %w", ErrTruncated, err))
	}
	n := binary.LittleEndian.Uint32(c.lenBuf[:])
	if n < recFixedSize || n > 1<<20 {
		return c.fail(fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n))
	}
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	buf := c.buf[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return c.fail(fmt.Errorf("%w: record body: %w", ErrTruncated, err))
	}
	// decodeRecord interns the string fields, so the record buffer can be
	// reused for the next Next.
	ev, err := decodeRecord(buf)
	if err != nil {
		return c.fail(fmt.Errorf("%w: %w", ErrCorrupt, err))
	}
	if err := c.checkOrder(&ev); err != nil {
		return c.fail(err)
	}
	c.consumed += int64(4 + n)
	return ev, true, nil
}

// nextV2 serves decoded records out of the current block, pulling the
// next frame when the block runs dry. A torn or damaged block's
// complete-record prefix is served before its error surfaces, matching
// v1's "every complete record, then the error" salvage semantics.
func (c *FileCursor) nextV2() (Event, bool, error) {
	for {
		if c.blockIdx < len(c.blockEvents) {
			ev := c.blockEvents[c.blockIdx]
			c.blockIdx++
			if err := c.checkOrder(&ev); err != nil {
				return c.fail(err)
			}
			return ev, true, nil
		}
		if c.pendingErr != nil {
			return c.fail(c.pendingErr)
		}
		tag, err := c.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				// EOF at a frame boundary with no footer seen: a crashed
				// writer. Every block already served is trustworthy, so this
				// ends the stream cleanly, like a v1 segment cut at a record
				// boundary.
				c.done = true
				return Event{}, false, nil
			}
			return c.fail(fmt.Errorf("%w: frame tag: %w", ErrTruncated, err))
		}
		switch tag {
		case frameBlock:
			if err := c.readBlock(); err != nil {
				return c.fail(err)
			}
		case frameFooter:
			if err := c.readFooter(); err != nil {
				return c.fail(err)
			}
			c.done = true
			return Event{}, false, nil
		default:
			return c.fail(fmt.Errorf("%w: unknown frame tag %#x", ErrCorrupt, tag))
		}
	}
}

// readBlock reads and decodes one block frame. Damage inside the frame
// is deferred via pendingErr so the block's complete-record prefix is
// served first; damage to the frame itself fails immediately.
func (c *FileCursor) readBlock() error {
	if _, err := io.ReadFull(c.br, c.lenBuf[:]); err != nil {
		return fmt.Errorf("%w: block length: %w", ErrTruncated, err)
	}
	n := binary.LittleEndian.Uint32(c.lenBuf[:])
	if n == 0 || n > maxBlockBody {
		return fmt.Errorf("%w: implausible block length %d", ErrCorrupt, n)
	}
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	body := c.buf[:n]
	m, rerr := io.ReadFull(c.br, body)
	if rerr != nil {
		// Torn block: decode the complete-record prefix of what did arrive,
		// serve it, then surface the truncation.
		evs, strs, _, _ := decodeBlockBody(c.blockEvents[:0], c.blockStrs[:0], body[:m])
		c.blockEvents, c.blockStrs, c.blockIdx = evs, strs, 0
		c.pendingErr = fmt.Errorf("%w: block body: %w", ErrTruncated, rerr)
		return nil
	}
	evs, strs, info, derr := decodeBlockBody(c.blockEvents[:0], c.blockStrs[:0], body)
	c.blockEvents, c.blockStrs, c.blockIdx = evs, strs, 0
	if derr != nil {
		c.pendingErr = fmt.Errorf("%w: %w", ErrBadBlock, derr)
		return nil
	}
	info.Offset = c.consumed
	info.Len = n
	c.obsIndex = append(c.obsIndex, info)
	c.recCount += info.Count
	c.consumed += int64(5 + n)
	return nil
}

// readFooter reads, validates, and cross-checks the footer index against
// the blocks actually decoded. Anything wrong past the footer tag — a
// torn footer, a trailer mismatch, an index that disagrees with the data
// — is ErrBadFooter: the records are fine, only the index is not.
func (c *FileCursor) readFooter() error {
	badf := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadFooter, fmt.Sprintf(format, args...))
	}
	if _, err := io.ReadFull(c.br, c.lenBuf[:]); err != nil {
		return badf("footer length: %v", err)
	}
	n := binary.LittleEndian.Uint32(c.lenBuf[:])
	if n > maxFooterBody {
		return badf("implausible footer length %d", n)
	}
	need := int(n) + footerTrailerLen
	if cap(c.buf) < need {
		c.buf = make([]byte, need)
	}
	buf := c.buf[:need]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return badf("footer body: %v", err)
	}
	trailer := buf[n:]
	if binary.LittleEndian.Uint32(trailer) != n || string(trailer[4:]) != footerTrailerMagic {
		return badf("trailer mismatch")
	}
	blocks, records, err := parseFooterBody(buf[:n])
	if err != nil {
		return badf("%v", err)
	}
	if len(blocks) != len(c.obsIndex) || records != c.recCount {
		return badf("index disagrees with data: %d vs %d blocks, %d vs %d records",
			len(blocks), len(c.obsIndex), records, c.recCount)
	}
	for i := range blocks {
		if blocks[i] != c.obsIndex[i] {
			return badf("index entry %d disagrees with data", i)
		}
	}
	// Nothing may follow the trailer.
	if _, err := c.br.ReadByte(); err == nil {
		return fmt.Errorf("%w: trailing bytes after footer", ErrCorrupt)
	} else if err != io.EOF {
		return fmt.Errorf("%w: after footer: %w", ErrCorrupt, err)
	}
	c.consumed += int64(5 + need)
	return nil
}

// BlockIndex returns the index entries of every complete block decoded
// so far — after a clean full read, the same entries the footer carries.
// Query paths use it to reconstruct the index of a segment whose footer
// was never written (crashed writer). The slice is owned by the cursor.
func (c *FileCursor) BlockIndex() []BlockInfo { return c.obsIndex }

// BytesConsumed reports the length of the longest stream prefix covered
// by the magic header and fully decoded records. For an undamaged
// segment read to the end this is the whole file; for a damaged one it
// marks the damage point — everything past it is what salvage drops.
func (c *FileCursor) BytesConsumed() int64 { return c.consumed }

// Err reports the first decode error, if any.
func (c *FileCursor) Err() error { return c.err }

// Close releases the underlying source when the cursor owns it.
func (c *FileCursor) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}
