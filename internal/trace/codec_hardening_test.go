package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// encodeSample returns the binary encoding of the sample trace.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &Trace{Events: sampleEvents()}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryTruncationNeverPanics cuts a valid encoding at every possible
// byte length. Any prefix must decode to an error or a prefix of the
// original events — never panic, never invent events.
func TestBinaryTruncationNeverPanics(t *testing.T) {
	full := encodeSample(t)
	want := sampleEvents()
	for cut := 0; cut < len(full); cut++ {
		got, err := ReadBinary(bytes.NewReader(full[:cut]))
		if err != nil {
			continue
		}
		if got.Len() > len(want) {
			t.Fatalf("cut %d: decoded %d events from a %d-event trace", cut, got.Len(), len(want))
		}
		for i := range got.Events {
			if got.Events[i] != want[i] {
				t.Fatalf("cut %d: event %d = %v, want %v", cut, i, got.Events[i], want[i])
			}
		}
	}
}

// TestBinaryCorruptRecords drives decodeRecord through every class of
// malformed record the length-prefix framing can deliver.
func TestBinaryCorruptRecords(t *testing.T) {
	// validBody builds one well-formed record body (everything after the
	// u32 length prefix).
	validBody := func(node, topic string) []byte {
		var buf bytes.Buffer
		ev := Event{Time: 1, Seq: 2, PID: 3, Kind: KindCreateNode, Node: node, Topic: topic}
		if err := WriteBinary(&buf, &Trace{Events: []Event{ev}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[len(binMagic)+4:]
	}

	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"kind only", []byte{byte(KindCreateNode)}},
		{"short header", validBody("n", "")[:recFixedSize-1]},
		{"invalid kind zero", append([]byte{0}, validBody("", "")[1:]...)},
		{"invalid kind high", append([]byte{200}, validBody("", "")[1:]...)},
		{"node length overruns", func() []byte {
			b := validBody("name", "")
			// nodeLen sits right after the fixed numeric header.
			binary.LittleEndian.PutUint16(b[recFixedSize-4:], 0xFFFF)
			return b
		}()},
		{"node eats topic prefix", func() []byte {
			b := validBody("name", "")
			// Claim exactly the bytes that hold the topic length prefix.
			binary.LittleEndian.PutUint16(b[recFixedSize-4:], uint16(len(b)-recFixedSize+2))
			return b
		}()},
		{"topic length overruns", func() []byte {
			b := validBody("", "topic")
			binary.LittleEndian.PutUint16(b[len(b)-len("topic")-2:], 0xFFFF)
			return b
		}()},
		{"trailing garbage", append(validBody("n", "t"), 0xDE, 0xAD)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			buf.WriteString(binMagic)
			var lenBuf [4]byte
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(tc.body)))
			buf.Write(lenBuf[:])
			buf.Write(tc.body)
			if _, err := ReadBinary(&buf); err == nil {
				t.Fatalf("malformed record accepted")
			}
		})
	}
}

// TestBinaryImplausibleLengths checks the framing-level length guard.
func TestBinaryImplausibleLengths(t *testing.T) {
	for _, n := range []uint32{0, 1, recFixedSize - 1, 1<<20 + 1, 0xFFFFFFFF} {
		var buf bytes.Buffer
		buf.WriteString(binMagic)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], n)
		buf.Write(lenBuf[:])
		if _, err := ReadBinary(&buf); err == nil {
			t.Fatalf("record length %d accepted", n)
		}
	}
}

// TestInternReturnsCanonicalStrings checks the decode paths share one
// string per distinct name.
func TestInternReturnsCanonicalStrings(t *testing.T) {
	a := InternBytes([]byte("lidar_front/points_raw"))
	b := InternBytes([]byte("lidar_front/points_raw"))
	if a != b {
		t.Fatal("intern returned unequal strings")
	}
	if InternString(a) != a {
		t.Fatal("InternString disagrees with InternBytes")
	}
	if InternBytes(nil) != "" || InternString("") != "" {
		t.Fatal("empty name must intern to the empty string")
	}
}

// TestInternStatsCounters checks the traffic counters: a repeated name
// counts one miss then hits, and an oversized name counts as capped
// (the fell-back-to-allocation bucket the drain-alloc gate attributes
// regressions to). The counters are process-global, so only deltas are
// asserted.
func TestInternStatsCounters(t *testing.T) {
	h0, m0, c0 := InternStats()
	InternBytes([]byte("stats_probe/topic_a"))
	InternBytes([]byte("stats_probe/topic_a"))
	InternBytes([]byte("stats_probe/topic_a"))
	h1, m1, c1 := InternStats()
	if m1-m0 < 1 {
		t.Fatalf("miss counter did not advance: %d -> %d", m0, m1)
	}
	if h1-h0 < 2 {
		t.Fatalf("hit counter advanced %d, want >= 2", h1-h0)
	}
	if c1 != c0 {
		t.Fatalf("capped counter advanced %d on in-bounds names", c1-c0)
	}
	long := make([]byte, internMaxLen+1)
	for i := range long {
		long[i] = 'x'
	}
	InternBytes(long)
	InternString(string(long))
	if _, _, c2 := InternStats(); c2-c1 != 2 {
		t.Fatalf("capped counter advanced %d on oversized names, want 2", c2-c1)
	}
}

// TestBinaryDecodeInternsNames checks decoded events reuse one string per
// distinct node/topic across records.
func TestBinaryDecodeInternsNames(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 8; i++ {
		tr.Append(Event{Time: sim.Time(i), Seq: uint64(i), Kind: KindDDSWrite, Topic: "recurring/topic"})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	canon := InternString("recurring/topic")
	for i, e := range got.Events {
		if e.Topic != canon {
			t.Fatalf("event %d topic not interned", i)
		}
	}
}
