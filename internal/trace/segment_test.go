package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// writeSessionSegments saves the given per-segment event slices as one
// store session and returns the store.
func writeSessionSegments(t *testing.T, session string, segs [][]Event) *Store {
	t.Helper()
	return writeSessionSegmentsFormat(t, session, segs, 0)
}

// writeSessionSegmentsFormat is writeSessionSegments with an explicit
// store format (0 = store default). Byte-surgery tests that do v1
// record-boundary arithmetic pin FormatV1.
func writeSessionSegmentsFormat(t *testing.T, session string, segs [][]Event, format Format) *Store {
	t.Helper()
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Format = format
	for i, evs := range segs {
		sw, err := st.WriteSegment(session, i)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evs {
			sw.Observe(e)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestSegmentWriterMatchesWriteBinary pins the streaming encoder to the
// batch one byte for byte: observing events one at a time must produce
// exactly the bytes WriteBinary produces for the whole trace.
func TestSegmentWriterMatchesWriteBinary(t *testing.T) {
	evs := sampleEvents()

	var batch bytes.Buffer
	if err := WriteBinary(&batch, &Trace{Events: evs}); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	sw := NewSegmentWriter(&streamed)
	for _, e := range evs {
		sw.Observe(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != len(evs) {
		t.Fatalf("Count = %d, want %d", sw.Count(), len(evs))
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Fatalf("streamed encoding differs from WriteBinary: %d vs %d bytes",
			streamed.Len(), batch.Len())
	}
}

// TestSegmentWriterStickyError checks an unencodable event stops the
// stream and surfaces from Err and Close, and that later events are not
// written.
func TestSegmentWriterStickyError(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSegmentWriter(&buf)
	sw.Observe(Event{Time: 1, Seq: 1, Kind: KindSubCBStart})
	sw.Observe(Event{Time: 2, Seq: 2, Kind: KindDDSWrite, Topic: strings.Repeat("x", 0x10000)})
	sw.Observe(Event{Time: 3, Seq: 3, Kind: KindSubCBEnd})
	if sw.Err() == nil {
		t.Fatal("oversized string field accepted")
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close did not report the encode error")
	}
	if sw.Count() != 1 {
		t.Fatalf("Count = %d after sticky error, want 1", sw.Count())
	}
}

// TestSegmentWriterObserveAfterClose checks that writing to a closed
// writer surfaces an error instead of silently buffering into a flushed
// (and possibly closed) destination.
func TestSegmentWriterObserveAfterClose(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSegmentWriter(&buf)
	sw.Observe(Event{Time: 1, Seq: 1, Kind: KindSubCBStart})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sw.Observe(Event{Time: 2, Seq: 2, Kind: KindSubCBEnd})
	if sw.Err() == nil {
		t.Fatal("Observe after Close reported no error")
	}
	if sw.Count() != 1 {
		t.Fatalf("Count = %d after closed write, want 1", sw.Count())
	}
}

// TestLoadSessionSortsUnsortedSegment preserves the historical Merge
// safety net's observable result: a trace saved out of (Time, Seq)
// order still loads as a sorted trace. The normalization now happens at
// SaveSegment time — the streaming read path merges and cannot re-sort,
// so segments are required sorted on disk.
func TestLoadSessionSortsUnsortedSegment(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	unsorted := &Trace{Events: []Event{
		{Time: 30, Seq: 3, Kind: KindSubCBEnd, PID: 1},
		{Time: 10, Seq: 1, Kind: KindSubCBStart, PID: 1},
		{Time: 20, Seq: 2, Kind: KindTakeInt, PID: 1, Topic: "t"},
	}}
	if err := st.SaveSegment("run", 0, unsorted); err != nil {
		t.Fatal(err)
	}
	tr, err := st.LoadSession("run")
	if err != nil {
		t.Fatal(err)
	}
	want := unsorted.Clone()
	want.SortByTime()
	if !reflect.DeepEqual(tr.Events, want.Events) {
		t.Fatalf("unsorted segment not re-sorted: %v", tr.Events)
	}
}

// TestStreamSessionRejectsUnsortedSegment checks the strict store
// cursors fail loudly on a segment file whose records are out of
// (Time, Seq) order — written behind the store's back, since SaveSegment
// normalizes — instead of silently feeding a misordered stream to
// Algorithm 2.
func TestStreamSessionRejectsUnsortedSegment(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(st.Dir(), "run-0000.rtrc"))
	if err != nil {
		t.Fatal(err)
	}
	unsorted := &Trace{Events: []Event{
		{Time: 30, Seq: 3, Kind: KindSubCBEnd, PID: 1},
		{Time: 10, Seq: 1, Kind: KindSubCBStart, PID: 1},
	}}
	if err := WriteBinary(f, unsorted); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var col Collector
	err = st.StreamSession("run", &col)
	if err == nil {
		t.Fatal("out-of-order segment streamed without error")
	}
	if !strings.Contains(err.Error(), "order") || !strings.Contains(err.Error(), "run-0000.rtrc") {
		t.Fatalf("unexpected error for out-of-order segment: %v", err)
	}
	// The plain codec keeps accepting the same bytes: ordering is a
	// store contract, not a codec one.
	if _, err := st.LoadSegment("run", 0); err != nil {
		t.Fatalf("ReadBinary rejected an unsorted (but well-formed) trace: %v", err)
	}
}

// drainCursor pulls a cursor dry, returning the yielded events and the
// terminating error (nil at clean EOF).
func drainCursor(c Cursor) ([]Event, error) {
	var evs []Event
	for {
		ev, ok, err := c.Next()
		if err != nil {
			return evs, err
		}
		if !ok {
			return evs, nil
		}
		evs = append(evs, ev)
	}
}

// TestFileCursorMatchesReadBinary checks the cursor yields exactly the
// events ReadBinary decodes from the same bytes.
func TestFileCursorMatchesReadBinary(t *testing.T) {
	data := encodeSample(t)
	want, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainCursor(NewFileCursor(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Events) {
		t.Fatalf("cursor events differ from ReadBinary:\n got %v\nwant %v", got, want.Events)
	}
}

// sessionEvents builds a deterministic multi-segment session: segments
// partition one globally (Time, Seq)-ordered stream round-robin with
// random run lengths, the shape successive periodic drains produce.
func sessionEvents(seed int64, nSegs, total int) [][]Event {
	rng := rand.New(rand.NewSource(seed))
	segs := make([][]Event, nSegs)
	now := int64(0)
	topics := []string{"lidar_front/points_raw", "lidar_rear/points_raw", "rq/sv3Request"}
	for i := 0; i < total; i++ {
		if rng.Intn(3) == 0 {
			now += int64(rng.Intn(40))
		}
		var ev Event
		switch i % 4 {
		case 0:
			ev = Event{Kind: KindSubCBStart, PID: uint32(100 + i%3)}
		case 1:
			ev = Event{Kind: KindTakeInt, PID: uint32(100 + i%3), CBID: uint64(i),
				Topic: topics[i%len(topics)], SrcTS: now - 5}
		case 2:
			ev = Event{Kind: KindSchedSwitch, CPU: int32(i % 4), PrevPID: uint32(100 + i%3),
				NextPID: uint32(100 + (i+1)%3), PrevPrio: 5, NextPrio: 9}
		case 3:
			ev = Event{Kind: KindSubCBEnd, PID: uint32(100 + i%3)}
		}
		ev.Time = sim.Time(now)
		ev.Seq = uint64(i + 1)
		seg := (i * nSegs) / total // contiguous runs per segment, like periodic drains
		segs[seg] = append(segs[seg], ev)
	}
	return segs
}

// TestStoreStreamSessionMatchesBatchMerge is the store-level equivalence
// pin: StreamSession into a Collector must reproduce, event for event,
// what the historical batch path produced — read every segment with
// ReadBinary, then Merge — and LoadSession (now a wrapper) must agree.
func TestStoreStreamSessionMatchesBatchMerge(t *testing.T) {
	segs := sessionEvents(7, 5, 400)
	st := writeSessionSegments(t, "run1", segs)

	// Historical batch path, reconstructed inline.
	var traces []*Trace
	for i := range segs {
		tr, err := st.LoadSegment("run1", i)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	want := Merge(traces...)

	var col Collector
	if err := st.StreamSession("run1", &col); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col.Trace.Events, want.Events) {
		t.Fatalf("StreamSession differs from batch merge: %d vs %d events",
			col.Trace.Len(), want.Len())
	}

	loaded, err := st.LoadSession("run1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Events, want.Events) {
		t.Fatal("LoadSession differs from batch merge")
	}
}

// TestStreamSessionMissing preserves the no-segments error contract.
func TestStreamSessionMissing(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var col Collector
	if err := st.StreamSession("nope", &col); err == nil {
		t.Fatal("missing session streamed")
	}
	if _, err := st.SessionCursors("nope"); err == nil {
		t.Fatal("missing session opened")
	}
}

// TestSegmentCrashRecovery simulates a SegmentWriter killed mid-write by
// truncating a finished segment at every byte boundary of its last
// record. FileCursor must yield every complete record and then either
// end cleanly (truncation at the record boundary) or fail — and no
// partial-record event may ever reach a sink.
func TestSegmentCrashRecovery(t *testing.T) {
	// A (Time, Seq)-sorted fixture, as every real drain writes: the
	// session-level assertion below must fail on the truncation, not on
	// the strict order check.
	evs := sampleEvents()
	tr := Trace{Events: evs}
	tr.SortByTime()
	evs = tr.Events
	// v1 pinned: the sweep below does v1 record-boundary arithmetic
	// (WriteBinary prefixes). TestSegmentCrashRecoveryV2 is the v2 twin.
	st := writeSessionSegmentsFormat(t, "run1", [][]Event{evs}, FormatV1)
	path := filepath.Join(st.Dir(), "run1-0000.rtrc")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Find where the last record starts: re-encode everything but the
	// last event.
	var head bytes.Buffer
	if err := WriteBinary(&head, &Trace{Events: evs[:len(evs)-1]}); err != nil {
		t.Fatal(err)
	}
	lastStart := head.Len()
	want := evs[:len(evs)-1]

	for cut := lastStart; cut < len(full); cut++ {
		got, err := drainCursor(NewFileCursor(bytes.NewReader(full[:cut])))
		if cut == lastStart {
			// Killed exactly between records: a clean, shorter segment.
			if err != nil {
				t.Fatalf("cut %d: boundary truncation rejected: %v", cut, err)
			}
		} else if err == nil {
			t.Fatalf("cut %d: mid-record truncation accepted", cut)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: recovered %d events, want the %d complete ones", cut, len(got), len(want))
		}
	}

	// The whole-session path rejects the damaged segment too, naming it.
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var col Collector
	err = st.StreamSession("run1", &col)
	if err == nil {
		t.Fatal("truncated segment streamed without error")
	}
	if !strings.Contains(err.Error(), "run1-0000.rtrc") || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error does not name the damaged segment and the truncation: %v", err)
	}
}

// TestStreamSessionPeakBuffering asserts the streaming read path's
// memory is independent of session length: allocations for a 20x larger
// session must stay within a small constant factor (they are O(segment
// cursors), not O(events)).
func TestStreamSessionPeakBuffering(t *testing.T) {
	drainAllocs := func(total int) float64 {
		st := writeSessionSegments(t, "s", sessionEvents(11, 4, total))
		var sink SinkFunc = func(Event) {}
		return testing.AllocsPerRun(5, func() {
			if err := st.StreamSession("s", sink); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := drainAllocs(150)
	large := drainAllocs(150 * 20)
	if large > small*2 {
		t.Fatalf("allocations scale with session size: %v for 150 events, %v for 3000", small, large)
	}
}
