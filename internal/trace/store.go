package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Store is the "trace database" of Fig. 2: a directory of trace segments
// grouped into sessions. Segment files are named
// <session>-<segment>.rtrc and use the binary codec.
//
// Persistence is streaming on both sides: WriteSegment returns a
// SegmentWriter sink that appends records as they are observed, and
// StreamSession k-way merges FileCursors over all segments of a session
// straight into any sink. SaveSegment and LoadSession are the batch
// wrappers over those paths.
type Store struct {
	dir string

	// Format selects the segment format the write paths (WriteSegment,
	// SaveSegment) produce; the zero value means the default, v2. Read
	// paths are always version-aware — they sniff each segment's magic —
	// so a store can hold a mix of v1 and v2 segments.
	Format Format

	// BlockRecords bounds records per v2 block (0 selects the default).
	// Smaller blocks index finer (narrow filtered reads decode less);
	// larger blocks compress better (the table and per-block index entry
	// amortize over more records).
	BlockRecords int

	// Parallelism bounds the decode workers the parallel read paths use:
	// StreamSession wraps each segment cursor in a prefetching decoder and
	// QuerySession decodes selected v2 blocks across a worker pool. 0
	// selects GOMAXPROCS; 1 selects the sequential paths. Output is
	// byte-identical at every setting — merge order is (Time, Seq) and
	// blocks decode in index order, so parallelism is invisible except in
	// wall-clock time.
	Parallelism int

	// AsyncEncode moves v2 block encoding and writing onto a background
	// goroutine per SegmentWriter (double-buffered: one block fills while
	// the previous one compresses and writes), so delta/varint encode
	// leaves the drain thread. Segment bytes are identical to the
	// synchronous path; errors still surface through the writer's sticky
	// error, at the latest at Close, which drains the encoder.
	AsyncEncode bool

	// WrapWriter, when set, wraps the file every WriteSegment opens; the
	// segment writer's bytes flow through the returned writer (the file
	// itself is still closed by Close). WrapReader does the same for every
	// segment file the read paths open. Both exist for deterministic fault
	// injection — wrapping a segment in a faultinject.Writer/Reader makes
	// disk-full, short-write, and corruption scenarios scriptable — and
	// are nil in production, where the open paths use the files directly.
	WrapWriter func(name string, f io.Writer) io.Writer
	WrapReader func(name string, f io.Reader) io.Reader
}

// NewStore opens (creating if needed) a trace database at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ResolveParallelism reports the decode-worker count the parallel read
// paths will use: Parallelism, with 0 resolved to GOMAXPROCS.
func (s *Store) ResolveParallelism() int {
	p := s.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

func (s *Store) segPath(session string, segment int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%04d.rtrc", session, segment))
}

// WriteSegment creates one segment file of a session and returns a
// SegmentWriter sink over it. Events append to disk as they are
// observed — a periodic drain can stream rings -> merge -> segment
// without ever materializing the segment — and Close finalizes the file.
func (s *Store) WriteSegment(session string, segment int) (*SegmentWriter, error) {
	path := s.segPath(session, segment)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var w io.Writer = f
	if s.WrapWriter != nil {
		w = s.WrapWriter(filepath.Base(path), f)
	}
	sw := NewSegmentWriterFormat(w, s.Format, s.BlockRecords)
	sw.c = f
	sw.path = path
	if s.AsyncEncode {
		sw.EnableAsync()
	}
	return sw, nil
}

// SaveSegment writes one trace segment for a session: the batch wrapper
// over WriteSegment. Store segments are (Time, Seq)-sorted on disk —
// the streaming read path merges, it cannot re-sort — so an unsorted
// trace is normalized here at write time (the historical LoadSession
// sorted at read time, with the same observable result).
func (s *Store) SaveSegment(session string, segment int, t *Trace) error {
	if !t.sortedByTime() {
		t = t.Clone()
		t.SortByTime()
	}
	sw, err := s.WriteSegment(session, segment)
	if err != nil {
		return err
	}
	for _, e := range t.Events {
		sw.Observe(e)
	}
	return sw.Close()
}

// LoadSegment reads one trace segment of either format through the
// version-aware streaming cursor. Decode errors name the segment file
// and the detected format version. Unlike the session read paths this
// is non-strict: a single segment loaded in isolation has no merge to
// corrupt, so arbitrary record order round-trips (as it always has
// through ReadBinary).
func (s *Store) LoadSegment(session string, segment int) (*Trace, error) {
	path := s.segPath(session, segment)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var r io.Reader = f
	if s.WrapReader != nil {
		r = s.WrapReader(filepath.Base(path), f)
	}
	fc := NewFileCursor(r)
	fc.c = f
	fc.name = filepath.Base(path)
	defer fc.Close()
	out := &Trace{}
	for {
		e, ok, err := fc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Events = append(out.Events, e)
	}
}

// Sessions lists distinct session names in the store, sorted.
func (s *Store) Sessions() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, ent := range entries {
		name := ent.Name()
		if filepath.Ext(name) != ".rtrc" {
			continue
		}
		// The session is everything before the numeric segment suffix.
		// Indexes are %04d-formatted but parsed, not sized: segment 10000
		// and beyond widen the suffix.
		base := name[:len(name)-len(".rtrc")]
		if i := strings.LastIndexByte(base, '-'); i > 0 {
			if _, ok := segmentIndex(name, base[:i]); ok {
				seen[base[:i]] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// segmentIndex parses the numeric segment index out of a segment file
// name (<session>-<index>.rtrc). ok is false for names whose suffix is
// not numeric.
func segmentIndex(name, session string) (int, bool) {
	digits := name[len(session)+1 : len(name)-len(".rtrc")]
	if digits == "" {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// segmentNames lists the segment files of a session in segment order.
// Order is by parsed numeric index, not lexicographic: zero-padding runs
// out at segment 10000 (%04d), where a filename sort would merge
// "10000" before "9999" and break tie-resolution to the earlier
// segment. Non-numeric suffixes (never produced by segPath) sort after
// all numeric ones, by name.
func (s *Store) segmentNames(session string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	prefix := session + "-"
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if filepath.Ext(name) != ".rtrc" || len(name) < len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ni, oki := segmentIndex(names[i], session)
		nj, okj := segmentIndex(names[j], session)
		switch {
		case oki && okj:
			if ni != nj {
				return ni < nj
			}
			return names[i] < names[j]
		case oki:
			return true
		case okj:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names, nil
}

// SessionCursors opens every segment of a session and returns one
// FileCursor per segment, in segment order; decode errors name the
// segment file they came from, and records out of (Time, Seq) order are
// rejected (the merge cannot re-sort them). The caller owns the cursors
// and must Close each one; StreamSession does this bookkeeping for the
// common merge-into-a-sink case. Every segment file is open at once —
// the single-pass k-way merge reads all heads simultaneously — so
// sessions are bounded by the process fd limit at roughly one fd per
// segment (a 1h run at the default 5s period is ~720).
func (s *Store) SessionCursors(session string) ([]*FileCursor, error) {
	names, err := s.segmentNames(session)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("trace: session %q has no segments", session)
	}
	curs := make([]*FileCursor, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			for _, c := range curs {
				c.Close()
			}
			return nil, err
		}
		var r io.Reader = f
		if s.WrapReader != nil {
			r = s.WrapReader(name, f)
		}
		fc := NewFileCursor(r)
		fc.c = f
		fc.name = name
		fc.strict = true
		curs = append(curs, fc)
	}
	return curs, nil
}

// StreamSession k-way merges all segments of a session into sink in
// (Time, Seq) order. Records decode one at a time off each segment file
// and the merge holds one event per segment cursor, so a session of any
// size streams into a model builder (or any other sink) at O(segments)
// peak memory. Segments must be internally (Time, Seq)-sorted — every
// tracer drain writes them so — since a stream cannot be re-sorted;
// ties across segments resolve to the earlier segment, exactly as
// LoadSession's historical Merge over materialized segments resolved
// them to the earlier input trace.
//
// With Parallelism resolved above 1 (the default: GOMAXPROCS) and more
// than one segment, each segment cursor runs behind a prefetching decode
// goroutine (PrefetchCursor), so segment decode proceeds on all segments
// concurrently while the merge consumes heads. The merge itself is
// unchanged and ties still resolve to the earlier segment, so the output
// stream is byte-identical to the sequential path.
func (s *Store) StreamSession(session string, sink Sink) error {
	curs, err := s.SessionCursors(session)
	if err != nil {
		return err
	}
	var prefetch []*PrefetchCursor
	defer func() {
		// Prefetch goroutines reference the file cursors; stop them before
		// closing the files underneath.
		for _, pc := range prefetch {
			pc.Close()
		}
		for _, c := range curs {
			c.Close()
		}
	}()
	cursors := make([]Cursor, len(curs))
	if s.ResolveParallelism() > 1 && len(curs) > 1 {
		prefetch = make([]*PrefetchCursor, len(curs))
		for i, c := range curs {
			prefetch[i] = NewPrefetchCursor(c)
			cursors[i] = prefetch[i]
		}
	} else {
		for i, c := range curs {
			cursors[i] = c
		}
	}
	return NewMergeStream(cursors...).Run(sink)
}

// LoadSession merges all segments of a session into one sorted trace:
// the Collector wrapper over StreamSession. Sortedness is guaranteed at
// write time (SaveSegment normalizes, drains emit in order) and
// validated at read time by the strict cursors, so the result needs no
// re-sort — an out-of-order segment file fails loudly instead.
func (s *Store) LoadSession(session string) (*Trace, error) {
	var col Collector
	if err := s.StreamSession(session, &col); err != nil {
		return nil, err
	}
	return &col.Trace, nil
}
