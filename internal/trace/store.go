package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store is the "trace database" of Fig. 2: a directory of trace segments
// grouped into sessions. Segment files are named
// <session>-<segment>.rtrc and use the binary codec.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a trace database at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) segPath(session string, segment int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%04d.rtrc", session, segment))
}

// SaveSegment writes one trace segment for a session.
func (s *Store) SaveSegment(session string, segment int, t *Trace) error {
	f, err := os.Create(s.segPath(session, segment))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteBinary(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadSegment reads one trace segment.
func (s *Store) LoadSegment(session string, segment int) (*Trace, error) {
	f, err := os.Open(s.segPath(session, segment))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Sessions lists distinct session names in the store, sorted.
func (s *Store) Sessions() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, ent := range entries {
		name := ent.Name()
		if filepath.Ext(name) != ".rtrc" {
			continue
		}
		base := name[:len(name)-len(".rtrc")]
		if len(base) > 5 && base[len(base)-5] == '-' {
			seen[base[:len(base)-5]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// LoadSession merges all segments of a session into one sorted trace.
func (s *Store) LoadSession(session string) (*Trace, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var traces []*Trace
	prefix := session + "-"
	for _, ent := range entries {
		name := ent.Name()
		if filepath.Ext(name) != ".rtrc" || len(name) < len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			return nil, err
		}
		t, err := ReadBinary(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace: segment %s: %w", name, err)
		}
		traces = append(traces, t)
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: session %q has no segments", session)
	}
	return Merge(traces...), nil
}
