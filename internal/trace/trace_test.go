package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/tracesynth/rostracer/internal/sim"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 10, Seq: 1, PID: 100, Kind: KindCreateNode, Node: "filter_front"},
		{Time: 20, Seq: 2, PID: 100, Kind: KindSubCBStart},
		{Time: 20, Seq: 3, PID: 100, Kind: KindTakeInt, CBID: 0xA0, Topic: "lidar_front/points_raw", SrcTS: 15},
		{Time: 25, Seq: 4, PID: 100, Kind: KindDDSWrite, Topic: "lidar_front/points_filtered", SrcTS: 25},
		{Time: 25, Seq: 5, PID: 100, Kind: KindSubCBEnd},
		{Time: 22, Seq: 6, Kind: KindSchedSwitch, CPU: 1, PrevPID: 100, NextPID: 200, PrevPrio: 5, NextPrio: 9, PrevState: 0},
		{Time: 30, Seq: 7, PID: 200, Kind: KindTakeTypeErased, Ret: 1},
	}
}

func TestSortByTimeUsesSeqTiebreak(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 20, Seq: 3, Kind: KindTakeInt},
		{Time: 20, Seq: 2, Kind: KindSubCBStart},
		{Time: 10, Seq: 9, Kind: KindCreateNode},
	}}
	tr.SortByTime()
	if tr.Events[0].Kind != KindCreateNode || tr.Events[1].Kind != KindSubCBStart || tr.Events[2].Kind != KindTakeInt {
		t.Fatalf("order wrong: %v", tr.Events)
	}
}

func TestFilterPIDIncludesSchedMentions(t *testing.T) {
	tr := &Trace{Events: sampleEvents()}
	got := tr.FilterPID(200)
	// PID 200 events: the sched switch mentioning 200 and the P14 event.
	if len(got.Events) != 2 {
		t.Fatalf("filtered %d events, want 2: %v", len(got.Events), got.Events)
	}
}

func TestROSAndSchedSplit(t *testing.T) {
	tr := &Trace{Events: sampleEvents()}
	if n := tr.ROSEvents().Len(); n != 6 {
		t.Errorf("ros events = %d, want 6", n)
	}
	if n := tr.SchedEvents().Len(); n != 1 {
		t.Errorf("sched events = %d, want 1", n)
	}
}

func TestPIDsAndNodes(t *testing.T) {
	tr := &Trace{Events: sampleEvents()}
	if got := tr.PIDs(); !reflect.DeepEqual(got, []uint32{100, 200}) {
		t.Errorf("PIDs = %v", got)
	}
	nodes := tr.Nodes()
	if nodes["filter_front"] != 100 {
		t.Errorf("nodes = %v", nodes)
	}
}

func TestMergeSorts(t *testing.T) {
	a := &Trace{Events: []Event{{Time: 30, Seq: 1, Kind: KindSubCBEnd}}}
	b := &Trace{Events: []Event{{Time: 10, Seq: 2, Kind: KindSubCBStart}}}
	m := Merge(a, b, nil)
	if m.Len() != 2 || m.Events[0].Time != 10 {
		t.Fatalf("merge = %v", m.Events)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := &Trace{Events: sampleEvents()}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got.Events, tr.Events)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := &Trace{Events: sampleEvents()}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch: %v != %v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(timeNs int64, seq uint64, pid uint32, kind8 uint8, cbid uint64, topic string, srcts int64) bool {
		kind := Kind(kind8%uint8(numKinds-1)) + 1
		if len(topic) > 1000 {
			topic = topic[:1000]
		}
		ev := Event{Time: sim.Time(timeNs), Seq: seq, PID: pid, Kind: kind,
			CBID: cbid, Topic: topic, SrcTS: srcts}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, &Trace{Events: []Event{ev}}); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && len(got.Events) == 1 && got.Events[0] == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSessions(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg1 := &Trace{Events: []Event{{Time: 1, Seq: 1, Kind: KindSubCBStart, PID: 1}}}
	seg2 := &Trace{Events: []Event{{Time: 5, Seq: 2, Kind: KindSubCBEnd, PID: 1}}}
	if err := st.SaveSegment("run1", 0, seg1); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSegment("run1", 1, seg2); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSegment("run2", 0, seg1); err != nil {
		t.Fatal(err)
	}

	sessions, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sessions, []string{"run1", "run2"}) {
		t.Fatalf("sessions = %v", sessions)
	}

	merged, err := st.LoadSession("run1")
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 2 || merged.Events[0].Time != 1 || merged.Events[1].Time != 5 {
		t.Fatalf("merged session = %v", merged.Events)
	}

	if _, err := st.LoadSession("nope"); err == nil {
		t.Fatal("missing session loaded")
	}
}

func TestTimeSpan(t *testing.T) {
	tr := &Trace{Events: sampleEvents()}
	first, last := tr.TimeSpan()
	if first != 10 || last != 30 {
		t.Fatalf("span = [%v, %v]", first, last)
	}
	empty := &Trace{}
	if f, l := empty.TimeSpan(); f != 0 || l != 0 {
		t.Fatal("empty span not zero")
	}
}

func TestKindPredicates(t *testing.T) {
	starts := []Kind{KindTimerCBStart, KindSubCBStart, KindServiceCBStart, KindClientCBStart}
	ends := []Kind{KindTimerCBEnd, KindSubCBEnd, KindServiceCBEnd, KindClientCBEnd}
	takes := []Kind{KindTakeInt, KindTakeRequest, KindTakeResponse}
	for _, k := range starts {
		if !k.IsCBStart() || k.IsCBEnd() || k.IsTake() {
			t.Errorf("%v predicates wrong", k)
		}
	}
	for _, k := range ends {
		if !k.IsCBEnd() || k.IsCBStart() {
			t.Errorf("%v predicates wrong", k)
		}
	}
	for _, k := range takes {
		if !k.IsTake() {
			t.Errorf("%v predicates wrong", k)
		}
	}
	if KindSchedSwitch.IsCBStart() || KindSchedSwitch.IsCBEnd() || KindSchedSwitch.IsTake() {
		t.Error("sched switch predicates wrong")
	}
}
