package trace

import "io"

// Per-sink fault isolation: MultiSink fans a stream out blindly, so one
// sink with a sticky error (a JSONL file on a full disk, say) either
// goes unnoticed or — if the caller polls it — kills the whole drain,
// trace store included. IsolatingMultiSink watches each fallible sink's
// sticky error after every delivery and detaches the sink on the first
// one: the stream keeps flowing to the healthy sinks, and the detachment
// (with its cause and how many events the sink got) is reported at the
// end instead of aborting the session.
//
// Detaching is also a lifecycle event: a buffered sink that failed mid-
// stream still holds every event encoded before the failure, so the
// fan-out flush-closes a sink at the moment it detaches rather than
// silently dropping that output, and Close flush-closes whatever is
// still attached when the session ends.

// ErrSink is a Sink with a sticky first-error, the contract
// SegmentWriter and JSONLSink already follow. Sinks that cannot fail
// (counters, model builders) simply don't implement it and are never
// detached.
type ErrSink interface {
	Sink
	Err() error
}

// Detachment records one sink removed from an IsolatingMultiSink —
// either mid-stream on a sticky error, or at Close when the sink's
// flush-close failed.
type Detachment struct {
	Name string
	// Events counts the events successfully delivered to the sink. The
	// delivery that tripped a sticky error is not included: the sink
	// never durably absorbed it.
	Events int
	Err    error
	// CloseErr is the outcome of flush-closing the sink as it detached
	// (nil for sinks with no Close or Flush, and for clean flush-closes).
	CloseErr error
}

// isoSink is one attached sink with its detachment bookkeeping.
type isoSink struct {
	name string
	sink Sink
	es   ErrSink // non-nil iff the sink is fallible
	n    int
}

// IsolatingMultiSink fans one stream out to named sinks, detaching any
// fallible sink whose sticky error trips instead of propagating the
// failure into the drain.
type IsolatingMultiSink struct {
	sinks    []isoSink
	detached []Detachment
	closed   bool
	closeErr error
}

// NewIsolatingMultiSink creates an empty fan-out; attach sinks with Add.
func NewIsolatingMultiSink() *IsolatingMultiSink {
	return &IsolatingMultiSink{}
}

// Add attaches a named sink. Nil sinks are ignored, so optional sinks
// can be passed directly.
func (m *IsolatingMultiSink) Add(name string, s Sink) {
	if s == nil {
		return
	}
	is := isoSink{name: name, sink: s}
	if es, ok := s.(ErrSink); ok {
		is.es = es
	}
	m.sinks = append(m.sinks, is)
}

// flushClose releases a sink's buffered output: Close when the sink
// owns a resource, Flush otherwise, nothing for unbuffered sinks.
// Note the service-layer session writer matches neither — its Close
// returns a result struct, not an error — and is closed by its owner,
// exactly as intended: the fan-out only closes what it can fully
// release.
func flushClose(s Sink) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	if f, ok := s.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// detach removes sink i, flush-closing it so buffered output written
// before the failure still reaches its destination.
func (m *IsolatingMultiSink) detach(i int, events int, err error) {
	s := m.sinks[i]
	m.detached = append(m.detached, Detachment{
		Name:     s.name,
		Events:   events,
		Err:      err,
		CloseErr: flushClose(s.sink),
	})
	m.sinks = append(m.sinks[:i], m.sinks[i+1:]...)
}

// Observe implements Sink: deliver to every live sink, then detach the
// ones whose sticky error tripped. The error poll is one interface call
// reading a struct field — noise next to the delivery itself.
func (m *IsolatingMultiSink) Observe(e Event) {
	if m.closed {
		return
	}
	for i := 0; i < len(m.sinks); i++ {
		s := &m.sinks[i]
		s.sink.Observe(e)
		s.n++
		if s.es != nil && s.es.Err() != nil {
			// The delivery that tripped the sticky error did not land:
			// only the n-1 before it were successfully delivered.
			m.detach(i, s.n-1, s.es.Err())
			i--
		}
	}
}

// Close flush-closes every still-attached sink and detaches the whole
// fan-out. A sink whose flush-close fails is recorded as a Detachment
// (with its full delivered count — the failure is in releasing the
// sink, not in a delivery). Close is idempotent and Observe after Close
// is a no-op; the first failure is returned (and re-returned on
// repeated Close).
func (m *IsolatingMultiSink) Close() error {
	if m.closed {
		return m.closeErr
	}
	m.closed = true
	for _, s := range m.sinks {
		if err := flushClose(s.sink); err != nil {
			m.detached = append(m.detached, Detachment{Name: s.name, Events: s.n, Err: err})
			if m.closeErr == nil {
				m.closeErr = err
			}
		}
	}
	m.sinks = nil
	return m.closeErr
}

// Live reports how many sinks are still attached.
func (m *IsolatingMultiSink) Live() int { return len(m.sinks) }

// Detached reports the sinks removed so far, in detachment order.
func (m *IsolatingMultiSink) Detached() []Detachment { return m.detached }
