package trace

// Per-sink fault isolation: MultiSink fans a stream out blindly, so one
// sink with a sticky error (a JSONL file on a full disk, say) either
// goes unnoticed or — if the caller polls it — kills the whole drain,
// trace store included. IsolatingMultiSink watches each fallible sink's
// sticky error after every delivery and detaches the sink on the first
// one: the stream keeps flowing to the healthy sinks, and the detachment
// (with its cause and how many events the sink got) is reported at the
// end instead of aborting the session.

// ErrSink is a Sink with a sticky first-error, the contract
// SegmentWriter and JSONLSink already follow. Sinks that cannot fail
// (counters, model builders) simply don't implement it and are never
// detached.
type ErrSink interface {
	Sink
	Err() error
}

// Detachment records one sink removed from an IsolatingMultiSink.
type Detachment struct {
	Name   string
	Events int // events delivered before the sink failed
	Err    error
}

// isoSink is one attached sink with its detachment bookkeeping.
type isoSink struct {
	name string
	sink Sink
	es   ErrSink // non-nil iff the sink is fallible
	n    int
}

// IsolatingMultiSink fans one stream out to named sinks, detaching any
// fallible sink whose sticky error trips instead of propagating the
// failure into the drain.
type IsolatingMultiSink struct {
	sinks    []isoSink
	detached []Detachment
}

// NewIsolatingMultiSink creates an empty fan-out; attach sinks with Add.
func NewIsolatingMultiSink() *IsolatingMultiSink {
	return &IsolatingMultiSink{}
}

// Add attaches a named sink. Nil sinks are ignored, so optional sinks
// can be passed directly.
func (m *IsolatingMultiSink) Add(name string, s Sink) {
	if s == nil {
		return
	}
	is := isoSink{name: name, sink: s}
	if es, ok := s.(ErrSink); ok {
		is.es = es
	}
	m.sinks = append(m.sinks, is)
}

// Observe implements Sink: deliver to every live sink, then detach the
// ones whose sticky error tripped. The error poll is one interface call
// reading a struct field — noise next to the delivery itself.
func (m *IsolatingMultiSink) Observe(e Event) {
	for i := 0; i < len(m.sinks); i++ {
		s := &m.sinks[i]
		s.sink.Observe(e)
		s.n++
		if s.es != nil && s.es.Err() != nil {
			m.detached = append(m.detached, Detachment{Name: s.name, Events: s.n, Err: s.es.Err()})
			m.sinks = append(m.sinks[:i], m.sinks[i+1:]...)
			i--
		}
	}
}

// Live reports how many sinks are still attached.
func (m *IsolatingMultiSink) Live() int { return len(m.sinks) }

// Detached reports the sinks removed so far, in detachment order.
func (m *IsolatingMultiSink) Detached() []Detachment { return m.detached }
