package analysis_test

import (
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/analysis"
	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func traceApp(t *testing.T, seed uint64, cpus int, build func(*rclcpp.World), dur sim.Duration) *trace.Trace {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	build(w)
	w.Run(dur)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestChainsOfAVP(t *testing.T) {
	tr := traceApp(t, 1, 8, func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, 20*sim.Second)
	d := core.Synthesize(tr)
	chains := analysis.Chains(d, 0)
	// Two chains (rear and front), both converging through the AND
	// junction to the localizer.
	if len(chains) != 2 {
		t.Fatalf("chains = %d: %v", len(chains), chains)
	}
	for _, c := range chains {
		if len(c.Keys) != 5 { // filter -> sync -> AND -> voxel -> localizer
			t.Errorf("chain length %d: %s", len(c.Keys), c)
		}
		last := d.Vertices[c.Keys[len(c.Keys)-1]]
		if last.Node != apps.NodeLocalizer {
			t.Errorf("chain does not end at localizer: %s", c)
		}
	}
}

func TestChainLatenciesAVPFrontChain(t *testing.T) {
	tr := traceApp(t, 2, 8, func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, 20*sim.Second)
	m := core.ExtractModel(tr)
	stats, dropped := analysis.ChainLatencies(m, []string{
		apps.TopicFrontRaw, apps.TopicFrontFiltered, apps.TopicFused,
		apps.TopicDownsampled,
	})
	if stats.Count < 100 {
		t.Fatalf("only %d complete flows (dropped %d)", stats.Count, dropped)
	}
	// Sanity: latency at least the front filter ET plus downstream costs,
	// and bounded by a few sensor periods.
	if stats.Min < 25*sim.Millisecond {
		t.Errorf("min latency %v implausibly small", stats.Min)
	}
	if stats.Max > 500*sim.Millisecond {
		t.Errorf("max latency %v implausibly large", stats.Max)
	}
	if !(stats.Min <= stats.Mean && stats.Mean <= stats.Max) {
		t.Errorf("stats ordering broken: %+v", stats)
	}
}

func TestLoadsReportAVPFrontFilterShare(t *testing.T) {
	span := 30 * sim.Second
	tr := traceApp(t, 3, 8, func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, span)
	d := core.Synthesize(tr)
	loads := analysis.Loads(d, span)
	if len(loads) == 0 {
		t.Fatal("no loads")
	}
	// The heaviest callback is the front filter at ~27% (Table II: 27 ms
	// at 10 Hz).
	top := loads[0]
	if !strings.Contains(top.Key, apps.NodeFilterFront) {
		t.Fatalf("heaviest callback is %s", top.Key)
	}
	if top.Utilization < 0.22 || top.Utilization > 0.32 {
		t.Fatalf("front filter load = %.3f, want ~0.27", top.Utilization)
	}
	if top.RateHz < 9 || top.RateHz > 11 {
		t.Fatalf("front filter rate = %.2f Hz", top.RateHz)
	}

	nl := analysis.NodeLoads(loads)
	b := analysis.GreedyBinding(nl, 2)
	if b.MaxLoad >= sumLoads(nl) {
		t.Fatal("binding did not spread load at all")
	}
	if len(b.CPUOf) != len(nl) {
		t.Fatal("binding missing nodes")
	}
	// LPT onto 2 CPUs must be no worse than 4/3 OPT >= half the total.
	if b.MaxLoad < sumLoads(nl)/2 {
		t.Fatalf("max load %.3f below theoretical minimum %.3f", b.MaxLoad, sumLoads(nl)/2)
	}
}

func sumLoads(nl map[string]float64) float64 {
	s := 0.0
	for _, v := range nl {
		s += v
	}
	return s
}

func TestChainWCETBound(t *testing.T) {
	tr := traceApp(t, 4, 8, func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }, 10*sim.Second)
	d := core.Synthesize(tr)
	chains := analysis.Chains(d, 0)
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	for _, c := range chains {
		bound := analysis.ChainWCETBound(d, c)
		// The bound must dominate the sum of chain WCETs.
		var sumWCET sim.Duration
		for _, k := range c.Keys {
			sumWCET += d.Vertices[k].Stats.WCET()
		}
		if bound < sumWCET {
			t.Fatalf("bound %v < chain WCET sum %v", bound, sumWCET)
		}
	}
}

// TestServiceSplittingAvoidsSpuriousChains is the E8 ablation: the naive
// single-vertex service model must create chains that do not exist, and
// the paper's split model must not.
func TestServiceSplittingAvoidsSpuriousChains(t *testing.T) {
	tr := traceApp(t, 5, 8, func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }, 10*sim.Second)
	m := core.ExtractModel(tr)
	proper := core.BuildDAG(m)
	naive := core.BuildDAGNaive(m)

	nSpurious, spurious := analysis.SpuriousChains(proper, naive)
	if nSpurious == 0 {
		t.Fatal("naive service model produced no spurious chains; ablation broken")
	}
	// The paper's concrete example: a chain passing from SC3's side of
	// sv3 to CL4 (node3's client) — crossing callers.
	foundCross := false
	for _, c := range spurious {
		s := c.String()
		if strings.Contains(s, "syn_node5|sub") && strings.Contains(s, "syn_node3|client|rr/sv3Reply") {
			foundCross = true
		}
	}
	if !foundCross {
		t.Errorf("expected the SC3->SV3->CL4-style crossing among spurious chains: %v", spurious)
	}
	// And the proper model has none of the naive-only chains.
	if n, _ := analysis.SpuriousChains(naive, proper); n != 0 {
		// Chains present in proper but not naive are fine (finer splits),
		// so this direction can be non-zero; no assertion. Kept for
		// documentation.
		_ = n
	}
}

func TestChainsRespectsMax(t *testing.T) {
	tr := traceApp(t, 6, 8, func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }, 5*sim.Second)
	d := core.Synthesize(tr)
	all := analysis.Chains(d, 0)
	if len(all) < 3 {
		t.Fatalf("SYN chains = %d", len(all))
	}
	capped := analysis.Chains(d, 2)
	if len(capped) != 2 {
		t.Fatalf("capped chains = %d", len(capped))
	}
}

// TestWaitingTimes exercises the Sec. VII extension: under contention a
// callback's start lags the executor's wakeup, and the lag is measured
// from sched_wakeup events.
func TestWaitingTimes(t *testing.T) {
	tr := traceApp(t, 7, 1, func(w *rclcpp.World) {
		// One CPU: the low-priority victim's executor is woken by sensor
		// data (delivered by the DDS transport, no CPU needed) while the
		// high-priority hog occupies the core, so the callback start lags
		// the wakeup by several milliseconds.
		victim := w.NewNode("victim", 2, 0)
		victim.CreateSubscription("/work", rclcpp.SimpleBody{ET: sim.Constant{Value: sim.Millisecond}})
		hog := w.NewNode("hog", 9, 0)
		hog.CreateTimer(10*sim.Millisecond, 0, rclcpp.SimpleBody{ET: sim.Constant{Value: 6 * sim.Millisecond}})
		apps.SpawnSensor(w, "/work", 10*sim.Millisecond, 2*sim.Millisecond)
	}, 2*sim.Second)

	m := core.ExtractModel(tr)
	waits := analysis.WaitingTimes(m, tr.SchedEvents().Events)
	key := "victim/subscriber(/work)"
	st, ok := waits[key]
	if !ok {
		t.Fatalf("no waiting stats for %q; have %v", key, keysOf(waits))
	}
	if st.Count < 100 {
		t.Fatalf("instances = %d", st.Count)
	}
	// The hog runs ~6ms from each 10ms boundary; work arrives ~2.1ms in,
	// so the victim typically waits several milliseconds.
	if st.Max < 2*sim.Millisecond {
		t.Errorf("max wait %v implausibly small under contention", st.Max)
	}
	if st.Mean <= 0 {
		t.Errorf("mean wait %v", st.Mean)
	}
}

func keysOf(m map[string]analysis.WaitStats) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
