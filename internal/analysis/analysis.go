// Package analysis contains downstream consumers of the synthesized
// timing model, demonstrating the paper's claim that the generated DAG
// "can serve as an input for analysis and optimization": computation-chain
// enumeration, measured end-to-end latency over chains (via the source
// timestamps logged on publisher and subscriber sides, Sec. VII),
// processor-load computation and greedy core-binding optimization
// (Sec. VI), and a simple chain response-time bound in the spirit of the
// single-threaded-executor analyses the paper cites.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// Chain is one computation chain: a source-to-sink vertex path.
type Chain struct {
	Keys []string
}

func (c Chain) String() string { return strings.Join(c.Keys, " -> ") }

// Chains enumerates all source-to-sink paths of the DAG (bounded by max;
// 0 means no bound). Sources are vertices without in-edges, sinks without
// out-edges.
func Chains(d *core.DAG, max int) []Chain {
	succ := make(map[string][]string)
	hasIn := make(map[string]bool)
	for _, e := range d.Edges() {
		succ[e.From] = append(succ[e.From], e.To)
		hasIn[e.To] = true
	}
	var out []Chain
	var dfs func(path []string)
	dfs = func(path []string) {
		if max > 0 && len(out) >= max {
			return
		}
		last := path[len(path)-1]
		next := succ[last]
		if len(next) == 0 {
			cp := make([]string, len(path))
			copy(cp, path)
			out = append(out, Chain{Keys: cp})
			return
		}
		for _, n := range next {
			// The synthesized model is a DAG, but guard against cycles in
			// hand-built inputs.
			looped := false
			for _, p := range path {
				if p == n {
					looped = true
					break
				}
			}
			if !looped {
				dfs(append(path, n))
			}
		}
	}
	for _, k := range d.VertexKeys() {
		if !hasIn[k] {
			dfs([]string{k})
		}
	}
	return out
}

// LatencyStats summarizes measured end-to-end latencies of a chain.
type LatencyStats struct {
	Count int
	Min   sim.Duration
	Max   sim.Duration
	Mean  sim.Duration
}

// ChainLatencies measures end-to-end latency along a sequence of topics by
// following source timestamps through callback instances: a sample
// published on topics[0] at source time s flows to the instance that took
// (topics[0], s), whose write on topics[1] flows onward, and so on; the
// latency of one flow is the completion time of the final instance minus
// the initial source timestamp.
//
// Flows that die (e.g. a synchronization callback that was not the
// completing arrival, or a sample still in flight at trace end) are
// skipped and counted in dropped.
func ChainLatencies(m *core.Model, topics []string) (LatencyStats, int) {
	if len(topics) < 2 {
		return LatencyStats{}, 0
	}
	type key struct {
		topic string
		srcTS int64
	}
	// Index instances by what they took.
	taken := make(map[key]*core.Instance)
	for _, cb := range m.Callbacks {
		for i := range cb.Instances {
			inst := &cb.Instances[i]
			if inst.TakeTopic != "" {
				taken[key{inst.TakeTopic, inst.TakeSrcTS}] = inst
			}
		}
	}
	// Collect initial source timestamps: every write observed on
	// topics[0] (from modeled callbacks) plus takes of topics[0] whose
	// writer was external (not modeled).
	initial := make(map[int64]bool)
	for _, cb := range m.Callbacks {
		for _, inst := range cb.Instances {
			for _, w := range inst.Writes {
				if w.Topic == topics[0] {
					initial[w.SrcTS] = true
				}
			}
			if inst.TakeTopic == topics[0] {
				initial[inst.TakeSrcTS] = true
			}
		}
	}

	var stats LatencyStats
	dropped := 0
	var sum sim.Duration
	srcs := make([]int64, 0, len(initial))
	for s := range initial {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })

	for _, s0 := range srcs {
		srcTS := s0
		var final *core.Instance
		ok := true
		for hop := 0; hop < len(topics); hop++ {
			inst, found := taken[key{topics[hop], srcTS}]
			if !found {
				ok = false
				break
			}
			final = inst
			if hop == len(topics)-1 {
				break
			}
			// Find this instance's write on the next topic.
			next, found := writeOn(inst, topics[hop+1])
			if !found {
				ok = false
				break
			}
			srcTS = next
		}
		if !ok || final == nil {
			dropped++
			continue
		}
		lat := final.End.Sub(sim.Time(s0))
		if stats.Count == 0 || lat < stats.Min {
			stats.Min = lat
		}
		if stats.Count == 0 || lat > stats.Max {
			stats.Max = lat
		}
		stats.Count++
		sum += lat
	}
	if stats.Count > 0 {
		stats.Mean = sum / sim.Duration(stats.Count)
	}
	return stats, dropped
}

func writeOn(inst *core.Instance, topic string) (int64, bool) {
	for _, w := range inst.Writes {
		if w.Topic == topic {
			return w.SrcTS, true
		}
	}
	return 0, false
}

// VertexLoad is one row of the processor-load report.
type VertexLoad struct {
	Key         string
	Node        string
	RateHz      float64
	ACET        sim.Duration
	Utilization float64 // ACET x rate
}

// Loads computes per-callback processor load over the observation span
// (the paper: cb2 averages 27% of a core at 10 Hz). span is the traced
// duration the instance counts were collected over.
func Loads(d *core.DAG, span sim.Duration) []VertexLoad {
	var out []VertexLoad
	if span <= 0 {
		return out
	}
	for _, k := range d.VertexKeys() {
		v := d.Vertices[k]
		if v.IsAnd || v.Stats.Count == 0 {
			continue
		}
		rate := float64(v.Stats.Count) / span.Seconds()
		util := rate * v.Stats.ACET().Seconds()
		out = append(out, VertexLoad{Key: k, Node: v.Node, RateHz: rate, ACET: v.Stats.ACET(), Utilization: util})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Utilization > out[j].Utilization })
	return out
}

// NodeLoads aggregates loads per node (one executor thread each).
func NodeLoads(loads []VertexLoad) map[string]float64 {
	out := make(map[string]float64)
	for _, l := range loads {
		out[l.Node] += l.Utilization
	}
	return out
}

// Binding assigns nodes to CPUs.
type Binding struct {
	CPUOf   map[string]int
	PerCPU  []float64
	MaxLoad float64
}

// GreedyBinding packs node loads onto numCPUs cores, assigning the
// heaviest node to the least-loaded core first (LPT) — the load-balancing
// use-case of Sec. VI.
func GreedyBinding(nodeLoads map[string]float64, numCPUs int) Binding {
	if numCPUs < 1 {
		numCPUs = 1
	}
	type nl struct {
		node string
		load float64
	}
	var list []nl
	for n, l := range nodeLoads {
		list = append(list, nl{n, l})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].load != list[j].load {
			return list[i].load > list[j].load
		}
		return list[i].node < list[j].node
	})
	b := Binding{CPUOf: make(map[string]int), PerCPU: make([]float64, numCPUs)}
	for _, x := range list {
		best := 0
		for c := 1; c < numCPUs; c++ {
			if b.PerCPU[c] < b.PerCPU[best] {
				best = c
			}
		}
		b.CPUOf[x.node] = best
		b.PerCPU[best] += x.load
	}
	for _, l := range b.PerCPU {
		if l > b.MaxLoad {
			b.MaxLoad = l
		}
	}
	return b
}

// ChainWCETBound computes a simple end-to-end response-time bound for a
// chain under single-threaded executors: each vertex may have to wait for
// every other callback of its node to finish once (non-preemptive
// executor round) before running for its own WCET. AND junctions
// contribute zero. This is deliberately the coarsest of the analyses the
// model supports; it demonstrates that the DAG carries all quantities
// such analyses need.
func ChainWCETBound(d *core.DAG, c Chain) sim.Duration {
	// Per-node WCET sums.
	nodeSum := make(map[string]sim.Duration)
	for _, k := range d.VertexKeys() {
		v := d.Vertices[k]
		nodeSum[v.Node] += v.Stats.WCET()
	}
	var bound sim.Duration
	for _, k := range c.Keys {
		v := d.Vertices[k]
		if v == nil {
			continue
		}
		if v.IsAnd {
			continue
		}
		// Own WCET + one round of the sibling callbacks.
		bound += nodeSum[v.Node]
	}
	return bound
}

// SpuriousChains quantifies the modeling error the paper's per-caller
// service splitting avoids: it counts the chains of the naive model
// (one vertex per service) that do not correspond to any chain of the
// properly split model — e.g. SC3 -> SV3 -> CL4 in the paper's example.
func SpuriousChains(proper, naive *core.DAG) (int, []Chain) {
	properSet := make(map[string]bool)
	for _, c := range Chains(proper, 0) {
		properSet[nodeTrace(proper, c)] = true
	}
	var spurious []Chain
	for _, c := range Chains(naive, 0) {
		if !properSet[nodeTrace(naive, c)] {
			spurious = append(spurious, c)
		}
	}
	return len(spurious), spurious
}

// nodeTrace renders a chain as a node/type sequence so chains from DAGs
// with different vertex keys compare meaningfully.
func nodeTrace(d *core.DAG, c Chain) string {
	var parts []string
	for _, k := range c.Keys {
		v := d.Vertices[k]
		if v == nil {
			parts = append(parts, k)
			continue
		}
		if v.IsAnd {
			parts = append(parts, v.Node+"/&")
			continue
		}
		in := ""
		if len(v.InTopics) > 0 {
			in = v.InTopics[0]
		}
		parts = append(parts, fmt.Sprintf("%s/%s(%s)", v.Node, v.Type, in))
	}
	return strings.Join(parts, ">")
}

// WaitStats summarizes callback waiting times: the delay between the
// executor thread's wake-up (new data or timer expiry) and the callback's
// start — the Sec. VII extension enabled by tracing sched_wakeup.
type WaitStats struct {
	Count int
	Min   sim.Duration
	Max   sim.Duration
	Mean  sim.Duration
}

// WaitingTimes computes per-callback waiting-time statistics from a model
// and the scheduler events of its trace. For each instance, the waiting
// time is instance.Start minus the latest wakeup of the executor's PID at
// or before the start (and after the previous instance's end, so backlog
// processing without an intervening sleep counts as zero wait).
func WaitingTimes(m *core.Model, schedEvents []trace.Event) map[string]WaitStats {
	// Wakeups per PID, time-sorted.
	wake := make(map[uint32][]sim.Time)
	for _, e := range schedEvents {
		if e.Kind == trace.KindSchedWakeup {
			wake[e.NextPID] = append(wake[e.NextPID], e.Time)
		}
	}
	for pid := range wake {
		sort.Slice(wake[pid], func(i, j int) bool { return wake[pid][i] < wake[pid][j] })
	}

	out := make(map[string]WaitStats)
	for _, cb := range m.Callbacks {
		ws := wake[cb.PID]
		var st WaitStats
		var sum sim.Duration
		var prevEnd sim.Time
		for _, inst := range cb.Instances {
			// Latest wakeup <= start.
			i := sort.Search(len(ws), func(i int) bool { return ws[i] > inst.Start })
			var wait sim.Duration
			if i > 0 && ws[i-1] > prevEnd {
				wait = inst.Start.Sub(ws[i-1])
			}
			if st.Count == 0 || wait < st.Min {
				st.Min = wait
			}
			if wait > st.Max {
				st.Max = wait
			}
			st.Count++
			sum += wait
			prevEnd = inst.End
		}
		if st.Count > 0 {
			st.Mean = sum / sim.Duration(st.Count)
		}
		key := fmt.Sprintf("%s/%s(%s)", cb.Node, cb.Type, cb.InTopic)
		out[key] = st
	}
	return out
}
