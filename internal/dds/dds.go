// Package dds simulates the Data Distribution Service layer (the paper
// uses Eclipse Cyclone DDS) that carries every ROS2 communication: topic
// publications, service requests, and service responses.
//
// The layer's observable protocol is what matters for timing-model
// synthesis: dds_write_impl assigns the sample's source timestamp and is
// probed as P16; delivery to readers happens after a (configurable,
// seeded-random) transport latency; every reader of a topic receives every
// sample, including service-response readers in all client nodes of a
// service, which is the behaviour the paper's client-callback
// disambiguation (P13/P14) exists to handle.
package dds

import (
	"fmt"

	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/umem"
)

// SymWrite is the probed write function (Table I, P16).
var SymWrite = ebpf.Symbol{Lib: "cyclonedds", Func: "dds_write_impl"}

// Sample is one unit of data in flight on a topic.
type Sample struct {
	Topic     string
	SrcTS     sim.Time // source timestamp assigned by dds_write_impl
	WriterPID uint32
	// Service plumbing: for requests, ClientID identifies the requesting
	// client object so the response can be routed; Seq is the RPC sequence
	// number. Zero for plain topic data.
	ClientID uint64
	RPCSeq   uint64
	// Payload is application data (opaque to the middleware).
	Payload interface{}
}

// Reader receives samples from a topic. Delivery invokes OnData in the
// reader process's context; the ROS2 wait-set bridges it to the executor.
type Reader struct {
	topic  string
	pid    uint32
	OnData func(*Sample)
}

// Topic returns the topic name.
func (r *Reader) Topic() string { return r.topic }

// Writer publishes samples on a topic. Each writer owns a small descriptor
// structure in its process's simulated memory holding a pointer to the
// topic name; the P16 probe program traverses it, exactly as the real
// tracer traverses Cyclone DDS writer entities.
type Writer struct {
	topic      string
	pid        uint32
	domain     *Domain
	structAddr umem.Addr
}

// Topic returns the topic name.
func (w *Writer) Topic() string { return w.topic }

// StructAddr returns the address of the writer descriptor in process
// memory; exported for the probe-construction layer.
func (w *Writer) StructAddr() umem.Addr { return w.structAddr }

// WriterStructTopicPtrOff is the byte offset of the topic-name pointer
// inside the writer descriptor.
const WriterStructTopicPtrOff = 0

// TransportFault perturbs per-delivery transport behaviour: a lossy or
// congested network between writer and reader. Fate is consulted once
// per (sample, reader) delivery and draws from the domain's seeded RNG,
// so fault schedules are deterministic per seed.
type TransportFault interface {
	// Fate decides one delivery: drop it entirely, deliver extra duplicate
	// copies (each with its own latency draw), and/or add extra latency to
	// every copy.
	Fate(rng *sim.RNG) (drop bool, dups int, extra sim.Duration)
}

// TransportFaultStats counts what a TransportFault did to a domain.
type TransportFaultStats struct {
	Dropped    uint64 // deliveries suppressed
	Duplicated uint64 // extra copies delivered
	Delayed    uint64 // deliveries given extra latency
}

// Domain is one DDS domain: the topic space and transport.
type Domain struct {
	eng     *sim.Engine
	rt      *ebpf.Runtime
	rng     *sim.RNG
	readers map[string][]*Reader
	// Latency models transport delay per delivery. Defaults to a uniform
	// 20–80 µs, the order of local-loopback DDS latencies.
	Latency sim.Distribution
	// Fault, when set, perturbs every delivery (drop / duplicate / extra
	// delay). Nil in production: Write pays one nil check per reader.
	Fault      TransportFault
	faultStats TransportFaultStats
	// CPUOf resolves the CPU a PID currently runs on for probe contexts;
	// optional (defaults to CPU 0).
	CPUOf func(pid uint32) int

	// siteWrite is the pre-resolved dds_write_impl probe site, bound
	// lazily on the first write.
	siteWrite *ebpf.ProbeSite

	// batches coalesces deliveries due at the same tick for the same
	// reader: the first sample scheduled for (reader, due) creates one
	// engine event, later samples ride it. The engine then dispatches
	// one event per reader per tick instead of one per sample — the
	// batching a real DDS reader cache gives the wait set.
	batches map[deliveryKey][]*Sample

	writes     uint64
	deliveries uint64 // engine delivery events actually scheduled
}

// deliveryKey identifies one per-reader same-tick delivery batch.
type deliveryKey struct {
	reader *Reader
	due    sim.Time
}

// NewDomain creates a domain on eng, firing probes into rt, with transport
// jitter drawn from rng.
func NewDomain(eng *sim.Engine, rt *ebpf.Runtime, rng *sim.RNG) *Domain {
	return &Domain{
		eng:     eng,
		rt:      rt,
		rng:     rng,
		readers: make(map[string][]*Reader),
		batches: make(map[deliveryKey][]*Sample),
		Latency: sim.Uniform{Min: 20 * sim.Microsecond, Max: 80 * sim.Microsecond},
	}
}

// Writes returns the total number of samples written.
func (d *Domain) Writes() uint64 { return d.writes }

// DeliveryEvents returns how many engine events delivery scheduling has
// consumed; with batching it is at most one per reader per distinct due
// tick, never one per sample.
func (d *Domain) DeliveryEvents() uint64 { return d.deliveries }

// CreateWriter creates a writer for pid on topic, materializing its
// descriptor in space.
func (d *Domain) CreateWriter(pid uint32, space *umem.Space, topic string) *Writer {
	if topic == "" {
		panic("dds: empty topic")
	}
	nameAddr := space.AllocString(topic)
	sw := umem.NewStructWriter(space)
	sw.Ptr(nameAddr) // WriterStructTopicPtrOff
	addr := sw.Commit()
	return &Writer{topic: topic, pid: pid, domain: d, structAddr: addr}
}

// CreateReader subscribes pid to topic; onData runs at delivery time.
func (d *Domain) CreateReader(pid uint32, topic string, onData func(*Sample)) *Reader {
	r := &Reader{topic: topic, pid: pid, OnData: onData}
	d.readers[topic] = append(d.readers[topic], r)
	return r
}

// RemoveReader detaches r from its topic. The topic's map entry is
// deleted when the last reader detaches, so topic churn (short-lived
// subscriptions on ever-new topics) does not grow the reader map without
// bound.
func (d *Domain) RemoveReader(r *Reader) {
	list := d.readers[r.topic]
	for i, x := range list {
		if x == r {
			if len(list) == 1 {
				delete(d.readers, r.topic)
				return
			}
			d.readers[r.topic] = append(list[:i:i], list[i+1:]...)
			return
		}
	}
}

// ReaderCount reports the number of readers on a topic.
func (d *Domain) ReaderCount(topic string) int { return len(d.readers[topic]) }

// Write publishes a sample: it stamps the source timestamp, fires P16 in
// the writer's process context, and schedules delivery to every reader of
// the topic.
func (w *Writer) Write(payload interface{}, clientID, rpcSeq uint64) *Sample {
	d := w.domain
	now := d.eng.Now()
	s := &Sample{
		Topic:     w.topic,
		SrcTS:     now,
		WriterPID: w.pid,
		ClientID:  clientID,
		RPCSeq:    rpcSeq,
		Payload:   payload,
	}
	d.writes++

	// dds_write_impl(writer, data, timestamp): probe P16 reads the topic
	// name through the writer descriptor and the source timestamp from the
	// third argument.
	cpu := 0
	if d.CPUOf != nil {
		cpu = d.CPUOf(w.pid)
	}
	if d.siteWrite == nil {
		d.siteWrite = d.rt.Site(SymWrite)
	}
	d.siteWrite.FireEntry(w.pid, cpu, uint64(w.structAddr), 0, uint64(s.SrcTS))

	for _, r := range d.readers[w.topic] {
		copies := 1
		var extra sim.Duration
		if d.Fault != nil {
			drop, dups, ex := d.Fault.Fate(d.rng)
			if drop {
				d.faultStats.Dropped++
				continue
			}
			if dups > 0 {
				copies += dups
				d.faultStats.Duplicated += uint64(dups)
			}
			if ex > 0 {
				extra = ex
				d.faultStats.Delayed++
			}
		}
		for c := 0; c < copies; c++ {
			delay := d.Latency.Sample(d.rng) + extra
			if delay < 0 {
				delay = 0
			}
			d.deliver(r, now.Add(delay), s)
		}
	}
	return s
}

// FaultStats reports what the installed TransportFault (if any) has done
// so far.
func (d *Domain) FaultStats() TransportFaultStats { return d.faultStats }

// deliver enqueues s for r at the due tick. Same-tick deliveries to one
// reader coalesce into a single engine event that hands the reader its
// batch in write order, so N simultaneous samples cost one scheduler
// dispatch instead of N. The batch entry is removed before the callbacks
// run: a reader that writes back with zero latency starts a fresh batch
// later in the same tick rather than appending to the one in flight.
func (d *Domain) deliver(r *Reader, due sim.Time, s *Sample) {
	key := deliveryKey{reader: r, due: due}
	if q, ok := d.batches[key]; ok {
		d.batches[key] = append(q, s)
		return
	}
	d.batches[key] = []*Sample{s}
	d.deliveries++
	d.eng.At(due, func() {
		q := d.batches[key]
		delete(d.batches, key)
		if r.OnData == nil {
			return
		}
		for _, smp := range q {
			r.OnData(smp)
		}
	})
}

// ServiceRequestTopic returns the DDS topic carrying requests of a
// service, following the rmw naming convention.
func ServiceRequestTopic(service string) string { return "rq/" + service + "Request" }

// ServiceResponseTopic returns the DDS topic carrying responses of a
// service.
func ServiceResponseTopic(service string) string { return "rr/" + service + "Reply" }

// IsRequestTopic reports whether topic carries service requests.
func IsRequestTopic(topic string) bool {
	return len(topic) > 3 && topic[:3] == "rq/"
}

// IsResponseTopic reports whether topic carries service responses.
func IsResponseTopic(topic string) bool {
	return len(topic) > 3 && topic[:3] == "rr/"
}

// ServiceOfTopic extracts the service name from a request or response
// topic, or returns the empty string.
func ServiceOfTopic(topic string) string {
	switch {
	case IsRequestTopic(topic):
		return topic[3 : len(topic)-len("Request")]
	case IsResponseTopic(topic):
		return topic[3 : len(topic)-len("Reply")]
	}
	return ""
}

func init() {
	// Sanity: request/response classification must round-trip.
	for _, svc := range []string{"sv", "motion/plan"} {
		if ServiceOfTopic(ServiceRequestTopic(svc)) != svc {
			panic(fmt.Sprintf("dds: request topic round-trip broken for %q", svc))
		}
		if ServiceOfTopic(ServiceResponseTopic(svc)) != svc {
			panic(fmt.Sprintf("dds: response topic round-trip broken for %q", svc))
		}
	}
}
