package dds

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/umem"
)

// scriptFault replays a fixed fate schedule, one entry per delivery.
type scriptFault struct {
	fates []struct {
		drop  bool
		dups  int
		extra sim.Duration
	}
	i int
}

func (s *scriptFault) Fate(*sim.RNG) (bool, int, sim.Duration) {
	f := s.fates[s.i%len(s.fates)]
	s.i++
	return f.drop, f.dups, f.extra
}

func TestTransportFaultDropDuplicateDelay(t *testing.T) {
	eng, d := newTestDomain()
	fault := &scriptFault{fates: []struct {
		drop  bool
		dups  int
		extra sim.Duration
	}{
		{drop: true},                  // write 1: suppressed
		{dups: 2},                     // write 2: three copies
		{extra: 10 * sim.Millisecond}, // write 3: late
		{},                            // write 4: untouched
	}}
	d.Fault = fault

	space := umem.NewSpace(1)
	w := d.CreateWriter(1, space, "/x")
	var arrivals []sim.Time
	d.CreateReader(2, "/x", func(s *Sample) { arrivals = append(arrivals, eng.Now()) })

	for i := 0; i < 4; i++ {
		w.Write(nil, 0, 0)
	}
	eng.Run(sim.MaxTime)

	// 0 (dropped) + 3 (duplicated) + 1 (delayed) + 1 = 5 deliveries.
	if len(arrivals) != 5 {
		t.Fatalf("deliveries = %d, want 5", len(arrivals))
	}
	// The delayed copy carries at least the extra latency on top of the
	// base transport delay.
	var late int
	for _, at := range arrivals {
		if at >= sim.Time(10*sim.Millisecond) {
			late++
		}
	}
	if late != 1 {
		t.Fatalf("late deliveries = %d, want exactly the delayed one (arrivals %v)", late, arrivals)
	}
	st := d.FaultStats()
	if st.Dropped != 1 || st.Duplicated != 2 || st.Delayed != 1 {
		t.Fatalf("fault stats = %+v, want 1 dropped / 2 duplicated / 1 delayed", st)
	}
}

func TestTransportFaultNilIsPassThrough(t *testing.T) {
	eng, d := newTestDomain()
	space := umem.NewSpace(1)
	w := d.CreateWriter(1, space, "/x")
	got := 0
	d.CreateReader(2, "/x", func(*Sample) { got++ })
	w.Write(nil, 0, 0)
	eng.Run(sim.MaxTime)
	if got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
	if st := d.FaultStats(); st != (TransportFaultStats{}) {
		t.Fatalf("stats without a fault: %+v", st)
	}
}

func TestTransportFaultDeterministicPerSeed(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		eng, d := newTestDomain() // seed fixed inside
		d.Fault = probFault{}
		space := umem.NewSpace(1)
		w := d.CreateWriter(1, space, "/x")
		d.CreateReader(2, "/x", func(*Sample) {})
		for i := 0; i < 200; i++ {
			w.Write(nil, 0, 0)
		}
		eng.Run(sim.MaxTime)
		st := d.FaultStats()
		return st.Dropped, st.Duplicated, st.Delayed
	}
	d1, u1, l1 := run()
	d2, u2, l2 := run()
	if d1 != d2 || u1 != u2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, u1, l1, d2, u2, l2)
	}
	if d1 == 0 || u1 == 0 || l1 == 0 {
		t.Fatalf("probabilistic fault idle over 200 writes: (%d,%d,%d)", d1, u1, l1)
	}
}

// probFault draws every fate from the domain's RNG, exercising the
// seeded-determinism contract.
type probFault struct{}

func (probFault) Fate(rng *sim.RNG) (bool, int, sim.Duration) {
	switch {
	case rng.Float64() < 0.1:
		return true, 0, 0
	case rng.Float64() < 0.1:
		return false, 1, 0
	case rng.Float64() < 0.1:
		return false, 0, sim.Millisecond
	}
	return false, 0, 0
}
