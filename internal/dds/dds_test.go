package dds

import (
	"testing"
	"testing/quick"

	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/umem"
)

func newTestDomain() (*sim.Engine, *Domain) {
	eng := sim.NewEngine()
	rt := ebpf.NewRuntime(func() int64 { return int64(eng.Now()) }, nil)
	d := NewDomain(eng, rt, sim.NewRNG(1))
	return eng, d
}

func TestWriteDeliversToAllReaders(t *testing.T) {
	eng, d := newTestDomain()
	space := umem.NewSpace(1)
	w := d.CreateWriter(1, space, "/x")

	got := make(map[int]int)
	for i := 0; i < 3; i++ {
		i := i
		d.CreateReader(uint32(10+i), "/x", func(s *Sample) { got[i]++ })
	}
	w.Write("payload", 0, 0)
	w.Write("payload", 0, 0)
	eng.Run(sim.MaxTime)

	for i := 0; i < 3; i++ {
		if got[i] != 2 {
			t.Errorf("reader %d received %d samples, want 2", i, got[i])
		}
	}
	if d.Writes() != 2 {
		t.Errorf("writes = %d", d.Writes())
	}
}

func TestSrcTSAssignedAtWriteTime(t *testing.T) {
	eng, d := newTestDomain()
	space := umem.NewSpace(1)
	w := d.CreateWriter(1, space, "/x")
	var deliveredAt sim.Time
	var srcTS sim.Time
	d.CreateReader(2, "/x", func(s *Sample) {
		deliveredAt = eng.Now()
		srcTS = s.SrcTS
	})
	eng.At(500, func() { w.Write(nil, 0, 0) })
	eng.Run(sim.MaxTime)
	if srcTS != 500 {
		t.Errorf("srcTS = %v, want 500 (write time)", srcTS)
	}
	if deliveredAt <= srcTS {
		t.Errorf("delivery at %v not after write %v (transport latency)", deliveredAt, srcTS)
	}
}

func TestDeliveryRespectsLatencyModel(t *testing.T) {
	eng, d := newTestDomain()
	d.Latency = sim.Constant{Value: 5 * sim.Millisecond}
	space := umem.NewSpace(1)
	w := d.CreateWriter(1, space, "/x")
	var at sim.Time
	d.CreateReader(2, "/x", func(*Sample) { at = eng.Now() })
	w.Write(nil, 0, 0)
	eng.Run(sim.MaxTime)
	if at != sim.Time(5*sim.Millisecond) {
		t.Errorf("delivered at %v", at)
	}
}

func TestRemoveReader(t *testing.T) {
	eng, d := newTestDomain()
	space := umem.NewSpace(1)
	w := d.CreateWriter(1, space, "/x")
	n := 0
	r := d.CreateReader(2, "/x", func(*Sample) { n++ })
	w.Write(nil, 0, 0)
	eng.Run(sim.MaxTime)
	d.RemoveReader(r)
	if d.ReaderCount("/x") != 0 {
		t.Fatal("reader not removed")
	}
	w.Write(nil, 0, 0)
	eng.Run(sim.MaxTime)
	if n != 1 {
		t.Errorf("deliveries = %d, want 1", n)
	}
}

// TestRemoveReaderReleasesTopicEntry: topic churn — subscribe and
// unsubscribe on ever-new topics — must not grow the reader map without
// bound, so removing the last reader of a topic deletes its map entry.
func TestRemoveReaderReleasesTopicEntry(t *testing.T) {
	_, d := newTestDomain()
	for i := 0; i < 1000; i++ {
		topic := "/churn/" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		r := d.CreateReader(2, topic, nil)
		d.RemoveReader(r)
	}
	if got := len(d.readers); got != 0 {
		t.Fatalf("reader map holds %d emptied topics after churn", got)
	}
	// Removing one of several readers keeps the entry.
	r1 := d.CreateReader(2, "/keep", nil)
	r2 := d.CreateReader(3, "/keep", nil)
	d.RemoveReader(r1)
	if d.ReaderCount("/keep") != 1 {
		t.Fatal("remaining reader lost")
	}
	d.RemoveReader(r2)
	if _, ok := d.readers["/keep"]; ok {
		t.Fatal("emptied topic entry left behind")
	}
	// Removing an already-removed reader is a no-op.
	d.RemoveReader(r2)
}

func TestWriteFiresP16WithTopicAndSrcTS(t *testing.T) {
	eng := sim.NewEngine()
	spaces := map[uint32]*umem.Space{7: umem.NewSpace(7)}
	rt := ebpf.NewRuntime(func() int64 { return int64(eng.Now()) },
		func(pid uint32) *umem.Space { return spaces[pid] })
	d := NewDomain(eng, rt, sim.NewRNG(1))

	// Attach a program reading the writer struct's topic pointer.
	pb := ebpf.NewPerfBuffer("out", 0)
	fd := rt.RegisterMap(pb)
	a := ebpf.NewAssembler("p16ish")
	a.LdxCtx(ebpf.R6, ebpf.R1, 0)
	a.LdxCtx(ebpf.R7, ebpf.R1, 2)
	a.MovReg(ebpf.R1, ebpf.R10).AddImm(ebpf.R1, -72).MovImm(ebpf.R2, 8).MovReg(ebpf.R3, ebpf.R6)
	a.Call(ebpf.HelperProbeRead)
	a.LdxStack(ebpf.R9, ebpf.R10, -72, 8)
	a.MovReg(ebpf.R1, ebpf.R10).AddImm(ebpf.R1, -64).MovImm(ebpf.R2, 64).MovReg(ebpf.R3, ebpf.R9)
	a.Call(ebpf.HelperProbeReadStr)
	a.StxStack(ebpf.R10, -72, ebpf.R7, 8)
	a.MovImm(ebpf.R1, fd).MovReg(ebpf.R2, ebpf.R10).AddImm(ebpf.R2, -72).MovImm(ebpf.R3, 72)
	a.Call(ebpf.HelperPerfOutput)
	a.MovImm(ebpf.R0, 0).Exit()
	p := a.MustAssemble()
	if err := rt.Load(p, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AttachUprobe(SymWrite, p); err != nil {
		t.Fatal(err)
	}

	w := d.CreateWriter(7, spaces[7], "motion/cmd")
	eng.At(1234, func() { w.Write(nil, 0, 0) })
	eng.Run(sim.MaxTime)

	recs := pb.Drain()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	// fp-72 holds srcTS; fp-64.. holds topic string.
	srcTS := int64(recs[0].Data[0]) | int64(recs[0].Data[1])<<8
	if srcTS != 1234 {
		t.Errorf("srcTS = %d", srcTS)
	}
	topic := recs[0].Data[8:]
	n := 0
	for n < len(topic) && topic[n] != 0 {
		n++
	}
	if string(topic[:n]) != "motion/cmd" {
		t.Errorf("topic = %q", topic[:n])
	}
}

func TestServiceTopicNaming(t *testing.T) {
	cases := []struct {
		svc  string
		req  string
		resp string
	}{
		{"sv1", "rq/sv1Request", "rr/sv1Reply"},
		{"motion/plan", "rq/motion/planRequest", "rr/motion/planReply"},
	}
	for _, c := range cases {
		if got := ServiceRequestTopic(c.svc); got != c.req {
			t.Errorf("request topic %q", got)
		}
		if got := ServiceResponseTopic(c.svc); got != c.resp {
			t.Errorf("response topic %q", got)
		}
		if !IsRequestTopic(c.req) || IsResponseTopic(c.req) {
			t.Errorf("classification of %q wrong", c.req)
		}
		if !IsResponseTopic(c.resp) || IsRequestTopic(c.resp) {
			t.Errorf("classification of %q wrong", c.resp)
		}
		if ServiceOfTopic(c.req) != c.svc || ServiceOfTopic(c.resp) != c.svc {
			t.Errorf("service extraction broken for %q", c.svc)
		}
	}
	if ServiceOfTopic("/plain") != "" {
		t.Error("plain topic classified as service")
	}
}

func TestServiceTopicRoundTripProperty(t *testing.T) {
	f := func(name string) bool {
		if name == "" || len(name) > 100 {
			return true
		}
		return ServiceOfTopic(ServiceRequestTopic(name)) == name &&
			ServiceOfTopic(ServiceResponseTopic(name)) == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTopicPanics(t *testing.T) {
	_, d := newTestDomain()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty topic")
		}
	}()
	d.CreateWriter(1, umem.NewSpace(1), "")
}

// TestBatchedDeliveryCoalescesSameTick pins the batched delivery
// contract: samples due at one reader in the same tick ride a single
// engine event, arrive in write order, and the engine dispatches one
// delivery event per batch rather than one per sample.
func TestBatchedDeliveryCoalescesSameTick(t *testing.T) {
	eng, d := newTestDomain()
	d.Latency = sim.Constant{Value: 50 * sim.Microsecond}
	space := umem.NewSpace(1)
	wA := d.CreateWriter(1, space, "/x")
	wB := d.CreateWriter(2, space, "/x")

	var order []interface{}
	d.CreateReader(10, "/x", func(s *Sample) { order = append(order, s.Payload) })

	// Three same-tick writes: constant latency makes all three due at
	// now+50µs for the one reader.
	wA.Write("a1", 0, 0)
	wB.Write("b1", 0, 0)
	wA.Write("a2", 0, 0)
	execBefore := eng.Executed()
	eng.Run(sim.MaxTime)

	if got := eng.Executed() - execBefore; got != 1 {
		t.Fatalf("engine dispatched %d delivery events, want 1 (batched)", got)
	}
	if d.DeliveryEvents() != 1 {
		t.Fatalf("DeliveryEvents = %d, want 1", d.DeliveryEvents())
	}
	want := []interface{}{"a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("delivered %d samples, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v (write order pinned)", order, want)
		}
	}
}

// TestBatchedDeliveryKeepsTicksApart checks distinct due ticks (and
// distinct readers) do not coalesce, and each reader's batch preserves
// write order.
func TestBatchedDeliveryKeepsTicksApart(t *testing.T) {
	eng, d := newTestDomain()
	d.Latency = sim.Constant{Value: sim.Millisecond}
	space := umem.NewSpace(1)
	w := d.CreateWriter(1, space, "/x")

	var got []sim.Time
	d.CreateReader(10, "/x", func(*Sample) { got = append(got, eng.Now()) })
	d.CreateReader(11, "/x", func(*Sample) {})

	w.Write(1, 0, 0) // due at 1ms
	eng.Run(sim.Time(200 * sim.Microsecond))
	w.Write(2, 0, 0) // due at 1.2ms
	eng.Run(sim.MaxTime)

	// 2 writes × 2 readers at 2 distinct ticks = 4 delivery events.
	if d.DeliveryEvents() != 4 {
		t.Fatalf("DeliveryEvents = %d, want 4", d.DeliveryEvents())
	}
	wantTimes := []sim.Time{sim.Time(sim.Millisecond), sim.Time(1200 * sim.Microsecond)}
	if len(got) != 2 || got[0] != wantTimes[0] || got[1] != wantTimes[1] {
		t.Fatalf("delivery times %v, want %v", got, wantTimes)
	}
}

// TestBatchedDeliveryDeterministic pins determinism: two identically
// seeded domains deliver identical sample sequences.
func TestBatchedDeliveryDeterministic(t *testing.T) {
	run := func() []uint64 {
		eng := sim.NewEngine()
		rt := ebpf.NewRuntime(func() int64 { return int64(eng.Now()) }, nil)
		d := NewDomain(eng, rt, sim.NewRNG(99))
		space := umem.NewSpace(1)
		w1 := d.CreateWriter(1, space, "/x")
		w2 := d.CreateWriter(2, space, "/x")
		var seen []uint64
		d.CreateReader(10, "/x", func(s *Sample) { seen = append(seen, s.RPCSeq) })
		for i := 0; i < 50; i++ {
			i := i
			eng.At(sim.Time(i*10_000), func() {
				w1.Write(nil, 0, uint64(2*i))
				w2.Write(nil, 0, uint64(2*i+1))
			})
		}
		eng.Run(sim.MaxTime)
		return seen
	}
	a, b := run(), run()
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("delivered %d / %d samples, want 100 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
