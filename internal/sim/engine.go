// Package sim provides the discrete-event simulation engine on which the
// simulated operating system, DDS transport, and ROS2 middleware run.
//
// The engine owns a virtual nanosecond clock. Components schedule closures
// at absolute or relative virtual times; Run drains the event queue in
// (time, sequence) order so that simultaneous events execute in their
// scheduling order, which keeps every experiment deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Milliseconds reports the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (t Time) String() string     { return fmt.Sprintf("%dns", int64(t)) }
func (d Duration) String() string { return fmt.Sprintf("%dns", int64(d)) }

// Event is a pending simulation event.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// executed counts events dispatched so far; useful as a progress and
	// runaway guard in tests.
	executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn at absolute virtual time at. Scheduling in the past is an
// error that panics: it always indicates a simulator bug.
func (e *Engine) At(at Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev}
}

// After schedules fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.dead = true
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Run executes events in order until the queue empties, Stop is called, or
// the clock passes until. It returns the time at which it stopped.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.dead {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		e.executed++
		ev.fn()
	}
	// The queue drained (or Stop was called). For a finite horizon the
	// caller asked to observe the system up to that wall-clock point, so
	// the clock advances to it; with an unbounded horizon the run-to-
	// completion time is more useful, so the clock stays at the last event.
	if until != MaxTime && e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// Step executes exactly one live event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}
