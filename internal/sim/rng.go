package sim

import "math"

// RNG is a small, fast, deterministic random-number generator
// (xorshift64*). Every stochastic component of the simulator draws from its
// own RNG stream derived from the experiment seed, so adding a component
// never perturbs the draws seen by another.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Stream derives an independent child generator from r and a stream label.
func (r *RNG) Stream(label uint64) *RNG {
	// SplitMix-style mixing of the parent state and the label.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewRNG(z)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Distribution produces virtual durations; it models a callback's designed
// execution-time profile.
type Distribution interface {
	// Sample draws one duration. Implementations must never return a
	// negative duration.
	Sample(r *RNG) Duration
	// Bounds reports the distribution's support [min, max] as designed;
	// used by validation experiments as ground truth.
	Bounds() (min, max Duration)
}

// Constant is a degenerate distribution: every sample equals Value.
type Constant struct{ Value Duration }

// Sample implements Distribution.
func (c Constant) Sample(*RNG) Duration { return c.Value }

// Bounds implements Distribution.
func (c Constant) Bounds() (Duration, Duration) { return c.Value, c.Value }

// Uniform samples uniformly in [Min, Max].
type Uniform struct{ Min, Max Duration }

// Sample implements Distribution.
func (u Uniform) Sample(r *RNG) Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	span := float64(u.Max - u.Min)
	return u.Min + Duration(span*r.Float64())
}

// Bounds implements Distribution.
func (u Uniform) Bounds() (Duration, Duration) { return u.Min, u.Max }

// TruncNormal samples a normal distribution truncated to [Min, Max],
// modelling well-behaved compute kernels (e.g. point-cloud filters).
type TruncNormal struct {
	Mean, Stddev Duration
	Min, Max     Duration
}

// Sample implements Distribution.
func (t TruncNormal) Sample(r *RNG) Duration {
	for i := 0; i < 64; i++ {
		v := Duration(r.Normal(float64(t.Mean), float64(t.Stddev)))
		if v >= t.Min && v <= t.Max {
			return v
		}
	}
	// Degenerate parameters: clamp the mean.
	v := t.Mean
	if v < t.Min {
		v = t.Min
	}
	if v > t.Max {
		v = t.Max
	}
	return v
}

// Bounds implements Distribution.
func (t TruncNormal) Bounds() (Duration, Duration) { return t.Min, t.Max }

// HeavyTail samples a right-skewed distribution truncated to [Min, Max],
// modelling iterative solvers such as NDT matching whose worst case is far
// above the average (paper: cb6 mACET 25.6 ms vs mWCET 60.9 ms).
type HeavyTail struct {
	Mu, Sigma float64 // parameters of the underlying log-normal, in ln(ns)
	Min, Max  Duration
}

// Sample implements Distribution.
func (h HeavyTail) Sample(r *RNG) Duration {
	for i := 0; i < 64; i++ {
		v := Duration(r.LogNormal(h.Mu, h.Sigma))
		if v >= h.Min && v <= h.Max {
			return v
		}
	}
	return h.Min
}

// Bounds implements Distribution.
func (h HeavyTail) Bounds() (Duration, Duration) { return h.Min, h.Max }

// Mixture samples from A with probability P and from B otherwise. It
// models bimodal behaviour such as a transport that is usually fast but
// occasionally stalls (large fragmented samples, retransmissions).
type Mixture struct {
	P    float64 // probability of drawing from A
	A, B Distribution
}

// Sample implements Distribution.
func (m Mixture) Sample(r *RNG) Duration {
	if r.Float64() < m.P {
		return m.A.Sample(r)
	}
	return m.B.Sample(r)
}

// Bounds implements Distribution.
func (m Mixture) Bounds() (Duration, Duration) {
	aLo, aHi := m.A.Bounds()
	bLo, bHi := m.B.Bounds()
	if bLo < aLo {
		aLo = bLo
	}
	if bHi > aHi {
		aHi = bHi
	}
	return aLo, aHi
}
