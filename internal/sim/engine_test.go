package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(30, func() { got = append(got, e.Now()) })
	e.At(10, func() { got = append(got, e.Now()) })
	e.At(20, func() { got = append(got, e.Now()) })
	e.Run(MaxTime)
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(MaxTime)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine()
	var inner Time
	e.After(100, func() {
		e.After(50, func() { inner = e.Now() })
	})
	e.Run(MaxTime)
	if inner != 150 {
		t.Fatalf("nested After fired at %v, want 150", inner)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func() { fired = true })
	e.Cancel(id)
	e.Run(MaxTime)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run", e.Pending())
	}
}

func TestEngineRunUntilStopsClock(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(1000, func() { ran = true })
	end := e.Run(500)
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if end != 500 || e.Now() != 500 {
		t.Fatalf("Run(500) ended at %v (now %v)", end, e.Now())
	}
	e.Run(2000)
	if !ran {
		t.Fatal("event did not run after extending horizon")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(MaxTime)
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(MaxTime)
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue reported work")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Stream(1)
	s2 := r.Stream(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("streams 1 and 2 produced identical first draw")
	}
	// Deriving the same stream twice gives the same sequence.
	r2 := NewRNG(7)
	t1 := r2.Stream(1)
	s1b := NewRNG(7).Stream(1)
	_ = t1
	a := NewRNG(7).Stream(5)
	b := NewRNG(7).Stream(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("re-derived stream diverged")
		}
	}
	if s1b == nil {
		t.Fatal("nil stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestDistributionsRespectBounds(t *testing.T) {
	r := NewRNG(5)
	dists := []Distribution{
		Constant{Value: 3 * Millisecond},
		Uniform{Min: Millisecond, Max: 2 * Millisecond},
		TruncNormal{Mean: 5 * Millisecond, Stddev: Millisecond, Min: 3 * Millisecond, Max: 8 * Millisecond},
		HeavyTail{Mu: math.Log(2e6), Sigma: 0.8, Min: Millisecond, Max: 60 * Millisecond},
	}
	for _, d := range dists {
		lo, hi := d.Bounds()
		for i := 0; i < 2000; i++ {
			v := d.Sample(r)
			if v < lo || v > hi {
				t.Fatalf("%T sample %v outside [%v, %v]", d, v, lo, hi)
			}
		}
	}
}

func TestDistributionSamplesNonNegativeProperty(t *testing.T) {
	// Property: whatever the (sanitized) parameters, samples are >= 0.
	f := func(seed uint64, mean, sd uint32) bool {
		r := NewRNG(seed)
		d := TruncNormal{
			Mean:   Duration(mean%100) * Millisecond,
			Stddev: Duration(sd%10) * Millisecond,
			Min:    0,
			Max:    200 * Millisecond,
		}
		for i := 0; i < 50; i++ {
			if d.Sample(r) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1000)
	if tm.Add(500) != 1500 {
		t.Error("Add")
	}
	if Time(1500).Sub(tm) != 500 {
		t.Error("Sub")
	}
	if (2 * Millisecond).Milliseconds() != 2.0 {
		t.Error("Milliseconds")
	}
	if (3 * Second).Seconds() != 3.0 {
		t.Error("Seconds")
	}
}
