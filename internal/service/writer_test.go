package service

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/tracesynth/rostracer/internal/faultinject"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

func seqEvents(n int, t0 sim.Time, s0 uint64) []trace.Event {
	out := make([]trace.Event, n)
	for i := range out {
		out[i] = trace.Event{
			Time: t0 + sim.Time(i)*10, Seq: s0 + uint64(i),
			PID: 100, Kind: trace.KindSubCBStart, Topic: "t",
		}
	}
	return out
}

// quiet is a no-sleep policy for fault tests.
func quiet() Policy {
	return Policy{Sleep: func(time.Duration) {}}
}

func newStore(t *testing.T) *trace.Store {
	t.Helper()
	s, err := trace.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// readSession streams a session back strictly and returns its events.
func readSession(t *testing.T, s *trace.Store, session string) []trace.Event {
	t.Helper()
	var got []trace.Event
	if err := s.StreamSession(session, trace.SinkFunc(func(e trace.Event) {
		got = append(got, e)
	})); err != nil {
		t.Fatalf("strict readback: %v", err)
	}
	return got
}

func TestHealthyPathByteIdenticalToPlainWriter(t *testing.T) {
	store := newStore(t)
	events := seqEvents(100, 0, 1)

	// Plain fail-stop path.
	sw, err := store.WriteSegment("plain", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		sw.Observe(e)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	// Hardened path, no faults.
	w := NewSessionWriter(store, "hard", Policy{})
	w.BeginSegment()
	for _, e := range events {
		w.Observe(e)
	}
	res := w.EndSegment()
	if res.Persisted != len(events) || res.Down {
		t.Fatalf("end segment: %+v", res)
	}
	w.Close()

	plain, err := os.ReadFile(filepath.Join(store.Dir(), "plain-0000.rtrc"))
	if err != nil {
		t.Fatal(err)
	}
	hard, err := os.ReadFile(filepath.Join(store.Dir(), "hard-0000.rtrc"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, hard) {
		t.Fatal("healthy SessionWriter output differs from plain SegmentWriter")
	}
	stats := w.Stats()
	if stats.Degraded() || stats.Retries != 0 || stats.Persisted != uint64(len(events)) {
		t.Fatalf("healthy stats: %+v", stats)
	}
}

func TestMidSegmentFailureRotatesAndReplays(t *testing.T) {
	store := newStore(t)
	// First opened file dies after 1 KB; the rotation target is healthy.
	disk := faultinject.NewDisk(
		[]faultinject.WriteFault{{Kind: faultinject.WriteFailAfter, N: 1 << 10}},
	)
	store.WrapWriter = disk.Wrap

	events := seqEvents(200, 0, 1) // ~15 KB, far past the fault
	w := NewSessionWriter(store, "rot", quiet())
	w.BeginSegment()
	for _, e := range events {
		w.Observe(e)
	}
	res := w.EndSegment()
	w.Close()
	if res.Persisted != len(events) || res.Down {
		t.Fatalf("end segment: %+v", res)
	}

	stats := w.Stats()
	if stats.Rotations != 1 || stats.Dropped != 0 {
		t.Fatalf("stats: %+v, want 1 rotation and no drops", stats)
	}
	if got := readSession(t, store, "rot"); !reflect.DeepEqual(got, events) {
		t.Fatalf("replay lost events: got %d, want %d", len(got), len(events))
	}
	// The failed segment file must be gone — no partial record on disk.
	files, err := filepath.Glob(filepath.Join(store.Dir(), "rot-*.rtrc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("segment files on disk: %v, want exactly the replacement", files)
	}
	rep, err := store.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck after rotation:\n%s", rep)
	}
}

func TestDiskDownSpillsThenRecovers(t *testing.T) {
	store := newStore(t)
	dead := []faultinject.WriteFault{{Kind: faultinject.WriteFailAll}}
	// Window 1's two open attempts hit a dead disk; the next
	// BeginSegment's first attempt succeeds.
	disk := faultinject.NewDisk(nil, dead, dead)
	store.WrapWriter = disk.Wrap

	pol := quiet()
	pol.MaxAttempts = 2
	pol.SpillCapacity = 50
	w := NewSessionWriter(store, "down", pol)

	// Window 0: healthy.
	first := seqEvents(40, 0, 1)
	w.BeginSegment()
	for _, e := range first {
		w.Observe(e)
	}
	if res := w.EndSegment(); res.Persisted != 40 {
		t.Fatalf("window 0: %+v", res)
	}

	// Window 1: disk dies; spill holds 50, the rest drop.
	second := seqEvents(80, 10000, 1000)
	w.BeginSegment()
	for _, e := range second {
		w.Observe(e)
	}
	res := w.EndSegment()
	if !res.Down || !w.Down() {
		t.Fatalf("window 1 should leave the writer down: %+v", res)
	}
	if w.Pending() != 50 {
		t.Fatalf("pending = %d, want the spill bound", w.Pending())
	}

	// Window 2: disk back; spill replays ahead of fresh events.
	third := seqEvents(10, 20000, 2000)
	w.BeginSegment()
	if w.Down() {
		t.Fatal("recovery failed with a healthy disk")
	}
	for _, e := range third {
		w.Observe(e)
	}
	if res := w.EndSegment(); res.Persisted != 60 {
		t.Fatalf("window 2 persisted %d, want 50 spilled + 10 fresh", res.Persisted)
	}
	w.Close()

	stats := w.Stats()
	if stats.Observed != 130 || stats.Persisted != 100 || stats.Dropped != 30 {
		t.Fatalf("ledger: %+v, want 130 == 100 + 30", stats)
	}
	if stats.Down == 0 || stats.SpillPeak != 50 || !stats.Degraded() {
		t.Fatalf("degradation not recorded: %+v", stats)
	}
	want := append(append(append([]trace.Event(nil), first...), second[:50]...), third...)
	if got := readSession(t, store, "down"); !reflect.DeepEqual(got, want) {
		t.Fatalf("readback %d events, want %d (first + spilled prefix + third)", len(got), len(want))
	}
}

func TestCloseWhileDownAccountsEverything(t *testing.T) {
	store := newStore(t)
	dead := []faultinject.WriteFault{{Kind: faultinject.WriteFailAll}}
	disk := faultinject.NewDisk(dead, dead, dead, dead, dead, dead, dead, dead)
	store.WrapWriter = disk.Wrap

	pol := quiet()
	pol.MaxAttempts = 2
	pol.SpillCapacity = 10
	w := NewSessionWriter(store, "doomed", pol)
	w.BeginSegment()
	for _, e := range seqEvents(25, 0, 1) {
		w.Observe(e)
	}
	w.EndSegment()
	res := w.Close()
	if !res.Down || res.Persisted != 0 {
		t.Fatalf("close on a dead disk: %+v", res)
	}

	stats := w.Stats()
	if stats.Persisted != 0 || stats.Dropped != 25 || stats.Observed != 25 {
		t.Fatalf("ledger: %+v, want all 25 dropped", stats)
	}
	if w.Pending() != 0 {
		t.Fatalf("pending after close = %d", w.Pending())
	}
	// Observe after close is a no-op, not a panic or a leak.
	w.Observe(trace.Event{Time: 1, Seq: 99})
	if w.Stats().Observed != 25 {
		t.Fatal("closed writer still counting")
	}
	// No segment file survives.
	files, err := filepath.Glob(filepath.Join(store.Dir(), "doomed-*.rtrc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("dead-disk session left files: %v", files)
	}
}

func TestBackoffBoundedAndCounted(t *testing.T) {
	store := newStore(t)
	dead := []faultinject.WriteFault{{Kind: faultinject.WriteFailAll}}
	disk := faultinject.NewDisk(dead, dead, dead)
	store.WrapWriter = disk.Wrap

	var slept []time.Duration
	pol := Policy{
		MaxAttempts: 3,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  15 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	w := NewSessionWriter(store, "retry", pol)
	w.BeginSegment()
	w.Observe(trace.Event{Time: 1, Seq: 1, Kind: trace.KindSubCBStart})
	w.EndSegment()
	w.Close()

	// recover() backs off between its attempts; the doubling is capped at
	// BackoffMax.
	if len(slept) == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
	for i, d := range slept {
		if d > pol.BackoffMax {
			t.Fatalf("sleep %d = %v exceeds cap %v", i, d, pol.BackoffMax)
		}
	}
	if w.Stats().Retries != len(slept) {
		t.Fatalf("retries = %d, sleeps = %d", w.Stats().Retries, len(slept))
	}
}

func TestBeginSegmentIdempotentWhileOpen(t *testing.T) {
	store := newStore(t)
	w := NewSessionWriter(store, "idem", Policy{})
	w.BeginSegment()
	w.BeginSegment() // no-op: segment already open
	w.Observe(trace.Event{Time: 1, Seq: 1, Kind: trace.KindSubCBStart})
	w.EndSegment()
	w.Close()
	files, err := filepath.Glob(filepath.Join(store.Dir(), "idem-*.rtrc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files = %v, want one segment", files)
	}
	if w.Stats().Segments != 1 {
		t.Fatalf("segments = %d, want 1", w.Stats().Segments)
	}
}
