// Package service holds the reusable pieces of a long-running tracing
// service. SessionWriter is the first: the hardened segment-persistence
// stage of a drain loop, factored out of cmd/rostracer so the future
// multi-session daemon (see ROADMAP) drives the same code. It turns the
// store's fail-stop SegmentWriter into a degraded-mode pipeline stage:
// write failures retry with bounded exponential backoff, a persistently
// failing segment rotates to a fresh file (replaying the events the
// failed one held), and while the disk is down entirely events spill
// into a bounded in-memory buffer with exact drop accounting when it
// overflows. No partial segment file is ever left on disk: a segment
// that cannot be durably closed is removed.
package service

import (
	"os"
	"time"

	"github.com/tracesynth/rostracer/internal/trace"
)

// Policy bounds the degradation machinery.
type Policy struct {
	// MaxAttempts is how many fresh segment files one failure may try
	// (open + replay) before the writer declares the disk down. Default 3.
	MaxAttempts int
	// BackoffBase is the sleep before the first retry; it doubles per
	// attempt up to BackoffMax. Defaults 10ms / 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// SpillCapacity bounds the in-memory buffer of not-yet-durable events
	// (the current segment's replay buffer while the disk is up, the
	// spill buffer while it is down). Beyond it, events ride the open
	// segment unreplayably (up) or drop with accounting (down).
	// Default 65536.
	SpillCapacity int
	// Sleep is the backoff sleeper; nil means time.Sleep. Tests and the
	// chaos harness inject a counter to keep fault runs fast and
	// deterministic.
	Sleep func(time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 10 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = time.Second
	}
	if p.SpillCapacity <= 0 {
		p.SpillCapacity = 65536
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Stats is the writer's reconciliation ledger. At every quiescent point
// Observed == Persisted + Dropped + Pending, and after Close Pending is
// zero — the exact-accounting invariant the chaos experiment asserts.
type Stats struct {
	Observed  uint64 // events handed to Observe
	Persisted uint64 // events in durably closed segments
	Dropped   uint64 // events lost: spill overflow, or unreplayable on a failed segment
	Retries   int    // backoff retries taken
	Rotations int    // segment files abandoned (and removed) mid-session
	Segments  int    // segments durably closed
	SpillPeak int    // high-water mark of the in-memory buffer
	Down      int    // recovery rounds that ended with the disk still down
	LastErr   error  // most recent persistence error
}

// Degraded reports whether the session lost events or needed recovery.
func (s Stats) Degraded() bool {
	return s.Dropped > 0 || s.Rotations > 0 || s.Down > 0
}

// SegmentResult summarizes one EndSegment.
type SegmentResult struct {
	Persisted int  // events made durable by this close (includes replayed spill)
	Down      bool // the writer is in spill mode after this segment
}

// SessionWriter persists one session's event stream as store segments
// with graceful degradation. Use it per drain window:
//
//	w.BeginSegment()
//	bundle.StreamTo(w)       // w is a trace.Sink
//	res := w.EndSegment()
//
// and Close once at session end. Not safe for concurrent use; one drain
// loop owns a writer, like every other stage of the streaming pipeline.
type SessionWriter struct {
	store   *trace.Store
	session string
	pol     Policy

	segIdx int                  // next segment file index to allocate
	cur    *trace.SegmentWriter // open segment; nil while down
	// buf holds the not-yet-durable events, bounded by SpillCapacity:
	// the open segment's replay buffer while the disk is up, the spill
	// buffer while it is down. unbuffered counts events beyond the bound
	// that were still written to the open segment — durable if the
	// segment closes, unreplayable (dropped) if it fails.
	buf        []trace.Event
	unbuffered uint64
	down       bool // spill mode: last recovery round exhausted its budget

	stats  Stats
	closed bool
}

// NewSessionWriter creates a writer for one session on store.
func NewSessionWriter(store *trace.Store, session string, pol Policy) *SessionWriter {
	return &SessionWriter{store: store, session: session, pol: pol.withDefaults()}
}

// Stats returns the current ledger.
func (w *SessionWriter) Stats() Stats { return w.stats }

// Pending reports events observed but not yet durable or dropped.
func (w *SessionWriter) Pending() int { return len(w.buf) + int(w.unbuffered) }

// Down reports whether the writer is in spill (disk-down) mode.
func (w *SessionWriter) Down() bool { return w.down }

// backoff sleeps for the attempt-th retry (1-based) and counts it.
func (w *SessionWriter) backoff(attempt int) {
	d := w.pol.BackoffBase << (attempt - 1)
	if d > w.pol.BackoffMax || d <= 0 {
		d = w.pol.BackoffMax
	}
	w.stats.Retries++
	w.pol.Sleep(d)
}

// discard abandons the open segment: close whatever can close, remove
// the file so no partial record is ever left looking like a segment, and
// account the unreplayable overflow as dropped.
func (w *SessionWriter) discard() {
	if w.cur == nil {
		return
	}
	w.stats.LastErr = w.cur.Close()
	if path := w.cur.Path(); path != "" {
		os.Remove(path)
	}
	w.cur = nil
	w.stats.Rotations++
	w.stats.Dropped += w.unbuffered
	w.unbuffered = 0
}

// open tries to start the next segment file and replay buf into it.
// Reports false if the open itself failed or the replay tripped the
// writer's sticky error.
func (w *SessionWriter) open() bool {
	sw, err := w.store.WriteSegment(w.session, w.segIdx)
	if err != nil {
		w.stats.LastErr = err
		return false
	}
	w.segIdx++
	w.cur = sw
	for _, e := range w.buf {
		sw.Observe(e)
	}
	// Flush now: a dead disk must fail this open attempt itself, not
	// surface records later after the drain believed the segment was
	// healthy (Observe buffers, so a write error otherwise hides until a
	// buffer boundary).
	if err := sw.Flush(); err != nil {
		w.stats.LastErr = err
		w.discard()
		return false
	}
	w.down = false
	return true
}

// recover runs the bounded retry loop: up to MaxAttempts fresh segment
// files, with exponential backoff between attempts. On exhaustion the
// writer transitions to spill mode.
func (w *SessionWriter) recover() {
	for attempt := 1; attempt <= w.pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			w.backoff(attempt - 1)
		}
		if w.open() {
			return
		}
	}
	w.down = true
	w.stats.Down++
}

// BeginSegment opens the next segment. While the disk is down this is
// the periodic retry point: it attempts recovery and, on success, the
// new segment starts with the replayed spill. Calling it with a segment
// already open is a no-op (EndSegment first).
func (w *SessionWriter) BeginSegment() {
	if w.closed || w.cur != nil {
		return
	}
	w.recover()
}

// Observe implements trace.Sink.
func (w *SessionWriter) Observe(e trace.Event) {
	if w.closed {
		return
	}
	w.stats.Observed++
	if len(w.buf) < w.pol.SpillCapacity {
		w.buf = append(w.buf, e)
		if len(w.buf) > w.stats.SpillPeak {
			w.stats.SpillPeak = len(w.buf)
		}
	} else if w.cur == nil {
		// Spill overflow with no disk to absorb it: the event is gone,
		// and says so in the ledger.
		w.stats.Dropped++
		return
	} else {
		w.unbuffered++
	}
	if w.cur != nil {
		w.cur.Observe(e)
		if w.cur.Err() != nil {
			w.stats.LastErr = w.cur.Err()
			w.discard()
			w.recover()
		}
	}
}

// EndSegment durably closes the open segment. On close failure the
// segment rotates like a write failure — remove, backoff, fresh file,
// replay, close again — bounded by MaxAttempts. Only a successful Close
// moves events from pending to persisted.
func (w *SessionWriter) EndSegment() SegmentResult {
	if w.closed {
		return SegmentResult{}
	}
	if w.cur == nil {
		return SegmentResult{Down: w.down}
	}
	for attempt := 1; ; attempt++ {
		if w.cur != nil {
			if err := w.cur.Close(); err == nil {
				n := len(w.buf) + int(w.unbuffered)
				w.stats.Persisted += uint64(n)
				w.stats.Segments++
				w.buf = w.buf[:0]
				w.unbuffered = 0
				w.cur = nil
				return SegmentResult{Persisted: n}
			}
			w.discard()
		}
		// Both a failed close and a failed re-open burn one attempt of
		// the budget.
		if attempt >= w.pol.MaxAttempts {
			w.down = true
			w.stats.Down++
			return SegmentResult{Down: true}
		}
		w.backoff(attempt)
		w.open()
	}
}

// Close ends the session: closes any open segment, makes one last
// recovery attempt for spilled events, and converts whatever remains
// unpersistable into accounted drops. After Close, Observed ==
// Persisted + Dropped exactly.
func (w *SessionWriter) Close() SegmentResult {
	if w.closed {
		return SegmentResult{}
	}
	res := SegmentResult{}
	if w.cur != nil {
		res = w.EndSegment()
	}
	if len(w.buf) > 0 {
		// Disk was down at session end; try once more to land the spill.
		w.recover()
		if w.cur != nil {
			r2 := w.EndSegment()
			res.Persisted += r2.Persisted
			res.Down = r2.Down
		}
	}
	if n := len(w.buf) + int(w.unbuffered); n > 0 {
		w.stats.Dropped += uint64(n)
		w.buf = nil
		w.unbuffered = 0
		res.Down = true
	}
	w.closed = true
	return res
}
