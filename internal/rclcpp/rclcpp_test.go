package rclcpp_test

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
)

func TestNodeCreationAssignsDistinctPIDsAndSpaces(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	a := w.NewNode("a", 5, 0)
	b := w.NewNode("b", 5, 0)
	if a.PID() == b.PID() {
		t.Fatal("duplicate PIDs")
	}
	if a.Space() == b.Space() {
		t.Fatal("shared address space")
	}
	if w.NodeByName("a") != a || w.NodeByName("missing") != nil {
		t.Fatal("NodeByName broken")
	}
}

func TestDuplicateNodeNamePanics(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	w.NewNode("dup", 5, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate node name")
		}
	}()
	w.NewNode("dup", 5, 0)
}

func TestTimerPeriodAndPhase(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	n := w.NewNode("n", 5, 0)
	var fires []sim.Time
	n.CreateTimer(50*sim.Millisecond, 20*sim.Millisecond, rclcpp.BodyFunc(
		func(ctx *rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
			fires = append(fires, ctx.Time)
			return sim.Millisecond, nil
		}))
	w.Run(300 * sim.Millisecond)
	// First expiry at phase+period = 70ms, then every 50ms.
	want := []sim.Time{
		sim.Time(70 * sim.Millisecond), sim.Time(120 * sim.Millisecond),
		sim.Time(170 * sim.Millisecond), sim.Time(220 * sim.Millisecond),
		sim.Time(270 * sim.Millisecond),
	}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v", fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestZeroPeriodTimerPanics(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	n := w.NewNode("n", 5, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero period")
		}
	}()
	n.CreateTimer(0, 0, rclcpp.SimpleBody{})
}

func TestSingleThreadedExecutorSerializesCallbacks(t *testing.T) {
	// Two timers on one node expiring simultaneously must run one after
	// the other (Sec. II-A executor model), even with idle CPUs.
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 1})
	n := w.NewNode("n", 5, 0)
	type span struct{ s, e sim.Time }
	var spans []span
	mk := func() rclcpp.Body {
		return rclcpp.BodyFunc(func(ctx *rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
			start := ctx.Time
			return 5 * sim.Millisecond, func(c *rclcpp.CallbackContext) {
				spans = append(spans, span{start, c.Node.World().Engine().Now()})
			}
		})
	}
	n.CreateTimer(100*sim.Millisecond, 0, mk())
	n.CreateTimer(100*sim.Millisecond, 0, mk())
	w.Run(150 * sim.Millisecond)
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	// No overlap.
	if spans[0].e > spans[1].s && spans[1].e > spans[0].s {
		t.Fatalf("callbacks overlapped: %v", spans)
	}
}

func TestNodesRunInParallelOnDifferentCPUs(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	var ends []sim.Time
	for _, name := range []string{"a", "b"} {
		n := w.NewNode(name, 5, 0)
		n.CreateTimer(10*sim.Millisecond, 0, rclcpp.BodyFunc(
			func(ctx *rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
				return 8 * sim.Millisecond, func(c *rclcpp.CallbackContext) {
					ends = append(ends, c.Node.World().Engine().Now())
				}
			}))
	}
	w.Run(19 * sim.Millisecond)
	if len(ends) != 2 {
		t.Fatalf("ends = %v", ends)
	}
	// Both finish at 18ms: parallel, not serialized.
	for _, e := range ends {
		if e != sim.Time(18*sim.Millisecond) {
			t.Fatalf("ends = %v, want both 18ms", ends)
		}
	}
}

func TestGroundTruthRecorded(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	n := w.NewNode("n", 5, 0)
	n.CreateTimer(10*sim.Millisecond, 0, rclcpp.SimpleBody{ET: sim.Constant{Value: 2 * sim.Millisecond}})
	w.Run(55 * sim.Millisecond)
	truth := w.Truth()
	if len(truth) != 5 {
		t.Fatalf("truth records = %d", len(truth))
	}
	for _, tr := range truth {
		if tr.PID != n.PID() || tr.Designed != 2*sim.Millisecond {
			t.Fatalf("truth record %+v", tr)
		}
	}
}

func TestServiceRoundTripPayload(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 1})
	server := w.NewNode("server", 5, 0)
	server.CreateService("add_one", sim.Constant{Value: sim.Millisecond},
		func(ctx *rclcpp.CallbackContext) interface{} {
			return ctx.Sample.Payload.(int) + 1
		})
	client := w.NewNode("client", 5, 0)
	var got []int
	cl := client.CreateClient("add_one", rclcpp.BodyFunc(
		func(ctx *rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
			got = append(got, ctx.Sample.Payload.(int))
			return sim.Millisecond, nil
		}))
	client.CreateTimer(20*sim.Millisecond, 0, rclcpp.BodyFunc(
		func(ctx *rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
			return 100 * sim.Microsecond, func(*rclcpp.CallbackContext) { cl.Call(41) }
		}))
	w.Run(100 * sim.Millisecond)
	if len(got) < 3 {
		t.Fatalf("responses = %v", got)
	}
	for _, v := range got {
		if v != 42 {
			t.Fatalf("response payload %d, want 42", v)
		}
	}
}

func TestExternalProcessNotTracedAsNode(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	pid, space := w.NewExternalProcess()
	if pid == 0 || space == nil {
		t.Fatal("bad external process")
	}
	n := w.NewNode("real", 5, 0)
	if pid == n.PID() {
		t.Fatal("external PID collides with node PID")
	}
	// External PIDs are small; machine PIDs start at 1000.
	if pid >= 1000 {
		t.Fatalf("external pid %d in machine range", pid)
	}
}

func TestAffinityAndPriorityPlumbed(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	n := w.NewNode("pinned", 7, sched.AffinityCPU(1))
	if n.Thread().Priority() != 7 {
		t.Errorf("priority = %d", n.Thread().Priority())
	}
	if n.Thread().Affinity() != sched.AffinityCPU(1) {
		t.Errorf("affinity = %#x", n.Thread().Affinity())
	}
}
