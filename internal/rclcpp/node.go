package rclcpp

import (
	"fmt"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/rcl"
	"github.com/tracesynth/rostracer/internal/rmw"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/umem"
)

// CallbackContext is passed to callback bodies. It identifies the node and
// (for message-driven callbacks) the sample being handled.
type CallbackContext struct {
	Node   *Node
	Sample *dds.Sample // nil for timer callbacks
	Time   sim.Time    // callback start time
}

// Action is user code run at the end of a callback instance, while still
// inside the callback window; publishing from an Action therefore produces
// dds_write (P16) events attributable to this callback, as in real ROS2.
type Action func(*CallbackContext)

// Body supplies the user code of a callback. Plan is invoked when an
// instance starts; it returns the designed compute duration and the
// completion action (which may be nil).
type Body interface {
	Plan(ctx *CallbackContext) (sim.Duration, Action)
}

// SimpleBody is the common case: an execution-time distribution plus a
// fixed action.
type SimpleBody struct {
	ET     sim.Distribution
	Action Action
}

// Plan implements Body.
func (b SimpleBody) Plan(ctx *CallbackContext) (sim.Duration, Action) {
	var d sim.Duration
	if b.ET != nil {
		d = b.ET.Sample(ctx.Node.world.etRNG)
	}
	return d, b.Action
}

// BodyFunc adapts a planning function to Body.
type BodyFunc func(ctx *CallbackContext) (sim.Duration, Action)

// Plan implements Body.
func (f BodyFunc) Plan(ctx *CallbackContext) (sim.Duration, Action) { return f(ctx) }

// Node is one ROS2 node: a set of callbacks dispatched by a dedicated
// single-threaded executor.
type Node struct {
	world  *World
	name   string
	pid    uint32
	thread *sched.Thread
	space  *umem.Space
	exec   *executor

	timers        []*Timer
	subscriptions []*Subscription
	services      []*Service
	clients       []*Client
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// PID returns the executor thread's PID.
func (n *Node) PID() uint32 { return n.pid }

// World returns the owning world.
func (n *Node) World() *World { return n.world }

// Space returns the node's simulated process memory.
func (n *Node) Space() *umem.Space { return n.space }

// Thread returns the executor thread.
func (n *Node) Thread() *sched.Thread { return n.thread }

func (n *Node) cpu() int { return n.thread.CPU() }

// rmwCreateNode fires P1 for a fresh node.
func rmwCreateNode(w *World, n *Node) {
	rmw.CreateNode(w.rt, n.pid, 0, n.space, n.name)
}

// Timer triggers a callback periodically.
type Timer struct {
	node   *Node
	period sim.Duration
	body   Body
	rclTm  rcl.Timer
	ready  int
}

// CBID returns the timer's callback handle.
func (t *Timer) CBID() uint64 { return t.rclTm.CBID }

// Period returns the configured period.
func (t *Timer) Period() sim.Duration { return t.period }

// CreateTimer registers a timer callback. The first expiry occurs at
// phase+period after creation (as with rclcpp wall timers, which arm on
// creation and fire after one full period); subsequent expiries follow at
// the fixed rate.
func (n *Node) CreateTimer(period sim.Duration, phase sim.Duration, body Body) *Timer {
	if period <= 0 {
		panic(fmt.Sprintf("rclcpp: node %q timer period %v", n.name, period))
	}
	if phase < 0 {
		phase = 0
	}
	t := &Timer{node: n, period: period, body: body, rclTm: rcl.NewTimer(n.space)}
	n.timers = append(n.timers, t)
	var tick func()
	tick = func() {
		t.ready++
		n.world.machine.Wake(n.thread.PID())
		n.world.eng.After(period, tick)
	}
	n.world.eng.After(phase+period, tick)
	return t
}

// Publisher publishes application data on a topic.
type Publisher struct {
	writer *dds.Writer
}

// Topic returns the published topic.
func (p *Publisher) Topic() string { return p.writer.Topic() }

// Publish writes payload on the topic.
func (p *Publisher) Publish(payload interface{}) { p.writer.Write(payload, 0, 0) }

// CreatePublisher creates a publisher on topic.
func (n *Node) CreatePublisher(topic string) *Publisher {
	return &Publisher{writer: n.world.domain.CreateWriter(n.pid, n.space, topic)}
}

// Subscription triggers a callback on new topic data.
type Subscription struct {
	node   *Node
	topic  string
	body   Body
	entity rmw.Entity
}

// CBID returns the subscription's callback handle.
func (s *Subscription) CBID() uint64 { return s.entity.CBID }

// Topic returns the subscribed topic.
func (s *Subscription) Topic() string { return s.topic }

// CreateSubscription registers a subscriber callback on topic.
func (n *Node) CreateSubscription(topic string, body Body) *Subscription {
	s := &Subscription{node: n, topic: topic, body: body, entity: rmw.NewEntity(n.space, topic)}
	n.subscriptions = append(n.subscriptions, s)
	n.world.domain.CreateReader(n.pid, topic, func(sample *dds.Sample) {
		n.exec.enqueue(workItem{kind: workSub, sub: s, sample: sample})
		n.world.machine.Wake(n.thread.PID())
	})
	return s
}

// ServiceHandler computes a service response payload from a request.
type ServiceHandler func(ctx *CallbackContext) interface{}

// Service serves RPCs: each request triggers the service callback, whose
// completion writes the response on the service's response topic.
type Service struct {
	node       *Node
	name       string
	et         sim.Distribution
	handler    ServiceHandler
	entity     rmw.Entity
	respWriter *dds.Writer
}

// CBID returns the service's callback handle.
func (s *Service) CBID() uint64 { return s.entity.CBID }

// ServiceName returns the service name.
func (s *Service) ServiceName() string { return s.name }

// CreateService registers a service. et is the designed execution time of
// the service callback; handler produces the response payload (may be nil).
func (n *Node) CreateService(service string, et sim.Distribution, handler ServiceHandler) *Service {
	s := &Service{
		node: n, name: service, et: et, handler: handler,
		entity:     rmw.NewEntity(n.space, service),
		respWriter: n.world.domain.CreateWriter(n.pid, n.space, dds.ServiceResponseTopic(service)),
	}
	n.services = append(n.services, s)
	n.world.domain.CreateReader(n.pid, dds.ServiceRequestTopic(service), func(sample *dds.Sample) {
		n.exec.enqueue(workItem{kind: workService, svc: s, sample: sample})
		n.world.machine.Wake(n.thread.PID())
	})
	return s
}

// Client issues RPCs to a service and handles responses in a client
// callback. As in the paper's Cyclone DDS setup, the response topic is
// shared: every client node of a service receives every response, and
// take_type_erased_response decides whether the local client callback is
// dispatched.
type Client struct {
	node      *Node
	service   string
	body      Body
	entity    rmw.Entity
	reqWriter *dds.Writer
	rpcSeq    uint64
}

// CBID returns the client's callback handle, which also identifies the
// client for response routing.
func (c *Client) CBID() uint64 { return c.entity.CBID }

// ServiceName returns the called service.
func (c *Client) ServiceName() string { return c.service }

// CreateClient registers a client of service; body is the response
// callback.
func (n *Node) CreateClient(service string, body Body) *Client {
	c := &Client{
		node: n, service: service, body: body,
		entity:    rmw.NewEntity(n.space, service),
		reqWriter: n.world.domain.CreateWriter(n.pid, n.space, dds.ServiceRequestTopic(service)),
	}
	n.clients = append(n.clients, c)
	n.world.domain.CreateReader(n.pid, dds.ServiceResponseTopic(service), func(sample *dds.Sample) {
		n.exec.enqueue(workItem{kind: workClient, client: c, sample: sample})
		n.world.machine.Wake(n.thread.PID())
	})
	return c
}

// Call sends an asynchronous request. It is intended to be invoked from a
// callback Action, so the resulting dds_write lands inside the calling
// callback's window (paper: requests are published on the request topic
// from within the caller callback).
func (c *Client) Call(payload interface{}) {
	c.rpcSeq++
	c.reqWriter.Write(payload, c.entity.CBID, c.rpcSeq)
}
