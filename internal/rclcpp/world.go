// Package rclcpp simulates the ROS2 client library and its single-threaded
// executor — the application-facing layer of the middleware stack. ROS2
// applications in this repository (package apps) are written against this
// package's Node API exactly as real ones are written against rclcpp.
//
// The executor dispatches timer, subscription, service and client
// callbacks one at a time from start to end (the paper's system model,
// Sec. II-A), firing the probed functions of Table I in their real order:
// execute_* entry, rmw_take_* (with the source-timestamp out-parameter
// trick), user work as a scheduler compute demand, dds writes, execute_*
// exit. Client callbacks are attempted in every client node of a service
// and dispatched only where take_type_erased_response returns 1, which is
// the behaviour Algorithm 1's P14 handling exists for.
package rclcpp

import (
	"fmt"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/rmw"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/umem"
)

// Probed rclcpp symbols (Table I).
var (
	SymExecuteTimer        = ebpf.Symbol{Lib: "rclcpp", Func: "execute_timer"}
	SymExecuteSubscription = ebpf.Symbol{Lib: "rclcpp", Func: "execute_subscription"}
	SymExecuteService      = ebpf.Symbol{Lib: "rclcpp", Func: "execute_service"}
	SymExecuteClient       = ebpf.Symbol{Lib: "rclcpp", Func: "execute_client"}
	SymTakeTypeErased      = ebpf.Symbol{Lib: "rclcpp", Func: "take_type_erased_response"}
)

// Config parameterizes a World.
type Config struct {
	NumCPUs int
	Seed    uint64
	// DDSLatency overrides the transport latency model (optional).
	DDSLatency sim.Distribution
}

// TruthRecord is the ground-truth log of one callback instance: what the
// application *designed*, against which trace-based measurement is
// validated.
type TruthRecord struct {
	PID      uint32
	CBID     uint64
	Start    sim.Time
	Designed sim.Duration
}

// World ties together the simulation engine, the machine, the DDS domain,
// the eBPF runtime and all nodes: one simulated host running one ROS2
// application set.
type World struct {
	eng        *sim.Engine
	machine    *sched.Machine
	rt         *ebpf.Runtime
	domain     *dds.Domain
	spaces     map[uint32]*umem.Space
	etRNG      *sim.RNG
	nodes      []*Node
	nextExtPID uint32

	// Pre-resolved probe sites for the executor's Table I functions.
	siteExecTimer      *ebpf.ProbeSite
	siteExecSub        *ebpf.ProbeSite
	siteExecService    *ebpf.ProbeSite
	siteExecClient     *ebpf.ProbeSite
	siteTakeTypeErased *ebpf.ProbeSite
	takeInt            rmw.TakeSite
	takeRequest        rmw.TakeSite
	takeResponse       rmw.TakeSite

	truth []TruthRecord
}

// NewWorld creates a world. All randomness derives from cfg.Seed.
func NewWorld(cfg Config) *World {
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 4
	}
	eng := sim.NewEngine()
	root := sim.NewRNG(cfg.Seed)
	w := &World{
		eng:     eng,
		machine: sched.NewMachine(eng, cfg.NumCPUs),
		spaces:  make(map[uint32]*umem.Space),
		etRNG:   root.Stream(2),
	}
	w.rt = ebpf.NewRuntime(
		func() int64 { return int64(eng.Now()) },
		func(pid uint32) *umem.Space { return w.spaces[pid] },
	)
	// Pre-resolve the executor's probe sites once; callbacks fire through
	// them on every dispatch.
	w.siteExecTimer = w.rt.Site(SymExecuteTimer)
	w.siteExecSub = w.rt.Site(SymExecuteSubscription)
	w.siteExecService = w.rt.Site(SymExecuteService)
	w.siteExecClient = w.rt.Site(SymExecuteClient)
	w.siteTakeTypeErased = w.rt.Site(SymTakeTypeErased)
	w.takeInt = rmw.ResolveTake(w.rt, rmw.SymTakeInt)
	w.takeRequest = rmw.ResolveTake(w.rt, rmw.SymTakeRequest)
	w.takeResponse = rmw.ResolveTake(w.rt, rmw.SymTakeResponse)
	w.domain = dds.NewDomain(eng, w.rt, root.Stream(1))
	if cfg.DDSLatency != nil {
		w.domain.Latency = cfg.DDSLatency
	}
	w.domain.CPUOf = func(pid uint32) int {
		if t := w.machine.Lookup(sched.PID(pid)); t != nil {
			return t.CPU()
		}
		return 0
	}
	return w
}

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Machine returns the simulated multiprocessor.
func (w *World) Machine() *sched.Machine { return w.machine }

// Runtime returns the eBPF runtime probes attach to.
func (w *World) Runtime() *ebpf.Runtime { return w.rt }

// Domain returns the DDS domain.
func (w *World) Domain() *dds.Domain { return w.domain }

// ETRand returns the execution-time sampling stream.
func (w *World) ETRand() *sim.RNG { return w.etRNG }

// Nodes returns all created nodes in creation order.
func (w *World) Nodes() []*Node { return w.nodes }

// NodeByName returns the named node, or nil.
func (w *World) NodeByName(name string) *Node {
	for _, n := range w.nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

// Truth returns the ground-truth callback-instance log.
func (w *World) Truth() []TruthRecord { return w.truth }

// Run advances the simulation for d of virtual time.
func (w *World) Run(d sim.Duration) {
	w.eng.Run(w.eng.Now().Add(d))
}

func (w *World) recordTruth(pid uint32, cbid uint64, start sim.Time, designed sim.Duration) {
	w.truth = append(w.truth, TruthRecord{PID: pid, CBID: cbid, Start: start, Designed: designed})
}

// NewExternalProcess allocates a PID and address space for a process that
// publishes directly through DDS without being a ROS2 node — e.g. a rosbag
// replayer or sensor driver. Its dds_write events are visible to the
// tracers (P16 carries its PID), but with no rmw_create_node record the
// model synthesis correctly leaves it out of the DAG, which is how raw
// sensor topics appear as source edges in Fig. 3b.
func (w *World) NewExternalProcess() (uint32, *umem.Space) {
	w.nextExtPID++
	pid := w.nextExtPID
	sp := umem.NewSpace(pid)
	w.spaces[pid] = sp
	return pid, sp
}

// NewNode creates a ROS2 node with a single-threaded executor running as
// one OS thread at the given priority and CPU affinity. rmw_create_node
// (P1) fires immediately, so an initialization tracer attached before node
// creation observes the name→PID binding.
func (w *World) NewNode(name string, prio int, affinity uint64) *Node {
	if w.NodeByName(name) != nil {
		panic(fmt.Sprintf("rclcpp: duplicate node name %q", name))
	}
	n := &Node{world: w, name: name}
	n.exec = &executor{node: n}
	n.thread = w.machine.Spawn(name, prio, affinity, n.exec)
	n.pid = uint32(n.thread.PID())
	n.space = umem.NewSpace(n.pid)
	w.spaces[n.pid] = n.space
	rmwCreateNode(w, n)
	w.nodes = append(w.nodes, n)
	return n
}
