package rclcpp

import (
	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/rcl"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
)

type workKind int

const (
	workSub workKind = iota
	workService
	workClient
)

type workItem struct {
	kind   workKind
	sub    *Subscription
	svc    *Service
	client *Client
	sample *dds.Sample
}

// executor is the single-threaded ROS2 executor: it dispatches one
// callback at a time from start to end (Sec. II-A of the paper), blocking
// on the wait set when nothing is ready. Timers take precedence over
// message-driven work, as in rclcpp's wait-set ordering; messages are
// handled in arrival order.
type executor struct {
	node  *Node
	queue []workItem

	inCallback bool
	endProbe   func()
	action     Action
	actionCtx  *CallbackContext
}

func (x *executor) enqueue(it workItem) { x.queue = append(x.queue, it) }

// Resume implements sched.Proc.
func (x *executor) Resume(m *sched.Machine) sched.Demand {
	if x.inCallback {
		x.finishCurrent()
	}
	for {
		if t := x.readyTimer(); t != nil {
			return x.beginTimer(t)
		}
		if len(x.queue) == 0 {
			return sched.Block()
		}
		it := x.queue[0]
		x.queue = x.queue[1:]
		switch it.kind {
		case workSub:
			return x.beginSub(it.sub, it.sample)
		case workService:
			return x.beginService(it.svc, it.sample)
		case workClient:
			if d, dispatched := x.beginClient(it.client, it.sample); dispatched {
				return d
			}
			// Response was for another client: the instance completed
			// instantly (P12/P13/P14/P15 fired); look for more work.
		}
	}
}

func (x *executor) readyTimer() *Timer {
	for _, t := range x.node.timers {
		if t.ready > 0 {
			return t
		}
	}
	return nil
}

// start records the in-flight callback and returns its compute demand.
func (x *executor) start(ctx *CallbackContext, body Body, cbid uint64, endProbe func()) sched.Demand {
	et, action := body.Plan(ctx)
	if et < 0 {
		et = 0
	}
	n := x.node
	n.world.recordTruth(n.pid, cbid, ctx.Time, et)
	x.inCallback = true
	x.action = action
	x.actionCtx = ctx
	x.endProbe = endProbe
	return sched.Compute(et)
}

// finishCurrent runs the completion action (publishes, service calls) and
// fires the execute_* exit probe, all inside the callback window.
func (x *executor) finishCurrent() {
	if x.action != nil {
		x.action(x.actionCtx)
	}
	if x.endProbe != nil {
		x.endProbe()
	}
	x.inCallback = false
	x.action = nil
	x.actionCtx = nil
	x.endProbe = nil
}

func (x *executor) beginTimer(t *Timer) sched.Demand {
	t.ready--
	n := x.node
	w := n.world
	cpu := n.cpu()
	w.siteExecTimer.FireEntry(n.pid, cpu)    // P2
	rcl.TimerCall(w.rt, n.pid, cpu, t.rclTm) // P3
	ctx := &CallbackContext{Node: n, Time: w.eng.Now()}
	return x.start(ctx, t.body, t.rclTm.CBID, func() {
		w.siteExecTimer.FireReturn(n.pid, n.cpu(), 0) // P4
	})
}

func (x *executor) beginSub(s *Subscription, sample *dds.Sample) sched.Demand {
	n := x.node
	w := n.world
	cpu := n.cpu()
	w.siteExecSub.FireEntry(n.pid, cpu)                   // P5
	w.takeInt.Take(n.pid, cpu, n.space, s.entity, sample) // P6 entry+exit
	ctx := &CallbackContext{Node: n, Sample: sample, Time: w.eng.Now()}
	return x.start(ctx, s.body, s.entity.CBID, func() {
		w.siteExecSub.FireReturn(n.pid, n.cpu(), 0) // P8
	})
}

func (x *executor) beginService(s *Service, req *dds.Sample) sched.Demand {
	n := x.node
	w := n.world
	cpu := n.cpu()
	w.siteExecService.FireEntry(n.pid, cpu)                // P9
	w.takeRequest.Take(n.pid, cpu, n.space, s.entity, req) // P10
	ctx := &CallbackContext{Node: n, Sample: req, Time: w.eng.Now()}
	body := BodyFunc(func(c *CallbackContext) (sim.Duration, Action) {
		var et sim.Duration
		if s.et != nil {
			et = s.et.Sample(w.etRNG)
		}
		return et, func(c *CallbackContext) {
			var payload interface{}
			if s.handler != nil {
				payload = s.handler(c)
			}
			// The response inherits the request's client identity and RPC
			// sequence so response routing (P14) can discriminate callers.
			s.respWriter.Write(payload, req.ClientID, req.RPCSeq) // P16
		}
	})
	return x.start(ctx, body, s.entity.CBID, func() {
		w.siteExecService.FireReturn(n.pid, n.cpu(), 0) // P11
	})
}

// beginClient handles a response arrival at one client node. It returns
// (demand, true) when the local client callback is dispatched, or
// (zero, false) when the response belonged to another client, in which
// case the whole instance completes within this call.
func (x *executor) beginClient(c *Client, resp *dds.Sample) (sched.Demand, bool) {
	n := x.node
	w := n.world
	cpu := n.cpu()
	w.siteExecClient.FireEntry(n.pid, cpu)                   // P12
	w.takeResponse.Take(n.pid, cpu, n.space, c.entity, resp) // P13
	dispatch := uint64(0)
	if resp.ClientID == c.entity.CBID {
		dispatch = 1
	}
	// take_type_erased_response's return value is read by uretprobe P14.
	w.siteTakeTypeErased.FireReturn(n.pid, cpu, dispatch)
	if dispatch == 0 {
		w.siteExecClient.FireReturn(n.pid, cpu, 0) // P15: nothing ran
		return sched.Demand{}, false
	}
	ctx := &CallbackContext{Node: n, Sample: resp, Time: w.eng.Now()}
	return x.start(ctx, c.body, c.entity.CBID, func() {
		w.siteExecClient.FireReturn(n.pid, n.cpu(), 0) // P15
	}), true
}
