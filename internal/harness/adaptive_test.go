package harness

import (
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// TestAdaptiveDrainExperiment runs the adaptive-vs-fixed comparison at
// test scale and demands the experiment's own acceptance checks hold:
// the fixed-period point loses records, the adaptive schedule loses
// none and recovers the complete stream.
func TestAdaptiveDrainExperiment(t *testing.T) {
	r, err := AdaptiveDrainExperiment(Config{Runs: 1, Duration: 4 * sim.Second, CPUs: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("adaptive drain checks failed:\n%s\nnotes: %v", r.Text, r.Notes)
	}
	for _, want := range []string{"fixed", "adaptive", "per-ring"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("adaptive drain output missing %q:\n%s", want, r.Text)
		}
	}
}
