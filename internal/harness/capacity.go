package harness

import (
	"fmt"
	"strings"

	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// capacitySweepCapacities are the per-ring record bounds swept (0 =
// unbounded, the figure-experiment configuration).
var capacitySweepCapacities = []int{256, 2048, 0}

// capacitySweepDrains are the drains-per-run points of the sweep. Each
// divides the next, so later points drain at a superset of the earlier
// points' instants and lost counts are provably non-increasing along a
// row.
var capacitySweepDrains = []int{1, 8, 32}

// capRun is one (capacity, drain period) measurement.
type capRun struct {
	capacity  int
	drains    int
	events    int
	lost      uint64
	worstCPU  int
	worstLost uint64
	perCPU    []uint64
}

// CapacityPlanExperiment (E11) sweeps per-ring capacity against drain
// period on the SYN+AVP workload and reports lost records per CPU — the
// capacity-planning data a deployment needs to size its
// perf_event_array rings against its polling budget. The streaming
// drain makes the sweep cheap: every period's segments stream into a
// counting sink, so even the 32-drain column costs no trace
// materialization.
func CapacityPlanExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	type combo struct{ capacity, drains int }
	var combos []combo
	for _, c := range capacitySweepCapacities {
		for _, n := range capacitySweepDrains {
			combos = append(combos, combo{c, n})
		}
	}
	runs, err := runSeries(cfg.Workers, len(combos), func(i int) (capRun, error) {
		c := combos[i]
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
		b, err := tracers.NewBundleCapacity(w.Runtime(), c.capacity)
		if err != nil {
			return capRun{}, err
		}
		tracers.BridgeSched(w.Machine(), w.Runtime())
		if err := b.StartInit(); err != nil {
			return capRun{}, err
		}
		if err := b.StartRT(); err != nil {
			return capRun{}, err
		}
		if err := b.StartKernel(true); err != nil {
			return capRun{}, err
		}
		BuildBoth(1)(w)
		b.StopInit()
		var kc trace.KindCounter
		// Cumulative boundaries keep every combo covering exactly
		// cfg.Duration (no truncation drift), and keep the drain instants
		// of each sweep point a subset of the next point's.
		var elapsed sim.Duration
		for k := 1; k <= c.drains; k++ {
			target := cfg.Duration * sim.Duration(k) / sim.Duration(c.drains)
			w.Run(target - elapsed)
			elapsed = target
			if err := b.StreamTo(&kc); err != nil {
				return capRun{}, err
			}
		}
		r := capRun{
			capacity: c.capacity, drains: c.drains,
			events: kc.Total(), lost: b.Lost(), perCPU: b.LostPerCPU(),
		}
		for cpu, n := range r.perCPU {
			if n > r.worstLost {
				r.worstLost, r.worstCPU = n, cpu
			}
		}
		return r, nil
	})
	if err != nil {
		return Result{}, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "workload: SYN + AVP, %v per run, %d CPUs; rings per tracer: 1/CPU\n",
		cfg.Duration, cfg.CPUs)
	fmt.Fprintf(&b, "%-10s %-8s %-12s %10s %10s   %s\n",
		"capacity", "drains", "period", "events", "lost", "worst ring")
	ok := true
	var notes []string
	byCombo := map[[2]int]capRun{}
	for _, r := range runs {
		byCombo[[2]int{r.capacity, r.drains}] = r
		capLabel := fmt.Sprintf("%d", r.capacity)
		if r.capacity == 0 {
			capLabel = "unbounded"
		}
		worst := "-"
		if r.worstLost > 0 {
			worst = fmt.Sprintf("cpu%d: %d lost", r.worstCPU, r.worstLost)
		}
		fmt.Fprintf(&b, "%-10s %-8d %-12v %10d %10d   %s\n",
			capLabel, r.drains, cfg.Duration/sim.Duration(r.drains), r.events, r.lost, worst)
	}

	// Unbounded rings must never lose a record, whatever the period.
	for _, n := range capacitySweepDrains {
		if r := byCombo[[2]int{0, n}]; r.lost != 0 {
			ok = false
			notes = append(notes, fmt.Sprintf("unbounded rings lost %d records at %d drains", r.lost, n))
		}
	}
	// Along a capacity row, draining more often never loses more: later
	// sweep points drain at a superset of the earlier points' instants.
	for _, c := range capacitySweepCapacities {
		for i := 1; i < len(capacitySweepDrains); i++ {
			prev := byCombo[[2]int{c, capacitySweepDrains[i-1]}]
			cur := byCombo[[2]int{c, capacitySweepDrains[i]}]
			if cur.lost > prev.lost {
				ok = false
				notes = append(notes, fmt.Sprintf(
					"capacity %d: lost grew from %d to %d as drains went %d -> %d",
					c, prev.lost, cur.lost, prev.drains, cur.drains))
			}
		}
	}
	// The sweep must be informative: the tightest configuration has to
	// overrun, otherwise every point is trivially lossless.
	tight := byCombo[[2]int{capacitySweepCapacities[0], capacitySweepDrains[0]}]
	if tight.lost == 0 {
		ok = false
		notes = append(notes, fmt.Sprintf(
			"capacity %d with a single drain lost nothing; sweep uninformative",
			tight.capacity))
	} else {
		var per []string
		for cpu, n := range tight.perCPU {
			if n > 0 {
				per = append(per, fmt.Sprintf("cpu%d=%d", cpu, n))
			}
		}
		fmt.Fprintf(&b, "per-CPU losses at capacity %d, single drain: %s\n",
			tight.capacity, strings.Join(per, " "))
	}
	// Draining within capacity recovers the full event stream: at the
	// fastest drain cadence, every bounded configuration must account
	// for exactly the events the unbounded one emitted — drained plus
	// lost.
	maxDrains := capacitySweepDrains[len(capacitySweepDrains)-1]
	unbounded, haveUnbounded := byCombo[[2]int{0, maxDrains}]
	for _, c := range capacitySweepCapacities {
		if c == 0 || !haveUnbounded {
			continue
		}
		best := byCombo[[2]int{c, maxDrains}]
		if best.events+int(best.lost) != unbounded.events {
			ok = false
			notes = append(notes, fmt.Sprintf(
				"capacity %d at %d drains: events %d + lost %d != total emitted %d",
				c, maxDrains, best.events, best.lost, unbounded.events))
		}
	}
	return Result{ID: "capacity-plan",
		Title: "Per-ring capacity vs drain period (capacity planning)",
		Text:  b.String(), OK: ok, Notes: notes}, nil
}
