package harness

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/metrics"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// TestMetricsEndpointSmoke is the /metrics smoke test make check runs: a
// live short session (the rostracer pipeline shape — bundle, drain
// fan-out, metrics sink, snapshot instrumentation) served over real HTTP
// and scraped concurrently with the drive loop. Every scrape must be
// parseable Prometheus text exposition carrying the session's publish-
// latency histograms and ring accounting.
func TestMetricsEndpointSmoke(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := httptest.NewServer(metrics.Handler(reg))
	defer srv.Close()

	scrape := func() string {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("scrape content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("scrape body: %v", err)
		}
		return string(body)
	}

	// The live session: 8 segments of SYN+AVP under the tracers, each
	// drained through an isolating fan-out into the metrics sink and an
	// online synthesis service, with the pipeline gauges snapshotted per
	// segment — exactly rostracer's wiring, minus the disk.
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 1})
	b, err := tracers.NewBundleCapacity(w.Runtime(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartKernel(true); err != nil {
		t.Fatal(err)
	}
	BuildBoth(1)(w)
	b.StopInit()

	msink := metrics.NewSink(reg)
	pm := metrics.NewPipelineMetrics(reg)
	snapSvc := core.NewSnapshotService()
	sink := trace.NewIsolatingMultiSink()
	sink.Add("metrics", msink)
	sink.Add("snapshot", snapSvc)

	// A scraper hammering the endpoint while the drive loop runs: the
	// endpoint must be serveable at any moment, not just between
	// segments (the -race gate turns any unsynchronized read into a
	// failure here).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := metrics.ParseExposition(scrape()); err != nil {
					t.Errorf("concurrent scrape unparseable: %v", err)
					return
				}
			}
		}
	}()

	const segments = 8
	const segDur = 250 * sim.Millisecond
	for k := 1; k <= segments; k++ {
		w.Run(segDur)
		if err := b.StreamTo(sink); err != nil {
			t.Fatal(err)
		}
		pm.UpdateBundle(b)
		pm.UpdateDrain(int64(segDur), k, 0)
		pm.UpdateIntern()
		pm.UpdateSinks(sink)
		pm.UpdateSynthesis(snapSvc)
	}
	close(stop)
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatalf("fan-out close: %v", err)
	}

	// The final scrape carries the whole session.
	text := scrape()
	parsed, err := metrics.ParseExposition(text)
	if err != nil {
		t.Fatalf("final scrape unparseable: %v\n%s", err, text)
	}
	if parsed.Types["rostracer_publish_latency_ns"] != "histogram" {
		t.Fatalf("publish-latency family missing or mistyped: %v", parsed.Types)
	}
	var topicBuckets, ringPending, ringLost, kindCounters int
	for _, key := range parsed.Series() {
		switch {
		case strings.HasPrefix(key, `rostracer_publish_latency_ns_bucket{topic="`):
			topicBuckets++
		case strings.HasPrefix(key, `rostracer_ring_pending_records{cpu="`):
			ringPending++
		case strings.HasPrefix(key, `rostracer_ring_lost_records_total{cpu="`):
			ringLost++
		case strings.HasPrefix(key, `rostracer_events_total{kind="`):
			kindCounters++
		}
	}
	if topicBuckets == 0 || ringPending == 0 || ringLost == 0 || kindCounters == 0 {
		t.Fatalf("final scrape incomplete: %d topic buckets, %d ring pending, %d ring lost, %d kind counters\n%s",
			topicBuckets, ringPending, ringLost, kindCounters, text)
	}
	if v, ok := reg.Value("rostracer_synthesis_events_total", ""); !ok || v == 0 {
		t.Fatalf("synthesis progress not exported: %v,%v", v, ok)
	}
}
