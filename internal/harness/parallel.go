package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runSeries executes fn(run) for every run in [0, runs) across a bounded
// worker pool and returns the results indexed by run.
//
// Determinism: every run owns its entire simulation state (RunSession
// builds a fresh World seeded from cfg.Seed+run), and results are placed
// by run index, so the returned slice — and anything folded over it in
// order — is byte-identical to sequential execution regardless of worker
// count or scheduling. A failure stops further runs from being claimed
// (in-flight runs finish), and the lowest-indexed error among the runs
// that executed is returned, matching what sequential execution would
// have reported first.
//
// workers <= 0 uses GOMAXPROCS; workers == 1 runs inline with no
// goroutines.
func runSeries[T any](workers, runs int, fn func(run int) (T, error)) ([]T, error) {
	if runs <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	out := make([]T, runs)
	if workers == 1 {
		for run := 0; run < runs; run++ {
			v, err := fn(run)
			if err != nil {
				return nil, err
			}
			out[run] = v
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next run to claim
		failed  atomic.Bool  // stop claiming new runs after any error
		wg      sync.WaitGroup
		mu      sync.Mutex
		errRun  = runs // lowest failing run index
		firstEx error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				run := int(next.Add(1)) - 1
				if run >= runs {
					return
				}
				v, err := fn(run)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if run < errRun {
						errRun, firstEx = run, err
					}
					mu.Unlock()
					continue
				}
				out[run] = v
			}
		}()
	}
	wg.Wait()
	if firstEx != nil {
		return nil, firstEx
	}
	return out, nil
}
