package harness

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// writePeriodicSession reproduces the rostracer periodic-drain loop:
// boot a traced world and stream each drain period through a
// SegmentWriter into the store, one segment per period, never
// materializing a segment.
func writePeriodicSession(t *testing.T, st *trace.Store, session string, seed uint64,
	segments int, period sim.Duration) {
	t.Helper()
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 6, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	BuildBoth(1)(w)
	b.StopInit()
	for seg := 0; seg < segments; seg++ {
		w.Run(period)
		sw, err := st.WriteSegment(session, seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.StreamTo(sw); err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreStreamSessionMatchesBatchPath is the full-stack persistence
// equivalence pin: a multi-segment session written by the rostracer
// periodic loop, read back through Store.StreamSession, must be
// byte-identical to the batch path — in events (vs LoadSession and vs an
// identical whole-run drain), in synthesized model text, in DAG DOT, and
// in the exported JSON figure artifact.
func TestStoreStreamSessionMatchesBatchPath(t *testing.T) {
	const seed = 23
	st, err := trace.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writePeriodicSession(t, st, "run", seed, 4, sim.Second)

	// Events: streaming read == batch read == an identical run drained
	// once at the end (successive periodic drains preserve global
	// (Time, Seq) order, pinned since PR 3).
	var col trace.Collector
	if err := st.StreamSession("run", &col); err != nil {
		t.Fatal(err)
	}
	loaded, err := st.LoadSession("run")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col.Trace.Events, loaded.Events) {
		t.Fatalf("StreamSession yields %d events, LoadSession %d, streams differ",
			col.Trace.Len(), loaded.Len())
	}
	s, err := RunSession(seed, 6, 4*sim.Second, true, BuildBoth(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col.Trace.Events, s.Trace.Events) {
		t.Fatalf("stored session has %d events, whole-run drain %d, streams differ",
			col.Trace.Len(), s.Trace.Len())
	}

	// Artifacts: a model synthesized through the streaming store path
	// (cursors -> merge -> incremental builder, nothing materialized)
	// must render the same text as the batch pipeline.
	sink := core.NewSynthesizeSink()
	if err := st.StreamSession("run", sink); err != nil {
		t.Fatal(err)
	}
	dStream := sink.DAG()
	dBatch := core.Synthesize(s.Trace)

	if got, want := core.Summary(dStream), core.Summary(dBatch); got != want {
		t.Fatalf("model summaries differ:\n--- streamed store ---\n%s--- batch ---\n%s", got, want)
	}
	if got, want := core.ToDOT(dStream, "g"), core.ToDOT(dBatch, "g"); got != want {
		t.Fatal("DAG DOT differs between streamed store path and batch path")
	}
	var jStream, jBatch bytes.Buffer
	if err := core.WriteJSON(&jStream, dStream); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteJSON(&jBatch, dBatch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jStream.Bytes(), jBatch.Bytes()) {
		t.Fatal("exported JSON differs between streamed store path and batch path")
	}
}

// TestStoreSegmentsMatchPeriodicDrains checks each stored segment holds
// exactly one drain period's events: re-running the same world and
// collecting each period batch-style must reproduce segment files byte
// for byte (SegmentWriter vs SaveSegment-of-a-Collector).
func TestStoreSegmentsMatchPeriodicDrains(t *testing.T) {
	const seed = 29
	stStream, err := trace.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writePeriodicSession(t, stStream, "run", seed, 3, sim.Second)

	stBatch, err := trace.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 6, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	BuildBoth(1)(w)
	b.StopInit()
	for seg := 0; seg < 3; seg++ {
		w.Run(sim.Second)
		tr, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if err := stBatch.SaveSegment("run", seg, tr); err != nil {
			t.Fatal(err)
		}
	}

	for seg := 0; seg < 3; seg++ {
		a, err := stStream.LoadSegment("run", seg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := stBatch.LoadSegment("run", seg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("segment %d differs: %d vs %d events", seg, a.Len(), b.Len())
		}
	}
}
