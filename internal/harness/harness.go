// Package harness drives the paper's experiments: it runs traced
// simulation sessions and regenerates every table and figure of the
// evaluation (Table I, Table II, Fig. 3a, Fig. 3b, Fig. 4, the tracing
// overheads, the Fig. 2 deployment strategies, and the modeling
// ablations). Each experiment returns a Result whose Text is the
// regenerated artifact; cmd/experiments prints them and EXPERIMENTS.md
// records them against the paper's numbers.
package harness

import (
	"fmt"
	"strings"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sched"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// Result is one regenerated artifact.
type Result struct {
	ID    string // experiment id, e.g. "tableII"
	Title string
	Text  string // the regenerated table / series
	OK    bool   // whether the reproduced shape matches the paper
	Notes []string
}

func (r Result) String() string {
	status := "OK"
	if !r.OK {
		status = "MISMATCH"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s [%s]\n%s", r.ID, r.Title, status, r.Text)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales the experiments. Defaults approximate the paper's setup
// (50 runs); tests use smaller values.
type Config struct {
	Runs     int
	Duration sim.Duration // traced span per run
	CPUs     int
	Seed     uint64
	// Workers bounds how many of an experiment's independent seeded runs
	// execute concurrently: 0 means GOMAXPROCS, 1 forces sequential
	// execution. Results are merged in run order, so Result.Text is
	// byte-identical for every worker count.
	Workers int
}

// Defaults returns the paper-scale configuration.
func Defaults() Config {
	return Config{Runs: 50, Duration: 20 * sim.Second, CPUs: 12, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := Defaults()
	if c.Runs <= 0 {
		c.Runs = d.Runs
	}
	if c.Duration <= 0 {
		c.Duration = d.Duration
	}
	if c.CPUs <= 0 {
		c.CPUs = d.CPUs
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Session is one traced run of an application set.
type Session struct {
	World  *rclcpp.World
	Bundle *tracers.Bundle
	Trace  *trace.Trace

	TraceBytes  uint64
	KernelBytes uint64
	ProbeCostNs float64
	AppCPUNs    float64

	// Per-CPU ring accounting, indexed by CPU and summed over the three
	// tracers: where the trace volume was produced and which rings
	// overran. LostRecords is the total across CPUs.
	BytesPerCPU []uint64
	LostPerCPU  []uint64
	LostRecords uint64
}

// RunSessionInto boots a world, attaches the three tracers (kernel
// tracer filtered unless stated), builds the application, runs for
// duration, and streams the trace into sink — the deployment sequence of
// Fig. 2 on the streaming path: decoded events flow from the per-CPU
// rings through the tournament merge straight into the sink, and no
// merged trace is ever materialized (Session.Trace stays nil).
func RunSessionInto(seed uint64, cpus int, duration sim.Duration, filteredKernel bool,
	build func(*rclcpp.World), sink trace.Sink) (*Session, error) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		return nil, err
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		return nil, err
	}
	if err := b.StartRT(); err != nil {
		return nil, err
	}
	if err := b.StartKernel(filteredKernel); err != nil {
		return nil, err
	}
	build(w)
	// TR_IN has seen all node creations; it can be stopped now (Fig. 2).
	b.StopInit()
	w.Run(duration)
	if err := b.StreamTo(sink); err != nil {
		return nil, err
	}
	s := &Session{
		World: w, Bundle: b,
		TraceBytes:  b.TraceBytes(),
		ProbeCostNs: w.Runtime().CostNs(),
		BytesPerCPU: b.BytesPerCPU(),
		LostPerCPU:  b.LostPerCPU(),
		LostRecords: b.Lost(),
	}
	for _, th := range w.Machine().Threads() {
		s.AppCPUNs += float64(th.CPUTime())
	}
	return s, nil
}

// RunSession is RunSessionInto collecting the stream into a materialized
// Session.Trace — the batch-compatibility entry point for consumers that
// need the whole event sequence (trace stores, multi-mode synthesis,
// ...).
func RunSession(seed uint64, cpus int, duration sim.Duration, filteredKernel bool,
	build func(*rclcpp.World)) (*Session, error) {
	var col trace.Collector
	s, err := RunSessionInto(seed, cpus, duration, filteredKernel, build, &col)
	if err != nil {
		return nil, err
	}
	s.Trace = &col.Trace
	return s, nil
}

// BuildBoth builds AVP and SYN concurrently (the paper's Sec. VI setup),
// with the SYN load scaled per run for the Fig. 4 interference variation.
func BuildBoth(loadScale float64) func(*rclcpp.World) {
	return func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{Prio: 5})
		apps.BuildSYN(w, apps.SYNConfig{Prio: 7, LoadScale: loadScale})
	}
}

// loadScaleForRun varies the SYN interfering load across runs, as the
// paper does when studying sensitivity of AVP's profiles.
func loadScaleForRun(run int) float64 {
	return 0.5 + 1.5*float64(run%10)/9.0 // 0.5x .. 2.0x
}

// SpawnChatter creates n untraced OS threads that alternate a short
// compute and a sleep, standing in for the rest of a busy host (browsers,
// daemons, ...). They are not ROS2 nodes, so the PID-filtered kernel
// tracer must drop their context switches — the memory-footprint argument
// of Sec. III-B.
func SpawnChatter(w *rclcpp.World, n int, period sim.Duration) {
	m := w.Machine()
	for i := 0; i < n; i++ {
		phase := period * sim.Duration(i) / sim.Duration(n)
		state := 0
		var pid sched.PID
		th := m.Spawn(fmt.Sprintf("host_proc_%d", i), 1, 0, sched.ProcFunc(func(*sched.Machine) sched.Demand {
			state++
			if state == 1 {
				// Initial desynchronization.
				w.Engine().After(phase, func() { m.Wake(pid) })
				return sched.Block()
			}
			if state%2 == 0 {
				return sched.Compute(50 * sim.Microsecond)
			}
			w.Engine().After(period, func() { m.Wake(pid) })
			return sched.Block()
		}))
		pid = th.PID()
	}
}
