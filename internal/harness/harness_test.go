package harness

import (
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// testCfg keeps experiment runtime small for CI while preserving the
// shapes the checks assert.
func testCfg() Config {
	return Config{Runs: 8, Duration: 8 * sim.Second, CPUs: 8, Seed: 3}
}

func TestTableIExperiment(t *testing.T) {
	r, err := TableIExperiment(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("Table I probes missing events:\n%s", r.Text)
	}
	for _, probe := range []string{"P1", "P7", "P14", "P16", "sched_switch"} {
		if !strings.Contains(r.Text, probe) {
			t.Errorf("Table I missing row %s", probe)
		}
	}
}

func TestFig3aExperiment(t *testing.T) {
	r, err := Fig3aExperiment(Config{Runs: 3, Duration: 8 * sim.Second, CPUs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("Fig. 3a mismatch:\n%s", r.Text)
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "digraph") {
		t.Error("missing DOT export")
	}
}

func TestFig3bExperiment(t *testing.T) {
	r, err := Fig3bExperiment(Config{Runs: 3, Duration: 8 * sim.Second, CPUs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("Fig. 3b mismatch:\n%s", r.Text)
	}
}

func TestTableIIExperiment(t *testing.T) {
	r, err := TableIIExperiment(Config{Runs: 6, Duration: 15 * sim.Second, CPUs: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("Table II mismatch:\n%s", r.Text)
	}
	for _, cb := range []string{"cb1", "cb2", "cb3", "cb4", "cb5", "cb6"} {
		if !strings.Contains(r.Text, cb) {
			t.Errorf("Table II missing %s", cb)
		}
	}
}

func TestFig4Experiment(t *testing.T) {
	r, err := Fig4Experiment(Config{Runs: 10, Duration: 10 * sim.Second, CPUs: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("Fig. 4 shape violated:\n%s\nnotes: %v", r.Text, r.Notes)
	}
	if !strings.HasPrefix(r.Text, "run,cb1_mBCET") {
		t.Errorf("Fig. 4 header wrong: %q", strings.SplitN(r.Text, "\n", 2)[0])
	}
}

func TestOverheadsExperiment(t *testing.T) {
	r, err := OverheadsExperiment(Config{Runs: 1, Duration: 10 * sim.Second, CPUs: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("overheads out of range:\n%s", r.Text)
	}
}

func TestFig2Experiment(t *testing.T) {
	r, err := Fig2Experiment(Config{Runs: 3, Duration: 8 * sim.Second, CPUs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("Fig. 2 strategies mismatch:\n%s", r.Text)
	}
}

func TestAblationServiceExperiment(t *testing.T) {
	r, err := AblationServiceExperiment(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("service ablation found no spurious chains:\n%s", r.Text)
	}
}

func TestAblationSyncExperiment(t *testing.T) {
	r, err := AblationSyncExperiment(Config{Runs: 6, Duration: 8 * sim.Second, CPUs: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("sync ablation mismatch:\n%s", r.Text)
	}
}

func TestValidationExperiment(t *testing.T) {
	r, err := ValidationExperiment(Config{Runs: 4, Duration: 6 * sim.Second, CPUs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("validation failed:\n%s", r.Text)
	}
}
