package harness

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// TestStreamedFigureTextMatchesBatch is the harness-level acceptance
// test for the streaming refactor: the figure artifacts (DAG summary and
// DOT text) produced by the streaming session pipeline must be
// byte-identical to what the batch pipeline — materialize the trace,
// then synthesize — produces from an identical session.
func TestStreamedFigureTextMatchesBatch(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		build := BuildBoth(1)

		sink := core.NewSynthesizeSink()
		if _, err := RunSessionInto(seed, 8, 6*sim.Second, true, build, sink); err != nil {
			t.Fatal(err)
		}
		dStream := sink.DAG()

		s, err := RunSession(seed, 8, 6*sim.Second, true, build)
		if err != nil {
			t.Fatal(err)
		}
		dBatch := core.Synthesize(s.Trace)

		if got, want := core.Summary(dStream), core.Summary(dBatch); got != want {
			t.Fatalf("seed %d: summaries differ:\n--- streamed ---\n%s--- batch ---\n%s", seed, got, want)
		}
		if got, want := core.ToDOT(dStream, "g"), core.ToDOT(dBatch, "g"); got != want {
			t.Fatalf("seed %d: DOT differs:\n--- streamed ---\n%s--- batch ---\n%s", seed, got, want)
		}
	}
}

// TestRunSessionIntoCounterMatchesBatchCounts checks the counting sink
// sees exactly the events the batch collector materializes, kind by
// kind.
func TestRunSessionIntoCounterMatchesBatchCounts(t *testing.T) {
	build := func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }

	var kc trace.KindCounter
	if _, err := RunSessionInto(5, 4, 3*sim.Second, true, build, &kc); err != nil {
		t.Fatal(err)
	}
	s, err := RunSession(5, 4, 3*sim.Second, true, build)
	if err != nil {
		t.Fatal(err)
	}
	if kc.Total() != s.Trace.Len() {
		t.Fatalf("counter saw %d events, batch trace has %d", kc.Total(), s.Trace.Len())
	}
	batchCounts := map[trace.Kind]int{}
	for _, e := range s.Trace.Events {
		batchCounts[e.Kind]++
	}
	for kind, n := range batchCounts {
		if kc.Count(kind) != n {
			t.Fatalf("kind %v: counter %d, batch %d", kind, kc.Count(kind), n)
		}
	}
}
