package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/faultinject"
	"github.com/tracesynth/rostracer/internal/metrics"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/service"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// chaosDrains is the drain-window count of the chaos session.
const chaosDrains = 8

// chaosRingCapacity bounds the per-CPU rings so injected overflow bursts
// have realistic company (genuine capacity overruns count into the same
// lost ledger).
const chaosRingCapacity = 2048

// chaosSpill is the session writer's bounded spill: small enough that
// two disk-down windows overflow it, so drop accounting is exercised.
const chaosSpill = 512

// chaosBlockRecords bounds v2 blocks in the chaos store: small enough
// that every damaged segment spans many blocks, so Phase B's tears land
// inside the data region and actually lose records.
const chaosBlockRecords = 64

// chaosDetachWindow is the drain window (1-based) at whose start the
// auxiliary JSONL sink's writer is yanked, so the sink detaches during
// that window's drain — the deterministic pin for the sink-detached
// alert: it must not fire in windows 1..chaosDetachWindow-1 and must
// first fire exactly at chaosDetachWindow.
const chaosDetachWindow = 4

// yankableWriter discards writes until yanked, then fails them all —
// the auxiliary sink's scripted disk.
type yankableWriter struct {
	yanked bool
}

func (y *yankableWriter) Write(p []byte) (int, error) {
	if y.yanked {
		return 0, fmt.Errorf("chaos: aux sink disk yanked")
	}
	return len(p), nil
}

// ChaosExperiment (E13) runs the full drain -> store -> synthesis
// pipeline under a seeded fault plan on all three loss layers at once —
// DDS transport faults (drop / duplicate / delay), forced perf-ring
// overruns, and a scripted disk (ENOSPC mid-segment, a dead-disk spell
// spanning two windows, a short write near the end) — and asserts exact
// accounting rather than mere survival:
//
//	emitted == persisted + ring-lost + spill-dropped
//
// with persisted verified by reading the store back (strict decode), and
// fsck confirming no partial record ever reached disk. Phase B then
// damages the surviving store deterministically (a torn tail, a stomped
// frame) and asserts salvage recovers exactly the records before each
// damage point — and that model synthesis over the salvage stream is
// byte-identical to batch synthesis over the same surviving events.
//
// The whole experiment runs once per segment format (v1 and v2): the
// fault plan and workload are seeded identically, so the two runs also
// cross-check each other — both must persist the same events, which
// makes the v1/v2 size ratio a direct compression measurement.
func ChaosExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var sb strings.Builder
	ok := true
	var notes []string
	persisted := map[trace.Format]uint64{}
	bytesOnDisk := map[trace.Format]int64{}
	for _, format := range []trace.Format{trace.FormatV1, trace.FormatV2} {
		run, err := chaosFormatRun(cfg, format)
		if err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&sb, "=== format %s ===\n%s", format, run.text)
		ok = ok && run.ok
		for _, n := range run.notes {
			notes = append(notes, fmt.Sprintf("[%s] %s", format, n))
		}
		persisted[format] = run.persisted
		bytesOnDisk[format] = run.storeBytes
	}
	// Same seed, same plan: both formats trace the same workload, so the
	// per-event storage cost compares compression on live data. (Persisted
	// counts differ slightly — error-detection timing shifts with segment
	// size, moving a few spill events across the drop boundary — so the
	// metric is bytes per event, not raw store size.)
	if persisted[trace.FormatV1] > 0 && persisted[trace.FormatV2] > 0 {
		v1 := float64(bytesOnDisk[trace.FormatV1]) / float64(persisted[trace.FormatV1])
		v2 := float64(bytesOnDisk[trace.FormatV2]) / float64(persisted[trace.FormatV2])
		ratio := v1 / v2
		fmt.Fprintf(&sb, "compression: %.1f B/event (v1) vs %.1f B/event (v2) — %.1fx\n", v1, v2, ratio)
		if ratio < 3 {
			ok = false
			notes = append(notes, fmt.Sprintf("v2 compression ratio %.2fx below the 3x floor", ratio))
		}
	}
	return Result{ID: "chaos",
		Title: "Fault injection: exact accounting under transport, ring, and disk faults (v1 + v2)",
		Text:  sb.String(), OK: ok, Notes: notes}, nil
}

// chaosRun is one per-format pass of the experiment.
type chaosRun struct {
	text       string
	ok         bool
	notes      []string
	persisted  uint64
	storeBytes int64 // segment bytes surviving before Phase B damage
}

func chaosFormatRun(cfg Config, format trace.Format) (chaosRun, error) {
	dir, err := os.MkdirTemp("", "rtrc-chaos-")
	if err != nil {
		return chaosRun{}, err
	}
	defer os.RemoveAll(dir)

	store, err := trace.NewStore(dir)
	if err != nil {
		return chaosRun{}, err
	}
	store.Format = format
	store.BlockRecords = chaosBlockRecords

	// The fault plan. Disk script, by file open: window 1's segment hits
	// ENOSPC after 8 KB (rotate + replay); window 3's segment and every
	// retry for two windows is a dead disk (spill, then overflow drops);
	// the last window's segment takes a short write (rotate + replay).
	failAll := []faultinject.WriteFault{{Kind: faultinject.WriteFailAll}}
	disk := faultinject.NewDisk(
		nil, // window 0: healthy
		[]faultinject.WriteFault{{Kind: faultinject.WriteFailAfter, N: 8 << 10}}, // window 1
		nil,              // window 1 rotation target
		nil,              // window 2
		failAll,          // window 3: down...
		failAll, failAll, // ...and both recovery attempts fail
		failAll, failAll, // window 4: still down
		nil, // window 5: disk back; replay spill
		nil, // window 6
		[]faultinject.WriteFault{{Kind: faultinject.WriteShortAt, N: 3}}, // window 7
	)
	store.WrapWriter = disk.Wrap
	ring := faultinject.NewRingFault(cfg.Seed+7, 0.01,
		faultinject.Burst{AtOp: 2000, Len: 300})
	transport := &faultinject.Transport{
		DropProb: 0.02, DupProb: 0.02, DelayProb: 0.05,
		ExtraDelay: 2 * sim.Millisecond,
	}
	plan := faultinject.Plan{Disk: disk, Ring: ring, Transport: transport}

	// The traced world, with every fault layer wired to its hook before
	// the first emission so the emitted count covers the whole session.
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
	b, err := tracers.NewBundleCapacity(w.Runtime(), chaosRingCapacity)
	if err != nil {
		return chaosRun{}, err
	}
	b.SetRingFault(plan.Ring.Hook())
	w.Domain().Fault = plan.Transport
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		return chaosRun{}, err
	}
	if err := b.StartRT(); err != nil {
		return chaosRun{}, err
	}
	if err := b.StartKernel(true); err != nil {
		return chaosRun{}, err
	}
	BuildBoth(1)(w)
	b.StopInit()

	var sb strings.Builder
	run := chaosRun{ok: true}
	flunk := func(format string, args ...interface{}) {
		run.ok = false
		run.notes = append(run.notes, fmt.Sprintf(format, args...))
	}

	const session = "chaos"
	sleeps := 0
	writer := service.NewSessionWriter(store, session, service.Policy{
		MaxAttempts:   2,
		SpillCapacity: chaosSpill,
		Sleep:         func(time.Duration) { sleeps++ },
	})

	// Self-observability under fault load: the drain fans out to the
	// store, a metrics sink, and an auxiliary JSONL sink whose writer is
	// yanked at a scripted window. After every window the registry is
	// scraped through the same exposition path the HTTP endpoint serves,
	// and the scrape must stay parseable with every counter monotone —
	// fault windows included.
	reg := metrics.NewRegistry()
	msink := metrics.NewSink(reg)
	pm := metrics.NewPipelineMetrics(reg)
	alerts := metrics.NewAlerts(reg, metrics.DefaultAlertRules())
	aux := &yankableWriter{}
	auxSink := trace.NewJSONLSink(aux)
	isink := trace.NewIsolatingMultiSink()
	isink.Add("store", writer)
	isink.Add("aux-jsonl", auxSink)
	isink.Add("metrics", msink)

	var prevScrape *metrics.ParsedExposition
	scrapeCheck := func(window string) {
		parsed, err := metrics.ParseExposition(reg.Exposition())
		if err != nil {
			flunk("%s: /metrics exposition unparseable: %v", window, err)
			return
		}
		if viol := parsed.MonotoneViolations(prevScrape); len(viol) > 0 {
			flunk("%s: counters decreased: %s", window, strings.Join(viol, "; "))
		}
		prevScrape = parsed
	}

	var elapsed sim.Duration
	for k := 1; k <= chaosDrains; k++ {
		target := cfg.Duration * sim.Duration(k) / chaosDrains
		w.Run(target - elapsed)
		elapsed = target
		if k == chaosDetachWindow {
			aux.yanked = true
		}
		writer.BeginSegment()
		if err := b.StreamTo(isink); err != nil {
			return chaosRun{}, err
		}
		writer.EndSegment()

		pm.UpdateBundle(b)
		pm.UpdateDrain(int64(cfg.Duration)/chaosDrains, k, 0)
		pm.UpdateWriter(writer)
		pm.UpdateIntern()
		pm.UpdateSinks(isink)
		alerts.Evaluate()
		scrapeCheck(fmt.Sprintf("window %d", k))
	}
	writer.Close()
	if err := isink.Close(); err != nil {
		flunk("fan-out close: %v", err)
	}
	pm.UpdateWriter(writer)
	pm.UpdateSinks(isink)
	scrapeCheck("post-close")

	stats := writer.Stats()
	run.persisted = stats.Persisted
	emitted := plan.Ring.Ops()
	lost := b.Lost()
	ts := w.Domain().FaultStats()

	// The aux sink must have detached during (exactly) the yank window,
	// and the sink-detached alert must pin that: silent before, first
	// firing at chaosDetachWindow.
	if det := isink.Detached(); len(det) != 1 || det[0].Name != "aux-jsonl" {
		flunk("detachments = %+v, want exactly the yanked aux-jsonl sink", det)
	}
	var detachRule *metrics.RuleState
	for _, st := range alerts.States() {
		if st.Rule.Name == "sink-detached" {
			detachRule = st
		}
	}
	if detachRule == nil {
		flunk("sink-detached rule missing from the default rule set")
	} else if !detachRule.Fired || detachRule.FiredAt != chaosDetachWindow {
		flunk("sink-detached alert fired at evaluation %d, want exactly window %d (state %+v)",
			detachRule.FiredAt, chaosDetachWindow, detachRule)
	}
	for _, st := range alerts.States() {
		if st.Rule.Name == "store-dropped" && !st.Fired {
			flunk("store-dropped alert never fired despite %d dropped events", stats.Dropped)
		}
	}

	fmt.Fprintf(&sb, "workload: SYN + AVP, %v, %d CPUs; %d drain windows, ring capacity %d, spill %d\n",
		cfg.Duration, cfg.CPUs, chaosDrains, chaosRingCapacity, chaosSpill)
	fmt.Fprintf(&sb, "transport faults: %d dropped, %d duplicated, %d delayed\n",
		ts.Dropped, ts.Duplicated, ts.Delayed)
	fmt.Fprintf(&sb, "ring faults:      %d forced lost of %d emissions (total lost %d)\n",
		plan.Ring.Drops(), emitted, lost)
	fmt.Fprintf(&sb, "disk faults:      %d file opens for %d windows; %d rotations, %d retries (%d backoffs), %d down rounds\n",
		plan.Disk.Opens(), chaosDrains, stats.Rotations, stats.Retries, sleeps, stats.Down)
	fmt.Fprintf(&sb, "ledger:           emitted %d == persisted %d + ring-lost %d + spill-dropped %d\n",
		emitted, stats.Persisted, lost, stats.Dropped)
	if detachRule != nil {
		fmt.Fprintf(&sb, "metrics:          %d scrapes parseable and monotone under faults; sink-detached alert first fired at window %d (aux writer yanked at %d)\n",
			chaosDrains+1, detachRule.FiredAt, chaosDetachWindow)
	}

	// Exact accounting: every emission is persisted, counted lost on a
	// ring, or counted dropped by the writer — nothing vanishes.
	if emitted != stats.Persisted+lost+stats.Dropped {
		flunk("ledger broken: emitted %d != persisted %d + lost %d + dropped %d",
			emitted, stats.Persisted, lost, stats.Dropped)
	}
	if writer.Pending() != 0 {
		flunk("writer closed with %d events pending", writer.Pending())
	}
	// Every fault layer must actually have fired, or the run proves
	// nothing.
	if ts.Dropped == 0 || ts.Duplicated == 0 || ts.Delayed == 0 {
		flunk("transport fault idle: %+v", ts)
	}
	if plan.Ring.Drops() == 0 {
		flunk("ring fault idle")
	}
	if stats.Rotations < 2 || stats.Down < 2 || stats.Dropped == 0 {
		flunk("disk degradation too mild: %d rotations, %d down rounds, %d dropped",
			stats.Rotations, stats.Down, stats.Dropped)
	}

	// The store must read back strictly — the persisted count is real and
	// no partial record ever survived a failed segment.
	var kc trace.KindCounter
	if err := store.StreamSession(session, &kc); err != nil {
		flunk("strict readback failed: %v", err)
	} else if uint64(kc.Total()) != stats.Persisted {
		flunk("readback %d events, writer persisted %d", kc.Total(), stats.Persisted)
	}
	fsck, err := store.Fsck()
	if err != nil {
		return chaosRun{}, err
	}
	if !fsck.Clean() {
		flunk("fsck found %d damaged segments in the surviving store", fsck.Damaged())
	}
	fmt.Fprintf(&sb, "readback:         %d events (strict decode), fsck clean over %d segments\n",
		kc.Total(), stats.Segments)

	// Phase B: damage the surviving store deterministically and salvage.
	segs, err := filepath.Glob(filepath.Join(dir, session+"-*.rtrc"))
	if err != nil {
		return chaosRun{}, err
	}
	sort.Strings(segs)
	type segInfo struct {
		path  string
		total int // records
	}
	var candidates []segInfo
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			return chaosRun{}, err
		}
		run.storeBytes += int64(len(data))
		total, _, err := walkSegment(data, -1)
		if err != nil {
			return chaosRun{}, err
		}
		if total >= 4 {
			candidates = append(candidates, segInfo{path: p, total: total})
		}
	}
	if len(candidates) < 2 {
		flunk("need 2 segments with >= 4 records to damage, have %d", len(candidates))
	}
	wantSalvaged := int(stats.Persisted)
	// expect holds, per damaged file, what salvage must report: computed
	// by running the plain salvage reader over the damaged bytes, so the
	// store-level pass below is cross-checked against an independent
	// single-stream read of the same files.
	expect := map[string]trace.SegmentSalvage{}
	var torn, corrupt segInfo
	if len(candidates) >= 2 {
		// Tear the tail off the first candidate two bytes past a frame
		// boundary (v1: a record boundary, v2: a block boundary), and stomp
		// 0xFFFFFFFF over a frame boundary of the last one (v1: an
		// implausible record length, v2: an unknown frame tag).
		torn, corrupt = candidates[0], candidates[len(candidates)-1]
		boundary, err := segmentBoundary(torn.path, torn.total/2)
		if err != nil {
			return chaosRun{}, err
		}
		if err := os.Truncate(torn.path, boundary+2); err != nil {
			return chaosRun{}, err
		}
		boundary, err = segmentBoundary(corrupt.path, corrupt.total/2)
		if err != nil {
			return chaosRun{}, err
		}
		f, err := os.OpenFile(corrupt.path, os.O_WRONLY, 0)
		if err != nil {
			return chaosRun{}, err
		}
		if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, boundary); err != nil {
			f.Close()
			return chaosRun{}, err
		}
		if err := f.Close(); err != nil {
			return chaosRun{}, err
		}
		for _, si := range []segInfo{torn, corrupt} {
			pred := trace.SalvageReader(bytes.NewReader(mustRead(si.path)), nil)
			if !pred.Damaged {
				flunk("damage to %s not detected by a direct read", filepath.Base(si.path))
			}
			if pred.Events == 0 || pred.Events >= si.total {
				flunk("damage to %s lost no records (%d of %d recovered)",
					filepath.Base(si.path), pred.Events, si.total)
			}
			wantSalvaged -= si.total - pred.Events
			expect[filepath.Base(si.path)] = pred
		}
		if expect[filepath.Base(torn.path)].Cause != "truncated" {
			flunk("torn segment classified %q, want truncated", expect[filepath.Base(torn.path)].Cause)
		}
		if expect[filepath.Base(corrupt.path)].Cause != "corrupt" {
			flunk("stomped segment classified %q, want corrupt", expect[filepath.Base(corrupt.path)].Cause)
		}
		fmt.Fprintf(&sb, "damage:           tore %s (%d/%d records survive), corrupted %s (%d/%d)\n",
			filepath.Base(torn.path), expect[filepath.Base(torn.path)].Events, torn.total,
			filepath.Base(corrupt.path), expect[filepath.Base(corrupt.path)].Events, corrupt.total)
	}

	// Salvage must recover exactly the records before each damage point,
	// classify both damage causes, and feed synthesis the same stream a
	// batch pass over the surviving events would see.
	salvSink := core.NewSynthesizeSink()
	var collected []trace.Event
	rep, err := store.SalvageSession(session, trace.MultiSink(salvSink,
		trace.SinkFunc(func(e trace.Event) { collected = append(collected, e) })))
	if err != nil {
		return chaosRun{}, err
	}
	fmt.Fprint(&sb, rep.String())
	if rep.Events() != wantSalvaged || len(collected) != wantSalvaged {
		flunk("salvage recovered %d events (collected %d), want %d",
			rep.Events(), len(collected), wantSalvaged)
	}
	if rep.Damaged() != 2 {
		flunk("salvage report: %d damaged segments, want 2", rep.Damaged())
	}
	for _, s := range rep.Segments {
		pred, damaged := expect[s.Name]
		if !damaged {
			if s.Damaged {
				flunk("undamaged segment %s reported damaged: %s", s.Name, s.Cause)
			}
			continue
		}
		size := int64(len(mustRead(filepath.Join(dir, s.Name))))
		if s.Cause != pred.Cause || s.Events != pred.Events ||
			s.BytesRecovered != pred.BytesRecovered || s.BytesDropped != size-pred.BytesRecovered {
			flunk("damaged segment report disagrees with direct read:\n  store: %+v\n  direct: %+v", s, pred)
		}
	}
	fsck2, err := store.Fsck()
	if err != nil {
		return chaosRun{}, err
	}
	if fsck2.Damaged() != 2 {
		flunk("post-damage fsck found %d damaged segments, want 2", fsck2.Damaged())
	}

	// Streaming salvage synthesis == batch synthesis over the survivors.
	batchSink := core.NewSynthesizeSink()
	for _, e := range collected {
		batchSink.Observe(e)
	}
	salvSummary := core.Summary(salvSink.DAG())
	batchSummary := core.Summary(batchSink.DAG())
	if salvSummary != batchSummary {
		flunk("salvage-stream synthesis diverges from batch synthesis over the same events")
	}
	fmt.Fprintf(&sb, "synthesis over salvage stream: %d vertices / %d edges, byte-identical to batch\n",
		len(salvSink.DAG().Vertices), len(salvSink.DAG().Edges()))

	run.text = sb.String()
	return run, nil
}

// walkSegment walks a segment's records with the production cursor. With
// stopAt < 0 it returns the record count; with stopAt >= 0 it also
// returns the byte offset of the frame boundary at or after record
// stopAt (for v1 that is the record's own boundary; for v2 it is the end
// of the block holding the record, BytesConsumed being block-granular).
func walkSegment(data []byte, stopAt int) (total int, boundary int64, err error) {
	fc := trace.NewFileCursor(bytes.NewReader(data))
	for {
		_, ok, err := fc.Next()
		if err != nil {
			return total, boundary, err
		}
		if !ok {
			break
		}
		total++
		if total == stopAt {
			boundary = fc.BytesConsumed()
		}
	}
	if stopAt < 0 || boundary > 0 {
		return total, boundary, nil
	}
	return total, boundary, fmt.Errorf("chaos: segment has %d records, want boundary after %d", total, stopAt)
}

// segmentBoundary returns walkSegment's boundary for an on-disk segment.
func segmentBoundary(path string, stopAt int) (int64, error) {
	_, boundary, err := walkSegment(mustRead(path), stopAt)
	return boundary, err
}

// mustRead re-reads a segment the experiment already read once; the
// second read cannot meaningfully fail on a file we just held.
func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return data
}
