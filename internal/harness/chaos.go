package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/faultinject"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/service"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// chaosDrains is the drain-window count of the chaos session.
const chaosDrains = 8

// chaosRingCapacity bounds the per-CPU rings so injected overflow bursts
// have realistic company (genuine capacity overruns count into the same
// lost ledger).
const chaosRingCapacity = 2048

// chaosSpill is the session writer's bounded spill: small enough that
// two disk-down windows overflow it, so drop accounting is exercised.
const chaosSpill = 512

// ChaosExperiment (E13) runs the full drain -> store -> synthesis
// pipeline under a seeded fault plan on all three loss layers at once —
// DDS transport faults (drop / duplicate / delay), forced perf-ring
// overruns, and a scripted disk (ENOSPC mid-segment, a dead-disk spell
// spanning two windows, a short write near the end) — and asserts exact
// accounting rather than mere survival:
//
//	emitted == persisted + ring-lost + spill-dropped
//
// with persisted verified by reading the store back (strict decode), and
// fsck confirming no partial record ever reached disk. Phase B then
// damages the surviving store deterministically (a torn tail, a corrupt
// length prefix) and asserts salvage recovers exactly the records before
// each damage point — and that model synthesis over the salvage stream
// is byte-identical to batch synthesis over the same surviving events.
func ChaosExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "rtrc-chaos-")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	store, err := trace.NewStore(dir)
	if err != nil {
		return Result{}, err
	}

	// The fault plan. Disk script, by file open: window 1's segment hits
	// ENOSPC after 8 KB (rotate + replay); window 3's segment and every
	// retry for two windows is a dead disk (spill, then overflow drops);
	// the last window's segment takes a short write (rotate + replay).
	failAll := []faultinject.WriteFault{{Kind: faultinject.WriteFailAll}}
	disk := faultinject.NewDisk(
		nil, // window 0: healthy
		[]faultinject.WriteFault{{Kind: faultinject.WriteFailAfter, N: 8 << 10}}, // window 1
		nil,              // window 1 rotation target
		nil,              // window 2
		failAll,          // window 3: down...
		failAll, failAll, // ...and both recovery attempts fail
		failAll, failAll, // window 4: still down
		nil, // window 5: disk back; replay spill
		nil, // window 6
		[]faultinject.WriteFault{{Kind: faultinject.WriteShortAt, N: 3}}, // window 7
	)
	store.WrapWriter = disk.Wrap
	ring := faultinject.NewRingFault(cfg.Seed+7, 0.01,
		faultinject.Burst{AtOp: 2000, Len: 300})
	transport := &faultinject.Transport{
		DropProb: 0.02, DupProb: 0.02, DelayProb: 0.05,
		ExtraDelay: 2 * sim.Millisecond,
	}
	plan := faultinject.Plan{Disk: disk, Ring: ring, Transport: transport}

	// The traced world, with every fault layer wired to its hook before
	// the first emission so the emitted count covers the whole session.
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
	b, err := tracers.NewBundleCapacity(w.Runtime(), chaosRingCapacity)
	if err != nil {
		return Result{}, err
	}
	b.SetRingFault(plan.Ring.Hook())
	w.Domain().Fault = plan.Transport
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		return Result{}, err
	}
	if err := b.StartRT(); err != nil {
		return Result{}, err
	}
	if err := b.StartKernel(true); err != nil {
		return Result{}, err
	}
	BuildBoth(1)(w)
	b.StopInit()

	const session = "chaos"
	sleeps := 0
	writer := service.NewSessionWriter(store, session, service.Policy{
		MaxAttempts:   2,
		SpillCapacity: chaosSpill,
		Sleep:         func(time.Duration) { sleeps++ },
	})
	var elapsed sim.Duration
	for k := 1; k <= chaosDrains; k++ {
		target := cfg.Duration * sim.Duration(k) / chaosDrains
		w.Run(target - elapsed)
		elapsed = target
		writer.BeginSegment()
		if err := b.StreamTo(writer); err != nil {
			return Result{}, err
		}
		writer.EndSegment()
	}
	writer.Close()

	stats := writer.Stats()
	emitted := plan.Ring.Ops()
	lost := b.Lost()
	ts := w.Domain().FaultStats()

	var sb strings.Builder
	ok := true
	var notes []string
	flunk := func(format string, args ...interface{}) {
		ok = false
		notes = append(notes, fmt.Sprintf(format, args...))
	}

	fmt.Fprintf(&sb, "workload: SYN + AVP, %v, %d CPUs; %d drain windows, ring capacity %d, spill %d\n",
		cfg.Duration, cfg.CPUs, chaosDrains, chaosRingCapacity, chaosSpill)
	fmt.Fprintf(&sb, "transport faults: %d dropped, %d duplicated, %d delayed\n",
		ts.Dropped, ts.Duplicated, ts.Delayed)
	fmt.Fprintf(&sb, "ring faults:      %d forced lost of %d emissions (total lost %d)\n",
		plan.Ring.Drops(), emitted, lost)
	fmt.Fprintf(&sb, "disk faults:      %d file opens for %d windows; %d rotations, %d retries (%d backoffs), %d down rounds\n",
		plan.Disk.Opens(), chaosDrains, stats.Rotations, stats.Retries, sleeps, stats.Down)
	fmt.Fprintf(&sb, "ledger:           emitted %d == persisted %d + ring-lost %d + spill-dropped %d\n",
		emitted, stats.Persisted, lost, stats.Dropped)

	// Exact accounting: every emission is persisted, counted lost on a
	// ring, or counted dropped by the writer — nothing vanishes.
	if emitted != stats.Persisted+lost+stats.Dropped {
		flunk("ledger broken: emitted %d != persisted %d + lost %d + dropped %d",
			emitted, stats.Persisted, lost, stats.Dropped)
	}
	if writer.Pending() != 0 {
		flunk("writer closed with %d events pending", writer.Pending())
	}
	// Every fault layer must actually have fired, or the run proves
	// nothing.
	if ts.Dropped == 0 || ts.Duplicated == 0 || ts.Delayed == 0 {
		flunk("transport fault idle: %+v", ts)
	}
	if plan.Ring.Drops() == 0 {
		flunk("ring fault idle")
	}
	if stats.Rotations < 2 || stats.Down < 2 || stats.Dropped == 0 {
		flunk("disk degradation too mild: %d rotations, %d down rounds, %d dropped",
			stats.Rotations, stats.Down, stats.Dropped)
	}

	// The store must read back strictly — the persisted count is real and
	// no partial record ever survived a failed segment.
	var kc trace.KindCounter
	if err := store.StreamSession(session, &kc); err != nil {
		flunk("strict readback failed: %v", err)
	} else if uint64(kc.Total()) != stats.Persisted {
		flunk("readback %d events, writer persisted %d", kc.Total(), stats.Persisted)
	}
	fsck, err := store.Fsck()
	if err != nil {
		return Result{}, err
	}
	if !fsck.Clean() {
		flunk("fsck found %d damaged segments in the surviving store", fsck.Damaged())
	}
	fmt.Fprintf(&sb, "readback:         %d events (strict decode), fsck clean over %d segments\n",
		kc.Total(), stats.Segments)

	// Phase B: damage the surviving store deterministically and salvage.
	segs, err := filepath.Glob(filepath.Join(dir, session+"-*.rtrc"))
	if err != nil {
		return Result{}, err
	}
	sort.Strings(segs)
	type segInfo struct {
		path     string
		total    int // records
		size     int64
		keep     int   // records surviving the damage
		boundary int64 // damage offset (record boundary)
	}
	var candidates []segInfo
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			return Result{}, err
		}
		total, _, err := walkSegment(data, -1)
		if err != nil {
			return Result{}, err
		}
		if total >= 4 {
			candidates = append(candidates, segInfo{path: p, total: total, size: int64(len(data))})
		}
	}
	if len(candidates) < 2 {
		flunk("need 2 segments with >= 4 records to damage, have %d", len(candidates))
	}
	wantSalvaged := int(stats.Persisted)
	var torn, corrupt segInfo
	if len(candidates) >= 2 {
		// Tear the tail off the first candidate two bytes into a length
		// prefix, and blow up a length prefix of the last one.
		torn, corrupt = candidates[0], candidates[len(candidates)-1]
		torn.keep = torn.total / 2
		_, torn.boundary, err = walkSegment(mustRead(torn.path), torn.keep)
		if err != nil {
			return Result{}, err
		}
		if err := os.Truncate(torn.path, torn.boundary+2); err != nil {
			return Result{}, err
		}
		corrupt.keep = corrupt.total / 2
		_, corrupt.boundary, err = walkSegment(mustRead(corrupt.path), corrupt.keep)
		if err != nil {
			return Result{}, err
		}
		f, err := os.OpenFile(corrupt.path, os.O_WRONLY, 0)
		if err != nil {
			return Result{}, err
		}
		if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, corrupt.boundary); err != nil {
			f.Close()
			return Result{}, err
		}
		if err := f.Close(); err != nil {
			return Result{}, err
		}
		wantSalvaged -= (torn.total - torn.keep) + (corrupt.total - corrupt.keep)
		fmt.Fprintf(&sb, "damage:           tore %s at %d/%d records, corrupted %s at %d/%d\n",
			filepath.Base(torn.path), torn.keep, torn.total,
			filepath.Base(corrupt.path), corrupt.keep, corrupt.total)
	}

	// Salvage must recover exactly the records before each damage point,
	// classify both damage causes, and feed synthesis the same stream a
	// batch pass over the surviving events would see.
	salvSink := core.NewSynthesizeSink()
	var collected []trace.Event
	rep, err := store.SalvageSession(session, trace.MultiSink(salvSink,
		trace.SinkFunc(func(e trace.Event) { collected = append(collected, e) })))
	if err != nil {
		return Result{}, err
	}
	fmt.Fprint(&sb, rep.String())
	if rep.Events() != wantSalvaged || len(collected) != wantSalvaged {
		flunk("salvage recovered %d events (collected %d), want %d",
			rep.Events(), len(collected), wantSalvaged)
	}
	if rep.Damaged() != 2 {
		flunk("salvage report: %d damaged segments, want 2", rep.Damaged())
	}
	for _, s := range rep.Segments {
		switch filepath.Join(dir, s.Name) {
		case torn.path:
			if s.Cause != "truncated" || s.Events != torn.keep || s.BytesDropped != 2 {
				flunk("torn segment report wrong: %+v", s)
			}
		case corrupt.path:
			if s.Cause != "corrupt" || s.Events != corrupt.keep ||
				s.BytesDropped != corrupt.size-corrupt.boundary {
				flunk("corrupt segment report wrong: %+v", s)
			}
		default:
			if s.Damaged {
				flunk("undamaged segment %s reported damaged: %s", s.Name, s.Cause)
			}
		}
	}
	fsck2, err := store.Fsck()
	if err != nil {
		return Result{}, err
	}
	if fsck2.Damaged() != 2 {
		flunk("post-damage fsck found %d damaged segments, want 2", fsck2.Damaged())
	}

	// Streaming salvage synthesis == batch synthesis over the survivors.
	batchSink := core.NewSynthesizeSink()
	for _, e := range collected {
		batchSink.Observe(e)
	}
	salvSummary := core.Summary(salvSink.DAG())
	batchSummary := core.Summary(batchSink.DAG())
	if salvSummary != batchSummary {
		flunk("salvage-stream synthesis diverges from batch synthesis over the same events")
	}
	fmt.Fprintf(&sb, "synthesis over salvage stream: %d vertices / %d edges, byte-identical to batch\n",
		len(salvSink.DAG().Vertices), len(salvSink.DAG().Edges()))

	return Result{ID: "chaos",
		Title: "Fault injection: exact accounting under transport, ring, and disk faults",
		Text:  sb.String(), OK: ok, Notes: notes}, nil
}

// walkSegment walks a segment's records with the production cursor. With
// stopAt < 0 it returns the record count; with stopAt >= 0 it also
// returns the byte offset just past record stopAt (a record boundary).
func walkSegment(data []byte, stopAt int) (total int, boundary int64, err error) {
	fc := trace.NewFileCursor(bytes.NewReader(data))
	for {
		_, ok, err := fc.Next()
		if err != nil {
			return total, boundary, err
		}
		if !ok {
			break
		}
		total++
		if total == stopAt {
			boundary = fc.BytesConsumed()
		}
	}
	if stopAt < 0 || boundary > 0 {
		return total, boundary, nil
	}
	return total, boundary, fmt.Errorf("chaos: segment has %d records, want boundary after %d", total, stopAt)
}

// mustRead re-reads a segment the experiment already read once; the
// second read cannot meaningfully fail on a file we just held.
func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return data
}
