package harness

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/sim"
)

// TestTieredFigureTextEquivalence pins the experiment artifacts — figure
// text, synthesized models, and DAG DOT exports embedded in Result.Text —
// byte-identical between a session pinned to tier-0 decode and one
// promoted to tier 1 from the first fire. The overheads experiment rides
// along to pin the retired-instruction cost accounting across tiers.
func TestTieredFigureTextEquivalence(t *testing.T) {
	cfg := Config{Runs: 2, Duration: 3 * sim.Second, CPUs: 4, Seed: 5}
	experiments := map[string]func(Config) (Result, error){
		"fig3a":     Fig3aExperiment,
		"tableII":   TableIIExperiment,
		"overheads": OverheadsExperiment,
	}
	for name, exp := range experiments {
		t.Run(name, func(t *testing.T) {
			old := ebpf.SetDefaultHotThreshold(0)
			defer ebpf.SetDefaultHotThreshold(old)

			r0, err := exp(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ebpf.SetDefaultHotThreshold(1)
			r1, err := exp(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r0.Text != r1.Text {
				t.Fatalf("tiered output diverged:\n--- tier 0 ---\n%s--- tier 1 ---\n%s", r0.Text, r1.Text)
			}
		})
	}
}
