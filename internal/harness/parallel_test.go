package harness

import (
	"errors"
	"fmt"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

func TestRunSeriesOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out, err := runSeries(workers, 20, func(run int) (int, error) {
			return run * run, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 20 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunSeriesReportsLowestError(t *testing.T) {
	wantErr := errors.New("run 3 failed")
	for _, workers := range []int{1, 4} {
		_, err := runSeries(workers, 10, func(run int) (int, error) {
			if run == 7 {
				return 0, errors.New("run 7 failed")
			}
			if run == 3 {
				return 0, wantErr
			}
			return run, nil
		})
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

func TestRunSeriesZeroRuns(t *testing.T) {
	out, err := runSeries(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("got %v, %v", out, err)
	}
}

// TestParallelExperimentsDeterministic is the acceptance guarantee of the
// parallel harness: for a fixed Config, every experiment's Result.Text (and
// OK flag and notes) must be byte-identical no matter how many workers the
// per-run fan-out uses.
func TestParallelExperimentsDeterministic(t *testing.T) {
	cfg := Config{Runs: 4, Duration: 2 * sim.Second, CPUs: 4, Seed: 11}
	experiments := []struct {
		name string
		f    func(Config) (Result, error)
	}{
		{"fig3a", Fig3aExperiment},
		{"fig3b", Fig3bExperiment},
		{"tableII", TableIIExperiment},
		{"fig4", Fig4Experiment},
		{"fig2", Fig2Experiment},
		{"ablation-sync", AblationSyncExperiment},
		{"validation", ValidationExperiment},
	}
	for _, e := range experiments {
		t.Run(e.name, func(t *testing.T) {
			seqCfg := cfg
			seqCfg.Workers = 1
			parCfg := cfg
			parCfg.Workers = 8

			seq, err := e.f(seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			par, err := e.f(parCfg)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Text != par.Text {
				t.Fatalf("Result.Text diverged between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.Text, par.Text)
			}
			if seq.OK != par.OK {
				t.Fatalf("OK diverged: sequential %v, parallel %v", seq.OK, par.OK)
			}
			if fmt.Sprint(seq.Notes) != fmt.Sprint(par.Notes) {
				t.Fatalf("Notes diverged:\nsequential: %v\nparallel:   %v", seq.Notes, par.Notes)
			}
		})
	}
}
