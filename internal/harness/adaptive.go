package harness

import (
	"fmt"
	"strings"

	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// adaptiveCapacity is the bounded-ring operating point the adaptive
// drain is demonstrated at: the tightest capacity of the capacity
// sweep, where fixed-period draining demonstrably loses records.
const adaptiveCapacity = 256

// adaptiveFixedDrains is the fixed-period comparison point: the middle
// drain cadence of the capacity sweep (period = duration/8), lossy at
// adaptiveCapacity on the SYN+AVP workload.
const adaptiveFixedDrains = 8

// adaptiveRun is one measured drain-loop configuration.
type adaptiveRun struct {
	mode       string
	drains     int
	ringDrains int
	events     int
	lost       uint64
	minPeriod  sim.Duration
	maxPeriod  sim.Duration
}

// adaptiveDrive advances one session's drain loop and reports
// (wakeups, ring drains, min period, max period).
type adaptiveDrive func(w *rclcpp.World, b *tracers.Bundle, kc *trace.KindCounter) (int, int, sim.Duration, sim.Duration, error)

// AdaptiveDrainExperiment (E12) closes the capacity-planning loop: at a
// (capacity, period) point where the fixed-period sweep loses records,
// a DrainScheduler driven by per-ring pending high-water marks starts
// from a short calibration window, plans each next period for the
// observed fill rate, and recovers the full event stream with zero
// overruns — without hand-tuning the cadence to the workload.
//
// A third mode gives each ring its own deadline (AdvancePerRing +
// StreamDueTo): wakeups happen at the hottest ring's cadence, but each
// wakeup drains only the rings whose deadline arrived, so cold rings
// (init after startup, idle CPUs' RT rings) drop out of the per-wakeup
// cost. It must preserve the zero-loss, exact-recovery guarantees while
// doing fewer ring drains than the all-rings adaptive loop.
func AdaptiveDrainExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	session := func(drive adaptiveDrive) (adaptiveRun, error) {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
		b, err := tracers.NewBundleCapacity(w.Runtime(), adaptiveCapacity)
		if err != nil {
			return adaptiveRun{}, err
		}
		tracers.BridgeSched(w.Machine(), w.Runtime())
		if err := b.StartInit(); err != nil {
			return adaptiveRun{}, err
		}
		if err := b.StartRT(); err != nil {
			return adaptiveRun{}, err
		}
		if err := b.StartKernel(true); err != nil {
			return adaptiveRun{}, err
		}
		BuildBoth(1)(w)
		b.StopInit()
		var kc trace.KindCounter
		drains, ringDrains, minP, maxP, err := drive(w, b, &kc)
		if err != nil {
			return adaptiveRun{}, err
		}
		return adaptiveRun{
			drains: drains, ringDrains: ringDrains,
			events: kc.Total(), lost: b.Lost(),
			minPeriod: minP, maxPeriod: maxP,
		}, nil
	}
	policy := func() tracers.DrainPolicy {
		return tracers.DrainPolicy{
			Capacity:   adaptiveCapacity,
			TargetFill: 0.5,
			Min:        cfg.Duration / 128,
			Max:        cfg.Duration / sim.Duration(adaptiveFixedDrains),
		}
	}

	// Fixed cadence: the sweep's lossy operating point.
	fixed, err := session(func(w *rclcpp.World, b *tracers.Bundle, kc *trace.KindCounter) (int, int, sim.Duration, sim.Duration, error) {
		period := cfg.Duration / sim.Duration(adaptiveFixedDrains)
		var elapsed sim.Duration
		for k := 1; k <= adaptiveFixedDrains; k++ {
			target := cfg.Duration * sim.Duration(k) / sim.Duration(adaptiveFixedDrains)
			w.Run(target - elapsed)
			elapsed = target
			if err := b.StreamTo(kc); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		return adaptiveFixedDrains, adaptiveFixedDrains * b.NumRings(), period, period, nil
	})
	if err != nil {
		return Result{}, err
	}
	fixed.mode = "fixed"

	// Adaptive cadence: same capacity, same workload; the scheduler may
	// plan anywhere between duration/128 and the fixed period.
	adaptive, err := session(func(w *rclcpp.World, b *tracers.Bundle, kc *trace.KindCounter) (int, int, sim.Duration, sim.Duration, error) {
		sched := tracers.NewDrainScheduler(b, policy())
		minP, maxP := sim.Duration(0), sim.Duration(0)
		var elapsed sim.Duration
		for elapsed < cfg.Duration {
			step := sched.Interval()
			if rest := cfg.Duration - elapsed; step > rest {
				step = rest
			}
			if minP == 0 || step < minP {
				minP = step
			}
			if step > maxP {
				maxP = step
			}
			w.Run(step)
			elapsed += step
			sched.Observe(step)
			if err := b.StreamTo(kc); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		return sched.Drains(), sched.Drains() * b.NumRings(), minP, maxP, nil
	})
	if err != nil {
		return Result{}, err
	}
	adaptive.mode = "adaptive"

	// Per-ring deadlines: wakeups still track the hottest ring, but each
	// wakeup drains only the rings that are due. A final full drain
	// flushes whatever the tail-end deadlines left pending.
	perRing, err := session(func(w *rclcpp.World, b *tracers.Bundle, kc *trace.KindCounter) (int, int, sim.Duration, sim.Duration, error) {
		sched := tracers.NewDrainScheduler(b, policy())
		minP, maxP := sim.Duration(0), sim.Duration(0)
		var elapsed sim.Duration
		for elapsed < cfg.Duration {
			step := sched.Interval()
			if rest := cfg.Duration - elapsed; step > rest {
				step = rest
			}
			if minP == 0 || step < minP {
				minP = step
			}
			if step > maxP {
				maxP = step
			}
			w.Run(step)
			elapsed += step
			due := sched.AdvancePerRing(step)
			if err := b.StreamDueTo(kc, due.Has); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		if err := b.StreamTo(kc); err != nil {
			return 0, 0, 0, 0, err
		}
		return sched.Drains(), sched.RingDrains() + b.NumRings(), minP, maxP, nil
	})
	if err != nil {
		return Result{}, err
	}
	perRing.mode = "per-ring"

	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: SYN + AVP, %v per run, %d CPUs; per-ring capacity %d\n",
		cfg.Duration, cfg.CPUs, adaptiveCapacity)
	fmt.Fprintf(&sb, "%-10s %-8s %-12s %-14s %-14s %10s %10s\n",
		"mode", "drains", "ring-drains", "min period", "max period", "events", "lost")
	for _, r := range []adaptiveRun{fixed, adaptive, perRing} {
		fmt.Fprintf(&sb, "%-10s %-8d %-12d %-14v %-14v %10d %10d\n",
			r.mode, r.drains, r.ringDrains, r.minPeriod, r.maxPeriod, r.events, r.lost)
	}

	ok := true
	var notes []string
	if fixed.lost == 0 {
		ok = false
		notes = append(notes, "fixed-period baseline lost nothing; operating point uninformative")
	}
	if adaptive.lost != 0 {
		ok = false
		notes = append(notes, fmt.Sprintf("adaptive drain lost %d records", adaptive.lost))
	}
	// The simulation is deterministic and drains don't perturb it, so
	// both runs emit the same stream: adaptive must recover exactly what
	// the fixed run drained plus what it dropped.
	if adaptive.events != fixed.events+int(fixed.lost) {
		ok = false
		notes = append(notes, fmt.Sprintf(
			"adaptive drained %d events, want %d (fixed %d + lost %d)",
			adaptive.events, fixed.events+int(fixed.lost), fixed.events, fixed.lost))
	}
	if perRing.lost != 0 {
		ok = false
		notes = append(notes, fmt.Sprintf("per-ring drain lost %d records", perRing.lost))
	}
	if perRing.events != fixed.events+int(fixed.lost) {
		ok = false
		notes = append(notes, fmt.Sprintf(
			"per-ring drained %d events, want %d (fixed %d + lost %d)",
			perRing.events, fixed.events+int(fixed.lost), fixed.events, fixed.lost))
	}
	if perRing.ringDrains >= adaptive.ringDrains {
		ok = false
		notes = append(notes, fmt.Sprintf(
			"per-ring deadlines did %d ring drains, all-rings adaptive %d; no savings",
			perRing.ringDrains, adaptive.ringDrains))
	}
	return Result{ID: "adaptive-drain",
		Title: "Adaptive drain scheduling vs fixed period (bounded rings)",
		Text:  sb.String(), OK: ok, Notes: notes}, nil
}
