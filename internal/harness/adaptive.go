package harness

import (
	"fmt"
	"strings"

	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// adaptiveCapacity is the bounded-ring operating point the adaptive
// drain is demonstrated at: the tightest capacity of the capacity
// sweep, where fixed-period draining demonstrably loses records.
const adaptiveCapacity = 256

// adaptiveFixedDrains is the fixed-period comparison point: the middle
// drain cadence of the capacity sweep (period = duration/8), lossy at
// adaptiveCapacity on the SYN+AVP workload.
const adaptiveFixedDrains = 8

// adaptiveRun is one measured drain-loop configuration.
type adaptiveRun struct {
	mode      string
	drains    int
	events    int
	lost      uint64
	minPeriod sim.Duration
	maxPeriod sim.Duration
}

// AdaptiveDrainExperiment (E12) closes the capacity-planning loop: at a
// (capacity, period) point where the fixed-period sweep loses records,
// a DrainScheduler driven by per-ring pending high-water marks starts
// from a short calibration window, plans each next period for the
// observed fill rate, and recovers the full event stream with zero
// overruns — without hand-tuning the cadence to the workload.
func AdaptiveDrainExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	session := func(drive func(w *rclcpp.World, b *tracers.Bundle, kc *trace.KindCounter) (int, sim.Duration, sim.Duration, error)) (adaptiveRun, error) {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
		b, err := tracers.NewBundleCapacity(w.Runtime(), adaptiveCapacity)
		if err != nil {
			return adaptiveRun{}, err
		}
		tracers.BridgeSched(w.Machine(), w.Runtime())
		if err := b.StartInit(); err != nil {
			return adaptiveRun{}, err
		}
		if err := b.StartRT(); err != nil {
			return adaptiveRun{}, err
		}
		if err := b.StartKernel(true); err != nil {
			return adaptiveRun{}, err
		}
		BuildBoth(1)(w)
		b.StopInit()
		var kc trace.KindCounter
		drains, minP, maxP, err := drive(w, b, &kc)
		if err != nil {
			return adaptiveRun{}, err
		}
		return adaptiveRun{
			drains: drains, events: kc.Total(), lost: b.Lost(),
			minPeriod: minP, maxPeriod: maxP,
		}, nil
	}

	// Fixed cadence: the sweep's lossy operating point.
	fixed, err := session(func(w *rclcpp.World, b *tracers.Bundle, kc *trace.KindCounter) (int, sim.Duration, sim.Duration, error) {
		period := cfg.Duration / sim.Duration(adaptiveFixedDrains)
		var elapsed sim.Duration
		for k := 1; k <= adaptiveFixedDrains; k++ {
			target := cfg.Duration * sim.Duration(k) / sim.Duration(adaptiveFixedDrains)
			w.Run(target - elapsed)
			elapsed = target
			if err := b.StreamTo(kc); err != nil {
				return 0, 0, 0, err
			}
		}
		return adaptiveFixedDrains, period, period, nil
	})
	if err != nil {
		return Result{}, err
	}
	fixed.mode = "fixed"

	// Adaptive cadence: same capacity, same workload; the scheduler may
	// plan anywhere between duration/128 and the fixed period.
	adaptive, err := session(func(w *rclcpp.World, b *tracers.Bundle, kc *trace.KindCounter) (int, sim.Duration, sim.Duration, error) {
		sched := tracers.NewDrainScheduler(b, tracers.DrainPolicy{
			Capacity:   adaptiveCapacity,
			TargetFill: 0.5,
			Min:        cfg.Duration / 128,
			Max:        cfg.Duration / sim.Duration(adaptiveFixedDrains),
		})
		minP, maxP := sim.Duration(0), sim.Duration(0)
		var elapsed sim.Duration
		for elapsed < cfg.Duration {
			step := sched.Interval()
			if rest := cfg.Duration - elapsed; step > rest {
				step = rest
			}
			if minP == 0 || step < minP {
				minP = step
			}
			if step > maxP {
				maxP = step
			}
			w.Run(step)
			elapsed += step
			sched.Observe(step)
			if err := b.StreamTo(kc); err != nil {
				return 0, 0, 0, err
			}
		}
		return sched.Drains(), minP, maxP, nil
	})
	if err != nil {
		return Result{}, err
	}
	adaptive.mode = "adaptive"

	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: SYN + AVP, %v per run, %d CPUs; per-ring capacity %d\n",
		cfg.Duration, cfg.CPUs, adaptiveCapacity)
	fmt.Fprintf(&sb, "%-10s %-8s %-14s %-14s %10s %10s\n",
		"mode", "drains", "min period", "max period", "events", "lost")
	for _, r := range []adaptiveRun{fixed, adaptive} {
		fmt.Fprintf(&sb, "%-10s %-8d %-14v %-14v %10d %10d\n",
			r.mode, r.drains, r.minPeriod, r.maxPeriod, r.events, r.lost)
	}

	ok := true
	var notes []string
	if fixed.lost == 0 {
		ok = false
		notes = append(notes, "fixed-period baseline lost nothing; operating point uninformative")
	}
	if adaptive.lost != 0 {
		ok = false
		notes = append(notes, fmt.Sprintf("adaptive drain lost %d records", adaptive.lost))
	}
	// The simulation is deterministic and drains don't perturb it, so
	// both runs emit the same stream: adaptive must recover exactly what
	// the fixed run drained plus what it dropped.
	if adaptive.events != fixed.events+int(fixed.lost) {
		ok = false
		notes = append(notes, fmt.Sprintf(
			"adaptive drained %d events, want %d (fixed %d + lost %d)",
			adaptive.events, fixed.events+int(fixed.lost), fixed.events, fixed.lost))
	}
	return Result{ID: "adaptive-drain",
		Title: "Adaptive drain scheduling vs fixed period (bounded rings)",
		Text:  sb.String(), OK: ok, Notes: notes}, nil
}
