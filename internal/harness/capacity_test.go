package harness

import (
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

func TestCapacityPlanExperiment(t *testing.T) {
	r, err := CapacityPlanExperiment(Config{Runs: 1, Duration: 6 * sim.Second, CPUs: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("capacity plan checks failed:\n%s\nnotes: %v", r.Text, r.Notes)
	}
	for _, want := range []string{"unbounded", "capacity", "per-CPU losses"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("capacity plan output missing %q:\n%s", want, r.Text)
		}
	}
}

// TestCapacityPlanDeterministic pins the report text: the sweep fans out
// over a worker pool, and the rendered table must not depend on worker
// scheduling.
func TestCapacityPlanDeterministic(t *testing.T) {
	cfg := Config{Runs: 1, Duration: 3 * sim.Second, CPUs: 4, Seed: 5}
	seq := cfg
	seq.Workers = 1
	par := cfg
	par.Workers = 4
	a, err := CapacityPlanExperiment(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CapacityPlanExperiment(par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Fatalf("report differs across worker counts:\n--- sequential ---\n%s--- parallel ---\n%s", a.Text, b.Text)
	}
}
