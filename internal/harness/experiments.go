package harness

import (
	"fmt"
	"math"
	"strings"

	"github.com/tracesynth/rostracer/internal/analysis"
	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/metrics"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// TableIExperiment (E1) regenerates Table I: the probe inventory, with
// every program loaded through the verifier and demonstrably firing on a
// small pipeline.
func TableIExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	// An inventory only needs per-kind tallies: stream the session into a
	// counting sink, never materializing the trace.
	var kc trace.KindCounter
	_, err := RunSessionInto(cfg.Seed, 2, 2*sim.Second, true, func(w *rclcpp.World) {
		apps.BuildSYN(w, apps.SYNConfig{})
	}, &kc)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-20s %-28s %8s  %s\n", "No.", "ROS2 lib", "Function", "events", "purpose")
	ok := true
	for _, p := range tracers.TableI {
		n := kc.Count(p.EventKind)
		if n == 0 {
			ok = false
		}
		fmt.Fprintf(&b, "%-4s %-20s %-28s %8d  %s\n", p.No, p.Lib, p.Func, n, p.Purpose)
	}
	fmt.Fprintf(&b, "%-4s %-20s %-28s %8d  %s\n", "-", "kernel", "sched_switch",
		kc.Count(trace.KindSchedSwitch), "scheduler events (PID-filtered)")
	return Result{ID: "tableI", Title: "Inserted probes in ROS2 (Table I)", Text: b.String(), OK: ok}, nil
}

// Fig3aExperiment (E2) regenerates the SYN DAG of Fig. 3a from merged
// per-run DAGs.
func Fig3aExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	dags, err := runSeries(cfg.Workers, cfg.Runs, func(run int) (*core.DAG, error) {
		sink := core.NewSynthesizeSink()
		if _, err := RunSessionInto(cfg.Seed+uint64(run), cfg.CPUs, cfg.Duration, true,
			func(w *rclcpp.World) {
				apps.BuildSYN(w, apps.SYNConfig{})
			}, sink); err != nil {
			return nil, err
		}
		return sink.DAG(), nil
	})
	if err != nil {
		return Result{}, err
	}
	d := core.MergeDAGs(dags...)
	ok := len(d.Vertices) == apps.SYNExpectedVertices && len(d.Edges()) == apps.SYNExpectedEdges

	sv3 := 0
	for _, k := range d.VertexKeys() {
		if v := d.Vertices[k]; v.Type == core.CBService && strings.Contains(k, "sv3") {
			sv3++
		}
	}
	var b strings.Builder
	b.WriteString(core.Summary(d))
	fmt.Fprintf(&b, "scenario (iv): sv3 vertices = %d (want 2)\n", sv3)
	if sv3 != 2 {
		ok = false
	}
	return Result{ID: "fig3a", Title: "SYN callbacks and precedence relations (Fig. 3a)",
		Text: b.String(), OK: ok,
		Notes: []string{core.ToDOT(d, "SYN")}}, nil
}

// Fig3bExperiment (E3) regenerates the AVP localization DAG of Fig. 3b.
func Fig3bExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	dags, err := runSeries(cfg.Workers, cfg.Runs, func(run int) (*core.DAG, error) {
		sink := core.NewSynthesizeSink()
		if _, err := RunSessionInto(cfg.Seed+uint64(run), cfg.CPUs, cfg.Duration, true,
			func(w *rclcpp.World) {
				apps.BuildAVP(w, apps.AVPConfig{})
			}, sink); err != nil {
			return nil, err
		}
		return sink.DAG(), nil
	})
	if err != nil {
		return Result{}, err
	}
	d := core.MergeDAGs(dags...)
	// Fig. 3b: 6 callbacks in 5 nodes plus the AND junction; a single
	// linear structure with the two filter chains joining at the fusion.
	ok := len(d.Vertices) == 7 && len(d.Edges()) == 6
	var b strings.Builder
	b.WriteString(core.Summary(d))
	chains := analysis.Chains(d, 0)
	fmt.Fprintf(&b, "chains: %d (front and rear)\n", len(chains))
	if len(chains) != 2 {
		ok = false
	}
	return Result{ID: "fig3b", Title: "AVP localization DAG (Fig. 3b)", Text: b.String(), OK: ok,
		Notes: []string{core.ToDOT(d, "AVP localization")}}, nil
}

// tableIIPaper holds the paper's Table II in milliseconds for side-by-side
// reporting: {mBCET, mACET, mWCET}.
var tableIIPaper = map[string][3]float64{
	"cb1": {13.82, 17.1, 19.82},
	"cb2": {23.31, 27.07, 30.5},
	"cb3": {0.41, 3.1, 3.97},
	"cb4": {0.38, 0.62, 3.36},
	"cb5": {6.58, 8.47, 13.36},
	"cb6": {2.78, 25.64, 60.93},
}

// avpVertexFor maps Table II's rows to merged-DAG vertices.
func avpVertexFor(d *core.DAG, cb string) *core.Vertex {
	switch cb {
	case "cb1":
		return d.VertexByLabelSubstring(apps.NodeFilterRear + "|sub")
	case "cb2":
		return d.VertexByLabelSubstring(apps.NodeFilterFront + "|sub")
	case "cb3":
		return d.VertexByLabelSubstring(apps.NodeFusion + "|sub|" + apps.TopicFrontFiltered)
	case "cb4":
		return d.VertexByLabelSubstring(apps.NodeFusion + "|sub|" + apps.TopicRearFiltered)
	case "cb5":
		return d.VertexByLabelSubstring(apps.NodeVoxelGrid + "|sub")
	case "cb6":
		return d.VertexByLabelSubstring(apps.NodeLocalizer + "|sub")
	}
	return nil
}

// tableIINodeOf labels Table II rows.
var tableIINodeOf = map[string]string{
	"cb1": apps.NodeFilterRear, "cb2": apps.NodeFilterFront,
	"cb3": apps.NodeFusion, "cb4": apps.NodeFusion,
	"cb5": apps.NodeVoxelGrid, "cb6": apps.NodeLocalizer,
}

// runAVPSeries runs AVP+SYN concurrently cfg.Runs times and returns the
// per-run DAGs (the experiment pipeline shared by Table II and Fig. 4).
func runAVPSeries(cfg Config) ([]*core.DAG, []*Session, error) {
	type avpRun struct {
		dag  *core.DAG
		sess *Session
	}
	runs, err := runSeries(cfg.Workers, cfg.Runs, func(run int) (avpRun, error) {
		sink := core.NewSynthesizeSink()
		s, err := RunSessionInto(cfg.Seed+uint64(run), cfg.CPUs, cfg.Duration, true,
			BuildBoth(loadScaleForRun(run)), sink)
		if err != nil {
			return avpRun{}, err
		}
		d := sink.DAG()
		s.World = nil // release the heavy simulation state
		s.Bundle = nil
		return avpRun{dag: d, sess: s}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	dags := make([]*core.DAG, len(runs))
	sessions := make([]*Session, len(runs))
	for i, r := range runs {
		dags[i] = r.dag
		sessions[i] = r.sess
	}
	return dags, sessions, nil
}

// TableIIExperiment (E4) regenerates Table II: measured execution-time
// statistics of the six AVP callbacks over cfg.Runs runs, merged.
func TableIIExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	dags, _, err := runAVPSeries(cfg)
	if err != nil {
		return Result{}, err
	}
	d := core.MergeDAGs(dags...)

	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-28s %10s %10s %10s   %s\n", "CB", "Node", "mBCET", "mACET", "mWCET", "paper (B/A/W)")
	ok := true
	rows := []string{"cb1", "cb2", "cb3", "cb4", "cb5", "cb6"}
	for _, cb := range rows {
		v := avpVertexFor(d, cb)
		if v == nil {
			ok = false
			fmt.Fprintf(&b, "%-4s MISSING\n", cb)
			continue
		}
		p := tableIIPaper[cb]
		fmt.Fprintf(&b, "%-4s %-28s %10.2f %10.2f %10.2f   %.2f/%.2f/%.2f\n",
			cb, tableIINodeOf[cb],
			v.Stats.BCET().Milliseconds(), v.Stats.ACET().Milliseconds(), v.Stats.WCET().Milliseconds(),
			p[0], p[1], p[2])
		// Shape check: within a generous factor of the paper's values
		// (the substrate is a simulator; orderings matter, not decimals).
		if !within(v.Stats.ACET().Milliseconds(), p[1], 0.5) {
			ok = false
		}
	}
	// Ordering claims.
	cb2 := avpVertexFor(d, "cb2")
	cb1 := avpVertexFor(d, "cb1")
	cb6 := avpVertexFor(d, "cb6")
	if cb1 != nil && cb2 != nil && cb6 != nil {
		if !(cb2.Stats.ACET() > cb1.Stats.ACET()) {
			ok = false
		}
		if !(cb6.Stats.WCET() > cb2.Stats.WCET()) {
			ok = false
		}
	}
	return Result{ID: "tableII", Title: "Execution times of AVP callbacks (Table II)",
		Text: b.String(), OK: ok}, nil
}

func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/want <= tol
}

// Fig4Experiment (E5) regenerates Fig. 4: the evolution of cumulative
// mBCET / mACET / mWCET with the number of runs for cb1, cb2, cb5, cb6.
func Fig4Experiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	dags, _, err := runAVPSeries(cfg)
	if err != nil {
		return Result{}, err
	}
	cbs := []string{"cb1", "cb2", "cb5", "cb6"}
	series := make(map[string][][3]float64) // cb -> per-run {B, A, W} cumulative

	var acc *core.DAG
	for _, d := range dags {
		if acc == nil {
			acc = d
		} else {
			acc = core.MergeDAGs(acc, d)
		}
		for _, cb := range cbs {
			v := avpVertexFor(acc, cb)
			if v == nil {
				continue
			}
			series[cb] = append(series[cb], [3]float64{
				v.Stats.BCET().Milliseconds(),
				v.Stats.ACET().Milliseconds(),
				v.Stats.WCET().Milliseconds(),
			})
		}
	}

	var b strings.Builder
	b.WriteString("run")
	for _, cb := range cbs {
		fmt.Fprintf(&b, ",%s_mBCET,%s_mACET,%s_mWCET", cb, cb, cb)
	}
	b.WriteString("\n")
	for run := 0; run < cfg.Runs; run++ {
		fmt.Fprintf(&b, "%d", run+1)
		for _, cb := range cbs {
			s := series[cb]
			if run < len(s) {
				fmt.Fprintf(&b, ",%.2f,%.2f,%.2f", s[run][0], s[run][1], s[run][2])
			} else {
				b.WriteString(",,,")
			}
		}
		b.WriteString("\n")
	}

	// Shape checks: mWCET non-decreasing and growing then plateauing;
	// mACET stabilizes (last-quarter drift small); mBCET non-increasing.
	ok := true
	var notes []string
	for _, cb := range cbs {
		s := series[cb]
		if len(s) < 2 {
			ok = false
			continue
		}
		for i := 1; i < len(s); i++ {
			if s[i][2] < s[i-1][2]-1e-9 {
				ok = false
				notes = append(notes, fmt.Sprintf("%s mWCET decreased at run %d", cb, i+1))
			}
			if s[i][0] > s[i-1][0]+1e-9 {
				ok = false
				notes = append(notes, fmt.Sprintf("%s mBCET increased at run %d", cb, i+1))
			}
		}
		growth := (s[len(s)-1][2] - s[0][2]) / s[0][2]
		notes = append(notes, fmt.Sprintf("%s mWCET grew %.1f%% from run 1 to run %d", cb, 100*growth, len(s)))
		// mACET drift across the last quarter must be small (<5%).
		q := 3 * len(s) / 4
		drift := math.Abs(s[len(s)-1][1]-s[q][1]) / s[q][1]
		if drift > 0.05 {
			ok = false
			notes = append(notes, fmt.Sprintf("%s mACET still drifting %.1f%% in final quarter", cb, 100*drift))
		}
	}
	return Result{ID: "fig4", Title: "Timing attributes improve with more traces (Fig. 4)",
		Text: b.String(), OK: ok, Notes: notes}, nil
}

// OverheadsExperiment (E6) regenerates the Sec. VI tracing-overheads
// paragraph: trace volume for 60 s of SYN+AVP, probe CPU share relative
// to application load, and the kernel-event filtering reduction.
func OverheadsExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	duration := 60 * sim.Second

	buildBusyHost := func(w *rclcpp.World) {
		BuildBoth(1)(w)
		// A busy host: untraced processes whose switches the filtered
		// kernel tracer must drop.
		SpawnChatter(w, 24, 2*sim.Millisecond)
	}
	// Intern-table traffic bracket: the counters are process-global, so
	// only the delta over this experiment is attributable to it. A capped
	// delta means name decoding fell back to per-record allocation — the
	// first place to look when the drain's allocation profile regresses.
	// The bracket runs through the exported gauges and the default
	// intern-capped-growth delta rule, so the experiment exercises the
	// same alert an operator would see on /metrics.
	hits0, misses0, _ := trace.InternStats()
	ireg := metrics.NewRegistry()
	ipm := metrics.NewPipelineMetrics(ireg)
	ialerts := metrics.NewAlerts(ireg, metrics.DefaultAlertRules())
	ipm.UpdateIntern()
	ialerts.Evaluate() // baseline round for the delta rules

	// The filtered and unfiltered sessions are independent worlds with the
	// same seed; run them as a two-run series so they fan out too. Only
	// volume and cost counters matter here, so the traces stream into
	// counting sinks and are never held.
	sessions, err := runSeries(cfg.Workers, 2, func(run int) (*Session, error) {
		var kc trace.KindCounter
		return RunSessionInto(cfg.Seed, cfg.CPUs, duration, run == 0, buildBusyHost, &kc)
	})
	if err != nil {
		return Result{}, err
	}
	filtered, unfiltered := sessions[0], sessions[1]

	probeCores := filtered.ProbeCostNs / float64(duration)
	appCores := filtered.AppCPUNs / float64(duration)
	_ = unfiltered

	// Sec. II-B comparison: the same workload, user-space function tracing
	// only (no kernel tracer), through eBPF uprobes vs CARET-style
	// LD_PRELOAD redirection.
	ebpfPerEvent, redirPerEvent, err := runRedirectBaseline(cfg, duration)
	if err != nil {
		return Result{}, err
	}
	share := 0.0
	if appCores > 0 {
		share = probeCores / appCores
	}
	reduction := float64(unfiltered.TraceBytes) / float64(filtered.TraceBytes)

	var b strings.Builder
	fmt.Fprintf(&b, "traced span: %v of SYN + AVP localization (paper: 60 s)\n", duration)
	fmt.Fprintf(&b, "trace volume (filtered kernel): %.2f MB (paper: 9 MB)\n",
		float64(filtered.TraceBytes)/1e6)
	fmt.Fprintf(&b, "probe cost: %.4f CPU cores (paper: 0.008 cores)\n", probeCores)
	fmt.Fprintf(&b, "application load: %.3f cores; probe share = %.2f%% of app load (paper: 0.3%%)\n",
		appCores, 100*share)
	fmt.Fprintf(&b, "trace volume, unfiltered kernel events: %.2f MB -> filtering reduces total %.1fx\n",
		float64(unfiltered.TraceBytes)/1e6, reduction)
	fmt.Fprintf(&b, "user-space tracing cost per event (Sec. II-B): eBPF uprobes %.0f ns vs LD_PRELOAD redirection %.0f ns (%.1fx)\n",
		ebpfPerEvent, redirPerEvent, redirPerEvent/ebpfPerEvent)

	ok := share < 0.05 && reduction > 3 && filtered.TraceBytes > 0 &&
		redirPerEvent > ebpfPerEvent

	// The volume metric now aggregates per-CPU rings; its per-CPU
	// breakdown must sum back to the total, and unbounded rings must not
	// have dropped anything. Healthy sessions add no note, so the figure
	// text stays byte-identical.
	var notes []string
	for _, s := range []*Session{filtered, unfiltered} {
		var sum uint64
		for _, n := range s.BytesPerCPU {
			sum += n
		}
		if sum != s.TraceBytes {
			ok = false
			notes = append(notes, fmt.Sprintf("per-CPU byte accounting broken: rings sum to %d, total %d", sum, s.TraceBytes))
		}
		if s.LostRecords > 0 {
			ok = false
			notes = append(notes, fmt.Sprintf("%d records lost on unbounded rings", s.LostRecords))
		}
	}
	// Interning must have absorbed the name decoding: any capped lookup
	// re-paid a per-record allocation on the drain path. The check is the
	// default intern-capped-growth alert evaluated over the exported
	// gauges. Healthy runs add no note (the counters land in Notes, not
	// Text, because they are process-global and would break figure-text
	// byte equivalence).
	ipm.UpdateIntern()
	ialerts.Evaluate()
	for _, st := range ialerts.Fired() {
		if st.Rule.Name != "intern-capped-growth" {
			continue // other defaults have no sources wired here
		}
		hits1, misses1, _ := trace.InternStats()
		ok = false
		notes = append(notes, fmt.Sprintf(
			"ALERT %s: %.0f lookups fell back to allocation (hits +%d, misses +%d) — drain B/op is regressing here",
			st.Rule.Name, st.Last, hits1-hits0, misses1-misses0))
	}
	return Result{ID: "overheads", Title: "Tracing overheads (Sec. VI)", Text: b.String(), OK: ok, Notes: notes}, nil
}

// runRedirectBaseline traces the same SYN+AVP workload twice with only
// user-space function tracing — once through the eBPF ROS2-RT probes,
// once through the redirection shim — and returns the per-event costs.
func runRedirectBaseline(cfg Config, duration sim.Duration) (ebpfPerEvent, redirPerEvent float64, err error) {
	// eBPF, ROS2-RT only (no kernel tracer).
	we := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
	be, err := tracers.NewBundle(we.Runtime())
	if err != nil {
		return 0, 0, err
	}
	if err := be.StartRT(); err != nil {
		return 0, 0, err
	}
	BuildBoth(1)(we)
	we.Run(duration)
	var kc trace.KindCounter
	if err := be.StreamTo(&kc); err != nil {
		return 0, 0, err
	}
	if kc.Total() > 0 {
		ebpfPerEvent = we.Runtime().CostNs() / float64(kc.Total())
	}

	// LD_PRELOAD redirection.
	wr := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
	redirect := tracers.NewRedirectTracer(wr.Runtime())
	redirect.Start()
	BuildBoth(1)(wr)
	wr.Run(duration)
	if n := len(redirect.Events()); n > 0 {
		redirPerEvent = redirect.CostNs() / float64(n)
	}
	return ebpfPerEvent, redirPerEvent, nil
}

// Fig2Experiment (E7) exercises the deployment strategies of Fig. 2:
// segmented sessions, merge-traces-then-synthesize vs
// synthesize-then-merge-DAGs, and multi-mode models.
func Fig2Experiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var b strings.Builder
	ok := true

	// (a) Segmented collection: one long run drained in 4 segments equals
	// one drain at the end. The segmented side runs the production
	// streaming shape — every periodic drain feeds the same incremental
	// synthesis sink, and no segment (let alone the merged trace) is ever
	// materialized.
	dSeg, err := func() (*core.DAG, error) {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cfg.CPUs, Seed: cfg.Seed})
		bd, err := tracers.NewBundle(w.Runtime())
		if err != nil {
			return nil, err
		}
		tracers.BridgeSched(w.Machine(), w.Runtime())
		if err := bd.StartInit(); err != nil {
			return nil, err
		}
		if err := bd.StartRT(); err != nil {
			return nil, err
		}
		if err := bd.StartKernel(true); err != nil {
			return nil, err
		}
		apps.BuildAVP(w, apps.AVPConfig{})
		bd.StopInit()
		sink := core.NewSynthesizeSink()
		for i := 0; i < 4; i++ {
			w.Run(cfg.Duration / 4)
			if err := bd.StreamTo(sink); err != nil {
				return nil, err
			}
		}
		return sink.DAG(), nil
	}()
	if err != nil {
		return Result{}, err
	}
	whole, err := RunSession(cfg.Seed, cfg.CPUs, cfg.Duration, true, func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{})
	})
	if err != nil {
		return Result{}, err
	}
	dWhole := core.Synthesize(whole.Trace)
	segOK := len(dSeg.Vertices) == len(dWhole.Vertices) && len(dSeg.Edges()) == len(dWhole.Edges())
	fmt.Fprintf(&b, "segmented sessions: %d vertices / %d edges vs whole-run %d / %d -> %v\n",
		len(dSeg.Vertices), len(dSeg.Edges()), len(dWhole.Vertices), len(dWhole.Edges()), segOK)
	ok = ok && segOK

	// (b) Merge strategies: per-run DAGs merged vs per-run synthesis (the
	// strategies coincide per run; across runs the DAG-merge path is the
	// paper's choice). Statistics must be identical either way.
	perRun, err := runSeries(cfg.Workers, min(cfg.Runs, 5), func(run int) (*core.DAG, error) {
		sink := core.NewSynthesizeSink()
		if _, err := RunSessionInto(cfg.Seed+uint64(run), cfg.CPUs, cfg.Duration/2, true,
			func(w *rclcpp.World) {
				apps.BuildAVP(w, apps.AVPConfig{})
			}, sink); err != nil {
			return nil, err
		}
		return sink.DAG(), nil
	})
	if err != nil {
		return Result{}, err
	}
	merged := core.MergeDAGs(perRun...)
	sumInstances := 0
	for _, k := range merged.VertexKeys() {
		sumInstances += merged.Vertices[k].Stats.Count
	}
	perRunSum := 0
	for _, d := range perRun {
		for _, k := range d.VertexKeys() {
			perRunSum += d.Vertices[k].Stats.Count
		}
	}
	mergeOK := sumInstances == perRunSum && len(merged.Vertices) == len(perRun[0].Vertices)
	fmt.Fprintf(&b, "DAG merge preserves instances: %d == %d -> %v\n", sumInstances, perRunSum, mergeOK)
	ok = ok && mergeOK

	// (c) Multi-mode: a degraded mode (front LIDAR absent) yields a
	// different DAG; per-mode merging keeps them apart.
	mm := core.NewMultiModeDAG()
	mm.AddTrace("nominal", whole.Trace)
	degraded, err := RunSession(cfg.Seed+99, cfg.CPUs, cfg.Duration, true, func(w *rclcpp.World) {
		buildAVPDegraded(w)
	})
	if err != nil {
		return Result{}, err
	}
	mm.AddTrace("front-lidar-failed", degraded.Trace)
	nomV := len(mm.Modes["nominal"].Vertices)
	degV := len(mm.Modes["front-lidar-failed"].Vertices)
	modeOK := nomV == 7 && degV < nomV
	fmt.Fprintf(&b, "multi-mode: nominal %d vertices, degraded %d -> %v\n", nomV, degV, modeOK)
	ok = ok && modeOK

	return Result{ID: "fig2", Title: "Deployment & trace-processing strategies (Fig. 2)",
		Text: b.String(), OK: ok}, nil
}

// buildAVPDegraded is AVP with the front LIDAR silent: the fusion never
// completes, so downstream callbacks never run — a distinct operating
// mode, as in Fig. 2's per-scenario merging.
func buildAVPDegraded(w *rclcpp.World) {
	apps.BuildAVP(w, apps.AVPConfig{NoFrontSensor: true})
}

// AblationServiceExperiment (E8): spurious chains of the naive
// single-vertex service model vs the paper's per-caller split.
func AblationServiceExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	mb := core.NewModelBuilder()
	_, err := RunSessionInto(cfg.Seed, cfg.CPUs, cfg.Duration, true, func(w *rclcpp.World) {
		apps.BuildSYN(w, apps.SYNConfig{})
	}, mb)
	if err != nil {
		return Result{}, err
	}
	m := mb.Finish()
	proper := core.BuildDAG(m)
	naive := core.BuildDAGNaive(m)
	nSpur, spurious := analysis.SpuriousChains(proper, naive)

	var b strings.Builder
	fmt.Fprintf(&b, "chains (split model):  %d\n", len(analysis.Chains(proper, 0)))
	fmt.Fprintf(&b, "chains (naive model):  %d\n", len(analysis.Chains(naive, 0)))
	fmt.Fprintf(&b, "spurious chains introduced by the naive model: %d\n", nSpur)
	for i, c := range spurious {
		if i >= 4 {
			fmt.Fprintf(&b, "  ... (%d more)\n", nSpur-4)
			break
		}
		fmt.Fprintf(&b, "  spurious: %s\n", c)
	}
	return Result{ID: "ablation-service", Title: "Service modeling ablation (Sec. I example)",
		Text: b.String(), OK: nSpur > 0}, nil
}

// AblationSyncExperiment (E9): with the AND junction removed, the fusion
// output looks like an OR junction downstream — the wrong triggering
// semantics for sensor fusion.
func AblationSyncExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	// Merge several runs so both sync callbacks have completed sets at
	// least once (arrival order varies with the load).
	models, err := runSeries(cfg.Workers, min(cfg.Runs, 10), func(run int) (*core.Model, error) {
		mb := core.NewModelBuilder()
		if _, err := RunSessionInto(cfg.Seed+uint64(run), cfg.CPUs, cfg.Duration, true,
			BuildBoth(loadScaleForRun(run)), mb); err != nil {
			return nil, err
		}
		return mb.Finish(), nil
	})
	if err != nil {
		return Result{}, err
	}

	var properDAGs, naiveDAGs []*core.DAG
	for _, m := range models {
		properDAGs = append(properDAGs, core.BuildDAG(m))
		// Naive: ignore the sync markers entirely.
		clone := &core.Model{NodeOf: m.NodeOf}
		for _, cb := range m.Callbacks {
			c := *cb
			c.IsSync = false
			clone.Callbacks = append(clone.Callbacks, &c)
		}
		naiveDAGs = append(naiveDAGs, core.BuildDAG(clone))
	}
	proper := core.MergeDAGs(properDAGs...)
	naive := core.MergeDAGs(naiveDAGs...)

	var b strings.Builder
	andCount, naiveAnd := 0, 0
	for _, k := range proper.VertexKeys() {
		if proper.Vertices[k].IsAnd {
			andCount++
		}
	}
	for _, k := range naive.VertexKeys() {
		if naive.Vertices[k].IsAnd {
			naiveAnd++
		}
	}
	fmt.Fprintf(&b, "split model: %d AND junction(s); naive model: %d\n", andCount, naiveAnd)

	// In the proper model the voxel grid's input edge comes from the AND
	// junction (fires only on complete fusion sets); in the naive model it
	// comes directly from a synchronization callback, losing the
	// and-semantics (and looking like an OR junction whenever both inputs
	// happen to complete sets across runs).
	properVoxel := proper.VertexByLabelSubstring(apps.NodeVoxelGrid + "|sub")
	naiveVoxel := naive.VertexByLabelSubstring(apps.NodeVoxelGrid + "|sub")
	properFromAnd, naiveFromSync := false, false
	if properVoxel != nil {
		for _, e := range proper.InEdges(properVoxel.Key) {
			if proper.Vertices[e.From].IsAnd {
				properFromAnd = true
			}
		}
	}
	if naiveVoxel != nil {
		for _, e := range naive.InEdges(naiveVoxel.Key) {
			from := naive.Vertices[e.From]
			if !from.IsAnd && from.Node == apps.NodeFusion && from.Type == core.CBSubscriber {
				naiveFromSync = true
			}
		}
		fmt.Fprintf(&b, "naive voxel-grid in-edges: %d (OR-marked: %v)\n",
			len(naive.InEdges(naiveVoxel.Key)), naiveVoxel.OrJunction)
	}
	fmt.Fprintf(&b, "proper: voxel fed by AND junction = %v; naive: fed directly by sync CB = %v\n",
		properFromAnd, naiveFromSync)
	ok := andCount == 2 && naiveAnd == 0 && properFromAnd && naiveFromSync
	return Result{ID: "ablation-sync", Title: "Synchronization modeling ablation (Sec. IV)",
		Text: b.String(), OK: ok}, nil
}

// ValidationExperiment (E10) reproduces the paper's measurement
// validation: SYN's constant designed loads are recovered exactly from
// traces for every instance, across varying interference.
func ValidationExperiment(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var b strings.Builder
	ok := true
	totalInstances := 0
	var maxErr sim.Duration
	var maxInflation float64

	type runCheck struct {
		instances    int
		maxErr       sim.Duration
		maxInflation float64
		exact        bool
	}
	checks, err := runSeries(cfg.Workers, min(cfg.Runs, 10), func(run int) (runCheck, error) {
		scale := loadScaleForRun(run)
		mb := core.NewModelBuilder()
		_, err := RunSessionInto(cfg.Seed+uint64(run), 1 /* one CPU forces preemption */, cfg.Duration, true,
			func(w *rclcpp.World) {
				apps.BuildSYN(w, apps.SYNConfig{LoadScale: scale, Prio: 3})
				apps.BackgroundLoad(w, 2, 8, 0, 10*sim.Millisecond, 2*sim.Millisecond)
			}, mb)
		if err != nil {
			return runCheck{}, err
		}
		m := mb.Finish()
		designed := map[string]sim.Duration{}
		for name, d := range apps.SYNDesignedET {
			designed[name] = sim.Duration(float64(d) * scale)
		}
		c := runCheck{exact: true}
		for _, cb := range m.Callbacks {
			if strings.HasPrefix(cb.Node, "bg_load") {
				continue
			}
			want, known := designedFor(cb, designed)
			if !known {
				continue
			}
			for _, inst := range cb.Instances {
				c.instances++
				diff := inst.ET - want
				if diff < 0 {
					diff = -diff
				}
				if diff > c.maxErr {
					c.maxErr = diff
				}
				if diff != 0 {
					c.exact = false
				}
				if want > 0 {
					infl := float64(inst.End.Sub(inst.Start)) / float64(want)
					if infl > c.maxInflation {
						c.maxInflation = infl
					}
				}
			}
		}
		return c, nil
	})
	if err != nil {
		return Result{}, err
	}
	for _, c := range checks {
		totalInstances += c.instances
		if c.maxErr > maxErr {
			maxErr = c.maxErr
		}
		if c.maxInflation > maxInflation {
			maxInflation = c.maxInflation
		}
		ok = ok && c.exact
	}
	fmt.Fprintf(&b, "instances checked: %d\n", totalInstances)
	fmt.Fprintf(&b, "max |measured - designed| = %v (paper: exact agreement validates the framework)\n", maxErr)
	fmt.Fprintf(&b, "max wall-window inflation from preemption = %.2fx (Alg. 2 removes it)\n", maxInflation)
	if totalInstances == 0 {
		ok = false
	}
	if maxInflation <= 1.0 {
		ok = false // no preemption happened; the experiment lost its point
	}
	return Result{ID: "validation", Title: "Measurement validation under interference (Sec. VI)",
		Text: b.String(), OK: ok}, nil
}

// designedFor matches an extracted SYN callback to its designed load.
func designedFor(cb *core.Callback, designed map[string]sim.Duration) (sim.Duration, bool) {
	in := cb.InTopic
	base := in
	if i := strings.LastIndexByte(base, '#'); i >= 0 {
		base = base[:i]
	}
	switch {
	case cb.Type == core.CBTimer && cb.Node == "syn_node1":
		return designed["T1"], true
	case cb.Type == core.CBSubscriber && base == "/t1":
		return designed["SC1"], true
	case cb.Type == core.CBSubscriber && base == "/t3":
		return designed["SC3"], true
	case cb.Type == core.CBService && base == "rq/sv1Request":
		return designed["SV1"], true
	case cb.Type == core.CBService && base == "rq/sv2Request":
		return designed["SV2"], true
	case cb.Type == core.CBService && base == "rq/sv3Request":
		return designed["SV3"], true
	case cb.Type == core.CBClient && base == "rr/sv1Reply":
		return designed["CL1"], true
	case cb.Type == core.CBClient && base == "rr/sv2Reply":
		return designed["CL2"], true
	}
	// Sync subscribers and timers T2/T3 have context-dependent or
	// ambiguous designed values; skip them here.
	return 0, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// All runs every experiment.
func All(cfg Config) ([]Result, error) {
	type exp func(Config) (Result, error)
	var out []Result
	for _, e := range []exp{
		TableIExperiment, Fig3aExperiment, Fig3bExperiment, TableIIExperiment,
		Fig4Experiment, OverheadsExperiment, Fig2Experiment,
		AblationServiceExperiment, AblationSyncExperiment, ValidationExperiment,
		CapacityPlanExperiment, AdaptiveDrainExperiment, ChaosExperiment,
	} {
		r, err := e(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
