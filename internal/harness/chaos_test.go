package harness

import (
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

func TestChaosExperiment(t *testing.T) {
	r, err := ChaosExperiment(Config{Runs: 1, Duration: 4 * sim.Second, CPUs: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if !r.OK {
		t.Fatalf("chaos experiment not OK: %v", r.Notes)
	}
	for _, want := range []string{"ledger:", "fsck clean", "byte-identical to batch"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("chaos text missing %q", want)
		}
	}
}
