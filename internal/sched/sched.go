// Package sched simulates a multi-core preemptive operating-system
// scheduler in virtual time.
//
// Threads (one per ROS2 node in this system, since the paper assumes
// single-threaded executors) run under fixed-priority preemptive scheduling
// with CPU affinities, like SCHED_FIFO on Linux. Every context switch fires
// an observer callback carrying the same fields the kernel publishes in the
// sched:sched_switch tracepoint — CPU, previous/next PID and priority, and
// the previous thread's state — which is exactly the input Algorithm 2 of
// the paper consumes to measure callback execution times.
//
// The machine also keeps independent ground-truth CPU accounting per
// thread, so experiments can verify that trace-based measurement recovers
// the designed execution times exactly.
package sched

import (
	"fmt"
	"sort"

	"github.com/tracesynth/rostracer/internal/sim"
)

// PID identifies a thread. PID 0 is the idle ("swapper") thread.
type PID uint32

// IdlePID is the PID reported in switch events when a CPU goes idle.
const IdlePID PID = 0

// ThreadState enumerates scheduler states.
type ThreadState int

// Thread states.
const (
	StateRunning  ThreadState = iota // on a CPU
	StateRunnable                    // waiting for a CPU
	StateBlocked                     // waiting for a wake-up
	StateExited                      // finished
)

func (s ThreadState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateRunnable:
		return "runnable"
	case StateBlocked:
		return "blocked"
	default:
		return "exited"
	}
}

// PrevState values reported in switch events, mirroring Linux: 0 means the
// previous thread was preempted while still runnable, 1 means it went to
// sleep, 16 means it exited.
const (
	PrevStateRunnable = 0
	PrevStateSleeping = 1
	PrevStateDead     = 16
)

// DemandKind says what a thread wants next.
type DemandKind int

// Demand kinds.
const (
	// DemandCompute asks for Cost nanoseconds of CPU time.
	DemandCompute DemandKind = iota
	// DemandBlock puts the thread to sleep until Wake.
	DemandBlock
	// DemandExit terminates the thread.
	DemandExit
)

// Demand is a thread's next scheduling request.
type Demand struct {
	Kind DemandKind
	Cost sim.Duration
}

// Compute returns a compute demand of d nanoseconds.
func Compute(d sim.Duration) Demand { return Demand{Kind: DemandCompute, Cost: d} }

// Block returns a blocking demand.
func Block() Demand { return Demand{Kind: DemandBlock} }

// Exit returns an exit demand.
func Exit() Demand { return Demand{Kind: DemandExit} }

// Proc is the behavior of a thread. Resume is invoked when the thread
// starts, when a compute demand completes, and when the thread is woken
// from a block; it returns the next demand. Resume runs atomically at one
// virtual instant while the thread holds a CPU, so it may publish messages,
// fire probes, and wake other threads.
type Proc interface {
	Resume(m *Machine) Demand
}

// ProcFunc adapts a function to Proc.
type ProcFunc func(m *Machine) Demand

// Resume implements Proc.
func (f ProcFunc) Resume(m *Machine) Demand { return f(m) }

// Wakeup describes one sched_wakeup occurrence.
type Wakeup struct {
	Time sim.Time
	PID  PID
	Prio int
}

// Switch describes one sched_switch occurrence.
type Switch struct {
	Time      sim.Time
	CPU       int
	PrevPID   PID
	PrevPrio  int
	PrevState int // PrevStateRunnable, PrevStateSleeping or PrevStateDead
	NextPID   PID
	NextPrio  int
}

// Thread is one schedulable entity.
type Thread struct {
	pid      PID
	name     string
	prio     int    // larger = more urgent
	affinity uint64 // bit i set = may run on CPU i
	proc     Proc

	state       ThreadState
	cpu         int // valid when running (or just paused)
	remaining   sim.Duration
	sliceStart  sim.Time
	completion  sim.EventID
	hasEvent    bool
	fifoSeq     uint64
	wakePending bool

	cpuTime sim.Duration // ground truth CPU time consumed
}

// PID returns the thread's identifier.
func (t *Thread) PID() PID { return t.pid }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Priority returns the scheduling priority.
func (t *Thread) Priority() int { return t.prio }

// Affinity returns the CPU affinity mask.
func (t *Thread) Affinity() uint64 { return t.affinity }

// State returns the current scheduler state.
func (t *Thread) State() ThreadState { return t.state }

// CPU returns the processor the thread is running on (or last ran on).
func (t *Thread) CPU() int { return t.cpu }

// CPUTime returns the ground-truth CPU time consumed so far.
func (t *Thread) CPUTime() sim.Duration { return t.cpuTime }

type cpu struct {
	id      int
	running *Thread
}

// Machine is the simulated multiprocessor.
type Machine struct {
	eng     *sim.Engine
	cpus    []*cpu
	threads map[PID]*Thread
	nextPID PID
	seq     uint64

	// OnSwitch, if set, observes every context switch; the kernel tracer
	// attaches here (via the ebpf tracepoint bridge).
	OnSwitch func(Switch)
	// OnWakeup, if set, observes blocked->runnable transitions, feeding
	// the sched_wakeup tracepoint (the waiting-time extension of the
	// paper's Sec. VII).
	OnWakeup func(Wakeup)

	switches uint64
}

// NewMachine creates a machine with numCPUs processors on engine eng.
func NewMachine(eng *sim.Engine, numCPUs int) *Machine {
	if numCPUs <= 0 || numCPUs > 64 {
		panic(fmt.Sprintf("sched: invalid CPU count %d", numCPUs))
	}
	m := &Machine{eng: eng, threads: make(map[PID]*Thread), nextPID: 1000}
	for i := 0; i < numCPUs; i++ {
		m.cpus = append(m.cpus, &cpu{id: i})
	}
	return m
}

// Engine returns the simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// NumCPUs returns the processor count.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// Switches returns the total number of context switches so far.
func (m *Machine) Switches() uint64 { return m.switches }

// AffinityAll is an affinity mask allowing every CPU.
const AffinityAll uint64 = ^uint64(0)

// AffinityCPU returns a mask allowing only the given CPU.
func AffinityCPU(c int) uint64 { return 1 << uint(c) }

// Spawn creates a thread. It becomes runnable immediately; scheduling
// happens when the engine runs.
func (m *Machine) Spawn(name string, prio int, affinity uint64, p Proc) *Thread {
	if affinity == 0 {
		affinity = AffinityAll
	}
	mask := affinity & (uint64(1)<<uint(len(m.cpus)) - 1)
	if len(m.cpus) == 64 {
		mask = affinity
	}
	if mask == 0 {
		panic(fmt.Sprintf("sched: thread %q has empty effective affinity", name))
	}
	t := &Thread{
		pid: m.nextPID, name: name, prio: prio, affinity: mask,
		proc: p, state: StateRunnable, fifoSeq: m.seq,
	}
	m.seq++
	m.nextPID++
	m.threads[t.pid] = t
	// Defer the initial dispatch to an engine event so that spawning
	// during setup (before Run) behaves identically to spawning mid-run.
	m.eng.After(0, m.reschedule)
	return t
}

// Lookup returns the thread with the given PID, or nil.
func (m *Machine) Lookup(pid PID) *Thread { return m.threads[pid] }

// Threads returns all threads sorted by PID.
func (m *Machine) Threads() []*Thread {
	out := make([]*Thread, 0, len(m.threads))
	for _, t := range m.threads {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// Wake makes a blocked thread runnable. Waking a running or runnable
// thread records a pending wake so a concurrent block is absorbed, which
// mirrors the kernel's wake-up race handling.
func (m *Machine) Wake(pid PID) {
	t := m.threads[pid]
	if t == nil || t.state == StateExited {
		return
	}
	switch t.state {
	case StateBlocked:
		t.state = StateRunnable
		t.fifoSeq = m.seq
		m.seq++
		if m.OnWakeup != nil {
			m.OnWakeup(Wakeup{Time: m.eng.Now(), PID: t.pid, Prio: t.prio})
		}
		m.reschedule()
	default:
		t.wakePending = true
	}
}

// reschedule computes the preferred assignment of runnable threads to CPUs
// and applies the difference. Changed CPUs are first paused, then refilled,
// so a migrating thread is never booked on two CPUs at once.
func (m *Machine) reschedule() {
	// Candidates: running + runnable threads, by (priority desc, FIFO asc).
	var cands []*Thread
	for _, t := range m.threads {
		if t.state == StateRunning || t.state == StateRunnable {
			cands = append(cands, t)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].prio != cands[j].prio {
			return cands[i].prio > cands[j].prio
		}
		if cands[i].fifoSeq != cands[j].fifoSeq {
			return cands[i].fifoSeq < cands[j].fifoSeq
		}
		return cands[i].pid < cands[j].pid
	})

	assigned := make([]*Thread, len(m.cpus))
	taken := make([]bool, len(m.cpus))
	place := func(t *Thread, c int) {
		assigned[c] = t
		taken[c] = true
	}
	allowed := func(t *Thread, c int) bool { return t.affinity&(1<<uint(c)) != 0 }
	for _, t := range cands {
		// Prefer the CPU the thread already occupies, then an idle CPU,
		// then any free slot (taking it from a lower-priority occupant).
		if t.state == StateRunning && !taken[t.cpu] && allowed(t, t.cpu) {
			place(t, t.cpu)
			continue
		}
		idle, free := -1, -1
		for _, c := range m.cpus {
			if taken[c.id] || !allowed(t, c.id) {
				continue
			}
			if c.running == nil && idle < 0 {
				idle = c.id
			}
			if free < 0 {
				free = c.id
			}
		}
		switch {
		case idle >= 0:
			place(t, idle)
		case free >= 0:
			place(t, free)
		}
		// No slot: the thread stays runnable.
	}

	// Phase 1: pause every outgoing occupant.
	type change struct {
		c        *cpu
		prev     *Thread
		prevInfo [3]uint64 // pid, prio, state
	}
	var changes []change
	for _, c := range m.cpus {
		if c.running == assigned[c.id] {
			continue
		}
		ch := change{c: c, prev: c.running}
		if p := c.running; p != nil {
			ch.prevInfo = [3]uint64{uint64(p.pid), uint64(p.prio), uint64(prevStateOf(p))}
			m.pause(c)
		}
		changes = append(changes, ch)
	}
	// Phase 2: install incoming threads and emit one switch per CPU.
	for _, ch := range changes {
		next := assigned[ch.c.id]
		m.install(ch.c, next)
		sw := Switch{
			Time:      m.eng.Now(),
			CPU:       ch.c.id,
			PrevPID:   PID(ch.prevInfo[0]),
			PrevPrio:  int(ch.prevInfo[1]),
			PrevState: int(ch.prevInfo[2]),
		}
		if next != nil {
			sw.NextPID = next.pid
			sw.NextPrio = next.prio
		}
		m.switches++
		if m.OnSwitch != nil {
			m.OnSwitch(sw)
		}
	}
}

func prevStateOf(t *Thread) int {
	switch t.state {
	case StateBlocked:
		return PrevStateSleeping
	case StateExited:
		return PrevStateDead
	default:
		return PrevStateRunnable
	}
}

// pause halts the occupant of c, charging its CPU time and cancelling its
// completion event. A still-running occupant becomes runnable (preemption);
// blocked/exited occupants keep their state.
func (m *Machine) pause(c *cpu) {
	t := c.running
	if t == nil {
		return
	}
	ran := m.eng.Now().Sub(t.sliceStart)
	t.cpuTime += ran
	t.remaining -= ran
	if t.remaining < 0 {
		t.remaining = 0
	}
	if t.hasEvent {
		m.eng.Cancel(t.completion)
		t.hasEvent = false
	}
	if t.state == StateRunning {
		t.state = StateRunnable
	}
	c.running = nil
}

// install puts t (possibly nil) on c and schedules its compute completion.
func (m *Machine) install(c *cpu, t *Thread) {
	c.running = t
	if t == nil {
		return
	}
	t.state = StateRunning
	t.cpu = c.id
	t.sliceStart = m.eng.Now()
	d := t.remaining
	if d < 0 {
		d = 0
	}
	t.completion = m.eng.After(d, func() { m.complete(t) })
	t.hasEvent = true
}

// complete handles a thread finishing its current compute demand: account
// the time, ask the Proc for the next demand, and act on it.
func (m *Machine) complete(t *Thread) {
	t.hasEvent = false
	now := m.eng.Now()
	t.cpuTime += now.Sub(t.sliceStart)
	t.remaining = 0
	t.sliceStart = now

	d := t.proc.Resume(m)
	switch d.Kind {
	case DemandCompute:
		if d.Cost < 0 {
			d.Cost = 0
		}
		t.remaining = d.Cost
		// The thread keeps its CPU; a thread continuing to run produces no
		// sched_switch, matching the kernel.
		t.completion = m.eng.After(d.Cost, func() { m.complete(t) })
		t.hasEvent = true
		m.reschedule()

	case DemandBlock:
		if t.wakePending {
			// Absorb the wake: never actually sleep; re-enter Resume at
			// the same instant via a zero-cost compute.
			t.wakePending = false
			t.remaining = 0
			t.completion = m.eng.After(0, func() { m.complete(t) })
			t.hasEvent = true
			return
		}
		t.state = StateBlocked
		m.reschedule()

	case DemandExit:
		t.state = StateExited
		m.reschedule()
	}
}
