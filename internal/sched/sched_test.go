package sched

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

// scriptProc replays a fixed list of demands, then exits.
type scriptProc struct {
	demands []Demand
	i       int
	resumes int
}

func (p *scriptProc) Resume(*Machine) Demand {
	p.resumes++
	if p.i >= len(p.demands) {
		return Exit()
	}
	d := p.demands[p.i]
	p.i++
	return d
}

func collectSwitches(m *Machine) *[]Switch {
	var out []Switch
	m.OnSwitch = func(s Switch) { out = append(out, s) }
	return &out
}

func TestSingleThreadComputeThenExit(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	sws := collectSwitches(m)
	p := &scriptProc{demands: []Demand{Compute(100 * sim.Microsecond)}}
	th := m.Spawn("worker", 10, AffinityAll, p)
	eng.Run(sim.MaxTime)

	if th.State() != StateExited {
		t.Fatalf("state = %v", th.State())
	}
	if th.CPUTime() != 100*sim.Microsecond {
		t.Fatalf("cpu time = %v", th.CPUTime())
	}
	// Expect: idle->worker, worker->idle(dead).
	if len(*sws) != 2 {
		t.Fatalf("switches = %d: %+v", len(*sws), *sws)
	}
	if (*sws)[0].NextPID != th.PID() || (*sws)[0].PrevPID != IdlePID {
		t.Errorf("first switch %+v", (*sws)[0])
	}
	last := (*sws)[1]
	if last.PrevPID != th.PID() || last.PrevState != PrevStateDead || last.NextPID != IdlePID {
		t.Errorf("last switch %+v", last)
	}
}

func TestPriorityPreemption(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	sws := collectSwitches(m)

	low := m.Spawn("low", 1, AffinityAll, &scriptProc{demands: []Demand{Compute(10 * sim.Millisecond)}})
	var high *Thread
	// Spawn the high-priority thread at t=2ms.
	eng.At(sim.Time(2*sim.Millisecond), func() {
		high = m.Spawn("high", 5, AffinityAll, &scriptProc{demands: []Demand{Compute(3 * sim.Millisecond)}})
	})
	eng.Run(sim.MaxTime)

	if low.CPUTime() != 10*sim.Millisecond {
		t.Errorf("low cpu time = %v", low.CPUTime())
	}
	if high.CPUTime() != 3*sim.Millisecond {
		t.Errorf("high cpu time = %v", high.CPUTime())
	}
	// low must finish at 2+3+8 = 13ms.
	var lowDead sim.Time
	for _, s := range *sws {
		if s.PrevPID == low.PID() && s.PrevState == PrevStateDead {
			lowDead = s.Time
		}
	}
	if lowDead != sim.Time(13*sim.Millisecond) {
		t.Errorf("low exited at %v, want 13ms", lowDead)
	}
	// A preemption switch with PrevState runnable must exist.
	foundPreempt := false
	for _, s := range *sws {
		if s.PrevPID == low.PID() && s.NextPID == high.PID() && s.PrevState == PrevStateRunnable {
			foundPreempt = true
		}
	}
	if !foundPreempt {
		t.Errorf("no preemption switch found in %+v", *sws)
	}
}

func TestTwoCPUsRunInParallel(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 2)
	a := m.Spawn("a", 1, AffinityAll, &scriptProc{demands: []Demand{Compute(5 * sim.Millisecond)}})
	b := m.Spawn("b", 1, AffinityAll, &scriptProc{demands: []Demand{Compute(5 * sim.Millisecond)}})
	end := eng.Run(sim.MaxTime)
	if a.State() != StateExited || b.State() != StateExited {
		t.Fatal("threads did not finish")
	}
	if end != sim.Time(5*sim.Millisecond) {
		t.Fatalf("finished at %v, want 5ms (parallel)", end)
	}
}

func TestAffinityPinsThread(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 2)
	sws := collectSwitches(m)
	a := m.Spawn("pinned0", 1, AffinityCPU(0), &scriptProc{demands: []Demand{Compute(4 * sim.Millisecond)}})
	b := m.Spawn("pinned0too", 1, AffinityCPU(0), &scriptProc{demands: []Demand{Compute(4 * sim.Millisecond)}})
	end := eng.Run(sim.MaxTime)
	// Serialized on CPU0 despite CPU1 being idle.
	if end != sim.Time(8*sim.Millisecond) {
		t.Fatalf("finished at %v, want 8ms (serialized)", end)
	}
	for _, s := range *sws {
		if s.CPU != 0 && (s.PrevPID == a.PID() || s.NextPID == a.PID() || s.PrevPID == b.PID() || s.NextPID == b.PID()) {
			t.Fatalf("pinned thread appeared on CPU %d", s.CPU)
		}
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	sws := collectSwitches(m)
	first := m.Spawn("first", 3, AffinityAll, &scriptProc{demands: []Demand{Compute(sim.Millisecond)}})
	second := m.Spawn("second", 3, AffinityAll, &scriptProc{demands: []Demand{Compute(sim.Millisecond)}})
	eng.Run(sim.MaxTime)
	var order []PID
	for _, s := range *sws {
		if s.NextPID != IdlePID {
			order = append(order, s.NextPID)
		}
	}
	if len(order) != 2 || order[0] != first.PID() || order[1] != second.PID() {
		t.Fatalf("dispatch order %v, want [%d %d]", order, first.PID(), second.PID())
	}
}

// blockingProc computes, blocks, computes again after wake, exits.
type blockingProc struct{ phase int }

func (p *blockingProc) Resume(*Machine) Demand {
	p.phase++
	switch p.phase {
	case 1:
		return Compute(sim.Millisecond)
	case 2:
		return Block()
	case 3:
		return Compute(2 * sim.Millisecond)
	default:
		return Exit()
	}
}

func TestBlockAndWake(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	sws := collectSwitches(m)
	p := &blockingProc{}
	th := m.Spawn("blocky", 1, AffinityAll, p)
	eng.At(sim.Time(10*sim.Millisecond), func() { m.Wake(th.PID()) })
	end := eng.Run(sim.MaxTime)

	if th.CPUTime() != 3*sim.Millisecond {
		t.Errorf("cpu time = %v, want 3ms", th.CPUTime())
	}
	if end != sim.Time(12*sim.Millisecond) {
		t.Errorf("end = %v, want 12ms", end)
	}
	foundSleep := false
	for _, s := range *sws {
		if s.PrevPID == th.PID() && s.PrevState == PrevStateSleeping {
			foundSleep = true
			if s.Time != sim.Time(sim.Millisecond) {
				t.Errorf("slept at %v, want 1ms", s.Time)
			}
		}
	}
	if !foundSleep {
		t.Error("no sleeping switch recorded")
	}
}

func TestWakeWhileRunningIsAbsorbed(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	p := &blockingProc{}
	th := m.Spawn("racy", 1, AffinityAll, p)
	// Wake arrives mid-compute, before the block in phase 2.
	eng.At(sim.Time(500*sim.Microsecond), func() { m.Wake(th.PID()) })
	end := eng.Run(sim.MaxTime)
	if th.State() != StateExited {
		t.Fatalf("thread stuck in %v: absorbed wake lost", th.State())
	}
	if end != sim.Time(3*sim.Millisecond) {
		t.Errorf("end = %v, want 3ms (no sleeping)", end)
	}
}

func TestWakeOnBlockedUnknownAndExited(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	th := m.Spawn("x", 1, AffinityAll, &scriptProc{demands: []Demand{Compute(sim.Millisecond)}})
	eng.Run(sim.MaxTime)
	m.Wake(th.PID()) // exited: no-op
	m.Wake(99999)    // unknown: no-op
}

func TestGroundTruthMatchesSegments(t *testing.T) {
	// Sum of [switch-in, switch-out) segments for a thread equals its
	// ground-truth CPU time — the invariant Algorithm 2 depends on.
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	sws := collectSwitches(m)

	victim := m.Spawn("victim", 1, AffinityAll, &scriptProc{demands: []Demand{Compute(20 * sim.Millisecond)}})
	// Three interfering bursts.
	for i := 1; i <= 3; i++ {
		at := sim.Time(i * 4 * int(sim.Millisecond))
		eng.At(at, func() {
			m.Spawn("intruder", 9, AffinityAll, &scriptProc{demands: []Demand{Compute(sim.Millisecond)}})
		})
	}
	eng.Run(sim.MaxTime)

	var total sim.Duration
	var inAt sim.Time
	running := false
	for _, s := range *sws {
		if s.NextPID == victim.PID() {
			inAt = s.Time
			running = true
		}
		if s.PrevPID == victim.PID() && running {
			total += s.Time.Sub(inAt)
			running = false
		}
	}
	if total != victim.CPUTime() {
		t.Fatalf("segment sum %v != ground truth %v", total, victim.CPUTime())
	}
	if victim.CPUTime() != 20*sim.Millisecond {
		t.Fatalf("ground truth %v, want 20ms", victim.CPUTime())
	}
}

func TestZeroCostCompute(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 1)
	p := &scriptProc{demands: []Demand{Compute(0), Compute(0), Compute(sim.Millisecond)}}
	th := m.Spawn("zero", 1, AffinityAll, p)
	eng.Run(sim.MaxTime)
	if th.CPUTime() != sim.Millisecond {
		t.Fatalf("cpu time = %v", th.CPUTime())
	}
	if p.resumes != 4 {
		t.Fatalf("resumes = %d, want 4", p.resumes)
	}
}

func TestMigrationPrefersIdleCPU(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 2)
	low := m.Spawn("low", 1, AffinityAll, &scriptProc{demands: []Demand{Compute(10 * sim.Millisecond)}})
	var high *Thread
	eng.At(sim.Time(sim.Millisecond), func() {
		high = m.Spawn("high", 5, AffinityAll, &scriptProc{demands: []Demand{Compute(sim.Millisecond)}})
	})
	end := eng.Run(sim.MaxTime)
	// With two CPUs the high-priority arrival must not preempt low: both
	// run in parallel and low finishes at 10ms.
	if end != sim.Time(10*sim.Millisecond) {
		t.Fatalf("end = %v, want 10ms", end)
	}
	if low.CPUTime() != 10*sim.Millisecond || high.CPUTime() != sim.Millisecond {
		t.Fatalf("cpu times low=%v high=%v", low.CPUTime(), high.CPUTime())
	}
}

func TestSpawnPanicsOnEmptyAffinity(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty affinity")
		}
	}()
	m.Spawn("bad", 1, AffinityCPU(5), &scriptProc{})
}
