package rcl

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/umem"
)

func TestNewTimerHandleIsItsOwnAddress(t *testing.T) {
	space := umem.NewSpace(9)
	tm := NewTimer(space)
	if tm.CBID == 0 {
		t.Fatal("zero callback handle")
	}
	// The descriptor's first field holds the handle; a probe reading
	// *(u64*)(timer+TimerCBIDOff) must recover it.
	v, err := space.ReadU64(tm.Addr + umem.Addr(TimerCBIDOff))
	if err != nil || v != tm.CBID {
		t.Fatalf("descriptor field = %#x err=%v, want %#x", v, err, tm.CBID)
	}
}

func TestTimersHaveDistinctHandles(t *testing.T) {
	space := umem.NewSpace(10)
	a := NewTimer(space)
	b := NewTimer(space)
	if a.CBID == b.CBID || a.Addr == b.Addr {
		t.Fatalf("handles collide: %+v %+v", a, b)
	}
}

func TestTimerCallFiresP3WithDescriptor(t *testing.T) {
	space := umem.NewSpace(11)
	spaces := map[uint32]*umem.Space{11: space}
	rt := ebpf.NewRuntime(func() int64 { return 42 },
		func(pid uint32) *umem.Space { return spaces[pid] })
	tm := NewTimer(space)

	pb := ebpf.NewPerfBuffer("out", 0)
	fd := rt.RegisterMap(pb)
	p := ebpf.NewAssembler("p3ish").
		LdxCtx(ebpf.R6, ebpf.R1, 0).
		MovReg(ebpf.R1, ebpf.R10).
		AddImm(ebpf.R1, -8).
		MovImm(ebpf.R2, 8).
		MovReg(ebpf.R3, ebpf.R6).
		Call(ebpf.HelperProbeRead). // cbid = *(u64*)descriptor
		MovImm(ebpf.R1, fd).
		MovReg(ebpf.R2, ebpf.R10).
		AddImm(ebpf.R2, -8).
		MovImm(ebpf.R3, 8).
		Call(ebpf.HelperPerfOutput).
		MovImm(ebpf.R0, 0).
		Exit().
		MustAssemble()
	if err := rt.Load(p, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AttachUprobe(SymTimerCall, p); err != nil {
		t.Fatal(err)
	}

	TimerCall(rt, 11, 0, tm)
	recs := pb.Drain()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	got := uint64(0)
	for i := 7; i >= 0; i-- {
		got = got<<8 | uint64(recs[0].Data[i])
	}
	if got != tm.CBID {
		t.Fatalf("probed cbid %#x, want %#x", got, tm.CBID)
	}
}
