// Package rcl simulates the rcl layer, the C core under rclcpp. Only one
// of its functions is probed in the paper: rcl_timer_call (P3), which the
// timer-callback identification relies on because execute_timer itself
// exposes no usable arguments under eBPF.
package rcl

import (
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/umem"
)

// SymTimerCall is the probed timer dispatch function (Table I, P3).
var SymTimerCall = ebpf.Symbol{Lib: "rcl", Func: "rcl_timer_call"}

// TimerCBIDOff is the byte offset of the callback handle in the rcl timer
// descriptor.
const TimerCBIDOff = 0

// Timer is an rcl timer descriptor resident in process memory.
type Timer struct {
	Addr umem.Addr
	CBID uint64
}

// NewTimer materializes a timer descriptor in space; its callback handle
// is the address of a dedicated callback object allocation.
func NewTimer(space *umem.Space) Timer {
	cbObj := space.AllocU64(0)
	w := umem.NewStructWriter(space)
	w.U64(uint64(cbObj)) // TimerCBIDOff
	return Timer{Addr: w.Commit(), CBID: uint64(cbObj)}
}

// TimerCall simulates rcl_timer_call, firing P3 with the timer descriptor
// as argument 0.
func TimerCall(rt *ebpf.Runtime, pid uint32, cpu int, tm Timer) {
	rt.Site(SymTimerCall).FireEntry(pid, cpu, uint64(tm.Addr))
}
