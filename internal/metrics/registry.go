// Package metrics is the tracer's self-observability layer: a small
// streaming metrics registry (counters, gauges, fixed-bucket histograms,
// all atomic cells) with Prometheus text exposition, a trace.Sink that
// folds the event stream into latency/exec-time distributions online,
// threshold alert rules evaluated against the registry, and snapshot
// instrumentation for the pipeline's existing accounting (ring
// fill/lost/bytes, drain periods, the session writer's spill/drop
// ledger, intern-table pressure, sink detachments).
//
// The hot path is allocation-free by construction: a metric cell is one
// or a few atomic words, vec lookups are read-locked map hits on
// canonical (interned) label strings, and the Sink caches cell pointers
// so the per-event fold never touches the registry lock at steady
// state. Everything scrape-shaped (exposition, label sorting, number
// formatting) happens at read time on the scraping goroutine.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone metric cell. Inc/Add grow it on the hot path;
// Set exists for counters fed by snapshotting an external cumulative
// ledger (ring lost counts, writer stats) — such feeds must themselves
// be monotone, which the chaos harness asserts across scrapes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value from an external cumulative source. The
// source must be monotone or the exposition stops being a counter.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value reports the current value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable metric cell.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution with atomic cells. Bounds
// are inclusive upper bounds in the observed unit (nanoseconds for the
// time distributions); observations above the last bound land in the
// implicit +Inf bucket. Cells are per-bucket (non-cumulative); the
// exposition accumulates them into Prometheus `le` semantics at scrape
// time so the hot path is exactly two atomic adds and one increment.
type Histogram struct {
	bounds []int64
	cells  []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Int64
}

// Observe folds one value into the distribution.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.cells[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// DefaultTimeBuckets is the 1-2-5 ladder from 1µs to 10s the time
// distributions (publish latency, callback exec time) use, in
// nanoseconds.
func DefaultTimeBuckets() []int64 {
	out := make([]int64, 0, 22)
	for mag := int64(1_000); mag <= 1_000_000_000; mag *= 10 {
		out = append(out, mag, 2*mag, 5*mag)
	}
	return append(out, 10_000_000_000)
}

// metricKind is the exposition TYPE of one family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or one label dimension. Unlabeled
// metrics store their single cell under the "" key.
type family struct {
	name, help string
	kind       metricKind
	labelKey   string // "" for unlabeled metrics
	bounds     []int64

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// CounterVec is a counter family keyed by one label value.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family keyed by one label value.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family keyed by one label value.
type HistogramVec struct{ f *family }

// With returns the counter cell for the label value, creating it on
// first sight. The returned pointer is stable; hot paths should cache
// it instead of re-resolving per event.
func (v CounterVec) With(label string) *Counter {
	f := v.f
	f.mu.RLock()
	c, ok := f.counters[label]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.counters[label]; ok {
		return c
	}
	c = &Counter{}
	f.counters[label] = c
	return c
}

// With returns the gauge cell for the label value, creating it on first
// sight.
func (v GaugeVec) With(label string) *Gauge {
	f := v.f
	f.mu.RLock()
	g, ok := f.gauges[label]
	f.mu.RUnlock()
	if ok {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok = f.gauges[label]; ok {
		return g
	}
	g = &Gauge{}
	f.gauges[label] = g
	return g
}

// With returns the histogram cell for the label value, creating it on
// first sight.
func (v HistogramVec) With(label string) *Histogram {
	f := v.f
	f.mu.RLock()
	h, ok := f.hists[label]
	f.mu.RUnlock()
	if ok {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok = f.hists[label]; ok {
		return h
	}
	h = newHistogram(f.bounds)
	f.hists[label] = h
	return h
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, cells: make([]atomic.Uint64, len(bounds)+1)}
}

// Registry holds metric families by name. Registration is idempotent:
// re-registering a name returns the existing family (so a per-process
// registry survives sequential sessions re-wiring their metrics), and
// registering it with a different type or label key panics — that is a
// programming error, not an operational condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, labelKey string, bounds []int64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.families[name]; !ok {
			f = &family{
				name: name, help: help, kind: kind, labelKey: labelKey, bounds: bounds,
				counters: make(map[string]*Counter),
				gauges:   make(map[string]*Gauge),
				hists:    make(map[string]*Histogram),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || f.labelKey != labelKey {
		panic(fmt.Sprintf("metrics: %s re-registered as %s{%s}, was %s{%s}",
			name, kind, labelKey, f.kind, f.labelKey))
	}
	return f
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return CounterVec{r.family(name, help, kindCounter, "", nil)}.With("")
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return GaugeVec{r.family(name, help, kindGauge, "", nil)}.With("")
}

// Histogram registers (or returns) the unlabeled histogram name with the
// given inclusive upper bounds.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	return HistogramVec{r.family(name, help, kindHistogram, "", bounds)}.With("")
}

// CounterVec registers (or returns) a counter family with one label
// dimension.
func (r *Registry) CounterVec(name, help, labelKey string) CounterVec {
	return CounterVec{r.family(name, help, kindCounter, labelKey, nil)}
}

// GaugeVec registers (or returns) a gauge family with one label
// dimension.
func (r *Registry) GaugeVec(name, help, labelKey string) GaugeVec {
	return GaugeVec{r.family(name, help, kindGauge, labelKey, nil)}
}

// HistogramVec registers (or returns) a histogram family with one label
// dimension and the given inclusive upper bounds.
func (r *Registry) HistogramVec(name, help, labelKey string, bounds []int64) HistogramVec {
	return HistogramVec{r.family(name, help, kindHistogram, labelKey, bounds)}
}

// Value reads one counter or gauge by family name and label value, for
// alert evaluation. The empty label on a labeled family sums every cell
// — the total a threshold rule usually wants (per-CPU lost counts, say).
// Histograms report their observation count. ok is false when the
// family (or, for a specific label, the cell) does not exist.
func (r *Registry) Value(name, label string) (v float64, ok bool) {
	r.mu.RLock()
	f, found := r.families[name]
	r.mu.RUnlock()
	if !found {
		return 0, false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	sum := func(each func(string) (float64, bool)) (float64, bool) {
		if label != "" || f.labelKey == "" {
			return each(label)
		}
		total, any := 0.0, false
		for l := range f.counters {
			if x, ok := each(l); ok {
				total += x
				any = true
			}
		}
		for l := range f.gauges {
			if x, ok := each(l); ok {
				total += x
				any = true
			}
		}
		for l := range f.hists {
			if x, ok := each(l); ok {
				total += x
				any = true
			}
		}
		return total, any
	}
	switch f.kind {
	case kindCounter:
		return sum(func(l string) (float64, bool) {
			if c, ok := f.counters[l]; ok {
				return float64(c.Value()), true
			}
			return 0, false
		})
	case kindGauge:
		return sum(func(l string) (float64, bool) {
			if g, ok := f.gauges[l]; ok {
				return float64(g.Value()), true
			}
			return 0, false
		})
	default:
		return sum(func(l string) (float64, bool) {
			if h, ok := f.hists[l]; ok {
				return float64(h.Count()), true
			}
			return 0, false
		})
	}
}

// sortedFamilies snapshots the family list in name order for exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
