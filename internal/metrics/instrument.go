package metrics

import (
	"strconv"

	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/service"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// PipelineMetrics bridges the pipeline's existing accounting into the
// registry by snapshot: the drain loop calls the Update* methods once
// per segment (and once at shutdown), copying each cumulative ledger
// into atomic cells. Snapshotting — rather than reading the sources at
// scrape time — is what makes the /metrics endpoint safe to hit from an
// HTTP goroutine while the simulation is mid-drain: the ring, scheduler
// and writer counters are plain fields owned by the drive loop, but a
// scrape only ever touches the atomic cells.
//
// Counter cells fed by Set must come from monotone sources; every
// source here (lost/bytes/drain/stats ledgers) only grows, and the
// chaos harness asserts scrape-over-scrape monotonicity while faults
// fire.
type PipelineMetrics struct {
	ringPending GaugeVec
	ringLost    CounterVec
	ringBytes   CounterVec

	drainPeriod *Gauge
	drains      *Counter
	ringDrains  *Counter

	storeObserved  *Counter
	storePersisted *Counter
	storeDropped   *Counter
	storeSegments  *Counter
	storeRotations *Counter
	storeRetries   *Counter
	storeDownRds   *Counter
	storePending   *Gauge
	storeSpillPeak *Gauge
	storeDown      *Gauge

	internHits   *Gauge
	internMisses *Gauge
	internCapped *Gauge

	sinkDetached *Counter
	sinksLive    *Gauge

	synthesisEvents *Counter

	cpuLabels []string // cached "0", "1", ... strings
}

// NewPipelineMetrics registers the pipeline families on r.
func NewPipelineMetrics(r *Registry) *PipelineMetrics {
	return &PipelineMetrics{
		ringPending: r.GaugeVec("rostracer_ring_pending_records", "Records emitted but not yet drained, per CPU (summed across the three tracer rings).", "cpu"),
		ringLost:    r.CounterVec("rostracer_ring_lost_records_total", "Records dropped to per-CPU ring capacity or injected ring faults, per CPU.", "cpu"),
		ringBytes:   r.CounterVec("rostracer_ring_bytes_total", "Cumulative perf-buffer payload bytes emitted, per CPU.", "cpu"),

		drainPeriod: r.Gauge("rostracer_drain_period_ns", "Current planned drain interval (time to the earliest ring deadline in per-ring mode), nanoseconds."),
		drains:      r.Counter("rostracer_drains_total", "Drain observation windows completed."),
		ringDrains:  r.Counter("rostracer_ring_drains_total", "Individual ring drains selected (per-ring deadline mode)."),

		storeObserved:  r.Counter("rostracer_store_observed_events_total", "Events handed to the session writer."),
		storePersisted: r.Counter("rostracer_store_persisted_events_total", "Events in durably closed segments."),
		storeDropped:   r.Counter("rostracer_store_dropped_events_total", "Events lost to spill overflow or unreplayable failed segments."),
		storeSegments:  r.Counter("rostracer_store_segments_total", "Segments durably closed."),
		storeRotations: r.Counter("rostracer_store_rotations_total", "Segment files abandoned mid-session."),
		storeRetries:   r.Counter("rostracer_store_retries_total", "Backoff retries taken by the session writer."),
		storeDownRds:   r.Counter("rostracer_store_down_rounds_total", "Recovery rounds that ended with the disk still down."),
		storePending:   r.Gauge("rostracer_store_pending_events", "Events observed but not yet durable or dropped."),
		storeSpillPeak: r.Gauge("rostracer_store_spill_peak_events", "High-water mark of the writer's in-memory spill buffer."),
		storeDown:      r.Gauge("rostracer_store_down", "1 while the writer is in spill (disk-down) mode."),

		internHits:   r.Gauge("rostracer_intern_hits", "Intern-table lookups served from the canonical string table (process-wide)."),
		internMisses: r.Gauge("rostracer_intern_misses", "Intern-table lookups that admitted a new string (process-wide)."),
		internCapped: r.Gauge("rostracer_intern_capped", "Intern-table lookups refused by the capacity cap — each re-pays a per-record allocation (process-wide)."),

		sinkDetached: r.Counter("rostracer_sink_detached_total", "Sinks detached from the drain fan-out after a sticky error."),
		sinksLive:    r.Gauge("rostracer_sinks_live", "Sinks currently attached to the drain fan-out."),

		synthesisEvents: r.Counter("rostracer_synthesis_events_total", "Events folded into the incremental timing-model synthesis."),
	}
}

func (p *PipelineMetrics) cpuLabel(cpu int) string {
	for len(p.cpuLabels) <= cpu {
		p.cpuLabels = append(p.cpuLabels, strconv.Itoa(len(p.cpuLabels)))
	}
	return p.cpuLabels[cpu]
}

// UpdateBundle snapshots the per-CPU ring fill/lost/bytes gauges.
func (p *PipelineMetrics) UpdateBundle(b *tracers.Bundle) {
	pending := b.PendingPerCPU()
	lost := b.LostPerCPU()
	bytes := b.BytesPerCPU()
	for cpu := range pending {
		l := p.cpuLabel(cpu)
		p.ringPending.With(l).Set(int64(pending[cpu]))
		p.ringLost.With(l).Set(lost[cpu])
		p.ringBytes.With(l).Set(bytes[cpu])
	}
}

// UpdateScheduler snapshots an adaptive scheduler's drain cadence.
func (p *PipelineMetrics) UpdateScheduler(s *tracers.DrainScheduler) {
	p.UpdateDrain(int64(s.Interval()), s.Drains(), s.RingDrains())
}

// UpdateDrain snapshots the drain cadence directly — the fixed-period
// loop's path, where there is no scheduler to read.
func (p *PipelineMetrics) UpdateDrain(periodNs int64, drains, ringDrains int) {
	p.drainPeriod.Set(periodNs)
	p.drains.Set(uint64(drains))
	p.ringDrains.Set(uint64(ringDrains))
}

// UpdateWriter snapshots the session writer's reconciliation ledger.
func (p *PipelineMetrics) UpdateWriter(w *service.SessionWriter) {
	st := w.Stats()
	p.storeObserved.Set(st.Observed)
	p.storePersisted.Set(st.Persisted)
	p.storeDropped.Set(st.Dropped)
	p.storeSegments.Set(uint64(st.Segments))
	p.storeRotations.Set(uint64(st.Rotations))
	p.storeRetries.Set(uint64(st.Retries))
	p.storeDownRds.Set(uint64(st.Down))
	p.storePending.Set(int64(w.Pending()))
	p.storeSpillPeak.Set(int64(st.SpillPeak))
	down := int64(0)
	if w.Down() {
		down = 1
	}
	p.storeDown.Set(down)
}

// UpdateIntern snapshots the process-global intern-table counters as
// gauges (the table is shared across sessions, so per-session counter
// semantics would lie after the first session).
func (p *PipelineMetrics) UpdateIntern() {
	hits, misses, capped := trace.InternStats()
	p.internHits.Set(int64(hits))
	p.internMisses.Set(int64(misses))
	p.internCapped.Set(int64(capped))
}

// UpdateSinks snapshots the fan-out's lifecycle state.
func (p *PipelineMetrics) UpdateSinks(m *trace.IsolatingMultiSink) {
	p.sinkDetached.Set(uint64(len(m.Detached())))
	p.sinksLive.Set(int64(m.Live()))
}

// UpdateSynthesis snapshots the incremental model builder's progress.
func (p *PipelineMetrics) UpdateSynthesis(s *core.SnapshotService) {
	p.synthesisEvents.Set(s.EventsObserved())
}
