package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Threshold alert rules evaluated online against the registry. A rule
// watches one metric family (optionally a single label cell; the empty
// label on a labeled family sums every cell), compares it — or, for
// Delta rules, its growth since the previous evaluation — against a
// threshold, and latches sticky Fired state with the evaluation round
// it first fired in. rostracer evaluates rules once per drain segment
// and again at shutdown, surfaces fired rules in the session summary,
// and exits nonzero; the chaos harness pins firing windows exactly.

// AlertRule is one threshold rule.
type AlertRule struct {
	Name   string  // rule name, reported when it fires
	Metric string  // metric family name
	Label  string  // "" = unlabeled cell, or sum over all cells of a labeled family
	Delta  bool    // compare growth since the previous Evaluate instead of the level
	Op     string  // ">" or ">="
	Value  float64 // threshold
}

// String renders the rule in the syntax ParseAlertRule accepts.
func (r AlertRule) String() string {
	m := r.Metric
	if r.Label != "" {
		m += "{" + r.Label + "}"
	}
	if r.Delta {
		m = "delta(" + m + ")"
	}
	return fmt.Sprintf("%s: %s %s %s", r.Name, m, r.Op, strconv.FormatFloat(r.Value, 'g', -1, 64))
}

// ParseAlertRule parses `name: metric > value` where metric may be
// `family`, `family{label}`, or `delta(...)` around either. Ops are
// `>` and `>=`.
func ParseAlertRule(s string) (AlertRule, error) {
	var r AlertRule
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return r, fmt.Errorf("metrics: alert rule %q: want \"name: metric > value\"", s)
	}
	r.Name = strings.TrimSpace(name)
	if r.Name == "" {
		return r, fmt.Errorf("metrics: alert rule %q: empty name", s)
	}
	rest = strings.TrimSpace(rest)
	op := ">"
	i := strings.Index(rest, ">")
	if i < 0 {
		return r, fmt.Errorf("metrics: alert rule %q: no > or >= comparison", s)
	}
	if i+1 < len(rest) && rest[i+1] == '=' {
		op = ">="
	}
	r.Op = op
	metric := strings.TrimSpace(rest[:i])
	valStr := strings.TrimSpace(rest[i+len(op):])
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return r, fmt.Errorf("metrics: alert rule %q: bad threshold %q: %v", s, valStr, err)
	}
	r.Value = v
	if inner, ok := strings.CutPrefix(metric, "delta("); ok {
		inner, ok = strings.CutSuffix(inner, ")")
		if !ok {
			return r, fmt.Errorf("metrics: alert rule %q: unterminated delta(", s)
		}
		r.Delta = true
		metric = strings.TrimSpace(inner)
	}
	if j := strings.IndexByte(metric, '{'); j >= 0 {
		if !strings.HasSuffix(metric, "}") {
			return r, fmt.Errorf("metrics: alert rule %q: unterminated label in %q", s, metric)
		}
		r.Label = metric[j+1 : len(metric)-1]
		metric = metric[:j]
	}
	if metric == "" {
		return r, fmt.Errorf("metrics: alert rule %q: empty metric", s)
	}
	r.Metric = metric
	return r, nil
}

// RuleState is the evaluation state of one rule.
type RuleState struct {
	Rule    AlertRule
	Firing  bool    // condition held at the most recent Evaluate
	Fired   bool    // condition has held at least once (sticky)
	FiredAt int     // evaluation round (1-based) the rule first fired in
	Count   int     // evaluations in which the condition held
	Last    float64 // value (or delta) at the most recent Evaluate

	prev    float64
	hasPrev bool
}

// Alerts evaluates a rule set against a registry.
type Alerts struct {
	reg    *Registry
	states []*RuleState
	rounds int
}

// NewAlerts binds rules to a registry.
func NewAlerts(reg *Registry, rules []AlertRule) *Alerts {
	a := &Alerts{reg: reg}
	for _, r := range rules {
		a.states = append(a.states, &RuleState{Rule: r})
	}
	return a
}

// Evaluate runs one evaluation round and returns the rules firing in
// it. A Delta rule's first sight of its metric only records the
// baseline — growth is judged from the next round on, so a counter
// that is already nonzero when alerting starts does not false-fire.
// Metrics that don't exist yet simply don't fire.
func (a *Alerts) Evaluate() []*RuleState {
	a.rounds++
	var firing []*RuleState
	for _, st := range a.states {
		v, ok := a.reg.Value(st.Rule.Metric, st.Rule.Label)
		if !ok {
			st.Firing = false
			continue
		}
		x := v
		if st.Rule.Delta {
			if !st.hasPrev {
				st.prev, st.hasPrev = v, true
				st.Firing = false
				continue
			}
			x = v - st.prev
			st.prev = v
		}
		st.Last = x
		st.Firing = x > st.Rule.Value || (st.Rule.Op == ">=" && x == st.Rule.Value)
		if st.Firing {
			st.Count++
			if !st.Fired {
				st.Fired = true
				st.FiredAt = a.rounds
			}
			firing = append(firing, st)
		}
	}
	return firing
}

// Fired returns every rule whose condition has held at least once, in
// first-fired order.
func (a *Alerts) Fired() []*RuleState {
	var out []*RuleState
	for _, st := range a.states {
		if st.Fired {
			out = append(out, st)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FiredAt < out[j].FiredAt })
	return out
}

// States returns all rule states in registration order.
func (a *Alerts) States() []*RuleState { return a.states }

// Rounds reports how many Evaluate calls have run.
func (a *Alerts) Rounds() int { return a.rounds }

// DefaultAlertRules is the built-in rule set: ring loss, intern-table
// saturation growth (every capped lookup re-pays a per-record
// allocation forever), sink detachment, and store-side event drops.
func DefaultAlertRules() []AlertRule {
	return []AlertRule{
		{Name: "ring-lost", Metric: "rostracer_ring_lost_records_total", Delta: true, Op: ">", Value: 0},
		{Name: "intern-capped-growth", Metric: "rostracer_intern_capped", Delta: true, Op: ">", Value: 0},
		{Name: "sink-detached", Metric: "rostracer_sink_detached_total", Op: ">", Value: 0},
		{Name: "store-dropped", Metric: "rostracer_store_dropped_events_total", Op: ">", Value: 0},
	}
}
