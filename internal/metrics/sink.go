package metrics

import (
	"github.com/tracesynth/rostracer/internal/trace"
)

// Sink folds the event stream into the registry online: per-kind event
// counters, per-topic publish-latency histograms (take probes carry the
// DDS source timestamp, so take-time minus SrcTS is the end-to-end
// publish→take latency the paper's synthesis consumes), and per-node
// callback exec-time distributions (callback-start to callback-end per
// executor PID, attributed to the node that P1 bound to that PID).
//
// The per-event path is allocation-free at steady state: kind counters
// live in a fixed array, topic/node histogram cells are cached in
// sink-local maps keyed by the decoder's interned strings (map reads
// don't allocate), and open-callback tracking reuses map slots per PID.
// Sink is not goroutine-safe — it rides a single drain like every other
// trace.Sink here.
type Sink struct {
	kinds   [64]*Counter // dense Kind space; index by uint8 kind
	kindVec CounterVec
	pubVec  HistogramVec
	execVec HistogramVec

	topicHist map[string]*Histogram
	nodeHist  map[string]*Histogram
	pidNode   map[uint32]string
	openCB    map[uint32]int64 // PID -> callback-start time
	events    uint64
}

// NewSink registers the sink's families on r and returns a sink ready to
// attach to the drain fan-out.
func NewSink(r *Registry) *Sink {
	return &Sink{
		kindVec:   r.CounterVec("rostracer_events_total", "Events observed by the metrics sink, by probe kind.", "kind"),
		pubVec:    r.HistogramVec("rostracer_publish_latency_ns", "Publish-to-take latency per topic (take-probe time minus DDS source timestamp), nanoseconds.", "topic", DefaultTimeBuckets()),
		execVec:   r.HistogramVec("rostracer_callback_exec_ns", "Callback execution time per node (start-probe to end-probe on the executor PID), nanoseconds.", "node", DefaultTimeBuckets()),
		topicHist: make(map[string]*Histogram),
		nodeHist:  make(map[string]*Histogram),
		pidNode:   make(map[uint32]string),
		openCB:    make(map[uint32]int64),
	}
}

// Events reports how many events the sink has folded.
func (s *Sink) Events() uint64 { return s.events }

// Observe implements trace.Sink.
func (s *Sink) Observe(e trace.Event) {
	s.events++
	k := uint8(e.Kind) & 63
	c := s.kinds[k]
	if c == nil {
		c = s.kindVec.With(e.Kind.String())
		s.kinds[k] = c
	}
	c.Inc()

	switch {
	case e.Kind == trace.KindCreateNode:
		s.pidNode[e.PID] = e.Node
	case e.Kind.IsCBStart():
		s.openCB[e.PID] = int64(e.Time)
	case e.Kind.IsCBEnd():
		if start, ok := s.openCB[e.PID]; ok {
			delete(s.openCB, e.PID)
			node, ok := s.pidNode[e.PID]
			if !ok {
				node = "unknown"
			}
			h := s.nodeHist[node]
			if h == nil {
				h = s.execVec.With(node)
				s.nodeHist[node] = h
			}
			h.Observe(int64(e.Time) - start)
		}
	case e.Kind.IsTake():
		if e.Topic != "" && e.SrcTS > 0 && int64(e.Time) >= e.SrcTS {
			h := s.topicHist[e.Topic]
			if h == nil {
				h = s.pubVec.With(e.Topic)
				s.topicHist[e.Topic] = h
			}
			h.Observe(int64(e.Time) - e.SrcTS)
		}
	}
}
