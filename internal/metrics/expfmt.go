package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE`
// comments per family, then one sample line per cell, histograms
// expanded into cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. Everything here runs on the scraping goroutine; the metric
// cells are atomics, so a scrape concurrent with the hot path reads a
// consistent-enough snapshot without stopping it.

// WritePrometheus renders every registered family in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Exposition renders WritePrometheus into a string (test and log use).
func (r *Registry) Exposition() string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (f *family) write(bw *bufio.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	labels := make([]string, 0, len(f.counters)+len(f.gauges)+len(f.hists))
	for l := range f.counters {
		labels = append(labels, l)
	}
	for l := range f.gauges {
		labels = append(labels, l)
	}
	for l := range f.hists {
		labels = append(labels, l)
	}
	if len(labels) == 0 {
		return nil // registered but never materialized a cell: nothing to expose
	}
	sort.Strings(labels)
	fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
	for _, l := range labels {
		pair := ""
		if f.labelKey != "" {
			pair = fmt.Sprintf(`%s="%s"`, f.labelKey, escapeLabel(l))
		}
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", f.name, braced(pair), f.counters[l].Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", f.name, braced(pair), f.gauges[l].Value())
		default:
			h := f.hists[l]
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.cells[i].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, braced(join(pair, `le="`+strconv.FormatInt(b, 10)+`"`)), cum)
			}
			cum += h.cells[len(h.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, braced(join(pair, `le="+Inf"`)), cum)
			fmt.Fprintf(bw, "%s_sum%s %d\n", f.name, braced(pair), h.Sum())
			fmt.Fprintf(bw, "%s_count%s %d\n", f.name, braced(pair), h.Count())
		}
	}
	return nil
}

func braced(pairs string) string {
	if pairs == "" {
		return ""
	}
	return "{" + pairs + "}"
}

func join(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// Handler serves the registry as a /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Exposition is a parsed scrape: sample values keyed by the full series
// name (metric name plus its rendered label set), and the declared TYPE
// per family. The chaos harness uses it to assert a scrape stays
// parseable and counters stay monotone while faults fire.
type ParsedExposition struct {
	Types   map[string]string  // family name -> counter|gauge|histogram
	Samples map[string]float64 // "name{label=...}" -> value
	order   []string
}

// Series returns the sample keys in scrape order.
func (e *ParsedExposition) Series() []string { return e.order }

// familyOf maps a sample key back to its TYPE-declaring family,
// unwrapping the histogram _bucket/_sum/_count suffixes.
func (e *ParsedExposition) familyOf(key string) (string, string) {
	name := key
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if t, ok := e.Types[name]; ok {
		return name, t
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t, ok := e.Types[base]; ok && t == "histogram" {
				return base, t
			}
		}
	}
	return name, ""
}

// ParseExposition parses Prometheus text format strictly enough to act
// as a wire-format gate: every non-comment line must be
// `name[{labels}] value` with a parseable float value, and every sample
// must belong to a family that declared a TYPE.
func ParseExposition(data string) (*ParsedExposition, error) {
	e := &ParsedExposition{Types: make(map[string]string), Samples: make(map[string]float64)}
	for ln, line := range strings.Split(data, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("metrics: line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("metrics: line %d: malformed TYPE %q", ln+1, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram":
					e.Types[fields[2]] = fields[3]
				default:
					return nil, fmt.Errorf("metrics: line %d: unknown type %q", ln+1, fields[3])
				}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("metrics: line %d: no value in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value %q: %v", ln+1, valStr, err)
		}
		if i := strings.IndexByte(key, '{'); i >= 0 && !strings.HasSuffix(key, "}") {
			return nil, fmt.Errorf("metrics: line %d: unterminated label set in %q", ln+1, key)
		}
		if _, typ := e.familyOf(key); typ == "" {
			return nil, fmt.Errorf("metrics: line %d: sample %q has no TYPE declaration", ln+1, key)
		}
		if _, dup := e.Samples[key]; dup {
			return nil, fmt.Errorf("metrics: line %d: duplicate series %q", ln+1, key)
		}
		e.Samples[key] = v
		e.order = append(e.order, key)
	}
	return e, nil
}

// MonotoneViolations compares this scrape against an earlier one and
// reports every counter-family series (histogram buckets and counts
// included — their values are cumulative too) that decreased. A nil or
// empty prev reports nothing.
func (e *ParsedExposition) MonotoneViolations(prev *ParsedExposition) []string {
	if prev == nil {
		return nil
	}
	var out []string
	for _, key := range e.order {
		_, typ := e.familyOf(key)
		monotone := typ == "counter" || (typ == "histogram" && !strings.Contains(keyName(key), "_sum"))
		if !monotone {
			continue
		}
		if before, ok := prev.Samples[key]; ok && e.Samples[key] < before {
			out = append(out, fmt.Sprintf("%s decreased %v -> %v", key, before, e.Samples[key]))
		}
	}
	return out
}

func keyName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}
