package metrics

import (
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Registration is idempotent: same cells come back.
	if r.Counter("c_total", "c") != c || r.Gauge("g", "g") != g {
		t.Fatal("re-registration returned different cells")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ns", "h", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+10+11+100+101+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// Bounds are inclusive: 10 lands in le="10", 11 in le="100".
	want := []uint64{2, 2, 2}
	for i, w := range want {
		if got := h.cells[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestValueSumsLabels(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("lost_total", "lost", "cpu")
	vec.With("0").Add(3)
	vec.With("1").Add(4)
	if v, ok := r.Value("lost_total", "1"); !ok || v != 4 {
		t.Fatalf("Value(lost_total,1) = %v,%v", v, ok)
	}
	if v, ok := r.Value("lost_total", ""); !ok || v != 7 {
		t.Fatalf("Value(lost_total,) = %v,%v, want 7", v, ok)
	}
	if _, ok := r.Value("absent", ""); ok {
		t.Fatal("Value on absent family reported ok")
	}
	if _, ok := r.Value("lost_total", "9"); ok {
		t.Fatal("Value on absent cell reported ok")
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter").Add(3)
	r.GaugeVec("b", "a gauge", "cpu").With("0").Set(-2)
	h := r.HistogramVec("lat_ns", "latency", "topic", []int64{10, 100})
	h.With("/chatter").Observe(5)
	h.With("/chatter").Observe(50)
	h.With("/chatter").Observe(5000)

	text := r.Exposition()
	e, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, text)
	}
	if e.Types["a_total"] != "counter" || e.Types["b"] != "gauge" || e.Types["lat_ns"] != "histogram" {
		t.Fatalf("types = %v", e.Types)
	}
	checks := map[string]float64{
		"a_total":    3,
		`b{cpu="0"}`: -2,
		`lat_ns_bucket{topic="/chatter",le="10"}`:   1,
		`lat_ns_bucket{topic="/chatter",le="100"}`:  2,
		`lat_ns_bucket{topic="/chatter",le="+Inf"}`: 3,
		`lat_ns_sum{topic="/chatter"}`:              5055,
		`lat_ns_count{topic="/chatter"}`:            3,
	}
	for k, want := range checks {
		if got, ok := e.Samples[k]; !ok || got != want {
			t.Errorf("sample %s = %v,%v want %v\n%s", k, got, ok, want, text)
		}
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_type_decl 3",
		"# TYPE x wibble\nx 1",
		"# TYPE x counter\nx notanumber",
		"# TYPE x counter\nx{unterminated 3",
		"# TYPE x counter\nx 1\nx 2",
	} {
		if _, err := ParseExposition(bad); err == nil {
			t.Errorf("ParseExposition(%q) accepted garbage", bad)
		}
	}
}

func TestMonotoneViolations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_ns", "h", []int64{10})
	c.Add(5)
	g.Set(5)
	h.Observe(1)
	prev, err := ParseExposition(r.Exposition())
	if err != nil {
		t.Fatal(err)
	}

	// Gauges may fall freely; counters and histogram counts must not.
	g.Set(1)
	cur, err := ParseExposition(r.Exposition())
	if err != nil {
		t.Fatal(err)
	}
	if v := cur.MonotoneViolations(prev); len(v) != 0 {
		t.Fatalf("gauge decrease flagged: %v", v)
	}

	c.Set(2) // force a counter regression
	cur, err = ParseExposition(r.Exposition())
	if err != nil {
		t.Fatal(err)
	}
	v := cur.MonotoneViolations(prev)
	if len(v) != 1 || !strings.Contains(v[0], "c_total") {
		t.Fatalf("violations = %v, want one on c_total", v)
	}
}

func TestParseAlertRule(t *testing.T) {
	cases := []struct {
		in   string
		want AlertRule
	}{
		{"ring-lost: delta(rostracer_ring_lost_records_total) > 0",
			AlertRule{Name: "ring-lost", Metric: "rostracer_ring_lost_records_total", Delta: true, Op: ">", Value: 0}},
		{"hot: rostracer_ring_pending_records{3} >= 1024",
			AlertRule{Name: "hot", Metric: "rostracer_ring_pending_records", Label: "3", Op: ">=", Value: 1024}},
		{"drops: rostracer_store_dropped_events_total > 0",
			AlertRule{Name: "drops", Metric: "rostracer_store_dropped_events_total", Op: ">", Value: 0}},
		{"capped: delta(rostracer_intern_capped{}) > 2.5",
			AlertRule{Name: "capped", Metric: "rostracer_intern_capped", Delta: true, Op: ">", Value: 2.5}},
	}
	for _, c := range cases {
		got, err := ParseAlertRule(c.in)
		if err != nil {
			t.Errorf("ParseAlertRule(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseAlertRule(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String() round-trips through the parser.
		back, err := ParseAlertRule(got.String())
		if err != nil || back != got {
			t.Errorf("round-trip of %q via %q = %+v, %v", c.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{
		"", "noname > 3", "n: metric < 3", "n: > 3", "n: m > x",
		"n: delta(m > 3", "n: m{x > 3",
	} {
		if _, err := ParseAlertRule(bad); err == nil {
			t.Errorf("ParseAlertRule(%q) accepted garbage", bad)
		}
	}
}

func TestAlertsLevelAndSticky(t *testing.T) {
	r := NewRegistry()
	det := r.Counter("rostracer_sink_detached_total", "d")
	a := NewAlerts(r, []AlertRule{{Name: "sink-detached", Metric: "rostracer_sink_detached_total", Op: ">", Value: 0}})

	if firing := a.Evaluate(); len(firing) != 0 {
		t.Fatalf("fired at zero: %+v", firing[0])
	}
	det.Inc()
	firing := a.Evaluate()
	if len(firing) != 1 || firing[0].Rule.Name != "sink-detached" || firing[0].FiredAt != 2 {
		t.Fatalf("firing = %+v", firing)
	}
	// Sticky across later rounds even if still firing.
	a.Evaluate()
	st := a.Fired()
	if len(st) != 1 || st[0].FiredAt != 2 || st[0].Count != 2 {
		t.Fatalf("Fired() = %+v", st)
	}
}

func TestAlertsDeltaBaseline(t *testing.T) {
	r := NewRegistry()
	lost := r.CounterVec("rostracer_ring_lost_records_total", "l", "cpu")
	lost.With("0").Add(100) // pre-existing loss before alerting starts
	a := NewAlerts(r, []AlertRule{{Name: "ring-lost", Metric: "rostracer_ring_lost_records_total", Delta: true, Op: ">", Value: 0}})

	// Round 1 only records the baseline — a nonzero starting level must
	// not false-fire a growth rule.
	if f := a.Evaluate(); len(f) != 0 {
		t.Fatalf("delta rule fired on baseline: %+v", f[0])
	}
	if f := a.Evaluate(); len(f) != 0 {
		t.Fatalf("delta rule fired with no growth: %+v", f[0])
	}
	lost.With("1").Add(3) // growth on another CPU still counts (label sum)
	f := a.Evaluate()
	if len(f) != 1 || f[0].Last != 3 {
		t.Fatalf("firing = %+v", f)
	}
	if f := a.Evaluate(); len(f) != 0 {
		t.Fatal("delta rule kept firing after growth stopped")
	}
}

func TestAlertsGEOp(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pending", "p")
	a := NewAlerts(r, []AlertRule{{Name: "full", Metric: "pending", Op: ">=", Value: 10}})
	g.Set(9)
	if f := a.Evaluate(); len(f) != 0 {
		t.Fatal("fired below threshold")
	}
	g.Set(10)
	if f := a.Evaluate(); len(f) != 1 {
		t.Fatal(">= did not fire at threshold")
	}
}

func TestDefaultAlertRulesParse(t *testing.T) {
	for _, rule := range DefaultAlertRules() {
		back, err := ParseAlertRule(rule.String())
		if err != nil || back != rule {
			t.Errorf("default rule %+v does not round-trip: %+v, %v", rule, back, err)
		}
	}
}

func TestSinkFoldsEvents(t *testing.T) {
	r := NewRegistry()
	s := NewSink(r)
	evs := []trace.Event{
		{Time: 10, Seq: 1, PID: 7, Kind: trace.KindCreateNode, Node: "camera"},
		{Time: 100, Seq: 2, PID: 7, Kind: trace.KindSubCBStart},
		{Time: 150, Seq: 3, PID: 7, Kind: trace.KindTakeInt, Topic: "/img", SrcTS: 50},
		{Time: 400, Seq: 4, PID: 7, Kind: trace.KindSubCBEnd},
		{Time: 500, Seq: 5, PID: 9, Kind: trace.KindTimerCBStart},
		{Time: 900, Seq: 6, PID: 9, Kind: trace.KindTimerCBEnd},
		// Take with no source timestamp: no latency sample.
		{Time: 950, Seq: 7, PID: 7, Kind: trace.KindTakeRequest, Topic: "/srv", SrcTS: 0},
		// CB end with no open start: ignored.
		{Time: 960, Seq: 8, PID: 11, Kind: trace.KindSubCBEnd},
	}
	for _, e := range evs {
		s.Observe(e)
	}
	if s.Events() != uint64(len(evs)) {
		t.Fatalf("Events() = %d, want %d", s.Events(), len(evs))
	}
	if v, ok := r.Value("rostracer_events_total", trace.KindTakeInt.String()); !ok || v != 1 {
		t.Fatalf("events_total{P6} = %v,%v", v, ok)
	}
	if v, ok := r.Value("rostracer_events_total", ""); !ok || v != float64(len(evs)) {
		t.Fatalf("events_total sum = %v,%v", v, ok)
	}
	// Publish latency: one sample on /img of 150-50=100ns, none on /srv.
	if v, ok := r.Value("rostracer_publish_latency_ns", "/img"); !ok || v != 1 {
		t.Fatalf("publish_latency{/img} count = %v,%v", v, ok)
	}
	if _, ok := r.Value("rostracer_publish_latency_ns", "/srv"); ok {
		t.Fatal("latency sample recorded for SrcTS=0 take")
	}
	if h := s.topicHist["/img"]; h.Sum() != 100 {
		t.Fatalf("latency sum = %d, want 100", h.Sum())
	}
	// Exec time: camera (PID 7) 400-100=300; PID 9 has no P1 -> "unknown".
	if h := s.nodeHist["camera"]; h == nil || h.Count() != 1 || h.Sum() != 300 {
		t.Fatalf("exec{camera} = %+v", h)
	}
	if h := s.nodeHist["unknown"]; h == nil || h.Count() != 1 || h.Sum() != 400 {
		t.Fatalf("exec{unknown} = %+v", h)
	}

	// The exposition of all of this stays parseable.
	if _, err := ParseExposition(r.Exposition()); err != nil {
		t.Fatalf("exposition unparseable: %v", err)
	}
}

func TestSinkExecTimeUsesSimTime(t *testing.T) {
	// Guard the sim.Time -> int64 conversions stay in nanoseconds.
	r := NewRegistry()
	s := NewSink(r)
	start := sim.Time(1_000_000)
	s.Observe(trace.Event{Time: start, PID: 1, Kind: trace.KindTimerCBStart})
	s.Observe(trace.Event{Time: start + 2_000_000, PID: 1, Kind: trace.KindTimerCBEnd})
	if h := s.nodeHist["unknown"]; h == nil || h.Sum() != 2_000_000 {
		t.Fatalf("exec sum = %+v, want 2ms", h)
	}
}
