package msgfilters_test

import (
	"testing"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/msgfilters"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

func sample(ts sim.Time) *dds.Sample { return &dds.Sample{SrcTS: ts} }

func TestExactTimePolicy(t *testing.T) {
	q := [][]*dds.Sample{
		{sample(100)},
		{sample(100)},
	}
	if _, ok := (msgfilters.ExactTime{}).TryMatch(q); !ok {
		t.Fatal("equal timestamps did not match")
	}
	q = [][]*dds.Sample{
		{sample(100)},
		{sample(101)},
	}
	if _, ok := (msgfilters.ExactTime{}).TryMatch(q); ok {
		t.Fatal("unequal timestamps matched under exact policy")
	}
}

func TestApproximateTimeWithinSlop(t *testing.T) {
	p := msgfilters.ApproximateTime{Slop: 10}
	q := [][]*dds.Sample{
		{sample(100)},
		{sample(108)},
	}
	picks, ok := p.TryMatch(q)
	if !ok || len(picks) != 2 {
		t.Fatalf("match failed: %v %v", picks, ok)
	}
}

func TestApproximateTimeDropsStaleHeads(t *testing.T) {
	p := msgfilters.ApproximateTime{Slop: 10}
	q := [][]*dds.Sample{
		{sample(50), sample(100)}, // 50 is stale relative to 105
		{sample(105)},
	}
	picks, ok := p.TryMatch(q)
	if !ok {
		t.Fatalf("no match after dropping stale head; queues %v", q)
	}
	if q[0][picks[0]].SrcTS != 100 {
		t.Fatalf("matched stale sample: %v", q[0][picks[0]].SrcTS)
	}
}

func TestApproximateTimeEmptyQueueNoMatch(t *testing.T) {
	p := msgfilters.ApproximateTime{Slop: 10}
	q := [][]*dds.Sample{
		{sample(100)},
		{},
	}
	if _, ok := p.TryMatch(q); ok {
		t.Fatal("matched with an empty queue")
	}
}

func TestSynchronizerRequiresTwoTopics(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	n := w.NewNode("n", 5, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for single-topic synchronizer")
		}
	}()
	msgfilters.New(n, msgfilters.Config{Topics: []string{"/only"}})
}

func TestSynchronizerFusionOnCompletingArrival(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1,
		DDSLatency: sim.Constant{Value: 10 * sim.Microsecond}})
	src := w.NewNode("src", 5, 0)
	pa := src.CreatePublisher("/a")
	pb := src.CreatePublisher("/b")
	// /a publishes at 10ms, /b at 25ms: /b always completes the pair.
	src.CreateTimer(50*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 10 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) { pa.Publish("a") },
	})
	src.CreateTimer(50*sim.Millisecond, 15*sim.Millisecond, rclcpp.SimpleBody{
		ET:     sim.Constant{Value: 10 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) { pb.Publish("b") },
	})

	fusion := w.NewNode("fusion", 5, 0)
	fused := 0
	var lastSet []*dds.Sample
	sync := msgfilters.New(fusion, msgfilters.Config{
		Topics:  []string{"/a", "/b"},
		Policy:  msgfilters.ApproximateTime{Slop: 30 * sim.Millisecond},
		FusedET: sim.Constant{Value: sim.Millisecond},
		Fused: func(fc *msgfilters.FusedContext) {
			fused++
			lastSet = fc.Set
		},
	})
	w.Run(500 * sim.Millisecond)

	if fused < 9 {
		t.Fatalf("fused %d times", fused)
	}
	if sync.Matches() != uint64(fused) {
		t.Fatalf("matches %d != fused %d", sync.Matches(), fused)
	}
	if len(lastSet) != 2 || lastSet[0].Topic != "/a" || lastSet[1].Topic != "/b" {
		// Samples carry topic names when delivered through real writers.
		t.Logf("set topics: %v %v", lastSet[0].Topic, lastSet[1].Topic)
	}
	// The ground truth shows the fusion ET landed on the /b subscriber's
	// instances (the completing side).
	var bTruth, aTruth int
	for _, tr := range w.Truth() {
		if tr.PID != fusion.PID() {
			continue
		}
		switch {
		case tr.Designed >= sim.Millisecond:
			bTruth++
		default:
			aTruth++
		}
	}
	if bTruth != fused {
		t.Errorf("fusion cost landed on %d instances, want %d", bTruth, fused)
	}
	if aTruth == 0 {
		t.Error("no cheap read instances observed")
	}
}

func TestSynchronizerMismatchedReadETPanics(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1})
	n := w.NewNode("n", 5, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched ReadET length")
		}
	}()
	msgfilters.New(n, msgfilters.Config{
		Topics: []string{"/a", "/b"},
		ReadET: []sim.Distribution{sim.Constant{Value: 1}},
	})
}

func TestThreeWaySynchronization(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 2, Seed: 1,
		DDSLatency: sim.Constant{Value: 10 * sim.Microsecond}})
	src := w.NewNode("src", 5, 0)
	pubs := []*rclcpp.Publisher{
		src.CreatePublisher("/s0"), src.CreatePublisher("/s1"), src.CreatePublisher("/s2"),
	}
	src.CreateTimer(100*sim.Millisecond, 0, rclcpp.SimpleBody{
		ET: sim.Constant{Value: 10 * sim.Microsecond},
		Action: func(*rclcpp.CallbackContext) {
			for _, p := range pubs {
				p.Publish(nil)
			}
		},
	})
	fusion := w.NewNode("fusion", 5, 0)
	sets := 0
	msgfilters.New(fusion, msgfilters.Config{
		Topics: []string{"/s0", "/s1", "/s2"},
		Fused: func(fc *msgfilters.FusedContext) {
			if len(fc.Set) != 3 {
				t.Errorf("set size %d", len(fc.Set))
			}
			sets++
		},
	})
	w.Run(1050 * sim.Millisecond)
	if sets != 10 {
		t.Fatalf("sets = %d, want 10", sets)
	}
}
