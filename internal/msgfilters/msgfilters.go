// Package msgfilters simulates the message_filters library used for data
// synchronization (sensor fusion) in ROS2 applications such as Autoware's
// point-cloud fusion node. A Synchronizer subscribes to m topics; each
// arrival runs the filter's operator() — probed as P7 in Table I — and
// when a complete, time-consistent set of samples is available, the fused
// user callback runs inside the completing subscriber callback's window.
//
// That placement is why, in the paper's words, "when the input data to a
// CB in MSα never arrives last during the synchronization, no published
// topic is found in the corresponding entry in CBlist": only the
// last-arriving subscriber callback ever publishes the fusion output.
package msgfilters

import (
	"fmt"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/ebpf"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
)

// SymOperator is the probed filter-invocation function (Table I, P7).
var SymOperator = ebpf.Symbol{Lib: "message_filters", Func: "operator"}

// Policy matches sets of samples across the input queues.
type Policy interface {
	// TryMatch inspects the queues (one per input, oldest first) and
	// returns the indices of one matched sample per queue, or ok=false.
	// Implementations may drop unmatchable samples from the queues.
	TryMatch(queues [][]*dds.Sample) (picks []int, ok bool)
}

// ExactTime matches samples whose source timestamps are identical.
type ExactTime struct{}

// TryMatch implements Policy.
func (ExactTime) TryMatch(queues [][]*dds.Sample) ([]int, bool) {
	return matchWithin(queues, 0)
}

// ApproximateTime matches samples whose source timestamps lie within Slop
// of each other, dropping heads that can no longer participate in a match.
// This is a simplified form of message_filters' approximate-time policy
// with the same observable behaviour for well-formed periodic inputs.
type ApproximateTime struct {
	Slop sim.Duration
}

// TryMatch implements Policy.
func (p ApproximateTime) TryMatch(queues [][]*dds.Sample) ([]int, bool) {
	return matchWithin(queues, p.Slop)
}

// matchWithin finds head samples with timestamp spread <= slop. Heads that
// are too old relative to the newest head are discarded, since later
// samples only move forward in time.
func matchWithin(queues [][]*dds.Sample, slop sim.Duration) ([]int, bool) {
	for {
		var newest sim.Time
		for _, q := range queues {
			if len(q) == 0 {
				return nil, false
			}
			if q[0].SrcTS > newest {
				newest = q[0].SrcTS
			}
		}
		dropped := false
		for i, q := range queues {
			if newest.Sub(q[0].SrcTS) > slop {
				queues[i] = q[1:]
				dropped = true
			}
		}
		if dropped {
			continue
		}
		picks := make([]int, len(queues))
		return picks, true // heads (index 0) all within slop
	}
}

// FusedContext is handed to the fused callback: the matched set plus the
// completing subscription's callback context.
type FusedContext struct {
	*rclcpp.CallbackContext
	Set []*dds.Sample
}

// Synchronizer ties m subscriptions on one node to a fused callback.
type Synchronizer struct {
	node   *rclcpp.Node
	policy Policy
	topics []string
	queues [][]*dds.Sample

	// ReadET is the designed cost of handling one (non-completing)
	// arrival; FusedET is the additional cost when an arrival completes a
	// set and the fusion computation runs.
	readET  []sim.Distribution
	fusedET sim.Distribution
	fused   func(*FusedContext)

	// siteOp is the pre-resolved operator() probe site, bound lazily on
	// the first arrival.
	siteOp *ebpf.ProbeSite

	subs    []*rclcpp.Subscription
	matches uint64
}

// Config configures a Synchronizer.
type Config struct {
	Topics  []string
	Policy  Policy
	ReadET  []sim.Distribution // one per topic; nil entries mean zero cost
	FusedET sim.Distribution   // extra cost when completing a set
	Fused   func(*FusedContext)
}

// New creates the synchronizer's subscriptions on node. Each subscription
// is an ordinary rclcpp subscription whose body is the filter operator.
func New(node *rclcpp.Node, cfg Config) *Synchronizer {
	if len(cfg.Topics) < 2 {
		panic("msgfilters: need at least two topics to synchronize")
	}
	if cfg.Policy == nil {
		cfg.Policy = ApproximateTime{Slop: 10 * sim.Millisecond}
	}
	if cfg.ReadET != nil && len(cfg.ReadET) != len(cfg.Topics) {
		panic(fmt.Sprintf("msgfilters: %d ReadET entries for %d topics", len(cfg.ReadET), len(cfg.Topics)))
	}
	s := &Synchronizer{
		node:    node,
		policy:  cfg.Policy,
		topics:  cfg.Topics,
		queues:  make([][]*dds.Sample, len(cfg.Topics)),
		readET:  cfg.ReadET,
		fusedET: cfg.FusedET,
		fused:   cfg.Fused,
	}
	for i, topic := range cfg.Topics {
		i := i
		s.subs = append(s.subs, node.CreateSubscription(topic, rclcpp.BodyFunc(
			func(ctx *rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
				return s.operator(i, ctx)
			})))
	}
	return s
}

// Subscriptions returns the underlying subscriptions, input order.
func (s *Synchronizer) Subscriptions() []*rclcpp.Subscription { return s.subs }

// Matches returns how many complete sets have been fused.
func (s *Synchronizer) Matches() uint64 { return s.matches }

// operator is the filter's operator(): it fires P7, enqueues the sample,
// and — if this arrival completes a set — plans the fusion work and its
// publishing action into this callback instance.
func (s *Synchronizer) operator(input int, ctx *rclcpp.CallbackContext) (sim.Duration, rclcpp.Action) {
	n := s.node
	w := n.World()
	if s.siteOp == nil {
		s.siteOp = w.Runtime().Site(SymOperator)
	}
	s.siteOp.FireEntry(n.PID(), n.Thread().CPU(), uint64(input)) // P7

	s.queues[input] = append(s.queues[input], ctx.Sample)

	var et sim.Duration
	if s.readET != nil && s.readET[input] != nil {
		et = s.readET[input].Sample(w.ETRand())
	}
	picks, ok := s.policy.TryMatch(s.queues)
	if !ok {
		return et, nil
	}
	// Pop the matched set.
	set := make([]*dds.Sample, len(s.queues))
	for i, pick := range picks {
		set[i] = s.queues[i][pick]
		s.queues[i] = append(s.queues[i][:pick:pick], s.queues[i][pick+1:]...)
	}
	s.matches++
	if s.fusedET != nil {
		et += s.fusedET.Sample(w.ETRand())
	}
	return et, func(c *rclcpp.CallbackContext) {
		if s.fused != nil {
			s.fused(&FusedContext{CallbackContext: c, Set: set})
		}
	}
}
