package umem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAllocReadRoundTrip(t *testing.T) {
	s := NewSpace(1)
	a := s.AllocBytes([]byte{1, 2, 3, 4})
	got, err := s.Read(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestNullIsNeverAllocated(t *testing.T) {
	s := NewSpace(0)
	for i := 0; i < 100; i++ {
		if a := s.Alloc(1); a.IsNull() {
			t.Fatal("allocator returned NULL")
		}
	}
}

func TestSpacesDoNotOverlap(t *testing.T) {
	s1 := NewSpace(1)
	s2 := NewSpace(2)
	a1 := s1.AllocU64(42)
	if s2.Contains(a1, 8) {
		t.Fatal("address from space 1 readable in space 2")
	}
	if _, err := s2.Read(a1, 8); err == nil {
		t.Fatal("cross-space read did not fault")
	}
}

func TestReadFaults(t *testing.T) {
	s := NewSpace(3)
	a := s.AllocU64(7)
	if _, err := s.Read(a, 16); err == nil {
		t.Error("overlong read did not fault")
	}
	if _, err := s.Read(0, 8); err == nil {
		t.Error("NULL read did not fault")
	}
	if _, err := s.Read(a-1, 8); err == nil {
		t.Error("pre-base read did not fault")
	}
}

func TestU64RoundTrip(t *testing.T) {
	s := NewSpace(4)
	a := s.AllocU64(0xdeadbeefcafe)
	v, err := s.ReadU64(a)
	if err != nil || v != 0xdeadbeefcafe {
		t.Fatalf("v=%#x err=%v", v, err)
	}
	s.WriteU64(a, 99)
	v, _ = s.ReadU64(a)
	if v != 99 {
		t.Fatalf("after write v=%d", v)
	}
}

func TestCString(t *testing.T) {
	s := NewSpace(5)
	a := s.AllocString("lidar_front/points_raw")
	got, err := s.ReadCString(a, 64)
	if err != nil || got != "lidar_front/points_raw" {
		t.Fatalf("got %q err=%v", got, err)
	}
	// Truncated read of an unterminated region returns what fits.
	b := s.AllocBytes([]byte{'a', 'b', 'c'})
	got, err = s.ReadCString(b, 2)
	if err != nil || got != "ab" {
		t.Fatalf("truncated: got %q err=%v", got, err)
	}
}

func TestAlignment(t *testing.T) {
	s := NewSpace(6)
	s.Alloc(3) // misalign the bump pointer
	a := s.Alloc(8)
	if uint64(a)%8 != 0 {
		t.Fatalf("allocation not 8-aligned: %#x", uint64(a))
	}
}

func TestStructWriterLayout(t *testing.T) {
	s := NewSpace(7)
	topic := s.AllocString("/t1")
	w := NewStructWriter(s)
	offA := w.U32(11)
	offB := w.U64(22)
	offC := w.Ptr(topic)
	base := w.Commit()

	if offA != 0 {
		t.Errorf("offA = %d", offA)
	}
	if offB != 8 { // aligned up from 4
		t.Errorf("offB = %d", offB)
	}
	if offC != 16 {
		t.Errorf("offC = %d", offC)
	}
	if v, _ := s.ReadU32(base + Addr(offA)); v != 11 {
		t.Errorf("field A = %d", v)
	}
	if v, _ := s.ReadU64(base + Addr(offB)); v != 22 {
		t.Errorf("field B = %d", v)
	}
	p, _ := s.ReadU64(base + Addr(offC))
	str, err := s.ReadCString(Addr(p), 16)
	if err != nil || str != "/t1" {
		t.Errorf("pointer chase: %q err=%v", str, err)
	}
}

func TestPointerChaseTwoLevels(t *testing.T) {
	// Mirrors the probe pattern: struct -> pointer -> struct -> string.
	s := NewSpace(8)
	name := s.AllocString("v1/localization")
	inner := NewStructWriter(s)
	inner.U64(0x1234)
	nameOff := inner.Ptr(name)
	innerAddr := inner.Commit()
	outer := NewStructWriter(s)
	innerOff := outer.Ptr(innerAddr)
	outerAddr := outer.Commit()

	p1, err := s.ReadU64(outerAddr + Addr(innerOff))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.ReadU64(Addr(p1) + Addr(nameOff))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCString(Addr(p2), 64)
	if err != nil || got != "v1/localization" {
		t.Fatalf("got %q err=%v", got, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pid uint32, payload []byte) bool {
		s := NewSpace(pid % 1000)
		a := s.AllocBytes(payload)
		got, err := s.Read(a, len(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestContains(t *testing.T) {
	s := NewSpace(9)
	a := s.Alloc(16)
	if !s.Contains(a, 16) {
		t.Error("Contains rejected valid range")
	}
	if s.Contains(a, 17) {
		t.Error("Contains accepted overlong range")
	}
	if s.Contains(a, -1) {
		t.Error("Contains accepted negative length")
	}
}
