// Package umem simulates per-process user-space memory.
//
// The ROS2 middleware layers allocate their C-style argument structures
// (message info blocks, topic-name strings, service request headers) in a
// Space, and pass the resulting addresses to the probed functions. eBPF
// probe programs then traverse those structures with probe_read /
// probe_read_str exactly as the paper's tracer traverses real rclcpp and
// rmw data structures.
//
// Addresses are 64-bit. Each Space carves its allocations from a virtual
// range starting at a per-space base so that addresses from different
// processes never collide, which lets tests catch cross-address-space reads
// (a class of bug real eBPF tracers also have to avoid).
package umem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a simulated user-space address. The zero Addr is the NULL pointer
// and is never a valid allocation.
type Addr uint64

// IsNull reports whether a is the NULL pointer.
func (a Addr) IsNull() bool { return a == 0 }

// Space is one process's simulated memory. It is a bump allocator over a
// flat byte slice; freed memory is not reclaimed, which matches the
// lifetime pattern of tracing-relevant middleware structures (they live for
// the duration of a function call and the trace only needs them to remain
// readable until the exit probe fires).
type Space struct {
	base Addr
	mem  []byte
}

const spaceStride = 1 << 40 // virtual distance between process bases

// NewSpace returns the memory space for process pid.
func NewSpace(pid uint32) *Space {
	// Base is non-zero even for pid 0 so that offset 0 is never NULL.
	return &Space{base: Addr(uint64(pid+1) * spaceStride)}
}

// Base returns the lowest address of the space.
func (s *Space) Base() Addr { return s.base }

// Size returns the number of bytes allocated so far.
func (s *Space) Size() int { return len(s.mem) }

// Contains reports whether [a, a+n) lies inside the space.
func (s *Space) Contains(a Addr, n int) bool {
	if a < s.base || n < 0 {
		return false
	}
	off := uint64(a - s.base)
	return off+uint64(n) <= uint64(len(s.mem))
}

// Alloc reserves n bytes (8-byte aligned) and returns their address.
func (s *Space) Alloc(n int) Addr {
	if n < 0 {
		panic("umem: negative allocation")
	}
	// Align to 8 bytes like a C allocator would.
	for len(s.mem)%8 != 0 {
		s.mem = append(s.mem, 0)
	}
	a := s.base + Addr(len(s.mem))
	s.mem = append(s.mem, make([]byte, n)...)
	return a
}

// AllocBytes copies b into fresh memory and returns its address.
func (s *Space) AllocBytes(b []byte) Addr {
	a := s.Alloc(len(b))
	copy(s.slice(a, len(b)), b)
	return a
}

// AllocString stores str as a NUL-terminated C string.
func (s *Space) AllocString(str string) Addr {
	b := make([]byte, len(str)+1)
	copy(b, str)
	return s.AllocBytes(b)
}

// AllocU64 stores a single 64-bit little-endian value.
func (s *Space) AllocU64(v uint64) Addr {
	a := s.Alloc(8)
	s.WriteU64(a, v)
	return a
}

func (s *Space) slice(a Addr, n int) []byte {
	if !s.Contains(a, n) {
		panic(fmt.Sprintf("umem: access [%#x,+%d) outside space base %#x size %d", uint64(a), n, uint64(s.base), len(s.mem)))
	}
	off := uint64(a - s.base)
	return s.mem[off : off+uint64(n)]
}

// Read copies n bytes at a. It returns an error (not a panic) for invalid
// ranges because probe programs must be able to fault gracefully, as real
// probe_read does.
func (s *Space) Read(a Addr, n int) ([]byte, error) {
	if !s.Contains(a, n) {
		return nil, fmt.Errorf("umem: fault reading [%#x,+%d)", uint64(a), n)
	}
	out := make([]byte, n)
	copy(out, s.slice(a, n))
	return out, nil
}

// ReadInto copies len(dst) bytes at a into dst without allocating; the
// probe_read helper's hot path.
func (s *Space) ReadInto(a Addr, dst []byte) error {
	if !s.Contains(a, len(dst)) {
		return fmt.Errorf("umem: fault reading [%#x,+%d)", uint64(a), len(dst))
	}
	copy(dst, s.slice(a, len(dst)))
	return nil
}

// ReadU64 reads a little-endian 64-bit value.
func (s *Space) ReadU64(a Addr) (uint64, error) {
	if !s.Contains(a, 8) {
		return 0, fmt.Errorf("umem: fault reading [%#x,+8)", uint64(a))
	}
	return binary.LittleEndian.Uint64(s.slice(a, 8)), nil
}

// ReadU32 reads a little-endian 32-bit value.
func (s *Space) ReadU32(a Addr) (uint32, error) {
	if !s.Contains(a, 4) {
		return 0, fmt.Errorf("umem: fault reading [%#x,+4)", uint64(a))
	}
	return binary.LittleEndian.Uint32(s.slice(a, 4)), nil
}

// cstringWindow locates the NUL-terminated string of at most max bytes at
// a, returning the backing bytes (excluding the NUL). Faults mirror the
// byte-at-a-time semantics of probe_read_str: running off the mapped
// region before a terminator (and before max bytes) is a fault.
func (s *Space) cstringWindow(a Addr, max int) ([]byte, error) {
	if max <= 0 {
		return nil, nil
	}
	avail := max
	if !s.Contains(a, avail) {
		// Clamp the window to the mapped region.
		if !s.Contains(a, 1) {
			return nil, fmt.Errorf("umem: fault reading [%#x,+1)", uint64(a))
		}
		avail = int(uint64(s.base) + uint64(len(s.mem)) - uint64(a))
	}
	win := s.slice(a, avail)
	for i, b := range win {
		if b == 0 {
			return win[:i], nil
		}
	}
	if avail < max {
		return nil, fmt.Errorf("umem: fault reading [%#x,+1)", uint64(a)+uint64(avail))
	}
	return win, nil
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (s *Space) ReadCString(a Addr, max int) (string, error) {
	win, err := s.cstringWindow(a, max)
	if err != nil {
		return "", err
	}
	return string(win), nil
}

// ReadCStringInto copies a NUL-terminated string of at most len(dst) bytes
// into dst without allocating, returning its length; the probe_read_str
// helper's hot path.
func (s *Space) ReadCStringInto(a Addr, dst []byte) (int, error) {
	win, err := s.cstringWindow(a, len(dst))
	if err != nil {
		return 0, err
	}
	copy(dst, win)
	return len(win), nil
}

// WriteU64 stores a little-endian 64-bit value at a.
func (s *Space) WriteU64(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(s.slice(a, 8), v)
}

// WriteU32 stores a little-endian 32-bit value at a.
func (s *Space) WriteU32(a Addr, v uint32) {
	binary.LittleEndian.PutUint32(s.slice(a, 4), v)
}

// WriteBytes copies b to a.
func (s *Space) WriteBytes(a Addr, b []byte) {
	copy(s.slice(a, len(b)), b)
}

// StructWriter lays out a C-like structure field by field, recording field
// offsets so middleware code and probe programs agree on the layout.
type StructWriter struct {
	space  *Space
	fields []fieldSpec
	size   int
}

type fieldSpec struct {
	off  int
	data []byte
}

// NewStructWriter begins a structure layout in space.
func NewStructWriter(space *Space) *StructWriter {
	return &StructWriter{space: space}
}

func (w *StructWriter) align(n int) {
	for w.size%n != 0 {
		w.size++
	}
}

// U64 appends a 64-bit field and returns its offset within the struct.
func (w *StructWriter) U64(v uint64) int {
	w.align(8)
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	off := w.size
	w.fields = append(w.fields, fieldSpec{off, b})
	w.size += 8
	return off
}

// U32 appends a 32-bit field and returns its offset.
func (w *StructWriter) U32(v uint32) int {
	w.align(4)
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	off := w.size
	w.fields = append(w.fields, fieldSpec{off, b})
	w.size += 4
	return off
}

// Ptr appends a pointer-sized field holding address a.
func (w *StructWriter) Ptr(a Addr) int { return w.U64(uint64(a)) }

// Commit allocates the structure and returns its address.
func (w *StructWriter) Commit() Addr {
	a := w.space.Alloc(w.size)
	for _, f := range w.fields {
		w.space.WriteBytes(a+Addr(f.off), f.data)
	}
	return a
}
