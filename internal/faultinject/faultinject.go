// Package faultinject provides deterministic, scriptable fault injection
// for the drain → store → synthesis pipeline: io.Writer/io.Reader
// wrappers that fail, tear, or corrupt byte streams at scripted points;
// ring faults that force lost records and overflow bursts on the per-CPU
// perf rings; and DDS transport faults (drop / duplicate / extra delay)
// drawn from the simulation's seeded RNG.
//
// Everything here is deterministic per seed and script: the same plan
// over the same workload produces the same fault schedule, which is what
// lets the chaos harness assert exact accounting (emitted == persisted +
// ring-lost + spill-dropped) instead of "roughly survived".
//
// All injection points in the production code are nil-checked hooks
// (trace.Store.WrapWriter/WrapReader, ebpf.PerfBuffer.SetEmitFault,
// dds.Domain.Fault): when no plan is installed the hot paths pay at most
// one nil check and allocate nothing.
package faultinject

import (
	"errors"
	"io"

	"github.com/tracesynth/rostracer/internal/sim"
)

// Injected error sentinels. ErrDiskFull models ENOSPC — the canonical
// persistent write failure; ErrIO models a generic transient I/O error.
var (
	ErrDiskFull = errors.New("faultinject: disk full")
	ErrIO       = errors.New("faultinject: injected I/O error")
)

// WriteFaultKind selects the failure mode of one Writer wrapper.
type WriteFaultKind int

const (
	// WriteHealthy passes everything through.
	WriteHealthy WriteFaultKind = iota
	// WriteFailAfter accepts N bytes, then fails every write with
	// ErrDiskFull (the write that crosses the boundary is short: it
	// reports the bytes that fit, with the error — ENOSPC semantics).
	WriteFailAfter
	// WriteShortAt makes the Nth Write call (1-based) write only half its
	// buffer and return io.ErrShortWrite; later writes pass through.
	WriteShortAt
	// WriteFailAll fails every write with ErrDiskFull: a disk that is
	// down from the first byte (open-failure equivalent).
	WriteFailAll
	// WriteFlipBit silently flips the lowest bit of the byte at stream
	// offset N: media corruption the writer never notices.
	WriteFlipBit
	// WriteTruncateAt silently discards every byte at stream offset >= N
	// while reporting success: a torn write that only a later read
	// discovers.
	WriteTruncateAt
)

// WriteFault is one scripted fault; N is the byte offset or op count its
// kind calls for.
type WriteFault struct {
	Kind WriteFaultKind
	N    int64
}

func (f WriteFault) String() string {
	switch f.Kind {
	case WriteHealthy:
		return "healthy"
	case WriteFailAfter:
		return "disk-full-after"
	case WriteShortAt:
		return "short-write"
	case WriteFailAll:
		return "disk-down"
	case WriteFlipBit:
		return "bit-flip"
	case WriteTruncateAt:
		return "torn-tail"
	}
	return "?"
}

// Writer wraps an io.Writer with scripted faults. Offsets are logical
// stream offsets (bytes the caller believes written), so silent faults
// keep claiming success while damaging what lands underneath.
type Writer struct {
	w      io.Writer
	faults []WriteFault
	off    int64 // logical bytes accepted so far
	ops    int   // Write calls seen
}

// NewWriter wraps w; faults apply simultaneously (e.g. a bit flip plus a
// torn tail).
func NewWriter(w io.Writer, faults ...WriteFault) *Writer {
	return &Writer{w: w, faults: faults}
}

// Write implements io.Writer under the scripted faults.
func (w *Writer) Write(p []byte) (int, error) {
	w.ops++
	// Hard failures first: they decide how much of p is accepted at all.
	limit := len(p)
	var hardErr error
	for _, f := range w.faults {
		switch f.Kind {
		case WriteFailAll:
			return 0, ErrDiskFull
		case WriteFailAfter:
			if w.off >= f.N {
				return 0, ErrDiskFull
			}
			if room := f.N - w.off; int64(limit) > room {
				limit = int(room)
				hardErr = ErrDiskFull
			}
		case WriteShortAt:
			if int64(w.ops) == f.N && limit > 0 {
				if half := limit / 2; half < limit {
					limit = half
					hardErr = io.ErrShortWrite
				}
			}
		}
	}
	chunk := p[:limit]
	// Silent faults damage what actually lands without changing the
	// claimed outcome.
	out := chunk
	for _, f := range w.faults {
		switch f.Kind {
		case WriteFlipBit:
			if f.N >= w.off && f.N < w.off+int64(len(out)) {
				dup := append([]byte(nil), out...)
				dup[f.N-w.off] ^= 1
				out = dup
			}
		case WriteTruncateAt:
			if w.off >= f.N {
				out = nil
			} else if keep := f.N - w.off; int64(len(out)) > keep {
				out = out[:keep]
			}
		}
	}
	if len(out) > 0 {
		if n, err := w.w.Write(out); err != nil {
			w.off += int64(n)
			return n, err
		}
	}
	w.off += int64(limit)
	if hardErr != nil {
		return limit, hardErr
	}
	return limit, nil
}

// Ops reports how many Write calls the wrapper has seen.
func (w *Writer) Ops() int { return w.ops }

// ReadFaultKind selects the failure mode of one Reader wrapper.
type ReadFaultKind int

const (
	// ReadHealthy passes everything through.
	ReadHealthy ReadFaultKind = iota
	// ReadFailAtOp makes the Nth Read call (1-based) fail with ErrIO.
	ReadFailAtOp
	// ReadFlipBit flips the lowest bit of the byte at stream offset N on
	// its way up: corruption discovered at read time.
	ReadFlipBit
	// ReadTruncateAt ends the stream (io.EOF) at offset N: the tail of
	// the file never comes back.
	ReadTruncateAt
)

// ReadFault is one scripted read-side fault.
type ReadFault struct {
	Kind ReadFaultKind
	N    int64
}

// Reader wraps an io.Reader with scripted faults.
type Reader struct {
	r      io.Reader
	faults []ReadFault
	off    int64
	ops    int
}

// NewReader wraps r.
func NewReader(r io.Reader, faults ...ReadFault) *Reader {
	return &Reader{r: r, faults: faults}
}

// Read implements io.Reader under the scripted faults.
func (r *Reader) Read(p []byte) (int, error) {
	r.ops++
	limit := len(p)
	for _, f := range r.faults {
		switch f.Kind {
		case ReadFailAtOp:
			if int64(r.ops) == f.N {
				return 0, ErrIO
			}
		case ReadTruncateAt:
			if r.off >= f.N {
				return 0, io.EOF
			}
			if rest := f.N - r.off; int64(limit) > rest {
				limit = int(rest)
			}
		}
	}
	n, err := r.r.Read(p[:limit])
	for _, f := range r.faults {
		if f.Kind == ReadFlipBit && f.N >= r.off && f.N < r.off+int64(n) {
			p[f.N-r.off] ^= 1
		}
	}
	r.off += int64(n)
	return n, err
}

// Disk scripts the write-side behaviour of successive files: the k-th
// file opened through Wrap gets the k-th fault set of the script (beyond
// the script every file is healthy). Rotation retries open fresh files,
// so "disk down for n opens" is n consecutive {WriteFailAll} entries.
type Disk struct {
	script [][]WriteFault
	opens  int
}

// NewDisk builds a per-open script; each entry is the fault set for one
// opened file.
func NewDisk(script ...[]WriteFault) *Disk {
	return &Disk{script: script}
}

// Opens reports how many files have been wrapped.
func (d *Disk) Opens() int { return d.opens }

// Wrap implements the trace.Store.WrapWriter hook shape.
func (d *Disk) Wrap(name string, f io.Writer) io.Writer {
	var faults []WriteFault
	if d.opens < len(d.script) {
		faults = d.script[d.opens]
	}
	d.opens++
	if len(faults) == 0 {
		return f
	}
	return NewWriter(f, faults...)
}

// Burst is one scripted overflow burst: drop Len consecutive emissions
// starting at the AtOp-th emission attempt (1-based).
type Burst struct {
	AtOp uint64
	Len  uint64
}

// RingFault drops perf-ring emissions per a seeded schedule: independent
// drops with probability DropProb plus scripted bursts. Drops count as
// lost on the emitting ring (the hook contract of
// ebpf.PerfBuffer.SetEmitFault), so the pipeline's existing lost-record
// accounting absorbs injected faults without a parallel ledger.
type RingFault struct {
	rng      *sim.RNG
	dropProb float64
	bursts   []Burst
	ops      uint64
	drops    uint64
}

// NewRingFault builds a ring fault plan. seed makes the probabilistic
// drops reproducible; bursts fire by emission attempt index.
func NewRingFault(seed uint64, dropProb float64, bursts ...Burst) *RingFault {
	return &RingFault{rng: sim.NewRNG(seed), dropProb: dropProb, bursts: bursts}
}

// Hook returns the function to install with SetEmitFault.
func (f *RingFault) Hook() func(cpu int) bool {
	return func(cpu int) bool {
		f.ops++
		drop := false
		for _, b := range f.bursts {
			if f.ops >= b.AtOp && f.ops < b.AtOp+b.Len {
				drop = true
			}
		}
		if !drop && f.dropProb > 0 && f.rng.Float64() < f.dropProb {
			drop = true
		}
		if drop {
			f.drops++
		}
		return drop
	}
}

// Ops reports emission attempts seen; Drops reports how many were
// forced lost.
func (f *RingFault) Ops() uint64   { return f.ops }
func (f *RingFault) Drops() uint64 { return f.drops }

// Transport implements the dds.TransportFault interface (structurally:
// it has the Fate method) with independent per-delivery probabilities —
// the lossy/jittery network of a distributed domain. All randomness
// comes from the RNG the domain passes in, so fault schedules are fixed
// by the world seed.
type Transport struct {
	DropProb   float64      // P(delivery suppressed)
	DupProb    float64      // P(one extra duplicate copy)
	DelayProb  float64      // P(extra latency added)
	ExtraDelay sim.Duration // the extra latency when delayed
}

// Fate decides one delivery; see dds.TransportFault.
func (t *Transport) Fate(rng *sim.RNG) (drop bool, dups int, extra sim.Duration) {
	if t.DropProb > 0 && rng.Float64() < t.DropProb {
		return true, 0, 0
	}
	if t.DupProb > 0 && rng.Float64() < t.DupProb {
		dups = 1
	}
	if t.DelayProb > 0 && rng.Float64() < t.DelayProb {
		extra = t.ExtraDelay
	}
	return false, dups, extra
}

// Plan bundles one deterministic fault scenario across the three layers
// a deployment can lose data in: the disk under the store, the perf
// rings under the drain, and the DDS transport under the application.
// Nil members leave that layer healthy. The caller wires each member to
// its hook (Store.WrapWriter, Bundle.SetRingFault, Domain.Fault).
type Plan struct {
	Disk      *Disk
	Ring      *RingFault
	Transport *Transport
}
