package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
)

func TestWriterFailAfterENOSPCSemantics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriteFault{Kind: WriteFailAfter, N: 10})

	// First write fits entirely.
	if n, err := w.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	// Second write crosses the boundary: short with the error.
	n, err := w.Write(make([]byte, 8))
	if n != 4 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("boundary write: n=%d err=%v, want 4 bytes + ErrDiskFull", n, err)
	}
	// Everything after fails outright.
	if n, err := w.Write([]byte{1}); n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("post-boundary write: n=%d err=%v", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying got %d bytes, want exactly 10", buf.Len())
	}
}

func TestWriterShortAtNthOp(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriteFault{Kind: WriteShortAt, N: 2})
	if n, err := w.Write(make([]byte, 4)); n != 4 || err != nil {
		t.Fatalf("op 1: n=%d err=%v", n, err)
	}
	n, err := w.Write(make([]byte, 8))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("op 2: n=%d err=%v, want half + ErrShortWrite", n, err)
	}
	if n, err := w.Write(make([]byte, 4)); n != 4 || err != nil {
		t.Fatalf("op 3 (recovered): n=%d err=%v", n, err)
	}
	if w.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", w.Ops())
	}
}

func TestWriterSilentFaults(t *testing.T) {
	// Bit flip at offset 3, tail truncation at offset 6 — both silent.
	var buf bytes.Buffer
	w := NewWriter(&buf,
		WriteFault{Kind: WriteFlipBit, N: 3},
		WriteFault{Kind: WriteTruncateAt, N: 6})
	src := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	if n, err := w.Write(src[:4]); n != 4 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	if n, err := w.Write(src[4:]); n != 4 || err != nil {
		t.Fatalf("write 2 claims success despite truncation: n=%d err=%v", n, err)
	}
	want := []byte{0, 1, 2, 2, 4, 5} // bit 0 of byte 3 flipped; bytes 6.. gone
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("underlying = %v, want %v", buf.Bytes(), want)
	}
	// The source buffer must not be mutated by the flip.
	if src[3] != 3 {
		t.Fatalf("caller's buffer mutated: %v", src)
	}
}

func TestWriterFailAll(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriteFault{Kind: WriteFailAll})
	if n, err := w.Write([]byte{1, 2}); n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("dead disk accepted %d bytes", buf.Len())
	}
}

func TestReaderFaults(t *testing.T) {
	src := []byte{0, 1, 2, 3, 4, 5, 6, 7}

	// Fail at op 2.
	r := NewReader(bytes.NewReader(src), ReadFault{Kind: ReadFailAtOp, N: 2})
	p := make([]byte, 4)
	if _, err := r.Read(p); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := r.Read(p); !errors.Is(err, ErrIO) {
		t.Fatalf("op 2: err=%v, want ErrIO", err)
	}

	// Flip bit at offset 5.
	r = NewReader(bytes.NewReader(src), ReadFault{Kind: ReadFlipBit, N: 5})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[5] != 4 || got[4] != 4 {
		t.Fatalf("read back %v, want bit 0 of byte 5 flipped", got)
	}

	// Truncate at offset 6: stream ends early.
	r = NewReader(bytes.NewReader(src), ReadFault{Kind: ReadTruncateAt, N: 6})
	got, err = io.ReadAll(r)
	if err != nil || len(got) != 6 {
		t.Fatalf("truncated read: %d bytes err=%v, want 6 bytes clean EOF", len(got), err)
	}
}

func TestDiskScriptPerOpen(t *testing.T) {
	d := NewDisk(
		nil,
		[]WriteFault{{Kind: WriteFailAll}},
	)
	var b0, b1, b2 bytes.Buffer
	w0 := d.Wrap("seg0", &b0)
	w1 := d.Wrap("seg1", &b1)
	w2 := d.Wrap("seg2", &b2) // beyond the script: healthy

	if _, err := w0.Write([]byte{1}); err != nil {
		t.Fatalf("open 0 should be healthy: %v", err)
	}
	if w0 != io.Writer(&b0) {
		t.Fatalf("healthy open should pass the file through unwrapped")
	}
	if _, err := w1.Write([]byte{1}); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("open 1 should be dead: %v", err)
	}
	if _, err := w2.Write([]byte{1}); err != nil {
		t.Fatalf("open 2 (past script) should be healthy: %v", err)
	}
	if d.Opens() != 3 {
		t.Fatalf("opens = %d, want 3", d.Opens())
	}
}

func TestRingFaultDeterministicAndBursty(t *testing.T) {
	run := func() (uint64, []bool) {
		f := NewRingFault(42, 0.1, Burst{AtOp: 5, Len: 3})
		hook := f.Hook()
		outcomes := make([]bool, 40)
		for i := range outcomes {
			outcomes[i] = hook(i % 4)
		}
		return f.Drops(), outcomes
	}
	drops1, out1 := run()
	drops2, out2 := run()
	if drops1 != drops2 {
		t.Fatalf("same seed diverged: %d vs %d drops", drops1, drops2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("schedule diverged at op %d", i+1)
		}
	}
	// The burst covers ops 5, 6, 7 (1-based) unconditionally.
	for _, op := range []int{4, 5, 6} {
		if !out1[op] {
			t.Fatalf("op %d not dropped by burst: %v", op+1, out1[:10])
		}
	}
	if drops1 < 3 {
		t.Fatalf("drops = %d, want at least the burst", drops1)
	}
	f := NewRingFault(1, 0, Burst{AtOp: 1, Len: 1})
	hook := f.Hook()
	hook(0)
	hook(0)
	if f.Ops() != 2 || f.Drops() != 1 {
		t.Fatalf("ops=%d drops=%d, want 2/1", f.Ops(), f.Drops())
	}
}

func TestTransportFateExtremes(t *testing.T) {
	rng := sim.NewRNG(7)
	tr := &Transport{DropProb: 1}
	if drop, _, _ := tr.Fate(rng); !drop {
		t.Fatal("DropProb=1 did not drop")
	}
	tr = &Transport{DupProb: 1, DelayProb: 1, ExtraDelay: 5 * sim.Millisecond}
	drop, dups, extra := tr.Fate(rng)
	if drop || dups != 1 || extra != 5*sim.Millisecond {
		t.Fatalf("fate = (%v, %d, %v), want (false, 1, 5ms)", drop, dups, extra)
	}
	tr = &Transport{}
	if drop, dups, extra := tr.Fate(rng); drop || dups != 0 || extra != 0 {
		t.Fatal("zero transport perturbed a delivery")
	}
}

func TestWriteFaultStrings(t *testing.T) {
	for kind, want := range map[WriteFaultKind]string{
		WriteHealthy: "healthy", WriteFailAfter: "disk-full-after",
		WriteShortAt: "short-write", WriteFailAll: "disk-down",
		WriteFlipBit: "bit-flip", WriteTruncateAt: "torn-tail",
	} {
		if got := (WriteFault{Kind: kind}).String(); got != want {
			t.Errorf("String(%d) = %q, want %q", kind, got, want)
		}
	}
	if !strings.Contains(ErrDiskFull.Error(), "disk full") {
		t.Error("ErrDiskFull message changed")
	}
}
