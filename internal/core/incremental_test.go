package core_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// TestSnapshotServiceCheckpointsMatchBatch pins the incremental snapshot
// engine to the batch pipeline at every checkpoint, not just at the end:
// after each chunk of the stream, the service's snapshot must equal a
// full batch synthesis over exactly the events observed so far — DAG
// text, callback list, and diagnostics. This is the test that forces the
// pending-client machinery to be correct mid-stream, where a response's
// dispatched client may not have been observed yet: the batch re-run
// over the prefix produces the same "no client" decoration and
// diagnostic the engine must produce, and both must then converge to the
// real client once it appears in a later chunk.
func TestSnapshotServiceCheckpointsMatchBatch(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 6, Seed: 23})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	apps.BuildAVP(w, apps.AVPConfig{})
	apps.BuildSYN(w, apps.SYNConfig{})
	b.StopInit()

	svc := core.NewSnapshotService()
	var all []trace.Event

	checkpoints := 0
	check := func() {
		checkpoints++
		snap := svc.Snapshot()
		prefix := &trace.Trace{Events: all[:len(all):len(all)]}
		wantM := core.ExtractModel(prefix)
		wantD := core.BuildDAG(wantM)

		if got, want := core.Summary(snap.DAG), core.Summary(wantD); got != want {
			t.Fatalf("checkpoint %d (%d events): summary differs\n--- snapshot ---\n%s--- batch ---\n%s",
				checkpoints, len(all), got, want)
		}
		if got, want := core.ToDOT(snap.DAG, "g"), core.ToDOT(wantD, "g"); got != want {
			t.Fatalf("checkpoint %d (%d events): DOT differs", checkpoints, len(all))
		}
		if got, want := callbackText(snap.Model), callbackText(wantM); got != want {
			t.Fatalf("checkpoint %d (%d events): callbacks differ\n--- snapshot ---\n%s--- batch ---\n%s",
				checkpoints, len(all), got, want)
		}
		if got, want := fmt.Sprint(snap.Model.Diags), fmt.Sprint(wantM.Diags); got != want {
			t.Fatalf("checkpoint %d (%d events): diagnostics differ\n--- snapshot ---\n%s\n--- batch ---\n%s",
				checkpoints, len(all), got, want)
		}
	}

	sink := trace.SinkFunc(func(e trace.Event) {
		svc.Observe(e)
		all = append(all, e)
		if len(all)%1500 == 0 {
			check()
		}
	})
	for i := 0; i < 4; i++ {
		w.Run(sim.Second)
		if err := b.StreamTo(sink); err != nil {
			t.Fatal(err)
		}
	}
	check()
	if checkpoints < 3 {
		t.Fatalf("only %d checkpoints over %d events; stream too short to exercise the engine", checkpoints, len(all))
	}
}

func callbackText(m *core.Model) string {
	var sb strings.Builder
	for _, cb := range m.Callbacks {
		sb.WriteString(cb.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSnapshotSharesAreStable checks the clamp-shared materialization:
// slices handed out in one snapshot must not change as the engine keeps
// folding and later snapshots are taken.
func TestSnapshotSharesAreStable(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 7})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
		if err != nil {
			t.Fatal(err)
		}
	}
	apps.BuildAVP(w, apps.AVPConfig{})
	b.StopInit()

	svc := core.NewSnapshotService()
	w.Run(sim.Second)
	if err := b.StreamTo(svc); err != nil {
		t.Fatal(err)
	}
	first := svc.Snapshot()
	frozen := callbackText(first.Model)

	w.Run(3 * sim.Second)
	if err := b.StreamTo(svc); err != nil {
		t.Fatal(err)
	}
	second := svc.Snapshot()
	if callbackText(first.Model) != frozen {
		t.Fatal("first snapshot's model changed after further folding")
	}
	if second.Events <= first.Events {
		t.Fatalf("second snapshot saw %d events, first %d", second.Events, first.Events)
	}
}
