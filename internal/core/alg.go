package core

import (
	"fmt"
	"sort"

	"github.com/tracesynth/rostracer/internal/dds"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// Algorithm 2 — GetExecTime. It measures the CPU time a callback instance
// actually received by intersecting its [start, end] window with the
// executor thread's sched_switch segments: a switch whose previous thread
// is the executor closes a running segment; one whose next thread is the
// executor opens one. The thread is running at both the start event and
// the end event (the execute_* probes fire on-CPU), hence the initial
// last_start = start and the final segment ending at end.
//
// The paper's Algorithm 2 brackets the window with strict time
// comparisons, which is sound on real hardware where a context switch and
// a probe firing never share a nanosecond. In this simulator events can
// coincide in virtual time, so the window boundaries are refined with the
// global emission sequence numbers (startSeq/endSeq of the callback
// start/end probe events): a switch belongs to the window iff it was
// emitted after the start probe and before the end probe.
//
// sched must be the (time, seq)-sorted switch events mentioning pid (as
// prev or next); passing a superset is allowed but slower.
func ExecTime(start, end sim.Time, startSeq, endSeq uint64, pid uint32, sched []trace.Event) sim.Duration {
	var et sim.Duration
	last := start
	running := true // the start probe fires on-CPU
	// Binary search to the first event at or after start.
	lo := sort.Search(len(sched), func(i int) bool { return sched[i].Time >= start })
	for i := lo; i < len(sched); i++ {
		ev := sched[i]
		if ev.Time > end || (ev.Time == end && ev.Seq > endSeq) {
			break
		}
		if ev.Kind != trace.KindSchedSwitch {
			continue
		}
		if ev.Time == start && ev.Seq < startSeq {
			continue
		}
		if ev.PrevPID == pid && running {
			et += ev.Time.Sub(last)
			running = false
		} else if ev.NextPID == pid && !running {
			last = ev.Time
			running = true
		}
	}
	if running {
		et += end.Sub(last)
	}
	return et
}

// Diagnostic records a non-fatal inconsistency observed while extracting
// callbacks (e.g. a truncated instance at the end of a trace segment).
type Diagnostic struct {
	PID  uint32
	Time sim.Time
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("pid %d @%v: %s", d.PID, d.Time, d.Msg)
}

// eventIndex accelerates the FindCaller / FindClient searches of
// Algorithm 1 over the full (all-PID) ROS event sequence.
type eventIndex struct {
	events []trace.Event // sorted ROS events, all PIDs

	// writesBy maps (topic, srcTS) to positions of dds_write events.
	writesBy map[topicTS][]int
	// takeRespBy maps (response topic, srcTS) to positions of P13 events.
	takeRespBy map[topicTS][]int
}

type topicTS struct {
	topic string
	srcTS int64
}

func newEventIndex(rosSorted []trace.Event) *eventIndex {
	idx := &eventIndex{
		events:     rosSorted,
		writesBy:   make(map[topicTS][]int),
		takeRespBy: make(map[topicTS][]int),
	}
	for i, e := range rosSorted {
		switch e.Kind {
		case trace.KindDDSWrite:
			k := topicTS{e.Topic, e.SrcTS}
			idx.writesBy[k] = append(idx.writesBy[k], i)
		case trace.KindTakeResponse:
			k := topicTS{dds.ServiceResponseTopic(e.Topic), e.SrcTS}
			idx.takeRespBy[k] = append(idx.takeRespBy[k], i)
		}
	}
	return idx
}

// findCaller implements Algorithm 1's FindCaller: locate the dds_write of
// the request (same topic and source timestamp), then walk that PID's
// events backwards to the ID-bearing event (timer call or take) after the
// caller's last callback start.
func (idx *eventIndex) findCaller(reqTopic string, srcTS int64) uint64 {
	positions := idx.writesBy[topicTS{reqTopic, srcTS}]
	if len(positions) == 0 {
		return 0
	}
	pos := positions[0]
	writerPID := idx.events[pos].PID
	for j := pos - 1; j >= 0; j-- {
		e := idx.events[j]
		if e.PID != writerPID {
			continue
		}
		if e.Kind.IsCBStart() {
			return 0 // reached the caller's CB start without an ID event
		}
		if e.Kind == trace.KindTimerCall || e.Kind.IsTake() {
			return e.CBID
		}
	}
	return 0
}

// findClient implements Algorithm 1's FindClient: among the take_response
// events matching the response write, the one whose chronologically next
// take_type_erased_response (same PID) returns 1 identifies the client
// callback that will be dispatched.
func (idx *eventIndex) findClient(respTopic string, srcTS int64) uint64 {
	for _, pos := range idx.takeRespBy[topicTS{respTopic, srcTS}] {
		takeEv := idx.events[pos]
		for j := pos + 1; j < len(idx.events); j++ {
			e := idx.events[j]
			if e.PID != takeEv.PID {
				continue
			}
			if e.Kind == trace.KindTakeTypeErased {
				if e.Ret == 1 {
					return takeEv.CBID
				}
				break
			}
		}
	}
	return 0
}

// etFunc computes the measured execution time of one callback-instance
// window. The batch pipeline backs it with ExecTime over the node's
// materialized sched_switch events; the streaming pipeline with exec
// times accumulated online while the window was open.
type etFunc func(start, end sim.Time, startSeq, endSeq uint64) sim.Duration

// ExtractCallbacks is Algorithm 1: it traverses the ROS events of one node
// (identified by PID) in chronological order and assembles its CBlist with
// architectural and timing attributes. rosAll must contain the ROS events
// of *all* PIDs (the caller/client searches cross node boundaries);
// schedPID must contain the sched_switch events mentioning pid. Both must
// be time-sorted.
func ExtractCallbacks(pid uint32, idx *eventIndex, schedPID []trace.Event) ([]*Callback, []Diagnostic) {
	return extractCallbacks(pid, idx, func(start, end sim.Time, startSeq, endSeq uint64) sim.Duration {
		return ExecTime(start, end, startSeq, endSeq, pid, schedPID)
	})
}

// extractCallbacks is Algorithm 1's traversal with the execution-time
// measurement abstracted behind et.
func extractCallbacks(pid uint32, idx *eventIndex, et etFunc) ([]*Callback, []Diagnostic) {
	var list []*Callback
	var diags []Diagnostic

	// Current instance state (CB.* in the paper).
	var cur *Callback
	var curStart sim.Time
	var curStartSeq uint64
	var curInst Instance
	reset := func() { cur = nil; curInst = Instance{} }

	addToList := func(cb *Callback, inst Instance) {
		for _, existing := range list {
			if existing.ID != cb.ID {
				continue
			}
			// For a service CB both the ID and the subscribed topic (which
			// encodes the caller) must match; other types match on ID.
			if existing.Type == CBService && existing.InTopic != cb.InTopic {
				continue
			}
			existing.Stats.Add(inst.ET)
			existing.Instances = append(existing.Instances, inst)
			for _, t := range cb.OutTopics {
				existing.addOutTopic(t)
			}
			if cb.IsSync {
				existing.IsSync = true
			}
			if existing.InTopic == "" {
				existing.InTopic = cb.InTopic
			}
			return
		}
		cb.Stats.Add(inst.ET)
		cb.Instances = append(cb.Instances, inst)
		list = append(list, cb)
	}

	for i := 0; i < len(idx.events); i++ {
		event := idx.events[i]
		if event.PID != pid {
			continue
		}
		switch {
		case event.Kind.IsCBStart(): // P2 / P5 / P9 / P12
			if cur != nil {
				diags = append(diags, Diagnostic{pid, event.Time,
					fmt.Sprintf("callback start %v while instance from %v still open", event.Kind, curStart)})
			}
			cur = &Callback{PID: pid}
			curStart = event.Time
			curStartSeq = event.Seq
			curInst = Instance{}
			switch event.Kind {
			case trace.KindTimerCBStart:
				cur.Type = CBTimer
			case trace.KindSubCBStart:
				cur.Type = CBSubscriber
			case trace.KindServiceCBStart:
				cur.Type = CBService
			case trace.KindClientCBStart:
				cur.Type = CBClient
			}

		case event.Kind == trace.KindTimerCall && cur != nil: // P3
			cur.ID = event.CBID

		case event.Kind.IsTake() && cur != nil: // P6 / P10 / P13
			cur.ID = event.CBID
			curInst.TakeSrcTS = event.SrcTS
			switch event.Kind {
			case trace.KindTakeResponse:
				// Response read: concatenate own ID to distinguish clients.
				respTopic := dds.ServiceResponseTopic(event.Topic)
				cur.InTopic = decorate(respTopic, cur.ID)
				curInst.TakeTopic = respTopic
			case trace.KindTakeRequest:
				// Request read: concatenate the caller's ID.
				reqTopic := dds.ServiceRequestTopic(event.Topic)
				caller := idx.findCaller(reqTopic, event.SrcTS)
				if caller == 0 {
					diags = append(diags, Diagnostic{pid, event.Time,
						fmt.Sprintf("no caller found for request on %s srcTS=%d", reqTopic, event.SrcTS)})
				}
				cur.InTopic = decorate(reqTopic, caller)
				curInst.TakeTopic = reqTopic
			default:
				cur.InTopic = event.Topic
				curInst.TakeTopic = event.Topic
			}

		case event.Kind == trace.KindDDSWrite && cur != nil: // P16
			topic := event.Topic
			var out string
			switch {
			case dds.IsRequestTopic(topic):
				out = decorate(topic, cur.ID)
			case dds.IsResponseTopic(topic):
				client := idx.findClient(topic, event.SrcTS)
				if client == 0 {
					diags = append(diags, Diagnostic{pid, event.Time,
						fmt.Sprintf("no dispatched client found for response on %s srcTS=%d", topic, event.SrcTS)})
				}
				out = decorate(topic, client)
			default:
				out = topic
			}
			cur.addOutTopic(out)
			curInst.Writes = append(curInst.Writes, Write{Topic: topic, SrcTS: event.SrcTS})

		case event.Kind == trace.KindTakeTypeErased && event.Ret == 0: // P14: will not dispatch
			reset()

		case event.Kind == trace.KindSyncSubscribe && cur != nil: // P7
			cur.IsSync = true

		case event.Kind.IsCBEnd() && cur != nil: // P4 / P8 / P11 / P15
			end := event.Time
			curInst.Start = curStart
			curInst.End = end
			curInst.ET = et(curStart, end, curStartSeq, event.Seq)
			addToList(cur, curInst)
			reset()
		}
	}
	if cur != nil {
		diags = append(diags, Diagnostic{pid, curStart, "instance open at end of trace (truncated)"})
	}
	return list, diags
}

// decorate concatenates a callback ID to a topic name, the paper's
// mechanism for keeping service chains of different callers apart.
func decorate(topic string, id uint64) string {
	return fmt.Sprintf("%s#%x", topic, id)
}

// Model is the result of running Algorithm 1 over every node in a trace.
type Model struct {
	// Callbacks of all nodes, in (PID, first-instance) order.
	Callbacks []*Callback
	// NodeOf maps PID to node name (from P1 events).
	NodeOf map[uint32]string
	// Diags aggregates extraction diagnostics.
	Diags []Diagnostic
}

// buildModel runs Algorithm 1 for every node named by a P1 event in the
// time-sorted ROS events, with the per-PID execution-time measurement
// supplied by etFor. Shared by the batch (ExtractModel) and streaming
// (ModelBuilder) pipelines, so the two can only differ in how exec times
// are measured — a difference the streaming equivalence tests pin to
// zero.
func buildModel(ros []trace.Event, etFor func(pid uint32) etFunc) *Model {
	idx := newEventIndex(ros)

	m := &Model{NodeOf: make(map[uint32]string)}
	for _, e := range ros {
		if e.Kind == trace.KindCreateNode {
			m.NodeOf[e.PID] = e.Node
		}
	}

	pids := make([]uint32, 0, len(m.NodeOf))
	for pid := range m.NodeOf {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	for _, pid := range pids {
		cbs, diags := extractCallbacks(pid, idx, etFor(pid))
		for _, cb := range cbs {
			cb.Node = m.NodeOf[pid]
		}
		m.Callbacks = append(m.Callbacks, cbs...)
		m.Diags = append(m.Diags, diags...)
	}
	return m
}

// ExtractModel runs Algorithm 1 for every ROS2 node found in the trace
// (via P1 events; PIDs with ROS events but no P1 record — e.g. bare DDS
// replayers — are not modeled, matching the paper's deployment where only
// initialized ROS2 nodes are synthesized). This is the batch path: it
// materializes and sorts the whole trace, then measures exec times with
// ExecTime over per-PID sched_switch slices. ModelBuilder is the
// streaming equivalent.
func ExtractModel(tr *trace.Trace) *Model {
	sorted := tr.Clone()
	sorted.SortByTime()

	ros := sorted.ROSEvents()
	sched := sorted.SchedEvents()
	return buildModel(ros.Events, func(pid uint32) etFunc {
		schedPID := sched.FilterPID(pid).Events
		return func(start, end sim.Time, startSeq, endSeq uint64) sim.Duration {
			return ExecTime(start, end, startSeq, endSeq, pid, schedPID)
		}
	})
}
