package core_test

import (
	"reflect"
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

func synTrace(t *testing.T, seed uint64, dur sim.Duration) *trace.Trace {
	t.Helper()
	w, b := tracedWorld(t, 8, seed)
	apps.BuildSYN(w, apps.SYNConfig{})
	w.Run(dur)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCanonicalKeysStableAcrossSeeds: the vertex identities must be
// identical between independent runs (different seeds, hence different
// callback handles and timings), or cross-run DAG merging would be
// meaningless.
func TestCanonicalKeysStableAcrossSeeds(t *testing.T) {
	d1 := core.Synthesize(synTrace(t, 101, 8*sim.Second))
	d2 := core.Synthesize(synTrace(t, 202, 8*sim.Second))
	k1, k2 := d1.VertexKeys(), d2.VertexKeys()
	if !reflect.DeepEqual(k1, k2) {
		t.Fatalf("vertex keys differ across seeds:\n%v\n%v", k1, k2)
	}
	e1, e2 := d1.Edges(), d2.Edges()
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("edges differ across seeds:\n%v\n%v", e1, e2)
	}
}

// TestSynthesisDeterministic: same seed, same everything.
func TestSynthesisDeterministic(t *testing.T) {
	tr1 := synTrace(t, 55, 5*sim.Second)
	tr2 := synTrace(t, 55, 5*sim.Second)
	if len(tr1.Events) != len(tr2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(tr1.Events), len(tr2.Events))
	}
	for i := range tr1.Events {
		if tr1.Events[i] != tr2.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, tr1.Events[i], tr2.Events[i])
		}
	}
}

// TestMergeDAGsProperties: merging with an empty DAG is identity on
// structure; merge is commutative on vertex/edge sets and additive on
// instance counts.
func TestMergeDAGsProperties(t *testing.T) {
	a := core.Synthesize(synTrace(t, 1, 5*sim.Second))
	b := core.Synthesize(synTrace(t, 2, 5*sim.Second))

	ab := core.MergeDAGs(a, b)
	ba := core.MergeDAGs(b, a)
	if !reflect.DeepEqual(ab.VertexKeys(), ba.VertexKeys()) {
		t.Fatal("merge not commutative on vertices")
	}
	if !reflect.DeepEqual(ab.Edges(), ba.Edges()) {
		t.Fatal("merge not commutative on edges")
	}
	for _, k := range ab.VertexKeys() {
		va, vb := ab.Vertices[k], ba.Vertices[k]
		if va.Stats.Count != vb.Stats.Count || va.Stats.Min != vb.Stats.Min || va.Stats.Max != vb.Stats.Max {
			t.Fatalf("merge stats differ for %s", k)
		}
		sum := 0
		if x, ok := a.Vertices[k]; ok {
			sum += x.Stats.Count
		}
		if x, ok := b.Vertices[k]; ok {
			sum += x.Stats.Count
		}
		if va.Stats.Count != sum {
			t.Fatalf("instance counts not additive for %s: %d != %d", k, va.Stats.Count, sum)
		}
	}

	withEmpty := core.MergeDAGs(a, core.NewDAG(), nil)
	if !reflect.DeepEqual(withEmpty.VertexKeys(), a.VertexKeys()) {
		t.Fatal("merge with empty/nil changed vertices")
	}
}

// TestPerfBufferOverrunDegradesGracefully: with tiny perf buffers that are
// never drained mid-run, records are lost; extraction must not crash and
// must surface diagnostics rather than inventing callbacks.
func TestPerfBufferOverrunDegradesGracefully(t *testing.T) {
	// Build a raw trace and then truncate it mid-instance to simulate
	// record loss at the buffer boundary.
	tr := synTrace(t, 9, 5*sim.Second)
	tr.SortByTime()
	// Drop a window of events in the middle (a burst overrun).
	cut := tr.Clone()
	n := len(cut.Events)
	cut.Events = append(cut.Events[:n/2:n/2], cut.Events[n/2+200:]...)

	m := core.ExtractModel(cut)
	if len(m.Callbacks) == 0 {
		t.Fatal("no callbacks extracted from damaged trace")
	}
	// The damage is visible: either diagnostics, or fewer instances than
	// the undamaged trace yields.
	full := core.ExtractModel(tr)
	fullInst, cutInst := 0, 0
	for _, cb := range full.Callbacks {
		fullInst += cb.Stats.Count
	}
	for _, cb := range m.Callbacks {
		cutInst += cb.Stats.Count
	}
	if cutInst >= fullInst {
		t.Fatalf("damaged trace produced %d instances vs %d full", cutInst, fullInst)
	}
	if len(m.Diags) == 0 {
		t.Log("no diagnostics emitted (cut may have fallen between instances)")
	}
}

// TestStrayEventsIgnored: end/take/write events without a preceding start
// must be skipped (the paper's CB.start != nil guards).
func TestStrayEventsIgnored(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(
		trace.Event{Time: 0, Seq: 0, PID: 5, Kind: trace.KindCreateNode, Node: "n"},
		trace.Event{Time: 10, Seq: 1, PID: 5, Kind: trace.KindSubCBEnd},                                // stray end
		trace.Event{Time: 11, Seq: 2, PID: 5, Kind: trace.KindTakeInt, CBID: 1, Topic: "/x", SrcTS: 5}, // stray take
		trace.Event{Time: 12, Seq: 3, PID: 5, Kind: trace.KindDDSWrite, Topic: "/y", SrcTS: 12},        // stray write
		trace.Event{Time: 13, Seq: 4, PID: 5, Kind: trace.KindTimerCall, CBID: 2},                      // stray timer call
		// A well-formed instance afterwards.
		trace.Event{Time: 20, Seq: 5, PID: 5, Kind: trace.KindSubCBStart},
		trace.Event{Time: 20, Seq: 6, PID: 5, Kind: trace.KindTakeInt, CBID: 3, Topic: "/x", SrcTS: 15},
		trace.Event{Time: 25, Seq: 7, PID: 5, Kind: trace.KindSubCBEnd},
	)
	m := core.ExtractModel(tr)
	if len(m.Callbacks) != 1 {
		t.Fatalf("callbacks = %v", m.Callbacks)
	}
	cb := m.Callbacks[0]
	if cb.ID != 3 || cb.Stats.Count != 1 {
		t.Fatalf("wrong callback extracted: %v", cb)
	}
}

// TestDoubleStartDiagnosed: a start inside an open instance (lost end
// event) is reported and the new instance wins.
func TestDoubleStartDiagnosed(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(
		trace.Event{Time: 0, Seq: 0, PID: 5, Kind: trace.KindCreateNode, Node: "n"},
		trace.Event{Time: 10, Seq: 1, PID: 5, Kind: trace.KindSubCBStart},
		trace.Event{Time: 10, Seq: 2, PID: 5, Kind: trace.KindTakeInt, CBID: 1, Topic: "/x", SrcTS: 1},
		// end lost; next instance starts
		trace.Event{Time: 30, Seq: 3, PID: 5, Kind: trace.KindSubCBStart},
		trace.Event{Time: 30, Seq: 4, PID: 5, Kind: trace.KindTakeInt, CBID: 1, Topic: "/x", SrcTS: 2},
		trace.Event{Time: 35, Seq: 5, PID: 5, Kind: trace.KindSubCBEnd},
	)
	m := core.ExtractModel(tr)
	if len(m.Diags) == 0 {
		t.Fatal("double start not diagnosed")
	}
	if len(m.Callbacks) != 1 || m.Callbacks[0].Stats.Count != 1 {
		t.Fatalf("callbacks = %v", m.Callbacks)
	}
	if m.Callbacks[0].Instances[0].Start != 30 {
		t.Fatalf("wrong instance survived: %+v", m.Callbacks[0].Instances[0])
	}
}

// TestLostRecordsWithTinyPerfBuffers injects real buffer overruns through
// the eBPF layer and checks the pipeline stays sound.
func TestLostRecordsWithTinyPerfBuffers(t *testing.T) {
	w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 4, Seed: 31})
	b, err := tracers.NewBundle(w.Runtime())
	if err != nil {
		t.Fatal(err)
	}
	tracers.BridgeSched(w.Machine(), w.Runtime())
	if err := b.StartInit(); err != nil {
		t.Fatal(err)
	}
	if err := b.StartRT(); err != nil {
		t.Fatal(err)
	}
	apps.BuildSYN(w, apps.SYNConfig{})

	// Drain very rarely so buffers would overrun if they were bounded; the
	// default unbounded buffers must not lose records.
	w.Run(5 * sim.Second)
	tr, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if b.Lost() != 0 {
		t.Fatalf("lost %d records with unbounded buffers", b.Lost())
	}
	d := core.Synthesize(tr)
	if len(d.Vertices) != apps.SYNExpectedVertices {
		t.Fatalf("vertices = %d", len(d.Vertices))
	}
}
