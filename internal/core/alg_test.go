package core

import (
	"testing"
	"testing/quick"

	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

func sw(t sim.Time, prev, next uint32) trace.Event {
	return trace.Event{Time: t, Kind: trace.KindSchedSwitch, PrevPID: prev, NextPID: next}
}

func TestExecTimeNoPreemption(t *testing.T) {
	// No switches inside the window: ET is the wall window.
	if got := ExecTime(100, 600, 0, 1<<62, 7, nil); got != 500 {
		t.Fatalf("ET = %v, want 500", got)
	}
}

func TestExecTimeSinglePreemption(t *testing.T) {
	sched := []trace.Event{
		sw(200, 7, 9), // preempted at 200
		sw(350, 9, 7), // resumed at 350
	}
	// Window [100, 600]: segments [100,200] + [350,600] = 100 + 250.
	if got := ExecTime(100, 600, 0, 1<<62, 7, sched); got != 350 {
		t.Fatalf("ET = %v, want 350", got)
	}
}

func TestExecTimeMultiplePreemptions(t *testing.T) {
	sched := []trace.Event{
		sw(10, 7, 1),
		sw(20, 1, 7),
		sw(30, 7, 1),
		sw(45, 1, 7),
		sw(70, 7, 1), // outside window [0,60]? No: 70 > 60, ignored
	}
	// [0,60]: [0,10]+[20,30]+[45,60] = 10+10+15 = 35.
	if got := ExecTime(0, 60, 0, 1<<62, 7, sched); got != 35 {
		t.Fatalf("ET = %v, want 35", got)
	}
}

func TestExecTimeIgnoresEventsOutsideWindow(t *testing.T) {
	sched := []trace.Event{
		sw(50, 7, 1), sw(80, 1, 7), // before window
		sw(700, 7, 1), // after window
	}
	if got := ExecTime(100, 600, 0, 1<<62, 7, sched); got != 500 {
		t.Fatalf("ET = %v, want 500", got)
	}
}

func TestExecTimeIgnoresOtherThreads(t *testing.T) {
	sched := []trace.Event{
		sw(200, 3, 4),
		sw(300, 4, 3),
	}
	if got := ExecTime(100, 600, 0, 1<<62, 7, sched); got != 500 {
		t.Fatalf("ET = %v, want 500", got)
	}
}

func TestExecTimeBoundaryEventsExcluded(t *testing.T) {
	// Events exactly at start/end don't alter the measurement (strict
	// inequalities in the paper's Algorithm 2).
	sched := []trace.Event{
		sw(100, 1, 7), // switch-in exactly at start
		sw(600, 7, 1), // switch-out exactly at end
	}
	if got := ExecTime(100, 600, 0, 1<<62, 7, sched); got != 500 {
		t.Fatalf("ET = %v, want 500", got)
	}
}

func TestExecTimeProperty(t *testing.T) {
	// Property: for alternating out/in switch pairs inside the window, ET
	// equals window minus preempted time and never exceeds the window.
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		start := sim.Time(1000)
		end := start.Add(sim.Duration(1000 + r.Intn(100000)))
		var sched []trace.Event
		var preempted sim.Duration
		cursor := start
		for {
			gap := sim.Duration(1 + r.Intn(5000))
			outAt := cursor.Add(gap)
			backAt := outAt.Add(sim.Duration(1 + r.Intn(3000)))
			if backAt >= end {
				break
			}
			sched = append(sched, sw(outAt, 7, 1), sw(backAt, 1, 7))
			preempted += backAt.Sub(outAt)
			cursor = backAt
		}
		got := ExecTime(start, end, 0, 1<<62, 7, sched)
		want := end.Sub(start) - preempted
		return got == want && got <= end.Sub(start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// buildTrace constructs a hand-written trace exercising Algorithm 1
// directly: node 10 runs a timer publishing /a; node 20 subscribes /a.
func buildTrace() *trace.Trace {
	tr := &trace.Trace{}
	seq := uint64(0)
	add := func(e trace.Event) {
		e.Seq = seq
		seq++
		tr.Append(e)
	}
	add(trace.Event{Time: 0, PID: 10, Kind: trace.KindCreateNode, Node: "producer"})
	add(trace.Event{Time: 0, PID: 20, Kind: trace.KindCreateNode, Node: "consumer"})
	for i := 0; i < 3; i++ {
		base := sim.Time(1000 + i*1000)
		add(trace.Event{Time: base, PID: 10, Kind: trace.KindTimerCBStart})
		add(trace.Event{Time: base, PID: 10, Kind: trace.KindTimerCall, CBID: 0xA1})
		add(trace.Event{Time: base + 100, PID: 10, Kind: trace.KindDDSWrite, Topic: "/a", SrcTS: int64(base + 100)})
		add(trace.Event{Time: base + 100, PID: 10, Kind: trace.KindTimerCBEnd})
		add(trace.Event{Time: base + 150, PID: 20, Kind: trace.KindSubCBStart})
		add(trace.Event{Time: base + 150, PID: 20, Kind: trace.KindTakeInt, CBID: 0xB1, Topic: "/a", SrcTS: int64(base + 100)})
		add(trace.Event{Time: base + 350, PID: 20, Kind: trace.KindSubCBEnd})
	}
	return tr
}

func TestExtractModelBasics(t *testing.T) {
	tr := buildTrace()
	m := ExtractModel(tr)
	if len(m.Diags) != 0 {
		t.Fatalf("diagnostics: %v", m.Diags)
	}
	if len(m.Callbacks) != 2 {
		t.Fatalf("callbacks = %d: %v", len(m.Callbacks), m.Callbacks)
	}
	var timer, sub *Callback
	for _, cb := range m.Callbacks {
		switch cb.Type {
		case CBTimer:
			timer = cb
		case CBSubscriber:
			sub = cb
		}
	}
	if timer == nil || sub == nil {
		t.Fatal("missing callback types")
	}
	if timer.Node != "producer" || sub.Node != "consumer" {
		t.Errorf("nodes: %s/%s", timer.Node, sub.Node)
	}
	if timer.Stats.Count != 3 || sub.Stats.Count != 3 {
		t.Errorf("instance counts %d/%d", timer.Stats.Count, sub.Stats.Count)
	}
	// No sched events: ET = wall window.
	if timer.Stats.ACET() != 100 || sub.Stats.ACET() != 200 {
		t.Errorf("ACETs %v/%v", timer.Stats.ACET(), sub.Stats.ACET())
	}
	if !timer.HasOutTopic("/a") || sub.InTopic != "/a" {
		t.Errorf("topics: out=%v in=%q", timer.OutTopics, sub.InTopic)
	}
	if p := timer.EstimatePeriod(); p != 1000 {
		t.Errorf("period = %v", p)
	}
}

func TestBuildDAGSimpleEdge(t *testing.T) {
	d := Synthesize(buildTrace())
	if len(d.Vertices) != 2 {
		t.Fatalf("vertices = %v", d.VertexKeys())
	}
	edges := d.Edges()
	if len(edges) != 1 || edges[0].Topic != "/a" {
		t.Fatalf("edges = %v", edges)
	}
	from := d.Vertices[edges[0].From]
	to := d.Vertices[edges[0].To]
	if from.Type != CBTimer || to.Type != CBSubscriber {
		t.Fatalf("edge direction wrong: %v -> %v", from.Type, to.Type)
	}
}

func TestNonDispatchedClientInstanceDiscarded(t *testing.T) {
	tr := &trace.Trace{}
	seq := uint64(0)
	add := func(e trace.Event) {
		e.Seq = seq
		seq++
		tr.Append(e)
	}
	add(trace.Event{Time: 0, PID: 30, Kind: trace.KindCreateNode, Node: "client_b"})
	// A response arrives that belongs to another client: P12, P13, P14(0), P15.
	add(trace.Event{Time: 100, PID: 30, Kind: trace.KindClientCBStart})
	add(trace.Event{Time: 100, PID: 30, Kind: trace.KindTakeResponse, CBID: 0xC2, Topic: "sv", SrcTS: 50})
	add(trace.Event{Time: 101, PID: 30, Kind: trace.KindTakeTypeErased, Ret: 0})
	add(trace.Event{Time: 101, PID: 30, Kind: trace.KindClientCBEnd})
	m := ExtractModel(tr)
	if len(m.Callbacks) != 0 {
		t.Fatalf("non-dispatched instance produced callbacks: %v", m.Callbacks)
	}
}

func TestTruncatedInstanceDiagnosed(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(
		trace.Event{Time: 0, Seq: 0, PID: 5, Kind: trace.KindCreateNode, Node: "n"},
		trace.Event{Time: 10, Seq: 1, PID: 5, Kind: trace.KindSubCBStart},
		trace.Event{Time: 10, Seq: 2, PID: 5, Kind: trace.KindTakeInt, CBID: 1, Topic: "/x", SrcTS: 5},
		// no end: trace segment cut here
	)
	m := ExtractModel(tr)
	if len(m.Callbacks) != 0 {
		t.Fatal("truncated instance stored")
	}
	if len(m.Diags) != 1 {
		t.Fatalf("diags = %v", m.Diags)
	}
}

func TestStatsMergeAndPercentile(t *testing.T) {
	var a, b ExecStats
	for _, v := range []sim.Duration{5, 1, 3} {
		a.Add(v)
	}
	for _, v := range []sim.Duration{10, 2} {
		b.Add(v)
	}
	a.Merge(b)
	if a.Count != 5 || a.Min != 1 || a.Max != 10 {
		t.Fatalf("merged stats %+v", a)
	}
	if a.ACET() != (5+1+3+10+2)/5 {
		t.Fatalf("ACET = %v", a.ACET())
	}
	if p := a.Percentile(1.0); p != 10 {
		t.Fatalf("P100 = %v", p)
	}
	if p := a.Percentile(0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
}

func TestStatsMergeCommutesProperty(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a1, b1, a2, b2 ExecStats
		for _, x := range xs {
			a1.Add(sim.Duration(x))
			a2.Add(sim.Duration(x))
		}
		for _, y := range ys {
			b1.Add(sim.Duration(y))
			b2.Add(sim.Duration(y))
		}
		a1.Merge(b1) // a then b
		b2.Merge(a2) // b then a
		return a1.Count == b2.Count && a1.Min == b2.Min && a1.Max == b2.Max && a1.Sum == b2.Sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
