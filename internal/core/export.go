package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ToDOT renders the DAG in Graphviz format, clustering vertices by node
// (Fig. 3's presentation: same-node callbacks share a color/border) and
// annotating edges with topic names and vertices with measured timing.
func ToDOT(d *DAG, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  labelloc=t;\n  label=%q;\n", title, title)

	byNode := make(map[string][]*Vertex)
	for _, k := range d.VertexKeys() {
		v := d.Vertices[k]
		byNode[v.Node] = append(byNode[v.Node], v)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	id := func(key string) string {
		return "v" + strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				return r
			default:
				return '_'
			}
		}, key)
	}

	for i, n := range nodes {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n    style=rounded;\n", i, n)
		for _, v := range byNode[n] {
			shape := "box"
			extra := ""
			switch {
			case v.IsAnd:
				shape = "diamond"
				extra = "&"
			case v.OrJunction:
				extra = "OR"
			}
			label := vertexDisplay(v)
			if extra != "" {
				label = extra + "\\n" + label
			}
			fmt.Fprintf(&b, "    %s [shape=%s, label=\"%s\"];\n", id(v.Key), shape, label)
		}
		fmt.Fprintf(&b, "  }\n")
	}
	for _, e := range d.Edges() {
		fmt.Fprintf(&b, "  %s -> %s [label=%q];\n", id(e.From), id(e.To), e.Topic)
	}
	b.WriteString("}\n")
	return b.String()
}

func vertexDisplay(v *Vertex) string {
	if v.IsAnd {
		return "AND"
	}
	var parts []string
	switch v.Type {
	case CBTimer:
		parts = append(parts, fmt.Sprintf("timer %.0fms", v.Period().Milliseconds()))
	default:
		parts = append(parts, v.Type.String())
	}
	if v.Stats.Count > 0 {
		parts = append(parts, fmt.Sprintf("et=[%.2f, %.2f, %.2f]ms",
			v.Stats.BCET().Milliseconds(), v.Stats.ACET().Milliseconds(), v.Stats.WCET().Milliseconds()))
	}
	return strings.Join(parts, "\\n")
}

// jsonDAG is the exported JSON shape.
type jsonDAG struct {
	Vertices []jsonVertex `json:"vertices"`
	Edges    []Edge       `json:"edges"`
}

type jsonVertex struct {
	Key        string   `json:"key"`
	Node       string   `json:"node"`
	Type       string   `json:"type"`
	And        bool     `json:"and_junction,omitempty"`
	Or         bool     `json:"or_junction,omitempty"`
	Sync       bool     `json:"sync,omitempty"`
	InTopics   []string `json:"in_topics,omitempty"`
	OutTopics  []string `json:"out_topics,omitempty"`
	Count      int      `json:"instances"`
	BCETMillis float64  `json:"mbcet_ms"`
	ACETMillis float64  `json:"macet_ms"`
	WCETMillis float64  `json:"mwcet_ms"`
	PeriodMs   float64  `json:"period_ms,omitempty"`
}

// WriteJSON writes the DAG as JSON, suitable as input for external
// analysis tooling.
func WriteJSON(w io.Writer, d *DAG) error {
	out := jsonDAG{Edges: d.Edges()}
	for _, k := range d.VertexKeys() {
		v := d.Vertices[k]
		jv := jsonVertex{
			Key: v.Key, Node: v.Node, Type: v.Type.String(),
			And: v.IsAnd, Or: v.OrJunction, Sync: v.IsSync,
			InTopics: v.InTopics, OutTopics: v.OutTopics,
			Count:      v.Stats.Count,
			BCETMillis: v.Stats.BCET().Milliseconds(),
			ACETMillis: v.Stats.ACET().Milliseconds(),
			WCETMillis: v.Stats.WCET().Milliseconds(),
			PeriodMs:   v.Period().Milliseconds(),
		}
		if v.IsAnd {
			jv.Type = "and"
		}
		out.Vertices = append(out.Vertices, jv)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Summary renders a text table of the model, one row per vertex.
func Summary(d *DAG) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-10s %6s %10s %10s %10s\n",
		"vertex", "type", "n", "mBCET(ms)", "mACET(ms)", "mWCET(ms)")
	for _, k := range d.VertexKeys() {
		v := d.Vertices[k]
		typ := v.Type.String()
		if v.IsAnd {
			typ = "AND"
		}
		if v.OrJunction {
			typ += "+OR"
		}
		fmt.Fprintf(&b, "%-44.44s %-10s %6d %10.2f %10.2f %10.2f\n",
			v.Label(), typ, v.Stats.Count,
			v.Stats.BCET().Milliseconds(), v.Stats.ACET().Milliseconds(), v.Stats.WCET().Milliseconds())
	}
	fmt.Fprintf(&b, "%d vertices, %d edges\n", len(d.Vertices), len(d.Edges()))
	return b.String()
}
