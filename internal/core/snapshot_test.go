package core_test

import (
	"sync"
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// TestSnapshotServiceMatchesBatch streams a traced session into the
// snapshot service segment by segment — taking an intermediate snapshot
// after every drain, the -snapshot-every loop's shape — and checks the
// final snapshot equals the batch pipeline's artifacts byte for byte.
// Intermediate Finish calls must not perturb later ones.
func TestSnapshotServiceMatchesBatch(t *testing.T) {
	build := func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{})
		apps.BuildSYN(w, apps.SYNConfig{})
	}
	run := func(sink trace.Sink, segmented bool) *trace.Trace {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: 6, Seed: 17})
		b, err := tracers.NewBundle(w.Runtime())
		if err != nil {
			t.Fatal(err)
		}
		tracers.BridgeSched(w.Machine(), w.Runtime())
		for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
			if err != nil {
				t.Fatal(err)
			}
		}
		build(w)
		b.StopInit()
		if segmented {
			for i := 0; i < 4; i++ {
				w.Run(sim.Second)
				if err := b.StreamTo(sink); err != nil {
					t.Fatal(err)
				}
			}
			return nil
		}
		w.Run(4 * sim.Second)
		tr, err := b.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	svc := core.NewSnapshotService()
	var seen []core.Snapshot
	run(trace.SinkFunc(func(e trace.Event) {
		svc.Observe(e)
		// An intermediate snapshot roughly mid-stream exercises
		// re-finishing with windows still open.
		if svc.EventsObserved() == 1000 {
			seen = append(seen, svc.Snapshot())
		}
	}), true)
	final := svc.Snapshot()
	seen = append(seen, final)

	tr := run(nil, false)
	want := core.BuildDAG(core.ExtractModel(tr))

	if got, wantTxt := core.Summary(final.DAG), core.Summary(want); got != wantTxt {
		t.Fatalf("final snapshot summary differs from batch:\n--- snapshot ---\n%s--- batch ---\n%s", got, wantTxt)
	}
	if got, wantTxt := core.ToDOT(final.DAG, "g"), core.ToDOT(want, "g"); got != wantTxt {
		t.Fatalf("final snapshot DOT differs from batch")
	}
	if final.Events != uint64(tr.Len()) {
		t.Fatalf("snapshot saw %d events, batch trace has %d", final.Events, tr.Len())
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Seq <= seen[i-1].Seq || seen[i].Events < seen[i-1].Events ||
			seen[i].FoldedSched < seen[i-1].FoldedSched {
			t.Fatalf("snapshot counters regressed: %+v then %+v", seen[i-1], seen[i])
		}
	}
}

// TestSnapshotServiceConcurrent hammers the service with concurrent
// Observe batches while a snapshotter runs — the long-running tracer
// shape, under -race — and asserts monotonicity: every snapshot's
// folded-event count is non-decreasing, and the final totals are exact.
func TestSnapshotServiceConcurrent(t *testing.T) {
	svc := core.NewSnapshotService()

	const producers = 4
	const batches = 50
	const batchLen = 20

	// Sched-only batches: folding them never opens windows, so totals
	// are exact regardless of producer interleaving.
	mkBatch := func(p, b int) []trace.Event {
		evs := make([]trace.Event, batchLen)
		for i := range evs {
			evs[i] = trace.Event{
				Time: sim.Time(b*batchLen + i), Seq: uint64(p*batches*batchLen + b*batchLen + i),
				Kind: trace.KindSchedSwitch, PrevPID: uint32(p + 1), NextPID: uint32(p + 2),
			}
		}
		return evs
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snaps []core.Snapshot
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snaps = append(snaps, svc.Snapshot())
			}
		}
	}()
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for b := 0; b < batches; b++ {
				svc.ObserveBatch(mkBatch(p, b))
			}
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()

	final := svc.Snapshot()
	const total = producers * batches * batchLen
	if final.Events != total || final.FoldedSched != total {
		t.Fatalf("final snapshot: %d events / %d folded, want %d", final.Events, final.FoldedSched, total)
	}
	snaps = append(snaps, final)
	for i := 1; i < len(snaps); i++ {
		if snaps[i].FoldedSched < snaps[i-1].FoldedSched {
			t.Fatalf("snapshot %d folded %d after %d: not monotone",
				i, snaps[i].FoldedSched, snaps[i-1].FoldedSched)
		}
		if snaps[i].Events < snaps[i-1].Events {
			t.Fatalf("snapshot %d events %d after %d: not monotone",
				i, snaps[i].Events, snaps[i-1].Events)
		}
		if snaps[i].Seq != snaps[i-1].Seq+1 {
			t.Fatalf("snapshot seq not sequential: %d then %d", snaps[i-1].Seq, snaps[i].Seq)
		}
	}
}
