package core

import (
	"reflect"
	"testing"

	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// streamModel feeds a (Time, Seq)-sorted trace through the incremental
// builder, the way the streaming drain would.
func streamModel(tr *trace.Trace) *Model {
	mb := NewModelBuilder()
	for _, e := range tr.Events {
		mb.Observe(e)
	}
	return mb.Finish()
}

// requireSameModel fails unless the two models are deeply identical.
func requireSameModel(t *testing.T, got, want *Model) {
	t.Helper()
	if !reflect.DeepEqual(got.NodeOf, want.NodeOf) {
		t.Fatalf("NodeOf differs: %v vs %v", got.NodeOf, want.NodeOf)
	}
	if len(got.Callbacks) != len(want.Callbacks) {
		t.Fatalf("callback count %d vs %d", len(got.Callbacks), len(want.Callbacks))
	}
	for i := range want.Callbacks {
		if !reflect.DeepEqual(got.Callbacks[i], want.Callbacks[i]) {
			t.Fatalf("callback %d differs:\n stream: %+v\n batch:  %+v",
				i, got.Callbacks[i], want.Callbacks[i])
		}
	}
	if !reflect.DeepEqual(got.Diags, want.Diags) {
		t.Fatalf("diagnostics differ: %v vs %v", got.Diags, want.Diags)
	}
}

// TestModelBuilderMatchesExtractModelSimple pins the streaming builder
// to the batch extraction on the hand-written producer/consumer trace.
func TestModelBuilderMatchesExtractModelSimple(t *testing.T) {
	tr := buildTrace()
	requireSameModel(t, streamModel(tr), ExtractModel(tr))
}

// TestModelBuilderBoundarySwitches exercises the (Time, Seq) window
// bracketing Algorithm 2 needs when switches share a timestamp with the
// start or end probe: emitted-before-start and emitted-after-end
// switches must not count, emitted-inside ones must.
func TestModelBuilderBoundarySwitches(t *testing.T) {
	tr := &trace.Trace{}
	seq := uint64(0)
	add := func(e trace.Event) {
		e.Seq = seq
		seq++
		tr.Append(e)
	}
	add(trace.Event{Time: 0, PID: 7, Kind: trace.KindCreateNode, Node: "n"})
	// Switch out at t=100 emitted BEFORE the start probe at t=100: the
	// callback had not started; must be ignored.
	add(trace.Event{Time: 100, Kind: trace.KindSchedSwitch, PrevPID: 7, NextPID: 1})
	add(trace.Event{Time: 100, PID: 7, Kind: trace.KindTimerCBStart})
	add(trace.Event{Time: 100, PID: 7, Kind: trace.KindTimerCall, CBID: 0xC})
	// Preemption inside the window, sharing the start timestamp but
	// emitted after the start probe: counts.
	add(trace.Event{Time: 100, Kind: trace.KindSchedSwitch, PrevPID: 7, NextPID: 1})
	add(trace.Event{Time: 160, Kind: trace.KindSchedSwitch, PrevPID: 1, NextPID: 7})
	// Same thread as prev and next (yield to self): suspend wins.
	add(trace.Event{Time: 180, Kind: trace.KindSchedSwitch, PrevPID: 7, NextPID: 7})
	add(trace.Event{Time: 190, Kind: trace.KindSchedSwitch, PrevPID: 7, NextPID: 7})
	add(trace.Event{Time: 200, PID: 7, Kind: trace.KindTimerCBEnd})
	// Switch at the end timestamp emitted after the end probe: ignored.
	add(trace.Event{Time: 200, Kind: trace.KindSchedSwitch, PrevPID: 7, NextPID: 1})

	got, want := streamModel(tr), ExtractModel(tr)
	requireSameModel(t, got, want)
	if len(want.Callbacks) != 1 || len(want.Callbacks[0].Instances) != 1 {
		t.Fatalf("unexpected extraction shape: %+v", want.Callbacks)
	}
	// Window [100,200]: on-CPU [100,100] + [160,180] + [190,200] = 30.
	if et := want.Callbacks[0].Instances[0].ET; et != 30 {
		t.Fatalf("batch ET = %v, want 30", et)
	}
}

// TestModelBuilderRandomInterleavings is the extraction-level property
// test: random sorted interleavings of callback windows and switches
// over several PIDs produce byte-identical models through both paths.
func TestModelBuilderRandomInterleavings(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		r := sim.NewRNG(seed)
		tr := &trace.Trace{}
		seq := uint64(0)
		add := func(e trace.Event) {
			e.Seq = seq
			seq++
			tr.Append(e)
		}
		pids := []uint32{7, 8, 9}
		for i, pid := range pids {
			add(trace.Event{Time: 0, PID: pid, Kind: trace.KindCreateNode,
				Node: string(rune('a' + i))})
		}
		now := sim.Time(10)
		inWindow := map[uint32]bool{}
		for step := 0; step < 400; step++ {
			if r.Intn(3) > 0 {
				now += sim.Time(r.Intn(40))
			}
			pid := pids[r.Intn(len(pids))]
			switch r.Intn(4) {
			case 0: // toggle a window
				if inWindow[pid] {
					add(trace.Event{Time: now, PID: pid, Kind: trace.KindTimerCBEnd})
					inWindow[pid] = false
				} else {
					add(trace.Event{Time: now, PID: pid, Kind: trace.KindTimerCBStart})
					add(trace.Event{Time: now, PID: pid, Kind: trace.KindTimerCall,
						CBID: uint64(pid)})
					inWindow[pid] = true
				}
			case 1: // switch away to an uninvolved thread
				add(trace.Event{Time: now, Kind: trace.KindSchedSwitch,
					PrevPID: pid, NextPID: 1})
			case 2: // switch back from an uninvolved thread
				add(trace.Event{Time: now, Kind: trace.KindSchedSwitch,
					PrevPID: 1, NextPID: pid})
			case 3: // direct handoff between two traced threads
				other := pids[r.Intn(len(pids))]
				add(trace.Event{Time: now, Kind: trace.KindSchedSwitch,
					PrevPID: pid, NextPID: other})
			}
		}
		for _, pid := range pids {
			if inWindow[pid] {
				add(trace.Event{Time: now + 5, PID: pid, Kind: trace.KindTimerCBEnd})
			}
		}
		requireSameModel(t, streamModel(tr), ExtractModel(tr))
	}
}

// TestModelBuilderFoldsSchedEvents checks the memory contract: scheduler
// events stream through without being buffered.
func TestModelBuilderFoldsSchedEvents(t *testing.T) {
	mb := NewModelBuilder()
	mb.Observe(trace.Event{Time: 1, Seq: 0, PID: 7, Kind: trace.KindCreateNode, Node: "n"})
	for i := 0; i < 1000; i++ {
		mb.Observe(trace.Event{Time: sim.Time(2 + i), Seq: uint64(1 + i),
			Kind: trace.KindSchedSwitch, PrevPID: 7, NextPID: 1})
	}
	if mb.BufferedROSEvents() != 1 {
		t.Fatalf("builder buffered %d ROS events, want 1", mb.BufferedROSEvents())
	}
	if mb.SchedEventsFolded() != 1000 {
		t.Fatalf("folded %d sched events, want 1000", mb.SchedEventsFolded())
	}
}
