package core

import (
	"fmt"
	"reflect"
	"testing"
)

// referenceInEdges/referenceOutEdges are the pre-index O(E log E)
// implementations, kept as the oracle for the adjacency indexes.
func referenceInEdges(d *DAG, key string) []Edge {
	var out []Edge
	for _, e := range d.Edges() {
		if e.To == key {
			out = append(out, e)
		}
	}
	return out
}

func referenceOutEdges(d *DAG, key string) []Edge {
	var out []Edge
	for _, e := range d.Edges() {
		if e.From == key {
			out = append(out, e)
		}
	}
	return out
}

// TestDAGAdjacencyIndexConsistency interleaves AddEdge calls (including
// duplicates) with queries and checks the indexes always agree with the
// brute-force scan over the sorted edge list.
func TestDAGAdjacencyIndexConsistency(t *testing.T) {
	d := NewDAG()
	vertices := []string{"a", "b", "c", "d", "e"}
	check := func(step string) {
		t.Helper()
		for _, v := range vertices {
			if got, want := d.InEdges(v), referenceInEdges(d, v); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: InEdges(%s) = %v, want %v", step, v, got, want)
			}
			if got, want := d.OutEdges(v), referenceOutEdges(d, v); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: OutEdges(%s) = %v, want %v", step, v, got, want)
			}
		}
	}

	check("empty")
	// Deterministic pseudo-random interleaving of inserts and duplicates.
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return int((state * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
	}
	var inserted []Edge
	for i := 0; i < 200; i++ {
		var e Edge
		if len(inserted) > 0 && i%5 == 4 {
			e = inserted[next(len(inserted))] // duplicate insert
		} else {
			e = Edge{
				From:  vertices[next(len(vertices))],
				To:    vertices[next(len(vertices))],
				Topic: fmt.Sprintf("/t%d", next(7)),
			}
		}
		d.AddEdge(e)
		inserted = append(inserted, e)
		if i%17 == 0 {
			check(fmt.Sprintf("step %d", i))
		}
	}
	check("final")

	// Edge count matches the deduplicated set.
	uniq := make(map[Edge]struct{})
	for _, e := range inserted {
		uniq[e] = struct{}{}
	}
	if len(d.Edges()) != len(uniq) {
		t.Fatalf("Edges() = %d, want %d unique", len(d.Edges()), len(uniq))
	}
	for e := range uniq {
		if !d.HasEdge(e) {
			t.Fatalf("HasEdge(%v) = false after insert", e)
		}
	}
}

// TestEdgesCacheInvalidation checks the sorted-edge cache is rebuilt after
// AddEdge and that repeated calls return a consistent sorted view.
func TestEdgesCacheInvalidation(t *testing.T) {
	d := NewDAG()
	d.AddEdge(Edge{From: "b", To: "c", Topic: "/1"})
	d.AddEdge(Edge{From: "a", To: "b", Topic: "/1"})
	first := d.Edges()
	if len(first) != 2 || first[0].From != "a" {
		t.Fatalf("edges not sorted: %v", first)
	}
	if again := d.Edges(); &again[0] != &first[0] {
		t.Fatal("Edges() did not reuse the cache between AddEdge calls")
	}
	d.AddEdge(Edge{From: "0", To: "a", Topic: "/1"})
	after := d.Edges()
	if len(after) != 3 || after[0].From != "0" {
		t.Fatalf("cache not invalidated by AddEdge: %v", after)
	}
	// Duplicate insertion must not invalidate the cache.
	d.AddEdge(Edge{From: "0", To: "a", Topic: "/1"})
	if again := d.Edges(); &again[0] != &after[0] {
		t.Fatal("duplicate AddEdge invalidated the cache")
	}
}

// TestVertexByLabelSubstringOrder checks the direct-scan implementation
// still returns the first match in key order.
func TestVertexByLabelSubstringOrder(t *testing.T) {
	d := NewDAG()
	for _, k := range []string{"node_z|sub|/t", "node_a|sub|/t", "node_m|timer|", "other"} {
		d.Vertices[k] = &Vertex{Key: k}
	}
	if v := d.VertexByLabelSubstring("|sub|"); v == nil || v.Key != "node_a|sub|/t" {
		t.Fatalf("got %+v, want node_a|sub|/t", v)
	}
	if v := d.VertexByLabelSubstring("node_m"); v == nil || v.Key != "node_m|timer|" {
		t.Fatalf("got %+v, want node_m|timer|", v)
	}
	if v := d.VertexByLabelSubstring("missing"); v != nil {
		t.Fatalf("got %+v, want nil", v)
	}
}
