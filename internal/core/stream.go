package core

import (
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/trace"
)

// ModelBuilder is the streaming counterpart of ExtractModel: an
// incremental Algorithm 1 that consumes one event at a time (it is a
// trace.Sink) and assembles the same Model the batch extraction builds
// from a materialized trace.
//
// Events must arrive in (Time, Seq) order — exactly what the streaming
// drain (tracers.Bundle.StreamTo) delivers, including across successive
// periodic drains, since virtual time and the emission counter only
// grow.
//
// The memory shape is what makes streaming worthwhile: ROS middleware
// events are buffered (Algorithm 1's caller/client searches cross node
// boundaries in both directions, so the model needs them all), but
// scheduler events — the bulk of any kernel-traced run — are folded into
// per-PID execution-time accumulators as they pass and never retained.
// Algorithm 2 runs online: a callback-start probe opens a window
// (running, since the probe fires on-CPU), switches charge or suspend
// the window as they stream by, and the callback-end probe closes it.
// The (Time, Seq) bracketing ExecTime applies to window boundaries falls
// out of stream order for free: a switch sharing the start timestamp but
// emitted earlier arrives before the start probe and is ignored; one
// sharing the end timestamp but emitted later arrives after the end
// probe, when the window is already closed.
type ModelBuilder struct {
	ros   []trace.Event
	open  map[uint32]*etWindow
	et    map[etKey]sim.Duration
	sched uint64

	// etLog records closed windows in close order. It lets an incremental
	// consumer (the snapshot engine) pick up exactly the windows closed
	// since its last visit by remembering a log position, without touching
	// the live et map — entries [0, n) never change once appended.
	etLog []etEntry
}

// etEntry is one closed callback-instance window: its identity and the
// accumulated execution time.
type etEntry struct {
	key etKey
	et  sim.Duration
}

// etKey identifies one callback-instance window: the executor PID plus
// the emission sequence number of its start probe (globally unique).
type etKey struct {
	pid      uint32
	startSeq uint64
}

// etWindow accumulates Algorithm 2 state for one open window.
type etWindow struct {
	startSeq uint64
	last     sim.Time
	et       sim.Duration
	running  bool
}

// NewModelBuilder returns an empty builder.
func NewModelBuilder() *ModelBuilder {
	return &ModelBuilder{
		open: make(map[uint32]*etWindow),
		et:   make(map[etKey]sim.Duration),
	}
}

// Observe implements trace.Sink.
func (b *ModelBuilder) Observe(e trace.Event) {
	switch e.Kind {
	case trace.KindSchedSwitch:
		b.sched++
		b.observeSwitch(e)
	case trace.KindSchedWakeup:
		b.sched++ // wakeups carry no Algorithm 2 information
	default:
		b.ros = append(b.ros, e)
		switch {
		case e.Kind.IsCBStart():
			// The start probe fires on-CPU, so the window opens running.
			b.open[e.PID] = &etWindow{startSeq: e.Seq, last: e.Time, running: true}
		case e.Kind.IsCBEnd():
			if w, ok := b.open[e.PID]; ok {
				et := w.et
				if w.running {
					et += e.Time.Sub(w.last)
				}
				b.et[etKey{e.PID, w.startSeq}] = et
				b.etLog = append(b.etLog, etEntry{etKey{e.PID, w.startSeq}, et})
				delete(b.open, e.PID)
			}
		}
	}
}

// observeSwitch folds one sched_switch into the open windows, mirroring
// ExecTime's per-PID branch structure: a switch whose previous thread
// owns a running window suspends it; one whose next thread owns a
// suspended window resumes it — and when one thread is both prev and
// next, the suspend branch wins, as in the batch loop's else-if.
func (b *ModelBuilder) observeSwitch(e trace.Event) {
	if e.PrevPID == e.NextPID {
		if w, ok := b.open[e.PrevPID]; ok {
			if w.running {
				w.et += e.Time.Sub(w.last)
				w.running = false
			} else {
				w.last = e.Time
				w.running = true
			}
		}
		return
	}
	if w, ok := b.open[e.PrevPID]; ok && w.running {
		w.et += e.Time.Sub(w.last)
		w.running = false
	}
	if w, ok := b.open[e.NextPID]; ok && !w.running {
		w.last = e.Time
		w.running = true
	}
}

// BufferedROSEvents reports how many ROS events the builder holds — the
// streaming pipeline's entire retained state besides O(open windows).
func (b *ModelBuilder) BufferedROSEvents() int { return len(b.ros) }

// SchedEventsFolded reports how many scheduler events streamed through
// without being retained.
func (b *ModelBuilder) SchedEventsFolded() uint64 { return b.sched }

// Finish runs the rest of Algorithm 1 over the buffered ROS events and
// returns the model. It does not consume the builder: more events may be
// observed and Finish called again, so a long-running tracer can
// re-synthesize periodically while the session continues.
func (b *ModelBuilder) Finish() *Model {
	return buildModel(b.ros, func(pid uint32) etFunc {
		return func(start, end sim.Time, startSeq, endSeq uint64) sim.Duration {
			return b.et[etKey{pid, startSeq}]
		}
	})
}

// SynthesizeSink couples a ModelBuilder to DAG synthesis: stream a
// session (or several segments) into it, then call DAG. It is the
// streaming form of Synthesize.
type SynthesizeSink struct {
	ModelBuilder
}

// DAG builds the precedence DAG from everything observed so far.
func (s *SynthesizeSink) DAG() *DAG { return BuildDAG(s.Finish()) }

// NewSynthesizeSink returns an empty synthesis sink.
func NewSynthesizeSink() *SynthesizeSink {
	return &SynthesizeSink{ModelBuilder: *NewModelBuilder()}
}
