package core_test

import (
	"reflect"
	"testing"

	"github.com/tracesynth/rostracer/internal/apps"
	"github.com/tracesynth/rostracer/internal/core"
	"github.com/tracesynth/rostracer/internal/rclcpp"
	"github.com/tracesynth/rostracer/internal/sim"
	"github.com/tracesynth/rostracer/internal/tracers"
)

// streamedAndBatchModels runs two identical traced sessions and
// synthesizes one through the streaming pipeline (StreamTo into a
// ModelBuilder, no materialized trace) and one through the batch
// pipeline (Drain then ExtractModel).
func streamedAndBatchModels(t *testing.T, cpus int, seed uint64,
	build func(*rclcpp.World)) (streamed, batch *core.Model) {
	t.Helper()
	run := func() (*rclcpp.World, *tracers.Bundle) {
		w := rclcpp.NewWorld(rclcpp.Config{NumCPUs: cpus, Seed: seed})
		b, err := tracers.NewBundle(w.Runtime())
		if err != nil {
			t.Fatal(err)
		}
		tracers.BridgeSched(w.Machine(), w.Runtime())
		for _, err := range []error{b.StartInit(), b.StartRT(), b.StartKernel(true)} {
			if err != nil {
				t.Fatal(err)
			}
		}
		build(w)
		b.StopInit()
		w.Run(4 * sim.Second)
		return w, b
	}

	_, bS := run()
	mb := core.NewModelBuilder()
	if err := bS.StreamTo(mb); err != nil {
		t.Fatal(err)
	}
	streamed = mb.Finish()

	_, bB := run()
	tr, err := bB.Drain()
	if err != nil {
		t.Fatal(err)
	}
	batch = core.ExtractModel(tr)
	return streamed, batch
}

// TestStreamedModelMatchesBatch pins the whole streamed pipeline —
// per-ring segment cursors, lazy decode, tournament merge, incremental
// Algorithm 1/2 — to the batch pipeline, over workloads covering every
// probe: SYN (services, clients), AVP (sync subscribers), both together,
// and a single-CPU SYN run that forces preemption so the online exec
// times are measured under real interference.
func TestStreamedModelMatchesBatch(t *testing.T) {
	cases := []struct {
		name  string
		cpus  int
		build func(*rclcpp.World)
	}{
		{"syn", 6, func(w *rclcpp.World) { apps.BuildSYN(w, apps.SYNConfig{}) }},
		{"avp", 6, func(w *rclcpp.World) { apps.BuildAVP(w, apps.AVPConfig{}) }},
		{"both", 4, func(w *rclcpp.World) {
			apps.BuildAVP(w, apps.AVPConfig{})
			apps.BuildSYN(w, apps.SYNConfig{})
		}},
		{"preempted-syn", 1, func(w *rclcpp.World) {
			apps.BuildSYN(w, apps.SYNConfig{Prio: 3})
			apps.BackgroundLoad(w, 2, 8, 0, 10*sim.Millisecond, 2*sim.Millisecond)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			streamed, batch := streamedAndBatchModels(t, tc.cpus, 21, tc.build)
			if len(batch.Callbacks) == 0 {
				t.Fatal("batch model extracted no callbacks")
			}
			if !reflect.DeepEqual(streamed.NodeOf, batch.NodeOf) {
				t.Fatalf("NodeOf differs: %v vs %v", streamed.NodeOf, batch.NodeOf)
			}
			if len(streamed.Callbacks) != len(batch.Callbacks) {
				t.Fatalf("callback counts differ: %d vs %d",
					len(streamed.Callbacks), len(batch.Callbacks))
			}
			for i := range batch.Callbacks {
				if !reflect.DeepEqual(streamed.Callbacks[i], batch.Callbacks[i]) {
					t.Fatalf("callback %d differs:\n stream: %+v\n batch:  %+v",
						i, streamed.Callbacks[i], batch.Callbacks[i])
				}
			}
			if !reflect.DeepEqual(streamed.Diags, batch.Diags) {
				t.Fatalf("diagnostics differ:\n stream: %v\n batch:  %v",
					streamed.Diags, batch.Diags)
			}
		})
	}
}

// TestStreamedDAGMatchesBatchDOT pins the figure artifact itself: the
// DOT export of the streamed DAG must be byte-identical to the batch
// one.
func TestStreamedDAGMatchesBatchDOT(t *testing.T) {
	streamed, batch := streamedAndBatchModels(t, 6, 5, func(w *rclcpp.World) {
		apps.BuildAVP(w, apps.AVPConfig{})
		apps.BuildSYN(w, apps.SYNConfig{})
	})
	got := core.ToDOT(core.BuildDAG(streamed), "x")
	want := core.ToDOT(core.BuildDAG(batch), "x")
	if got != want {
		t.Fatalf("DOT outputs differ:\n--- streamed ---\n%s\n--- batch ---\n%s", got, want)
	}
	gotSum := core.Summary(core.BuildDAG(streamed))
	wantSum := core.Summary(core.BuildDAG(batch))
	if gotSum != wantSum {
		t.Fatalf("summaries differ:\n--- streamed ---\n%s\n--- batch ---\n%s", gotSum, wantSum)
	}
}
