package core

import (
	"sync"

	"github.com/tracesynth/rostracer/internal/trace"
)

// SnapshotService puts a live synthesis loop on top of ModelBuilder: a
// long-running tracer streams drained events in (concurrently, batch by
// batch) while periodic Snapshot calls hand out the current model and
// DAG.
//
// Synthesis is incremental: a snapEngine folds only the events observed
// since the previous snapshot into persistent model and DAG delta state
// (extraction machines, search index, per-callback accumulators), so
// Snapshot cost is proportional to the delta, not to session length.
// Model building also runs off the observation lock — Observe holds mu
// for one event fold; Snapshot holds it just long enough to capture the
// builder's append-only buffers, then indexes, extracts, and builds the
// DAG under its own serialization lock while observation continues.
type SnapshotService struct {
	mu  sync.Mutex // guards b and obs: the whole Observe footprint
	b   *ModelBuilder
	obs uint64 // total events observed, ROS + sched

	synthMu sync.Mutex // serializes snapshots; guards seq and eng
	seq     int
	eng     *snapEngine
}

// Snapshot is one point-in-time synthesis of the stream so far. Counters
// are cumulative, so across successive snapshots every one of them is
// non-decreasing — the monotonicity the race test asserts.
type Snapshot struct {
	Seq         int    // 1-based snapshot number
	Events      uint64 // events observed when the snapshot was taken
	FoldedSched uint64 // sched events folded online (never retained)
	BufferedROS int    // ROS events the builder holds
	Model       *Model
	DAG         *DAG
}

// NewSnapshotService returns a service over an empty builder.
func NewSnapshotService() *SnapshotService {
	return &SnapshotService{b: NewModelBuilder(), eng: newSnapEngine()}
}

// Observe implements trace.Sink. Safe for concurrent use; events must
// still arrive in (Time, Seq) order overall, so concurrent producers
// must partition the stream the way the drain loop does (whole drained
// segments, one producer at a time per segment).
func (s *SnapshotService) Observe(e trace.Event) {
	s.mu.Lock()
	s.b.Observe(e)
	s.obs++
	s.mu.Unlock()
}

// ObserveBatch folds a whole drained batch under one lock acquisition,
// for producers that already hold events in batches. (The rostracer
// drain loop streams per-event through Observe instead — its segments
// are never materialized, and one uncontended lock per event is noise
// next to record decode.)
func (s *SnapshotService) ObserveBatch(evs []trace.Event) {
	s.mu.Lock()
	for _, e := range evs {
		s.b.Observe(e)
	}
	s.obs += uint64(len(evs))
	s.mu.Unlock()
}

// EventsObserved reports how many events the service has folded so far.
func (s *SnapshotService) EventsObserved() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obs
}

// Snapshot synthesizes the model and DAG from everything observed so
// far, folding only the delta since the previous snapshot. Observation
// is blocked only for the buffer capture — the builder's ros and
// closed-window buffers are append-only, so their captured prefixes
// stay immutable while the fold and DAG build run outside the lock.
func (s *SnapshotService) Snapshot() Snapshot {
	s.synthMu.Lock()
	defer s.synthMu.Unlock()
	s.seq++

	s.mu.Lock()
	ros, etLog := s.b.ros, s.b.etLog
	obs, sched := s.obs, s.b.sched
	s.mu.Unlock()

	s.eng.fold(ros, etLog)
	s.eng.resolvePending()
	m, periodOf := s.eng.materialize()
	return Snapshot{
		Seq:         s.seq,
		Events:      obs,
		FoldedSched: sched,
		BufferedROS: len(ros),
		Model:       m,
		DAG:         buildDAG(m, periodOf),
	}
}
