package core

import (
	"sync"

	"github.com/tracesynth/rostracer/internal/trace"
)

// SnapshotService puts a live synthesis loop on top of ModelBuilder: a
// long-running tracer streams drained events in (concurrently, batch by
// batch) while periodic Snapshot calls re-run the rest of Algorithm 1
// over everything observed so far and hand out the current model and
// DAG. ModelBuilder already supports re-finishing as the stream grows;
// the service adds the locking that lets observation and snapshotting
// interleave safely, which is all a drain loop and a snapshot ticker
// need to share one builder.
type SnapshotService struct {
	mu  sync.Mutex
	b   *ModelBuilder
	seq int
	obs uint64 // total events observed, ROS + sched
}

// Snapshot is one point-in-time synthesis of the stream so far. Counters
// are cumulative, so across successive snapshots every one of them is
// non-decreasing — the monotonicity the race test asserts.
type Snapshot struct {
	Seq         int    // 1-based snapshot number
	Events      uint64 // events observed when the snapshot was taken
	FoldedSched uint64 // sched events folded online (never retained)
	BufferedROS int    // ROS events the builder holds
	Model       *Model
	DAG         *DAG
}

// NewSnapshotService returns a service over an empty builder.
func NewSnapshotService() *SnapshotService {
	return &SnapshotService{b: NewModelBuilder()}
}

// Observe implements trace.Sink. Safe for concurrent use; events must
// still arrive in (Time, Seq) order overall, so concurrent producers
// must partition the stream the way the drain loop does (whole drained
// segments, one producer at a time per segment).
func (s *SnapshotService) Observe(e trace.Event) {
	s.mu.Lock()
	s.b.Observe(e)
	s.obs++
	s.mu.Unlock()
}

// ObserveBatch folds a whole drained batch under one lock acquisition,
// for producers that already hold events in batches. (The rostracer
// drain loop streams per-event through Observe instead — its segments
// are never materialized, and one uncontended lock per event is noise
// next to record decode.)
func (s *SnapshotService) ObserveBatch(evs []trace.Event) {
	s.mu.Lock()
	for _, e := range evs {
		s.b.Observe(e)
	}
	s.obs += uint64(len(evs))
	s.mu.Unlock()
}

// EventsObserved reports how many events the service has folded so far.
func (s *SnapshotService) EventsObserved() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obs
}

// Snapshot synthesizes the model and DAG from everything observed so
// far. The builder is not consumed: observation continues and later
// snapshots see a superset of the stream.
func (s *SnapshotService) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	m := s.b.Finish()
	return Snapshot{
		Seq:         s.seq,
		Events:      s.obs,
		FoldedSched: s.b.SchedEventsFolded(),
		BufferedROS: s.b.BufferedROSEvents(),
		Model:       m,
		DAG:         BuildDAG(m),
	}
}
