// Package core implements the paper's timing-model synthesis: Algorithm 1
// (callback-attribute extraction from merged ROS2 + scheduler traces),
// Algorithm 2 (execution-time measurement), and the DAG construction rules
// of Sec. IV including per-caller service splitting, OR junctions, and AND
// junctions for message synchronization — plus DAG merging across runs and
// multi-mode models (Fig. 2).
package core

import (
	"fmt"
	"sort"

	"github.com/tracesynth/rostracer/internal/sim"
)

// ExecStats aggregates execution-time measurements of one callback:
// measured best-case (mBCET), average (mACET) and worst-case (mWCET)
// values, as reported in Table II. Samples are retained so merged models
// can re-derive any statistic.
type ExecStats struct {
	Count   int
	Min     sim.Duration
	Max     sim.Duration
	Sum     sim.Duration
	Samples []sim.Duration
}

// Add records one measurement.
func (s *ExecStats) Add(d sim.Duration) {
	if s.Count == 0 || d < s.Min {
		s.Min = d
	}
	if s.Count == 0 || d > s.Max {
		s.Max = d
	}
	s.Count++
	s.Sum += d
	s.Samples = append(s.Samples, d)
}

// Merge folds other into s.
func (s *ExecStats) Merge(other ExecStats) {
	if other.Count == 0 {
		return
	}
	if s.Count == 0 || other.Min < s.Min {
		s.Min = other.Min
	}
	if s.Count == 0 || other.Max > s.Max {
		s.Max = other.Max
	}
	s.Count += other.Count
	s.Sum += other.Sum
	s.Samples = append(s.Samples, other.Samples...)
}

// BCET returns the measured best-case execution time.
func (s *ExecStats) BCET() sim.Duration { return s.Min }

// WCET returns the measured worst-case execution time.
func (s *ExecStats) WCET() sim.Duration { return s.Max }

// ACET returns the measured average execution time.
func (s *ExecStats) ACET() sim.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / sim.Duration(s.Count)
}

// Percentile returns the p-quantile (0..1) of the samples, or 0 when
// empty.
func (s *ExecStats) Percentile(p float64) sim.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	cp := make([]sim.Duration, len(s.Samples))
	copy(cp, s.Samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

func (s *ExecStats) String() string {
	return fmt.Sprintf("n=%d mBCET=%.2fms mACET=%.2fms mWCET=%.2fms",
		s.Count, s.BCET().Milliseconds(), s.ACET().Milliseconds(), s.WCET().Milliseconds())
}

// CBType is the callback type as identified by the start-probe kind.
type CBType uint8

// Callback types.
const (
	CBTimer CBType = iota
	CBSubscriber
	CBService
	CBClient
)

func (t CBType) String() string {
	switch t {
	case CBTimer:
		return "timer"
	case CBSubscriber:
		return "subscriber"
	case CBService:
		return "service"
	default:
		return "client"
	}
}

// Write records one publication observed inside a callback instance.
type Write struct {
	Topic string
	SrcTS int64
}

// Instance is one observed execution of a callback. Take* and Writes
// record the data flow through the instance (the paper logs source
// timestamps on both sides precisely to enable end-to-end latency
// computation over chains).
type Instance struct {
	Start sim.Time
	End   sim.Time
	ET    sim.Duration

	TakeTopic string // undecorated topic the instance read (empty for timers)
	TakeSrcTS int64
	Writes    []Write
}

// Callback is one CBlist entry produced by Algorithm 1.
type Callback struct {
	PID       uint32
	Node      string
	Type      CBType
	ID        uint64
	InTopic   string   // decorated for services (caller ID) and clients (own ID)
	OutTopics []string // decorated for requests (own ID) and responses (client ID)
	IsSync    bool
	Stats     ExecStats
	Instances []Instance
}

// HasOutTopic reports whether t is among the published topics.
func (cb *Callback) HasOutTopic(t string) bool {
	for _, o := range cb.OutTopics {
		if o == t {
			return true
		}
	}
	return false
}

func (cb *Callback) addOutTopic(t string) {
	if t == "" || cb.HasOutTopic(t) {
		return
	}
	cb.OutTopics = append(cb.OutTopics, t)
	sort.Strings(cb.OutTopics)
}

// EstimatePeriod returns the median inter-start gap — the paper's
// approximate invocation period for timer callbacks — or 0 with fewer than
// two instances.
func (cb *Callback) EstimatePeriod() sim.Duration {
	if len(cb.Instances) < 2 {
		return 0
	}
	gaps := make([]sim.Duration, 0, len(cb.Instances)-1)
	for i := 1; i < len(cb.Instances); i++ {
		gaps = append(gaps, cb.Instances[i].Start.Sub(cb.Instances[i-1].Start))
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2]
}

func (cb *Callback) String() string {
	return fmt.Sprintf("%s %s cb=%#x in=%q out=%v sync=%v [%s]",
		cb.Node, cb.Type, cb.ID, cb.InTopic, cb.OutTopics, cb.IsSync, cb.Stats.String())
}
